//===- bench/BenchCommon.h - Shared benchmark harness -----------*- C++ -*-===//
//
// Helpers shared by the per-figure benchmark binaries: compile a module
// with each of the four evaluated code paths (AKG, vendor-adapted TVM,
// hand-optimized CCE library, naive CCE) and measure cycles on the
// simulator in performance mode.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_BENCH_BENCHCOMMON_H
#define AKG_BENCH_BENCHCOMMON_H

#include "akg/AutoTuner.h"
#include "akg/Compiler.h"
#include "baselines/CceLibrary.h"
#include "baselines/TvmCompiler.h"
#include "sim/Simulator.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace akg {
namespace bench {

inline const sim::MachineSpec &machine() {
  return sim::MachineSpec::ascend910();
}

inline int64_t simCycles(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, machine(), nullptr, SO).Cycles;
}

inline sim::SimResult simFull(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, machine(), nullptr, SO);
}

/// AKG: the full pipeline with Auto Tiling (Sec 4.2) selecting tiles.
inline int64_t cyclesAkg(const ir::Module &M, const char *Name,
                         CompileResult *Out = nullptr) {
  CompileResult R = compileWithAkg(M, AkgOptions{}, Name);
  int64_t C = simCycles(R.Kernel);
  if (Out)
    *Out = std::move(R);
  return C;
}

/// AKG with its learning-based auto-tuner (Sec 5.3) refining Auto
/// Tiling's choice - the full Fig 2 pipeline.
inline int64_t cyclesAkgTuned(const ir::Module &M, const char *Name,
                              CompileResult *Out = nullptr,
                              unsigned Budget = 8) {
  TunerOptions TO;
  TO.FirstRoundSamples = Budget;
  TO.RoundSamples = Budget / 2;
  TO.MaxRounds = 2;
  TuneResult TR = tuneAkgKernel(M, AkgOptions{}, machine(), TO);
  if (Out) {
    ir::PolyProgram P = ir::extractPolyProgram(M);
    AkgOptions O;
    transforms::TilingPolicy Pol;
    transforms::StmtTileSpec Spec;
    for (int64_t T : TR.BestTiles)
      Spec.Entries.push_back(transforms::TileSpecEntry{T, "UB"});
    Pol.PerStmt[P.Stmts.back().Id] = Spec;
    O.ManualTiles = Pol;
    *Out = compileWithAkg(M, O, Name);
  }
  return TR.BestCycles;
}

/// Vendor TVM: manual schedule templates, expert default tiles, empirical
/// sync grouping.
inline int64_t cyclesTvm(const ir::Module &M, const char *Name,
                         CompileResult *Out = nullptr) {
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(M, O, Name);
  int64_t C = simCycles(R.Kernel);
  if (Out)
    *Out = std::move(R);
  return C;
}

/// Vendor TVM with its auto-tuner: the paper's manual templates are
/// "fully tuned by its auto-tuner" (Sec 6); the tuner searches the same
/// valid-tile space as AKG's.
inline int64_t cyclesTvmTuned(const ir::Module &M, const char *Name,
                              CompileResult *Out = nullptr,
                              unsigned Budget = 10) {
  ir::PolyProgram P = ir::extractPolyProgram(M);
  unsigned LiveId = P.Stmts.back().Id;
  const ir::PolyStmt &Live = P.Stmts[LiveId];
  unsigned W = static_cast<unsigned>(Live.Op->Axis.size());
  std::vector<std::vector<int64_t>> Space(W);
  for (unsigned D = 0; D < W; ++D) {
    int64_t Ext = Live.Op->Axis[D].Extent;
    for (int64_t S = 1; S < Ext; S *= 2)
      Space[D].push_back(S);
    Space[D].push_back(Ext);
  }
  std::vector<int64_t> Start = baselines::tvmExpertDefaultTiles(M);
  Start.resize(W, 1);
  MeasureFn Measure = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    baselines::TvmOptions O;
    O.ManualTiles = Tiles;
    CompileResult R = baselines::compileWithTvm(M, O, Name);
    return simCycles(R.Kernel);
  };
  TunerOptions TO;
  TO.FirstRoundSamples = Budget;
  TO.RoundSamples = Budget / 2;
  TO.MaxRounds = 2;
  TuneResult TR = tuneTiles(Space, Start, Measure, TO);
  if (Out) {
    baselines::TvmOptions O;
    O.ManualTiles = TR.BestTiles;
    *Out = baselines::compileWithTvm(M, O, Name);
  }
  return TR.BestCycles;
}

/// CCE opt: one hand-tuned library kernel per operator, composed through
/// global memory.
inline int64_t cyclesCceOpt(const ir::Module &M, const char *Name) {
  baselines::LibrarySequence Seq =
      baselines::buildCceOptLibrary(M, machine(), Name);
  return baselines::simulateSequence(Seq, machine()).Cycles;
}

/// CCE naive: scalar, serialized reference.
inline int64_t cyclesCceNaive(const ir::Module &M, const char *Name) {
  CompileResult R = baselines::buildCceNaive(M, Name);
  return simCycles(R.Kernel);
}

inline double geomean(const std::vector<double> &V) {
  if (V.empty())
    return 0;
  double S = 0;
  for (double X : V)
    S += std::log(X);
  return std::exp(S / double(V.size()));
}

inline void printHeader(const char *Title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "==============================================================="
              "=\n",
              Title);
}

} // namespace bench
} // namespace akg

#endif // AKG_BENCH_BENCHCOMMON_H
