//===- bench/BenchCommon.h - Shared benchmark harness -----------*- C++ -*-===//
//
// Helpers shared by the per-figure benchmark binaries: compile a module
// with each of the four evaluated code paths (AKG, vendor-adapted TVM,
// hand-optimized CCE library, naive CCE) and measure cycles on the
// simulator in performance mode.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_BENCH_BENCHCOMMON_H
#define AKG_BENCH_BENCHCOMMON_H

#include "akg/AutoTuner.h"
#include "akg/Compiler.h"
#include "baselines/CceLibrary.h"
#include "baselines/TvmCompiler.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace akg {
namespace bench {

inline const sim::MachineSpec &machine() {
  return sim::MachineSpec::ascend910();
}

inline int64_t simCycles(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, machine(), nullptr, SO).Cycles;
}

inline sim::SimResult simFull(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, machine(), nullptr, SO);
}

/// AKG: the full pipeline with Auto Tiling (Sec 4.2) selecting tiles.
inline int64_t cyclesAkg(const ir::Module &M, const char *Name,
                         CompileResult *Out = nullptr) {
  CompileResult R = compileWithAkg(M, AkgOptions{}, Name);
  int64_t C = simCycles(R.Kernel);
  if (Out)
    *Out = std::move(R);
  return C;
}

/// AKG with its learning-based auto-tuner (Sec 5.3) refining Auto
/// Tiling's choice - the full Fig 2 pipeline.
inline int64_t cyclesAkgTuned(const ir::Module &M, const char *Name,
                              CompileResult *Out = nullptr,
                              unsigned Budget = 8) {
  TunerOptions TO;
  TO.FirstRoundSamples = Budget;
  TO.RoundSamples = Budget / 2;
  TO.MaxRounds = 2;
  TuneResult TR = tuneAkgKernel(M, AkgOptions{}, machine(), TO);
  if (Out) {
    ir::PolyProgram P = ir::extractPolyProgram(M);
    AkgOptions O;
    transforms::TilingPolicy Pol;
    transforms::StmtTileSpec Spec;
    for (int64_t T : TR.BestTiles)
      Spec.Entries.push_back(transforms::TileSpecEntry{T, "UB"});
    Pol.PerStmt[P.Stmts.back().Id] = Spec;
    O.ManualTiles = Pol;
    *Out = compileWithAkg(M, O, Name);
  }
  return TR.BestCycles;
}

/// Vendor TVM: manual schedule templates, expert default tiles, empirical
/// sync grouping.
inline int64_t cyclesTvm(const ir::Module &M, const char *Name,
                         CompileResult *Out = nullptr) {
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(M, O, Name);
  int64_t C = simCycles(R.Kernel);
  if (Out)
    *Out = std::move(R);
  return C;
}

/// Vendor TVM with its auto-tuner: the paper's manual templates are
/// "fully tuned by its auto-tuner" (Sec 6); the tuner searches the same
/// valid-tile space as AKG's.
inline int64_t cyclesTvmTuned(const ir::Module &M, const char *Name,
                              CompileResult *Out = nullptr,
                              unsigned Budget = 10) {
  ir::PolyProgram P = ir::extractPolyProgram(M);
  unsigned LiveId = P.Stmts.back().Id;
  const ir::PolyStmt &Live = P.Stmts[LiveId];
  unsigned W = static_cast<unsigned>(Live.Op->Axis.size());
  std::vector<std::vector<int64_t>> Space(W);
  for (unsigned D = 0; D < W; ++D) {
    int64_t Ext = Live.Op->Axis[D].Extent;
    for (int64_t S = 1; S < Ext; S *= 2)
      Space[D].push_back(S);
    Space[D].push_back(Ext);
  }
  std::vector<int64_t> Start = baselines::tvmExpertDefaultTiles(M);
  Start.resize(W, 1);
  MeasureFn Measure = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    baselines::TvmOptions O;
    O.ManualTiles = Tiles;
    CompileResult R = baselines::compileWithTvm(M, O, Name);
    return simCycles(R.Kernel);
  };
  TunerOptions TO;
  TO.FirstRoundSamples = Budget;
  TO.RoundSamples = Budget / 2;
  TO.MaxRounds = 2;
  TuneResult TR = tuneTiles(Space, Start, Measure, TO);
  if (Out) {
    baselines::TvmOptions O;
    O.ManualTiles = TR.BestTiles;
    *Out = baselines::compileWithTvm(M, O, Name);
  }
  return TR.BestCycles;
}

/// CCE opt: one hand-tuned library kernel per operator, composed through
/// global memory.
inline int64_t cyclesCceOpt(const ir::Module &M, const char *Name) {
  baselines::LibrarySequence Seq =
      baselines::buildCceOptLibrary(M, machine(), Name);
  return baselines::simulateSequence(Seq, machine()).Cycles;
}

/// CCE naive: scalar, serialized reference.
inline int64_t cyclesCceNaive(const ir::Module &M, const char *Name) {
  CompileResult R = baselines::buildCceNaive(M, Name);
  return simCycles(R.Kernel);
}

inline double geomean(const std::vector<double> &V) {
  if (V.empty())
    return 0;
  double S = 0;
  for (double X : V)
    S += std::log(X);
  return std::exp(S / double(V.size()));
}

inline void printHeader(const char *Title) {
  std::printf("==============================================================="
              "=\n%s\n"
              "==============================================================="
              "=\n",
              Title);
}

/// Wall-clock seconds of \p Fn (steady clock).
template <typename Fn> inline double wallSeconds(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// --- Machine-readable benchmark output ------------------------------------
/// Every bench binary emits a BENCH_<figure>.json next to its stdout table
/// so the perf trajectory (cycles per code path, compile wall-time, cache
/// hit rates) is tracked across PRs:
///   {"figure": "...", "totals": {...}, "records": [{"op": "...", ...}]}
class BenchJson {
public:
  explicit BenchJson(std::string Figure) : Figure(std::move(Figure)) {}

  struct Rec {
    std::string Op;
    std::vector<std::pair<std::string, double>> Nums;
    std::vector<std::pair<std::string, std::string>> Strs;

    Rec &num(const std::string &K, double V) {
      Nums.emplace_back(K, V);
      return *this;
    }
    Rec &str(const std::string &K, const std::string &V) {
      Strs.emplace_back(K, V);
      return *this;
    }
  };

  Rec &record(const std::string &Op) {
    Records.push_back(Rec{Op, {}, {}});
    return Records.back();
  }
  void total(const std::string &K, double V) { Totals.emplace_back(K, V); }

  /// Writes BENCH_<figure>.json into the working directory.
  void write() const {
    std::string Path = "BENCH_" + Figure + ".json";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return;
    }
    std::string Out = "{\n  \"figure\": \"" + escape(Figure) + "\",\n";
    Out += "  \"totals\": {";
    for (size_t I = 0; I < Totals.size(); ++I)
      Out += (I ? ", " : "") + quoted(Totals[I].first) + ": " +
             numText(Totals[I].second);
    Out += "},\n  \"records\": [\n";
    for (size_t I = 0; I < Records.size(); ++I) {
      const Rec &R = Records[I];
      Out += "    {\"op\": " + quoted(R.Op);
      for (const auto &[K, V] : R.Nums)
        Out += ", " + quoted(K) + ": " + numText(V);
      for (const auto &[K, V] : R.Strs)
        Out += ", " + quoted(K) + ": " + quoted(V);
      Out += I + 1 < Records.size() ? "},\n" : "}\n";
    }
    Out += "  ]\n}\n";
    std::fwrite(Out.data(), 1, Out.size(), F);
    std::fclose(F);
    std::printf("\nwrote %s\n", Path.c_str());
  }

private:
  static std::string escape(const std::string &S) {
    std::string E;
    for (char C : S) {
      if (C == '"' || C == '\\')
        E += '\\';
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        E += Buf;
        continue;
      }
      E += C;
    }
    return E;
  }
  static std::string quoted(const std::string &S) {
    return "\"" + escape(S) + "\"";
  }
  static std::string numText(double V) {
    char Buf[40];
    if (V == std::floor(V) && std::fabs(V) < 9e15)
      std::snprintf(Buf, sizeof Buf, "%lld", static_cast<long long>(V));
    else
      std::snprintf(Buf, sizeof Buf, "%.6g", V);
    return Buf;
  }

  std::string Figure;
  std::vector<std::pair<std::string, double>> Totals;
  std::vector<Rec> Records;
};

} // namespace bench
} // namespace akg

#endif // AKG_BENCH_BENCHCOMMON_H
