//===- bench/ablation_fusion.cpp - Ablation: post-tiling fusion -----------===//
//
// Design-choice ablation (Sec 4.3 / Sec 8): the reverse strategy's
// post-tiling fusion versus classical per-cluster tiling. With fusion off,
// every intermediate tensor round-trips through global memory; the GM
// traffic and cycle deltas below are the quantity the paper attributes
// the subgraph wins to.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

/// The Fig 3 running example at feature-map scale: a bias-add producer
/// feeding a convolution through overlapped reads - the case classical
/// per-cluster tiling cannot keep on chip.
ModulePtr convChain(int64_t H, int64_t W) {
  auto M = std::make_shared<ir::Module>();
  using namespace ir;
  Tensor A = M->placeholder("A", {H, W});
  Tensor B = M->placeholder("B", {3, 3});
  Tensor A2 = M->compute("A2", {H, W}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, I), floatImm(0.5));
  });
  IterVar Kh = M->reduceAxis(3, "kh");
  IterVar Kw = M->reduceAxis(3, "kw");
  Tensor C = M->compute("C", {H - 2, W - 2},
                        [&](const std::vector<Expr> &I) {
                          return reduce(
                              ReduceKind::Sum,
                              mul(tensorRead(A2, {add(I[0], var("kh")),
                                                  add(I[1], var("kw"))}),
                                  tensorRead(B, {var("kh"), var("kw")})),
                              {Kh, Kw});
                        });
  M->compute("D", {H - 2, W - 2}, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(C, I)}, DType::F16);
  });
  return M;
}

/// Stencil producer chain: shifted reads break pre-tiling fusion.
ModulePtr stencilChain(int64_t N) {
  auto M = std::make_shared<ir::Module>();
  using namespace ir;
  Tensor A = M->placeholder("A", {N, N});
  Tensor B = M->compute("B", {N, N}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(A, I), floatImm(0.25));
  });
  M->compute("C", {N - 2, N}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(B, {I[0], I[1]}),
               tensorRead(B, {add(I[0], intImm(2)), I[1]}));
  });
  return M;
}

} // namespace

int main() {
  printHeader("Ablation: post-tiling fusion (reverse strategy) on/off");
  ModulePtr Cases[] = {convChain(512, 512), stencilChain(768),
                       makeSubgraph3(4), makeSubgraph5(1)};
  const char *Names[] = {"conv_chain", "stencil", "subgraph3", "subgraph5"};
  std::printf("%-12s %14s %14s %9s %12s %12s\n", "case", "fused cyc",
              "unfused cyc", "speedup", "fused GM B", "unfused GM B");
  for (int I = 0; I < 4; ++I) {
    AkgOptions On;
    CompileResult RF = compileWithAkg(*Cases[I], On, Names[I]);
    sim::SimResult SF = simFull(RF.Kernel);
    AkgOptions Off;
    Off.EnablePostTilingFusion = false;
    CompileResult RU = compileWithAkg(*Cases[I], Off, Names[I]);
    sim::SimResult SU = simFull(RU.Kernel);
    std::printf("%-12s %14lld %14lld %8.2fx %12lld %12lld\n", Names[I],
                (long long)SF.Cycles, (long long)SU.Cycles,
                double(SU.Cycles) / double(SF.Cycles),
                (long long)SF.GmTrafficBytes,
                (long long)SU.GmTrafficBytes);
  }
  return 0;
}
