//===- bench/ablation_sync.cpp - Ablation: synchronization grouping -------===//
//
// Design-choice ablation (Sec 5.2 / Fig 11 discussion): the DP-grouped
// flags versus the empirical per-producer clustering versus full
// serialization, on the same AKG-scheduled kernels. The flag counts and
// stall cycles quantify why the grouping policy matters.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

int main() {
  printHeader("Ablation: DAE synchronization strategies on AKG kernels");
  ModulePtr Cases[] = {makeMatmul(1024, 1024, 1024), makeSubgraph1(2),
                       makeTensorAdd({16, 256, 28, 28})};
  const char *Names[] = {"gemm1024", "subgraph1", "tensor_add"};
  std::printf("%-12s %-12s %14s %10s %14s\n", "case", "strategy", "cycles",
              "flags", "stall cyc");
  for (int I = 0; I < 3; ++I) {
    for (auto [Strat, SName] :
         {std::pair{cce::SyncStrategy::AkgDp, "DP (AKG)"},
          std::pair{cce::SyncStrategy::TvmEmpirical, "empirical"},
          std::pair{cce::SyncStrategy::FullSerial, "serial"}}) {
      AkgOptions O;
      O.Sync = Strat;
      CompileResult R = compileWithAkg(*Cases[I], O, Names[I]);
      sim::SimResult S = simFull(R.Kernel);
      std::printf("%-12s %-12s %14lld %10lld %14lld\n", Names[I], SName,
                  (long long)S.Cycles, (long long)S.FlagPairs,
                  (long long)S.SyncStallCycles);
    }
  }
  return 0;
}
