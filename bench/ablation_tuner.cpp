//===- bench/ablation_tuner.cpp - Ablation: Auto Tiling vs auto-tuner -----===//
//
// Sec 5.3: the learning-based auto-tuner usually finds a better tiling
// than Auto Tiling's data-movement-minimizing analytical choice. This
// ablation measures both on representative operators.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

int main() {
  printHeader("Ablation: Auto Tiling (Sec 4.2) vs the learning-based "
              "auto-tuner (Sec 5.3)");
  ModulePtr Cases[] = {makeMatmul(768, 768, 768),
                       makeTensorAdd({16, 128, 28, 28}),
                       makeBnUpdate(16, 64, 14, 14)};
  const char *Names[] = {"gemm768", "tensor_add", "bn_update"};
  std::printf("%-12s %16s %16s %9s %9s\n", "case", "AutoTiling cyc",
              "tuned cyc", "gain", "samples");
  for (int I = 0; I < 3; ++I) {
    TunerOptions TO;
    TO.FirstRoundSamples = 12;
    TO.RoundSamples = 8;
    TO.MaxRounds = 2;
    TuneResult R = tuneAkgKernel(*Cases[I], AkgOptions{}, machine(), TO);
    std::printf("%-12s %16lld %16lld %8.2f%% %9u\n", Names[I],
                (long long)R.InitialCycles, (long long)R.BestCycles,
                (double(R.InitialCycles) / double(R.BestCycles) - 1.0) *
                    100.0,
                R.SamplesMeasured);
  }
  return 0;
}
