//===- bench/compile_service.cpp - Compile-throughput benchmark -----------===//
//
// Measures the compile service against the strictly sequential pipeline
// on the Fig 13 workload as a graph engine would present it: one compile
// request per fused-subgraph *instance* per training step (layer
// occurrence counts included), across all six networks. The paper (Sec 8)
// reports per-operator compile times; a whole network multiplies those by
// hundreds of subgraphs, which is exactly what a serving stack has to
// swallow.
//
// Three configurations over the identical request stream:
//   sequential  - the pre-service behavior: every request compiled, one
//                 at a time, no cache;
//   service     - AKG_THREADS workers (default 4) + a cold content-
//                 addressed kernel cache: structurally identical requests
//                 compile once, concurrently where cores allow;
//   warm        - the same suite again on the now-warm cache.
//
// Kernel dumps are asserted bit-identical across all three before any
// number is reported. Results land in BENCH_compile_service.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "graph/Networks.h"
#include "support/Env.h"
#include "target/CceIr.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// Chaos mode (AKG_CHAOS set): replays the same Fig-13 request stream
/// through the hardened CompileService under seeded fault/delay/hang
/// injection and reports latency percentiles, shed rate and the
/// degradation mix. Kernels of every non-shed, non-faulted request are
/// asserted bit-identical against a chaos-free reference run. The JSON
/// goes to BENCH_compile_service_chaos.json so the chaos-free baseline
/// keys in BENCH_compile_service.json never vanish under bench_diff.
int runChaosMode(std::vector<CompileJob> &Jobs, unsigned Threads) {
  int64_t Cap = env::getInt("AKG_BENCH_REQUESTS", 0);
  if (Cap > 0 && Jobs.size() > static_cast<size_t>(Cap))
    Jobs.resize(static_cast<size_t>(Cap));
  std::optional<ChaosSpec> Spec = ChaosSpec::fromEnv();
  std::printf("chaos mode: %zu requests, %u workers, spec %s\n\n",
              Jobs.size(), Threads,
              env::get("AKG_CHAOS").value_or("?").c_str());

  // Chaos-free reference: the same stream through a plain parallel run
  // with its own cold cache.
  KernelCache RefCache;
  CompileServiceOptions RO;
  RO.Threads = Threads;
  RO.Cache = &RefCache;
  std::vector<CompileResult> Ref = compileModulesParallel(Jobs, RO);

  // The chaos run.
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = Threads;
  SO.Cache = &Cache;
  SO.Chaos = Spec;
  CompileService Svc(SO);
  std::vector<CompileResult> Res;
  double WallSecs = wallSeconds([&] { Res = Svc.compileAll(Jobs); });

  // Audit: outcome mix, latency distribution, and bit-identity of every
  // request chaos did not shed or fault.
  std::vector<double> Lat;
  std::map<std::string, int64_t> Outcomes;
  size_t Mismatches = 0, Compared = 0, Degraded = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    Lat.push_back(Res[I].ServiceSeconds * 1e3);
    Outcomes[Res[I].Outcome.isOk() ? "ok"
                                   : errCodeName(Res[I].Outcome.code())]++;
    bool ShedDegraded = Res[I].Trace.find("shed") != nullptr;
    if (ShedDegraded)
      ++Degraded;
    if (Res[I].Outcome.isOk() && !ShedDegraded) {
      ++Compared;
      if (cce::printKernel(Res[I].Kernel) != cce::printKernel(Ref[I].Kernel))
        ++Mismatches;
    }
  }
  std::sort(Lat.begin(), Lat.end());
  double P50 = percentile(Lat, 0.50), P99 = percentile(Lat, 0.99),
         P999 = percentile(Lat, 0.999);
  ServiceStats SS = Svc.stats();
  QuarantineStats QS = Svc.quarantine().stats();
  KernelCacheStats CS = Cache.stats();

  std::printf("completed %lld/%lld requests in %.2fs (zero hung)\n",
              (long long)(SS.Completed + SS.Shed + SS.Degraded),
              (long long)SS.Submitted, WallSecs);
  std::printf("latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f\n", P50,
              P99, P999, Lat.empty() ? 0 : Lat.back());
  std::printf("shed %lld (rate %.3f), degraded-at-admission %lld\n",
              (long long)SS.Shed,
              SS.Submitted ? double(SS.Shed) / double(SS.Submitted) : 0,
              (long long)SS.Degraded);
  std::printf("chaos injected: %lld faults, %lld delays, %lld hangs; "
              "%lld retries\n",
              (long long)SS.FaultsInjected, (long long)SS.DelaysInjected,
              (long long)SS.HangsInjected, (long long)SS.Retries);
  std::printf("quarantine: %lld armed, %lld fast-fails; cache: %lld misses, "
              "%lld leader-failed\n",
              (long long)QS.Armed, (long long)QS.FastFails,
              (long long)CS.Misses, (long long)CS.LeaderFailed);
  std::printf("degradation mix:");
  for (const auto &[Name, N] : Outcomes)
    std::printf("  %s=%lld", Name.c_str(), (long long)N);
  std::printf("\n");

  if (Mismatches) {
    std::fprintf(stderr,
                 "FAIL: %zu of %zu clean kernels differ from the chaos-free "
                 "reference\n",
                 Mismatches, Compared);
    return 1;
  }
  std::printf("all %zu clean kernels bit-identical to the chaos-free run\n",
              Compared);

  BenchJson J("compile_service_chaos");
  J.total("requests", double(Jobs.size()));
  J.total("threads", double(Threads));
  J.total("wall_seconds", WallSecs);
  J.total("latency_p50_ms", P50);
  J.total("latency_p99_ms", P99);
  J.total("latency_p999_ms", P999);
  J.total("shed", double(SS.Shed));
  J.total("shed_rate",
          SS.Submitted ? double(SS.Shed) / double(SS.Submitted) : 0);
  J.total("degraded", double(SS.Degraded));
  J.total("faults_injected", double(SS.FaultsInjected));
  J.total("delays_injected", double(SS.DelaysInjected));
  J.total("hangs_injected", double(SS.HangsInjected));
  J.total("retries", double(SS.Retries));
  J.total("quarantine_armed", double(QS.Armed));
  J.total("quarantine_fast_fails", double(QS.FastFails));
  J.total("cache_leader_failed", double(CS.LeaderFailed));
  J.total("clean_requests", double(Compared));
  J.total("kernels_identical", Mismatches == 0 ? 1 : 0);
  for (const auto &[Name, N] : Outcomes)
    J.total("outcome_" + Name, double(N));
  J.write();
  return 0;
}

} // namespace

int main() {
  printHeader("Compile service: Fig 13 suite, one request per subgraph "
              "instance (sequential vs parallel+cache vs warm cache)");

  NetworkModel Nets[6] = {buildResNet50(), buildMobileNetV2(),
                          buildAlexNet(), buildBert(21128),
                          buildBert(30522), buildSsd()};
  AkgOptions Base;
  std::vector<CompileJob> Jobs;
  size_t DistinctLayers = 0;
  for (const NetworkModel &N : Nets) {
    std::vector<CompileJob> J = networkCompileJobs(N, Base,
                                                   /*PerOccurrence=*/true);
    DistinctLayers += N.Layers.size();
    Jobs.insert(Jobs.end(), J.begin(), J.end());
  }
  // AKG_THREADS when set, else the 4-worker configuration under test.
  unsigned Threads =
      env::isSet("AKG_THREADS") ? compileServiceThreads(0) : 4;

  // AKG_CHAOS switches the bench into the chaos-replay mode entirely:
  // the chaos-free three-phase baseline below stays untouched so its
  // BENCH json keys remain comparable across runs.
  if (ChaosSpec::fromEnv())
    return runChaosMode(Jobs, Threads);

  std::printf("%zu compile requests (%zu distinct subgraphs), "
              "%u worker threads\n\n",
              Jobs.size(), DistinctLayers, Threads);

  // Sequential baseline: the pre-service pipeline, no cache, one core.
  std::vector<CompileResult> Seq;
  Seq.reserve(Jobs.size());
  double SeqSeconds = wallSeconds([&] {
    for (const CompileJob &J : Jobs)
      Seq.push_back(compileWithAkg(*J.Mod, J.Opts, J.Name));
  });
  std::printf("sequential (no cache):   %8.2fs\n", SeqSeconds);

  // Compile service, cold cache.
  KernelCache Cache;
  CompileServiceOptions SO;
  SO.Threads = Threads;
  SO.Cache = &Cache;
  std::vector<CompileResult> Par;
  double ColdSeconds =
      wallSeconds([&] { Par = compileModulesParallel(Jobs, SO); });
  KernelCacheStats Cold = Cache.stats();
  std::printf("service, cold cache:     %8.2fs  (%lld compiles, %lld "
              "hits, %lld coalesced)\n",
              ColdSeconds, (long long)Cold.Misses, (long long)Cold.Hits,
              (long long)Cold.Coalesced);

  // Same suite again: everything should come out of the cache.
  std::vector<CompileResult> Warm;
  double WarmSeconds =
      wallSeconds([&] { Warm = compileModulesParallel(Jobs, SO); });
  KernelCacheStats After = Cache.stats();
  std::printf("service, warm cache:     %8.2fs  (%lld hits)\n", WarmSeconds,
              (long long)(After.Hits - Cold.Hits));

  // Identical kernels must come out of all three configurations.
  size_t Mismatches = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string A = cce::printKernel(Seq[I].Kernel);
    if (A != cce::printKernel(Par[I].Kernel) ||
        A != cce::printKernel(Warm[I].Kernel) ||
        Seq[I].Degradation.str() != Par[I].Degradation.str())
      ++Mismatches;
  }
  if (Mismatches) {
    std::fprintf(stderr, "FAIL: %zu kernels differ across configurations\n",
                 Mismatches);
    return 1;
  }
  std::printf("\nall %zu kernels bit-identical across configurations\n",
              Jobs.size());
  double ColdSpeedup = ColdSeconds > 0 ? SeqSeconds / ColdSeconds : 0;
  double WarmSpeedup = WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0;
  std::printf("service speedup over sequential: %.2fx\n", ColdSpeedup);
  std::printf("warm-cache speedup over cold:    %.2fx\n", WarmSpeedup);

  BenchJson J("compile_service");
  J.total("requests", double(Jobs.size()));
  J.total("distinct_subgraphs", double(DistinctLayers));
  J.total("threads", double(SO.Threads));
  J.total("sequential_seconds", SeqSeconds);
  J.total("service_cold_seconds", ColdSeconds);
  J.total("service_warm_seconds", WarmSeconds);
  J.total("service_speedup", ColdSpeedup);
  J.total("warm_speedup", WarmSpeedup);
  J.total("cache_hit_rate", After.hitRate());
  J.total("cache_misses", double(After.Misses));
  J.total("kernels_identical", Mismatches == 0 ? 1 : 0);
  for (const NetworkModel &N : Nets) {
    int64_t Requests = 0;
    for (const LayerWorkload &L : N.Layers)
      Requests += L.Count;
    J.record(N.Name)
        .num("distinct_subgraphs", double(N.Layers.size()))
        .num("requests", double(Requests));
  }
  J.write();
  return 0;
}
