//===- bench/compile_service.cpp - Compile-throughput benchmark -----------===//
//
// Measures the compile service against the strictly sequential pipeline
// on the Fig 13 workload as a graph engine would present it: one compile
// request per fused-subgraph *instance* per training step (layer
// occurrence counts included), across all six networks. The paper (Sec 8)
// reports per-operator compile times; a whole network multiplies those by
// hundreds of subgraphs, which is exactly what a serving stack has to
// swallow.
//
// Three configurations over the identical request stream:
//   sequential  - the pre-service behavior: every request compiled, one
//                 at a time, no cache;
//   service     - AKG_THREADS workers (default 4) + a cold content-
//                 addressed kernel cache: structurally identical requests
//                 compile once, concurrently where cores allow;
//   warm        - the same suite again on the now-warm cache.
//
// Kernel dumps are asserted bit-identical across all three before any
// number is reported. Results land in BENCH_compile_service.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "graph/Networks.h"
#include "support/Env.h"
#include "target/CceIr.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

int main() {
  printHeader("Compile service: Fig 13 suite, one request per subgraph "
              "instance (sequential vs parallel+cache vs warm cache)");

  NetworkModel Nets[6] = {buildResNet50(), buildMobileNetV2(),
                          buildAlexNet(), buildBert(21128),
                          buildBert(30522), buildSsd()};
  AkgOptions Base;
  std::vector<CompileJob> Jobs;
  size_t DistinctLayers = 0;
  for (const NetworkModel &N : Nets) {
    std::vector<CompileJob> J = networkCompileJobs(N, Base,
                                                   /*PerOccurrence=*/true);
    DistinctLayers += N.Layers.size();
    Jobs.insert(Jobs.end(), J.begin(), J.end());
  }
  // AKG_THREADS when set, else the 4-worker configuration under test.
  unsigned Threads =
      env::isSet("AKG_THREADS") ? compileServiceThreads(0) : 4;
  std::printf("%zu compile requests (%zu distinct subgraphs), "
              "%u worker threads\n\n",
              Jobs.size(), DistinctLayers, Threads);

  // Sequential baseline: the pre-service pipeline, no cache, one core.
  std::vector<CompileResult> Seq;
  Seq.reserve(Jobs.size());
  double SeqSeconds = wallSeconds([&] {
    for (const CompileJob &J : Jobs)
      Seq.push_back(compileWithAkg(*J.Mod, J.Opts, J.Name));
  });
  std::printf("sequential (no cache):   %8.2fs\n", SeqSeconds);

  // Compile service, cold cache.
  KernelCache Cache;
  CompileServiceOptions SO;
  SO.Threads = Threads;
  SO.Cache = &Cache;
  std::vector<CompileResult> Par;
  double ColdSeconds =
      wallSeconds([&] { Par = compileModulesParallel(Jobs, SO); });
  KernelCacheStats Cold = Cache.stats();
  std::printf("service, cold cache:     %8.2fs  (%lld compiles, %lld "
              "hits, %lld coalesced)\n",
              ColdSeconds, (long long)Cold.Misses, (long long)Cold.Hits,
              (long long)Cold.Coalesced);

  // Same suite again: everything should come out of the cache.
  std::vector<CompileResult> Warm;
  double WarmSeconds =
      wallSeconds([&] { Warm = compileModulesParallel(Jobs, SO); });
  KernelCacheStats After = Cache.stats();
  std::printf("service, warm cache:     %8.2fs  (%lld hits)\n", WarmSeconds,
              (long long)(After.Hits - Cold.Hits));

  // Identical kernels must come out of all three configurations.
  size_t Mismatches = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string A = cce::printKernel(Seq[I].Kernel);
    if (A != cce::printKernel(Par[I].Kernel) ||
        A != cce::printKernel(Warm[I].Kernel) ||
        Seq[I].Degradation.str() != Par[I].Degradation.str())
      ++Mismatches;
  }
  if (Mismatches) {
    std::fprintf(stderr, "FAIL: %zu kernels differ across configurations\n",
                 Mismatches);
    return 1;
  }
  std::printf("\nall %zu kernels bit-identical across configurations\n",
              Jobs.size());
  double ColdSpeedup = ColdSeconds > 0 ? SeqSeconds / ColdSeconds : 0;
  double WarmSpeedup = WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0;
  std::printf("service speedup over sequential: %.2fx\n", ColdSpeedup);
  std::printf("warm-cache speedup over cold:    %.2fx\n", WarmSpeedup);

  BenchJson J("compile_service");
  J.total("requests", double(Jobs.size()));
  J.total("distinct_subgraphs", double(DistinctLayers));
  J.total("threads", double(SO.Threads));
  J.total("sequential_seconds", SeqSeconds);
  J.total("service_cold_seconds", ColdSeconds);
  J.total("service_warm_seconds", WarmSeconds);
  J.total("service_speedup", ColdSpeedup);
  J.total("warm_speedup", WarmSpeedup);
  J.total("cache_hit_rate", After.hitRate());
  J.total("cache_misses", double(After.Misses));
  J.total("kernels_identical", Mismatches == 0 ? 1 : 0);
  for (const NetworkModel &N : Nets) {
    int64_t Requests = 0;
    for (const LayerWorkload &L : N.Layers)
      Requests += L.Count;
    J.record(N.Name)
        .num("distinct_subgraphs", double(N.Layers.size()))
        .num("requests", double(Requests));
  }
  J.write();
  return 0;
}
