//===- bench/compile_time.cpp - Polyhedral-core compile-time bench --------===//
//
// Compile-only microbench for the polyhedral core's hot paths (int64
// simplex, sample-point caching, redundancy prefiltering, Farkas dedup).
// Compiles a representative subset of the Fig 9 operator families through
// the full AKG pipeline, records wall time per family plus one simulated
// cycle count (so a perf regression that changes generated code is visible
// as a cycle diff), and emits the fast-path counters into the JSON totals.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/KernelCache.h"
#include "akg/KernelStore.h"
#include "graph/Ops.h"
#include "support/Env.h"
#include "support/Stats.h"

#include <map>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

struct OpFamily {
  const char *Name;
  std::vector<ModulePtr> Shapes;
};

// A spread of the heavier Fig 9 shape configs: enough LP/FM volume that
// the gated wall total is well clear of timer noise, without the full
// fig09 runtime (which also measures the three non-AKG pipelines).
std::vector<OpFamily> buildFamilies() {
  std::vector<OpFamily> F;
  {
    OpFamily C{"op1_conv", {}};
    int64_t Cfg[3][5] = {
        {32, 28, 28, 32, 3}, {64, 14, 14, 64, 3}, {64, 7, 7, 128, 3}};
    for (auto &S : Cfg)
      C.Shapes.push_back(
          makeConv(16, S[0], S[1], S[2], S[3], S[4], S[4], 1, S[4] / 2));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op2_matmul", {}};
    int64_t Cfg[3][3] = {{512, 512, 512}, {1024, 1024, 256}, {768, 768, 768}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeMatmul(S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op4_bmm", {}};
    int64_t Cfg[3][3] = {{128, 128, 128}, {64, 192, 64}, {192, 64, 64}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeBatchMatmul(16, S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op8_add", {}};
    for (int I = 0; I < 3; ++I)
      C.Shapes.push_back(makeTensorAdd({16, 48 + 24 * I, 24, 24}));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op9_bn_reduce", {}};
    for (int I = 0; I < 3; ++I)
      C.Shapes.push_back(makeBnReduce(16, 32 + 16 * I, 14, 14));
    F.push_back(std::move(C));
  }
  return F;
}

} // namespace

int main() {
  printHeader("Compile-time microbench: AKG pipeline wall time per family "
              "(polyhedral-core fast paths; lower is better)");
  std::printf("%-16s %14s %14s\n", "operator", "compile [s]", "akg cycles");
  BenchJson J("compile_time");
  double TotalSeconds = 0;
  // Cached mode (CI cold-process -> warm-disk -> warm-memory job): when
  // AKG_CACHE_DIR is set, compile through the tiered kernel cache so a
  // first run populates the disk store and a second process serves every
  // first request from disk. The committed baseline is always recorded
  // WITHOUT a cache dir, so the gated numbers measure real compiles.
  const bool Cached = env::get("AKG_CACHE_DIR").has_value();
  if (Cached)
    std::printf("cache mode: AKG_CACHE_DIR=%s (tiered memory -> disk)\n",
                env::get("AKG_CACHE_DIR")->c_str());
  // One AKG compile of these shapes is a few ms; repeat so the gated wall
  // total sits well above timer/scheduler noise. The wall covers compiles
  // only; the (deterministic) simulation runs outside the timer purely to
  // expose code changes as a cycle diff.
  constexpr int Reps = 10;
  // Per-pass wall-time breakdown aggregated from every compile's trace:
  // reported as stage_wall.* totals so bench_diff.py can localize a
  // compile-time regression to its pipeline stage (informational, not
  // gated - the gate stays on compile_wall_seconds).
  std::map<std::string, double> StageWall;
  for (const OpFamily &Fam : buildFamilies()) {
    std::vector<CompileResult> Results;
    // Per-family breakdown too, so a per-op ast_gen regression is visible
    // in the record instead of being averaged into the figure total.
    std::map<std::string, double> FamStageWall;
    double FamSeconds = wallSeconds([&] {
      for (int R = 0; R < Reps; ++R)
        for (const ModulePtr &M : Fam.Shapes) {
          CompileResult CR = Cached
                                 ? compileWithAkgCached(*M, AkgOptions{},
                                                        Fam.Name)
                                 : compileWithAkg(*M, AkgOptions{}, Fam.Name);
          for (const TraceEvent &E : CR.Trace.Events)
            FamStageWall[E.Pass] += E.WallSeconds;
          if (R == 0)
            Results.push_back(std::move(CR));
        }
    });
    int64_t Cycles = 0;
    for (const CompileResult &CR : Results)
      Cycles += simCycles(CR.Kernel);
    TotalSeconds += FamSeconds;
    auto &Rec = J.record(Fam.Name)
                    .num("compile_wall_seconds", FamSeconds)
                    .num("akg_cycles", double(Cycles));
    for (const auto &[Pass, Seconds] : FamStageWall) {
      Rec.num("stage_wall." + Pass, Seconds);
      StageWall[Pass] += Seconds;
    }
    std::printf("%-16s %14.3f %14lld\n", Fam.Name, FamSeconds,
                static_cast<long long>(Cycles));
  }
  std::printf("total compile wall: %.3fs\n", TotalSeconds);
  J.total("compile_wall_seconds", TotalSeconds);
  for (const auto &[Pass, Seconds] : StageWall) {
    J.total("stage_wall." + Pass, Seconds);
    std::printf("stage_wall.%-24s %10.3fs\n", Pass.c_str(), Seconds);
  }
  // Fast-path effectiveness counters; a silent fall-back-to-slow-path
  // regression shows up here (and in the gated wall time) before it shows
  // up anywhere else.
  const char *Counters[] = {"lp.int64_fastpath", "lp.rational_fallback",
                            "lp.solves_avoided_sample",
                            "affine.redundant_prefiltered",
                            "affine.implied_eq", "affine.empty_syntactic",
                            "pluto.master_dedup", "affine.dup_constraint",
                            "astgen.proj_memo_hit", "astgen.proj_memo_miss",
                            "astgen.implied_memo_hit",
                            "astgen.implied_syntactic", "astgen.implied_lp",
                            "astgen.lp_avoided",
                            "astgen.incremental_refinements"};
  for (const char *K : Counters) {
    J.total(K, double(Stats::get().counter(K)));
    std::printf("%-36s %lld\n", K,
                static_cast<long long>(Stats::get().counter(K)));
  }
  if (Cached) {
    // Where the requests were actually served from (the CI cold -> warm
    // job asserts hit_disk > 0 on the second process).
    KernelCacheStats CS = KernelCache::global().stats();
    J.total("cache.hit_memory", double(CS.Hits));
    J.total("cache.hit_disk", double(CS.DiskHits));
    J.total("cache.hit_coalesced", double(CS.Coalesced));
    J.total("cache.miss", double(CS.Misses - CS.DiskHits));
    std::printf("cache.hit_memory %lld  cache.hit_disk %lld  "
                "cache.hit_coalesced %lld  cache.miss %lld\n",
                static_cast<long long>(CS.Hits),
                static_cast<long long>(CS.DiskHits),
                static_cast<long long>(CS.Coalesced),
                static_cast<long long>(CS.Misses - CS.DiskHits));
  }
  J.write();
  return 0;
}
