//===- bench/fig09_single_ops.cpp - Fig 9: single operators ---------------===//
//
// Reproduces Fig 9: for the ten single operators commonly used in DNNs,
// with ten shape configurations each (batch 16), measure execution cycles
// of the four code paths and report the per-operator geometric-mean
// speedup normalized to AKG (higher is better; AKG = 1.0).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/KernelCache.h"
#include "graph/Ops.h"
#include "support/Stats.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

struct OpFamily {
  const char *Name;
  std::vector<ModulePtr> Shapes;
};

std::vector<OpFamily> buildFamilies() {
  std::vector<OpFamily> F;
  // op1: convolution. 10 shape configs, batch 16.
  {
    OpFamily C{"op1_conv", {}};
    int64_t Cfg[10][5] = {{16, 14, 14, 32, 3}, {32, 14, 14, 32, 3},
                          {32, 28, 28, 32, 3}, {64, 14, 14, 64, 1},
                          {64, 14, 14, 64, 3}, {32, 28, 28, 64, 1},
                          {16, 28, 28, 16, 5}, {64, 7, 7, 128, 3},
                          {128, 7, 7, 128, 1}, {32, 14, 14, 96, 3}};
    for (auto &S : Cfg)
      C.Shapes.push_back(
          makeConv(16, S[0], S[1], S[2], S[3], S[4], S[4], 1, S[4] / 2));
    F.push_back(std::move(C));
  }
  // op2: matmul.
  {
    OpFamily C{"op2_matmul", {}};
    int64_t Cfg[10][3] = {{128, 128, 128},  {256, 256, 256},
                          {512, 512, 512},  {256, 512, 128},
                          {512, 256, 1024}, {1024, 1024, 256},
                          {768, 768, 768},  {384, 1536, 384},
                          {1024, 256, 512}, {640, 640, 640}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeMatmul(S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  // op3: relu.
  {
    OpFamily C{"op3_relu", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeRelu({16, 32 + 16 * I, 28, 28}));
    F.push_back(std::move(C));
  }
  // op4: batched matmul.
  {
    OpFamily C{"op4_bmm", {}};
    int64_t Cfg[10][3] = {{64, 64, 64},   {64, 64, 128},  {128, 64, 64},
                          {64, 128, 128}, {128, 128, 128}, {96, 96, 96},
                          {64, 192, 64},  {192, 64, 64},  {128, 96, 64},
                          {96, 128, 96}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeBatchMatmul(16, S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  // op5: cast.
  {
    OpFamily C{"op5_cast", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeCast({16, 64, 14 + 2 * I, 14 + 2 * I}));
    F.push_back(std::move(C));
  }
  // op6: transpose.
  {
    OpFamily C{"op6_transpose", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeTranspose(256 + 128 * I, 512));
    F.push_back(std::move(C));
  }
  // op7: one-hot.
  {
    OpFamily C{"op7_onehot", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeOneHot(16 * (I + 1) * 8, 128 + 64 * I));
    F.push_back(std::move(C));
  }
  // op8: tensor add.
  {
    OpFamily C{"op8_add", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeTensorAdd({16, 48 + 24 * I, 24, 24}));
    F.push_back(std::move(C));
  }
  // op9 / op10: BatchNorm training reduction and update.
  {
    OpFamily C{"op9_bn_reduce", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeBnReduce(16, 32 + 16 * I, 14, 14));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op10_bn_update", {}};
    for (int I = 0; I < 10; ++I)
      C.Shapes.push_back(makeBnUpdate(16, 32 + 16 * I, 14, 14));
    F.push_back(std::move(C));
  }
  return F;
}

} // namespace

int main() {
  printHeader("Fig 9: single-operator speedup normalized to AKG "
              "(geomean over 10 shapes each, batch 16; higher is better)");
  std::printf("%-16s %10s %10s %10s %10s\n", "operator", "CCE naive",
              "CCE opt", "TVM", "AKG");
  BenchJson J("fig09_single_ops");
  std::vector<double> AllTvm, AllOpt, AllNaive;
  double TotalSeconds = 0;
  for (const OpFamily &Fam : buildFamilies()) {
    std::vector<double> Naive, Opt, Tvm;
    int64_t CycA = 0, CycT = 0, CycO = 0, CycN = 0;
    double FamSeconds = wallSeconds([&] {
      for (const ModulePtr &M : Fam.Shapes) {
        int64_t A = cyclesAkg(*M, Fam.Name);
        int64_t T = cyclesTvm(*M, Fam.Name);
        int64_t O = cyclesCceOpt(*M, Fam.Name);
        int64_t N = cyclesCceNaive(*M, Fam.Name);
        CycA += A;
        CycT += T;
        CycO += O;
        CycN += N;
        Naive.push_back(double(A) / double(N));
        Opt.push_back(double(A) / double(O));
        Tvm.push_back(double(A) / double(T));
      }
    });
    TotalSeconds += FamSeconds;
    double GN = geomean(Naive), GO = geomean(Opt), GT = geomean(Tvm);
    AllNaive.push_back(GN);
    AllOpt.push_back(GO);
    AllTvm.push_back(GT);
    J.record(Fam.Name)
        .num("akg_cycles", double(CycA))
        .num("tvm_cycles", double(CycT))
        .num("cce_opt_cycles", double(CycO))
        .num("cce_naive_cycles", double(CycN))
        .num("speedup_vs_tvm", 1.0 / GT)
        .num("compile_wall_seconds", FamSeconds);
    std::printf("%-16s %10.3f %10.3f %10.3f %10.3f\n", Fam.Name, GN, GO, GT,
                1.0);
  }
  std::printf("%-16s %10.3f %10.3f %10.3f %10.3f\n", "geomean",
              geomean(AllNaive), geomean(AllOpt), geomean(AllTvm), 1.0);
  std::printf("\nPaper reference shape: CCE opt within ~4%% of AKG, AKG "
              "~1.6x over TVM, CCE opt ~2.8x over naive.\n");
  std::printf("AKG/TVM mean speedup: %.2fx; CCE-opt/naive: %.2fx; "
              "AKG vs CCE opt: %+.1f%%\n",
              1.0 / geomean(AllTvm),
              geomean(AllOpt) / geomean(AllNaive),
              (1.0 / geomean(AllOpt) - 1.0) * 100.0);
  J.total("akg_vs_tvm_geomean", 1.0 / geomean(AllTvm));
  J.total("compile_wall_seconds", TotalSeconds);
  J.total("cache_hit_rate", KernelCache::global().stats().hitRate());
  // Polyhedral-core fast-path counters: nonzero hits here prove the int64
  // simplex / sample cache / prefilter actually fired on this workload.
  for (const char *K : {"lp.int64_fastpath", "lp.rational_fallback",
                        "lp.solves_avoided_sample",
                        "affine.redundant_prefiltered",
                        "pluto.master_dedup", "affine.dup_constraint"})
    J.total(K, double(Stats::get().counter(K)));
  J.write();
  return 0;
}
