//===- bench/fig10_loc.cpp - Fig 10: lines-of-code comparison -------------===//
//
// Reproduces Fig 10: the development effort for three important single
// operators, measured in lines of the artifact each path requires a human
// to write and maintain:
//   * CCE opt - the hand-written kernel itself (we print the tuned CCE
//     kernel our library builder produces; the vendor's real kernels are
//     of the same nature),
//   * TVM     - the compute declaration plus the manual schedule template
//     (declaration + schedule primitives + tile spec),
//   * AKG     - the compute declaration alone (the whole point: everything
//     below it is automatic).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

#include <sstream>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

unsigned lineCount(const std::string &S) {
  unsigned N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

/// The manual TVM schedule template: compute declaration + the schedule
/// directives a developer writes (split/reorder/cache/tensorize/pragma per
/// tiled axis, plus the tile specification).
unsigned tvmTemplateLines(const ir::Module &M,
                          const CompileResult &TvmResult) {
  unsigned Decl = lineCount(M.str());
  // One split + one reorder + one bind per tiled axis; cache_read/write
  // per tensor; tensorize + double-buffer + sync pragmas.
  unsigned Axes = static_cast<unsigned>(TvmResult.TileSizes.size());
  unsigned Tensors = static_cast<unsigned>(M.inputs().size()) + 1;
  unsigned SchedulePrimitives = Axes * 3 + Tensors * 2 + 6;
  return Decl + SchedulePrimitives + lineCount(TvmResult.TilingPolicyText) +
         1;
}

} // namespace

int main() {
  printHeader("Fig 10: lines of code per implementation path "
              "(lower is better)");
  struct Case {
    const char *Name;
    ModulePtr M;
  } Cases[] = {{"conv", makeConv(16, 32, 14, 14, 32, 3, 3, 1, 1)},
               {"matmul", makeMatmul(512, 512, 512)},
               {"tensor_add", makeTensorAdd({16, 64, 28, 28})}};
  std::printf("%-12s %10s %10s %10s\n", "operator", "CCE opt", "TVM", "AKG");
  for (const Case &C : Cases) {
    // CCE opt: the tuned kernel text a library developer maintains.
    baselines::LibrarySequence Seq =
        baselines::buildCceOptLibrary(*C.M, machine(), C.Name);
    unsigned CceLines = 0;
    for (const cce::Kernel &K : Seq.Kernels)
      CceLines += lineCount(cce::printKernel(K));
    // TVM: declaration + manual schedule template.
    CompileResult TvmRes;
    cyclesTvm(*C.M, C.Name, &TvmRes);
    unsigned TvmLines = tvmTemplateLines(*C.M, TvmRes);
    // AKG: the DSL declaration only.
    unsigned AkgLines = lineCount(C.M->str());
    std::printf("%-12s %10u %10u %10u\n", C.Name, CceLines, TvmLines,
                AkgLines);
  }
  std::printf("\nPaper reference shape: vendor kernels cost hundreds of "
              "lines; schedule templates tens; AKG only the declaration.\n");
  return 0;
}
