//===- bench/fig11_gemm_shapes.cpp - Fig 11: GEMM shape sweep -------------===//
//
// Reproduces Fig 11: execution cycles of the GEMM product under 41 shape
// configurations from (64,64) to (4608,4608), AKG vs the TVM baseline
// (lower is better). The paper reports AKG ahead on 29 of 41 shapes, with
// the difference attributed to the DAE synchronization grouping.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

int main() {
  printHeader("Fig 11: GEMM cycles across 41 shapes, AKG vs TVM "
              "(lower is better)");
  std::printf("%-8s %14s %14s %8s\n", "size", "AKG cycles", "TVM cycles",
              "winner");
  BenchJson J("fig11_gemm_shapes");
  unsigned AkgWins = 0, Total = 0;
  int64_t Lo = 64, Hi = 4608;
  double TotalSeconds = wallSeconds([&] {
    for (int I = 0; I < 41; ++I) {
      int64_t S = Lo + (Hi - Lo) * I / 40;
      S = (S + 15) / 16 * 16; // fractal-aligned sizes
      ModulePtr M = makeMatmul(S, S, S);
      int64_t A = cyclesAkg(*M, "gemm");
      int64_t T = cyclesTvmTuned(*M, "gemm", nullptr, 6);
      ++Total;
      if (A <= T)
        ++AkgWins;
      J.record("gemm_" + std::to_string(S))
          .num("akg_cycles", double(A))
          .num("tvm_cycles", double(T))
          .str("winner", A <= T ? "AKG" : "TVM");
      std::printf("%-8lld %14lld %14lld %8s\n", (long long)S, (long long)A,
                  (long long)T, A <= T ? "AKG" : "TVM");
    }
  });
  std::printf("\nAKG faster on %u / %u shapes "
              "(paper: 29 / 41).\n",
              AkgWins, Total);
  J.total("akg_wins", double(AkgWins));
  J.total("shapes", double(Total));
  J.total("compile_wall_seconds", TotalSeconds);
  J.write();
  return 0;
}
