//===- bench/fig12_subgraphs.cpp - Fig 12: fused subgraphs ----------------===//
//
// Reproduces Fig 12: the five Table 1 subgraphs compiled as a single
// fused kernel by AKG and by the TVM baseline, and composed op-by-op from
// the hand-optimized CCE library. Speedups are normalized to AKG (higher
// is better). Paper reference: AKG 1.3x over TVM and 5.6x over the
// composed library on average; TVM 4.4x over the library.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

int main() {
  printHeader("Fig 12: subgraph speedup normalized to AKG "
              "(higher is better)");
  // Scale 2 keeps the larger feature maps tractable on the host simulator
  // without changing the fusion structure (documented in DESIGN.md).
  ModulePtr Subs[5] = {makeSubgraph1(2), makeSubgraph2(2), makeSubgraph3(2),
                       makeSubgraph4(1), makeSubgraph5(1)};
  std::printf("%-12s %12s %12s %12s\n", "subgraph", "CCE opt", "TVM", "AKG");
  BenchJson J("fig12_subgraphs");
  std::vector<double> OptR, TvmR;
  for (int I = 0; I < 5; ++I) {
    std::string Name = "subgraph" + std::to_string(I + 1);
    int64_t A = 0, T = 0, O = 0;
    double Seconds = wallSeconds([&] {
      A = cyclesAkgTuned(*Subs[I], Name.c_str());
      T = cyclesTvmTuned(*Subs[I], Name.c_str(), nullptr, 6);
      O = cyclesCceOpt(*Subs[I], Name.c_str());
    });
    OptR.push_back(double(A) / double(O));
    TvmR.push_back(double(A) / double(T));
    J.record(Name)
        .num("akg_cycles", double(A))
        .num("tvm_cycles", double(T))
        .num("cce_opt_cycles", double(O))
        .num("compile_wall_seconds", Seconds);
    std::printf("%-12s %12.3f %12.3f %12.3f\n", Name.c_str(),
                double(A) / double(O), double(A) / double(T), 1.0);
  }
  std::printf("\nAKG over TVM: %.2fx (paper 1.3x); AKG over CCE opt: %.2fx "
              "(paper 5.6x); TVM over CCE opt: %.2fx (paper 4.4x)\n",
              1.0 / geomean(TvmR), 1.0 / geomean(OptR),
              geomean(TvmR) / geomean(OptR));
  J.total("akg_vs_tvm_geomean", 1.0 / geomean(TvmR));
  J.total("akg_vs_cce_opt_geomean", 1.0 / geomean(OptR));
  J.write();
  return 0;
}
