//===- bench/fig13_composite.cpp - Composite-JSON network serving bench ---===//
//
// The Fig 13 networks served the way a graph engine actually delivers
// them: every fused subgraph of ResNet-50 and BERT serialized as a
// composite-subgraph JSON payload (src/composite) and pushed through
// CompileService::submitJson under concurrent load, one request per
// subgraph *occurrence*. Reports end-to-end ingress latency percentiles
// (parse + normalize + lower + queue + compile), the cache-hit split, and
// asserts every served kernel bit-identical to a direct in-memory module
// compile of the same subgraph - the frontend must be a zero-cost
// detour, not a second compiler.
//
//   AKG_THREADS=<n>          worker threads (default 4)
//   AKG_BENCH_REQUESTS=<n>   cap the request stream (CI smoke uses 50)
//
// Results land in BENCH_fig13_composite.json.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "composite/Composite.h"
#include "graph/Networks.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "target/Codegen.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// One distinct subgraph: its JSON payload, the network it came from,
/// its occurrence count, and the reference kernel text from compiling
/// the in-memory module directly (no JSON anywhere near it).
struct Subgraph {
  std::string Network;
  std::string Payload;
  std::string KernelName;
  std::string RefText;
  unsigned Count = 1;
};

} // namespace

int main() {
  printHeader("Fig 13 serving bench: ResNet-50 + BERT subgraphs as "
              "composite JSON through CompileService::submitJson");

  NetworkModel Nets[2] = {buildResNet50(), buildBert(30522)};
  unsigned Threads =
      env::isSet("AKG_THREADS") ? compileServiceThreads(0) : 4;
  AkgOptions Base;

  // Serialize every distinct subgraph and build the direct-module
  // reference compile it must match bit-for-bit.
  std::vector<Subgraph> Subs;
  int64_t Elim0 = Stats::get().counter("composite.transform_ops_eliminated");
  for (const NetworkModel &N : Nets) {
    for (const LayerWorkload &L : N.Layers) {
      Subgraph S;
      S.Network = N.Name;
      S.Count = L.Count;
      S.Payload = composite::moduleToCompositeJson(
          *L.Mod, N.Name + "_" + L.Name);
      composite::FrontendResult F = composite::loadComposite(S.Payload);
      if (!F.ok()) {
        std::fprintf(stderr, "FAIL: frontend rejected %s/%s: %s\n",
                     N.Name.c_str(), L.Name.c_str(), F.Outcome.str().c_str());
        return 1;
      }
      S.KernelName = F.KernelName;
      S.RefText = cce::printKernel(
          compileWithAkg(*L.Mod, Base, F.KernelName).Kernel);
      Subs.push_back(std::move(S));
    }
  }
  int64_t ElimDuringSetup =
      Stats::get().counter("composite.transform_ops_eliminated") - Elim0;

  // The request stream: one request per subgraph occurrence, in graph
  // order (the order a training step asks for them).
  std::vector<const Subgraph *> Stream;
  for (const Subgraph &S : Subs)
    for (unsigned I = 0; I < S.Count; ++I)
      Stream.push_back(&S);
  int64_t Cap = env::getInt("AKG_BENCH_REQUESTS", 0);
  if (Cap > 0 && Stream.size() > static_cast<size_t>(Cap))
    Stream.resize(static_cast<size_t>(Cap));
  std::printf("%zu requests (%zu distinct subgraphs), %u worker threads\n\n",
              Stream.size(), Subs.size(), Threads);

  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = Threads;
  SO.Cache = &Cache;
  // The full training-step stream outruns the default admission bound;
  // this bench measures latency, not shedding.
  SO.QueueDepth = static_cast<unsigned>(Stream.size()) + 16;
  CompileService Svc(SO);

  std::vector<std::future<CompileResult>> Futs;
  Futs.reserve(Stream.size());
  std::vector<CompileResult> Res;
  Res.reserve(Stream.size());
  double WallSecs = wallSeconds([&] {
    for (const Subgraph *S : Stream)
      Futs.push_back(Svc.submitJson(S->Payload, Base));
    for (std::future<CompileResult> &F : Futs)
      Res.push_back(F.get());
  });

  // Audit: outcomes, bit-identity against the direct-module reference,
  // cache-hit split, latency distribution.
  std::vector<double> Lat, HitLat, MissLat;
  size_t Failures = 0, Mismatches = 0, Hits = 0;
  for (size_t I = 0; I < Stream.size(); ++I) {
    const CompileResult &R = Res[I];
    if (!R.Outcome.isOk()) {
      ++Failures;
      continue;
    }
    double Ms = R.ServiceSeconds * 1e3;
    Lat.push_back(Ms);
    (R.Trace.CacheHit ? HitLat : MissLat).push_back(Ms);
    Hits += R.Trace.CacheHit;
    if (cce::printKernel(R.Kernel) != Stream[I]->RefText)
      ++Mismatches;
  }
  std::sort(Lat.begin(), Lat.end());
  std::sort(HitLat.begin(), HitLat.end());
  std::sort(MissLat.begin(), MissLat.end());

  if (Failures || Mismatches) {
    std::fprintf(stderr,
                 "FAIL: %zu failed requests, %zu kernels differ from the "
                 "direct-module compiles\n",
                 Failures, Mismatches);
    return 1;
  }

  double P50 = percentile(Lat, 0.50), P99 = percentile(Lat, 0.99),
         P999 = percentile(Lat, 0.999);
  std::printf("served %zu/%zu requests in %.2fs\n", Lat.size(),
              Stream.size(), WallSecs);
  std::printf("latency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f\n", P50,
              P99, P999, Lat.empty() ? 0 : Lat.back());
  std::printf("cache: %zu hits / %zu misses (hit p50 %.2fms, miss p50 "
              "%.2fms)\n",
              Hits, Lat.size() - Hits, percentile(HitLat, 0.5),
              percentile(MissLat, 0.5));
  std::printf("transform ops eliminated during serialization round-trips: "
              "%lld (expected 0: canonical payloads)\n",
              (long long)(Stats::get().counter(
                              "composite.transform_ops_eliminated") -
                          Elim0 - ElimDuringSetup));
  std::printf("all %zu kernels bit-identical to direct-module compiles\n",
              Lat.size());

  BenchJson J("fig13_composite");
  J.total("requests", double(Stream.size()));
  J.total("distinct_subgraphs", double(Subs.size()));
  J.total("threads", double(Threads));
  J.total("wall_seconds", WallSecs);
  J.total("latency_p50_ms", P50);
  J.total("latency_p99_ms", P99);
  J.total("latency_p999_ms", P999);
  J.total("cache_hits", double(Hits));
  J.total("cache_misses", double(Lat.size() - Hits));
  J.total("hit_latency_p50_ms", percentile(HitLat, 0.5));
  J.total("miss_latency_p50_ms", percentile(MissLat, 0.5));
  J.total("kernels_identical", 1);
  for (const NetworkModel &N : Nets) {
    size_t Distinct = 0;
    int64_t Requests = 0;
    for (const Subgraph &S : Subs)
      if (S.Network == N.Name) {
        ++Distinct;
        Requests += S.Count;
      }
    J.record(N.Name)
        .num("distinct_subgraphs", double(Distinct))
        .num("requests", double(Requests));
  }
  J.write();
  return 0;
}
