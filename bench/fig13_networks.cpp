//===- bench/fig13_networks.cpp - Fig 13: end-to-end networks -------------===//
//
// Reproduces Fig 13: per-training-step cycles of five end-to-end
// workloads (ResNet-50, MobileNet-v2, AlexNet, BERT with two vocabulary
// sizes, SSD) under AKG and the TVM baseline, normalized to AKG (higher
// is better). The hand-optimized CCE library only supports ResNet-50, as
// in the paper. Network totals are the sum over the graph engine's fused
// subgraphs weighted by occurrence count.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/KernelCache.h"
#include "graph/Networks.h"
#include "support/Stats.h"

#include <cstdlib>
#include <functional>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

int64_t networkCycles(const NetworkModel &N,
                      const std::function<int64_t(
                          const ir::Module &, const char *,
                          CompileResult *)> &Compile) {
  int64_t Total = 0;
  for (const LayerWorkload &L : N.Layers) {
    if (Stats::enabled())
      std::fprintf(stderr, "[fig13] %s / %s\n", N.Name.c_str(),
                   L.Name.c_str());
    Total += Compile(*L.Mod, L.Name.c_str(), nullptr) * L.Count;
  }
  return Total;
}

int64_t networkCyclesCceOpt(const NetworkModel &N) {
  int64_t Total = 0;
  for (const LayerWorkload &L : N.Layers)
    Total += cyclesCceOpt(*L.Mod, L.Name.c_str()) * L.Count;
  return Total;
}

} // namespace

int main() {
  printHeader("Fig 13: end-to-end workloads, speedup normalized to AKG "
              "(higher is better; one training step, batch 16)");
  NetworkModel Nets[6] = {buildResNet50(), buildMobileNetV2(),
                          buildAlexNet(), buildBert(21128),
                          buildBert(30522), buildSsd()};
  std::printf("%-14s %14s %14s %10s %10s\n", "network", "AKG cycles",
              "TVM cycles", "TVM", "CCE opt");
  BenchJson J("fig13_networks");
  std::vector<double> TvmR;
  for (NetworkModel &N : Nets) {
    int64_t A = 0, T = 0;
    double Seconds = wallSeconds([&] {
      A = networkCycles(N, [](const ir::Module &M,
                              const char *Nm,
                              CompileResult *O) {
        return cyclesAkgTuned(M, Nm, O, 6);
      });
      T = networkCycles(N, [](const ir::Module &M,
                              const char *Nm,
                              CompileResult *O) {
        return cyclesTvmTuned(M, Nm, O, 6);
      });
    });
    TvmR.push_back(double(A) / double(T));
    BenchJson::Rec &R = J.record(N.Name)
                            .num("akg_cycles", double(A))
                            .num("tvm_cycles", double(T))
                            .num("compile_wall_seconds", Seconds);
    if (N.Name == "ResNet-50") {
      int64_t O = networkCyclesCceOpt(N);
      R.num("cce_opt_cycles", double(O));
      std::printf("%-14s %14lld %14lld %10.3f %10.3f\n", N.Name.c_str(),
                  (long long)A, (long long)T, double(A) / double(T),
                  double(A) / double(O));
    } else {
      std::printf("%-14s %14lld %14lld %10.3f %10s\n", N.Name.c_str(),
                  (long long)A, (long long)T, double(A) / double(T), "n/a");
    }
  }
  std::printf("\nOverall AKG improvement over TVM: %.1f%% "
              "(paper: 20.2%%)\n",
              (1.0 / geomean(TvmR) - 1.0) * 100.0);
  J.total("akg_vs_tvm_improvement_pct", (1.0 / geomean(TvmR) - 1.0) * 100.0);
  J.total("cache_hit_rate", KernelCache::global().stats().hitRate());
  J.write();
  return 0;
}
