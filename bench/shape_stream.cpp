//===- bench/shape_stream.cpp - Dynamic-shape serving under a Zipf stream -===//
//
// Replays a seeded Zipf-distributed stream of dynamic-shape compile
// requests (eltwise / row-reduce / GEMM families, extents 1..1024) through
// the CompileService three times:
//
//   1. baseline  - AKG_DYNSHAPE=0, N threads: per-exact-shape caching,
//                  which doubles as the fresh per-shape compile reference
//                  for the correctness gate;
//   2. bucketed  - dynamic shapes on, N threads: one skeleton per shape
//                  bucket, concrete extents late-bound (DESIGN.md 4k);
//   3. bucketed  - dynamic shapes on, 1 thread: output bit hashes must
//                  match run 2 exactly (1-vs-N determinism).
//
// Hard gates (non-zero exit on failure):
//   - every distinct shape's bound output matches the evaluator reference
//     AND the per-shape fresh compile does too (tolerance 2e-2);
//   - bucketed effective hit rate >= 5x the per-exact-shape hit rate;
//   - bucketed serving wall < baseline wall;
//   - 1-thread and N-thread bucketed runs are bit-identical.
//
// Knobs: AKG_SEED (default 42), AKG_BENCH_REQUESTS (default 300, min
// 200), AKG_ZIPF_S (default 0.5), AKG_BENCH_THREADS (default 4).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "sim/Compare.h"
#include "sim/DynRun.h"
#include "support/Env.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace akg;

namespace {

constexpr double kTol = 2e-2;

//===----------------------------------------------------------------------===//
// Request-stream generation
//===----------------------------------------------------------------------===//

/// Deterministic 64-bit LCG; top bits feed a uniform double in [0, 1).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed * 0x9e3779b97f4a7c15ull + 1) {}
  double next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return double(State >> 11) * (1.0 / 9007199254740992.0);
  }
};

/// Zipf sampler over extents 1..Universe (rank == extent, so small
/// extents are the popular ones). A mild exponent keeps the stream
/// mostly-distinct: exact-shape caching sees few repeats while every
/// request still lands in one of a handful of buckets.
class ZipfExtents {
public:
  ZipfExtents(int64_t Universe, double S) : Cdf(size_t(Universe)) {
    double Acc = 0;
    for (int64_t K = 1; K <= Universe; ++K)
      Cdf[size_t(K - 1)] = Acc += 1.0 / std::pow(double(K), S);
    for (double &C : Cdf)
      C /= Acc;
  }
  int64_t sample(Lcg &R) const {
    double U = R.next();
    auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
    return int64_t(It - Cdf.begin()) + 1;
  }

private:
  std::vector<double> Cdf;
};

enum class Family { Eltwise, RowSum, Gemm };

const char *familyName(Family F) {
  switch (F) {
  case Family::Eltwise:
    return "eltwise";
  case Family::RowSum:
    return "rowsum";
  case Family::Gemm:
    return "gemm";
  }
  return "?";
}

/// relu(a + b) over [N, 32] with dim 0 dynamic under symbol "n".
std::shared_ptr<ir::Module> makeEltwise(int64_t N) {
  auto M = std::make_shared<ir::Module>();
  ir::Tensor A = M->placeholder("a", {N, 32}, ir::DType::F32);
  ir::Tensor B = M->placeholder("b", {N, 32}, ir::DType::F32);
  M->compute(
      "out", {N, 32},
      [&](const std::vector<ir::Expr> &I) {
        return ir::call(
            "relu", {ir::add(ir::tensorRead(A, I), ir::tensorRead(B, I))},
            ir::DType::F32);
      },
      ir::DType::F32);
  M->markDynamicDim(A, 0, "n");
  M->markDynamicDim(B, 0, "n");
  return M;
}

/// row[i] = sum_c a[i, c] over [N, 24]: reduce axis static, rows dynamic.
std::shared_ptr<ir::Module> makeRowSum(int64_t N) {
  auto M = std::make_shared<ir::Module>();
  ir::Tensor A = M->placeholder("a", {N, 24}, ir::DType::F32);
  ir::IterVar K = M->reduceAxis(24, "c");
  M->compute(
      "row", {N},
      [&](const std::vector<ir::Expr> &I) {
        return ir::reduce(ir::ReduceKind::Sum,
                          ir::tensorRead(A, {I[0], ir::var("c")}), {K});
      },
      ir::DType::F32);
  M->markDynamicDim(A, 0, "n");
  return M;
}

/// GEMM with dynamic M: c[i,j] = sum_k a[i,k] * b[k,j], K = Cols = 16.
std::shared_ptr<ir::Module> makeGemm(int64_t Rows) {
  auto M = std::make_shared<ir::Module>();
  ir::Tensor A = M->placeholder("a", {Rows, 16}, ir::DType::F16);
  ir::Tensor B = M->placeholder("b", {16, 16}, ir::DType::F16);
  ir::IterVar KV = M->reduceAxis(16, "k");
  M->compute(
      "c", {Rows, 16},
      [&](const std::vector<ir::Expr> &I) {
        return ir::reduce(ir::ReduceKind::Sum,
                          ir::mul(ir::tensorRead(A, {I[0], ir::var("k")}),
                                  ir::tensorRead(B, {ir::var("k"), I[1]})),
                          {KV});
      },
      ir::DType::F16);
  M->markDynamicDim(A, 0, "m");
  return M;
}

struct Request {
  Family Fam;
  int64_t Extent;
  std::shared_ptr<ir::Module> Mod;
  std::string Name;
};

std::vector<Request> makeStream(unsigned Count, uint64_t Seed, double ZipfS) {
  Lcg Rng(Seed);
  ZipfExtents Zipf(1024, ZipfS);
  std::vector<Request> Stream;
  Stream.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    Family F = static_cast<Family>(I % 3);
    int64_t N = Zipf.sample(Rng);
    std::shared_ptr<ir::Module> M;
    switch (F) {
    case Family::Eltwise:
      M = makeEltwise(N);
      break;
    case Family::RowSum:
      M = makeRowSum(N);
      break;
    case Family::Gemm:
      M = makeGemm(N);
      break;
    }
    Stream.push_back(Request{F, N, std::move(M),
                             std::string("stream/") + familyName(F) + "_n" +
                                 std::to_string(N) + "#" +
                                 std::to_string(I)});
  }
  return Stream;
}

//===----------------------------------------------------------------------===//
// One service run over the stream
//===----------------------------------------------------------------------===//

struct RunResult {
  std::vector<CompileResult> Results; // request order
  KernelCacheStats Cache;
  double WallSeconds = 0;
  std::vector<double> Latencies; // ServiceSeconds, request order
};

RunResult replay(const std::vector<Request> &Stream, bool DynShape,
                 unsigned Threads) {
  env::set("AKG_DYNSHAPE", DynShape ? "1" : "0");
  KernelCache Cache;
  RunResult R;
  R.WallSeconds = bench::wallSeconds([&] {
    CompileService::Options SO;
    SO.Threads = Threads;
    SO.QueueDepth = unsigned(Stream.size()) + 16;
    SO.Cache = &Cache;
    CompileService Service(SO);
    std::vector<std::future<CompileResult>> Futures;
    Futures.reserve(Stream.size());
    for (const Request &Q : Stream)
      Futures.push_back(Service.submit(*Q.Mod, AkgOptions{}, Q.Name));
    for (auto &F : Futures)
      R.Results.push_back(F.get());
  });
  R.Cache = Cache.stats();
  for (const CompileResult &C : R.Results)
    R.Latencies.push_back(C.ServiceSeconds);
  env::unset("AKG_DYNSHAPE");
  return R;
}

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  double Idx = P / 100.0 * double(V.size() - 1);
  size_t Lo = size_t(Idx);
  size_t Hi = std::min(Lo + 1, V.size() - 1);
  return V[Lo] + (V[Hi] - V[Lo]) * (Idx - double(Lo));
}

bool failGate(const char *What) {
  std::fprintf(stderr, "shape_stream GATE FAILED: %s\n", What);
  return false;
}

} // namespace

int main() {
  uint64_t Seed = uint64_t(env::getInt("AKG_SEED", 42));
  unsigned Requests = unsigned(env::getInt("AKG_BENCH_REQUESTS", 300));
  unsigned Threads = unsigned(env::getInt("AKG_BENCH_THREADS", 4));
  double ZipfS = 0.5;
  if (auto S = env::get("AKG_ZIPF_S")) {
    char *End = nullptr;
    double V = std::strtod(S->c_str(), &End);
    if (End && *End == '\0' && V >= 0 && V <= 4)
      ZipfS = V;
  }
  if (Requests < 200) {
    std::fprintf(stderr, "shape_stream needs >= 200 requests (got %u)\n",
                 Requests);
    return 1;
  }
  // Keep the three runs hermetic: no disk cache tier, no chaos, and each
  // run gets its own cold in-memory KernelCache.
  env::unset("AKG_CACHE_DIR");
  env::unset("AKG_CHAOS");
  env::unset("AKG_SHAPE_BUCKETS");

  bench::printHeader("Dynamic-shape serving: Zipf shape stream, bucketed "
                     "reuse vs per-exact-shape caching");
  std::vector<Request> Stream = makeStream(Requests, Seed, ZipfS);

  // First occurrence of every distinct (family, extent): the correctness
  // and determinism gates check each distinct shape exactly once.
  std::map<std::pair<int, int64_t>, unsigned> FirstOf;
  for (unsigned I = 0; I < Stream.size(); ++I)
    FirstOf.emplace(std::make_pair(int(Stream[I].Fam), Stream[I].Extent), I);
  if (FirstOf.size() < 50) {
    std::fprintf(stderr, "shape_stream needs >= 50 distinct shapes (got %zu)\n",
                 FirstOf.size());
    return 1;
  }

  std::printf("stream: %u requests, %zu distinct shapes, zipf s=%.2f, "
              "seed=%llu, %u threads\n\n",
              Requests, FirstOf.size(), ZipfS,
              static_cast<unsigned long long>(Seed), Threads);

  std::printf("run 1/3: baseline (AKG_DYNSHAPE=0, per-exact-shape cache)...\n");
  RunResult Base = replay(Stream, /*DynShape=*/false, Threads);
  std::printf("run 2/3: bucketed (%u threads)...\n", Threads);
  RunResult Buck = replay(Stream, /*DynShape=*/true, Threads);
  std::printf("run 3/3: bucketed (1 thread, determinism reference)...\n");
  RunResult Seq = replay(Stream, /*DynShape=*/true, 1);

  //===--------------------------------------------------------------------===//
  // Gates
  //===--------------------------------------------------------------------===//
  bool Ok = true;

  // Correctness: for every distinct shape, the bound (bucketed) result and
  // the per-shape fresh compile must both match the evaluator reference.
  double MaxErrBound = 0, MaxErrFresh = 0;
  unsigned Checked = 0;
  bool Deterministic = true;
  for (const auto &[Key, Idx] : FirstOf) {
    const Request &Q = Stream[Idx];
    uint64_t BitsN = 0, Bits1 = 0;
    sim::FunctionalDiff DB = sim::diffBoundAgainstReference(
        Buck.Results[Idx], *Q.Mod, bench::machine(), /*Seed=*/1, nullptr,
        &BitsN);
    sim::FunctionalDiff DS = sim::diffBoundAgainstReference(
        Seq.Results[Idx], *Q.Mod, bench::machine(), /*Seed=*/1, nullptr,
        &Bits1);
    sim::FunctionalDiff DF = sim::diffBoundAgainstReference(
        Base.Results[Idx], *Q.Mod, bench::machine(), /*Seed=*/1);
    MaxErrBound = std::max(MaxErrBound, DB.MaxAbsErr);
    MaxErrFresh = std::max(MaxErrFresh, DF.MaxAbsErr);
    ++Checked;
    if (!DB.within(kTol)) {
      std::fprintf(stderr, "  %s: bound output diverges: %s\n",
                   Q.Name.c_str(), DB.str().c_str());
      Ok = failGate("bucketed kernel does not match the reference");
    }
    if (!DF.within(kTol)) {
      std::fprintf(stderr, "  %s: fresh compile diverges: %s\n",
                   Q.Name.c_str(), DF.str().c_str());
      Ok = failGate("per-shape fresh compile does not match the reference");
    }
    if (BitsN != Bits1) {
      std::fprintf(stderr, "  %s: 1-thread and %u-thread outputs differ\n",
                   Q.Name.c_str(), Threads);
      Deterministic = false;
    }
  }
  if (!Deterministic)
    Ok = failGate("bucketed serving is not 1-vs-N-thread deterministic");

  // Reuse: bucketed effective hit rate must beat per-exact-shape caching
  // by at least 5x, and the serving wall must drop.
  double BaseRate = Base.Cache.hitRate();
  double BuckRate = Buck.Cache.hitRate();
  double Ratio = BaseRate > 0 ? BuckRate / BaseRate
                              : (BuckRate > 0 ? 1e9 : 0);
  if (Ratio < 5.0)
    Ok = failGate("effective hit rate is not >= 5x the exact-shape baseline");
  if (!(Buck.WallSeconds < Base.WallSeconds))
    Ok = failGate("bucketed serving wall is not below the baseline wall");

  //===--------------------------------------------------------------------===//
  // Report
  //===--------------------------------------------------------------------===//
  std::printf("\n%-28s %12s %12s\n", "", "exact-shape", "bucketed");
  std::printf("%-28s %12.3f %12.3f\n", "serving wall (s)", Base.WallSeconds,
              Buck.WallSeconds);
  std::printf("%-28s %12.4f %12.4f\n", "effective hit rate", BaseRate,
              BuckRate);
  std::printf("%-28s %12lld %12lld\n", "compiles (cache misses)",
              static_cast<long long>(Base.Cache.Misses),
              static_cast<long long>(Buck.Cache.Misses));
  std::printf("%-28s %12.5f %12.5f\n", "p50 latency (s)",
              percentile(Base.Latencies, 50), percentile(Buck.Latencies, 50));
  std::printf("%-28s %12.5f %12.5f\n", "p99 latency (s)",
              percentile(Base.Latencies, 99), percentile(Buck.Latencies, 99));
  std::printf("%-28s %12s %12lld\n", "dynamic binds", "-",
              static_cast<long long>(Buck.Cache.DynBinds));
  std::printf("%-28s %12s %12lld\n", "dynamic fallbacks", "-",
              static_cast<long long>(Buck.Cache.DynFallbacks));
  std::printf("\nhit-rate ratio: %.2fx (gate: >= 5x)   correctness: %u "
              "distinct shapes, max |err| bound %.3g fresh %.3g (tol %g)   "
              "determinism: %s\n",
              Ratio, Checked, MaxErrBound, MaxErrFresh, kTol,
              Deterministic ? "bit-identical" : "DIVERGED");

  bench::BenchJson J("shape_stream");
  J.total("requests", Requests);
  J.total("distinct_shapes", double(FirstOf.size()));
  J.total("threads", Threads);
  J.total("zipf_s", ZipfS);
  J.total("exact_hit_rate", BaseRate);
  J.total("bucketed_hit_rate", BuckRate);
  J.total("hit_rate_ratio", Ratio);
  J.total("exact_wall_seconds", Base.WallSeconds);
  J.total("bucketed_wall_seconds", Buck.WallSeconds);
  J.total("exact_p50_seconds", percentile(Base.Latencies, 50));
  J.total("exact_p99_seconds", percentile(Base.Latencies, 99));
  J.total("bucketed_p50_seconds", percentile(Buck.Latencies, 50));
  J.total("bucketed_p99_seconds", percentile(Buck.Latencies, 99));
  J.total("exact_compiles", double(Base.Cache.Misses));
  J.total("bucketed_compiles", double(Buck.Cache.Misses));
  J.total("dyn_binds", double(Buck.Cache.DynBinds));
  J.total("dyn_fallbacks", double(Buck.Cache.DynFallbacks));
  J.total("correctness_checked", Checked);
  J.total("correctness_max_abs_err", MaxErrBound);
  J.total("determinism_ok", Deterministic ? 1 : 0);
  J.total("gates_ok", Ok ? 1 : 0);
  for (Family F :
       {Family::Eltwise, Family::RowSum, Family::Gemm}) {
    unsigned Count = 0;
    std::map<int64_t, unsigned> Extents;
    for (const Request &Q : Stream)
      if (Q.Fam == F) {
        ++Count;
        ++Extents[Q.Extent];
      }
    J.record(familyName(F))
        .num("requests", Count)
        .num("distinct_extents", double(Extents.size()));
  }
  J.write();

  if (!Ok)
    return 1;
  std::printf("all gates passed\n");
  return 0;
}
