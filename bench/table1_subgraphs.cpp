//===- bench/table1_subgraphs.cpp - Table 1: subgraph summary -------------===//
//
// Reproduces Table 1: the five fused subgraphs used in Sec 6.2 with their
// operator counts, precision, batch size and input/output shapes.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "graph/Ops.h"

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

std::string shapeOf(const ir::Tensor &T) {
  std::string S = "(";
  for (unsigned I = 0; I < T->Shape.size(); ++I)
    S += (I ? "," : "") + std::to_string(T->Shape[I]);
  return S + ")";
}

} // namespace

int main() {
  printHeader("Table 1: summary of the subgraphs");
  std::printf("%-4s %-8s %-10s %-11s %-18s %-18s\n", "no.", "# of ops",
              "precision", "batch size", "input shape", "output shape");
  ModulePtr Subs[5] = {makeSubgraph1(), makeSubgraph2(), makeSubgraph3(),
                       makeSubgraph4(), makeSubgraph5()};
  const char *Prec[5] = {"FP16", "FP16", "FP32", "FP32", "FP16"};
  BenchJson J("table1_subgraphs");
  for (int I = 0; I < 5; ++I) {
    const ir::Module &M = *Subs[I];
    J.record("subgraph" + std::to_string(I + 1))
        .num("ops", double(opCount(M)))
        .num("batch", 16)
        .str("precision", Prec[I])
        .str("input_shape", shapeOf(M.inputs().front()))
        .str("output_shape", shapeOf(M.outputs().front()));
    std::printf("%-4d %-8u %-10s %-11d %-18s %-18s\n", I + 1, opCount(M),
                Prec[I], 16, shapeOf(M.inputs().front()).c_str(),
                shapeOf(M.outputs().front()).c_str());
  }
  J.write();
  return 0;
}
