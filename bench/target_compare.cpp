//===- bench/target_compare.cpp - CCE vs SIMT target comparison -----------===//
//
// Compiles the Fig 9 operator set for both simulated targets through one
// CompileService sharing a single content-addressed KernelCache, then
// reports per-family cycles on each target's own machine model
// (ascend910 for CCE, sm80 for SIMT). The point is not that the two
// cycle counts are comparable in absolute terms - they model different
// machines - but that the target abstraction holds up under load:
//
//   * both targets compile the whole op set through the shared frontend;
//   * the warm pass must be 100% cache hits with zero cross-target
//     aliasing (a simt request may never be served a cce kernel - the
//     cache key mixes the resolved target);
//   * every SIMT kernel's functional result matches the reference
//     evaluator (spot-checked on one shape per family to bound runtime).
//
// Results land in BENCH_target_compare.json: per-family cce_cycles /
// simt_cycles gate at the usual 25% in bench_diff.py; hit rates and
// aliasing/mismatch counters gate structurally (they are 0/1-exact).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "graph/Ops.h"
#include "sim/SimtRun.h"
#include "target/CceIr.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace akg;
using namespace akg::bench;
using namespace akg::graph;

namespace {

struct OpFamily {
  const char *Name;
  std::vector<ModulePtr> Shapes;
};

/// The Fig 9 op set, four shapes per family (the full ten-shape sweep
/// lives in fig09_single_ops; this bench pays for every module twice).
std::vector<OpFamily> buildFamilies() {
  std::vector<OpFamily> F;
  {
    OpFamily C{"op1_conv", {}};
    int64_t Cfg[4][5] = {{16, 14, 14, 32, 3},
                         {32, 14, 14, 32, 3},
                         {64, 14, 14, 64, 1},
                         {16, 28, 28, 16, 5}};
    for (auto &S : Cfg)
      C.Shapes.push_back(
          makeConv(16, S[0], S[1], S[2], S[3], S[4], S[4], 1, S[4] / 2));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op2_matmul", {}};
    int64_t Cfg[4][3] = {
        {128, 128, 128}, {256, 256, 256}, {512, 512, 512}, {256, 512, 128}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeMatmul(S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op3_relu", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeRelu({16, 32 + 16 * I, 28, 28}));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op4_bmm", {}};
    int64_t Cfg[4][3] = {
        {64, 64, 64}, {64, 64, 128}, {128, 64, 64}, {96, 96, 96}};
    for (auto &S : Cfg)
      C.Shapes.push_back(makeBatchMatmul(16, S[0], S[1], S[2]));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op5_cast", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeCast({16, 64, 14 + 2 * I, 14 + 2 * I}));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op6_transpose", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeTranspose(256 + 128 * I, 512));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op7_onehot", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeOneHot(16 * (I + 1) * 8, 128 + 64 * I));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op8_add", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeTensorAdd({16, 48 + 24 * I, 24, 24}));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op9_bn_reduce", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeBnReduce(16, 32 + 16 * I, 14, 14));
    F.push_back(std::move(C));
  }
  {
    OpFamily C{"op10_bn_update", {}};
    for (int I = 0; I < 4; ++I)
      C.Shapes.push_back(makeBnUpdate(16, 32 + 16 * I, 14, 14));
    F.push_back(std::move(C));
  }
  return F;
}

int64_t simtCycles(const cce::Kernel &K, sim::SimtResult *Out = nullptr) {
  sim::SimOptions SO;
  SO.Functional = false;
  sim::SimtResult R = sim::simulateSimt(K, sim::SimtSpec::sm80(), nullptr, SO);
  if (Out)
    *Out = R;
  return R.Cycles;
}

} // namespace

int main() {
  printHeader("Target comparison: Fig 9 op set on the CCE (ascend910) and "
              "SIMT (sm80) backends, one shared kernel cache");
  std::printf("%-16s %12s %12s %8s %8s %9s\n", "operator", "cce cycles",
              "simt cycles", "blocks", "waves", "barriers");

  std::vector<OpFamily> Families = buildFamilies();
  KernelCache Cache;
  CompileService::Options SO;
  SO.Cache = &Cache;
  CompileService Svc(SO);

  AkgOptions CceOpts;
  CceOpts.Target = sim::TargetKind::Cce;
  AkgOptions SimtOpts;
  SimtOpts.Target = sim::TargetKind::Simt;

  // Interleaved request stream: every module once per target, the way a
  // serving stack with mixed fleets would present it.
  std::vector<CompileJob> Jobs;
  for (const OpFamily &Fam : Families)
    for (const ModulePtr &M : Fam.Shapes) {
      Jobs.push_back(CompileJob{M.get(), CceOpts, Fam.Name});
      Jobs.push_back(CompileJob{M.get(), SimtOpts, Fam.Name});
    }

  std::vector<CompileResult> Cold;
  double ColdSecs = wallSeconds([&] { Cold = Svc.compileAll(Jobs); });
  KernelCacheStats ColdStats = Cache.stats();

  std::vector<CompileResult> Warm;
  double WarmSecs = wallSeconds([&] { Warm = Svc.compileAll(Jobs); });
  KernelCacheStats WarmStats = Cache.stats();

  // Audit: request i of the warm pass must be a cache hit serving the
  // SAME target the request asked for, byte-identical to the cold pass.
  int64_t Aliased = 0, Unstable = 0, Failed = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (!Cold[I].Outcome.isOk() || !Warm[I].Outcome.isOk()) {
      ++Failed;
      continue;
    }
    if (Cold[I].Kernel.Target != Jobs[I].Opts.Target ||
        Warm[I].Kernel.Target != Jobs[I].Opts.Target)
      ++Aliased;
    if (cce::printKernel(Cold[I].Kernel) != cce::printKernel(Warm[I].Kernel))
      ++Unstable;
  }
  int64_t WarmHits =
      (WarmStats.Hits + WarmStats.Coalesced) - (ColdStats.Hits + ColdStats.Coalesced);

  // Per-family cycle totals on each target's own machine, plus a
  // one-shape-per-family functional spot check of the SIMT kernels.
  BenchJson J("target_compare");
  size_t Idx = 0;
  int64_t SimtMismatches = 0;
  for (const OpFamily &Fam : Families) {
    int64_t CceCyc = 0, SimtCyc = 0, Blocks = 0, Waves = 0, Barriers = 0;
    for (size_t S = 0; S < Fam.Shapes.size(); ++S) {
      const CompileResult &RC = Cold[Idx++];
      const CompileResult &RS = Cold[Idx++];
      CceCyc += simCycles(RC.Kernel);
      sim::SimtResult SR;
      SimtCyc += simtCycles(RS.Kernel, &SR);
      Blocks += SR.Blocks;
      Waves += SR.Waves;
      Barriers += SR.Barriers;
      if (S == 0) {
        sim::FunctionalDiff D = sim::diffSimtAgainstReference(
            RS.Kernel, *Fam.Shapes[S], sim::SimtSpec::sm80());
        if (!D.within(2e-2))
          ++SimtMismatches;
      }
    }
    std::printf("%-16s %12lld %12lld %8lld %8lld %9lld\n", Fam.Name,
                (long long)CceCyc, (long long)SimtCyc, (long long)Blocks,
                (long long)Waves, (long long)Barriers);
    J.record(Fam.Name)
        .num("cce_cycles", double(CceCyc))
        .num("simt_cycles", double(SimtCyc))
        .num("simt_blocks", double(Blocks))
        .num("simt_waves", double(Waves))
        .num("simt_barriers", double(Barriers));
  }

  std::printf("\ncold %.2fs (%lld misses), warm %.2fs (%lld/%zu hits); "
              "cross-target aliases %lld, warm mismatches %lld, "
              "simt functional mismatches %lld, failures %lld\n",
              ColdSecs, (long long)ColdStats.Misses, WarmSecs,
              (long long)WarmHits, Jobs.size(), (long long)Aliased,
              (long long)Unstable, (long long)SimtMismatches,
              (long long)Failed);

  J.total("compile_wall_seconds", ColdSecs);
  J.total("warm_wall_seconds", WarmSecs);
  J.total("warm_hit_rate",
          Jobs.empty() ? 0.0 : double(WarmHits) / double(Jobs.size()));
  // Exact-zero correctness gates (bench_diff flags any cycle-key drift;
  // these are structural and must stay 0 / 1).
  J.total("cross_target_aliases", double(Aliased));
  J.total("warm_kernel_mismatches", double(Unstable));
  J.total("simt_functional_mismatches", double(SimtMismatches));
  J.total("request_failures", double(Failed));
  J.total("determinism_ok",
          (Aliased == 0 && Unstable == 0 && SimtMismatches == 0 && Failed == 0)
              ? 1.0
              : 0.0);
  J.write();
  return (Aliased || Unstable || SimtMismatches || Failed) ? 1 : 0;
}
