# Empty dependencies file for ablation_tuner.
# This may be replaced when dependencies are built.
