file(REMOVE_RECURSE
  "../bench/fig09_single_ops"
  "../bench/fig09_single_ops.pdb"
  "CMakeFiles/fig09_single_ops.dir/fig09_single_ops.cpp.o"
  "CMakeFiles/fig09_single_ops.dir/fig09_single_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_single_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
