# Empty dependencies file for fig09_single_ops.
# This may be replaced when dependencies are built.
