file(REMOVE_RECURSE
  "../bench/fig10_loc"
  "../bench/fig10_loc.pdb"
  "CMakeFiles/fig10_loc.dir/fig10_loc.cpp.o"
  "CMakeFiles/fig10_loc.dir/fig10_loc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
