# Empty compiler generated dependencies file for fig10_loc.
# This may be replaced when dependencies are built.
