file(REMOVE_RECURSE
  "../bench/fig11_gemm_shapes"
  "../bench/fig11_gemm_shapes.pdb"
  "CMakeFiles/fig11_gemm_shapes.dir/fig11_gemm_shapes.cpp.o"
  "CMakeFiles/fig11_gemm_shapes.dir/fig11_gemm_shapes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gemm_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
