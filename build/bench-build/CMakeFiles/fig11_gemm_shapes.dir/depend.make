# Empty dependencies file for fig11_gemm_shapes.
# This may be replaced when dependencies are built.
