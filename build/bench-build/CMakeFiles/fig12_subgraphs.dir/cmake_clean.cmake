file(REMOVE_RECURSE
  "../bench/fig12_subgraphs"
  "../bench/fig12_subgraphs.pdb"
  "CMakeFiles/fig12_subgraphs.dir/fig12_subgraphs.cpp.o"
  "CMakeFiles/fig12_subgraphs.dir/fig12_subgraphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
