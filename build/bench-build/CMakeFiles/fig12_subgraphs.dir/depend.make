# Empty dependencies file for fig12_subgraphs.
# This may be replaced when dependencies are built.
