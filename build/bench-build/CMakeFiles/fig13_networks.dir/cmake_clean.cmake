file(REMOVE_RECURSE
  "../bench/fig13_networks"
  "../bench/fig13_networks.pdb"
  "CMakeFiles/fig13_networks.dir/fig13_networks.cpp.o"
  "CMakeFiles/fig13_networks.dir/fig13_networks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_networks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
