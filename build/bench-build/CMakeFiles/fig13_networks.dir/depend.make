# Empty dependencies file for fig13_networks.
# This may be replaced when dependencies are built.
