file(REMOVE_RECURSE
  "../bench/table1_subgraphs"
  "../bench/table1_subgraphs.pdb"
  "CMakeFiles/table1_subgraphs.dir/table1_subgraphs.cpp.o"
  "CMakeFiles/table1_subgraphs.dir/table1_subgraphs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_subgraphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
