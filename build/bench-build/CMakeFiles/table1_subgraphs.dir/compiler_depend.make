# Empty compiler generated dependencies file for table1_subgraphs.
# This may be replaced when dependencies are built.
