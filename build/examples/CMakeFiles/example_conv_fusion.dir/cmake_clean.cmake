file(REMOVE_RECURSE
  "CMakeFiles/example_conv_fusion.dir/conv_fusion.cpp.o"
  "CMakeFiles/example_conv_fusion.dir/conv_fusion.cpp.o.d"
  "example_conv_fusion"
  "example_conv_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_conv_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
