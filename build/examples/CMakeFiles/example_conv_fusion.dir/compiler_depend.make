# Empty compiler generated dependencies file for example_conv_fusion.
# This may be replaced when dependencies are built.
