file(REMOVE_RECURSE
  "CMakeFiles/example_gemm_tuning.dir/gemm_tuning.cpp.o"
  "CMakeFiles/example_gemm_tuning.dir/gemm_tuning.cpp.o.d"
  "example_gemm_tuning"
  "example_gemm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gemm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
