# Empty compiler generated dependencies file for example_gemm_tuning.
# This may be replaced when dependencies are built.
