
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/akg/AutoTuner.cpp" "src/CMakeFiles/akg.dir/akg/AutoTuner.cpp.o" "gcc" "src/CMakeFiles/akg.dir/akg/AutoTuner.cpp.o.d"
  "/root/repo/src/akg/Compiler.cpp" "src/CMakeFiles/akg.dir/akg/Compiler.cpp.o" "gcc" "src/CMakeFiles/akg.dir/akg/Compiler.cpp.o.d"
  "/root/repo/src/baselines/CceLibrary.cpp" "src/CMakeFiles/akg.dir/baselines/CceLibrary.cpp.o" "gcc" "src/CMakeFiles/akg.dir/baselines/CceLibrary.cpp.o.d"
  "/root/repo/src/baselines/TvmCompiler.cpp" "src/CMakeFiles/akg.dir/baselines/TvmCompiler.cpp.o" "gcc" "src/CMakeFiles/akg.dir/baselines/TvmCompiler.cpp.o.d"
  "/root/repo/src/graph/Graph.cpp" "src/CMakeFiles/akg.dir/graph/Graph.cpp.o" "gcc" "src/CMakeFiles/akg.dir/graph/Graph.cpp.o.d"
  "/root/repo/src/graph/Networks.cpp" "src/CMakeFiles/akg.dir/graph/Networks.cpp.o" "gcc" "src/CMakeFiles/akg.dir/graph/Networks.cpp.o.d"
  "/root/repo/src/graph/Ops.cpp" "src/CMakeFiles/akg.dir/graph/Ops.cpp.o" "gcc" "src/CMakeFiles/akg.dir/graph/Ops.cpp.o.d"
  "/root/repo/src/ir/Dsl.cpp" "src/CMakeFiles/akg.dir/ir/Dsl.cpp.o" "gcc" "src/CMakeFiles/akg.dir/ir/Dsl.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/CMakeFiles/akg.dir/ir/Expr.cpp.o" "gcc" "src/CMakeFiles/akg.dir/ir/Expr.cpp.o.d"
  "/root/repo/src/ir/Passes.cpp" "src/CMakeFiles/akg.dir/ir/Passes.cpp.o" "gcc" "src/CMakeFiles/akg.dir/ir/Passes.cpp.o.d"
  "/root/repo/src/ir/PolyExtract.cpp" "src/CMakeFiles/akg.dir/ir/PolyExtract.cpp.o" "gcc" "src/CMakeFiles/akg.dir/ir/PolyExtract.cpp.o.d"
  "/root/repo/src/ir/Stmt.cpp" "src/CMakeFiles/akg.dir/ir/Stmt.cpp.o" "gcc" "src/CMakeFiles/akg.dir/ir/Stmt.cpp.o.d"
  "/root/repo/src/poly/Affine.cpp" "src/CMakeFiles/akg.dir/poly/Affine.cpp.o" "gcc" "src/CMakeFiles/akg.dir/poly/Affine.cpp.o.d"
  "/root/repo/src/poly/Lp.cpp" "src/CMakeFiles/akg.dir/poly/Lp.cpp.o" "gcc" "src/CMakeFiles/akg.dir/poly/Lp.cpp.o.d"
  "/root/repo/src/schedule/AstGen.cpp" "src/CMakeFiles/akg.dir/schedule/AstGen.cpp.o" "gcc" "src/CMakeFiles/akg.dir/schedule/AstGen.cpp.o.d"
  "/root/repo/src/schedule/ScheduleTree.cpp" "src/CMakeFiles/akg.dir/schedule/ScheduleTree.cpp.o" "gcc" "src/CMakeFiles/akg.dir/schedule/ScheduleTree.cpp.o.d"
  "/root/repo/src/scheduler/Cluster.cpp" "src/CMakeFiles/akg.dir/scheduler/Cluster.cpp.o" "gcc" "src/CMakeFiles/akg.dir/scheduler/Cluster.cpp.o.d"
  "/root/repo/src/scheduler/Dependence.cpp" "src/CMakeFiles/akg.dir/scheduler/Dependence.cpp.o" "gcc" "src/CMakeFiles/akg.dir/scheduler/Dependence.cpp.o.d"
  "/root/repo/src/scheduler/Pluto.cpp" "src/CMakeFiles/akg.dir/scheduler/Pluto.cpp.o" "gcc" "src/CMakeFiles/akg.dir/scheduler/Pluto.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/CMakeFiles/akg.dir/sim/Machine.cpp.o" "gcc" "src/CMakeFiles/akg.dir/sim/Machine.cpp.o.d"
  "/root/repo/src/sim/Simulator.cpp" "src/CMakeFiles/akg.dir/sim/Simulator.cpp.o" "gcc" "src/CMakeFiles/akg.dir/sim/Simulator.cpp.o.d"
  "/root/repo/src/support/Matrix.cpp" "src/CMakeFiles/akg.dir/support/Matrix.cpp.o" "gcc" "src/CMakeFiles/akg.dir/support/Matrix.cpp.o.d"
  "/root/repo/src/support/Rational.cpp" "src/CMakeFiles/akg.dir/support/Rational.cpp.o" "gcc" "src/CMakeFiles/akg.dir/support/Rational.cpp.o.d"
  "/root/repo/src/transforms/AutoTiling.cpp" "src/CMakeFiles/akg.dir/transforms/AutoTiling.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/AutoTiling.cpp.o.d"
  "/root/repo/src/transforms/Conv.cpp" "src/CMakeFiles/akg.dir/transforms/Conv.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/Conv.cpp.o.d"
  "/root/repo/src/transforms/Fusion.cpp" "src/CMakeFiles/akg.dir/transforms/Fusion.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/Fusion.cpp.o.d"
  "/root/repo/src/transforms/IntraTile.cpp" "src/CMakeFiles/akg.dir/transforms/IntraTile.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/IntraTile.cpp.o.d"
  "/root/repo/src/transforms/MemHierSpec.cpp" "src/CMakeFiles/akg.dir/transforms/MemHierSpec.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/MemHierSpec.cpp.o.d"
  "/root/repo/src/transforms/TileSpecLang.cpp" "src/CMakeFiles/akg.dir/transforms/TileSpecLang.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/TileSpecLang.cpp.o.d"
  "/root/repo/src/transforms/Tiling.cpp" "src/CMakeFiles/akg.dir/transforms/Tiling.cpp.o" "gcc" "src/CMakeFiles/akg.dir/transforms/Tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
