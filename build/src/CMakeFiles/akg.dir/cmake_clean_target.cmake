file(REMOVE_RECURSE
  "libakg.a"
)
