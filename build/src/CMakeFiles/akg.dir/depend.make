# Empty dependencies file for akg.
# This may be replaced when dependencies are built.
