
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AffineTest.cpp" "tests/CMakeFiles/akg_tests.dir/AffineTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/AffineTest.cpp.o.d"
  "/root/repo/tests/AstGenTest.cpp" "tests/CMakeFiles/akg_tests.dir/AstGenTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/AstGenTest.cpp.o.d"
  "/root/repo/tests/BaselineAndTunerTest.cpp" "tests/CMakeFiles/akg_tests.dir/BaselineAndTunerTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/BaselineAndTunerTest.cpp.o.d"
  "/root/repo/tests/CompilerTest.cpp" "tests/CMakeFiles/akg_tests.dir/CompilerTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/CompilerTest.cpp.o.d"
  "/root/repo/tests/FuzzModuleTest.cpp" "tests/CMakeFiles/akg_tests.dir/FuzzModuleTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/FuzzModuleTest.cpp.o.d"
  "/root/repo/tests/GraphAndSpecTest.cpp" "tests/CMakeFiles/akg_tests.dir/GraphAndSpecTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/GraphAndSpecTest.cpp.o.d"
  "/root/repo/tests/IrTest.cpp" "tests/CMakeFiles/akg_tests.dir/IrTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/IrTest.cpp.o.d"
  "/root/repo/tests/LpTest.cpp" "tests/CMakeFiles/akg_tests.dir/LpTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/LpTest.cpp.o.d"
  "/root/repo/tests/PolyPropertyTest.cpp" "tests/CMakeFiles/akg_tests.dir/PolyPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/PolyPropertyTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/akg_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/ScheduleTreeTest.cpp" "tests/CMakeFiles/akg_tests.dir/ScheduleTreeTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/ScheduleTreeTest.cpp.o.d"
  "/root/repo/tests/SchedulerTest.cpp" "tests/CMakeFiles/akg_tests.dir/SchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/SchedulerTest.cpp.o.d"
  "/root/repo/tests/StorageTest.cpp" "tests/CMakeFiles/akg_tests.dir/StorageTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/StorageTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/akg_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/TargetTest.cpp" "tests/CMakeFiles/akg_tests.dir/TargetTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/TargetTest.cpp.o.d"
  "/root/repo/tests/TransformsTest.cpp" "tests/CMakeFiles/akg_tests.dir/TransformsTest.cpp.o" "gcc" "tests/CMakeFiles/akg_tests.dir/TransformsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/akg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
