# Empty compiler generated dependencies file for akg_tests.
# This may be replaced when dependencies are built.
