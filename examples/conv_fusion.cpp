//===- examples/conv_fusion.cpp - The paper's running example -------------===//
//
// Reproduces the Fig 3 walkthrough: a bias-add producer, a 2D convolution
// and two vector post-operators, compiled as ONE kernel. Post-tiling
// fusion (the reverse strategy) re-schedules the producer under the
// consumer tiles with overlapped ranges, the convolution is lowered via
// img2col + fractal GEMM onto the Cube unit, and the vector ops stream
// through UB. Prints every intermediate the paper's figures show.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "sim/Simulator.h"
#include "transforms/MemHierSpec.h"

#include <cstdio>

using namespace akg;
using namespace akg::ir;

int main() {
  int64_t H = 40, W = 40, KH = 3, KW = 3;
  Module M;
  Tensor A = M.placeholder("A", {H, W});
  Tensor B = M.placeholder("B", {KH, KW});
  Tensor A2 = M.compute("A2", {H, W}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, I), floatImm(0.5)); // S0: bias add
  });
  IterVar Kh = M.reduceAxis(KH, "kh");
  IterVar Kw = M.reduceAxis(KW, "kw");
  Tensor C = M.compute("C", {H - KH + 1, W - KW + 1},
                       [&](const std::vector<Expr> &I) { // S1/S2: conv
                         return reduce(
                             ReduceKind::Sum,
                             mul(tensorRead(A2, {add(I[0], var("kh")),
                                                 add(I[1], var("kw"))}),
                                 tensorRead(B, {var("kh"), var("kw")})),
                             {Kh, Kw});
                       });
  Tensor C2 = M.compute("C2", {H - KH + 1, W - KW + 1},
                        [&](const std::vector<Expr> &I) { // S3: abs
                          return call("abs", {tensorRead(C, I)}, DType::F16);
                        });
  M.compute("C3", {H - KH + 1, W - KW + 1},
            [&](const std::vector<Expr> &I) { // S4: relu
              return call("relu", {tensorRead(C2, I)}, DType::F16);
            });

  CompileResult R = compileWithAkg(M, AkgOptions{}, "conv_fusion");
  std::printf("--- schedule tree after post-tiling fusion (cf. Fig 3e/3f) "
              "---\n%s\n",
              R.ScheduleTreeDump.c_str());
  std::printf("fused producers: %u (A2 is tile-local; its GM round trip is "
              "gone)\n\n",
              R.FusedProducers);
  std::printf("--- CCE kernel (img2col + fractal MMAD on the Cube unit) "
              "---\n%s\n",
              cce::printKernel(R.Kernel).c_str());

  // Render the kernel's dataflow in the Fig 8 specification language.
  const sim::MachineSpec &Spec = sim::MachineSpec::ascend910();
  transforms::NpuSpec NS = transforms::specFromKernel(R.Kernel, Spec);
  std::printf("--- dataflow as a Fig 8 npu specification ---\n%s\n",
              transforms::printNpuSpec(NS).c_str());

  double Err = verifyKernel(R.Kernel, M, Spec);
  std::printf("max abs error vs reference evaluator: %g\n", Err);
  return Err < 1e-2 ? 0 : 1;
}
