//===- examples/custom_operator.cpp - Custom ops + manual control ---------===//
//
// What the paper's introduction motivates: a user-invented operator the
// vendor library does not provide, compiled without writing any schedule.
// Also demonstrates the two specification languages: a manual tiling
// policy in the Fig 4 language overriding Auto Tiling, and validation of
// a hand-written Fig 8 memory-hierarchy specification.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "sim/Simulator.h"
#include "transforms/MemHierSpec.h"

#include <cstdio>

using namespace akg;
using namespace akg::ir;

int main() {
  // A custom operator: fused "swish-residual-norm"
  //   out[i,j] = (x * sigmoid(x) + r) * rsqrt(colsum(x^2)/N + eps)
  int64_t N = 96, D = 128;
  Module M;
  Tensor X = M.placeholder("x", {N, D});
  Tensor R = M.placeholder("r", {N, D});
  Tensor Sw = M.compute("swish", {N, D}, [&](const std::vector<Expr> &I) {
    Expr V = tensorRead(X, I);
    return mul(V, call("sigmoid", {V}, DType::F16));
  });
  Tensor Res = M.compute("resid", {N, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(Sw, I), tensorRead(R, I));
  });
  IterVar Rn = M.reduceAxis(N, "rn");
  Tensor Sq = M.compute("colsq", {D}, [&](const std::vector<Expr> &I) {
    Expr V = tensorRead(X, {var("rn"), I[0]});
    return reduce(ReduceKind::Sum, mul(V, V), {Rn});
  }, DType::F32);
  M.compute("out", {N, D}, [&](const std::vector<Expr> &I) {
    Expr Norm = call("rsqrt",
                     {add(mul(tensorRead(Sq, {I[1]}),
                              floatImm(1.0 / N, DType::F32)),
                          floatImm(1e-5, DType::F32))},
                     DType::F32);
    return mul(tensorRead(Res, I), cast(DType::F16, Norm));
  });

  // 1) Fully automatic compilation.
  CompileResult Auto = compileWithAkg(M, AkgOptions{}, "custom_auto");
  const sim::MachineSpec &Spec = sim::MachineSpec::ascend910();
  std::printf("automatic: tiles [%s], err %g\n",
              Auto.TilingPolicyText.c_str(),
              verifyKernel(Auto.Kernel, M, Spec));

  // 2) Manual tile policy in the Fig 4 language.
  transforms::TilingPolicy Pol;
  std::string Err;
  if (!transforms::parseTilingPolicy("S_5: 32@UB, 64@UB", Pol, Err)) {
    std::printf("policy parse error: %s\n", Err.c_str());
    return 1;
  }
  AkgOptions Manual;
  Manual.ManualTiles = Pol;
  CompileResult Man = compileWithAkg(M, Manual, "custom_manual");
  std::printf("manual:    tiles [%s], err %g\n",
              Man.TilingPolicyText.c_str(),
              verifyKernel(Man.Kernel, M, Spec));

  // 3) A hand-written Fig 8 memory-hierarchy specification, validated
  //    against the machine model.
  const char *Fig8 = "buf UB (262144)\n"
                     "dataflow (GM -> UB, 64, 32)\n"
                     "vector (UB -> UB, 128, 16)\n"
                     "dataflow (UB -> GM, 64, 32)\n";
  transforms::NpuSpec NS;
  if (!transforms::parseNpuSpec(Fig8, NS, Err) ||
      !transforms::validateNpuSpec(NS, Spec, Err)) {
    std::printf("npu spec rejected: %s\n", Err.c_str());
    return 1;
  }
  std::printf("fig8 spec accepted:\n%s", transforms::printNpuSpec(NS).c_str());
  return 0;
}
