//===- examples/gemm_tuning.cpp - Auto Tiling + the auto-tuner ------------===//
//
// Compiles a GEMM with Auto Tiling's analytical tile choice (minimal data
// movement under the double-buffering capacity constraint, Sec 4.2), then
// lets the learning-based auto-tuner (Sec 5.3) search the valid tiling
// space for a better configuration, exactly as AKG does in production.
//
//===----------------------------------------------------------------------===//

#include "akg/AutoTuner.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace akg;

int main() {
  auto M = graph::makeMatmul(896, 896, 896);
  const sim::MachineSpec &Spec = sim::MachineSpec::ascend910();

  CompileResult Seed = compileWithAkg(*M, AkgOptions{}, "gemm_seed");
  std::printf("Auto Tiling chose: %s\n", Seed.TilingPolicyText.c_str());

  TunerOptions TO;
  TO.FirstRoundSamples = 16;
  TO.RoundSamples = 8;
  TO.MaxRounds = 3;
  TuneResult R = tuneAkgKernel(*M, AkgOptions{}, Spec, TO);
  std::printf("Auto Tiling cycles:   %lld\n", (long long)R.InitialCycles);
  std::printf("Tuned cycles:         %lld (%u samples measured)\n",
              (long long)R.BestCycles, R.SamplesMeasured);
  std::printf("Best tiles:          ");
  for (int64_t T : R.BestTiles)
    std::printf(" %lld", (long long)T);
  std::printf("\nGain over Auto Tiling: %.2f%%\n",
              (double(R.InitialCycles) / double(R.BestCycles) - 1.0) * 100);
  return 0;
}
