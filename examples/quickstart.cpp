//===- examples/quickstart.cpp - AKG in five minutes ----------------------===//
//
// Declares a small fused operator in the tensor-expression DSL, compiles
// it with the full AKG pipeline, runs the generated CCE kernel on the
// DaVinci simulator and checks the result against the reference
// evaluator.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace akg;
using namespace akg::ir;

int main() {
  // out = relu(a * b + c), elementwise over a (64, 96) FP16 tensor.
  Module M;
  Tensor A = M.placeholder("a", {64, 96});
  Tensor B = M.placeholder("b", {64, 96});
  Tensor C = M.placeholder("c", {64, 96});
  Tensor T = M.compute("t", {64, 96}, [&](const std::vector<Expr> &I) {
    return add(mul(tensorRead(A, I), tensorRead(B, I)), tensorRead(C, I));
  });
  M.compute("out", {64, 96}, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(T, I)}, DType::F16);
  });
  std::printf("--- DSL ---\n%s\n", M.str().c_str());

  // Compile: scheduling, tiling, fusion, storage management,
  // vectorization and synchronization are all automatic.
  CompileResult R = compileWithAkg(M, AkgOptions{}, "quickstart");
  std::printf("--- schedule tree ---\n%s\n", R.ScheduleTreeDump.c_str());
  std::printf("--- tile policy (Fig 4 language) ---\n%s\n\n",
              R.TilingPolicyText.c_str());
  std::printf("--- CCE kernel ---\n%s\n",
              cce::printKernel(R.Kernel).c_str());

  // Execute on the simulator and verify against the reference evaluator.
  const sim::MachineSpec &Spec = sim::MachineSpec::ascend910();
  double Err = verifyKernel(R.Kernel, M, Spec);
  BufferMap Bufs;
  for (const Tensor &In : M.inputs())
    Bufs[In->Name] = makeTestData(In->numElements(), 3);
  sim::SimResult S = sim::simulate(R.Kernel, Spec, &Bufs);
  std::printf("cycles: %lld, GM traffic: %lld bytes, vector util: %.1f%%, "
              "max abs error vs reference: %g\n",
              (long long)S.Cycles, (long long)S.GmTrafficBytes,
              100.0 * S.utilization(sim::Pipe::V), Err);
  return Err < 1e-3 ? 0 : 1;
}
