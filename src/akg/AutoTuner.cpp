//===- akg/AutoTuner.cpp - Learning-based tile auto-tuner -----------------===//

#include "akg/AutoTuner.h"

#include "akg/CompileService.h"
#include "sim/Simulator.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace akg {

namespace {

/// Deterministic xorshift RNG (no global state).
struct Rng {
  uint64_t S;
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  double unit() { return double(next() % (1ull << 30)) / double(1ull << 30); }
};

/// The learned model: nearest-neighbour regression over log-tile features
/// with a finite-difference "derivative" per dimension, used to pick the
/// forwarding direction of second-round samples.
struct PerfModel {
  struct Sample {
    std::vector<unsigned> Idx; // candidate indices per dim
    int64_t Cycles;
  };
  std::vector<Sample> Samples;

  void add(std::vector<unsigned> Idx, int64_t Cycles) {
    Samples.push_back({std::move(Idx), Cycles});
  }

  /// Direction (-1, 0, +1) per dimension that the measurements suggest
  /// improves performance around \p At.
  std::vector<int> gradientAt(const std::vector<unsigned> &At) const {
    std::vector<int> Dir(At.size(), 0);
    for (unsigned D = 0; D < At.size(); ++D) {
      // Average cycles of samples with larger vs smaller candidate index
      // on this dim.
      double UpSum = 0, DownSum = 0;
      unsigned UpN = 0, DownN = 0;
      for (const Sample &S : Samples) {
        if (S.Idx[D] > At[D]) {
          UpSum += double(S.Cycles);
          ++UpN;
        } else if (S.Idx[D] < At[D]) {
          DownSum += double(S.Cycles);
          ++DownN;
        }
      }
      if (UpN && DownN)
        Dir[D] = (UpSum / UpN < DownSum / DownN) ? 1 : -1;
      else if (UpN)
        Dir[D] = 1;
      else if (DownN)
        Dir[D] = -1;
    }
    return Dir;
  }
};

} // namespace

TuneResult tuneTiles(const std::vector<std::vector<int64_t>> &Space,
                     const std::vector<int64_t> &Start, MeasureFn Measure,
                     const TunerOptions &Opts) {
  TuneResult Res;
  unsigned W = static_cast<unsigned>(Space.size());
  Rng R(Opts.Seed);
  PerfModel Model;
  std::map<std::vector<unsigned>, int64_t> Seen;
  unsigned Threads = compileServiceThreads(Opts.MeasureThreads);

  auto TilesOf = [&](const std::vector<unsigned> &Idx) {
    std::vector<int64_t> T(W);
    for (unsigned D = 0; D < W; ++D)
      T[D] = Space[D][Idx[D]];
    return T;
  };

  std::vector<unsigned> BestIdx;
  int64_t Best = 0;
  bool HaveBest = false;

  // Measures a batch of distinct, not-yet-seen configurations, fanning
  // across workers, and folds the results in draw order - so the tuning
  // trajectory is identical on 1 thread and on N.
  auto MeasureBatch = [&](const std::vector<std::vector<unsigned>> &Batch) {
    std::vector<int64_t> Cycles(Batch.size());
    parallelFor(Threads, Batch.size(),
                [&](size_t I) { Cycles[I] = Measure(TilesOf(Batch[I])); });
    for (size_t I = 0; I < Batch.size(); ++I) {
      Seen.emplace(Batch[I], Cycles[I]);
      Model.add(Batch[I], Cycles[I]);
      ++Res.SamplesMeasured;
      if (!HaveBest || Cycles[I] < Best) {
        Best = Cycles[I];
        BestIdx = Batch[I];
        HaveBest = true;
      }
    }
  };

  // Draws one candidate via \p DrawOne, resampling (bounded) until it is
  // distinct from everything measured or already drawn this batch: the
  // sample budget buys distinct points, never a re-measurement.
  std::set<std::vector<unsigned>> InBatch;
  auto PushDistinct = [&](std::vector<std::vector<unsigned>> &Batch,
                          const std::function<std::vector<unsigned>()>
                              &DrawOne) {
    for (unsigned Try = 0; Try < 16; ++Try) {
      std::vector<unsigned> Idx = DrawOne();
      if (Seen.count(Idx) || InBatch.count(Idx)) {
        Stats::get().add("tuner.duplicate_draws");
        continue;
      }
      InBatch.insert(Idx);
      Batch.push_back(std::move(Idx));
      return;
    }
    // Space locally exhausted around this draw; spend the slot nowhere
    // rather than on a duplicate measurement.
    Stats::get().add("tuner.exhausted_draws");
  };

  auto DrawUniform = [&] {
    std::vector<unsigned> Idx(W);
    for (unsigned D = 0; D < W; ++D)
      Idx[D] = static_cast<unsigned>(R.below(Space[D].size()));
    return Idx;
  };

  // Starting point (Auto Tiling's choice).
  std::vector<unsigned> StartIdx(W, 0);
  for (unsigned D = 0; D < W; ++D) {
    for (unsigned I = 0; I < Space[D].size(); ++I)
      if (Space[D][I] == Start[D])
        StartIdx[D] = I;
  }
  MeasureBatch({StartIdx});
  Res.InitialCycles = Seen.at(StartIdx);

  // Round 1: random samples, drawn up front, measured concurrently.
  {
    std::vector<std::vector<unsigned>> Batch;
    InBatch.clear();
    for (unsigned I = 0; I < Opts.FirstRoundSamples; ++I)
      PushDistinct(Batch, DrawUniform);
    MeasureBatch(Batch);
  }

  // Follow-up rounds: model-guided steps from the best pool with
  // probability p, uniform otherwise; p evolves with the pre-defined
  // parameter and stays within (0, e). Each round's candidates are drawn
  // against the model as of the round start, then measured as a batch.
  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    double P = std::min(std::exp(Opts.PParam * (Round + 1)) - 1.0,
                        std::exp(1.0)) /
               std::exp(1.0);
    int64_t RoundStartBest = Best;
    // Best pool: the N best samples, copied - the batch measurement
    // below grows Model.Samples and would invalidate pointers into it.
    std::vector<PerfModel::Sample> Pool(Model.Samples);
    std::sort(Pool.begin(), Pool.end(),
              [](const PerfModel::Sample &A, const PerfModel::Sample &B) {
                return A.Cycles < B.Cycles;
              });
    if (Pool.size() > Opts.BestPool)
      Pool.resize(Opts.BestPool);
    auto DrawGuided = [&] {
      if (Pool.empty() || R.unit() >= P)
        return DrawUniform();
      std::vector<unsigned> Idx = Pool[R.below(Pool.size())].Idx;
      std::vector<int> Dir = Model.gradientAt(Idx);
      unsigned D = static_cast<unsigned>(R.below(W));
      int Step = Dir[D] != 0 ? Dir[D] : (R.below(2) ? 1 : -1);
      int64_t NI = int64_t(Idx[D]) + Step;
      NI = std::max<int64_t>(
          0, std::min<int64_t>(NI, int64_t(Space[D].size()) - 1));
      Idx[D] = static_cast<unsigned>(NI);
      return Idx;
    };
    std::vector<std::vector<unsigned>> Batch;
    InBatch.clear();
    for (unsigned I = 0; I < Opts.RoundSamples; ++I)
      PushDistinct(Batch, DrawGuided);
    MeasureBatch(Batch);
    if (Best == RoundStartBest)
      break; // no performance gain: stop early (paper's criterion)
  }
  Res.BestTiles = TilesOf(BestIdx);
  Res.BestCycles = Best;
  return Res;
}

TuneResult tuneAkgKernel(const ir::Module &M, const AkgOptions &Base,
                         const sim::MachineSpec &Spec,
                         const TunerOptions &Opts) {
  // Build the space: per live-out dim, powers of two up to the extent
  // (the valid tiling parameters of Sec 4.2).
  ir::PolyProgram P = extractPolyProgram(M);
  unsigned LiveId = P.Stmts.back().Id;
  const ir::PolyStmt &Live = P.Stmts[LiveId];
  unsigned W = Live.Op ? static_cast<unsigned>(Live.Op->Axis.size())
                       : Live.numIters();
  std::vector<std::vector<int64_t>> Space(W);
  for (unsigned D = 0; D < W; ++D) {
    int64_t Ext = Live.Op->Axis[D].Extent;
    for (int64_t S = 1; S < Ext; S *= 2)
      Space[D].push_back(S);
    Space[D].push_back(Ext);
  }
  // Starting point from the default compilation.
  CompileResult Start = compileWithAkg(M, Base, "tune_seed");
  std::vector<int64_t> StartTiles = Start.TileSizes;
  StartTiles.resize(W, 1);

  // Runs on tuner measurement workers: everything it touches is either
  // captured by value/const-ref or pure (compileWithAkg, the simulator).
  MeasureFn Measure = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    if (Stats::enabled()) {
      std::string Line = "tuner probe:";
      for (int64_t T : Tiles)
        Line += " " + std::to_string(T);
      // Measurement workers run concurrently: serialize through the
      // shared diagnostic sink so probe lines never interleave.
      trace::debugEcho(Line);
    }
    AkgOptions O = Base;
    transforms::TilingPolicy Pol;
    transforms::StmtTileSpec Spec2;
    // Name each probe after its tile vector so AKG_TRACE dumps carry one
    // distinguishable trace per tuner configuration.
    std::string ProbeName = "tune_probe";
    for (int64_t S : Tiles) {
      Spec2.Entries.push_back(transforms::TileSpecEntry{S, "UB"});
      ProbeName += "_" + std::to_string(S);
    }
    Pol.PerStmt[LiveId] = Spec2;
    O.ManualTiles = Pol;
    CompileResult C = compileWithAkg(M, O, ProbeName);
    sim::SimOptions SO;
    SO.Functional = false;
    return sim::simulate(C.Kernel, Spec, nullptr, SO).Cycles;
  };
  return tuneTiles(Space, StartTiles, Measure, Opts);
}

} // namespace akg
