//===- akg/AutoTuner.cpp - Learning-based tile auto-tuner -----------------===//

#include "akg/AutoTuner.h"

#include "sim/Simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace akg {

namespace {

/// Deterministic xorshift RNG (no global state).
struct Rng {
  uint64_t S;
  explicit Rng(uint32_t Seed) : S(Seed * 2654435761ull + 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }
  double unit() { return double(next() % (1ull << 30)) / double(1ull << 30); }
};

/// The learned model: nearest-neighbour regression over log-tile features
/// with a finite-difference "derivative" per dimension, used to pick the
/// forwarding direction of second-round samples.
struct PerfModel {
  struct Sample {
    std::vector<unsigned> Idx; // candidate indices per dim
    int64_t Cycles;
  };
  std::vector<Sample> Samples;

  void add(std::vector<unsigned> Idx, int64_t Cycles) {
    Samples.push_back({std::move(Idx), Cycles});
  }

  /// Direction (-1, 0, +1) per dimension that the measurements suggest
  /// improves performance around \p At.
  std::vector<int> gradientAt(const std::vector<unsigned> &At) const {
    std::vector<int> Dir(At.size(), 0);
    for (unsigned D = 0; D < At.size(); ++D) {
      // Average cycles of samples with larger vs smaller candidate index
      // on this dim.
      double UpSum = 0, DownSum = 0;
      unsigned UpN = 0, DownN = 0;
      for (const Sample &S : Samples) {
        if (S.Idx[D] > At[D]) {
          UpSum += double(S.Cycles);
          ++UpN;
        } else if (S.Idx[D] < At[D]) {
          DownSum += double(S.Cycles);
          ++DownN;
        }
      }
      if (UpN && DownN)
        Dir[D] = (UpSum / UpN < DownSum / DownN) ? 1 : -1;
      else if (UpN)
        Dir[D] = 1;
      else if (DownN)
        Dir[D] = -1;
    }
    return Dir;
  }
};

} // namespace

TuneResult tuneTiles(const std::vector<std::vector<int64_t>> &Space,
                     const std::vector<int64_t> &Start, MeasureFn Measure,
                     const TunerOptions &Opts) {
  TuneResult Res;
  unsigned W = static_cast<unsigned>(Space.size());
  Rng R(Opts.Seed);
  PerfModel Model;
  std::map<std::vector<unsigned>, int64_t> Seen;

  auto TilesOf = [&](const std::vector<unsigned> &Idx) {
    std::vector<int64_t> T(W);
    for (unsigned D = 0; D < W; ++D)
      T[D] = Space[D][Idx[D]];
    return T;
  };
  auto MeasureIdx = [&](const std::vector<unsigned> &Idx) {
    auto It = Seen.find(Idx);
    if (It != Seen.end())
      return It->second;
    int64_t C = Measure(TilesOf(Idx));
    ++Res.SamplesMeasured;
    Seen[Idx] = C;
    Model.add(Idx, C);
    return C;
  };

  // Starting point (Auto Tiling's choice).
  std::vector<unsigned> StartIdx(W, 0);
  for (unsigned D = 0; D < W; ++D) {
    for (unsigned I = 0; I < Space[D].size(); ++I)
      if (Space[D][I] == Start[D])
        StartIdx[D] = I;
  }
  Res.InitialCycles = MeasureIdx(StartIdx);
  std::vector<unsigned> BestIdx = StartIdx;
  int64_t Best = Res.InitialCycles;

  auto Consider = [&](const std::vector<unsigned> &Idx) {
    int64_t C = MeasureIdx(Idx);
    if (C < Best) {
      Best = C;
      BestIdx = Idx;
    }
  };

  // Round 1: random samples.
  for (unsigned I = 0; I < Opts.FirstRoundSamples; ++I) {
    std::vector<unsigned> Idx(W);
    for (unsigned D = 0; D < W; ++D)
      Idx[D] = static_cast<unsigned>(R.below(Space[D].size()));
    Consider(Idx);
  }

  // Follow-up rounds: model-guided steps from the best pool with
  // probability p, uniform otherwise; p evolves with the pre-defined
  // parameter and stays within (0, e).
  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    double P = std::min(std::exp(Opts.PParam * (Round + 1)) - 1.0,
                        std::exp(1.0)) /
               std::exp(1.0);
    int64_t RoundStartBest = Best;
    // Best pool: the N best samples, copied - measuring new samples
    // during the round grows Model.Samples and would invalidate pointers
    // into it.
    std::vector<PerfModel::Sample> Pool(Model.Samples);
    std::sort(Pool.begin(), Pool.end(),
              [](const PerfModel::Sample &A, const PerfModel::Sample &B) {
                return A.Cycles < B.Cycles;
              });
    if (Pool.size() > Opts.BestPool)
      Pool.resize(Opts.BestPool);
    for (unsigned I = 0; I < Opts.RoundSamples; ++I) {
      std::vector<unsigned> Idx(W);
      if (!Pool.empty() && R.unit() < P) {
        Idx = Pool[R.below(Pool.size())].Idx;
        std::vector<int> Dir = Model.gradientAt(Idx);
        unsigned D = static_cast<unsigned>(R.below(W));
        int Step = Dir[D] != 0 ? Dir[D] : (R.below(2) ? 1 : -1);
        int64_t NI = int64_t(Idx[D]) + Step;
        NI = std::max<int64_t>(
            0, std::min<int64_t>(NI, int64_t(Space[D].size()) - 1));
        Idx[D] = static_cast<unsigned>(NI);
      } else {
        for (unsigned D = 0; D < W; ++D)
          Idx[D] = static_cast<unsigned>(R.below(Space[D].size()));
      }
      Consider(Idx);
    }
    if (Best == RoundStartBest)
      break; // no performance gain: stop early (paper's criterion)
  }
  Res.BestTiles = TilesOf(BestIdx);
  Res.BestCycles = Best;
  return Res;
}

TuneResult tuneAkgKernel(const ir::Module &M, const AkgOptions &Base,
                         const sim::MachineSpec &Spec,
                         const TunerOptions &Opts) {
  // Build the space: per live-out dim, powers of two up to the extent
  // (the valid tiling parameters of Sec 4.2).
  ir::PolyProgram P = extractPolyProgram(M);
  unsigned LiveId = P.Stmts.back().Id;
  const ir::PolyStmt &Live = P.Stmts[LiveId];
  unsigned W = Live.Op ? static_cast<unsigned>(Live.Op->Axis.size())
                       : Live.numIters();
  std::vector<std::vector<int64_t>> Space(W);
  for (unsigned D = 0; D < W; ++D) {
    int64_t Ext = Live.Op->Axis[D].Extent;
    for (int64_t S = 1; S < Ext; S *= 2)
      Space[D].push_back(S);
    Space[D].push_back(Ext);
  }
  // Starting point from the default compilation.
  CompileResult Start = compileWithAkg(M, Base, "tune_seed");
  std::vector<int64_t> StartTiles = Start.TileSizes;
  StartTiles.resize(W, 1);

  MeasureFn Measure = [&](const std::vector<int64_t> &Tiles) -> int64_t {
    if (std::getenv("AKG_STATS")) {
      std::fprintf(stderr, "tuner probe:");
      for (int64_t T : Tiles)
        std::fprintf(stderr, " %lld", (long long)T);
      std::fprintf(stderr, "\n");
    }
    AkgOptions O = Base;
    transforms::TilingPolicy Pol;
    transforms::StmtTileSpec Spec2;
    for (int64_t S : Tiles)
      Spec2.Entries.push_back(transforms::TileSpecEntry{S, "UB"});
    Pol.PerStmt[LiveId] = Spec2;
    O.ManualTiles = Pol;
    CompileResult C = compileWithAkg(M, O, "tune_probe");
    sim::SimOptions SO;
    SO.Functional = false;
    return sim::simulate(C.Kernel, Spec, nullptr, SO).Cycles;
  };
  return tuneTiles(Space, StartTiles, Measure, Opts);
}

} // namespace akg
