//===- akg/AutoTuner.h - Learning-based tile auto-tuner ---------*- C++ -*-===//
//
// The auto-tuning strategy of Sec 5.3: the tuning space is the set of
// valid tiling parameters from Sec 4.2. A first round of random samples is
// measured (on the simulator - the substitution for hardware measurement);
// the samples train a simple learned performance model. Second-round
// samples are derived from one of the N best first-round samples by moving
// a random step in the direction the model predicts to improve, with
// probability p, or drawn uniformly from the space with probability 1-p;
// p evolves with a pre-defined parameter (0.5) as in the paper, N = 64.
// Iteration stops at a sample budget or when no gain is seen.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_AUTOTUNER_H
#define AKG_AKG_AUTOTUNER_H

#include "akg/Compiler.h"

#include <functional>

namespace akg {

struct TunerOptions {
  unsigned FirstRoundSamples = 24;
  unsigned RoundSamples = 12;
  unsigned MaxRounds = 3;
  unsigned BestPool = 64;  // N in the paper
  double PParam = 0.5;     // the pre-defined parameter feeding p
  uint32_t Seed = 42;
  /// Worker threads for candidate measurement (each round's samples are
  /// drawn up front, then measured concurrently). 0 resolves AKG_THREADS.
  /// The tuning result is identical for any thread count: draws depend
  /// only on the seeded RNG and the previous rounds' measurements, and
  /// results fold in draw order.
  unsigned MeasureThreads = 0;
};

struct TuneResult {
  std::vector<int64_t> BestTiles;
  int64_t BestCycles = 0;
  int64_t InitialCycles = 0; // cycles of the starting (Auto Tiling) choice
  unsigned SamplesMeasured = 0;
};

/// Measures one tile configuration: compile + performance-mode simulation.
using MeasureFn =
    std::function<int64_t(const std::vector<int64_t> &Tiles)>;

/// Tunes tile sizes over the per-dimension candidate sets.
TuneResult tuneTiles(const std::vector<std::vector<int64_t>> &Space,
                     const std::vector<int64_t> &Start, MeasureFn Measure,
                     const TunerOptions &Opts = TunerOptions());

/// Convenience wrapper: tunes an AKG compilation of \p M and returns the
/// best configuration found (the simulator stands in for the chip).
TuneResult tuneAkgKernel(const ir::Module &M, const AkgOptions &Base,
                         const sim::MachineSpec &Spec,
                         const TunerOptions &Opts = TunerOptions());

} // namespace akg

#endif // AKG_AKG_AUTOTUNER_H
