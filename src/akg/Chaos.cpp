//===- akg/Chaos.cpp - Seeded probabilistic fault injection ---------------===//

#include "akg/Chaos.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace akg {

namespace {

/// splitmix64: the de-facto standard seeder; one call per draw keeps the
/// decision a pure function of its inputs.
uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t hashName(const std::string &S) {
  uint64_t H = 1469598103934665603ull; // FNV-1a
  for (char C : S)
    H = (H ^ static_cast<unsigned char>(C)) * 1099511628211ull;
  return H;
}

/// Uniform draw in [0,1) for stream \p Which of (seed, name, attempt).
double draw(const ChaosSpec &S, const std::string &Name, unsigned Attempt,
            uint64_t Which) {
  uint64_t X = splitmix64(S.Seed ^ splitmix64(hashName(Name)) ^
                          splitmix64((uint64_t(Attempt) << 8) | Which));
  return double(X >> 11) * (1.0 / 9007199254740992.0); // 53-bit mantissa
}

bool parseProb(const std::string &V, double &P, double *Ms, double DefMs) {
  size_t Colon = V.find(':');
  std::string Ptext = V.substr(0, Colon == std::string::npos ? V.size()
                                                             : Colon);
  char *End = nullptr;
  P = std::strtod(Ptext.c_str(), &End);
  if (End == Ptext.c_str() || *End || P < 0 || P > 1)
    return false;
  if (Ms) {
    *Ms = DefMs;
    if (Colon != std::string::npos) {
      std::string Mtext = V.substr(Colon + 1);
      *Ms = std::strtod(Mtext.c_str(), &End);
      if (End == Mtext.c_str() || *End || *Ms < 0)
        return false;
    }
  } else if (Colon != std::string::npos) {
    return false; // duration on a field that takes none
  }
  return true;
}

} // namespace

std::optional<ChaosSpec> ChaosSpec::parse(const std::string &Text,
                                          std::string *Err) {
  ChaosSpec S;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Comma = Text.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Text.size();
    std::string Field = Text.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Field.empty())
      continue;
    size_t Eq = Field.find('=');
    if (Eq == std::string::npos) {
      if (Err)
        *Err = "field '" + Field + "' has no '='";
      return std::nullopt;
    }
    std::string Key = Field.substr(0, Eq), Val = Field.substr(Eq + 1);
    bool Good;
    if (Key == "seed") {
      char *End = nullptr;
      S.Seed = std::strtoull(Val.c_str(), &End, 10);
      Good = End != Val.c_str() && !*End;
    } else if (Key == "fault") {
      Good = parseProb(Val, S.FaultP, nullptr, 0);
    } else if (Key == "transient") {
      Good = parseProb(Val, S.TransientP, nullptr, 0);
    } else if (Key == "delay") {
      Good = parseProb(Val, S.DelayP, &S.DelayMs, 10);
    } else if (Key == "hang") {
      Good = parseProb(Val, S.HangP, &S.HangMs, 60000);
    } else {
      if (Err)
        *Err = "unknown field '" + Key + "'";
      return std::nullopt;
    }
    if (!Good) {
      if (Err)
        *Err = "bad value for '" + Key + "': '" + Val + "'";
      return std::nullopt;
    }
  }
  return S;
}

std::optional<ChaosSpec> ChaosSpec::fromEnv() {
  std::optional<std::string> V = env::get("AKG_CHAOS");
  if (!V || V->empty())
    return std::nullopt;
  std::string Err;
  std::optional<ChaosSpec> S = parse(*V, &Err);
  if (!S) {
    static std::once_flag Warned;
    std::call_once(Warned, [&] {
      std::fprintf(stderr, "AKG_CHAOS ignored: %s\n", Err.c_str());
    });
    return std::nullopt;
  }
  if (!S->enabled())
    return std::nullopt;
  return S;
}

ChaosAction chaosDecide(const ChaosSpec &S, const std::string &Name,
                        unsigned Attempt) {
  ChaosAction A;
  if (S.HangP > 0 && draw(S, Name, Attempt, 1) < S.HangP) {
    A.K = ChaosAction::Kind::Hang;
    A.Ms = S.HangMs;
    return A;
  }
  if (S.FaultP > 0 && draw(S, Name, Attempt, 2) < S.FaultP) {
    A.K = ChaosAction::Kind::Fault;
    A.Transient = draw(S, Name, Attempt, 3) < S.TransientP;
    return A;
  }
  if (S.DelayP > 0 && draw(S, Name, Attempt, 4) < S.DelayP) {
    A.K = ChaosAction::Kind::Delay;
    A.Ms = S.DelayMs;
    return A;
  }
  return A;
}

} // namespace akg
