//===- akg/Chaos.h - Seeded probabilistic fault injection -------*- C++ -*-===//
//
// AKG_FAIL_STAGE injects exactly one deterministic stage failure; chaos
// testing needs the other regime: a whole workload where a seeded
// fraction of requests fault, stall, or hang, so the service's deadlines,
// retries, shedding, and quarantine can be exercised end to end and the
// run still replays bit-identically from its seed.
//
// Spec grammar (the AKG_CHAOS environment variable; DESIGN.md 4h):
//
//   AKG_CHAOS=seed=42,fault=0.1,transient=0.5,delay=0.1:20,hang=0.01
//
//   seed=<u64>        base seed (default 1)
//   fault=<p>         P(injected compile failure) in [0,1]
//   transient=<p>     given a fault, P(it is transient) - transient
//                     faults return Unavailable (the service retries with
//                     backoff), the rest FaultInjected (deterministic,
//                     counted by the quarantine)
//   delay=<p>[:<ms>]  P(injected delay before compiling), duration ms
//                     (default 10)
//   hang=<p>[:<ms>]   P(injected hang): an interruptible sleep of <ms>
//                     (default 60000) that a deadline or cancel rescues -
//                     the bounded stand-in for a wedged compile
//
// Decisions are a pure function of (seed, request name, attempt): two
// runs with the same spec and workload inject identical faults, and a
// retry of the same request redraws (attempt differs) so transient
// faults actually clear.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_CHAOS_H
#define AKG_AKG_CHAOS_H

#include <cstdint>
#include <optional>
#include <string>

namespace akg {

struct ChaosSpec {
  uint64_t Seed = 1;
  double FaultP = 0;
  double TransientP = 0.5;
  double DelayP = 0;
  double DelayMs = 10;
  double HangP = 0;
  double HangMs = 60000;

  bool enabled() const { return FaultP > 0 || DelayP > 0 || HangP > 0; }

  /// Parses the spec grammar above; nullopt (with \p Err filled) on a
  /// malformed spec. The empty string parses to a disabled spec.
  static std::optional<ChaosSpec> parse(const std::string &Text,
                                        std::string *Err = nullptr);

  /// The AKG_CHAOS environment spec, or nullopt when unset/empty. A
  /// malformed value is reported once to stderr and treated as unset
  /// (chaos must never break a production run it was not meant for).
  static std::optional<ChaosSpec> fromEnv();
};

/// What the chaos layer decided for one (request, attempt).
struct ChaosAction {
  enum class Kind { None, Fault, Delay, Hang };
  Kind K = Kind::None;
  bool Transient = false; // meaningful for Fault
  double Ms = 0;          // meaningful for Delay / Hang
};

/// Deterministic decision for \p Name's attempt \p Attempt under \p S.
/// Draw order: hang, fault, delay (a request gets at most one action).
ChaosAction chaosDecide(const ChaosSpec &S, const std::string &Name,
                        unsigned Attempt);

} // namespace akg

#endif // AKG_AKG_CHAOS_H
