//===- akg/CompileService.cpp - Parallel compile service ------------------===//

#include "akg/CompileService.h"

#include "composite/Composite.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <chrono>

namespace akg {

unsigned compileServiceThreads(unsigned Requested) {
  if (Requested > 0)
    return Requested;
  int64_t N = env::getInt("AKG_THREADS", 1);
  if (N < 1)
    N = 1;
  if (N > 256)
    N = 256; // sanity bound; compile jobs are coarse
  return static_cast<unsigned>(N);
}

std::vector<CompileResult>
compileModulesParallel(const std::vector<CompileJob> &Jobs,
                       const CompileServiceOptions &Opts) {
  ScopedTimer Timer("service.compile_batch");
  unsigned Threads = compileServiceThreads(Opts.Threads);
  std::vector<CompileResult> Results(Jobs.size());
  KernelCache *Cache = Opts.Cache;
  parallelFor(Threads, Jobs.size(), [&](size_t I) {
    const CompileJob &J = Jobs[I];
    Results[I] = Cache ? Cache->compileOrGet(*J.Mod, J.Opts, J.Name)
                       : compileWithAkg(*J.Mod, J.Opts, J.Name);
  });
  if (Stats::enabled())
    Stats::get().add("service.jobs", static_cast<int64_t>(Jobs.size()));
  return Results;
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

namespace {

/// A service-fabricated result (shed, quarantined, chaos fault, cancel):
/// carries a valid scalar fallback kernel unless \p WithKernel is off,
/// one terminal trace event, and the outcome; dumped like a real compile
/// so chaos-run JSONL logs are complete.
CompileResult serviceResult(const ir::Module &M, const std::string &Name,
                            ErrCode Code, const char *Event,
                            const std::string &Note, bool WithKernel = true) {
  CompileResult Res;
  Res.Trace.Kernel = Name;
  if (Code != ErrCode::Ok) {
    Res.Outcome = Status::error(Code, Note);
    Res.Trace.Outcome = errCodeName(Code);
  }
  Res.Degradation.record(Stage::None, Note,
                         WithKernel ? "scalar fallback kernel"
                                    : "request failed fast (no kernel)");
  TraceEvent E;
  E.Pass = Event;
  E.Note = Note;
  E.Degradations.push_back(Res.Degradation.Steps.back());
  Res.Trace.Events.push_back(std::move(E));
  if (WithKernel) {
    Res.Kernel = cce::lowerScalarFallback(M, Name);
    Res.Sync = cce::insertSynchronization(Res.Kernel,
                                          cce::SyncStrategy::FullSerial);
  }
  trace::maybeDump(Res.Trace);
  return Res;
}

} // namespace

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options Opts)
    : Opt(std::move(Opts)), Quar(Opt.QuarantineOpts) {
  NumThreads = compileServiceThreads(Opt.Threads);
  Depth = Opt.QueueDepth > 0
              ? Opt.QueueDepth
              : static_cast<unsigned>(std::max<int64_t>(
                    1, env::getInt("AKG_QUEUE_DEPTH", 256)));
  if (Opt.Shed) {
    Policy = *Opt.Shed;
  } else {
    std::optional<std::string> P = env::get("AKG_SHED_POLICY");
    Policy = (P && *P == "degrade") ? ShedPolicy::Degrade
                                    : ShedPolicy::Reject;
  }
  Chaos = Opt.Chaos ? Opt.Chaos : ChaosSpec::fromEnv();
  Pool = std::make_unique<ThreadPool>(NumThreads);
}

CompileService::~CompileService() { Pool->shutdown(/*Drain=*/true); }

std::future<CompileResult> CompileService::submit(const ir::Module &M,
                                                  const AkgOptions &Opts,
                                                  const std::string &Name) {
  // Non-owning alias: the caller guarantees M outlives the result.
  return submitShared(
      std::shared_ptr<const ir::Module>(&M, [](const ir::Module *) {}), Opts,
      Name);
}

namespace {

/// An already-ready error future for a request rejected before admission.
std::future<CompileResult> readyError(ErrCode Code, const std::string &Msg) {
  CompileResult R;
  R.Outcome = Status::error(Code, Msg);
  std::promise<CompileResult> P;
  P.set_value(std::move(R));
  return P.get_future();
}

/// First non-whitespace byte of \p S, or '\0' when all whitespace.
char firstPayloadByte(const std::string &S) {
  for (char C : S)
    if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
      return C;
  return '\0';
}

} // namespace

std::future<CompileResult>
CompileService::submitJson(const std::string &JsonText,
                           const AkgOptions &Opts) {
  if (firstPayloadByte(JsonText) == '[') {
    ++NSubmitted;
    if (Stats::enabled())
      Stats::get().add("service.invalid_json");
    return readyError(ErrCode::InvalidArgument,
                      "$: top-level value is an array (a batch of "
                      "subgraphs); use submitJsonBatch");
  }
  composite::FrontendResult F = composite::loadComposite(JsonText);
  if (!F.ok()) {
    ++NSubmitted;
    if (Stats::enabled())
      Stats::get().add("service.invalid_json");
    // Nothing was compiled, so no scalar fallback and no trace dump: the
    // caller gets the structured diagnostics and nothing else.
    CompileResult R;
    std::string Msg = F.Outcome.message();
    unsigned Extra = 0;
    for (size_t I = 1; I < F.Diags.size() && Extra < 2; ++I, ++Extra)
      Msg += "; " + F.Diags[I].str();
    if (F.Diags.size() > 3)
      Msg += "; (+" + std::to_string(F.Diags.size() - 3) + " more)";
    R.Outcome = Status::error(F.Outcome.code(), Msg);
    std::promise<CompileResult> P;
    P.set_value(std::move(R));
    return P.get_future();
  }
  // A payload-level "target" overrides the caller's option default (but
  // not AKG_TARGET, which resolveTarget applies last, mirroring
  // AKG_FAIL_STAGE). The name was validated at parse time.
  if (!F.Normalized.Target.empty()) {
    AkgOptions O = Opts;
    sim::parseTargetName(F.Normalized.Target, O.Target);
    return submitShared(F.Mod, O, F.KernelName);
  }
  return submitShared(F.Mod, Opts, F.KernelName);
}

std::vector<std::future<CompileResult>>
CompileService::submitJsonBatch(const std::string &JsonText,
                                const AkgOptions &Opts) {
  std::vector<std::future<CompileResult>> Futures;
  composite::BatchSplit B = composite::splitBatchPayload(JsonText);
  if (!B.ok()) {
    ++NSubmitted;
    if (Stats::enabled())
      Stats::get().add("service.invalid_json");
    std::string Msg = B.Outcome.message();
    for (size_t I = 1; I < B.Diags.size() && I < 3; ++I)
      Msg += "; " + B.Diags[I].str();
    Futures.push_back(readyError(B.Outcome.code(), Msg));
    return Futures;
  }
  if (!B.IsBatch) {
    // A batch of one: the ordinary single-payload path (which also
    // reports malformed JSON with the full diagnostics).
    Futures.push_back(submitJson(JsonText, Opts));
    return Futures;
  }
  if (Stats::enabled())
    Stats::get().add("service.batch_entries",
                     static_cast<int64_t>(B.Entries.size()));
  Futures.reserve(B.Entries.size());
  for (const std::string &Entry : B.Entries)
    Futures.push_back(submitJson(Entry, Opts));
  return Futures;
}

std::future<CompileResult>
CompileService::submitShared(std::shared_ptr<const ir::Module> M,
                             const AkgOptions &Opts,
                             const std::string &Name) {
  ++NSubmitted;
  if (Stats::enabled())
    Stats::get().add("service.submitted");

  // Admission control: jobs admitted but not yet picked up by a worker
  // count against the bounded queue. Inline pools (<= 1 thread) run the
  // job inside Pool->submit, so Queued drops before the next admission
  // and nothing ever sheds - matching the sequential pipeline exactly.
  if (Queued.load(std::memory_order_acquire) >=
      static_cast<int64_t>(Depth)) {
    std::promise<CompileResult> P;
    if (Policy == ShedPolicy::Reject) {
      ++NShed;
      if (Stats::enabled())
        Stats::get().add("service.shed");
      P.set_value(serviceResult(*M, Name, ErrCode::Overloaded, "shed",
                                "queue full (depth " + std::to_string(Depth) +
                                    "); policy reject",
                                /*WithKernel=*/false));
    } else {
      // Degrade: the caller still gets a valid kernel - the bottom rung
      // of the PR 1 ladder, compiled inline without touching the queue.
      ++NDegraded;
      if (Stats::enabled())
        Stats::get().add("service.degraded");
      P.set_value(serviceResult(*M, Name, ErrCode::Ok, "shed",
                                "queue full (depth " + std::to_string(Depth) +
                                    "); policy degrade: scalar rung"));
    }
    return P.get_future();
  }

  // Deadline inheritance: the request's own deadline wins, else the
  // service default, else AKG_DEADLINE_MS. Armed here - at admission -
  // so time spent queued counts against it.
  double Ms = Opts.RequestDeadlineMs > 0 ? Opts.RequestDeadlineMs
              : Opt.DefaultDeadlineMs > 0
                  ? Opt.DefaultDeadlineMs
                  : static_cast<double>(env::getInt("AKG_DEADLINE_MS", 0));
  auto Ctx = std::make_shared<cancel::Context>();
  Ctx->DL = Deadline(Ms / 1000.0);
  Ctx->Token = Opts.Cancel.get();

  Queued.fetch_add(1, std::memory_order_acq_rel);
  AkgOptions JobOpts = Opts;
  auto Admit = std::chrono::steady_clock::now();
  return Pool->submit(
      [this, M, JobOpts = std::move(JobOpts), Name, Ctx, Admit] {
        Queued.fetch_sub(1, std::memory_order_acq_rel);
        CompileResult R = runOne(*M, JobOpts, Name, Ctx);
        R.ServiceSeconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - Admit)
                               .count();
        return R;
      });
}

CompileResult CompileService::runOne(const ir::Module &M, AkgOptions Opts,
                                     const std::string &Name,
                                     std::shared_ptr<cancel::Context> Ctx) {
  // Install the request's termination constraints for everything below:
  // the quarantine check, chaos sleeps, the cache wait, and the compile
  // pipeline itself all observe this context (or chain under it).
  cancel::Scope RequestScope(Ctx.get());
  struct Count {
    std::atomic<int64_t> &C;
    ~Count() { ++C; }
  } Completed{NCompleted};

  try {
    cancel::checkPoint("service_queue"); // expired while queued?

    CacheKey K = makeCacheKey(M, Opts);
    if (std::optional<std::string> Why = Quar.check(K)) {
      ++NQuarantined;
      return serviceResult(M, Name, ErrCode::Quarantined, "quarantined",
                           "poison-pill fingerprint: " + *Why);
    }

    for (unsigned Attempt = 0;; ++Attempt) {
      if (Chaos) {
        ChaosAction A = chaosDecide(*Chaos, Name, Attempt);
        switch (A.K) {
        case ChaosAction::Kind::Hang:
          ++NHangs;
          if (Stats::enabled())
            Stats::get().add("service.chaos_hang");
          // Interruptible: a deadline or cancel rescues the "hang".
          if (!cancel::sleepFor(A.Ms))
            cancel::checkPoint("chaos_hang");
          break;
        case ChaosAction::Kind::Delay:
          ++NDelays;
          if (Stats::enabled())
            Stats::get().add("service.chaos_delay");
          if (!cancel::sleepFor(A.Ms))
            cancel::checkPoint("chaos_delay");
          break;
        case ChaosAction::Kind::Fault: {
          ++NFaults;
          if (Stats::enabled())
            Stats::get().add("service.chaos_fault");
          if (A.Transient && Attempt < Opt.MaxRetries) {
            // Transient fault: retry with exponential backoff. The next
            // attempt redraws its chaos decision, so the fault clears
            // with probability (1 - FaultP * TransientP...).
            ++NRetries;
            if (Stats::enabled())
              Stats::get().add("service.retries");
            if (!cancel::sleepFor(Opt.RetryBackoffMs *
                                  double(1u << Attempt)))
              cancel::checkPoint("retry_backoff");
            continue;
          }
          ErrCode Code = A.Transient ? ErrCode::Unavailable
                                     : ErrCode::FaultInjected;
          Quar.recordFailure(K, Code, "chaos-injected fault");
          return serviceResult(M, Name, Code, "chaos_fault",
                               A.Transient
                                   ? "transient fault; retries exhausted"
                                   : "deterministic chaos fault");
        }
        case ChaosAction::Kind::None:
          break;
        }
      }

      CompileResult Res = Opt.Cache
                              ? Opt.Cache->compileOrGet(M, Opts, Name)
                              : compileWithAkg(M, Opts, Name);
      if (Res.Outcome.isOk()) {
        Quar.recordSuccess(K);
        return Res;
      }
      if (Res.Outcome.code() == ErrCode::Unavailable &&
          Attempt < Opt.MaxRetries) {
        ++NRetries;
        if (Stats::enabled())
          Stats::get().add("service.retries");
        if (!cancel::sleepFor(Opt.RetryBackoffMs * double(1u << Attempt)))
          cancel::checkPoint("retry_backoff");
        continue;
      }
      Quar.recordFailure(K, Res.Outcome.code(), Res.Outcome.message());
      return Res;
    }
  } catch (const CancelledError &E) {
    // Tripped outside the pipeline (queue wait, chaos sleep, cache wait):
    // the pipeline's own unwinding never lets CancelledError escape.
    return serviceResult(M, Name, E.code(), errCodeName(E.code()),
                         std::string(E.what()) + " in '" + E.where() + "'");
  }
}

std::vector<CompileResult>
CompileService::compileAll(const std::vector<CompileJob> &Jobs) {
  ScopedTimer Timer("service.compile_batch");
  std::vector<std::future<CompileResult>> Futs;
  Futs.reserve(Jobs.size());
  for (const CompileJob &J : Jobs)
    Futs.push_back(submit(*J.Mod, J.Opts, J.Name));
  std::vector<CompileResult> Results;
  Results.reserve(Jobs.size());
  for (std::future<CompileResult> &F : Futs)
    Results.push_back(F.get());
  if (Stats::enabled())
    Stats::get().add("service.jobs", static_cast<int64_t>(Jobs.size()));
  return Results;
}

ServiceStats CompileService::stats() const {
  ServiceStats S;
  S.Submitted = NSubmitted.load();
  S.Completed = NCompleted.load();
  S.Shed = NShed.load();
  S.Degraded = NDegraded.load();
  S.Quarantined = NQuarantined.load();
  S.Retries = NRetries.load();
  S.FaultsInjected = NFaults.load();
  S.DelaysInjected = NDelays.load();
  S.HangsInjected = NHangs.load();
  return S;
}

std::vector<CompileJob> networkCompileJobs(const graph::NetworkModel &N,
                                           const AkgOptions &Base,
                                           bool PerOccurrence) {
  std::vector<CompileJob> Jobs;
  for (const graph::LayerWorkload &L : N.Layers) {
    unsigned Copies = PerOccurrence ? std::max(1u, L.Count) : 1u;
    for (unsigned C = 0; C < Copies; ++C) {
      CompileJob J;
      J.Mod = L.Mod.get();
      J.Opts = Base;
      J.Name = N.Name + "/" + L.Name;
      if (PerOccurrence && Copies > 1)
        J.Name += "#" + std::to_string(C);
      Jobs.push_back(std::move(J));
    }
  }
  return Jobs;
}

} // namespace akg
