//===- akg/CompileService.cpp - Parallel compile service ------------------===//

#include "akg/CompileService.h"

#include "support/Env.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>

namespace akg {

unsigned compileServiceThreads(unsigned Requested) {
  if (Requested > 0)
    return Requested;
  int64_t N = env::getInt("AKG_THREADS", 1);
  if (N < 1)
    N = 1;
  if (N > 256)
    N = 256; // sanity bound; compile jobs are coarse
  return static_cast<unsigned>(N);
}

std::vector<CompileResult>
compileModulesParallel(const std::vector<CompileJob> &Jobs,
                       const CompileServiceOptions &Opts) {
  ScopedTimer Timer("service.compile_batch");
  unsigned Threads = compileServiceThreads(Opts.Threads);
  std::vector<CompileResult> Results(Jobs.size());
  KernelCache *Cache = Opts.Cache;
  parallelFor(Threads, Jobs.size(), [&](size_t I) {
    const CompileJob &J = Jobs[I];
    Results[I] = Cache ? Cache->compileOrGet(*J.Mod, J.Opts, J.Name)
                       : compileWithAkg(*J.Mod, J.Opts, J.Name);
  });
  if (Stats::enabled())
    Stats::get().add("service.jobs", static_cast<int64_t>(Jobs.size()));
  return Results;
}

std::vector<CompileJob> networkCompileJobs(const graph::NetworkModel &N,
                                           const AkgOptions &Base,
                                           bool PerOccurrence) {
  std::vector<CompileJob> Jobs;
  for (const graph::LayerWorkload &L : N.Layers) {
    unsigned Copies = PerOccurrence ? std::max(1u, L.Count) : 1u;
    for (unsigned C = 0; C < Copies; ++C) {
      CompileJob J;
      J.Mod = L.Mod.get();
      J.Opts = Base;
      J.Name = N.Name + "/" + L.Name;
      if (PerOccurrence && Copies > 1)
        J.Name += "#" + std::to_string(C);
      Jobs.push_back(std::move(J));
    }
  }
  return Jobs;
}

} // namespace akg
