//===- akg/CompileService.h - Parallel compile service ----------*- C++ -*-===//
//
// Fans independent module compiles across a fixed-size thread pool
// (support/ThreadPool.h), serving each job through the content-addressed
// kernel cache. This is the layer a graph engine (or a benchmark suite,
// or the tuner) talks to when it needs many kernels: the subgraphs of a
// network are independent compiles, so throughput scales with workers,
// and structurally identical subgraphs - within one network, across
// networks, or across repeated requests - compile exactly once.
//
// Threading contract (see DESIGN.md 4d): the compile pipeline itself is
// pure (no shared mutable state beyond the mutex-guarded Stats/Env/cache
// singletons), each job's Module is read-only during the run, and results
// land in job order. Output is bit-identical for 1 worker, N workers, or
// a warm cache.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_COMPILESERVICE_H
#define AKG_AKG_COMPILESERVICE_H

#include "akg/Chaos.h"
#include "akg/KernelCache.h"
#include "akg/Quarantine.h"
#include "graph/Networks.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace akg {

/// One compile request. The module must stay alive (and unmodified)
/// until compileModulesParallel returns.
struct CompileJob {
  const ir::Module *Mod = nullptr;
  AkgOptions Opts;
  std::string Name;
};

struct CompileServiceOptions {
  /// Worker threads; 0 resolves AKG_THREADS (unset/invalid -> 1, i.e.
  /// the sequential pipeline).
  unsigned Threads = 0;
  /// Content-addressed cache consulted per job; nullptr compiles every
  /// job from scratch (the pre-cache behavior).
  KernelCache *Cache = &KernelCache::global();
};

/// The effective worker count: \p Requested when nonzero, else the
/// AKG_THREADS environment variable, else 1.
unsigned compileServiceThreads(unsigned Requested = 0);

/// Compiles all jobs, fanning across workers, and returns results in job
/// order. Identical kernels come out whether this runs on 1 thread, N
/// threads, or entirely from a warm cache.
std::vector<CompileResult>
compileModulesParallel(const std::vector<CompileJob> &Jobs,
                       const CompileServiceOptions &Opts = {});

/// The compile jobs of one network model: one job per fused subgraph the
/// graph engine produces, "network/layer" names, shared base options.
/// With \p PerOccurrence each subgraph appears Count times (the serving
/// workload: the graph engine requests every instance); otherwise each
/// distinct subgraph appears once.
std::vector<CompileJob> networkCompileJobs(const graph::NetworkModel &N,
                                           const AkgOptions &Base,
                                           bool PerOccurrence = false);

//===----------------------------------------------------------------------===//
// CompileService: the production-hardened serving layer (DESIGN.md 4h)
//===----------------------------------------------------------------------===//

/// What to do with a request arriving at a full queue.
enum class ShedPolicy {
  Reject,  // fail fast with Outcome = Overloaded (no kernel compiled)
  Degrade, // serve the scalar-fallback rung inline (valid, slow kernel)
};

struct ServiceStats {
  int64_t Submitted = 0;
  int64_t Completed = 0;   // worker-path results delivered (any outcome)
  int64_t Shed = 0;        // rejected at admission (policy Reject)
  int64_t Degraded = 0;    // scalar-rung service at admission (Degrade)
  int64_t Quarantined = 0; // fast-failed by the poison-pill quarantine
  int64_t Retries = 0;     // transient-fault retries taken
  int64_t FaultsInjected = 0;
  int64_t DelaysInjected = 0;
  int64_t HangsInjected = 0;
};

/// The hardened compile front end: a fixed worker pool behind a bounded
/// admission queue, per-request deadline/cancel inheritance, transient
/// retry with exponential backoff, poison-pill quarantine, and seeded
/// chaos injection. compileModulesParallel above remains the plain
/// unbounded fan-out for callers that want none of this.
class CompileService {
public:
  struct Options {
    /// Worker threads; 0 resolves AKG_THREADS (unset -> 1 = inline).
    unsigned Threads = 0;
    /// Admission bound: jobs admitted but not yet running. 0 resolves
    /// AKG_QUEUE_DEPTH (default 256). Inline mode never queues.
    unsigned QueueDepth = 0;
    /// Load-shedding policy; unset resolves AKG_SHED_POLICY
    /// ("reject" / "degrade", default reject).
    std::optional<ShedPolicy> Shed;
    /// Retries for transient faults (Outcome = Unavailable), with
    /// exponential backoff starting at RetryBackoffMs.
    unsigned MaxRetries = 2;
    double RetryBackoffMs = 1.0;
    /// Deadline for requests that do not carry their own
    /// AkgOptions::RequestDeadlineMs; 0 resolves AKG_DEADLINE_MS. The
    /// clock starts at admission, so queue wait counts against it.
    double DefaultDeadlineMs = 0;
    /// Content-addressed cache; nullptr compiles every job from scratch.
    KernelCache *Cache = &KernelCache::global();
    QuarantineOptions QuarantineOpts;
    /// Chaos spec; unset resolves AKG_CHAOS (unset/invalid -> no chaos).
    std::optional<ChaosSpec> Chaos;
  };

  CompileService(); // all-default options
  explicit CompileService(Options Opts);
  ~CompileService(); // drains in-flight and queued work

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Admits one request. Returns a future that is already ready when the
  /// request was shed (Reject: Outcome = Overloaded; Degrade: an inline
  /// scalar-rung kernel). The module must outlive the future's result.
  std::future<CompileResult> submit(const ir::Module &M,
                                    const AkgOptions &Opts,
                                    const std::string &Name);

  /// The network front door: parses one composite-subgraph JSON payload
  /// (src/composite), normalizes away its transform ops, and admits the
  /// lowered module. The job owns the parsed module, so neither the
  /// payload string nor anything else must outlive the future. A payload
  /// the frontend rejects returns an already-ready future with Outcome =
  /// InvalidArgument (or Unsupported) carrying the structured diagnostics
  /// in the message; nothing is compiled and no trace is dumped. Because
  /// lowering canonicalizes the payload, textual variants of the same
  /// subgraph land on the same kernel-cache fingerprint triple.
  /// A payload whose top-level value is an ARRAY is a batch request and
  /// is rejected here with a diagnostic pointing at submitJsonBatch, so a
  /// graph engine that picked the wrong entry point finds out immediately
  /// instead of getting a confusing per-payload schema error.
  std::future<CompileResult> submitJson(const std::string &JsonText,
                                        const AkgOptions &Opts);

  /// The batched front door: a top-level JSON array of composite-subgraph
  /// payloads (one network's fused subgraphs in one request) fans out to
  /// one future per entry, in payload order. Each entry is admitted
  /// independently: a malformed entry yields an already-ready
  /// InvalidArgument future carrying that entry's diagnostics while its
  /// siblings compile normally, and structurally identical entries
  /// coalesce in the kernel cache. A non-array payload is treated as a
  /// batch of one (the submitJson path). A payload unusable as a whole
  /// (unparseable, or over composite::kMaxBatchEntries) returns a single
  /// ready error future.
  std::vector<std::future<CompileResult>>
  submitJsonBatch(const std::string &JsonText, const AkgOptions &Opts);

  /// Submits every job and waits; results in job order.
  std::vector<CompileResult> compileAll(const std::vector<CompileJob> &Jobs);

  ServiceStats stats() const;
  Quarantine &quarantine() { return Quar; }
  unsigned threads() const { return NumThreads; }
  unsigned queueDepth() const { return Depth; }
  ShedPolicy shedPolicy() const { return Policy; }

private:
  /// Common admission path. \p M may own the module (submitJson) or be a
  /// non-owning alias of caller-owned storage (submit).
  std::future<CompileResult> submitShared(std::shared_ptr<const ir::Module> M,
                                          const AkgOptions &Opts,
                                          const std::string &Name);

  CompileResult runOne(const ir::Module &M, AkgOptions Opts,
                       const std::string &Name,
                       std::shared_ptr<cancel::Context> Ctx);

  Options Opt;
  unsigned NumThreads = 1;
  unsigned Depth = 256;
  ShedPolicy Policy = ShedPolicy::Reject;
  std::optional<ChaosSpec> Chaos;
  Quarantine Quar;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<int64_t> Queued{0}; // admitted, not yet running

  std::atomic<int64_t> NSubmitted{0}, NCompleted{0}, NShed{0}, NDegraded{0},
      NQuarantined{0}, NRetries{0}, NFaults{0}, NDelays{0}, NHangs{0};
};

} // namespace akg

#endif // AKG_AKG_COMPILESERVICE_H
