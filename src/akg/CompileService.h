//===- akg/CompileService.h - Parallel compile service ----------*- C++ -*-===//
//
// Fans independent module compiles across a fixed-size thread pool
// (support/ThreadPool.h), serving each job through the content-addressed
// kernel cache. This is the layer a graph engine (or a benchmark suite,
// or the tuner) talks to when it needs many kernels: the subgraphs of a
// network are independent compiles, so throughput scales with workers,
// and structurally identical subgraphs - within one network, across
// networks, or across repeated requests - compile exactly once.
//
// Threading contract (see DESIGN.md 4d): the compile pipeline itself is
// pure (no shared mutable state beyond the mutex-guarded Stats/Env/cache
// singletons), each job's Module is read-only during the run, and results
// land in job order. Output is bit-identical for 1 worker, N workers, or
// a warm cache.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_COMPILESERVICE_H
#define AKG_AKG_COMPILESERVICE_H

#include "akg/KernelCache.h"
#include "graph/Networks.h"

#include <string>
#include <vector>

namespace akg {

/// One compile request. The module must stay alive (and unmodified)
/// until compileModulesParallel returns.
struct CompileJob {
  const ir::Module *Mod = nullptr;
  AkgOptions Opts;
  std::string Name;
};

struct CompileServiceOptions {
  /// Worker threads; 0 resolves AKG_THREADS (unset/invalid -> 1, i.e.
  /// the sequential pipeline).
  unsigned Threads = 0;
  /// Content-addressed cache consulted per job; nullptr compiles every
  /// job from scratch (the pre-cache behavior).
  KernelCache *Cache = &KernelCache::global();
};

/// The effective worker count: \p Requested when nonzero, else the
/// AKG_THREADS environment variable, else 1.
unsigned compileServiceThreads(unsigned Requested = 0);

/// Compiles all jobs, fanning across workers, and returns results in job
/// order. Identical kernels come out whether this runs on 1 thread, N
/// threads, or entirely from a warm cache.
std::vector<CompileResult>
compileModulesParallel(const std::vector<CompileJob> &Jobs,
                       const CompileServiceOptions &Opts = {});

/// The compile jobs of one network model: one job per fused subgraph the
/// graph engine produces, "network/layer" names, shared base options.
/// With \p PerOccurrence each subgraph appears Count times (the serving
/// workload: the graph engine requests every instance); otherwise each
/// distinct subgraph appears once.
std::vector<CompileJob> networkCompileJobs(const graph::NetworkModel &N,
                                           const AkgOptions &Base,
                                           bool PerOccurrence = false);

} // namespace akg

#endif // AKG_AKG_COMPILESERVICE_H
