//===- akg/Compiler.cpp - The AKG compiler driver -------------------------===//

#include "akg/Compiler.h"

#include "ir/Passes.h"
#include "schedule/AstGen.h"
#include "sim/Simulator.h"
#include "transforms/Conv.h"
#include "transforms/Fusion.h"
#include "transforms/IntraTile.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace akg {

using namespace ir;
using namespace sched;
using namespace transforms;

CompileResult compileWithAkg(const Module &MIn, const AkgOptions &Opts,
                             const std::string &Name) {
  CompileResult Res;
  // Preparation passes (Sec 3). The prepared module must outlive the
  // kernel (tensor declarations are shared into it).
  auto Mod = std::make_shared<Module>(
      Opts.EnableInlining ? inlineElementwiseOps(MIn) : Module());
  const Module *M = Opts.EnableInlining ? Mod.get() : &MIn;

  PolyProgram P = extractPolyProgram(*M);
  std::vector<Dependence> Deps = computeDependences(P);

  // Attempt 0 compiles with the requested options; when even minimal
  // tiles cannot satisfy the buffer capacities (a fused region keeping
  // several very wide rows live), attempt 1 rejects the fusion entirely:
  // clustering is disabled so every statement tiles over its own full
  // dimensionality and intermediates round-trip global memory.
  for (unsigned Attempt = 0; Attempt < 2; ++Attempt) {
  sched::SchedulerOptions SchedOpts = Opts.Scheduler;
  if (Attempt == 1)
    SchedOpts.Fusion = sched::FusionStrategy::None;
  ScheduleResult SR = computeSchedule(P, Deps, SchedOpts);
  Res.UsedSchedulerFallback = false;
  for (const ClusterSchedule &CS : SR.Clusters)
    Res.UsedSchedulerFallback |= CS.UsedFallback;

  // Tile-size selection for the live-out cluster.
  const ClusterSchedule &Live = SR.Clusters.back();
  unsigned LiveStmt = Live.Stmts.front();
  unsigned W =
      static_cast<unsigned>(Live.Outer.at(LiveStmt).Rows.size());

  AutoTilingOptions ATOpts;
  ATOpts.FusedFootprint = Opts.EnablePostTilingFusion && Attempt == 0;
  // Cube constraints: keep conv output rows contiguous (wo untiled),
  // batch tiles at 1, and never tile a cube op's reduction dimensions at
  // the band level (the cube pipeline chunks K internally). Positions are
  // derived from the statement's axis list so the rules hold whether the
  // band covers the output axes only or, on the no-fusion fallback, the
  // full iterator vector.
  bool HasCube = false;
  for (unsigned S : Live.Stmts)
    if (auto D = matchCubeOp(P.Stmts[S])) {
      HasCube = true;
      unsigned NOut =
          static_cast<unsigned>(P.Stmts[S].Op->Axis.size());
      if (D->IsConv && NOut >= 1 && NOut - 1 < W)
        ATOpts.FullDims.push_back(NOut - 1); // wo
      if (((D->IsConv && NOut == 4) ||
           (!D->IsConv && D->Batch > 1 && NOut == 3)) &&
          W >= 1)
        ATOpts.UnitDims.push_back(0); // batch
      for (unsigned K = NOut; K < W; ++K)
        ATOpts.FullDims.push_back(K); // reduction dims stay whole
    }

  std::vector<int64_t> Sizes;
  if (Opts.ManualTiles) {
    // The policy may name any statement of the live-out cluster (users
    // typically name the update statement).
    Sizes.assign(W, 1);
    for (unsigned S : Live.Stmts)
      if (Opts.ManualTiles->PerStmt.count(S)) {
        Sizes = Opts.ManualTiles->sizesFor(S, W);
        break;
      }
    // The fractal constraints hold regardless of who chose the sizes (the
    // Fig 4 language frees users from validity concerns, Sec 4.2).
    for (unsigned D : ATOpts.FullDims)
      if (D < W) {
        int64_t Ext = 1;
        for (unsigned K = 0;
             K < P.Stmts[LiveStmt].Iters.size() && K < W; ++K)
          if (K == D)
            Ext = P.Stmts[LiveStmt].Iters[K].Extent;
        Sizes[D] = Ext;
      }
    for (unsigned D : ATOpts.UnitDims)
      if (D < W)
        Sizes[D] = 1;
    Res.TilingPolicyText = printTilingPolicy(*Opts.ManualTiles);
  } else {
    AutoTilingResult AT =
        autoTile(P, SR, Opts.Codegen.Machine, ATOpts);
    Sizes = AT.Sizes;
    Res.TilingPolicyText = printTilingPolicy(AT.Policy);
  }

  bool UseFusion = Opts.EnablePostTilingFusion && Attempt == 0;
  bool CapacityExhausted = false;
  for (unsigned Retry = 0;; ++Retry) {
    ScheduleTree T = buildScheduledTree(P, SR);
    FusionReport FR;
    if (UseFusion) {
      FR = applyPostTilingFusion(T, P, Sizes);
      // Clusters that could not fuse into the live-out tile (e.g. sibling
      // outputs) still need their own tiling + on-chip region, or their
      // footprints are unbounded.
      std::function<void(TreeNode *)> TileRest = [&](TreeNode *N) {
        if (N->Kind == NodeKind::Mark &&
            (N->MarkTag == "on_chip" || N->MarkTag == "skipped"))
          return;
        if (N->Kind == NodeKind::Band) {
          // Already-processed bands carry their on_chip mark beneath.
          if (findNode(N, [](TreeNode *X) {
                return X->Kind == NodeKind::Mark &&
                       (X->MarkTag == "on_chip" || X->MarkTag == "skipped");
              }))
            return;
          std::vector<int64_t> Sz(N->bandWidth(), 1);
          for (unsigned I = 0; I < Sz.size() && I < Sizes.size(); ++I)
            Sz[I] = Sizes[I];
          tileBand(N, Sz);
          std::unique_ptr<TreeNode> Owned = std::move(N->Children[0]);
          N->Children.clear();
          TreeNode *Mk = N->addChild(makeMark("on_chip"));
          Mk->addChild(std::move(Owned));
          return;
        }
        for (auto &C : N->Children)
          TileRest(C.get());
      };
      TileRest(T.root());
    } else {
      // Ablation: classical tiling without the reverse strategy. Every
      // cluster band is tiled independently and producers round-trip
      // through global memory.
      std::vector<TreeNode *> Bands;
      walkTree(T.root(), [&](TreeNode *N) {
        if (N->Kind == NodeKind::Band) {
          Bands.push_back(N);
          return false; // outer bands only
        }
        return true;
      });
      for (TreeNode *B : Bands) {
        std::vector<int64_t> Sz(B->bandWidth(), 1);
        for (unsigned I = 0; I < Sz.size() && I < Sizes.size(); ++I)
          Sz[I] = Sizes[I];
        tileBand(B, Sz);
        std::unique_ptr<TreeNode> Owned = std::move(B->Children[0]);
        B->Children.clear();
        TreeNode *Mk = B->addChild(makeMark("on_chip"));
        Mk->addChild(std::move(Owned));
      }
    }
    Res.FusedProducers = FR.FusedProducers;

    if (Opts.EnableIntraTile) {
      applyIntraTileFusion(T, P);
      sinkVectorizableDims(T, P);
    } else {
      // The cube path still requires its mark for fractal lowering.
      applyIntraTileFusion(T, P);
    }
    Res.ScheduleTreeDump = T.str();

    Stmt Ast = generateAst(T, P);
    cce::Kernel K =
        cce::lowerToCce(Ast, *M, P, Opts.Codegen, Name);
    std::string CapErr =
        cce::checkBufferCapacities(K, Opts.Codegen.Machine);
    if (!CapErr.empty() && Retry >= Opts.MaxTileRetries) {
      assert(Attempt == 0 &&
             "tiles exceed buffer capacity even without fusion");
      CapacityExhausted = true;
      break;
    }
    if (CapErr.empty()) {
      Res.Sync = cce::insertSynchronization(K, Opts.Sync);
      Res.Kernel = std::move(K);
      Res.TileSizes = Sizes;
      break;
    }
    // Halve the largest tile and retry.
    if (std::getenv("AKG_STATS"))
      {
        std::string Ts;
        for (int64_t Sz : Sizes)
          Ts += std::to_string(Sz) + " ";
        std::fprintf(stderr, "retile(%s): tiles [%s] %s\n", Name.c_str(),
                     Ts.c_str(), CapErr.c_str());
      }
    auto IsPinned = [&](unsigned D) {
      for (unsigned F : ATOpts.FullDims)
        if (F == D)
          return true;
      for (unsigned U : ATOpts.UnitDims)
        if (U == D)
          return true;
      return false;
    };
    int Largest = -1;
    for (unsigned I = 0; I < Sizes.size(); ++I)
      if (!IsPinned(I) && (Largest < 0 || Sizes[I] > Sizes[Largest]))
        Largest = static_cast<int>(I);
    if (Largest < 0 || Sizes[Largest] <= 1) {
      // Nothing halvable: behave as capacity-exhausted.
      assert(Attempt == 0 &&
             "tiles exceed buffer capacity even without fusion");
      CapacityExhausted = true;
      break;
    }
    Sizes[Largest] = std::max<int64_t>(1, Sizes[Largest] / 2);
  }
  if (!CapacityExhausted)
    break; // compiled successfully
  } // attempt loop
  if (Opts.EnableInlining)
    Res.Mod = Mod;
  return Res;
}

double verifyKernel(const cce::Kernel &K, const Module &M,
                    const sim::MachineSpec &Spec, uint32_t Seed) {
  BufferMap In;
  for (const Tensor &T : M.inputs())
    In[T->Name] = makeTestData(T->numElements(), Seed + T->numElements());
  BufferMap Ref = evaluateModule(M, In);
  BufferMap Got = In;
  sim::SimOptions SO;
  SO.Functional = true;
  sim::simulate(K, Spec, &Got, SO);
  double MaxErr = 0;
  for (const Tensor &O : M.outputs()) {
    const auto &GV = Got.at(O->Name);
    const auto &RV = Ref.at(O->Name);
    for (size_t I = 0; I < GV.size(); ++I)
      MaxErr = std::max(MaxErr, std::fabs(double(GV[I]) - double(RV[I])));
  }
  return MaxErr;
}

} // namespace akg
