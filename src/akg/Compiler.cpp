//===- akg/Compiler.cpp - The AKG compiler driver -------------------------===//

#include "akg/Compiler.h"

#include "ir/Passes.h"
#include "schedule/AstGen.h"
#include "sim/Compare.h"
#include "sim/Simulator.h"
#include "support/Env.h"
#include "support/Rational.h"
#include "support/Stats.h"
#include "transforms/Conv.h"
#include "transforms/Fusion.h"
#include "transforms/IntraTile.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace akg {

using namespace ir;
using namespace sched;
using namespace transforms;

namespace {

/// The real pipeline. Recoverable failures degrade in place and are
/// recorded in Res.Degradation; anything that still escapes is caught by
/// compileWithAkg and lands on the scalar fallback kernel.
CompileResult compileImpl(const Module &MIn, const AkgOptions &Opts,
                          const std::string &Name, Stage Fail) {
  CompileResult Res;
  // Preparation passes (Sec 3). The prepared module must outlive the
  // kernel (tensor declarations are shared into it).
  auto Mod = std::make_shared<Module>([&] {
    ScopedTimer T("akg.prepare");
    return Opts.EnableInlining ? inlineElementwiseOps(MIn) : Module();
  }());
  const Module *M = Opts.EnableInlining ? Mod.get() : &MIn;

  PolyProgram P = [&] {
    ScopedTimer T("akg.extract_poly");
    return extractPolyProgram(*M);
  }();
  std::vector<Dependence> Deps = [&] {
    ScopedTimer T("akg.dependences");
    return computeDependences(P);
  }();

  // Budgets + per-stage fault injection resolve into concrete knobs once,
  // up front; each injected failure is itself a rung of the ladder and is
  // recorded immediately.
  Deadline DL(Opts.Budget.DeadlineSeconds);
  sched::SchedulerOptions BaseSched = Opts.Scheduler;
  if (BaseSched.IlpNodeBudget == 0)
    BaseSched.IlpNodeBudget = Opts.Budget.IlpNodeBudget;
  if (BaseSched.DeadlineSeconds == 0)
    BaseSched.DeadlineSeconds = Opts.Budget.DeadlineSeconds;
  if (Fail == Stage::Scheduler)
    BaseSched.ForceFallback = true;

  cce::CodegenOptions CG = Opts.Codegen;
  if (Fail == Stage::Vectorize) {
    CG.EnableVectorize = false;
    Res.Degradation.record(Stage::Vectorize, "fault injected",
                           "scalar loop emission for all units");
  }
  if (Fail == Stage::DoubleBuffer) {
    CG.EnableDoubleBuffer = false;
    Res.Degradation.record(Stage::DoubleBuffer, "fault injected",
                           "single buffering (no ping-pong overlap)");
  }

  cce::SyncStrategy SyncS = Opts.Sync;
  if (Fail == Stage::Sync) {
    SyncS = cce::SyncStrategy::FullSerial;
    Res.Degradation.record(Stage::Sync, "fault injected",
                           "full-serial barriers between instructions");
  }

  bool PostFusion = Opts.EnablePostTilingFusion;
  if (Fail == Stage::Fusion) {
    PostFusion = false;
    Res.Degradation.record(
        Stage::Fusion, "fault injected",
        "post-tiling fusion disabled; producers round-trip global memory");
  }

  bool SinkDims = Opts.EnableIntraTile;
  if (Fail == Stage::IntraTile) {
    SinkDims = false;
    Res.Degradation.record(Stage::IntraTile, "fault injected",
                           "kept schedule loop order (no vector-dim sink)");
  }

  bool InjectStorage = Fail == Stage::Storage;
  bool Compiled = false;
  bool TimedOut = false;

  // Attempt 0 compiles with the requested options; when even minimal
  // tiles cannot satisfy the buffer capacities (a fused region keeping
  // several very wide rows live), attempt 1 rejects the fusion entirely:
  // clustering is disabled so every statement tiles over its own full
  // dimensionality and intermediates round-trip global memory.
  for (unsigned Attempt = 0; Attempt < 2; ++Attempt) {
  sched::SchedulerOptions SchedOpts = BaseSched;
  if (Attempt == 1)
    SchedOpts.Fusion = sched::FusionStrategy::None;
  ScheduleResult SR = [&] {
    ScopedTimer T("akg.schedule");
    return computeSchedule(P, Deps, SchedOpts);
  }();
  Res.UsedSchedulerFallback = false;
  for (const ClusterSchedule &CS : SR.Clusters)
    Res.UsedSchedulerFallback |= CS.UsedFallback;
  if (Res.UsedSchedulerFallback &&
      !Res.Degradation.hasStage(Stage::Scheduler))
    Res.Degradation.record(
        Stage::Scheduler,
        Fail == Stage::Scheduler ? "fault injected"
                                 : "scheduling ILP unsolved (too hard)",
        "identity schedules, cluster split into singletons");

  // Tile-size selection for the live-out cluster.
  const ClusterSchedule &Live = SR.Clusters.back();
  unsigned LiveStmt = Live.Stmts.front();
  unsigned W =
      static_cast<unsigned>(Live.Outer.at(LiveStmt).Rows.size());

  AutoTilingOptions ATOpts;
  ATOpts.FusedFootprint = PostFusion && Attempt == 0;
  // Cube constraints: keep conv output rows contiguous (wo untiled),
  // batch tiles at 1, and never tile a cube op's reduction dimensions at
  // the band level (the cube pipeline chunks K internally). Positions are
  // derived from the statement's axis list so the rules hold whether the
  // band covers the output axes only or, on the no-fusion fallback, the
  // full iterator vector.
  bool HasCube = false;
  for (unsigned S : Live.Stmts)
    if (auto D = matchCubeOp(P.Stmts[S])) {
      HasCube = true;
      unsigned NOut =
          static_cast<unsigned>(P.Stmts[S].Op->Axis.size());
      if (D->IsConv && NOut >= 1 && NOut - 1 < W)
        ATOpts.FullDims.push_back(NOut - 1); // wo
      if (((D->IsConv && NOut == 4) ||
           (!D->IsConv && D->Batch > 1 && NOut == 3)) &&
          W >= 1)
        ATOpts.UnitDims.push_back(0); // batch
      for (unsigned K = NOut; K < W; ++K)
        ATOpts.FullDims.push_back(K); // reduction dims stay whole
    }

  std::vector<int64_t> Sizes;
  if (Opts.ManualTiles) {
    // The policy may name any statement of the live-out cluster (users
    // typically name the update statement).
    Sizes.assign(W, 1);
    for (unsigned S : Live.Stmts)
      if (Opts.ManualTiles->PerStmt.count(S)) {
        Sizes = Opts.ManualTiles->sizesFor(S, W);
        break;
      }
    // The fractal constraints hold regardless of who chose the sizes (the
    // Fig 4 language frees users from validity concerns, Sec 4.2).
    for (unsigned D : ATOpts.FullDims)
      if (D < W) {
        int64_t Ext = 1;
        for (unsigned K = 0;
             K < P.Stmts[LiveStmt].Iters.size() && K < W; ++K)
          if (K == D)
            Ext = P.Stmts[LiveStmt].Iters[K].Extent;
        Sizes[D] = Ext;
      }
    for (unsigned D : ATOpts.UnitDims)
      if (D < W)
        Sizes[D] = 1;
    Res.TilingPolicyText = printTilingPolicy(*Opts.ManualTiles);
  } else {
    ScopedTimer T("akg.auto_tiling");
    AutoTilingResult AT = autoTile(P, SR, CG.Machine, ATOpts);
    Sizes = AT.Sizes;
    Res.TilingPolicyText = printTilingPolicy(AT.Policy);
  }

  // Cube-pinned dimensions keep their mandated sizes through every
  // degradation (halving, injection): the fractal pipeline depends on
  // them, and shrinking them buys no on-chip memory anyway.
  auto IsPinned = [&](unsigned D) {
    for (unsigned F : ATOpts.FullDims)
      if (F == D)
        return true;
    for (unsigned U : ATOpts.UnitDims)
      if (U == D)
        return true;
    return false;
  };

  if (Fail == Stage::Tiling) {
    for (unsigned I = 0; I < Sizes.size(); ++I)
      if (!IsPinned(I))
        Sizes[I] = 1;
    if (!Res.Degradation.hasStage(Stage::Tiling))
      Res.Degradation.record(Stage::Tiling, "fault injected",
                             "minimal unit tiles on all free dimensions");
  }

  bool UseFusion = PostFusion && Attempt == 0;
  bool CapacityExhausted = false;
  for (unsigned Retry = 0;; ++Retry) {
    if (DL.expired()) {
      TimedOut = true;
      break;
    }
    ScopedTimer RetryTimer("akg.tile_and_lower");
    ScheduleTree T = [&] {
      ScopedTimer ST("akg.build_tree");
      return buildScheduledTree(P, SR);
    }();
    FusionReport FR;
    if (UseFusion) {
      FR = applyPostTilingFusion(T, P, Sizes);
      // Clusters that could not fuse into the live-out tile (e.g. sibling
      // outputs) still need their own tiling + on-chip region, or their
      // footprints are unbounded.
      std::function<void(TreeNode *)> TileRest = [&](TreeNode *N) {
        if (N->Kind == NodeKind::Mark &&
            (N->MarkTag == "on_chip" || N->MarkTag == "skipped"))
          return;
        if (N->Kind == NodeKind::Band) {
          // Already-processed bands carry their on_chip mark beneath.
          if (findNode(N, [](TreeNode *X) {
                return X->Kind == NodeKind::Mark &&
                       (X->MarkTag == "on_chip" || X->MarkTag == "skipped");
              }))
            return;
          std::vector<int64_t> Sz(N->bandWidth(), 1);
          for (unsigned I = 0; I < Sz.size() && I < Sizes.size(); ++I)
            Sz[I] = Sizes[I];
          tileBand(N, Sz);
          std::unique_ptr<TreeNode> Owned = std::move(N->Children[0]);
          N->Children.clear();
          TreeNode *Mk = N->addChild(makeMark("on_chip"));
          Mk->addChild(std::move(Owned));
          return;
        }
        for (auto &C : N->Children)
          TileRest(C.get());
      };
      TileRest(T.root());
    } else {
      // Ablation: classical tiling without the reverse strategy. Every
      // cluster band is tiled independently and producers round-trip
      // through global memory.
      std::vector<TreeNode *> Bands;
      walkTree(T.root(), [&](TreeNode *N) {
        if (N->Kind == NodeKind::Band) {
          Bands.push_back(N);
          return false; // outer bands only
        }
        return true;
      });
      for (TreeNode *B : Bands) {
        std::vector<int64_t> Sz(B->bandWidth(), 1);
        for (unsigned I = 0; I < Sz.size() && I < Sizes.size(); ++I)
          Sz[I] = Sizes[I];
        tileBand(B, Sz);
        std::unique_ptr<TreeNode> Owned = std::move(B->Children[0]);
        B->Children.clear();
        TreeNode *Mk = B->addChild(makeMark("on_chip"));
        Mk->addChild(std::move(Owned));
      }
    }
    Res.FusedProducers = FR.FusedProducers;

    // The cube path always requires its mark for fractal lowering; the
    // vector-dim sink is the optional part of the intra-tile stage.
    {
      ScopedTimer ST("akg.intra_tile");
      applyIntraTileFusion(T, P);
      if (SinkDims)
        sinkVectorizableDims(T, P);
    }
    Res.ScheduleTreeDump = T.str();

    Stmt Ast = [&] {
      ScopedTimer ST("akg.ast_gen");
      return generateAst(T, P);
    }();
    cce::Kernel K = [&] {
      ScopedTimer ST("akg.lower_cce");
      return cce::lowerToCce(Ast, *M, P, CG, Name);
    }();
    std::string CapErr = cce::checkBufferCapacities(K, CG.Machine);
    if (InjectStorage) {
      // One simulated capacity failure; subsequent retries see the real
      // checker so the halving ladder converges normally.
      CapErr = "fault injected: storage capacity check failed";
      InjectStorage = false;
    }
    if (!CapErr.empty() && !Res.Degradation.hasStage(Stage::Storage))
      Res.Degradation.record(Stage::Storage, CapErr,
                             "halved largest free tile and retried");
    if (!CapErr.empty() && Retry >= Opts.MaxTileRetries) {
      CapacityExhausted = true;
      break;
    }
    if (CapErr.empty()) {
      ScopedTimer ST("akg.sync");
      Res.Sync = cce::insertSynchronization(K, SyncS);
      Res.Kernel = std::move(K);
      Res.TileSizes = Sizes;
      break;
    }
    Stats::get().add("akg.tile_retries");
    // Halve the largest tile and retry.
    if (Stats::enabled())
      {
        std::string Ts;
        for (int64_t Sz : Sizes)
          Ts += std::to_string(Sz) + " ";
        std::fprintf(stderr, "retile(%s): tiles [%s] %s\n", Name.c_str(),
                     Ts.c_str(), CapErr.c_str());
      }
    int Largest = -1;
    for (unsigned I = 0; I < Sizes.size(); ++I)
      if (!IsPinned(I) && (Largest < 0 || Sizes[I] > Sizes[Largest]))
        Largest = static_cast<int>(I);
    if (Largest < 0 || Sizes[Largest] <= 1) {
      // Nothing halvable: behave as capacity-exhausted.
      CapacityExhausted = true;
      break;
    }
    Sizes[Largest] = std::max<int64_t>(1, Sizes[Largest] / 2);
  }
  if (TimedOut)
    break;
  if (!CapacityExhausted) {
    Compiled = true;
    break;
  }
  if (Attempt == 0)
    Res.Degradation.record(
        Stage::Fusion, "minimal tiles still exceed capacity with fusion",
        "rejected fusion; producers round-trip global memory");
  } // attempt loop

  if (!Compiled) {
    // Bottom of the ladder: a single scalar instruction evaluating the
    // whole module on GM. Always fits, always correct, never fast.
    Res.Degradation.record(
        Stage::Storage,
        TimedOut ? "compile deadline expired"
                 : "minimal tiles exceed buffer capacity on every attempt",
        "scalar fallback kernel over global memory");
    Res.Kernel = cce::lowerScalarFallback(*M, Name);
    Res.Sync =
        cce::insertSynchronization(Res.Kernel, cce::SyncStrategy::FullSerial);
    Res.TileSizes.clear();
  }
  if (Opts.EnableInlining)
    Res.Mod = Mod;
  return Res;
}

} // namespace

Stage resolveFailStage(const AkgOptions &Opts) {
  Stage Fail = Opts.FailStage;
  if (std::optional<std::string> Env = env::get("AKG_FAIL_STAGE")) {
    Stage S = parseStage(*Env);
    if (S != Stage::None)
      Fail = S;
  }
  return Fail;
}

CompileResult compileWithAkg(const Module &MIn, const AkgOptions &Opts,
                             const std::string &Name) {
  ScopedTimer Timer("akg.compile");
  Stats::get().add("akg.compiles");
  Stage Fail = resolveFailStage(Opts);
  Stage Where = Stage::None;
  std::string Reason;
  try {
    return compileImpl(MIn, Opts, Name, Fail);
  } catch (const RationalOverflow &E) {
    // Should be absorbed inside the LP layer; if one escapes, the compile
    // still lands on its feet.
    Where = Stage::Scheduler;
    Reason = E.what();
  } catch (const std::exception &E) {
    Reason = E.what();
  } catch (...) {
    Reason = "unknown exception";
  }
  CompileResult Res;
  Res.Degradation.record(Where, Reason, "scalar fallback kernel");
  Res.Kernel = cce::lowerScalarFallback(MIn, Name);
  Res.Sync =
      cce::insertSynchronization(Res.Kernel, cce::SyncStrategy::FullSerial);
  return Res;
}

double verifyKernel(const cce::Kernel &K, const Module &M,
                    const sim::MachineSpec &Spec, uint32_t Seed) {
  return sim::diffKernelAgainstReference(K, M, Spec, Seed).MaxAbsErr;
}

} // namespace akg
