//===- akg/Compiler.cpp - The AKG compiler driver -------------------------===//

#include "akg/Compiler.h"

#include "akg/Pipeline.h"
#include "sim/Compare.h"
#include "sim/SimtRun.h"
#include "sim/Simulator.h"
#include "target/TargetBackend.h"
#include "support/Env.h"
#include "support/Rational.h"
#include "support/Stats.h"

namespace akg {

using namespace ir;

Stage resolveFailStage(const AkgOptions &Opts) {
  Stage Fail = Opts.FailStage;
  if (std::optional<std::string> Env = env::get("AKG_FAIL_STAGE")) {
    Stage S = parseStage(*Env);
    if (S != Stage::None)
      Fail = S;
  }
  return Fail;
}

sim::TargetKind resolveTarget(const AkgOptions &Opts) {
  sim::TargetKind T = Opts.Target;
  if (std::optional<std::string> Env = env::get("AKG_TARGET")) {
    sim::TargetKind E;
    if (sim::parseTargetName(*Env, E))
      T = E;
  }
  return T;
}

CompileResult compileWithAkg(const Module &MIn, const AkgOptions &Opts,
                             const std::string &Name) {
  ScopedTimer Timer("akg.compile");
  Stats::get().add("akg.compiles");
  Stage Fail = resolveFailStage(Opts);
  Stage Where = Stage::None;
  std::string Reason;
  try {
    // The real pipeline (akg/Pipeline.cpp). Recoverable failures degrade
    // in place and are recorded in Res.Degradation; anything that still
    // escapes is caught below and lands on the scalar fallback kernel.
    CompileResult Res = runPassPipeline(MIn, Opts, Name, Fail);
    trace::maybeDump(Res.Trace);
    return Res;
  } catch (const RationalOverflow &E) {
    // Should be absorbed inside the LP layer; if one escapes, the compile
    // still lands on its feet.
    Where = Stage::Scheduler;
    Reason = E.what();
  } catch (const std::exception &E) {
    Reason = E.what();
  } catch (...) {
    Reason = "unknown exception";
  }
  CompileResult Res;
  Res.Degradation.record(Where, Reason, "scalar fallback kernel");
  const TargetBackend &TB = targetBackend(resolveTarget(Opts));
  Res.Kernel = TB.scalarFallback(MIn, Name);
  Res.Sync = TB.insertSync(Res.Kernel, cce::SyncStrategy::FullSerial);
  Res.Trace.Kernel = Name;
  TraceEvent E;
  E.Pass = "exception_fallback";
  E.Id = Where;
  E.Note = Reason;
  E.Degradations.push_back(Res.Degradation.Steps.back());
  Res.Trace.Events.push_back(std::move(E));
  trace::maybeDump(Res.Trace);
  return Res;
}

double verifyKernel(const cce::Kernel &K, const Module &M,
                    const sim::MachineSpec &Spec, uint32_t Seed) {
  if (K.Target == sim::TargetKind::Simt)
    return sim::diffSimtAgainstReference(K, M, sim::SimtSpec::sm80(), Seed)
        .MaxAbsErr;
  return sim::diffKernelAgainstReference(K, M, Spec, Seed).MaxAbsErr;
}

} // namespace akg
