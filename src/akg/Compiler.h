//===- akg/Compiler.h - The AKG compiler driver -----------------*- C++ -*-===//
//
// The end-to-end AKG pipeline (paper Fig 2): DSL module -> preparation
// passes -> polyhedral extraction -> dependence analysis -> Pluto
// scheduling with clustering -> live-out tiling (Auto Tiling or a manual
// Fig 4 policy) -> post-tiling fusion via the reverse strategy ->
// intra-tile fusion/distribution with local_UB / cube_unit dispatch ->
// AST generation -> CCE lowering with storage management, img2col +
// fractal GEMM, vectorization and double buffering -> DP-grouped pipeline
// synchronization.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_COMPILER_H
#define AKG_AKG_COMPILER_H

#include "ir/Dsl.h"
#include "scheduler/Pluto.h"
#include "support/Cancel.h"
#include "support/Diag.h"
#include "support/Status.h"
#include "support/Trace.h"
#include "target/Codegen.h"
#include "target/Sync.h"
#include "transforms/AutoTiling.h"

#include <memory>
#include <optional>

namespace akg {

struct AkgOptions {
  /// Which simulated machine to compile for (sim/Target.h). The whole
  /// polyhedral frontend is shared; lowering, storage checks, sync and
  /// simulation dispatch through target/TargetBackend.h. The AKG_TARGET
  /// environment variable (cce|simt) overrides this when it parses.
  sim::TargetKind Target = sim::TargetKind::Cce;
  sched::SchedulerOptions Scheduler;
  cce::CodegenOptions Codegen;
  cce::SyncStrategy Sync = cce::SyncStrategy::AkgDp;
  /// Manual tile policy (Fig 4 language); Auto Tiling when unset.
  std::optional<transforms::TilingPolicy> ManualTiles;
  bool EnablePostTilingFusion = true;
  bool EnableIntraTile = true;
  bool EnableInlining = false; // preparation inlining of trivial producers
  /// Retries with halved tiles if buffers overflow.
  unsigned MaxTileRetries = 24;
  /// Wall-clock + solver budgets; exhaustion degrades, never aborts.
  CompileBudget Budget;
  /// Fault injection: force this stage's preferred path to fail so the
  /// degradation ladder runs. The AKG_FAIL_STAGE environment variable
  /// (stage name, see support/Diag.h) overrides this when set.
  Stage FailStage = Stage::None;
  /// Hard wall-clock deadline for this request, in milliseconds. Unlike
  /// Budget.DeadlineSeconds (a soft budget stages degrade under), hitting
  /// this deadline unwinds the compile with Outcome = DeadlineExceeded.
  /// Zero consults the AKG_DEADLINE_MS environment variable (0 = none).
  /// Excluded from the cache fingerprint: failed results never enter the
  /// cache, so the deadline cannot change what a cached kernel looks like.
  double RequestDeadlineMs = 0;
  /// Cooperative cancellation: the requester may flip this token from any
  /// thread; the pipeline notices at the next checkpoint and unwinds with
  /// Outcome = Cancelled. Also excluded from the cache fingerprint.
  std::shared_ptr<CancelToken> Cancel;
};

/// Late-bound shape metadata attached to a CompileResult served from a
/// bucketed skeleton (DESIGN.md 4k). The kernel itself is the skeleton
/// compiled at the bucket representatives; executing a concrete request
/// pads each dynamic input dim with zeros up to the representative extent,
/// runs the skeleton, and slices every output back to the concrete extents
/// (sound for the pointwise-in-dynamic-axes class the admission analysis
/// enforces). Immutable after construction -- shared across cache hits.
struct ShapeBinding {
  /// Shape symbol -> concrete extent of this request.
  std::map<std::string, int64_t> Concrete;
  /// Shape symbol -> bucket-representative extent the skeleton compiled at.
  std::map<std::string, int64_t> Representative;
  /// Shape symbol -> bucket id ("b64", ...) that entered the cache key.
  std::map<std::string, std::string> BucketIds;
  /// Per-tensor dynamic-dim symbols: tensor name -> (dim -> symbol), for
  /// inputs and outputs with at least one marked dim.
  std::map<std::string, std::map<unsigned, std::string>> TensorSyms;
};

struct CompileResult {
  cce::Kernel Kernel;
  /// The module actually compiled (after preparation passes).
  std::shared_ptr<ir::Module> Mod;
  std::string ScheduleTreeDump;
  std::string TilingPolicyText; // Fig 4 rendering of the chosen sizes
  std::vector<int64_t> TileSizes;
  unsigned FusedProducers = 0;
  bool UsedSchedulerFallback = false;
  cce::SyncReport Sync;
  /// Every rung taken down the fallback ladder (empty = clean compile).
  DegradationReport Degradation;
  /// What the pass pipeline did: one event per executed pass, plus the
  /// controller decisions (retiles, fusion rejection) and cache hits.
  /// Dumpable via AKG_TRACE (support/Trace.h, DESIGN.md 4g).
  CompileTrace Trace;
  /// How the request terminated. ok = the pipeline ran to completion
  /// (possibly degraded). DeadlineExceeded/Cancelled = the compile was
  /// unwound early and Kernel holds the scalar fallback. The service layer
  /// also produces Overloaded/Quarantined/Unavailable outcomes. Results
  /// with a non-ok Outcome are never inserted into the kernel cache.
  Status Outcome;
  /// End-to-end request latency through CompileService (admission to
  /// completion: queue wait + chaos sleeps + retries + compile). Zero for
  /// compiles that did not go through the service.
  double ServiceSeconds = 0;
  /// Set when this result was served from a bucketed dynamic-shape
  /// skeleton: Kernel computes at the bucket-representative extents and
  /// sim::runBound pads/slices to the concrete request shape. Null for
  /// ordinary per-shape compiles. Shared (immutable) across cache hits.
  std::shared_ptr<const ShapeBinding> DynShape;
};

/// Compiles one fused operator with the full AKG pipeline.
CompileResult compileWithAkg(const ir::Module &M, const AkgOptions &Opts,
                             const std::string &Name);

/// The fault-injection stage in effect for a compile with these options:
/// the AKG_FAIL_STAGE environment override when it names a stage, else
/// Opts.FailStage. Shared by the driver and the kernel cache (the cache
/// key must reflect the stage that would actually fail).
Stage resolveFailStage(const AkgOptions &Opts);

/// The target a compile with these options lowers for: the AKG_TARGET
/// environment override when it names a known target, else Opts.Target.
/// Shared by the driver and the kernel cache (the key must reflect the
/// backend that would actually run), mirroring resolveFailStage.
sim::TargetKind resolveTarget(const AkgOptions &Opts);

/// Convenience: compile + simulate functionally + compare against the
/// reference evaluator; returns the max abs error over all outputs.
/// Dispatches on K.Target: SIMT kernels run under sim::simulateSimt
/// (functional results are launch-shape- and spec-independent, so the
/// default SIMT machine is used); \p Spec drives CCE kernels as before.
double verifyKernel(const cce::Kernel &K, const ir::Module &M,
                    const sim::MachineSpec &Spec, uint32_t Seed = 1);

} // namespace akg

#endif // AKG_AKG_COMPILER_H
