//===- akg/DynShape.cpp - Dynamic-shape canonicalization ------------------===//

#include "akg/DynShape.h"

#include "ir/ModuleUtils.h"
#include "ir/SymbolicShape.h"
#include "scheduler/ShapeDep.h"
#include "support/Env.h"
#include "support/Stats.h"

#include <algorithm>
#include <sstream>

namespace akg {
namespace dynshape {

bool eligible(const ir::Module &M) {
  if (env::getInt("AKG_DYNSHAPE", 1) == 0)
    return false;
  return ir::hasDynamicDims(M);
}

Plan plan(const ir::Module &M, const BucketScheme &Scheme) {
  Plan P;
  auto Reject = [&](std::string Why) {
    P.Usable = false;
    P.FallbackReason = std::move(Why);
    if (Stats::enabled())
      Stats::get().add("dynshape.fallback");
    return P;
  };

  // Work on a clone: the analysis writes derived marks onto op outputs
  // and the skeleton is a rebound rebuild.
  auto Work = std::make_shared<ir::Module>(ir::cloneModule(M));
  ir::DynShapeAnalysis A = ir::analyzeDynamicShapes(*Work);
  if (!A.Supported)
    return Reject(A.Reason);

  // Bucket every bound symbol; the effective range is the bucket clipped
  // to the symbol's declared range, and the representative is its top.
  const auto &Syms = Work->shapeSymbols();
  std::map<std::string, ir::SymExtentRange> Ranges;
  std::map<std::string, int64_t> Reps;
  auto Binding = std::make_shared<ShapeBinding>();
  std::ostringstream KeyOS;
  KeyOS << "dynshape|";
  for (int64_t B : Scheme.bounds())
    KeyOS << B << ",";
  for (const auto &[Sym, Ext] : A.Bound) {
    std::optional<ShapeBucket> Bk = Scheme.bucketFor(Ext);
    if (!Bk)
      return Reject("extent " + std::to_string(Ext) + " of symbol '" + Sym +
                    "' is beyond the last bucket bound");
    const ir::SymRange &Decl = Syms.at(Sym);
    int64_t Lo = std::max(Bk->Lo, Decl.Min);
    int64_t Hi = std::min(Bk->Hi, Decl.Max);
    Ranges[Sym] = ir::SymExtentRange{Lo, Hi};
    Reps[Sym] = Hi;
    std::string Id = BucketScheme::bucketId(ShapeBucket{Lo, Hi});
    Binding->Concrete[Sym] = Ext;
    Binding->Representative[Sym] = Hi;
    Binding->BucketIds[Sym] = Id;
    KeyOS << "|" << Sym << "=" << Id;
  }

  // Shape-dependence probe: the dependence structure must be invariant
  // over the bucket, else the skeleton's schedule may be illegal for
  // some extents in it.
  std::string Dep = sched::probeShapeDependence(*Work, Ranges);
  if (!Dep.empty())
    return Reject(Dep);

  // Build the skeleton at the representatives and run the bounds checker
  // as a safety net: any structural case the analysis misjudged (e.g. an
  // unmarked tensor whose extent only coincidentally matched a dynamic
  // one) surfaces here as an out-of-bounds read.
  auto Skeleton =
      std::make_shared<ir::Module>(ir::rebindShapes(*Work, Reps));
  std::string Bounds = ir::checkModuleBounds(*Skeleton);
  if (!Bounds.empty())
    return Reject("skeleton fails bounds check: " + Bounds);

  // Record which tensor dims are dynamic, by name, for pad/slice.
  for (const ir::Tensor &T : Work->allTensors()) {
    std::map<unsigned, std::string> Dims;
    for (unsigned D = 0; D < T->Shape.size(); ++D)
      if (!T->symOf(D).empty())
        Dims[D] = T->symOf(D);
    if (!Dims.empty())
      Binding->TensorSyms[T->Name] = std::move(Dims);
  }

  P.Usable = true;
  P.Skeleton = std::move(Skeleton);
  P.BucketKey = KeyOS.str();
  P.Binding = std::move(Binding);
  if (Stats::enabled())
    Stats::get().add("dynshape.admitted");
  return P;
}

} // namespace dynshape
} // namespace akg
