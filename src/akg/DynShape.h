//===- akg/DynShape.h - Dynamic-shape canonicalization ----------*- C++ -*-===//
//
// Admission + canonicalization for the shape-bucketed cache path
// (DESIGN.md 4k). A concrete request whose module carries shape-symbol
// marks is canonicalized to its bucket SKELETON: the same module rebound
// so every dynamic extent sits at its bucket representative. The skeleton
// compiles through the ordinary pipeline (which never reads the marks), is
// cached under a bucketed key (skeleton fingerprint x bucket ids x
// options), and every request in the bucket binds its concrete extents to
// the shared skeleton at lookup time. Admission is conservative: the
// structural analysis (ir/SymbolicShape.h), the parametric dependence
// probe (scheduler/ShapeDep.h) and a bounds safety net must all pass,
// otherwise the request falls back to today's per-shape compile.
// AKG_DYNSHAPE=0 disables the whole path.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_DYNSHAPE_H
#define AKG_AKG_DYNSHAPE_H

#include "akg/Compiler.h"
#include "akg/ShapeBuckets.h"

namespace akg {
namespace dynshape {

/// The canonicalization outcome for one concrete request.
struct Plan {
  /// True when the skeleton path is admissible for this request.
  bool Usable = false;
  /// Why the request must fall back to per-shape compilation.
  std::string FallbackReason;
  /// The bucket skeleton: the request module rebound to representative
  /// extents (marks preserved). Compiles like any concrete module.
  std::shared_ptr<ir::Module> Skeleton;
  /// Salt string mixed into the skeleton's cache key: scheme bounds plus
  /// per-symbol bucket ids, so bucketed entries never alias plain
  /// concrete compiles or other bucket configurations.
  std::string BucketKey;
  /// Late-binding metadata handed to sim::runBound on every hit.
  std::shared_ptr<const ShapeBinding> Binding;
};

/// True when the dynamic-shape path may run at all: the kill switch
/// AKG_DYNSHAPE is not "0" and \p M carries dynamic marks.
bool eligible(const ir::Module &M);

/// Full admission pipeline for \p M under \p Scheme. Never throws; every
/// rejection is a Plan with Usable=false and a reason.
Plan plan(const ir::Module &M, const BucketScheme &Scheme);

} // namespace dynshape
} // namespace akg

#endif // AKG_AKG_DYNSHAPE_H
