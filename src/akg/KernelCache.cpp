//===- akg/KernelCache.cpp - Content-addressed kernel cache ---------------===//

#include "akg/KernelCache.h"

#include "akg/DynShape.h"
#include "akg/KernelStore.h"
#include "support/Stats.h"

#include <chrono>
#include <cstring>
#include <unordered_map>

namespace akg {

using namespace ir;

namespace {

/// A cache-served result keeps the original compile's trace but leads
/// with a synthetic event marking how this request was satisfied, so
/// AKG_TRACE dumps distinguish real compiles from cache service.
CompileResult serveCached(const CompileResult &R, const std::string &Name,
                          const char *Event,
                          const char *Tier = "kernel cache") {
  CompileResult Out = R;
  Out.Kernel.Name = Name;
  Out.Trace.Kernel = Name;
  Out.Trace.CacheHit = true;
  TraceEvent E;
  E.Pass = Event;
  E.Note = std::string("served by ") + Tier +
           "; events below are the original compile";
  Out.Trace.Events.insert(Out.Trace.Events.begin(), std::move(E));
  trace::maybeDump(Out.Trace);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprinting
//===----------------------------------------------------------------------===//

namespace {

/// splitmix64-style combiner: strong enough that every field flip lands
/// on a different 64-bit value with overwhelming probability.
inline void mix(uint64_t &H, uint64_t V) {
  V += 0x9e3779b97f4a7c15ull;
  V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ull;
  V = (V ^ (V >> 27)) * 0x94d049bb133111ebull;
  V ^= V >> 31;
  H = (H ^ V) * 1099511628211ull + 0x2545f4914f6cdd1dull;
}

inline uint64_t bitsOf(double D) {
  uint64_t U;
  std::memcpy(&U, &D, sizeof U);
  return U;
}

inline void mixString(uint64_t &H, const std::string &S) {
  mix(H, S.size());
  for (char C : S)
    mix(H, static_cast<unsigned char>(C));
}

/// Hashes expressions with alpha-renaming: tensors hash as their
/// position in the module (inputs first, then op outputs, in creation
/// order) and iteration variables hash as their position in the
/// enclosing op's axis list (or reduce-axis list). Intrinsic names are
/// semantic and hash as text.
struct ModuleHasher {
  std::unordered_map<const TensorDecl *, uint64_t> TensorId;
  std::unordered_map<std::string, uint64_t> VarId; // reset per op

  void hashExpr(uint64_t &H, const Expr &E) {
    if (!E) {
      mix(H, 0x6e756c6cull); // "null"
      return;
    }
    mix(H, static_cast<uint64_t>(E->Kind));
    mix(H, static_cast<uint64_t>(E->Type));
    switch (E->Kind) {
    case ExprKind::IntImm:
      mix(H, static_cast<uint64_t>(E->IntVal));
      break;
    case ExprKind::FloatImm:
      mix(H, bitsOf(E->FloatVal));
      break;
    case ExprKind::Var: {
      auto It = VarId.find(E->Name);
      if (It != VarId.end()) {
        mix(H, It->second);
      } else {
        // Free variable (should not happen in a well-formed module):
        // hash the raw name so distinct frees stay distinct.
        mix(H, 0x66726565ull); // "free"
        mixString(H, E->Name);
      }
      break;
    }
    case ExprKind::Call:
      mixString(H, E->Name);
      break;
    case ExprKind::TensorRead: {
      auto It = TensorId.find(E->Ref.get());
      if (It != TensorId.end()) {
        mix(H, It->second);
      } else {
        // Foreign tensor: fall back to its structure.
        mix(H, 0x666f7265ull); // "fore"
        if (E->Ref) {
          mix(H, static_cast<uint64_t>(E->Ref->Type));
          mix(H, E->Ref->Shape.size());
          for (int64_t S : E->Ref->Shape)
            mix(H, static_cast<uint64_t>(S));
        }
      }
      break;
    }
    case ExprKind::Reduce: {
      mix(H, static_cast<uint64_t>(E->RKind));
      mix(H, E->ReduceAxes.size());
      for (size_t J = 0; J < E->ReduceAxes.size(); ++J) {
        mix(H, static_cast<uint64_t>(E->ReduceAxes[J].Extent));
        VarId[E->ReduceAxes[J].Name] = 0x10000 + J;
      }
      break;
    }
    default:
      break;
    }
    mix(H, E->Operands.size());
    for (const Expr &Op : E->Operands)
      hashExpr(H, Op);
  }
};

} // namespace

uint64_t fingerprintModule(const Module &M) {
  uint64_t H = 0x616b672d6d6f64ull; // "akg-mod"
  ModuleHasher MH;
  uint64_t NextId = 1;
  mix(H, M.inputs().size());
  for (const Tensor &T : M.inputs()) {
    MH.TensorId[T.get()] = NextId++;
    mix(H, static_cast<uint64_t>(T->Type));
    mix(H, T->Shape.size());
    for (int64_t S : T->Shape)
      mix(H, static_cast<uint64_t>(S));
  }
  mix(H, M.ops().size());
  for (const auto &Op : M.ops()) {
    MH.VarId.clear();
    mix(H, Op->Axis.size());
    for (size_t I = 0; I < Op->Axis.size(); ++I) {
      mix(H, static_cast<uint64_t>(Op->Axis[I].Extent));
      mix(H, Op->Axis[I].IsReduce ? 1 : 0);
      MH.VarId[Op->Axis[I].Name] = 0x100 + I;
    }
    const Tensor &Out = Op->Output;
    MH.TensorId[Out.get()] = NextId++;
    mix(H, static_cast<uint64_t>(Out->Type));
    mix(H, Out->Shape.size());
    for (int64_t S : Out->Shape)
      mix(H, static_cast<uint64_t>(S));
    MH.hashExpr(H, Op->Body);
  }
  return H;
}

uint64_t fingerprintMachine(const sim::MachineSpec &S) {
  uint64_t H = 0x616b672d6d6163ull; // "akg-mac"
  for (int64_t V :
       {S.L1Bytes, S.UBBytes, S.L0ABytes, S.L0BBytes, S.L0CBytes,
        S.GmBandwidth, S.GmLatency, S.OnChipBandwidth, S.OnChipLatency,
        S.BurstLatency, S.CubeM, S.CubeN, S.CubeK, S.CubeStartup,
        S.VectorLanes, S.VectorIssue, S.ScalarCost, S.SyncCost})
    mix(H, static_cast<uint64_t>(V));
  return H;
}

uint64_t fingerprintSimt(const sim::SimtSpec &S) {
  uint64_t H = 0x616b672d736d74ull; // "akg-smt"
  for (int64_t V :
       {S.NumSMs, S.MaxBlocksPerSM, S.MaxThreadsPerBlock, S.WarpSize,
        S.SharedMemBytes, S.RegisterBytes, S.GlobalBandwidth,
        S.GlobalLatency, S.CoalesceBytes, S.TransactionCost,
        S.SharedLatency, S.SharedBandwidth, S.IssueCost, S.ScalarCost,
        S.BarrierCost, S.LaunchLatency})
    mix(H, static_cast<uint64_t>(V));
  return H;
}

uint64_t fingerprintOptions(const AkgOptions &O) {
  uint64_t H = 0x616b672d6f7074ull; // "akg-opt"
  const sched::SchedulerOptions &S = O.Scheduler;
  mix(H, static_cast<uint64_t>(S.Fusion));
  mix(H, S.AllowSkew ? 1 : 0);
  mix(H, S.AllowShift ? 1 : 0);
  mix(H, static_cast<uint64_t>(S.CoeffBound));
  mix(H, static_cast<uint64_t>(S.ShiftBound));
  mix(H, S.UseBoundingFunction ? 1 : 0);
  mix(H, static_cast<uint64_t>(S.IlpNodeBudget));
  mix(H, bitsOf(S.DeadlineSeconds));
  mix(H, S.ForceFallback ? 1 : 0);

  mix(H, fingerprintMachine(O.Codegen.Machine));
  mix(H, O.Codegen.EnableVectorize ? 1 : 0);
  mix(H, O.Codegen.EnableDoubleBuffer ? 1 : 0);

  mix(H, static_cast<uint64_t>(O.Sync));

  mix(H, O.ManualTiles.has_value() ? 1 : 0);
  if (O.ManualTiles) {
    mix(H, O.ManualTiles->PerStmt.size());
    for (const auto &[Id, Spec] : O.ManualTiles->PerStmt) {
      mix(H, Id);
      mix(H, Spec.Entries.size());
      for (const transforms::TileSpecEntry &E : Spec.Entries) {
        mix(H, static_cast<uint64_t>(E.Size));
        mixString(H, E.BufferName);
      }
    }
  }

  mix(H, O.EnablePostTilingFusion ? 1 : 0);
  mix(H, O.EnableIntraTile ? 1 : 0);
  mix(H, O.EnableInlining ? 1 : 0);
  mix(H, O.MaxTileRetries);
  mix(H, bitsOf(O.Budget.DeadlineSeconds));
  mix(H, static_cast<uint64_t>(O.Budget.IlpNodeBudget));
  // The stage that will actually fail, with the environment override
  // applied: two compiles with the same options but different
  // AKG_FAIL_STAGE must not share a cache line.
  mix(H, static_cast<uint64_t>(resolveFailStage(O)));
  // The target that will actually lower, with the AKG_TARGET override
  // applied: cce and simt kernels must never alias, and any SIMT
  // machine-model change invalidates simt entries (mirroring how
  // fingerprintMachine covers the CCE spec above).
  mix(H, static_cast<uint64_t>(resolveTarget(O)));
  mix(H, fingerprintSimt(O.Codegen.Simt));
  // Deliberately NOT mixed: RequestDeadlineMs and Cancel. They change
  // only whether a compile finishes, never what kernel a finished compile
  // emits - and results with a non-ok Outcome are never inserted - so
  // requests differing only in deadline/token must share a cache line.
  return H;
}

uint64_t bindingFingerprint(const Module &M) {
  uint64_t H = 0x616b672d626e64ull; // "akg-bnd"
  for (const Tensor &T : M.allTensors())
    mixString(H, T->Name);
  return H;
}

CacheKey makeCacheKey(const Module &M, const AkgOptions &O) {
  return CacheKey{fingerprintModule(M), fingerprintOptions(O),
                  bindingFingerprint(M)};
}

CacheKey makeBucketedCacheKey(const Module &Skeleton, const AkgOptions &O,
                              const std::string &BucketKey) {
  CacheKey K = makeCacheKey(Skeleton, O);
  mixString(K.ModuleFp, BucketKey);
  return K;
}

//===----------------------------------------------------------------------===//
// KernelCache
//===----------------------------------------------------------------------===//

KernelCache::KernelCache(size_t MaxEntries) : MaxEntries(MaxEntries) {}

std::shared_ptr<const CompileResult>
KernelCache::lookupLocked(const CacheKey &K) {
  auto It = Map.find(K);
  if (It == Map.end())
    return nullptr;
  // Touch: move to the front of the LRU list.
  Lru.splice(Lru.begin(), Lru, It->second);
  return It->second->Result;
}

void KernelCache::insertLocked(const CacheKey &K,
                               std::shared_ptr<const CompileResult> R) {
  auto It = Map.find(K);
  if (It != Map.end()) {
    It->second->Result = std::move(R);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{K, std::move(R)});
  Map[K] = Lru.begin();
  while (Map.size() > MaxEntries) {
    Map.erase(Lru.back().Key);
    Lru.pop_back();
    ++Counts.Evictions;
    if (Stats::enabled())
      Stats::get().add("kernel_cache.evict");
  }
}

std::shared_ptr<const CompileResult> KernelCache::lookup(const CacheKey &K) {
  std::lock_guard<std::mutex> G(Lock);
  auto R = lookupLocked(K);
  if (R) {
    ++Counts.Hits;
    if (Stats::enabled()) {
      Stats::get().add("kernel_cache.hit");
      Stats::get().add("cache.hit_memory");
    }
  }
  return R;
}

void KernelCache::insert(const CacheKey &K, CompileResult R) {
  std::lock_guard<std::mutex> G(Lock);
  insertLocked(K, std::make_shared<const CompileResult>(std::move(R)));
}

CompileResult KernelCache::compileOrGet(const Module &M,
                                        const AkgOptions &Opts,
                                        const std::string &Name) {
  return compileOrGet(M, Opts, Name,
                      [](const Module &Mod, const AkgOptions &O,
                         const std::string &N) {
                        return compileWithAkg(Mod, O, N);
                      });
}

CompileResult KernelCache::compileOrGet(const Module &M,
                                        const AkgOptions &Opts,
                                        const std::string &Name,
                                        const CompileFn &Fn) {
  // Dynamic-shape path: canonicalize to the bucket skeleton, serve under
  // the bucketed key, and attach the late-binding metadata. Any
  // admission failure - or a failed skeleton compile - drops to the
  // plain per-shape path below, so bucketing can only add reuse, never
  // change what a request is allowed to compute.
  if (dynshape::eligible(M)) {
    if (Stats::enabled())
      Stats::get().add("dynshape.request");
    dynshape::Plan P = dynshape::plan(M, BucketScheme::fromEnv());
    if (P.Usable) {
      CacheKey BK = makeBucketedCacheKey(*P.Skeleton, Opts, P.BucketKey);
      CompileResult R = compileOrGetKeyed(BK, *P.Skeleton, Opts, Name, Fn);
      if (R.Outcome.isOk()) {
        R.DynShape = P.Binding;
        cce::stampExtentRegs(R.Kernel, *P.Skeleton);
        {
          std::lock_guard<std::mutex> G(Lock);
          ++Counts.DynBinds;
        }
        if (Stats::enabled())
          Stats::get().add("dynshape.bind");
        TraceEvent E;
        E.Pass = "dynshape_bind";
        E.Note = "bound to bucket skeleton (" + P.BucketKey + ")";
        R.Trace.Events.insert(R.Trace.Events.begin(), std::move(E));
        return R;
      }
      trace::debugEcho("dynshape: skeleton compile failed (" +
                       R.Outcome.str() + ") for '" + Name +
                       "'; retrying per-shape");
    } else {
      trace::debugEcho("dynshape: fallback for '" + Name + "': " +
                       P.FallbackReason);
    }
    std::lock_guard<std::mutex> G(Lock);
    ++Counts.DynFallbacks;
  }
  return compileOrGetKeyed(makeCacheKey(M, Opts), M, Opts, Name, Fn);
}

CompileResult KernelCache::compileOrGetKeyed(const CacheKey &K,
                                             const Module &M,
                                             const AkgOptions &Opts,
                                             const std::string &Name,
                                             const CompileFn &Fn) {
  // The retry loop only repeats after a failed leader: waiters woken
  // with Failed re-enter the lookup under their own deadline/token and
  // may find a completed entry, coalesce onto a new leader, or become
  // the leader themselves.
  for (;;) {
    std::shared_ptr<InFlight> Flight;
    bool Leader = false;
    {
      std::lock_guard<std::mutex> G(Lock);
      if (auto R = lookupLocked(K)) {
        ++Counts.Hits;
        if (Stats::enabled()) {
          Stats::get().add("kernel_cache.hit");
          Stats::get().add("cache.hit_memory");
        }
        return serveCached(*R, Name, "cache_hit");
      }
      auto It = Pending.find(K);
      if (It != Pending.end()) {
        Flight = It->second;
        ++Counts.Coalesced;
        if (Stats::enabled()) {
          Stats::get().add("kernel_cache.coalesced");
          Stats::get().add("cache.hit_coalesced");
        }
      } else {
        Flight = std::make_shared<InFlight>();
        Pending.emplace(K, Flight);
        Leader = true;
        ++Counts.Misses;
        if (Stats::enabled())
          Stats::get().add("kernel_cache.miss");
      }
    }
    if (!Leader) {
      // Another thread is compiling this exact content; wait for it
      // instead of duplicating the work (single-flight). The bounded
      // wait_for only paces the cancel poll - a notify still wakes the
      // waiter immediately - so a coalesced waiter honors its own
      // deadline/token even while the leader runs.
      {
        std::unique_lock<std::mutex> G(Lock);
        while (!Flight->Done) {
          Flight->Ready.wait_for(G, std::chrono::milliseconds(2));
          if (!Flight->Done && cancel::interrupted() != ErrCode::Ok) {
            G.unlock();
            cancel::checkPoint("cache_wait"); // throws
          }
        }
      }
      if (!Flight->Failed)
        return serveCached(*Flight->Result, Name, "cache_coalesced");
      trace::debugEcho("kernel_cache: leader failed (" + Flight->Err.str() +
                       ") for '" + Name + "'; waiter retrying");
      continue;
    }
    // Leader: memory missed. Consult the on-disk store first, then
    // compile - both outside the lock, so coalesced waiters share one
    // disk load exactly like they share one compile.
    std::shared_ptr<const CompileResult> R;
    bool FromDisk = false;
    if (DiskKernelStore *DS = DiskKernelStore::global())
      if (auto D = DS->load(K)) {
        R = std::move(D);
        FromDisk = true;
      }
    if (!R)
    try {
      R = std::make_shared<const CompileResult>(Fn(M, Opts, Name));
    } catch (...) {
      // compileWithAkg degrades internally and does not throw; injected
      // compile functions (tests, chaos) and a CancelledError from a
      // nested coalesced wait can. Waiters must never inherit the
      // exception or time out: mark the flight failed and wake them all.
      {
        std::lock_guard<std::mutex> G(Lock);
        ++Counts.LeaderFailed;
        if (Stats::enabled())
          Stats::get().add("cache.leader_failed");
        Flight->Err =
            Status::error(ErrCode::Internal, "leader compile threw");
        Flight->Failed = true;
        Flight->Done = true;
        Pending.erase(K);
      }
      Flight->Ready.notify_all();
      throw;
    }
    {
      std::lock_guard<std::mutex> G(Lock);
      if (R->Outcome.isOk()) {
        insertLocked(K, R);
        if (FromDisk) {
          ++Counts.DiskHits;
          if (Stats::enabled())
            Stats::get().add("cache.hit_disk");
        }
      } else {
        // A deadline-exceeded / cancelled / faulted compile must never
        // poison the cache (its kernel is the scalar unwind stub), and
        // its waiters retry rather than inherit this request's fate.
        ++Counts.LeaderFailed;
        if (Stats::enabled())
          Stats::get().add("cache.leader_failed");
        Flight->Err = R->Outcome;
        Flight->Failed = true;
      }
      Flight->Result = R;
      Flight->Done = true;
      Pending.erase(K);
    }
    Flight->Ready.notify_all();
    if (FromDisk)
      return serveCached(*R, Name, "cache_hit", "on-disk kernel store");
    // Persist fresh successful compiles so a restarted service (or a
    // second process sharing AKG_CACHE_DIR) skips this compile forever.
    if (R->Outcome.isOk())
      if (DiskKernelStore *DS = DiskKernelStore::global())
        DS->store(K, *R);
    return *R;
  }
}

KernelCacheStats KernelCache::stats() const {
  std::lock_guard<std::mutex> G(Lock);
  return Counts;
}

size_t KernelCache::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Map.size();
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> G(Lock);
  Lru.clear();
  Map.clear();
  Counts = KernelCacheStats();
}

KernelCache &KernelCache::global() {
  static KernelCache C;
  return C;
}

CompileResult compileWithAkgCached(const Module &M, const AkgOptions &Opts,
                                   const std::string &Name) {
  return KernelCache::global().compileOrGet(M, Opts, Name);
}

} // namespace akg
