//===- akg/KernelCache.h - Content-addressed kernel cache -------*- C++ -*-===//
//
// A process-wide cache of CompileResults keyed by *what* is compiled,
// not by the module object or its names: the key is a canonical
// structural fingerprint of the prepared ir::Module (tensors and
// iteration variables alpha-renamed to their positions) combined with a
// fingerprint of every compilation knob that can change the emitted
// kernel (AkgOptions, including the machine model and the resolved
// fault-injection stage). Two structurally identical subgraphs produced
// by different networks - or the same subgraph requested hundreds of
// times per training step by the graph engine - therefore compile once.
//
// The cache is safe for concurrent use by the compile service. Lookups
// that race with an in-flight compile of the same key coalesce onto the
// first compile (single-flight) instead of duplicating the work. Cached
// results are immutable by contract; a hit returns a copy whose
// instruction list is shared with the cached entry.
//
// When AKG_CACHE_DIR is set, the cache is tiered: memory -> on-disk
// content-addressed store (akg/KernelStore.h) -> compile. A memory miss
// consults the disk store before compiling (inside the single-flight
// leader, so coalesced waiters share one disk load too), and successful
// compiles are persisted for future processes.
//
// Hit/miss/eviction counters are surfaced through Stats
// ("kernel_cache.*", printed under AKG_STATS=1) and through stats().
// The warm path additionally splits where a request was served from:
// "cache.hit_memory" / "cache.hit_disk" / "cache.hit_coalesced".
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_KERNELCACHE_H
#define AKG_AKG_KERNELCACHE_H

#include "akg/Compiler.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace akg {

/// Canonical structural fingerprint of a module: stable under renaming
/// of tensors, compute ops and iteration variables, sensitive to
/// structure (op graph, expression trees, shapes, extents, dtypes,
/// reduction kinds, intrinsic names).
uint64_t fingerprintModule(const ir::Module &M);

/// Fingerprint of a machine model (every capacity/cost parameter).
uint64_t fingerprintMachine(const sim::MachineSpec &S);

/// Fingerprint of every option that can change the emitted kernel:
/// scheduler knobs, codegen knobs + machine model, sync strategy, manual
/// tiles, budgets, and the fault-injection stage as resolved against the
/// AKG_FAIL_STAGE environment override.
uint64_t fingerprintOptions(const AkgOptions &O);

/// Fingerprint of the module's tensor names (inputs + op outputs in
/// creation order). CCE kernels address global tensors *by name*, so a
/// cached kernel is only bindable by a module with the same names: the
/// cache key qualifies the alpha-renamed structural fingerprint with
/// this binding fingerprint. Structurally identical subgraphs from the
/// same builders (the graph-engine case) share names and still dedupe.
uint64_t bindingFingerprint(const ir::Module &M);

/// The content address of one compile.
struct CacheKey {
  uint64_t ModuleFp = 0;
  uint64_t OptionsFp = 0;
  uint64_t BindingFp = 0;
  bool operator==(const CacheKey &O) const {
    return ModuleFp == O.ModuleFp && OptionsFp == O.OptionsFp &&
           BindingFp == O.BindingFp;
  }
};

CacheKey makeCacheKey(const ir::Module &M, const AkgOptions &O);

/// Bucketed key of a dynamic-shape skeleton (DESIGN.md 4k): the ordinary
/// content address of the skeleton module salted with \p BucketKey (the
/// bucket-scheme bounds + per-symbol bucket ids from dynshape::plan), so
/// bucketed entries never alias plain concrete compiles at the same
/// shapes or entries produced under a different AKG_SHAPE_BUCKETS.
CacheKey makeBucketedCacheKey(const ir::Module &Skeleton,
                              const AkgOptions &O,
                              const std::string &BucketKey);

/// Hash for CacheKey-keyed maps (the cache itself, the quarantine).
struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return size_t((K.ModuleFp * 0x9e3779b97f4a7c15ull ^ K.OptionsFp) *
                      0xbf58476d1ce4e5b9ull ^
                  K.BindingFp);
  }
};

struct KernelCacheStats {
  int64_t Hits = 0;      // served from a completed in-memory entry
  int64_t Coalesced = 0; // waited on another thread's in-flight compile
  int64_t Misses = 0;    // not in memory: went to the disk tier / compile
  int64_t DiskHits = 0;  // memory miss served by the on-disk store
  int64_t Evictions = 0; // LRU entries dropped at capacity
  /// Single-flight leaders whose compile failed or was cancelled: their
  /// result is not cached and coalesced waiters retried under their own
  /// deadlines instead of inheriting the failure ("cache.leader_failed").
  int64_t LeaderFailed = 0;
  /// Dynamic-shape requests served through a bucket skeleton (concrete
  /// extents late-bound onto a shared cached kernel, "dynshape.bind").
  int64_t DynBinds = 0;
  /// Dynamic-shape requests that fell back to per-shape compilation
  /// (unsupported structure, out-of-range extent, shape-dependent
  /// dependence structure, or a failed skeleton compile).
  int64_t DynFallbacks = 0;

  double hitRate() const {
    int64_t Total = Hits + Coalesced + Misses;
    return Total ? double(Hits + Coalesced + DiskHits) / double(Total) : 0.0;
  }
};

class KernelCache {
public:
  static constexpr size_t kDefaultMaxEntries = 1024;

  explicit KernelCache(size_t MaxEntries = kDefaultMaxEntries);

  KernelCache(const KernelCache &) = delete;
  KernelCache &operator=(const KernelCache &) = delete;

  /// The compile function a cache miss runs; injectable for tests and
  /// the service's chaos layer. Defaults to compileWithAkg.
  using CompileFn = std::function<CompileResult(
      const ir::Module &, const AkgOptions &, const std::string &)>;

  /// The cache-through compile: returns the cached result when the
  /// content address matches, otherwise compiles with compileWithAkg and
  /// caches. The returned result carries \p Name as its kernel name
  /// regardless of which name the cached compile ran under.
  ///
  /// Failure semantics (DESIGN.md 4h): a result with a non-ok Outcome is
  /// returned to the requester but never inserted into the cache, and a
  /// single-flight leader that fails or is cancelled wakes its coalesced
  /// waiters immediately - they retry under their own deadline/token
  /// (possibly becoming the next leader) instead of inheriting the
  /// leader's failure or timing out. A waiter whose own cancel context
  /// trips while coalesced throws CancelledError.
  ///
  /// Dynamic shapes (DESIGN.md 4k): when \p M carries shape-symbol marks
  /// and AKG_DYNSHAPE is not 0, the request is canonicalized to its
  /// bucket skeleton and served under the bucketed key; the returned
  /// result then carries a ShapeBinding (DynShape) for late-bound
  /// execution. Every admission failure falls back to the plain
  /// per-shape path below, so correctness never depends on bucketing.
  CompileResult compileOrGet(const ir::Module &M, const AkgOptions &Opts,
                             const std::string &Name);
  CompileResult compileOrGet(const ir::Module &M, const AkgOptions &Opts,
                             const std::string &Name, const CompileFn &Fn);

  /// Raw lookup; null on miss. Counts a hit when found.
  std::shared_ptr<const CompileResult> lookup(const CacheKey &K);

  /// Inserts (or replaces) an entry, evicting the least recently used
  /// entry when over capacity.
  void insert(const CacheKey &K, CompileResult R);

  KernelCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return MaxEntries; }
  void clear();

  /// The process-wide cache used by compileWithAkgCached and the
  /// compile service by default.
  static KernelCache &global();

private:
  using KeyHash = CacheKeyHash;
  struct Entry {
    CacheKey Key;
    std::shared_ptr<const CompileResult> Result;
  };
  struct InFlight {
    std::shared_ptr<const CompileResult> Result; // set when Done
    bool Done = false;
    /// Leader failed or was cancelled: Result is not cache-worthy (null
    /// on an escaped exception); waiters consult Err and retry.
    bool Failed = false;
    Status Err;
    std::condition_variable Ready;
  };

  std::shared_ptr<const CompileResult> lookupLocked(const CacheKey &K);
  void insertLocked(const CacheKey &K,
                    std::shared_ptr<const CompileResult> R);
  /// The single-flight cache-through compile under an explicit key (the
  /// plain content address, or the bucketed skeleton key).
  CompileResult compileOrGetKeyed(const CacheKey &K, const ir::Module &M,
                                  const AkgOptions &Opts,
                                  const std::string &Name,
                                  const CompileFn &Fn);

  size_t MaxEntries;
  mutable std::mutex Lock;
  std::list<Entry> Lru; // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> Map;
  std::unordered_map<CacheKey, std::shared_ptr<InFlight>, KeyHash> Pending;
  KernelCacheStats Counts;
};

/// compileWithAkg through the global content-addressed cache.
CompileResult compileWithAkgCached(const ir::Module &M,
                                   const AkgOptions &Opts,
                                   const std::string &Name);

} // namespace akg

#endif // AKG_AKG_KERNELCACHE_H
