//===- akg/KernelStore.cpp - On-disk content-addressed kernel store -------===//

#include "akg/KernelStore.h"

#include "support/Env.h"
#include "support/Serialize.h"
#include "support/Stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <unordered_map>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace akg {

using namespace ir;

//===----------------------------------------------------------------------===//
// CompileResult serialization
//===----------------------------------------------------------------------===//
//
// Tensors are interned by pointer identity and serialized once, at first
// occurrence: a reference is a u32 id (0 = null, 1..N = back-reference,
// N+1 = a new definition follows inline). Deserialization rebuilds the
// table in the same order, so shared tensors stay shared - the simulator
// and printKernel only consult Name/Shape/Type (TensorDecl::Source is a
// non-owning pointer into the originating Module and stays null on a
// disk-loaded kernel).

namespace {

constexpr unsigned kMaxDepth = 512; // recursion guard for hostile inputs

struct TensorWriteTable {
  std::unordered_map<const TensorDecl *, uint32_t> Ids;
};

void writeTensor(ByteWriter &W, TensorWriteTable &T, const Tensor &Ten) {
  if (!Ten) {
    W.u32(0);
    return;
  }
  auto It = T.Ids.find(Ten.get());
  if (It != T.Ids.end()) {
    W.u32(It->second);
    return;
  }
  uint32_t Id = static_cast<uint32_t>(T.Ids.size()) + 1;
  T.Ids.emplace(Ten.get(), Id);
  W.u32(Id);
  W.str(Ten->Name);
  W.u8(static_cast<uint8_t>(Ten->Type));
  W.u64(Ten->Shape.size());
  for (int64_t S : Ten->Shape)
    W.i64(S);
}

struct TensorReadTable {
  std::vector<Tensor> List;
};

Tensor readTensor(ByteReader &R, TensorReadTable &T) {
  uint32_t Id = R.u32();
  if (!R.ok() || Id == 0)
    return nullptr;
  if (Id <= T.List.size())
    return T.List[Id - 1];
  if (Id != T.List.size() + 1) { // ids are dense and in definition order
    R.fits(~0ull, 1);            // poison
    return nullptr;
  }
  auto Ten = std::make_shared<TensorDecl>();
  Ten->Name = R.str();
  Ten->Type = R.enumOf<DType>(static_cast<uint8_t>(DType::Bool));
  uint64_t N = R.u64();
  if (!R.fits(N, 8))
    return nullptr;
  Ten->Shape.reserve(N);
  for (uint64_t I = 0; I < N; ++I)
    Ten->Shape.push_back(R.i64());
  T.List.push_back(Ten);
  return Ten;
}

void writeExpr(ByteWriter &W, TensorWriteTable &T, const Expr &E) {
  if (!E) {
    W.b(false);
    return;
  }
  W.b(true);
  W.u8(static_cast<uint8_t>(E->Kind));
  W.u8(static_cast<uint8_t>(E->Type));
  W.i64(E->IntVal);
  W.f64(E->FloatVal);
  W.str(E->Name);
  writeTensor(W, T, E->Ref);
  W.u8(static_cast<uint8_t>(E->RKind));
  W.u64(E->ReduceAxes.size());
  for (const IterVar &V : E->ReduceAxes) {
    W.str(V.Name);
    W.i64(V.Extent);
    W.b(V.IsReduce);
  }
  W.u64(E->Operands.size());
  for (const Expr &Op : E->Operands)
    writeExpr(W, T, Op);
}

Expr readExpr(ByteReader &R, TensorReadTable &T, unsigned Depth) {
  if (Depth > kMaxDepth) {
    R.fits(~0ull, 1); // poison
    return nullptr;
  }
  if (!R.b() || !R.ok())
    return nullptr;
  auto N = std::make_shared<ExprNode>();
  N->Kind = R.enumOf<ExprKind>(static_cast<uint8_t>(ExprKind::Reduce));
  N->Type = R.enumOf<DType>(static_cast<uint8_t>(DType::Bool));
  N->IntVal = R.i64();
  N->FloatVal = R.f64();
  N->Name = R.str();
  N->Ref = readTensor(R, T);
  N->RKind = R.enumOf<ReduceKind>(static_cast<uint8_t>(ReduceKind::Min));
  uint64_t NAxes = R.u64();
  if (!R.fits(NAxes, 17))
    return nullptr;
  for (uint64_t I = 0; I < NAxes; ++I) {
    IterVar V;
    V.Name = R.str();
    V.Extent = R.i64();
    V.IsReduce = R.b();
    N->ReduceAxes.push_back(std::move(V));
  }
  uint64_t NOps = R.u64();
  if (!R.fits(NOps, 1))
    return nullptr;
  for (uint64_t I = 0; I < NOps; ++I)
    N->Operands.push_back(readExpr(R, T, Depth + 1));
  return N;
}

void writeStmt(ByteWriter &W, TensorWriteTable &T, const Stmt &S) {
  if (!S) {
    W.b(false);
    return;
  }
  W.b(true);
  W.u8(static_cast<uint8_t>(S->Kind));
  W.str(S->Var);
  writeExpr(W, T, S->Min);
  writeExpr(W, T, S->Extent);
  W.u8(static_cast<uint8_t>(S->FType));
  writeTensor(W, T, S->Target);
  W.u64(S->Indices.size());
  for (const Expr &I : S->Indices)
    writeExpr(W, T, I);
  writeExpr(W, T, S->Value);
  writeExpr(W, T, S->Cond);
  W.str(S->Key);
  W.str(S->StrValue);
  writeTensor(W, T, S->Buffer);
  W.str(S->MemScope);
  W.u64(S->Children.size());
  for (const Stmt &C : S->Children)
    writeStmt(W, T, C);
}

Stmt readStmt(ByteReader &R, TensorReadTable &T, unsigned Depth) {
  if (Depth > kMaxDepth) {
    R.fits(~0ull, 1); // poison
    return nullptr;
  }
  if (!R.b() || !R.ok())
    return nullptr;
  auto N = std::make_shared<StmtNode>();
  N->Kind = R.enumOf<StmtKind>(static_cast<uint8_t>(StmtKind::Evaluate));
  N->Var = R.str();
  N->Min = readExpr(R, T, Depth + 1);
  N->Extent = readExpr(R, T, Depth + 1);
  N->FType = R.enumOf<ForType>(static_cast<uint8_t>(ForType::Unrolled));
  N->Target = readTensor(R, T);
  uint64_t NIdx = R.u64();
  if (!R.fits(NIdx, 1))
    return nullptr;
  for (uint64_t I = 0; I < NIdx; ++I)
    N->Indices.push_back(readExpr(R, T, Depth + 1));
  N->Value = readExpr(R, T, Depth + 1);
  N->Cond = readExpr(R, T, Depth + 1);
  N->Key = R.str();
  N->StrValue = R.str();
  N->Buffer = readTensor(R, T);
  N->MemScope = R.str();
  uint64_t NKids = R.u64();
  if (!R.fits(NKids, 1))
    return nullptr;
  for (uint64_t I = 0; I < NKids; ++I)
    N->Children.push_back(readStmt(R, T, Depth + 1));
  return N;
}

void writeInstr(ByteWriter &W, TensorWriteTable &T, const cce::InstrPtr &I) {
  if (!I) {
    W.b(false);
    return;
  }
  W.b(true);
  W.u8(static_cast<uint8_t>(I->Kind));
  W.u8(static_cast<uint8_t>(I->Pipe));
  W.str(I->Label);
  W.i64(I->Bytes);
  W.i64(I->Bursts);
  W.i64(I->Elems);
  W.i64(I->FractalOps);
  W.b(I->Fp32);
  writeStmt(W, T, I->Sem);
  W.u64(I->ReadBufs.size());
  for (const std::string &S : I->ReadBufs)
    W.str(S);
  W.u64(I->WriteBufs.size());
  for (const std::string &S : I->WriteBufs)
    W.str(S);
  W.str(I->Var);
  writeExpr(W, T, I->Min);
  writeExpr(W, T, I->Extent);
  W.u64(I->Body.size());
  for (const cce::InstrPtr &C : I->Body)
    writeInstr(W, T, C);
  W.b(I->DoubleBuffered);
  W.u32(I->EventId);
  W.u8(static_cast<uint8_t>(I->WaitSrc));
  W.u32(I->Depth);
  W.str(I->MapDim);
}

cce::InstrPtr readInstr(ByteReader &R, TensorReadTable &T, unsigned Depth) {
  if (Depth > kMaxDepth) {
    R.fits(~0ull, 1); // poison
    return nullptr;
  }
  if (!R.b() || !R.ok())
    return nullptr;
  auto I = std::make_shared<cce::Instr>();
  I->Kind = R.enumOf<cce::InstrKind>(
      static_cast<uint8_t>(cce::InstrKind::Barrier));
  I->Pipe = R.enumOf<sim::Pipe>(static_cast<uint8_t>(sim::Pipe::MTE3));
  I->Label = R.str();
  I->Bytes = R.i64();
  I->Bursts = R.i64();
  I->Elems = R.i64();
  I->FractalOps = R.i64();
  I->Fp32 = R.b();
  I->Sem = readStmt(R, T, Depth + 1);
  uint64_t N = R.u64();
  if (!R.fits(N, 8))
    return nullptr;
  for (uint64_t J = 0; J < N; ++J)
    I->ReadBufs.push_back(R.str());
  N = R.u64();
  if (!R.fits(N, 8))
    return nullptr;
  for (uint64_t J = 0; J < N; ++J)
    I->WriteBufs.push_back(R.str());
  I->Var = R.str();
  I->Min = readExpr(R, T, Depth + 1);
  I->Extent = readExpr(R, T, Depth + 1);
  N = R.u64();
  if (!R.fits(N, 1))
    return nullptr;
  for (uint64_t J = 0; J < N; ++J)
    I->Body.push_back(readInstr(R, T, Depth + 1));
  I->DoubleBuffered = R.b();
  I->EventId = R.u32();
  I->WaitSrc = R.enumOf<sim::Pipe>(static_cast<uint8_t>(sim::Pipe::MTE3));
  I->Depth = R.u32();
  I->MapDim = R.str();
  return I;
}

void writeTraceEvent(ByteWriter &W, const TraceEvent &E) {
  W.str(E.Pass);
  W.u8(static_cast<uint8_t>(E.Id));
  W.u32(E.Attempt);
  W.u32(E.Retry);
  W.f64(E.WallSeconds);
  W.u64(E.Counters.size());
  for (const auto &[K, V] : E.Counters) {
    W.str(K);
    W.i64(V);
  }
  W.u64(E.Degradations.size());
  for (const DegradationStep &D : E.Degradations) {
    W.u8(static_cast<uint8_t>(D.Where));
    W.str(D.Reason);
    W.str(D.Action);
  }
  W.str(E.Note);
  W.str(E.Snapshot);
}

bool readTraceEvent(ByteReader &R, TraceEvent &E) {
  E.Pass = R.str();
  E.Id = R.enumOf<Stage>(static_cast<uint8_t>(Stage::Sync));
  E.Attempt = R.u32();
  E.Retry = R.u32();
  E.WallSeconds = R.f64();
  uint64_t N = R.u64();
  if (!R.fits(N, 16))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    std::string K = R.str();
    int64_t V = R.i64();
    E.Counters.emplace_back(std::move(K), V);
  }
  N = R.u64();
  if (!R.fits(N, 17))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    DegradationStep D;
    D.Where = R.enumOf<Stage>(static_cast<uint8_t>(Stage::Sync));
    D.Reason = R.str();
    D.Action = R.str();
    E.Degradations.push_back(std::move(D));
  }
  E.Note = R.str();
  E.Snapshot = R.str();
  return R.ok();
}

} // namespace

std::string serializeCompileResult(const CompileResult &R) {
  ByteWriter W;
  TensorWriteTable T;

  const cce::Kernel &K = R.Kernel;
  W.str(K.Name);
  W.b(K.HandPrefetched);
  W.u8(static_cast<uint8_t>(K.Target));
  W.i64(K.BlockThreads);
  W.i64(K.GridBlocks);
  W.u64(K.GmTensors.size());
  for (const Tensor &G : K.GmTensors)
    writeTensor(W, T, G);
  W.u64(K.Buffers.size());
  for (const cce::BufferAlloc &B : K.Buffers) {
    W.str(B.Name);
    W.u8(static_cast<uint8_t>(B.Location));
    writeTensor(W, T, B.Decl);
    W.b(B.DoubleBuffered);
  }
  W.u64(K.Body.size());
  for (const cce::InstrPtr &I : K.Body)
    writeInstr(W, T, I);

  W.str(R.ScheduleTreeDump);
  W.str(R.TilingPolicyText);
  W.u64(R.TileSizes.size());
  for (int64_t S : R.TileSizes)
    W.i64(S);
  W.u32(R.FusedProducers);
  W.b(R.UsedSchedulerFallback);
  W.u32(R.Sync.FlagsInserted);
  W.u32(R.Sync.BarriersInserted);
  W.u64(R.Degradation.Steps.size());
  for (const DegradationStep &D : R.Degradation.Steps) {
    W.u8(static_cast<uint8_t>(D.Where));
    W.str(D.Reason);
    W.str(D.Action);
  }
  // Trace: kept so a disk-served request still dumps the original
  // compile's events under AKG_TRACE, exactly like a memory hit.
  W.str(R.Trace.Kernel);
  W.str(R.Trace.Target);
  W.f64(R.Trace.TotalSeconds);
  W.str(R.Trace.Outcome);
  W.u64(R.Trace.Events.size());
  for (const TraceEvent &E : R.Trace.Events)
    writeTraceEvent(W, E);
  // Outcome: only ok results are persisted, but serialize faithfully.
  W.u8(static_cast<uint8_t>(R.Outcome.code()));
  W.str(R.Outcome.message());
  return W.take();
}

bool deserializeCompileResult(const std::string &Bytes, CompileResult &Out) {
  ByteReader R(Bytes);
  TensorReadTable T;

  cce::Kernel &K = Out.Kernel;
  K.Name = R.str();
  K.HandPrefetched = R.b();
  K.Target = R.enumOf<sim::TargetKind>(
      static_cast<uint8_t>(sim::TargetKind::Simt));
  K.BlockThreads = R.i64();
  K.GridBlocks = R.i64();
  uint64_t N = R.u64();
  if (!R.fits(N, 4))
    return false;
  for (uint64_t I = 0; I < N; ++I)
    K.GmTensors.push_back(readTensor(R, T));
  N = R.u64();
  if (!R.fits(N, 10))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    cce::BufferAlloc B;
    B.Name = R.str();
    B.Location = R.enumOf<sim::Buffer>(static_cast<uint8_t>(sim::Buffer::Reg));
    B.Decl = readTensor(R, T);
    B.DoubleBuffered = R.b();
    K.Buffers.push_back(std::move(B));
  }
  N = R.u64();
  if (!R.fits(N, 1))
    return false;
  for (uint64_t I = 0; I < N; ++I)
    K.Body.push_back(readInstr(R, T, 0));

  Out.ScheduleTreeDump = R.str();
  Out.TilingPolicyText = R.str();
  N = R.u64();
  if (!R.fits(N, 8))
    return false;
  for (uint64_t I = 0; I < N; ++I)
    Out.TileSizes.push_back(R.i64());
  Out.FusedProducers = R.u32();
  Out.UsedSchedulerFallback = R.b();
  Out.Sync.FlagsInserted = R.u32();
  Out.Sync.BarriersInserted = R.u32();
  N = R.u64();
  if (!R.fits(N, 17))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    DegradationStep D;
    D.Where = R.enumOf<Stage>(static_cast<uint8_t>(Stage::Sync));
    D.Reason = R.str();
    D.Action = R.str();
    Out.Degradation.Steps.push_back(std::move(D));
  }
  Out.Trace.Kernel = R.str();
  Out.Trace.Target = R.str();
  Out.Trace.TotalSeconds = R.f64();
  Out.Trace.Outcome = R.str();
  N = R.u64();
  if (!R.fits(N, 8))
    return false;
  for (uint64_t I = 0; I < N; ++I) {
    TraceEvent E;
    if (!readTraceEvent(R, E))
      return false;
    Out.Trace.Events.push_back(std::move(E));
  }
  ErrCode Code =
      R.enumOf<ErrCode>(static_cast<uint8_t>(ErrCode::Unavailable));
  std::string Msg = R.str();
  Out.Outcome = Code == ErrCode::Ok ? Status::ok()
                                    : Status::error(Code, std::move(Msg));
  // Mod stays null: cache consumers (service, benches, simulator) carry
  // their own module; Pipeline only sets it on a real compile.
  return R.ok() && R.atEnd();
}

//===----------------------------------------------------------------------===//
// Entry file format
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t kEntryMagic = 0x4B474B41; // "AKGK"

uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return In.good() || In.eof();
}

void countStat(const char *Name) {
  if (Stats::enabled())
    Stats::get().add(Name);
}

bool makeDirs(const std::string &Path) {
  std::string Cur;
  for (size_t I = 0; I <= Path.size(); ++I) {
    if (I == Path.size() || Path[I] == '/') {
      if (!Cur.empty() && mkdir(Cur.c_str(), 0755) != 0 && errno != EEXIST)
        return false;
      if (I < Path.size())
        Cur.push_back('/');
      continue;
    }
    Cur.push_back(Path[I]);
  }
  struct stat St;
  return stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

} // namespace

//===----------------------------------------------------------------------===//
// Mmap'd index
//===----------------------------------------------------------------------===//

struct DiskKernelStore::Index {
  // Advisory accelerator only: entry files are authoritative. Slots are
  // updated in place through the mapping with no cross-process locking;
  // a torn write at worst perturbs an access time or a presence bit,
  // which costs a stat(2) or a slightly unfair eviction, never a wrong
  // kernel. A header mismatch (version bump, truncation, foreign bytes)
  // rebuilds the whole file from a directory scan.
  static constexpr uint64_t kIndexMagic = 0x31494B4741ull; // "AGKI1"
  static constexpr uint64_t kSlots = 4096;
  static constexpr unsigned kProbeLimit = 64;

  struct Header {
    uint64_t Magic;
    uint64_t Version;
    uint64_t Slots;
  };
  struct Slot {
    uint64_t Key[3];
    uint64_t SizeBytes;
    uint64_t Atime; // seconds since epoch, logical LRU clock
    uint64_t Used;
  };
  static constexpr size_t kFileBytes =
      sizeof(Header) + kSlots * sizeof(Slot);

  int Fd = -1;
  void *Map = MAP_FAILED;

  Header *hdr() { return static_cast<Header *>(Map); }
  Slot *slots() {
    return reinterpret_cast<Slot *>(static_cast<char *>(Map) +
                                    sizeof(Header));
  }

  bool openAt(const std::string &Path) {
    Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
    if (Fd < 0)
      return false;
    struct stat St;
    bool Fresh = fstat(Fd, &St) != 0 ||
                 static_cast<size_t>(St.st_size) != kFileBytes;
    if (Fresh && ftruncate(Fd, static_cast<off_t>(kFileBytes)) != 0) {
      close();
      return false;
    }
    Map = mmap(nullptr, kFileBytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd,
               0);
    if (Map == MAP_FAILED) {
      close();
      return false;
    }
    if (Fresh || hdr()->Magic != kIndexMagic ||
        hdr()->Version != kKernelStoreVersion || hdr()->Slots != kSlots)
      return false; // mapped but needs (re)initialization + rescan
    return true;
  }

  void initialize() {
    std::memset(Map, 0, kFileBytes);
    hdr()->Magic = kIndexMagic;
    hdr()->Version = kKernelStoreVersion;
    hdr()->Slots = kSlots;
  }

  bool valid() const { return Map != MAP_FAILED; }

  Slot *find(const CacheKey &K) {
    if (!valid())
      return nullptr;
    size_t H = CacheKeyHash()(K) % kSlots;
    for (unsigned P = 0; P < kProbeLimit; ++P) {
      Slot &S = slots()[(H + P) % kSlots];
      if (S.Used && S.Key[0] == K.ModuleFp && S.Key[1] == K.OptionsFp &&
          S.Key[2] == K.BindingFp)
        return &S;
    }
    return nullptr;
  }

  void touch(const CacheKey &K, uint64_t SizeBytes) {
    if (!valid())
      return;
    Slot *S = find(K);
    if (!S) {
      size_t H = CacheKeyHash()(K) % kSlots;
      for (unsigned P = 0; P < kProbeLimit && !S; ++P) {
        Slot &Cand = slots()[(H + P) % kSlots];
        if (!Cand.Used)
          S = &Cand;
      }
      if (!S)
        return; // probe window full; the entry lives without an index row
      S->Key[0] = K.ModuleFp;
      S->Key[1] = K.OptionsFp;
      S->Key[2] = K.BindingFp;
    }
    if (SizeBytes)
      S->SizeBytes = SizeBytes;
    S->Atime = static_cast<uint64_t>(time(nullptr));
    S->Used = 1;
  }

  void erase(const CacheKey &K) {
    if (Slot *S = find(K))
      std::memset(S, 0, sizeof *S);
  }

  void close() {
    if (Map != MAP_FAILED)
      munmap(Map, kFileBytes);
    Map = MAP_FAILED;
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }
};

//===----------------------------------------------------------------------===//
// DiskKernelStore
//===----------------------------------------------------------------------===//

std::string DiskKernelStore::entryFileName(const CacheKey &K) {
  char Buf[3 * 16 + 8];
  snprintf(Buf, sizeof Buf, "%016" PRIx64 "-%016" PRIx64 "-%016" PRIx64
                            ".akgk",
           K.ModuleFp, K.OptionsFp, K.BindingFp);
  return Buf;
}

namespace {

/// Parses "<16 hex>-<16 hex>-<16 hex>.akgk"; used by the index rebuild
/// scan. Returns false for temp files and foreign names.
bool parseEntryFileName(const std::string &Name, CacheKey &K) {
  if (Name.size() != 3 * 16 + 2 + 5 || Name.substr(3 * 16 + 2) != ".akgk")
    return false;
  if (Name[16] != '-' || Name[33] != '-')
    return false;
  auto Hex = [&](size_t Off, uint64_t &V) {
    V = 0;
    for (size_t I = 0; I < 16; ++I) {
      char C = Name[Off + I];
      int D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else
        return false;
      V = (V << 4) | static_cast<uint64_t>(D);
    }
    return true;
  };
  return Hex(0, K.ModuleFp) && Hex(17, K.OptionsFp) && Hex(34, K.BindingFp);
}

} // namespace

DiskKernelStore::DiskKernelStore(std::string D, int64_t Max)
    : Dir(std::move(D)), MaxBytes(Max), Idx(std::make_unique<Index>()) {
  Usable = makeDirs(Dir);
  if (!Usable)
    return;
  if (!Idx->openAt(Dir + "/index.akgi") && Idx->valid()) {
    // Fresh or invalid index: reinitialize and rebuild from the entry
    // files actually present (the authoritative state).
    Idx->initialize();
    DIR *DH = opendir(Dir.c_str());
    if (DH) {
      while (struct dirent *E = readdir(DH)) {
        CacheKey K;
        if (!parseEntryFileName(E->d_name, K))
          continue;
        struct stat St;
        std::string Path = Dir + "/" + E->d_name;
        if (stat(Path.c_str(), &St) == 0)
          Idx->touch(K, static_cast<uint64_t>(St.st_size));
      }
      closedir(DH);
    }
  }
}

DiskKernelStore::~DiskKernelStore() { Idx->close(); }

std::string DiskKernelStore::entryPath(const CacheKey &K) const {
  return Dir + "/" + entryFileName(K);
}

std::shared_ptr<const CompileResult>
DiskKernelStore::load(const CacheKey &K) {
  if (!Usable)
    return nullptr;
  std::lock_guard<std::mutex> G(Lock);
  std::string Raw;
  if (!readWholeFile(entryPath(K), Raw)) {
    ++Counts.DiskMisses;
    countStat("cache.disk_miss");
    return nullptr;
  }
  auto Corrupt = [&]() -> std::shared_ptr<const CompileResult> {
    // Bad entry => miss, never a crash. Leave the file for post-mortems;
    // a store() for this key overwrites it atomically.
    ++Counts.DiskMisses;
    ++Counts.Corrupt;
    countStat("cache.disk_miss");
    countStat("cache.disk_corrupt");
    return nullptr;
  };
  ByteReader R(Raw);
  if (R.u32() != kEntryMagic)
    return Corrupt();
  if (R.u64() != kKernelStoreVersion)
    return Corrupt(); // stale format/codegen salt: recompile
  if (R.u64() != K.ModuleFp || R.u64() != K.OptionsFp ||
      R.u64() != K.BindingFp)
    return Corrupt(); // renamed/foreign file
  uint64_t PayloadLen = R.u64();
  uint64_t Checksum = R.u64();
  if (!R.ok() || PayloadLen != R.remaining())
    return Corrupt(); // truncated or padded
  std::string Payload = Raw.substr(Raw.size() - PayloadLen);
  if (fnv1a(Payload) != Checksum)
    return Corrupt();
  auto Result = std::make_shared<CompileResult>();
  if (!deserializeCompileResult(Payload, *Result))
    return Corrupt();
  ++Counts.DiskHits;
  countStat("cache.disk_hit");
  Idx->touch(K, Raw.size());
  return Result;
}

void DiskKernelStore::store(const CacheKey &K, const CompileResult &R) {
  if (!Usable || !R.Outcome.isOk())
    return;
  std::lock_guard<std::mutex> G(Lock);
  std::string Payload = serializeCompileResult(R);
  ByteWriter W;
  W.u32(kEntryMagic);
  W.u64(kKernelStoreVersion);
  W.u64(K.ModuleFp);
  W.u64(K.OptionsFp);
  W.u64(K.BindingFp);
  W.u64(Payload.size());
  W.u64(fnv1a(Payload));
  std::string Bytes = W.take() + Payload;

  // Atomic publish: write the whole entry to a private temp file, then
  // rename(2) it over the final name. Readers in any process see either
  // the old complete entry or the new complete entry, never a torn one.
  std::string Tmp = Dir + "/.tmp-" + std::to_string(getpid()) + "-" +
                    entryFileName(K) + "~";
  {
    std::ofstream O(Tmp, std::ios::binary | std::ios::trunc);
    if (!O)
      return;
    O.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!O.good()) {
      O.close();
      unlink(Tmp.c_str());
      return;
    }
  }
  if (rename(Tmp.c_str(), entryPath(K).c_str()) != 0) {
    unlink(Tmp.c_str());
    return;
  }
  ++Counts.Stores;
  countStat("cache.disk_store");
  Idx->touch(K, Bytes.size());
  if (MaxBytes > 0)
    evictOverCap();
}

int64_t DiskKernelStore::sizeBytes() const {
  int64_t Total = 0;
  DIR *DH = opendir(Dir.c_str());
  if (!DH)
    return 0;
  while (struct dirent *E = readdir(DH)) {
    CacheKey K;
    if (!parseEntryFileName(E->d_name, K))
      continue;
    struct stat St;
    if (stat((Dir + "/" + E->d_name).c_str(), &St) == 0)
      Total += St.st_size;
  }
  closedir(DH);
  return Total;
}

void DiskKernelStore::evictOverCap() {
  struct Candidate {
    CacheKey Key;
    int64_t Size;
    uint64_t Atime;
  };
  std::vector<Candidate> All;
  int64_t Total = 0;
  DIR *DH = opendir(Dir.c_str());
  if (!DH)
    return;
  while (struct dirent *E = readdir(DH)) {
    Candidate C;
    if (!parseEntryFileName(E->d_name, C.Key))
      continue;
    struct stat St;
    if (stat((Dir + "/" + E->d_name).c_str(), &St) != 0)
      continue;
    C.Size = St.st_size;
    // LRU clock: the index access time when a row exists (loads refresh
    // it), else the file mtime (the write time).
    C.Atime = static_cast<uint64_t>(St.st_mtime);
    if (Index::Slot *S = Idx->find(C.Key))
      if (S->Atime)
        C.Atime = std::max(C.Atime, S->Atime);
    Total += C.Size;
    All.push_back(C);
  }
  closedir(DH);
  if (Total <= MaxBytes)
    return;
  std::sort(All.begin(), All.end(), [](const Candidate &A,
                                       const Candidate &B) {
    if (A.Atime != B.Atime)
      return A.Atime < B.Atime; // oldest first
    return DiskKernelStore::entryFileName(A.Key) <
           DiskKernelStore::entryFileName(B.Key); // deterministic tie-break
  });
  for (const Candidate &C : All) {
    if (Total <= MaxBytes)
      break;
    if (unlink((Dir + "/" + entryFileName(C.Key)).c_str()) != 0)
      continue;
    Total -= C.Size;
    Idx->erase(C.Key);
    ++Counts.Evictions;
    countStat("cache.disk_evict");
  }
}

KernelStoreStats DiskKernelStore::stats() const {
  std::lock_guard<std::mutex> G(Lock);
  return Counts;
}

DiskKernelStore *DiskKernelStore::global() {
  // Stores are keyed by their (dir, cap) configuration and never
  // destroyed: tests repoint AKG_CACHE_DIR at fresh directories, and a
  // result loaded through an old store may still be referenced.
  static std::mutex M;
  static auto *Stores =
      new std::unordered_map<std::string, DiskKernelStore *>();
  std::optional<std::string> Dir = env::get("AKG_CACHE_DIR");
  if (!Dir || Dir->empty())
    return nullptr;
  int64_t Max = 0;
  if (std::optional<std::string> Cap = env::get("AKG_CACHE_MAX_BYTES")) {
    char *End = nullptr;
    long long V = strtoll(Cap->c_str(), &End, 10);
    if (End && *End == '\0' && V > 0)
      Max = V;
  }
  std::string CfgKey = *Dir + "\x1f" + std::to_string(Max);
  std::lock_guard<std::mutex> G(M);
  auto It = Stores->find(CfgKey);
  if (It != Stores->end())
    return It->second;
  auto *S = new DiskKernelStore(*Dir, Max);
  (*Stores)[CfgKey] = S;
  return S;
}

} // namespace akg
