//===- akg/KernelStore.h - On-disk content-addressed kernel store -*- C++ -*-//
//
// The persistence tier under akg/KernelCache (DESIGN.md 4i): compiled
// kernels serialized to an AKG_CACHE_DIR directory, keyed by the same
// content address the in-memory cache uses (structural module x
// options/machine x tensor-name binding). A service restart - or a
// second process sharing the directory - serves its first request for a
// known key from disk instead of recompiling.
//
// Layout and invariants:
//   * one entry file per key, "<module>-<options>-<binding>.akgk",
//     written to a temp file and atomically rename(2)d into place, so
//     concurrent readers (including other processes) never observe a
//     torn entry;
//   * every entry is self-verifying: magic, format-version salt (bumped
//     when codegen or the serialization format changes, invalidating
//     every stale entry at once), an echo of the key, payload length and
//     an FNV-1a checksum. Any mismatch - truncation, corruption, a
//     foreign file - is a clean miss, never a crash;
//   * a small mmap'd index file ("index.akgi", fixed-size slots, linear
//     probing) accelerates presence checks and records logical access
//     times for LRU eviction. The index is strictly advisory: entry
//     files are the source of truth, concurrent updates may tear, and a
//     header mismatch rebuilds it from a directory scan;
//   * AKG_CACHE_MAX_BYTES caps the store; eviction drops
//     least-recently-used entries (index access time when known, file
//     mtime otherwise) until under the cap.
//
// Counters: cache.disk_hit / cache.disk_miss / cache.disk_store /
// cache.disk_corrupt / cache.disk_evict (AKG_STATS=1).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_KERNELSTORE_H
#define AKG_AKG_KERNELSTORE_H

#include "akg/KernelCache.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace akg {

/// Format-version salt baked into every entry header and the index
/// header. Bump whenever the serialized format OR the code generator
/// changes in a way that should invalidate persisted kernels.
/// v2: target layer — cache keys mix the resolved target + SIMT spec,
/// kernels carry Target/BlockThreads/GridBlocks/MapDim fields.
constexpr uint64_t kKernelStoreVersion = 2;

/// Serializes the cache-worthy parts of a CompileResult (kernel,
/// reports, trace; not Mod, which is reconstructed lazily and unused by
/// cache consumers).
std::string serializeCompileResult(const CompileResult &R);

/// Inverse of serializeCompileResult. Returns false (leaving \p Out in
/// an unspecified state) on any malformed input.
bool deserializeCompileResult(const std::string &Bytes, CompileResult &Out);

struct KernelStoreStats {
  int64_t DiskHits = 0;
  int64_t DiskMisses = 0;
  int64_t Stores = 0;
  int64_t Corrupt = 0; // bad magic/version/key/checksum/payload => miss
  int64_t Evictions = 0;
};

class DiskKernelStore {
public:
  /// Opens (creating if needed) the store at \p Dir. MaxBytes <= 0
  /// means unbounded. The constructor never throws: an unusable
  /// directory just produces a store whose loads miss and whose stores
  /// are dropped.
  explicit DiskKernelStore(std::string Dir, int64_t MaxBytes = 0);
  ~DiskKernelStore();

  DiskKernelStore(const DiskKernelStore &) = delete;
  DiskKernelStore &operator=(const DiskKernelStore &) = delete;

  /// Loads the entry for \p K; null on miss (including every corruption
  /// mode). A hit refreshes the key's access time in the index.
  std::shared_ptr<const CompileResult> load(const CacheKey &K);

  /// Persists \p R under \p K (atomic temp-file + rename), then evicts
  /// LRU entries while the store exceeds the size cap. Results with a
  /// non-ok Outcome are never persisted.
  void store(const CacheKey &K, const CompileResult &R);

  /// Sum of entry-file sizes on disk (directory scan).
  int64_t sizeBytes() const;
  const std::string &dir() const { return Dir; }
  KernelStoreStats stats() const;

  /// The process-wide store configured by AKG_CACHE_DIR /
  /// AKG_CACHE_MAX_BYTES; null when AKG_CACHE_DIR is unset. Re-reads the
  /// environment when it changes (tests point it at fresh directories).
  static DiskKernelStore *global();

  /// Entry file name for a key: "<module>-<options>-<binding>.akgk".
  static std::string entryFileName(const CacheKey &K);

private:
  struct Index;

  std::string entryPath(const CacheKey &K) const;
  void evictOverCap();

  std::string Dir;
  int64_t MaxBytes = 0;
  bool Usable = false;
  mutable std::mutex Lock; // serializes this process; cross-process
                           // safety comes from atomic renames
  std::unique_ptr<Index> Idx;
  KernelStoreStats Counts;
};

} // namespace akg

#endif // AKG_AKG_KERNELSTORE_H
