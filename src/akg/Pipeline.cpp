//===- akg/Pipeline.cpp - The staged compile pass pipeline ----------------===//

#include "akg/Pipeline.h"

#include "ir/Passes.h"
#include "schedule/AstGen.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "target/TargetBackend.h"
#include "transforms/Conv.h"
#include "transforms/Fusion.h"
#include "transforms/IntraTile.h"
#include "transforms/Tiling.h"

#include <chrono>

namespace akg {

using namespace ir;
using namespace sched;
using namespace transforms;

//===----------------------------------------------------------------------===//
// Pipeline mechanics
//===----------------------------------------------------------------------===//

Pipeline &Pipeline::add(Pass P) {
  Passes.push_back(std::move(P));
  return *this;
}

const Pass *Pipeline::find(const std::string &Name) const {
  for (const Pass &P : Passes)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

void Pipeline::applyFaultInjection(CompileState &S) const {
  if (S.Fail == Stage::None)
    return;
  size_t DegBefore = S.Res.Degradation.Steps.size();
  for (const Pass &P : Passes)
    if (P.Id == S.Fail && P.OnInjectedFault)
      P.OnInjectedFault(S);
  TraceEvent E;
  E.Pass = "fault_injection";
  E.Id = S.Fail;
  E.Note = std::string("stage ") + stageName(S.Fail) +
           " forced onto its degradation path";
  for (size_t I = DegBefore, N = S.Res.Degradation.Steps.size(); I < N; ++I)
    E.Degradations.push_back(S.Res.Degradation.Steps[I]);
  S.Res.Trace.Events.push_back(std::move(E));
}

void Pipeline::runPass(CompileState &S, const Pass &P) const {
  // Pass-boundary checkpoint: an expired deadline or flipped token stops
  // the compile before the next pass starts. A checkpoint tripped deeper
  // inside the pass (Pluto rows, dependence pairs, AST recursion) may not
  // know its pass name, so it is attributed here on the way out. Either
  // way no TraceEvent is pushed for the aborted pass - the pipeline
  // driver emits the single terminal event instead, so the trace never
  // holds a half-measured entry.
  cancel::checkPoint(P.Name.c_str());
  size_t DegBefore = S.Res.Degradation.Steps.size();
  std::map<std::string, int64_t> Before = Stats::get().snapshotCounters();
  auto T0 = std::chrono::steady_clock::now();
  S.PassNote.clear();
  try {
    P.Run(S);
  } catch (CancelledError &E) {
    if (E.where().empty())
      E.setWhere(P.Name);
    throw;
  }
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
  if (Stats::enabled()) {
    // Keep the legacy "akg.<pass>" timer keys of the monolithic driver so
    // AKG_STATS profiles stay comparable across the refactor.
    Stats::get().addTime("akg." + P.Name, Wall);
    Stats::get().add("akg." + P.Name + ".calls");
  }
  TraceEvent E;
  E.Pass = P.Name;
  E.Id = P.Id;
  E.Attempt = S.Attempt;
  E.Retry = S.Retry;
  E.WallSeconds = Wall;
  E.Counters = Stats::diffCounters(Before, Stats::get().snapshotCounters());
  for (size_t I = DegBefore, N = S.Res.Degradation.Steps.size(); I < N; ++I)
    E.Degradations.push_back(S.Res.Degradation.Steps[I]);
  E.Note = std::move(S.PassNote);
  if (P.Snapshot && trace::snapshotsEnabled())
    E.Snapshot = P.Snapshot(S);
  S.Res.Trace.Events.push_back(std::move(E));
}

void Pipeline::runOne(CompileState &S, const std::string &Name) const {
  const Pass *P = find(Name);
  if (P && P->Run)
    runPass(S, *P);
}

void Pipeline::runSection(CompileState &S, const std::string &From,
                          const std::string &To) const {
  bool Active = false;
  for (const Pass &P : Passes) {
    if (P.Name == From)
      Active = true;
    if (Active && P.Run)
      runPass(S, P);
    if (P.Name == To)
      break;
  }
}

//===----------------------------------------------------------------------===//
// The pass bodies (paper Fig 2, in stage order)
//===----------------------------------------------------------------------===//

namespace {

// Preparation passes (Sec 3). The prepared module must outlive the
// kernel (tensor declarations are shared into it).
void runPrepare(CompileState &S) {
  S.PreparedMod = std::make_shared<Module>(
      S.Opts->EnableInlining ? inlineElementwiseOps(*S.Input) : Module());
  S.M = S.Opts->EnableInlining ? S.PreparedMod.get() : S.Input;
}

void runExtractPoly(CompileState &S) { S.Poly = extractPolyProgram(*S.M); }

void runDependences(CompileState &S) { S.Deps = computeDependences(S.Poly); }

void runSchedule(CompileState &S) {
  sched::SchedulerOptions SchedOpts = S.BaseSched;
  if (S.Attempt == 1)
    SchedOpts.Fusion = sched::FusionStrategy::None;
  S.SR = computeSchedule(S.Poly, S.Deps, SchedOpts);
  S.Res.UsedSchedulerFallback = false;
  for (const ClusterSchedule &CS : S.SR.Clusters)
    S.Res.UsedSchedulerFallback |= CS.UsedFallback;
  if (S.Res.UsedSchedulerFallback &&
      !S.Res.Degradation.hasStage(Stage::Scheduler))
    S.Res.Degradation.record(
        Stage::Scheduler, S.SchedFallbackReason,
        "identity schedules, cluster split into singletons");
}

// Tile-size selection for the live-out cluster.
void runTiling(CompileState &S) {
  const ClusterSchedule &Live = S.SR.Clusters.back();
  S.LiveStmt = Live.Stmts.front();
  S.W = static_cast<unsigned>(Live.Outer.at(S.LiveStmt).Rows.size());

  S.ATOpts = AutoTilingOptions();
  S.ATOpts.FusedFootprint = S.PostFusion && S.Attempt == 0;
  // Cube constraints: keep conv output rows contiguous (wo untiled),
  // batch tiles at 1, and never tile a cube op's reduction dimensions at
  // the band level (the cube pipeline chunks K internally). Positions are
  // derived from the statement's axis list so the rules hold whether the
  // band covers the output axes only or, on the no-fusion fallback, the
  // full iterator vector. SIMT has no cube pipeline, so no dimension is
  // pinned there and the retry ladder may halve any of them.
  if (S.Target == sim::TargetKind::Cce)
    for (unsigned St : Live.Stmts)
      if (auto D = matchCubeOp(S.Poly.Stmts[St])) {
        unsigned NOut =
            static_cast<unsigned>(S.Poly.Stmts[St].Op->Axis.size());
        if (D->IsConv && NOut >= 1 && NOut - 1 < S.W)
          S.ATOpts.FullDims.push_back(NOut - 1); // wo
        if (((D->IsConv && NOut == 4) ||
             (!D->IsConv && D->Batch > 1 && NOut == 3)) &&
            S.W >= 1)
          S.ATOpts.UnitDims.push_back(0); // batch
        for (unsigned K = NOut; K < S.W; ++K)
          S.ATOpts.FullDims.push_back(K); // reduction dims stay whole
      }

  if (S.Opts->ManualTiles) {
    // The policy may name any statement of the live-out cluster (users
    // typically name the update statement).
    S.Sizes.assign(S.W, 1);
    for (unsigned St : Live.Stmts)
      if (S.Opts->ManualTiles->PerStmt.count(St)) {
        S.Sizes = S.Opts->ManualTiles->sizesFor(St, S.W);
        break;
      }
    // The fractal constraints hold regardless of who chose the sizes (the
    // Fig 4 language frees users from validity concerns, Sec 4.2).
    const auto &Iters = S.Poly.Stmts[S.LiveStmt].Iters;
    for (unsigned D : S.ATOpts.FullDims)
      if (D < S.W)
        S.Sizes[D] = D < Iters.size() ? Iters[D].Extent : 1;
    for (unsigned D : S.ATOpts.UnitDims)
      if (D < S.W)
        S.Sizes[D] = 1;
    S.Res.TilingPolicyText = printTilingPolicy(*S.Opts->ManualTiles);
  } else {
    // Capacities and the data-movement model come from the active target
    // (UB/L1 + DMA bursts on CCE, shared memory + coalesced transactions
    // on SIMT); the search itself is shared.
    AutoTilingResult AT =
        autoTile(S.Poly, S.SR,
                 S.Target == sim::TargetKind::Simt
                     ? sim::TargetSpec::simt(S.CG.Simt)
                     : sim::TargetSpec::cce(S.CG.Machine),
                 S.ATOpts);
    S.Sizes = AT.Sizes;
    S.Res.TilingPolicyText = printTilingPolicy(AT.Policy);
  }

  // The tiling fault hook requests minimal unit tiles; cube-pinned
  // dimensions keep their mandated sizes (the fractal pipeline depends on
  // them, and shrinking them buys no on-chip memory anyway). Reapplied on
  // every attempt: each reschedule rederives the sizes.
  if (S.InjectMinimalTiles) {
    for (unsigned I = 0; I < S.Sizes.size(); ++I)
      if (!S.isPinned(I))
        S.Sizes[I] = 1;
    if (!S.Res.Degradation.hasStage(Stage::Tiling))
      S.Res.Degradation.record(Stage::Tiling, "fault injected",
                               "minimal unit tiles on all free dimensions");
  }
}

void runBuildTree(CompileState &S) { S.Tree = buildScheduledTree(S.Poly, S.SR); }

void runFusion(CompileState &S) {
  FusionReport FR;
  if (S.PostFusion && S.Attempt == 0) {
    FR = applyPostTilingFusion(S.Tree, S.Poly, S.Sizes);
    // Clusters that could not fuse into the live-out tile (e.g. sibling
    // outputs) still need their own tiling + on-chip region, or their
    // footprints are unbounded.
    std::function<void(TreeNode *)> TileRest = [&](TreeNode *N) {
      if (N->Kind == NodeKind::Mark &&
          (N->MarkTag == "on_chip" || N->MarkTag == "skipped"))
        return;
      if (N->Kind == NodeKind::Band) {
        // Already-processed bands carry their on_chip mark beneath.
        if (findNode(N, [](TreeNode *X) {
              return X->Kind == NodeKind::Mark &&
                     (X->MarkTag == "on_chip" || X->MarkTag == "skipped");
            }))
          return;
        std::vector<int64_t> Sz(N->bandWidth(), 1);
        for (unsigned I = 0; I < Sz.size() && I < S.Sizes.size(); ++I)
          Sz[I] = S.Sizes[I];
        tileBand(N, Sz);
        std::unique_ptr<TreeNode> Owned = std::move(N->Children[0]);
        N->Children.clear();
        TreeNode *Mk = N->addChild(makeMark("on_chip"));
        Mk->addChild(std::move(Owned));
        return;
      }
      for (auto &C : N->Children)
        TileRest(C.get());
    };
    TileRest(S.Tree.root());
  } else {
    // Ablation: classical tiling without the reverse strategy. Every
    // cluster band is tiled independently and producers round-trip
    // through global memory.
    std::vector<TreeNode *> Bands;
    walkTree(S.Tree.root(), [&](TreeNode *N) {
      if (N->Kind == NodeKind::Band) {
        Bands.push_back(N);
        return false; // outer bands only
      }
      return true;
    });
    for (TreeNode *B : Bands) {
      std::vector<int64_t> Sz(B->bandWidth(), 1);
      for (unsigned I = 0; I < Sz.size() && I < S.Sizes.size(); ++I)
        Sz[I] = S.Sizes[I];
      tileBand(B, Sz);
      std::unique_ptr<TreeNode> Owned = std::move(B->Children[0]);
      B->Children.clear();
      TreeNode *Mk = B->addChild(makeMark("on_chip"));
      Mk->addChild(std::move(Owned));
    }
  }
  S.Res.FusedProducers = FR.FusedProducers;
}

// The cube path always requires its mark for fractal lowering; the
// vector-dim sink is the optional part of the intra-tile stage.
void runIntraTile(CompileState &S) {
  applyIntraTileFusion(S.Tree, S.Poly);
  if (S.SinkDims)
    sinkVectorizableDims(S.Tree, S.Poly);
  S.Res.ScheduleTreeDump = S.Tree.str();
}

void runAstGen(CompileState &S) { S.Ast = generateAst(S.Tree, S.Poly); }

void runLower(CompileState &S) {
  S.Kernel = S.Backend->lower(S.Ast, *S.M, S.Poly, S.CG, S.Name);
}

void runStorageCheck(CompileState &S) {
  S.CapErr = S.Backend->checkStorage(S.Kernel, S.CG);
  if (S.InjectStorage) {
    // One simulated capacity failure; subsequent retries see the real
    // checker so the halving ladder converges normally.
    S.CapErr = "fault injected: storage capacity check failed";
    S.InjectStorage = false;
  }
  if (!S.CapErr.empty()) {
    S.PassNote = S.CapErr;
    if (!S.Res.Degradation.hasStage(Stage::Storage))
      S.Res.Degradation.record(Stage::Storage, S.CapErr,
                               "halved largest free tile and retried");
  }
}

void runSync(CompileState &S) {
  S.Res.Sync = S.Backend->insertSync(S.Kernel, S.SyncS);
  S.Res.Kernel = std::move(S.Kernel);
  S.Res.TileSizes = S.Sizes;
}

// Bottom of the ladder: a single scalar instruction evaluating the whole
// module on GM. Always fits, always correct, never fast.
void runScalarFallback(CompileState &S) {
  S.Res.Degradation.record(
      Stage::Storage,
      S.TimedOut ? "compile deadline expired"
                 : "minimal tiles exceed buffer capacity on every attempt",
      "scalar fallback kernel over global memory");
  S.Res.Kernel = S.Backend->scalarFallback(*S.M, S.Name);
  S.Res.Sync =
      S.Backend->insertSync(S.Res.Kernel, cce::SyncStrategy::FullSerial);
  S.Res.TileSizes.clear();
}

Pipeline buildAkgPipeline(const TargetBackend &B) {
  Pipeline PL;
  PL.add({"prepare", Stage::None, runPrepare, nullptr,
          [](const CompileState &S) { return S.M->str(); }});
  PL.add({"extract_poly", Stage::None, runExtractPoly, nullptr, nullptr});
  PL.add({"dependences", Stage::None, runDependences, nullptr, nullptr});
  PL.add({"schedule", Stage::Scheduler, runSchedule,
          [](CompileState &S) {
            S.BaseSched.ForceFallback = true;
            S.SchedFallbackReason = "fault injected";
          },
          nullptr});
  PL.add({"tiling", Stage::Tiling, runTiling,
          [](CompileState &S) { S.InjectMinimalTiles = true; }, nullptr});
  PL.add({"build_tree", Stage::None, runBuildTree, nullptr, nullptr});
  PL.add({"fusion", Stage::Fusion, runFusion,
          [](CompileState &S) {
            S.PostFusion = false;
            S.Res.Degradation.record(Stage::Fusion, "fault injected",
                                     "post-tiling fusion disabled; producers "
                                     "round-trip global memory");
          },
          nullptr});
  PL.add({"intra_tile", Stage::IntraTile, runIntraTile,
          [](CompileState &S) {
            S.SinkDims = false;
            S.Res.Degradation.record(
                Stage::IntraTile, "fault injected",
                "kept schedule loop order (no vector-dim sink)");
          },
          [](const CompileState &S) { return S.Res.ScheduleTreeDump; }});
  PL.add({"ast_gen", Stage::None, runAstGen, nullptr, nullptr});
  PL.add({B.lowerPassName(), Stage::None, runLower, nullptr, nullptr});
  PL.add({"storage_check", Stage::Storage, runStorageCheck,
          [](CompileState &S) { S.InjectStorage = true; }, nullptr});
  // Knob passes: vectorize and double_buffer parameterize the CCE
  // lowering rather than running on their own, so they carry only the
  // fault hooks (Run = null, never traced as executed).
  PL.add({"vectorize", Stage::Vectorize, nullptr,
          [](CompileState &S) {
            S.CG.EnableVectorize = false;
            S.Res.Degradation.record(Stage::Vectorize, "fault injected",
                                     "scalar loop emission for all units");
          },
          nullptr});
  PL.add({"double_buffer", Stage::DoubleBuffer, nullptr,
          [](CompileState &S) {
            S.CG.EnableDoubleBuffer = false;
            S.Res.Degradation.record(Stage::DoubleBuffer, "fault injected",
                                     "single buffering (no ping-pong overlap)");
          },
          nullptr});
  PL.add({"sync", Stage::Sync, runSync,
          [](CompileState &S) {
            S.SyncS = cce::SyncStrategy::FullSerial;
            S.Res.Degradation.record(
                Stage::Sync, "fault injected",
                "full-serial barriers between instructions");
          },
          nullptr});
  PL.add({"scalar_fallback", Stage::None, runScalarFallback, nullptr, nullptr});
  return PL;
}

} // namespace

const Pipeline &akgPipeline(sim::TargetKind T) {
  // One shared, stateless pipeline per target; they differ only in the
  // lowering pass (name + backend dispatch).
  static const Pipeline *Cce =
      new Pipeline(buildAkgPipeline(targetBackend(sim::TargetKind::Cce)));
  static const Pipeline *Simt =
      new Pipeline(buildAkgPipeline(targetBackend(sim::TargetKind::Simt)));
  return T == sim::TargetKind::Simt ? *Simt : *Cce;
}

const Pipeline &akgPipeline() { return akgPipeline(sim::TargetKind::Cce); }

//===----------------------------------------------------------------------===//
// Controllers
//===----------------------------------------------------------------------===//

void TileRetryLadder::run(CompileState &S, const Pipeline &PL) const {
  for (S.Retry = 0;; ++S.Retry) {
    if (S.DL.expired()) {
      S.TimedOut = true;
      return;
    }
    ScopedTimer RetryTimer("akg.tile_and_lower");
    PL.runSection(S, "build_tree", "storage_check");
    if (!S.CapErr.empty() && S.Retry >= S.Opts->MaxTileRetries) {
      S.CapacityExhausted = true;
      return;
    }
    if (S.CapErr.empty()) {
      PL.runOne(S, "sync");
      return;
    }
    Stats::get().add("akg.tile_retries");
    // Halve the largest free tile and retry; the decision is a trace
    // event either way (halved, or nothing halvable left).
    std::string Ts;
    for (int64_t Sz : S.Sizes)
      Ts += std::to_string(Sz) + " ";
    trace::debugEcho("retile(" + S.Name + "): tiles [" + Ts + "] " + S.CapErr);
    int Largest = -1;
    for (unsigned I = 0; I < S.Sizes.size(); ++I)
      if (!S.isPinned(I) && (Largest < 0 || S.Sizes[I] > S.Sizes[Largest]))
        Largest = static_cast<int>(I);
    TraceEvent E;
    E.Pass = "retile";
    E.Id = Stage::Storage;
    E.Attempt = S.Attempt;
    E.Retry = S.Retry;
    if (Largest < 0 || S.Sizes[Largest] <= 1) {
      // Nothing halvable: behave as capacity-exhausted.
      E.Note = "tiles [" + Ts + "]: no halvable free dimension left";
      S.Res.Trace.Events.push_back(std::move(E));
      S.CapacityExhausted = true;
      return;
    }
    int64_t Halved = std::max<int64_t>(1, S.Sizes[Largest] / 2);
    E.Note = "tiles [" + Ts + "]: halved dim " + std::to_string(Largest) +
             " to " + std::to_string(Halved);
    S.Sizes[Largest] = Halved;
    S.Res.Trace.Events.push_back(std::move(E));
  }
}

void FusionRejectionController::run(CompileState &S, const Pipeline &PL) const {
  TileRetryLadder Ladder;
  for (unsigned Attempt = 0; Attempt < 2; ++Attempt) {
    S.Attempt = Attempt;
    S.Retry = 0;
    S.CapacityExhausted = false;
    PL.runSection(S, "schedule", "tiling");
    Ladder.run(S, PL);
    if (S.TimedOut)
      return;
    if (!S.CapacityExhausted) {
      S.Compiled = true;
      return;
    }
    if (Attempt == 0) {
      S.Res.Degradation.record(
          Stage::Fusion, "minimal tiles still exceed capacity with fusion",
          "rejected fusion; producers round-trip global memory");
      TraceEvent E;
      E.Pass = "reject_fusion";
      E.Id = Stage::Fusion;
      E.Attempt = Attempt;
      E.Retry = S.Retry;
      E.Note = "retrying with clustering disabled";
      E.Degradations.push_back(S.Res.Degradation.Steps.back());
      S.Res.Trace.Events.push_back(std::move(E));
    }
  }
}

//===----------------------------------------------------------------------===//
// The driver
//===----------------------------------------------------------------------===//

CompileResult runPassPipeline(const Module &M, const AkgOptions &Opts,
                              const std::string &Name, Stage Fail) {
  auto T0 = std::chrono::steady_clock::now();
  CompileState S;
  S.Input = &M;
  S.Opts = &Opts;
  S.Name = Name;
  S.Fail = Fail;
  S.Target = resolveTarget(Opts);
  S.Backend = &targetBackend(S.Target);
  S.Res.Trace.Kernel = Name;
  S.Res.Trace.Target = sim::targetName(S.Target);

  // Budgets + per-stage fault injection resolve into concrete knobs once,
  // up front; each injected failure is itself a rung of the ladder and is
  // recorded immediately.
  S.BaseSched = Opts.Scheduler;
  if (S.BaseSched.IlpNodeBudget == 0)
    S.BaseSched.IlpNodeBudget = Opts.Budget.IlpNodeBudget;
  if (S.BaseSched.DeadlineSeconds == 0)
    S.BaseSched.DeadlineSeconds = Opts.Budget.DeadlineSeconds;
  S.CG = Opts.Codegen;
  S.SyncS = Opts.Sync;
  S.PostFusion = Opts.EnablePostTilingFusion;
  S.SinkDims = Opts.EnableIntraTile;

  const Pipeline &PL = akgPipeline(S.Target);

  // Hard request deadline + cooperative cancellation (DESIGN.md 4h).
  // Unlike the soft Budget.DeadlineSeconds (stages degrade and continue),
  // tripping either constraint unwinds the compile via CancelledError.
  // The scope chains to any context already active on this thread (a
  // service worker's request context), so the tightest constraint wins.
  double HardMs = Opts.RequestDeadlineMs > 0
                      ? Opts.RequestDeadlineMs
                      : static_cast<double>(env::getInt("AKG_DEADLINE_MS", 0));
  cancel::Context Ctx;
  Ctx.DL = Deadline(HardMs / 1000.0);
  Ctx.Token = Opts.Cancel.get();
  cancel::Scope RequestScope(&Ctx);

  try {
    PL.applyFaultInjection(S);

    PL.runSection(S, "prepare", "dependences");
    // The compile deadline covers scheduling and lowering; the frontend
    // section is not on the clock (matching the pre-pipeline driver, which
    // armed the deadline after dependence analysis).
    S.DL = Deadline(Opts.Budget.DeadlineSeconds);

    FusionRejectionController().run(S, PL);
    if (!S.Compiled)
      PL.runOne(S, "scalar_fallback");
  } catch (const CancelledError &E) {
    // Terminal event: the one trace entry for an unwound compile, naming
    // the pass (or loop's pass) the request stopped in. The result still
    // carries a valid scalar fallback kernel so downstream consumers
    // holding a CompileResult never dereference an empty kernel, but the
    // non-ok Outcome keeps it out of the kernel cache.
    S.Res.Outcome = Status::error(
        E.code(), std::string(E.what()) + " in pass '" + E.where() + "'");
    S.Res.Trace.Outcome = errCodeName(E.code());
    S.Res.Degradation.record(Stage::None, E.what(),
                             "compile unwound; scalar fallback kernel");
    TraceEvent T;
    T.Pass = errCodeName(E.code()); // "deadline_exceeded" / "cancelled"
    T.Attempt = S.Attempt;
    T.Retry = S.Retry;
    T.Note = "stopped in pass '" + E.where() + "'";
    T.Degradations.push_back(S.Res.Degradation.Steps.back());
    S.Res.Trace.Events.push_back(std::move(T));
    const Module *FM = S.M ? S.M : S.Input;
    S.Res.Kernel = S.Backend->scalarFallback(*FM, S.Name);
    S.Res.Sync =
        S.Backend->insertSync(S.Res.Kernel, cce::SyncStrategy::FullSerial);
    S.Res.TileSizes.clear();
  }

  if (Opts.EnableInlining)
    S.Res.Mod = S.PreparedMod;
  S.Res.Trace.TotalSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return std::move(S.Res);
}

} // namespace akg
