//===- akg/Pipeline.h - The staged compile pass pipeline --------*- C++ -*-===//
//
// The AKG pipeline (paper Fig 2) as a first-class object. Each stage -
// prepare, extract-poly, dependences, schedule, tiling, post-tiling
// fusion, intra-tile, AST gen, CCE lowering, storage check, vectorize,
// double-buffer, sync - is one Pass with a uniform interface:
//
//   * a name and the Stage id it owns for fault injection,
//   * a run function over the shared CompileState,
//   * a declarative OnInjectedFault hook: when AKG_FAIL_STAGE (or
//     AkgOptions::FailStage) names the pass's stage, the pipeline invokes
//     the hook once at setup instead of the driver growing another
//     `Fail == Stage::X` branch,
//   * an optional snapshot function embedded into the trace under
//     AKG_TRACE_SNAPSHOTS=1.
//
// Two stages are pure knob passes (vectorize, double_buffer): they
// parameterize the CCE lowering rather than running on their own, so they
// carry only a fault hook and emit no trace event.
//
// Pipeline::run wraps every executed pass in uniform instrumentation: a
// wall timer, a Stats counter snapshot/diff, and capture of the
// degradation steps the pass recorded - one TraceEvent per executed pass
// into CompileResult::Trace (plus legacy "akg.<pass>" Stats timers under
// AKG_STATS=1).
//
// The attempt/retry ladders of the old monolithic driver are explicit
// controllers here: FusionRejectionController reruns the scheduled
// section with clustering disabled when minimal tiles cannot fit a fused
// region, and TileRetryLadder drives the tile-and-lower section, halving
// the largest free tile on each storage failure. Both record their
// decisions as synthetic trace events ("reject_fusion", "retile").
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_PIPELINE_H
#define AKG_AKG_PIPELINE_H

#include "akg/Compiler.h"
#include "ir/PolyExtract.h"
#include "schedule/ScheduleTree.h"
#include "scheduler/Dependence.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace akg {

class TargetBackend;

/// Everything a pass may read or write: the module under compilation, the
/// polyhedral program, the resolved option knobs (fault injection folds
/// into these), the per-attempt/per-retry working set, and the
/// CompileResult being assembled.
struct CompileState {
  // -- compile request (immutable) -----------------------------------------
  const ir::Module *Input = nullptr;
  const AkgOptions *Opts = nullptr;
  std::string Name;
  Stage Fail = Stage::None; // resolved fault-injection stage
  /// Resolved compile target (resolveTarget) and its backend; every
  /// hardware-specific pass body dispatches through Backend.
  sim::TargetKind Target = sim::TargetKind::Cce;
  const TargetBackend *Backend = nullptr;

  // -- prepared module -----------------------------------------------------
  /// Owns the prepared module; tensor declarations are shared into the
  /// kernel, so it must outlive the CompileResult (returned as Res.Mod).
  std::shared_ptr<ir::Module> PreparedMod;
  const ir::Module *M = nullptr; // module actually compiled

  // -- polyhedral form -----------------------------------------------------
  ir::PolyProgram Poly;
  std::vector<sched::Dependence> Deps;

  // -- resolved knobs (fault-injection hooks flip these) -------------------
  sched::SchedulerOptions BaseSched;
  cce::CodegenOptions CG;
  cce::SyncStrategy SyncS = cce::SyncStrategy::AkgDp;
  bool PostFusion = true;
  bool SinkDims = true;
  bool InjectMinimalTiles = false; // tiling hook: unit tiles per attempt
  bool InjectStorage = false;      // storage hook: one simulated cap failure
  std::string SchedFallbackReason = "scheduling ILP unsolved (too hard)";
  Deadline DL; // armed by the driver after the frontend section

  // -- per-attempt state (reset by FusionRejectionController) --------------
  unsigned Attempt = 0;
  sched::ScheduleResult SR;
  transforms::AutoTilingOptions ATOpts;
  std::vector<int64_t> Sizes;
  unsigned LiveStmt = 0;
  unsigned W = 0; // live-out band width
  bool CapacityExhausted = false;

  // -- per-retry state (tile-and-lower section) ----------------------------
  unsigned Retry = 0;
  sched::ScheduleTree Tree;
  ir::Stmt Ast;
  cce::Kernel Kernel;
  std::string CapErr;

  // -- outcome -------------------------------------------------------------
  bool Compiled = false;
  bool TimedOut = false;
  CompileResult Res;

  /// Scratch note a pass may leave for its own trace event.
  std::string PassNote;

  /// Dimensions whose tile size is mandated by the cube pipeline keep it
  /// through every degradation (halving, injection).
  bool isPinned(unsigned D) const {
    for (unsigned F : ATOpts.FullDims)
      if (F == D)
        return true;
    for (unsigned U : ATOpts.UnitDims)
      if (U == D)
        return true;
    return false;
  }
};

/// One pipeline stage.
struct Pass {
  std::string Name;        // trace/pass name ("schedule", "tiling", ...)
  Stage Id = Stage::None;  // fault-injection stage this pass owns
  std::function<void(CompileState &)> Run;             // null = knob pass
  std::function<void(CompileState &)> OnInjectedFault; // null = none
  std::function<std::string(const CompileState &)> Snapshot; // optional
};

/// An ordered list of passes with uniform trace instrumentation.
class Pipeline {
public:
  Pipeline &add(Pass P);

  const std::vector<Pass> &passes() const { return Passes; }
  const Pass *find(const std::string &Name) const;

  /// Invokes the OnInjectedFault hook of the pass owning S.Fail (if any)
  /// and records a synthetic "fault_injection" trace event carrying the
  /// degradation steps the hook recorded. Called once, at setup.
  void applyFaultInjection(CompileState &S) const;

  /// Runs one pass by name with full instrumentation.
  void runOne(CompileState &S, const std::string &Name) const;

  /// Runs the contiguous section of executable passes from \p From to
  /// \p To inclusive (knob passes in between are skipped).
  void runSection(CompileState &S, const std::string &From,
                  const std::string &To) const;

private:
  void runPass(CompileState &S, const Pass &P) const;
  std::vector<Pass> Passes;
};

/// The standard AKG pass list in stage order. Shared, stateless (all
/// state lives in CompileState), safe for concurrent compiles.
const Pipeline &akgPipeline();

/// The pass list for \p T. The shared frontend (prepare .. ast_gen) and
/// the controllers are identical across targets; only the lowering pass
/// differs by name and body ("lower_cce" vs "lower_simt" — storage_check
/// and sync keep their names and dispatch through CompileState::Backend).
const Pipeline &akgPipeline(sim::TargetKind T);

/// Pipeline controller: drives the tile-and-lower section (build_tree ..
/// storage_check) until the storage check passes, the retry budget or
/// halvable tiles run out, or the deadline expires. On success runs the
/// sync pass; each halving decision becomes a "retile" trace event.
class TileRetryLadder {
public:
  /// Returns with S.Compiled-relevant flags set: CapErr empty + synced
  /// (success), S.CapacityExhausted, or S.TimedOut.
  void run(CompileState &S, const Pipeline &PL) const;
};

/// Pipeline controller: attempt 0 compiles with the requested options;
/// when even minimal tiles cannot satisfy the buffer capacities (a fused
/// region keeping several very wide rows live), attempt 1 rejects the
/// fusion entirely - clustering is disabled so every statement tiles over
/// its own full dimensionality and intermediates round-trip global
/// memory. The rejection is recorded as a degradation and a trace event.
class FusionRejectionController {
public:
  void run(CompileState &S, const Pipeline &PL) const;
};

/// Runs the full pass pipeline for one compile: frontend section, the
/// fusion-rejection/tile-retry controllers, and the scalar-fallback
/// bottom rung when nothing compiled. The returned result carries the
/// complete CompileTrace.
CompileResult runPassPipeline(const ir::Module &M, const AkgOptions &Opts,
                              const std::string &Name, Stage Fail);

} // namespace akg

#endif // AKG_AKG_PIPELINE_H
