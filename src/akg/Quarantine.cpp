//===- akg/Quarantine.cpp - Poison-pill negative cache --------------------===//

#include "akg/Quarantine.h"

#include "support/Stats.h"

namespace akg {

std::optional<std::string> Quarantine::check(const CacheKey &K) {
  std::lock_guard<std::mutex> G(Lock);
  auto It = Map.find(K);
  if (It == Map.end() || !It->second.Active)
    return std::nullopt;
  if (std::chrono::steady_clock::now() >= It->second.Until) {
    // TTL lapsed: fresh start, failure count included.
    Map.erase(It);
    return std::nullopt;
  }
  ++Counts.FastFails;
  if (Stats::enabled())
    Stats::get().add("quarantine.fast_fail");
  return It->second.Reason;
}

void Quarantine::recordFailure(const CacheKey &K, ErrCode Code,
                               const std::string &Why) {
  if (!isDeterministic(Code))
    return;
  std::lock_guard<std::mutex> G(Lock);
  Entry &E = Map[K];
  if (E.Active)
    return; // already armed; the TTL clock keeps running
  if (++E.Failures < Opts.FailureThreshold)
    return;
  E.Active = true;
  E.Until = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(Opts.TtlSeconds));
  E.Reason = std::string(errCodeName(Code)) + ": " + Why + " (" +
             std::to_string(E.Failures) + " deterministic failures)";
  ++Counts.Armed;
  if (Stats::enabled())
    Stats::get().add("quarantine.armed");
}

void Quarantine::recordSuccess(const CacheKey &K) {
  std::lock_guard<std::mutex> G(Lock);
  Map.erase(K);
}

QuarantineStats Quarantine::stats() const {
  std::lock_guard<std::mutex> G(Lock);
  return Counts;
}

size_t Quarantine::size() const {
  std::lock_guard<std::mutex> G(Lock);
  return Map.size();
}

} // namespace akg
