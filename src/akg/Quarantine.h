//===- akg/Quarantine.h - Poison-pill negative cache ------------*- C++ -*-===//
//
// A poison module - one that fails deterministically on every retry, like
// the adversarial subgraphs the fuzzer generates - must not burn a worker
// per request once the service has seen it fail K times. The quarantine
// is a negative cache keyed on the same content address as the kernel
// cache: after FailureThreshold deterministic failures a fingerprint is
// quarantined for TtlSeconds, and repeat requests fail fast with
// Outcome = Quarantined instead of recompiling.
//
// Only deterministic failures arm it. Cancellation, deadline expiry,
// load-shedding and transient faults say nothing about the module itself
// - the same fingerprint may compile fine on the next, less constrained
// request - so they never count. A success clears the entry, and an
// expired TTL gives the fingerprint a completely fresh start (the failure
// count does not survive the TTL: a flaky-then-fixed toolchain fault
// should not leave a hair trigger behind).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_QUARANTINE_H
#define AKG_AKG_QUARANTINE_H

#include "akg/KernelCache.h"

#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace akg {

struct QuarantineOptions {
  /// Deterministic failures of one fingerprint before it is quarantined.
  unsigned FailureThreshold = 3;
  /// How long a quarantined fingerprint fails fast before retrying.
  double TtlSeconds = 30.0;
};

struct QuarantineStats {
  int64_t Armed = 0;     // fingerprints that crossed the threshold
  int64_t FastFails = 0; // requests rejected by an active entry
};

class Quarantine {
public:
  explicit Quarantine(QuarantineOptions Opts = QuarantineOptions())
      : Opts(Opts) {}

  Quarantine(const Quarantine &) = delete;
  Quarantine &operator=(const Quarantine &) = delete;

  /// The reason string of an active quarantine entry for \p K, or nullopt
  /// when the request should proceed. Counts a fast-fail when active;
  /// erases (and does not report) entries whose TTL has lapsed.
  std::optional<std::string> check(const CacheKey &K);

  /// True when \p Code speaks about the module itself rather than about
  /// this particular request's constraints or the service's health.
  static bool isDeterministic(ErrCode Code) {
    switch (Code) {
    case ErrCode::Cancelled:
    case ErrCode::DeadlineExceeded:
    case ErrCode::Overloaded:
    case ErrCode::Quarantined:
    case ErrCode::Unavailable:
    case ErrCode::Ok:
      return false;
    default:
      return true;
    }
  }

  /// Records a failed compile of \p K. Non-deterministic codes (see
  /// isDeterministic) are ignored; crossing the threshold arms the entry
  /// for TtlSeconds with \p Why as its reason.
  void recordFailure(const CacheKey &K, ErrCode Code, const std::string &Why);

  /// A clean compile clears any accumulated failures for \p K.
  void recordSuccess(const CacheKey &K);

  QuarantineStats stats() const;
  size_t size() const; // tracked fingerprints (armed or counting)

private:
  struct Entry {
    unsigned Failures = 0;
    bool Active = false;
    std::chrono::steady_clock::time_point Until;
    std::string Reason;
  };

  QuarantineOptions Opts;
  mutable std::mutex Lock;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> Map;
  QuarantineStats Counts;
};

} // namespace akg

#endif // AKG_AKG_QUARANTINE_H
