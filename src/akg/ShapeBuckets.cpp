//===- akg/ShapeBuckets.cpp - Shape-bucket scheme -------------------------===//

#include "akg/ShapeBuckets.h"

#include "support/Env.h"

#include <sstream>

namespace akg {

BucketScheme::BucketScheme() : Bounds{16, 64, 256, 1024, 4096} {}

BucketScheme::BucketScheme(std::vector<int64_t> B) : Bounds(std::move(B)) {}

BucketScheme BucketScheme::fromEnv() {
  std::optional<std::string> Raw = env::get("AKG_SHAPE_BUCKETS");
  if (!Raw || Raw->empty())
    return BucketScheme();
  std::vector<int64_t> Bounds;
  std::istringstream IS(*Raw);
  std::string Tok;
  while (std::getline(IS, Tok, ',')) {
    try {
      size_t Pos = 0;
      int64_t V = std::stoll(Tok, &Pos);
      if (Pos != Tok.size() || V < 1 ||
          (!Bounds.empty() && V <= Bounds.back()))
        return BucketScheme(); // malformed: fall back to defaults
      Bounds.push_back(V);
    } catch (...) {
      return BucketScheme();
    }
  }
  if (Bounds.empty())
    return BucketScheme();
  return BucketScheme(std::move(Bounds));
}

std::optional<ShapeBucket> BucketScheme::bucketFor(int64_t E) const {
  if (E < 1)
    return std::nullopt;
  int64_t Lo = 1;
  for (int64_t Hi : Bounds) {
    if (E <= Hi)
      return ShapeBucket{Lo, Hi};
    Lo = Hi + 1;
  }
  return std::nullopt; // beyond the last bound: per-shape fallback
}

std::string BucketScheme::bucketId(const ShapeBucket &B) {
  return "b" + std::to_string(B.Hi);
}

} // namespace akg
