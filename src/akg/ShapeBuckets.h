//===- akg/ShapeBuckets.h - Shape-bucket scheme -----------------*- C++ -*-===//
//
// The extent-bucketing scheme of the dynamic-shape cache (DESIGN.md 4k).
// Extents partition into power-of-two-ish ranges [1,16], (16,64],
// (64,256], (256,1024], (1024,4096]; each bucket's REPRESENTATIVE is its
// upper bound, the extent the skeleton kernel is compiled at. Requests
// whose extent exceeds the last bound fall back to per-shape compilation.
// AKG_SHAPE_BUCKETS overrides the bounds ("16,64,256" etc. -- strictly
// increasing positive integers); the bucket id that enters the cache key
// is the bound itself, so differently-configured processes never alias
// cache entries.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_AKG_SHAPEBUCKETS_H
#define AKG_AKG_SHAPEBUCKETS_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace akg {

/// One extent bucket: the half-open-below range (Lo-1, Hi], i.e. extents
/// Lo..Hi inclusive. Representative (skeleton compile extent) is Hi.
struct ShapeBucket {
  int64_t Lo = 1;
  int64_t Hi = 1;

  int64_t representative() const { return Hi; }
  bool contains(int64_t E) const { return E >= Lo && E <= Hi; }
};

/// An ordered list of bucket upper bounds.
class BucketScheme {
public:
  /// Default bounds 16, 64, 256, 1024, 4096.
  BucketScheme();
  explicit BucketScheme(std::vector<int64_t> Bounds);

  /// Scheme from AKG_SHAPE_BUCKETS (comma-separated strictly increasing
  /// positive bounds); the default scheme when unset or malformed.
  static BucketScheme fromEnv();

  const std::vector<int64_t> &bounds() const { return Bounds; }

  /// Bucket containing extent \p E; nullopt when E < 1 or beyond the last
  /// bound (callers fall back to per-shape compilation).
  std::optional<ShapeBucket> bucketFor(int64_t E) const;

  /// Stable id string of the bucket ("b16", "b64", ...) used inside the
  /// bucketed cache fingerprint.
  static std::string bucketId(const ShapeBucket &B);

private:
  std::vector<int64_t> Bounds;
};

} // namespace akg

#endif // AKG_AKG_SHAPEBUCKETS_H
