//===- baselines/CceLibrary.cpp - Hand-written kernel baselines -----------===//

#include "baselines/CceLibrary.h"

#include "baselines/TvmCompiler.h"
#include "sim/Simulator.h"

#include <cassert>

namespace akg {
namespace baselines {

using namespace ir;

std::vector<std::shared_ptr<Module>> splitPerOperator(const Module &M) {
  std::vector<std::shared_ptr<Module>> Result;
  for (const auto &Op : M.ops()) {
    auto Single = std::make_shared<Module>();
    // Placeholders for every tensor the op reads (library calls take all
    // operands from global memory).
    std::map<const TensorDecl *, Tensor> Remap;
    for (const Tensor &R : collectReads(Op->Body))
      Remap[R.get()] = Single->placeholder(R->Name, R->Shape, R->Type);
    std::function<Expr(const Expr &)> Rewrite = [&](const Expr &E) -> Expr {
      if (!E)
        return E;
      if (E->Kind == ExprKind::TensorRead) {
        std::vector<Expr> Idx;
        for (const Expr &I : E->Operands)
          Idx.push_back(Rewrite(I));
        return tensorRead(Remap.at(E->Ref.get()), std::move(Idx));
      }
      std::vector<Expr> Ops;
      bool Changed = false;
      for (const Expr &O : E->Operands) {
        Expr N = Rewrite(O);
        Changed |= (N != O);
        Ops.push_back(std::move(N));
      }
      if (!Changed)
        return E;
      auto N = std::make_shared<ExprNode>(*E);
      N->Operands = std::move(Ops);
      return N;
    };
    Single->computeRaw(Op->Output->Name, Op->Axis, Rewrite(Op->Body),
                       Op->Output->Type);
    Result.push_back(std::move(Single));
  }
  return Result;
}

LibrarySequence buildCceOptLibrary(const Module &M,
                                   const sim::MachineSpec &Spec,
                                   const std::string &Name) {
  LibrarySequence Seq;
  Seq.PerOpModules = splitPerOperator(M);
  unsigned Idx = 0;
  for (const auto &Single : Seq.PerOpModules) {
    // Offline exhaustive tuning: start from the compiler's choice and try
    // scaled variants, keeping the fastest (the library developers spend
    // weeks doing exactly this, Sec 6.1 / Fig 10).
    AkgOptions Base;
    Base.Sync = cce::SyncStrategy::AkgDp;
    std::string KName = Name + "_op" + std::to_string(Idx++);
    CompileResult Best = compileWithAkg(*Single, Base, KName);
    Best.Kernel.HandPrefetched = true;
    sim::SimOptions SO;
    SO.Functional = false;
    int64_t BestCycles =
        sim::simulate(Best.Kernel, Spec, nullptr, SO).Cycles;
    std::vector<int64_t> Seed = Best.TileSizes;
    ir::PolyProgram P = extractPolyProgram(*Single);
    unsigned LiveId = P.Stmts.back().Id;
    for (unsigned D = 0; D < Seed.size(); ++D) {
      for (int64_t Scale : {2, 4}) {
        for (int Dir = 0; Dir < 2; ++Dir) {
          std::vector<int64_t> Cand = Seed;
          Cand[D] = Dir ? std::max<int64_t>(1, Seed[D] / Scale)
                        : Seed[D] * Scale;
          if (Cand[D] == Seed[D])
            continue;
          AkgOptions O = Base;
          transforms::TilingPolicy Pol;
          transforms::StmtTileSpec Spec2;
          for (int64_t S : Cand)
            Spec2.Entries.push_back(transforms::TileSpecEntry{S, "UB"});
          Pol.PerStmt[LiveId] = Spec2;
          O.ManualTiles = Pol;
          CompileResult C = compileWithAkg(*Single, O, KName);
          C.Kernel.HandPrefetched = true;
          int64_t Cycles =
              sim::simulate(C.Kernel, Spec, nullptr, SO).Cycles;
          if (Cycles < BestCycles) {
            BestCycles = Cycles;
            Best = std::move(C);
          }
        }
      }
    }
    Seq.Kernels.push_back(std::move(Best.Kernel));
  }
  return Seq;
}

CompileResult buildCceNaive(const Module &M, const std::string &Name) {
  AkgOptions O;
  O.EnablePostTilingFusion = false;
  O.Sync = cce::SyncStrategy::FullSerial;
  O.Codegen.EnableVectorize = false;
  O.Codegen.EnableDoubleBuffer = false;
  // The naive reference tiles just enough to fit the buffers.
  TvmOptions TO;
  std::vector<int64_t> Tiles = tvmExpertDefaultTiles(M);
  transforms::TilingPolicy Pol;
  transforms::StmtTileSpec Spec;
  for (int64_t S : Tiles)
    Spec.Entries.push_back(transforms::TileSpecEntry{S, "UB"});
  ir::PolyProgram P = extractPolyProgram(M);
  Pol.PerStmt[P.Stmts.back().Id] = Spec;
  O.ManualTiles = Pol;
  return compileWithAkg(M, O, Name);
}

sim::SimResult simulateSequence(const LibrarySequence &Seq,
                                const sim::MachineSpec &Spec,
                                ir::BufferMap *Gm, bool Functional) {
  sim::SimResult Total;
  for (const cce::Kernel &K : Seq.Kernels) {
    sim::SimOptions SO;
    SO.Functional = Functional;
    sim::SimResult R = sim::simulate(K, Spec, Gm, SO);
    Total.Cycles += R.Cycles;
    Total.DynamicInstrs += R.DynamicInstrs;
    Total.GmTrafficBytes += R.GmTrafficBytes;
    Total.SyncStallCycles += R.SyncStallCycles;
    Total.FlagPairs += R.FlagPairs;
    for (unsigned P = 0; P < sim::NumPipes; ++P)
      Total.BusyCycles[P] += R.BusyCycles[P];
  }
  return Total;
}

} // namespace baselines
} // namespace akg
