//===- baselines/CceLibrary.h - Hand-written kernel baselines ---*- C++ -*-===//
//
// The two expert baselines of the evaluation:
//
//  * CCE opt: vendor-library-quality kernels. Each single operator gets an
//    individually hand-tuned kernel: tile sizes picked by exhaustive
//    offline search against the machine, optimally grouped flags, double
//    buffering and manual hardware prefetching (the last is what lets the
//    library edge out compiler-generated code on some single operators,
//    Sec 6.1). On subgraphs the library can only be composed op by op, so
//    every intermediate round-trips through global memory - exactly the
//    behaviour behind the 5.6x mean gap in Fig 12.
//
//  * CCE naive: the unoptimized reference the experts start from - scalar
//    loops, no vectorization, no double buffering, full pipeline
//    serialization.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_BASELINES_CCELIBRARY_H
#define AKG_BASELINES_CCELIBRARY_H

#include "akg/Compiler.h"
#include "sim/Simulator.h"

namespace akg {
namespace baselines {

/// A composed sequence of library kernels (one per operator).
struct LibrarySequence {
  std::vector<cce::Kernel> Kernels;
  /// Single-op modules the kernels were built from (kept alive: kernels
  /// share their tensor declarations).
  std::vector<std::shared_ptr<ir::Module>> PerOpModules;
};

/// Builds the hand-optimized library implementation of a module: one tuned
/// kernel per operator, composed through global memory.
LibrarySequence buildCceOptLibrary(const ir::Module &M,
                                   const sim::MachineSpec &Spec,
                                   const std::string &Name);

/// Builds the naive expert starting point (scalar, serialized).
CompileResult buildCceNaive(const ir::Module &M, const std::string &Name);

/// Simulates a kernel sequence (performance mode), composing cycles and GM
/// traffic across the library calls.
sim::SimResult simulateSequence(const LibrarySequence &Seq,
                                const sim::MachineSpec &Spec,
                                ir::BufferMap *Gm = nullptr,
                                bool Functional = false);

/// Splits a fused module into single-operator modules (each consuming the
/// previous op's output as a placeholder), mirroring op-by-op library
/// composition.
std::vector<std::shared_ptr<ir::Module>> splitPerOperator(const ir::Module &M);

} // namespace baselines
} // namespace akg

#endif // AKG_BASELINES_CCELIBRARY_H
