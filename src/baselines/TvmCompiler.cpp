//===- baselines/TvmCompiler.cpp - Manual-schedule baseline ---------------===//

#include "baselines/TvmCompiler.h"

#include "transforms/Conv.h"

namespace akg {
namespace baselines {

using namespace ir;

std::vector<int64_t> tvmExpertDefaultTiles(const Module &M) {
  // The classic hand-template rule: split each output axis by 64 (or the
  // full extent when smaller); batch axes and conv output rows follow the
  // same constraints AKG must respect (fractal layout).
  PolyProgram P = extractPolyProgram(M);
  const ir::PolyStmt *Last = &P.Stmts.back();
  const ComputeOp *Op = Last->Op;
  std::vector<int64_t> Tiles;
  bool IsConv = false;
  if (auto D = transforms::matchCubeOp(*Last))
    IsConv = D->IsConv;
  for (unsigned I = 0; I < Op->Axis.size(); ++I) {
    int64_t Ext = Op->Axis[I].Extent;
    int64_t Tile = std::min<int64_t>(Ext, 64);
    // Round down to a power of two unless taking the whole extent.
    if (Tile != Ext) {
      int64_t P2 = 1;
      while (P2 * 2 <= Tile)
        P2 *= 2;
      Tile = P2;
    }
    if (Op->Axis.size() == 4 && I == 0)
      Tile = 1; // batch
    if (IsConv && I + 1 == Op->Axis.size())
      Tile = Ext; // conv output rows stay intact for img2col
    Tiles.push_back(Tile);
  }
  return Tiles;
}

CompileResult compileWithTvm(const Module &M, const TvmOptions &Opts,
                             const std::string &Name) {
  AkgOptions A;
  // Manual templates: no skew/shift; fusion is what compute_at gives
  // (zero-distance chains), i.e. the conservative clustering, and nothing
  // across tiling.
  A.Scheduler.Fusion = sched::FusionStrategy::Conservative;
  A.Scheduler.AllowSkew = false;
  A.Scheduler.AllowShift = false;
  A.EnablePostTilingFusion = false;
  A.Sync = cce::SyncStrategy::TvmEmpirical;
  A.Codegen = Opts.Codegen;
  transforms::TilingPolicy Pol;
  std::vector<int64_t> Tiles =
      Opts.ManualTiles.empty() ? tvmExpertDefaultTiles(M) : Opts.ManualTiles;
  // Attach the sizes to the last statement (the live-out one).
  PolyProgram P = extractPolyProgram(M);
  transforms::StmtTileSpec Spec;
  for (int64_t S : Tiles)
    Spec.Entries.push_back(transforms::TileSpecEntry{S, "UB"});
  Pol.PerStmt[P.Stmts.back().Id] = Spec;
  A.ManualTiles = Pol;
  return compileWithAkg(M, A, Name);
}

} // namespace baselines
} // namespace akg
