//===- baselines/TvmCompiler.h - Manual-schedule baseline -------*- C++ -*-===//
//
// The vendor-adapted-TVM baseline of the evaluation (Sec 6): the Ascend
// R&D team ported TVM's schedule primitives to the DaVinci architecture,
// so this path shares the DSL, the CCE backend and the simulator with AKG
// but is restricted to what manual schedule templates can express, exactly
// per the paper's analysis:
//
//  * no skewing or shifting (split/reorder/fuse/compute_at only),
//  * pre-tiling fusion only (compute_at of zero-distance producers); the
//    reverse strategy's overlapped tiles are not expressible, so non-
//    pointwise producers round-trip through global memory,
//  * rectangular tiles with expert-chosen default sizes (tunable by its
//    auto-tuner),
//  * img2col + fractal GEMM are available (the vendor developers wrote
//    those templates),
//  * empirical clustering of pipeline synchronizations rather than the DP
//    grouping.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_BASELINES_TVMCOMPILER_H
#define AKG_BASELINES_TVMCOMPILER_H

#include "akg/Compiler.h"

namespace akg {
namespace baselines {

struct TvmOptions {
  /// Tile sizes chosen by the schedule author (per live-out band dim);
  /// empty = the expert default rule (largest power of two <= 64 fitting).
  std::vector<int64_t> ManualTiles;
  cce::CodegenOptions Codegen;
};

/// Compiles one fused operator with the manual-schedule-template pipeline.
CompileResult compileWithTvm(const ir::Module &M, const TvmOptions &Opts,
                             const std::string &Name);

/// The expert default tile-size rule used when no explicit sizes are given.
std::vector<int64_t> tvmExpertDefaultTiles(const ir::Module &M);

} // namespace baselines
} // namespace akg

#endif // AKG_BASELINES_TVMCOMPILER_H
