//===- composite/Composite.cpp - Schema parse/validate/serialize ----------===//

#include "composite/Composite.h"

#include "ir/ModuleUtils.h"
#include "sim/Target.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace akg {
namespace composite {

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

const char *dtypeText(ir::DType T) {
  switch (T) {
  case ir::DType::F16:
    return "float16";
  case ir::DType::F32:
    return "float32";
  case ir::DType::I32:
    return "int32";
  case ir::DType::Bool:
    return "bool";
  }
  return "float32";
}

bool dtypeFromText(const std::string &S, ir::DType &Out) {
  if (S == "float16" || S == "half" || S == "fp16") {
    Out = ir::DType::F16;
    return true;
  }
  if (S == "float32" || S == "float" || S == "fp32") {
    Out = ir::DType::F32;
    return true;
  }
  if (S == "int32" || S == "int32_t" || S == "int") {
    Out = ir::DType::I32;
    return true;
  }
  if (S == "bool") {
    Out = ir::DType::Bool;
    return true;
  }
  return false;
}

void CompositeOp::setAttr(const std::string &Name, Json V) {
  for (Attr &A : Attrs)
    if (A.Name == Name) {
      A.Value = std::move(V);
      return;
    }
  Attrs.push_back(Attr{Name, std::move(V)});
}

namespace {

void diag(std::vector<Diag> &D, const std::string &Path,
          const std::string &Msg) {
  D.push_back(Diag{Path, Msg});
}

bool isIdent(const std::string &S) {
  if (S.empty() || S.size() > 128)
    return false;
  unsigned char C0 = static_cast<unsigned char>(S[0]);
  if (!std::isalpha(C0) && S[0] != '_')
    return false;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    if (!std::isalnum(U) && C != '_')
      return false;
  }
  return true;
}

std::string sanitizeKernelName(const std::string &S) {
  std::string Out;
  for (char C : S) {
    unsigned char U = static_cast<unsigned char>(C);
    Out += (std::isalnum(U) || C == '_') ? C : '_';
    if (Out.size() >= 128)
      break;
  }
  if (Out.empty())
    Out = "composite_kernel";
  if (std::isdigit(static_cast<unsigned char>(Out[0])))
    Out = "_" + Out;
  return Out;
}

/// Multiplies out a shape with overflow/cap checking.
bool shapeElems(const std::vector<int64_t> &Shape, int64_t &N) {
  N = 1;
  for (int64_t S : Shape) {
    if (S <= 0 || S > kMaxDimExtent)
      return false;
    if (N > kMaxTensorElems / S)
      return false;
    N *= S;
  }
  return true;
}

bool sameShape(const std::vector<int64_t> &A, const std::vector<int64_t> &B) {
  return A == B;
}

std::string shapeText(const std::vector<int64_t> &S) {
  std::string T = "[";
  for (size_t I = 0; I < S.size(); ++I)
    T += (I ? "," : "") + std::to_string(S[I]);
  return T + "]";
}

/// Numpy-style right-aligned broadcast of two shapes.
bool broadcast2(const std::vector<int64_t> &A, const std::vector<int64_t> &B,
                std::vector<int64_t> &Out) {
  size_t R = std::max(A.size(), B.size());
  Out.assign(R, 1);
  for (size_t I = 0; I < R; ++I) {
    int64_t DA = I < R - A.size() ? 1 : A[I - (R - A.size())];
    int64_t DB = I < R - B.size() ? 1 : B[I - (R - B.size())];
    if (DA != DB && DA != 1 && DB != 1)
      return false;
    Out[I] = std::max(DA, DB);
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Op vocabulary classification
//===----------------------------------------------------------------------===//

bool isElementwiseOp(const std::string &T) {
  static const char *Names[] = {
      "Add",  "Sub",  "Mul",   "Div",     "Maximum", "Minimum", "Less",
      "LessEqual", "Equal", "Select", "Neg", "Exp", "Log", "Sqrt", "Rsqrt",
      "Abs",  "Relu", "Sigmoid", "Tanh",  "Gelu",    "Cast"};
  for (const char *N : Names)
    if (T == N)
      return true;
  return false;
}

bool isTransformOp(const std::string &T) {
  return T == "Reshape" || T == "Transpose" || T == "Cast" ||
         T == "BroadcastTo";
}

bool isKnownOp(const std::string &T) {
  return isElementwiseOp(T) || isTransformOp(T) || T == "BiasAdd" ||
         T == "MatMul" || T == "ReduceSum" || T == "ReduceMax" ||
         T == "ReduceMin" || T == "Compute";
}

//===----------------------------------------------------------------------===//
// Expression (de)serialization
//===----------------------------------------------------------------------===//

namespace {

const char *exprKindText(ir::ExprKind K) {
  switch (K) {
  case ir::ExprKind::IntImm:
    return "int";
  case ir::ExprKind::FloatImm:
    return "float";
  case ir::ExprKind::Var:
    return "var";
  case ir::ExprKind::Add:
    return "add";
  case ir::ExprKind::Sub:
    return "sub";
  case ir::ExprKind::Mul:
    return "mul";
  case ir::ExprKind::Div:
    return "div";
  case ir::ExprKind::FloorDiv:
    return "floordiv";
  case ir::ExprKind::Mod:
    return "mod";
  case ir::ExprKind::Min:
    return "min";
  case ir::ExprKind::Max:
    return "max";
  case ir::ExprKind::Cast:
    return "cast";
  case ir::ExprKind::Select:
    return "select";
  case ir::ExprKind::CmpLT:
    return "lt";
  case ir::ExprKind::CmpLE:
    return "le";
  case ir::ExprKind::CmpEQ:
    return "eq";
  case ir::ExprKind::CmpNE:
    return "ne";
  case ir::ExprKind::And:
    return "and";
  case ir::ExprKind::Or:
    return "or";
  case ir::ExprKind::Not:
    return "not";
  case ir::ExprKind::TensorRead:
    return "read";
  case ir::ExprKind::Call:
    return "call";
  case ir::ExprKind::Reduce:
    return "reduce";
  }
  return "?";
}

bool exprKindFromText(const std::string &S, ir::ExprKind &K) {
  static const std::pair<const char *, ir::ExprKind> Table[] = {
      {"int", ir::ExprKind::IntImm},    {"float", ir::ExprKind::FloatImm},
      {"var", ir::ExprKind::Var},       {"add", ir::ExprKind::Add},
      {"sub", ir::ExprKind::Sub},       {"mul", ir::ExprKind::Mul},
      {"div", ir::ExprKind::Div},       {"floordiv", ir::ExprKind::FloorDiv},
      {"mod", ir::ExprKind::Mod},       {"min", ir::ExprKind::Min},
      {"max", ir::ExprKind::Max},       {"cast", ir::ExprKind::Cast},
      {"select", ir::ExprKind::Select}, {"lt", ir::ExprKind::CmpLT},
      {"le", ir::ExprKind::CmpLE},      {"eq", ir::ExprKind::CmpEQ},
      {"ne", ir::ExprKind::CmpNE},      {"and", ir::ExprKind::And},
      {"or", ir::ExprKind::Or},         {"not", ir::ExprKind::Not},
      {"read", ir::ExprKind::TensorRead}, {"call", ir::ExprKind::Call},
      {"reduce", ir::ExprKind::Reduce}};
  for (const auto &E : Table)
    if (S == E.first) {
      K = E.second;
      return true;
    }
  return false;
}

const char *reduceKindText(ir::ReduceKind K) {
  switch (K) {
  case ir::ReduceKind::Sum:
    return "sum";
  case ir::ReduceKind::Max:
    return "max";
  case ir::ReduceKind::Min:
    return "min";
  }
  return "sum";
}

bool reduceKindFromText(const std::string &S, ir::ReduceKind &K) {
  if (S == "sum")
    K = ir::ReduceKind::Sum;
  else if (S == "max")
    K = ir::ReduceKind::Max;
  else if (S == "min")
    K = ir::ReduceKind::Min;
  else
    return false;
  return true;
}

/// Expected operand count per kind; -1 means variable (checked separately).
int exprArity(ir::ExprKind K) {
  switch (K) {
  case ir::ExprKind::IntImm:
  case ir::ExprKind::FloatImm:
  case ir::ExprKind::Var:
    return 0;
  case ir::ExprKind::Not:
  case ir::ExprKind::Cast:
    return 1;
  case ir::ExprKind::Select:
    return 3;
  case ir::ExprKind::TensorRead:
  case ir::ExprKind::Call:
    return -1;
  case ir::ExprKind::Reduce:
    return 1;
  default:
    return 2;
  }
}

struct ExprReader {
  const std::map<std::string, ir::Tensor> &Tensors;
  std::vector<Diag> &D;
  size_t Nodes = 0;

  ir::Expr fail(const std::string &Path, const std::string &Msg) {
    diag(D, Path, Msg);
    return nullptr;
  }

  ir::Expr read(const Json &J, unsigned Depth, const std::string &Path) {
    if (Depth > kMaxExprDepth)
      return fail(Path, "expression nesting exceeds depth cap");
    if (++Nodes > kMaxExprNodes)
      return fail(Path, "expression exceeds node-count cap");
    if (!J.isObject())
      return fail(Path, "expression node must be an object");
    const Json *KJ = J.find("k");
    if (!KJ || !KJ->isString())
      return fail(Path, "missing string field 'k' (expr kind)");
    ir::ExprKind K;
    if (!exprKindFromText(KJ->stringValue(), K))
      return fail(Path, "unknown expr kind '" + KJ->stringValue() + "'");
    const Json *TJ = J.find("t");
    ir::DType T = ir::DType::F32;
    if (!TJ || !TJ->isString() || !dtypeFromText(TJ->stringValue(), T))
      return fail(Path, "missing or invalid dtype field 't'");

    auto N = std::make_shared<ir::ExprNode>();
    N->Kind = K;
    N->Type = T;

    switch (K) {
    case ir::ExprKind::IntImm: {
      const Json *V = J.find("v");
      if (!V || !V->isInt())
        return fail(Path, "'int' node needs an integer field 'v'");
      N->IntVal = V->intValue();
      break;
    }
    case ir::ExprKind::FloatImm: {
      const Json *V = J.find("v");
      if (!V || !V->isNumber())
        return fail(Path, "'float' node needs a numeric field 'v'");
      N->FloatVal = V->numberValue();
      break;
    }
    case ir::ExprKind::Var: {
      const Json *Name = J.find("n");
      if (!Name || !Name->isString() || !isIdent(Name->stringValue()))
        return fail(Path, "'var' node needs an identifier field 'n'");
      N->Name = Name->stringValue();
      break;
    }
    case ir::ExprKind::Call: {
      const Json *Name = J.find("n");
      if (!Name || !Name->isString() || !isIdent(Name->stringValue()))
        return fail(Path, "'call' node needs an identifier field 'n'");
      N->Name = Name->stringValue();
      break;
    }
    case ir::ExprKind::TensorRead: {
      const Json *Ref = J.find("ref");
      if (!Ref || !Ref->isString())
        return fail(Path, "'read' node needs a string field 'ref'");
      auto It = Tensors.find(Ref->stringValue());
      if (It == Tensors.end())
        return fail(Path, "expr reads undeclared tensor '" +
                              Ref->stringValue() + "'");
      N->Ref = It->second;
      break;
    }
    case ir::ExprKind::Reduce: {
      const Json *RK = J.find("rk");
      if (!RK || !RK->isString() ||
          !reduceKindFromText(RK->stringValue(), N->RKind))
        return fail(Path, "'reduce' node needs field 'rk' (sum/max/min)");
      const Json *Axes = J.find("axes");
      if (!Axes || !Axes->isArray() || Axes->items().empty() ||
          Axes->items().size() > kMaxRank)
        return fail(Path, "'reduce' node needs a non-empty 'axes' array");
      for (size_t I = 0; I < Axes->items().size(); ++I) {
        const Json &A = Axes->items()[I];
        std::string APath = Path + ".axes[" + std::to_string(I) + "]";
        if (!A.isObject())
          return fail(APath, "reduce axis must be an object");
        const Json *AN = A.find("n");
        const Json *AE = A.find("e");
        if (!AN || !AN->isString() || !isIdent(AN->stringValue()))
          return fail(APath, "reduce axis needs an identifier field 'n'");
        if (!AE || !AE->isInt() || AE->intValue() <= 0 ||
            AE->intValue() > kMaxDimExtent)
          return fail(APath, "reduce axis needs a positive integer 'e'");
        bool IsRed = true;
        if (const Json *AR = A.find("r")) {
          if (!AR->isBool())
            return fail(APath, "reduce axis field 'r' must be a bool");
          IsRed = AR->boolValue();
        }
        N->ReduceAxes.push_back(
            ir::IterVar{AN->stringValue(), AE->intValue(), IsRed});
      }
      break;
    }
    default:
      break;
    }

    const Json *Ops = J.find("o");
    size_t NumOps = 0;
    if (Ops) {
      if (!Ops->isArray())
        return fail(Path, "field 'o' (operands) must be an array");
      NumOps = Ops->items().size();
    }
    int Want = exprArity(K);
    if (Want >= 0 && NumOps != static_cast<size_t>(Want))
      return fail(Path, std::string("kind '") + exprKindText(K) +
                            "' expects " + std::to_string(Want) +
                            " operands, got " + std::to_string(NumOps));
    if (K == ir::ExprKind::Call && NumOps == 0)
      return fail(Path, "'call' node needs at least one operand");
    if (K == ir::ExprKind::TensorRead &&
        NumOps != N->Ref->Shape.size())
      return fail(Path, "'read' of rank-" +
                            std::to_string(N->Ref->Shape.size()) +
                            " tensor '" + N->Ref->Name + "' has " +
                            std::to_string(NumOps) + " indices");
    for (size_t I = 0; I < NumOps; ++I) {
      ir::Expr Child = read(Ops->items()[I], Depth + 1,
                            Path + ".o[" + std::to_string(I) + "]");
      if (!Child)
        return nullptr;
      N->Operands.push_back(std::move(Child));
    }
    return N;
  }
};

} // namespace

Json exprToJson(const ir::Expr &E) {
  Json J = Json::object();
  if (!E)
    return J;
  J.set("k", Json::str(exprKindText(E->Kind)));
  J.set("t", Json::str(dtypeText(E->Type)));
  switch (E->Kind) {
  case ir::ExprKind::IntImm:
    J.set("v", Json::integer(E->IntVal));
    break;
  case ir::ExprKind::FloatImm:
    J.set("v", Json::number(E->FloatVal));
    break;
  case ir::ExprKind::Var:
  case ir::ExprKind::Call:
    J.set("n", Json::str(E->Name));
    break;
  case ir::ExprKind::TensorRead:
    J.set("ref", Json::str(E->Ref ? E->Ref->Name : ""));
    break;
  case ir::ExprKind::Reduce: {
    J.set("rk", Json::str(reduceKindText(E->RKind)));
    Json Axes = Json::array();
    for (const ir::IterVar &IV : E->ReduceAxes) {
      Json A = Json::object();
      A.set("n", Json::str(IV.Name));
      A.set("e", Json::integer(IV.Extent));
      A.set("r", Json::boolean(IV.IsReduce));
      Axes.push(std::move(A));
    }
    J.set("axes", std::move(Axes));
    break;
  }
  default:
    break;
  }
  if (!E->Operands.empty()) {
    Json Ops = Json::array();
    for (const ir::Expr &O : E->Operands)
      Ops.push(exprToJson(O));
    J.set("o", std::move(Ops));
  }
  return J;
}

ir::Expr exprFromJson(const Json &J,
                      const std::map<std::string, ir::Tensor> &Tensors,
                      std::vector<Diag> &Diags, const std::string &Path) {
  ExprReader R{Tensors, Diags};
  return R.read(J, 0, Path);
}

//===----------------------------------------------------------------------===//
// Per-op semantic validation (shared by parse and lowering)
//===----------------------------------------------------------------------===//

namespace {

/// Checks that all vars inside \p E are axis names in scope (compute axes
/// or enclosing reduce axes).
void checkVarScope(const ir::Expr &E, std::set<std::string> &Scope,
                   std::vector<Diag> &D, const std::string &Path) {
  if (!E)
    return;
  if (E->Kind == ir::ExprKind::Var && !Scope.count(E->Name)) {
    diag(D, Path, "expr references unbound variable '" + E->Name + "'");
    return;
  }
  if (E->Kind == ir::ExprKind::Reduce) {
    std::vector<std::string> Added;
    for (const ir::IterVar &IV : E->ReduceAxes)
      if (Scope.insert(IV.Name).second)
        Added.push_back(IV.Name);
    for (const ir::Expr &O : E->Operands)
      checkVarScope(O, Scope, D, Path);
    for (const std::string &N : Added)
      Scope.erase(N);
    return;
  }
  for (const ir::Expr &O : E->Operands)
    checkVarScope(O, Scope, D, Path);
}

/// Fetches a required integer-array attr (e.g. perm, shape, axis).
bool intArrayAttr(const Json &V, std::vector<int64_t> &Out) {
  if (!V.isArray())
    return false;
  Out.clear();
  for (const Json &I : V.items()) {
    if (!I.isInt())
      return false;
    Out.push_back(I.intValue());
  }
  return true;
}

/// Validates one op's arity, attrs, and inferred output desc against the
/// declared one. Inputs must already carry resolved descs.
void checkOp(const CompositeOp &Op, const std::string &Path,
             std::vector<Diag> &D) {
  size_t Before = D.size();
  const std::string &T = Op.Type;
  if (!isKnownOp(T)) {
    diag(D, Path, "unknown op '" + T + "'");
    return;
  }

  auto tensorInputs = [&]() {
    std::vector<const InputRef *> Refs;
    for (const InputRef &R : Op.Inputs)
      if (!R.IsScalar)
        Refs.push_back(&R);
    return Refs;
  };
  auto wantInputs = [&](size_t N) {
    if (Op.Inputs.size() != N)
      diag(D, Path, T + " expects " + std::to_string(N) + " inputs, got " +
                        std::to_string(Op.Inputs.size()));
    return Op.Inputs.size() == N;
  };

  // Generic ReadPerm checks: only elementwise consumers, full rank, and a
  // valid permutation mapping input dims onto the consumer's axes.
  for (size_t I = 0; I < Op.Inputs.size(); ++I) {
    const InputRef &R = Op.Inputs[I];
    if (R.ReadPerm.empty())
      continue;
    std::string P = Path + ".input[" + std::to_string(I) + "].read_perm";
    if (R.IsScalar || !isElementwiseOp(T)) {
      diag(D, P, "read_perm only allowed on tensor inputs of elementwise ops");
      continue;
    }
    size_t Rank = Op.Output.Shape.size();
    if (R.ReadPerm.size() != Rank || R.Desc.Shape.size() != Rank) {
      diag(D, P, "read_perm rank mismatch");
      continue;
    }
    std::vector<bool> Seen(Rank, false);
    bool Bad = false;
    for (size_t K = 0; K < Rank; ++K) {
      unsigned A = R.ReadPerm[K];
      if (A >= Rank || Seen[A]) {
        Bad = true;
        break;
      }
      Seen[A] = true;
      if (R.Desc.Shape[K] != Op.Output.Shape[A])
        Bad = true;
    }
    if (Bad)
      diag(D, P, "read_perm is not a shape-preserving permutation");
  }
  if (D.size() != Before)
    return;

  // Effective shape of a tensor input for broadcast purposes (a folded
  // permutation reads across the consumer's full axis space).
  auto effShape = [&](const InputRef &R) {
    return R.ReadPerm.empty() ? R.Desc.Shape : Op.Output.Shape;
  };

  std::vector<int64_t> Want;      // inferred output shape
  ir::DType WantT = ir::DType::F32;
  bool HaveWant = false;

  auto inferElementwise = [&](ir::DType OutT, bool CheckOutT) {
    auto Refs = tensorInputs();
    if (Refs.empty()) {
      diag(D, Path, T + " needs at least one tensor input");
      return;
    }
    Want = effShape(*Refs[0]);
    for (const InputRef *R : Refs) {
      std::vector<int64_t> B;
      if (!broadcast2(Want, effShape(*R), B)) {
        diag(D, Path, T + " inputs do not broadcast: " + shapeText(Want) +
                          " vs " + shapeText(R->Desc.Shape));
        return;
      }
      Want = std::move(B);
    }
    WantT = CheckOutT ? OutT : Refs[0]->Desc.Type;
    HaveWant = true;
  };

  if (T == "Add" || T == "Sub" || T == "Mul" || T == "Div" ||
      T == "Maximum" || T == "Minimum") {
    if (!wantInputs(2))
      return;
    auto Refs = tensorInputs();
    for (size_t I = 1; I < Refs.size(); ++I)
      if (Refs[I]->Desc.Type != Refs[0]->Desc.Type)
        diag(D, Path, T + " input dtypes differ");
    inferElementwise(ir::DType::F32, false);
  } else if (T == "Less" || T == "LessEqual" || T == "Equal") {
    if (!wantInputs(2))
      return;
    inferElementwise(ir::DType::Bool, true);
  } else if (T == "Select") {
    if (!wantInputs(3))
      return;
    if (!Op.Inputs[0].IsScalar && Op.Inputs[0].Desc.Type != ir::DType::Bool)
      diag(D, Path, "Select condition must be bool");
    inferElementwise(ir::DType::F32, false);
    if (HaveWant) {
      const InputRef &Then = Op.Inputs[1];
      WantT = Then.IsScalar ? Op.Output.Type : Then.Desc.Type;
    }
  } else if (T == "Neg" || T == "Exp" || T == "Log" || T == "Sqrt" ||
             T == "Rsqrt" || T == "Abs" || T == "Relu" || T == "Sigmoid" ||
             T == "Tanh" || T == "Gelu") {
    if (!wantInputs(1))
      return;
    if (Op.Inputs[0].IsScalar) {
      diag(D, Path, T + " input must be a tensor");
      return;
    }
    inferElementwise(ir::DType::F32, false);
  } else if (T == "Cast") {
    if (!wantInputs(1))
      return;
    if (Op.Inputs[0].IsScalar) {
      diag(D, Path, "Cast input must be a tensor");
      return;
    }
    const Json *DT = Op.attr("dst_type");
    ir::DType Dst;
    if (!DT || !DT->isString() || !dtypeFromText(DT->stringValue(), Dst)) {
      diag(D, Path, "Cast needs a string attr 'dst_type'");
      return;
    }
    Want = effShape(Op.Inputs[0]);
    WantT = Dst;
    HaveWant = true;
  } else if (T == "Transpose") {
    if (!wantInputs(1) || Op.Inputs[0].IsScalar) {
      if (Op.Inputs.size() == 1 && Op.Inputs[0].IsScalar)
        diag(D, Path, "Transpose input must be a tensor");
      return;
    }
    const std::vector<int64_t> &In = Op.Inputs[0].Desc.Shape;
    const Json *PJ = Op.attr("perm");
    std::vector<int64_t> Perm;
    if (!PJ || !intArrayAttr(*PJ, Perm) || Perm.size() != In.size()) {
      diag(D, Path, "Transpose needs an int-array attr 'perm' of input rank");
      return;
    }
    std::vector<bool> Seen(In.size(), false);
    for (int64_t P : Perm) {
      if (P < 0 || P >= static_cast<int64_t>(In.size()) || Seen[P]) {
        diag(D, Path, "Transpose 'perm' is not a permutation");
        return;
      }
      Seen[P] = true;
    }
    for (int64_t P : Perm)
      Want.push_back(In[P]);
    WantT = Op.Inputs[0].Desc.Type;
    HaveWant = true;
  } else if (T == "Reshape") {
    if (!wantInputs(1) || Op.Inputs[0].IsScalar) {
      if (Op.Inputs.size() == 1 && Op.Inputs[0].IsScalar)
        diag(D, Path, "Reshape input must be a tensor");
      return;
    }
    const Json *SJ = Op.attr("shape");
    std::vector<int64_t> NewShape;
    if (!SJ || !intArrayAttr(*SJ, NewShape) || NewShape.empty()) {
      diag(D, Path, "Reshape needs a non-empty int-array attr 'shape'");
      return;
    }
    int64_t InN, OutN;
    if (!shapeElems(Op.Inputs[0].Desc.Shape, InN) ||
        !shapeElems(NewShape, OutN)) {
      diag(D, Path, "Reshape shape has non-positive or oversized dims");
      return;
    }
    if (InN != OutN) {
      diag(D, Path, "Reshape changes element count (" + std::to_string(InN) +
                        " -> " + std::to_string(OutN) + ")");
      return;
    }
    Want = std::move(NewShape);
    WantT = Op.Inputs[0].Desc.Type;
    HaveWant = true;
  } else if (T == "BroadcastTo") {
    if (!wantInputs(1) || Op.Inputs[0].IsScalar) {
      if (Op.Inputs.size() == 1 && Op.Inputs[0].IsScalar)
        diag(D, Path, "BroadcastTo input must be a tensor");
      return;
    }
    const Json *SJ = Op.attr("shape");
    std::vector<int64_t> NewShape;
    if (!SJ || !intArrayAttr(*SJ, NewShape) || NewShape.empty()) {
      diag(D, Path, "BroadcastTo needs a non-empty int-array attr 'shape'");
      return;
    }
    const std::vector<int64_t> &In = Op.Inputs[0].Desc.Shape;
    if (In.size() > NewShape.size()) {
      diag(D, Path, "BroadcastTo target rank below input rank");
      return;
    }
    for (size_t I = 0; I < In.size(); ++I) {
      int64_t DI = In[In.size() - 1 - I];
      int64_t DO = NewShape[NewShape.size() - 1 - I];
      if (DI != DO && DI != 1) {
        diag(D, Path, "BroadcastTo shapes incompatible: " + shapeText(In) +
                          " -> " + shapeText(NewShape));
        return;
      }
    }
    Want = std::move(NewShape);
    WantT = Op.Inputs[0].Desc.Type;
    HaveWant = true;
  } else if (T == "BiasAdd") {
    if (!wantInputs(2))
      return;
    if (Op.Inputs[0].IsScalar || Op.Inputs[1].IsScalar) {
      diag(D, Path, "BiasAdd inputs must be tensors");
      return;
    }
    const TensorDesc &X = Op.Inputs[0].Desc;
    const TensorDesc &B = Op.Inputs[1].Desc;
    if (X.Shape.size() < 2 || B.Shape.size() != 1 ||
        B.Shape[0] != X.Shape.back()) {
      diag(D, Path, "BiasAdd needs x rank>=2 and bias [last_dim(x)]");
      return;
    }
    if (X.Type != B.Type)
      diag(D, Path, "BiasAdd input dtypes differ");
    Want = X.Shape;
    WantT = X.Type;
    HaveWant = true;
  } else if (T == "MatMul") {
    if (!wantInputs(2))
      return;
    if (Op.Inputs[0].IsScalar || Op.Inputs[1].IsScalar) {
      diag(D, Path, "MatMul inputs must be tensors");
      return;
    }
    const TensorDesc &A = Op.Inputs[0].Desc;
    const TensorDesc &B = Op.Inputs[1].Desc;
    if (A.Shape.size() != 2 || B.Shape.size() != 2) {
      diag(D, Path, "MatMul inputs must be rank 2");
      return;
    }
    bool TA = false, TB = false;
    if (const Json *V = Op.attr("transpose_a")) {
      if (!V->isBool()) {
        diag(D, Path, "MatMul attr 'transpose_a' must be a bool");
        return;
      }
      TA = V->boolValue();
    }
    if (const Json *V = Op.attr("transpose_b")) {
      if (!V->isBool()) {
        diag(D, Path, "MatMul attr 'transpose_b' must be a bool");
        return;
      }
      TB = V->boolValue();
    }
    int64_t M = TA ? A.Shape[1] : A.Shape[0];
    int64_t KA = TA ? A.Shape[0] : A.Shape[1];
    int64_t KB = TB ? B.Shape[1] : B.Shape[0];
    int64_t N = TB ? B.Shape[0] : B.Shape[1];
    if (KA != KB) {
      diag(D, Path, "MatMul contraction dims differ: " + std::to_string(KA) +
                        " vs " + std::to_string(KB));
      return;
    }
    if (A.Type != B.Type)
      diag(D, Path, "MatMul input dtypes differ");
    Want = {M, N};
    WantT = Op.Output.Type; // F32 accumulate from F16 inputs is allowed
    if (Op.Output.Type != A.Type &&
        !(A.Type == ir::DType::F16 && Op.Output.Type == ir::DType::F32))
      diag(D, Path, "MatMul output dtype must match inputs (or F32 from F16)");
    HaveWant = true;
  } else if (T == "ReduceSum" || T == "ReduceMax" || T == "ReduceMin") {
    if (!wantInputs(1) || Op.Inputs[0].IsScalar) {
      if (Op.Inputs.size() == 1 && Op.Inputs[0].IsScalar)
        diag(D, Path, T + " input must be a tensor");
      return;
    }
    const std::vector<int64_t> &In = Op.Inputs[0].Desc.Shape;
    const Json *AJ = Op.attr("axis");
    std::vector<int64_t> Axes;
    if (AJ && AJ->isInt())
      Axes.push_back(AJ->intValue());
    else if (!AJ || !intArrayAttr(*AJ, Axes) || Axes.empty()) {
      diag(D, Path, T + " needs an int or int-array attr 'axis'");
      return;
    }
    bool KeepDims = false;
    if (const Json *V = Op.attr("keep_dims")) {
      if (!V->isBool()) {
        diag(D, Path, T + " attr 'keep_dims' must be a bool");
        return;
      }
      KeepDims = V->boolValue();
    }
    std::vector<bool> Red(In.size(), false);
    for (int64_t &A : Axes) {
      if (A < 0)
        A += static_cast<int64_t>(In.size());
      if (A < 0 || A >= static_cast<int64_t>(In.size()) || Red[A]) {
        diag(D, Path, T + " attr 'axis' out of range or repeated");
        return;
      }
      Red[A] = true;
    }
    for (size_t I = 0; I < In.size(); ++I) {
      if (!Red[I])
        Want.push_back(In[I]);
      else if (KeepDims)
        Want.push_back(1);
    }
    if (Want.empty()) {
      diag(D, Path, T + " over all axes requires keep_dims=true");
      return;
    }
    WantT = Op.Inputs[0].Desc.Type;
    HaveWant = true;
  } else if (T == "Compute") {
    const Json *AxesJ = Op.attr("axes");
    const Json *ExprJ = Op.attr("expr");
    if (!AxesJ || !AxesJ->isArray() || AxesJ->items().empty() ||
        AxesJ->items().size() > kMaxRank) {
      diag(D, Path, "Compute needs a non-empty array attr 'axes'");
      return;
    }
    if (!ExprJ) {
      diag(D, Path, "Compute needs an attr 'expr'");
      return;
    }
    std::set<std::string> AxisNames;
    for (size_t I = 0; I < AxesJ->items().size(); ++I) {
      const Json &A = AxesJ->items()[I];
      std::string P = Path + ".axes[" + std::to_string(I) + "]";
      const Json *AN = A.isObject() ? A.find("n") : nullptr;
      const Json *AE = A.isObject() ? A.find("e") : nullptr;
      if (!AN || !AN->isString() || !isIdent(AN->stringValue()) || !AE ||
          !AE->isInt() || AE->intValue() <= 0 ||
          AE->intValue() > kMaxDimExtent) {
        diag(D, P, "axis must be {n: identifier, e: positive int}");
        return;
      }
      if (!AxisNames.insert(AN->stringValue()).second) {
        diag(D, P, "duplicate axis name '" + AN->stringValue() + "'");
        return;
      }
      Want.push_back(AE->intValue());
    }
    for (size_t I = 0; I < Op.Inputs.size(); ++I)
      if (Op.Inputs[I].IsScalar) {
        diag(D, Path, "Compute inputs must be tensors");
        return;
      }
    // Build temporary tensors so the expression can be structurally
    // checked (kinds, arity, read ranks, var scoping).
    std::map<std::string, ir::Tensor> Tmp;
    for (const InputRef &R : Op.Inputs) {
      auto TD = std::make_shared<ir::TensorDecl>();
      TD->Name = R.Desc.Name;
      TD->Shape = R.Desc.Shape;
      TD->Type = R.Desc.Type;
      Tmp[TD->Name] = TD;
    }
    ir::Expr E = exprFromJson(*ExprJ, Tmp, D, Path + ".expr");
    if (!E)
      return;
    checkVarScope(E, AxisNames, D, Path + ".expr");
    WantT = Op.Output.Type;
    HaveWant = true;
  }

  if (D.size() != Before || !HaveWant)
    return;
  if (!sameShape(Want, Op.Output.Shape))
    diag(D, Path, T + " output shape mismatch: declared " +
                      shapeText(Op.Output.Shape) + ", inferred " +
                      shapeText(Want));
  else if (WantT != Op.Output.Type)
    diag(D, Path,
         T + " output dtype mismatch: declared " +
             std::string(dtypeText(Op.Output.Type)) + ", inferred " +
             dtypeText(WantT));
}

} // namespace

//===----------------------------------------------------------------------===//
// Graph validation (caps, edges, topo sort, outputs rule, op semantics)
//===----------------------------------------------------------------------===//

Status validateGraph(CompositeGraph &G, std::vector<Diag> &Diags) {
  size_t Before = Diags.size();
  auto finish = [&]() {
    if (Diags.size() == Before)
      return Status::ok();
    return Status::error(ErrCode::InvalidArgument, Diags[Before].str());
  };

  if (G.Ops.empty())
    diag(Diags, "$.op_desc", "composite graph has no ops");
  if (G.Ops.size() > kMaxOps)
    diag(Diags, "$.op_desc", "op count exceeds cap");
  if (G.Inputs.size() + G.Ops.size() > kMaxTensors)
    diag(Diags, "$", "tensor count exceeds cap");
  if (Diags.size() != Before)
    return finish();

  G.Name = sanitizeKernelName(G.Name);

  // Tensor table: graph inputs + op outputs, names unique and well-formed.
  std::map<std::string, TensorDesc> Table;
  std::map<std::string, size_t> Producer; // output name -> op index
  auto declare = [&](const TensorDesc &TD, const std::string &Path) {
    if (!isIdent(TD.Name)) {
      diag(Diags, Path, "tensor name '" + TD.Name +
                            "' is not a valid identifier");
      return;
    }
    int64_t N;
    if (TD.Shape.empty() || TD.Shape.size() > kMaxRank ||
        !shapeElems(TD.Shape, N)) {
      diag(Diags, Path, "tensor '" + TD.Name +
                            "' has an empty, oversized, or non-positive shape");
      return;
    }
    if (!Table.emplace(TD.Name, TD).second)
      diag(Diags, Path, "duplicate tensor name '" + TD.Name + "'");
  };
  for (size_t I = 0; I < G.Inputs.size(); ++I)
    declare(G.Inputs[I], "$.input_desc[" + std::to_string(I) + "]");
  for (size_t I = 0; I < G.Ops.size(); ++I) {
    declare(G.Ops[I].Output, "$.op_desc[" + std::to_string(I) + "].output");
    Producer[G.Ops[I].Output.Name] = I;
  }
  if (Diags.size() != Before)
    return finish();

  // Resolve edges: every tensor input must name a declared tensor with a
  // consistent desc.
  for (size_t I = 0; I < G.Ops.size(); ++I) {
    CompositeOp &Op = G.Ops[I];
    for (size_t J = 0; J < Op.Inputs.size(); ++J) {
      InputRef &R = Op.Inputs[J];
      std::string Path =
          "$.op_desc[" + std::to_string(I) + "].input_desc[" +
          std::to_string(J) + "]";
      if (R.IsScalar)
        continue;
      auto It = Table.find(R.Desc.Name);
      if (It == Table.end()) {
        diag(Diags, Path, "input references undefined tensor '" +
                              R.Desc.Name + "'");
        continue;
      }
      if (!R.Desc.Shape.empty() && !sameShape(R.Desc.Shape, It->second.Shape))
        diag(Diags, Path, "edge shape mismatch for '" + R.Desc.Name +
                              "': declared " + shapeText(R.Desc.Shape) +
                              ", producer has " +
                              shapeText(It->second.Shape));
      else if (!R.Desc.Shape.empty() && R.Desc.Type != It->second.Type)
        diag(Diags, Path, "edge dtype mismatch for '" + R.Desc.Name + "'");
      R.Desc = It->second; // canonicalize the reference
    }
  }
  if (Diags.size() != Before)
    return finish();

  // Kahn topological sort, stable by original index; leftovers = cycle.
  std::vector<size_t> Order;
  std::vector<bool> Placed(G.Ops.size(), false);
  std::set<std::string> Ready;
  for (const TensorDesc &TD : G.Inputs)
    Ready.insert(TD.Name);
  bool Progress = true;
  while (Order.size() < G.Ops.size() && Progress) {
    Progress = false;
    for (size_t I = 0; I < G.Ops.size(); ++I) {
      if (Placed[I])
        continue;
      bool Deps = true;
      for (const InputRef &R : G.Ops[I].Inputs)
        if (!R.IsScalar && !Ready.count(R.Desc.Name))
          Deps = false;
      if (!Deps)
        continue;
      Placed[I] = true;
      Ready.insert(G.Ops[I].Output.Name);
      Order.push_back(I);
      Progress = true;
    }
  }
  if (Order.size() < G.Ops.size()) {
    for (size_t I = 0; I < G.Ops.size(); ++I)
      if (!Placed[I]) {
        diag(Diags, "$.op_desc[" + std::to_string(I) + "]",
             "op '" + G.Ops[I].Output.Name +
                 "' is part of a dependency cycle");
        break;
      }
    return finish();
  }
  std::vector<CompositeOp> Sorted;
  Sorted.reserve(G.Ops.size());
  for (size_t I : Order)
    Sorted.push_back(std::move(G.Ops[I]));
  G.Ops = std::move(Sorted);
  // Producer indices moved; rebuild for the outputs rule.
  Producer.clear();
  for (size_t I = 0; I < G.Ops.size(); ++I)
    Producer[G.Ops[I].Output.Name] = I;

  // Outputs rule: declared outputs == exactly the unconsumed op outputs
  // (that is what ir::Module::outputs() will report after lowering).
  std::set<std::string> Consumed;
  for (const CompositeOp &Op : G.Ops)
    for (const InputRef &R : Op.Inputs)
      if (!R.IsScalar)
        Consumed.insert(R.Desc.Name);
  std::set<std::string> Declared;
  for (size_t I = 0; I < G.Outputs.size(); ++I) {
    const std::string &Name = G.Outputs[I];
    std::string Path = "$.output_desc[" + std::to_string(I) + "]";
    if (!Declared.insert(Name).second)
      diag(Diags, Path, "duplicate output '" + Name + "'");
    else if (!Producer.count(Name))
      diag(Diags, Path, "output '" + Name + "' is not produced by any op");
    else if (Consumed.count(Name))
      diag(Diags, Path, "output '" + Name +
                            "' is also consumed inside the graph "
                            "(unsupported: it would not escape the module)");
  }
  if (G.Outputs.empty())
    diag(Diags, "$.output_desc", "composite graph declares no outputs");
  for (const CompositeOp &Op : G.Ops)
    if (!Consumed.count(Op.Output.Name) && !Declared.count(Op.Output.Name))
      diag(Diags, "$.output_desc",
           "op output '" + Op.Output.Name +
               "' escapes the graph but is not declared as an output");
  if (Diags.size() != Before)
    return finish();

  // Per-op semantics (arity, attrs, shape/dtype inference).
  for (size_t I = 0; I < G.Ops.size(); ++I)
    checkOp(G.Ops[I], "$.op_desc[" + std::to_string(I) + "]", Diags);
  return finish();
}

//===----------------------------------------------------------------------===//
// Payload parsing (JSON -> CompositeGraph)
//===----------------------------------------------------------------------===//

namespace {

/// Parses one tensor descriptor object. Shape/dtype are required when
/// \p Full (graph inputs, op outputs) and optional on references.
bool parseDesc(const Json &J, bool Full, TensorDesc &Out,
               std::vector<Diag> &D, const std::string &Path) {
  size_t Before = D.size();
  if (!J.isObject()) {
    diag(D, Path, "tensor descriptor must be an object");
    return false;
  }
  const Json *Name = J.find("tensor_name");
  if (!Name || !Name->isString())
    diag(D, Path, "missing string field 'tensor_name'");
  else
    Out.Name = Name->stringValue();
  const Json *Shape = J.find("shape");
  if (Shape) {
    std::vector<int64_t> S;
    if (!intArrayAttr(*Shape, S))
      diag(D, Path, "'shape' must be an array of integers");
    else
      Out.Shape = std::move(S);
  } else if (Full)
    diag(D, Path, "missing field 'shape'");
  const Json *DT = J.find("data_type");
  if (DT) {
    if (!DT->isString() || !dtypeFromText(DT->stringValue(), Out.Type))
      diag(D, Path, "invalid 'data_type'");
  } else if (Full)
    diag(D, Path, "missing field 'data_type'");
  return D.size() == Before;
}

/// Unwraps the MindSpore-style [[{...}]] nesting: an input_desc entry may
/// be the descriptor object itself or a single-element array holding it.
const Json *unwrapEntry(const Json &J, std::vector<Diag> &D,
                        const std::string &Path) {
  if (J.isObject())
    return &J;
  if (J.isArray() && J.items().size() == 1 && J.items()[0].isObject())
    return &J.items()[0];
  diag(D, Path, "input entry must be an object (or a one-element array)");
  return nullptr;
}

bool parseInputRef(const Json &Entry, InputRef &Out, std::vector<Diag> &D,
                   const std::string &Path) {
  size_t Before = D.size();
  if (const Json *V = Entry.find("value")) {
    Out.IsScalar = true;
    if (V->isNumber())
      Out.Scalar = V->numberValue();
    else if (V->isBool())
      Out.Scalar = V->boolValue() ? 1.0 : 0.0;
    else {
      diag(D, Path, "scalar 'value' must be a number or bool");
      return false;
    }
    Out.Desc.Type = V->isBool() ? ir::DType::Bool
                    : V->isInt() ? ir::DType::I32
                                 : ir::DType::F32;
    if (const Json *DT = Entry.find("data_type")) {
      if (!DT->isString() || !dtypeFromText(DT->stringValue(), Out.Desc.Type))
        diag(D, Path, "invalid scalar 'data_type'");
    }
    return D.size() == Before;
  }
  if (!parseDesc(Entry, /*Full=*/false, Out.Desc, D, Path))
    return false;
  if (const Json *RP = Entry.find("read_perm")) {
    std::vector<int64_t> P;
    if (!intArrayAttr(*RP, P)) {
      diag(D, Path, "'read_perm' must be an array of integers");
      return false;
    }
    for (int64_t V : P) {
      if (V < 0 || V >= static_cast<int64_t>(kMaxRank)) {
        diag(D, Path, "'read_perm' entry out of range");
        return false;
      }
      Out.ReadPerm.push_back(static_cast<unsigned>(V));
    }
  }
  return true;
}

} // namespace

ParseResult parseComposite(const std::string &JsonText) {
  ParseResult R;
  std::vector<Diag> &D = R.Diags;
  auto finish = [&]() -> ParseResult & {
    R.Outcome = D.empty() ? Status::ok()
                          : Status::error(ErrCode::InvalidArgument,
                                          D.front().str());
    return R;
  };

  Json Root;
  JsonError JE;
  if (!parseJson(JsonText, Root, JE)) {
    diag(D, "$", "malformed JSON: " + JE.str());
    return finish();
  }
  if (!Root.isObject()) {
    diag(D, "$", "top-level value must be an object");
    return finish();
  }

  CompositeGraph &G = R.Graph;
  if (const Json *Name = Root.find("op")) {
    if (!Name->isString()) {
      diag(D, "$.op", "'op' must be a string");
      return finish();
    }
    G.Name = Name->stringValue();
  }

  if (const Json *Tgt = Root.find("target")) {
    if (!Tgt->isString()) {
      diag(D, "$.target", "'target' must be a string");
      return finish();
    }
    sim::TargetKind TK;
    if (!sim::parseTargetName(Tgt->stringValue(), TK)) {
      diag(D, "$.target",
           "unknown target '" + Tgt->stringValue() + "' (expected cce|simt)");
      return finish();
    }
    G.Target = sim::targetName(TK); // canonical spelling
  }

  if (const Json *In = Root.find("input_desc")) {
    if (!In->isArray()) {
      diag(D, "$.input_desc", "'input_desc' must be an array");
      return finish();
    }
    for (size_t I = 0; I < In->items().size(); ++I) {
      std::string Path = "$.input_desc[" + std::to_string(I) + "]";
      const Json *Entry = unwrapEntry(In->items()[I], D, Path);
      if (!Entry)
        continue;
      TensorDesc TD;
      if (parseDesc(*Entry, /*Full=*/true, TD, D, Path))
        G.Inputs.push_back(std::move(TD));
    }
  }

  const Json *OpsJ = Root.find("op_desc");
  if (!OpsJ || !OpsJ->isArray() || OpsJ->items().empty()) {
    diag(D, "$.op_desc", "missing or empty 'op_desc' array");
    return finish();
  }
  if (OpsJ->items().size() > kMaxOps) {
    diag(D, "$.op_desc", "op count exceeds cap");
    return finish();
  }
  for (size_t I = 0; I < OpsJ->items().size(); ++I) {
    const Json &OJ = OpsJ->items()[I];
    std::string Path = "$.op_desc[" + std::to_string(I) + "]";
    if (!OJ.isObject()) {
      diag(D, Path, "op entry must be an object");
      continue;
    }
    CompositeOp Op;
    const Json *Name = OJ.find("name");
    if (!Name || !Name->isString()) {
      diag(D, Path, "missing string field 'name' (op type)");
      continue;
    }
    Op.Type = Name->stringValue();
    if (const Json *AJ = OJ.find("attr")) {
      if (AJ->isArray()) {
        for (size_t K = 0; K < AJ->items().size(); ++K) {
          const Json &A = AJ->items()[K];
          std::string APath = Path + ".attr[" + std::to_string(K) + "]";
          const Json *AN = A.isObject() ? A.find("name") : nullptr;
          const Json *AV = A.isObject() ? A.find("value") : nullptr;
          if (!AN || !AN->isString() || !AV)
            diag(D, APath, "attr must be {name: string, value: ...}");
          else
            Op.Attrs.push_back(Attr{AN->stringValue(), *AV});
        }
      } else if (!AJ->isNull()) {
        diag(D, Path + ".attr", "'attr' must be an array (or null)");
      }
    }
    if (const Json *In = OJ.find("input_desc")) {
      if (!In->isArray()) {
        diag(D, Path + ".input_desc", "'input_desc' must be an array");
      } else {
        for (size_t K = 0; K < In->items().size(); ++K) {
          std::string IPath =
              Path + ".input_desc[" + std::to_string(K) + "]";
          const Json *Entry = unwrapEntry(In->items()[K], D, IPath);
          if (!Entry)
            continue;
          InputRef Ref;
          if (parseInputRef(*Entry, Ref, D, IPath))
            Op.Inputs.push_back(std::move(Ref));
        }
      }
    }
    const Json *OutJ = OJ.find("output_desc");
    if (!OutJ || !OutJ->isArray() || OutJ->items().size() != 1) {
      diag(D, Path + ".output_desc",
           "op needs an 'output_desc' array with exactly one entry");
      continue;
    }
    if (!parseDesc(OutJ->items()[0], /*Full=*/true, Op.Output, D,
                   Path + ".output_desc[0]"))
      continue;
    G.Ops.push_back(std::move(Op));
  }

  const Json *OutsJ = Root.find("output_desc");
  if (!OutsJ || !OutsJ->isArray() || OutsJ->items().empty()) {
    diag(D, "$.output_desc", "missing or empty 'output_desc' array");
    return finish();
  }
  std::map<std::string, const CompositeOp *> ByName;
  for (const CompositeOp &Op : G.Ops)
    ByName[Op.Output.Name] = &Op;
  for (size_t I = 0; I < OutsJ->items().size(); ++I) {
    std::string Path = "$.output_desc[" + std::to_string(I) + "]";
    const Json *Entry = unwrapEntry(OutsJ->items()[I], D, Path);
    if (!Entry)
      continue;
    TensorDesc TD;
    if (!parseDesc(*Entry, /*Full=*/true, TD, D, Path))
      continue;
    auto It = ByName.find(TD.Name);
    if (It != ByName.end() &&
        (!sameShape(TD.Shape, It->second->Output.Shape) ||
         TD.Type != It->second->Output.Type))
      diag(D, Path, "output desc for '" + TD.Name +
                        "' does not match its producing op");
    G.Outputs.push_back(TD.Name);
  }

  if (!D.empty())
    return finish();
  validateGraph(G, D);
  return finish();
}

//===----------------------------------------------------------------------===//
// Serialization (CompositeGraph -> JSON)
//===----------------------------------------------------------------------===//

namespace {

Json descJson(const TensorDesc &TD) {
  Json J = Json::object();
  J.set("tensor_name", Json::str(TD.Name));
  Json Shape = Json::array();
  for (int64_t S : TD.Shape)
    Shape.push(Json::integer(S));
  J.set("shape", std::move(Shape));
  J.set("data_type", Json::str(dtypeText(TD.Type)));
  return J;
}

} // namespace

std::string serializeComposite(const CompositeGraph &G, bool Pretty) {
  Json Root = Json::object();
  Root.set("composite", Json::boolean(true));
  Root.set("op", Json::str(G.Name));
  Root.set("platform", Json::str("AKG"));
  // Only emitted when the source payload carried one, so pre-target
  // payloads round-trip byte-identically.
  if (!G.Target.empty())
    Root.set("target", Json::str(G.Target));

  Json Ins = Json::array();
  for (const TensorDesc &TD : G.Inputs)
    Ins.push(descJson(TD));
  Root.set("input_desc", std::move(Ins));

  Json Ops = Json::array();
  for (const CompositeOp &Op : G.Ops) {
    Json OJ = Json::object();
    OJ.set("name", Json::str(Op.Type));
    if (!Op.Attrs.empty()) {
      std::vector<const Attr *> Sorted;
      for (const Attr &A : Op.Attrs)
        Sorted.push_back(&A);
      std::sort(Sorted.begin(), Sorted.end(),
                [](const Attr *A, const Attr *B) { return A->Name < B->Name; });
      Json AJ = Json::array();
      for (const Attr *A : Sorted) {
        Json E = Json::object();
        E.set("name", Json::str(A->Name));
        E.set("value", A->Value);
        AJ.push(std::move(E));
      }
      OJ.set("attr", std::move(AJ));
    }
    Json InJ = Json::array();
    for (const InputRef &R : Op.Inputs) {
      if (R.IsScalar) {
        Json E = Json::object();
        if (R.Desc.Type == ir::DType::I32)
          E.set("value", Json::integer(static_cast<int64_t>(R.Scalar)));
        else if (R.Desc.Type == ir::DType::Bool)
          E.set("value", Json::boolean(R.Scalar != 0));
        else
          E.set("value", Json::number(R.Scalar));
        E.set("data_type", Json::str(dtypeText(R.Desc.Type)));
        InJ.push(std::move(E));
      } else {
        Json E = descJson(R.Desc);
        if (!R.ReadPerm.empty()) {
          Json P = Json::array();
          for (unsigned V : R.ReadPerm)
            P.push(Json::integer(V));
          E.set("read_perm", std::move(P));
        }
        InJ.push(std::move(E));
      }
    }
    OJ.set("input_desc", std::move(InJ));
    Json OutJ = Json::array();
    OutJ.push(descJson(Op.Output));
    OJ.set("output_desc", std::move(OutJ));
    Ops.push(std::move(OJ));
  }
  Root.set("op_desc", std::move(Ops));

  Json Outs = Json::array();
  for (const std::string &Name : G.Outputs) {
    bool Found = false;
    for (const CompositeOp &Op : G.Ops)
      if (Op.Output.Name == Name) {
        Outs.push(descJson(Op.Output));
        Found = true;
        break;
      }
    if (!Found) {
      Json E = Json::object();
      E.set("tensor_name", Json::str(Name));
      Outs.push(std::move(E));
    }
  }
  Root.set("output_desc", std::move(Outs));
  return dumpJson(Root, Pretty);
}

//===----------------------------------------------------------------------===//
// Module -> composite (the "Compute" encoding; exact round-trip)
//===----------------------------------------------------------------------===//

CompositeGraph moduleToComposite(const ir::Module &M,
                                 const std::string &Name) {
  CompositeGraph G;
  G.Name = sanitizeKernelName(Name);
  for (const ir::Tensor &T : M.inputs())
    G.Inputs.push_back(TensorDesc{T->Name, T->Shape, T->Type});
  for (const auto &Op : M.ops()) {
    CompositeOp C;
    C.Type = "Compute";
    for (const ir::Tensor &Rd : ir::collectReads(Op->Body)) {
      InputRef Ref;
      Ref.Desc = TensorDesc{Rd->Name, Rd->Shape, Rd->Type};
      C.Inputs.push_back(std::move(Ref));
    }
    C.Output =
        TensorDesc{Op->Output->Name, Op->Output->Shape, Op->Output->Type};
    Json Axes = Json::array();
    for (const ir::IterVar &IV : Op->Axis) {
      Json A = Json::object();
      A.set("n", Json::str(IV.Name));
      A.set("e", Json::integer(IV.Extent));
      if (IV.IsReduce)
        A.set("r", Json::boolean(true));
      Axes.push(std::move(A));
    }
    C.setAttr("axes", std::move(Axes));
    C.setAttr("expr", exprToJson(Op->Body));
    G.Ops.push_back(std::move(C));
  }
  for (const ir::Tensor &T : M.outputs())
    G.Outputs.push_back(T->Name);
  return G;
}

std::string moduleToCompositeJson(const ir::Module &M,
                                  const std::string &Name, bool Pretty) {
  return serializeComposite(moduleToComposite(M, Name), Pretty);
}

} // namespace composite
} // namespace akg
