//===- composite/Composite.h - Composite-subgraph JSON frontend -*- C++ -*-===//
//
// The production front door of the compile service (DESIGN.md 4j): a
// graph-kernel engine hands AKG fused subgraphs as JSON documents modeled
// on the MindSpore GraphKernel payloads ("Fused_Cast_BiasAdd_Gelu"-style:
// tensor descriptors, a topologically sortable op list with attributes,
// declared outputs). This layer parses and validates those payloads with
// structured Diags (never crashes on malformed input), normalizes them
// (composite/ElimTransform.h eliminates Reshape/Transpose/Cast chains
// before the polyhedral core), and lowers the survivors onto the ir::
// DSL, where the existing kernel-cache fingerprint triple deduplicates
// structurally identical requests.
//
// Two op encodings share the schema:
//   - a named vocabulary (Add, Cast, MatMul, ReduceSum, Gelu, ...) - the
//     form a graph engine emits, and the one the normalization pass
//     understands;
//   - a "Compute" escape hatch carrying an exact expression tree, which
//     makes *every* DSL module serializable. The verify oracle's
//     json_roundtrip config differentially tests parse(serialize(M))
//     against M across the whole fuzz corpus.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_COMPOSITE_COMPOSITE_H
#define AKG_COMPOSITE_COMPOSITE_H

#include "composite/Json.h"
#include "ir/Dsl.h"
#include "support/Status.h"

#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace composite {

/// One structured diagnostic: where in the payload ("op_desc[3].attr.perm")
/// and what went wrong. Malformed input produces these - never a throw,
/// never UB.
struct Diag {
  std::string Path;
  std::string Message;
  std::string str() const { return Path + ": " + Message; }
};

/// A tensor descriptor as declared in the payload.
struct TensorDesc {
  std::string Name;
  std::vector<int64_t> Shape;
  ir::DType Type = ir::DType::F16;

  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t S : Shape)
      N *= S;
    return N;
  }
};

/// One op input: a tensor reference or an inline scalar constant
/// ({"value": 0.5} entries, as in real GraphKernel payloads). After
/// transform elimination a tensor reference may carry a folded layout
/// permutation: the lowering then reads tensor Desc.Name with index k
/// taken from the consumer's axis ReadPerm[k] instead of materializing
/// the Transpose op.
struct InputRef {
  bool IsScalar = false;
  TensorDesc Desc;   // tensor reference (also carries the scalar's dtype)
  double Scalar = 0; // scalar constant value
  std::vector<unsigned> ReadPerm; // empty = identity access
};

struct Attr {
  std::string Name;
  Json Value;
};

struct CompositeOp {
  std::string Type; // "Add", "Cast", "MatMul", ..., "Compute"
  std::vector<InputRef> Inputs;
  TensorDesc Output;
  std::vector<Attr> Attrs;

  const Json *attr(const std::string &Name) const {
    for (const Attr &A : Attrs)
      if (A.Name == Name)
        return &A.Value;
    return nullptr;
  }
  void setAttr(const std::string &Name, Json V);
};

/// A validated composite subgraph: ops are in topological order, every
/// edge resolves, and every declared output is exactly one of the
/// unconsumed op outputs.
struct CompositeGraph {
  std::string Name = "composite_kernel";
  /// Optional compile target requested by the payload's top-level
  /// "target" key ("cce", "simt"); canonical spelling, empty when the
  /// payload left it out (the service then uses its AkgOptions default /
  /// AKG_TARGET). Unknown names are a $.target Diag at parse time.
  std::string Target;
  std::vector<TensorDesc> Inputs;
  std::vector<std::string> Outputs; // names of escaping op outputs
  std::vector<CompositeOp> Ops;
};

/// Payload safety caps (exceeding them is a clean Diag, not an OOM).
constexpr size_t kMaxOps = 512;
constexpr size_t kMaxTensors = 2048;
constexpr unsigned kMaxRank = 8;
constexpr int64_t kMaxDimExtent = int64_t(1) << 31;
constexpr int64_t kMaxTensorElems = int64_t(1) << 40;
constexpr unsigned kMaxExprDepth = 200;
constexpr size_t kMaxExprNodes = 1u << 16;

struct ParseResult {
  Status Outcome; // ok, or InvalidArgument carrying the first diagnostic
  std::vector<Diag> Diags;
  CompositeGraph Graph; // meaningful only when ok()
  bool ok() const { return Outcome.isOk(); }
};

/// Parses + validates one composite-subgraph JSON payload. All failure
/// modes - malformed JSON, wrong-typed fields, unknown ops, shape/edge
/// mismatches, cyclic graphs, cap violations - land in Diags.
ParseResult parseComposite(const std::string &JsonText);

/// Re-validates a hand-built (or pass-rewritten) graph in place,
/// topologically sorting Ops. Used by tests and by the lowering entry.
Status validateGraph(CompositeGraph &G, std::vector<Diag> &Diags);

/// Canonical serialization: fixed field order, canonical dtype names,
/// attrs sorted by name, ops in topological order. Two payloads with the
/// same canonical form lower to identical modules and therefore hit the
/// same kernel-cache fingerprint triple.
std::string serializeComposite(const CompositeGraph &G, bool Pretty = true);

/// --- Exact expression (de)serialization (the "Compute" encoding) -------
/// Every ExprNode field round-trips (kind, dtype, immediates, names,
/// reduce axes), so parse(serialize(M)) rebuilds a structurally identical
/// module: same fingerprint, same kernel bits.
Json exprToJson(const ir::Expr &E);
ir::Expr exprFromJson(const Json &J,
                      const std::map<std::string, ir::Tensor> &Tensors,
                      std::vector<Diag> &Diags, const std::string &Path);

/// Serializes any DSL module as a composite payload of Compute ops.
CompositeGraph moduleToComposite(const ir::Module &M,
                                 const std::string &Name);
std::string moduleToCompositeJson(const ir::Module &M,
                                  const std::string &Name,
                                  bool Pretty = false);

struct LowerResult {
  Status Outcome;
  std::vector<Diag> Diags;
  std::shared_ptr<ir::Module> Mod; // set when ok
  std::string KernelName;
  bool ok() const { return Outcome.isOk(); }
};

/// Lowers a composite graph onto the ir:: DSL. Validates first; any op
/// the vocabulary cannot express affinely (e.g. a dimension-merging
/// Reshape that survived normalization) is a clean Unsupported Diag.
LowerResult lowerToModule(const CompositeGraph &G);

/// --- Batched ingress ---------------------------------------------------
/// A graph engine compiles a whole network at once: a top-level JSON
/// *array* of composite payloads is one batch request. splitBatchPayload
/// classifies a payload and re-serializes each array element compactly so
/// the per-entry frontend (loadComposite) reports diagnostics scoped to
/// exactly one subgraph. Non-array payloads come back with IsBatch=false
/// and no Entries: the caller runs the ordinary single-payload path.
constexpr size_t kMaxBatchEntries = 256;

struct BatchSplit {
  Status Outcome; // ok unless the payload is unusable as a whole
  std::vector<Diag> Diags;
  bool IsBatch = false;
  std::vector<std::string> Entries; // compact per-entry payload texts
  bool ok() const { return Outcome.isOk(); }
};
BatchSplit splitBatchPayload(const std::string &JsonText);

/// The one-call front door: parse -> validate -> eliminate transform ops
/// -> lower. This is what CompileService::submitJson and the akg-compile
/// --json mode run.
struct FrontendResult {
  Status Outcome;
  std::vector<Diag> Diags;
  std::shared_ptr<ir::Module> Mod;
  std::string KernelName;
  CompositeGraph Normalized; // canonical post-normalization graph
  unsigned TransformOpsEliminated = 0;
  bool ok() const { return Outcome.isOk(); }
};
FrontendResult loadComposite(const std::string &JsonText);

/// Op-vocabulary classification shared by validation, normalization, and
/// lowering. "Elementwise" ops are lane-wise maps (legal targets for a
/// folded read permutation); "transform" ops are the data-movement noise
/// the normalization pass eliminates.
bool isElementwiseOp(const std::string &OpType);
bool isTransformOp(const std::string &OpType);
bool isKnownOp(const std::string &OpType);

/// Canonical dtype spelling ("float16" / "float32" / "int32" / "bool").
const char *dtypeText(ir::DType T);
/// Accepts the canonical spellings plus common aliases ("half", "fp32",
/// "float", "int32_t"); false on anything else.
bool dtypeFromText(const std::string &S, ir::DType &Out);

} // namespace composite
} // namespace akg

#endif // AKG_COMPOSITE_COMPOSITE_H
