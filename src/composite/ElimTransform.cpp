//===- composite/ElimTransform.cpp - Transform-op elimination -------------===//

#include "composite/ElimTransform.h"

#include "support/Stats.h"

#include <algorithm>
#include <map>
#include <set>

namespace akg {
namespace composite {

namespace {

/// True when every value of \p Narrow is exactly representable in \p Wide,
/// so Cast(Narrow -> Wide -> X) equals Cast(Narrow -> X).
bool exactlyRepresentable(ir::DType Wide, ir::DType Narrow) {
  if (Wide == Narrow)
    return true;
  if (Wide == ir::DType::F32 && Narrow == ir::DType::F16)
    return true;
  if (Narrow == ir::DType::Bool)
    return true;
  return false;
}

bool identityPerm(const std::vector<int64_t> &P) {
  for (size_t I = 0; I < P.size(); ++I)
    if (P[I] != static_cast<int64_t>(I))
      return false;
  return true;
}

bool permAttr(const CompositeOp &Op, std::vector<int64_t> &P) {
  const Json *J = Op.attr("perm");
  if (!J || !J->isArray())
    return false;
  P.clear();
  for (const Json &V : J->items()) {
    if (!V.isInt())
      return false;
    P.push_back(V.intValue());
  }
  return true;
}

Json permJson(const std::vector<int64_t> &P) {
  Json J = Json::array();
  for (int64_t V : P)
    J.push(Json::integer(V));
  return J;
}

struct Use {
  size_t OpIdx;
  size_t InputIdx;
};

struct GraphIndex {
  std::map<std::string, size_t> Producer;          // tensor -> op index
  std::map<std::string, std::vector<Use>> Uses;    // tensor -> consumers
  std::set<std::string> DeclaredOutputs;

  explicit GraphIndex(const CompositeGraph &G) {
    for (size_t I = 0; I < G.Ops.size(); ++I) {
      Producer[G.Ops[I].Output.Name] = I;
      for (size_t J = 0; J < G.Ops[I].Inputs.size(); ++J)
        if (!G.Ops[I].Inputs[J].IsScalar)
          Uses[G.Ops[I].Inputs[J].Desc.Name].push_back(Use{I, J});
    }
    DeclaredOutputs.insert(G.Outputs.begin(), G.Outputs.end());
  }
};

/// Redirects every consumer of \p From to read \p To instead (descriptor
/// swap; any folded ReadPerm on the consumer side is kept - the rewire is
/// only legal for identity transforms, where both layouts agree).
void rewire(CompositeGraph &G, const GraphIndex &Idx, const std::string &From,
            const TensorDesc &To) {
  auto It = Idx.Uses.find(From);
  if (It == Idx.Uses.end())
    return;
  for (const Use &U : It->second)
    G.Ops[U.OpIdx].Inputs[U.InputIdx].Desc = To;
}

/// One rewrite round; returns true when anything changed.
bool rewriteOnce(CompositeGraph &G) {
  GraphIndex Idx(G);
  for (size_t I = 0; I < G.Ops.size(); ++I) {
    CompositeOp &Op = G.Ops[I];
    if (!isTransformOp(Op.Type) || Op.Inputs.size() != 1 ||
        Op.Inputs[0].IsScalar)
      continue;
    const InputRef &In = Op.Inputs[0];
    bool IsDeclared = Idx.DeclaredOutputs.count(Op.Output.Name) != 0;

    // --- identity transforms -------------------------------------------
    bool Identity = false;
    if (Op.Type == "Cast")
      Identity = In.Desc.Type == Op.Output.Type;
    else if (Op.Type == "Reshape" || Op.Type == "BroadcastTo")
      Identity = In.Desc.Shape == Op.Output.Shape;
    else if (Op.Type == "Transpose") {
      std::vector<int64_t> P;
      Identity = permAttr(Op, P) && identityPerm(P);
    }
    if (Identity && !IsDeclared) {
      auto UIt = Idx.Uses.find(Op.Output.Name);
      if (UIt != Idx.Uses.end() && !UIt->second.empty()) {
        rewire(G, Idx, Op.Output.Name, In.Desc);
        return true;
      }
      continue; // already dead; the sweep collects it
    }

    // --- pair composition ----------------------------------------------
    auto PIt = Idx.Producer.find(In.Desc.Name);
    if (PIt != Idx.Producer.end()) {
      CompositeOp &Inner = G.Ops[PIt->second];
      if (Inner.Type == Op.Type && Inner.Inputs.size() == 1 &&
          !Inner.Inputs[0].IsScalar) {
        if (Op.Type == "Transpose") {
          std::vector<int64_t> P1, P2;
          if (permAttr(Inner, P1) && permAttr(Op, P2) &&
              P1.size() == P2.size()) {
            std::vector<int64_t> Composed(P2.size());
            for (size_t D = 0; D < P2.size(); ++D)
              Composed[D] = P1[P2[D]];
            Op.Inputs[0] = Inner.Inputs[0];
            Op.setAttr("perm", permJson(Composed));
            return true;
          }
        } else if (Op.Type == "Reshape" || Op.Type == "BroadcastTo") {
          Op.Inputs[0] = Inner.Inputs[0];
          return true;
        } else if (Op.Type == "Cast" &&
                   exactlyRepresentable(Inner.Output.Type,
                                        Inner.Inputs[0].Desc.Type)) {
          Op.Inputs[0] = Inner.Inputs[0];
          return true;
        }
      }
    }

    // --- fold Transpose into elementwise consumers ---------------------
    if (Op.Type == "Transpose" && !IsDeclared) {
      std::vector<int64_t> P;
      if (!permAttr(Op, P) || P.empty())
        continue;
      auto UIt = Idx.Uses.find(Op.Output.Name);
      if (UIt == Idx.Uses.end() || UIt->second.empty())
        continue;
      size_t Rank = Op.Output.Shape.size();
      bool AllFoldable = true;
      for (const Use &U : UIt->second) {
        const CompositeOp &C = G.Ops[U.OpIdx];
        if (!isElementwiseOp(C.Type) || C.Output.Shape.size() != Rank ||
            C.Output.Shape != Op.Output.Shape) {
          AllFoldable = false;
          break;
        }
      }
      if (!AllFoldable)
        continue;
      // inv[P[d]] = d: reading the transpose input at dim k uses the
      // consumer's axis inv[k] (composed through any existing ReadPerm).
      std::vector<unsigned> Inv(Rank);
      for (size_t D = 0; D < Rank; ++D)
        Inv[P[D]] = static_cast<unsigned>(D);
      for (const Use &U : UIt->second) {
        InputRef &R = G.Ops[U.OpIdx].Inputs[U.InputIdx];
        std::vector<unsigned> NewPerm(Rank);
        for (size_t K = 0; K < Rank; ++K)
          NewPerm[K] = R.ReadPerm.empty() ? Inv[K] : R.ReadPerm[Inv[K]];
        R.Desc = In.Desc;
        R.ReadPerm = identityPerm(std::vector<int64_t>(NewPerm.begin(),
                                                       NewPerm.end()))
                         ? std::vector<unsigned>()
                         : std::move(NewPerm);
      }
      return true;
    }
  }
  return false;
}

/// Sweeps ops whose outputs are neither consumed nor declared; returns the
/// number of *transform* ops removed.
unsigned sweepDead(CompositeGraph &G) {
  unsigned Removed = 0;
  bool Again = true;
  while (Again) {
    Again = false;
    std::set<std::string> Live(G.Outputs.begin(), G.Outputs.end());
    for (const CompositeOp &Op : G.Ops)
      for (const InputRef &R : Op.Inputs)
        if (!R.IsScalar)
          Live.insert(R.Desc.Name);
    for (size_t I = 0; I < G.Ops.size(); ++I) {
      if (Live.count(G.Ops[I].Output.Name))
        continue;
      if (isTransformOp(G.Ops[I].Type))
        ++Removed;
      G.Ops.erase(G.Ops.begin() + static_cast<long>(I));
      Again = true;
      break;
    }
  }
  return Removed;
}

} // namespace

unsigned eliminateTransformOps(CompositeGraph &G) {
  // Each successful rewrite strictly shrinks the graph or shortens a
  // transform chain, so a generous guard bounds the fixpoint loop.
  size_t Guard = 4 * G.Ops.size() + 8;
  while (Guard-- && rewriteOnce(G))
    ;
  unsigned N = sweepDead(G);
  if (N)
    Stats::get().add("composite.transform_ops_eliminated", N);
  return N;
}

} // namespace composite
} // namespace akg
