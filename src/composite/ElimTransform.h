//===- composite/ElimTransform.h - Transform-op elimination -----*- C++ -*-===//
//
// The normalization pass between parsing and polyhedral lowering: graph
// engines pad fused subgraphs with data-movement noise - Reshape /
// Transpose / Cast / BroadcastTo chains - that would otherwise turn into
// real loop nests and pollute the scheduler's search space. This pass
// rewrites a validated CompositeGraph so that noise never reaches
// PolyExtract:
//
//   - identity transforms (same-shape Reshape/BroadcastTo, identity-perm
//     Transpose, same-dtype Cast) are erased and their consumers rewired;
//   - adjacent pairs compose (Transpose o Transpose into one composed
//     perm, Reshape o Reshape into the final shape, Cast o Cast into a
//     single cast whenever the intermediate dtype represents the source
//     exactly - F32 holds F16, anything holds Bool);
//   - a surviving Transpose whose consumers are all full-rank elementwise
//     ops folds into their access maps (InputRef::ReadPerm) instead of
//     materializing a permuted copy;
//   - dead transform ops are swept, each sweep incrementing the
//     composite.transform_ops_eliminated Stats counter.
//
// Ops producing declared graph outputs are never eliminated. The rewrite
// is semantics-preserving under the reference evaluator (casts evaluate
// value-preserving; permutations only relabel access order).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_COMPOSITE_ELIMTRANSFORM_H
#define AKG_COMPOSITE_ELIMTRANSFORM_H

#include "composite/Composite.h"

namespace akg {
namespace composite {

/// Normalizes \p G in place; expects a graph validateGraph() accepted
/// (topo-sorted, resolved edges). Returns the number of transform ops
/// removed (also added to the composite.transform_ops_eliminated counter).
/// The caller should re-run validateGraph afterwards as a safety net.
unsigned eliminateTransformOps(CompositeGraph &G);

} // namespace composite
} // namespace akg

#endif // AKG_COMPOSITE_ELIMTRANSFORM_H
