//===- composite/Json.cpp - Bounds-checked JSON parser + writer -----------===//

#include "composite/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace akg {
namespace composite {

std::string JsonError::str() const {
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "line %zu col %zu: ", Line, Col);
  return Buf + Message;
}

namespace {

class JsonReader {
public:
  JsonReader(const std::string &Text, JsonError &Err)
      : Text(Text), Err(Err) {}

  bool run(Json &Out) {
    if (Text.size() > kJsonMaxBytes)
      return fail(0, "payload exceeds size limit");
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail(Pos, "trailing characters after JSON value");
    return true;
  }

private:
  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  bool fail(size_t At, const std::string &Msg) {
    Err.Line = 1;
    Err.Col = 1;
    for (size_t I = 0; I < At && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Err.Line;
        Err.Col = 1;
      } else {
        ++Err.Col;
      }
    }
    Err.Message = Msg;
    return false;
  }

  void skipWs() {
    while (!eof()) {
      char C = peek();
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool literal(const char *Word) {
    size_t N = std::strlen(Word);
    if (Pos + N > Text.size() || Text.compare(Pos, N, Word) != 0)
      return fail(Pos, std::string("invalid literal (expected '") + Word +
                           "')");
    Pos += N;
    return true;
  }

  bool countNode() {
    if (++Nodes > kJsonMaxNodes)
      return fail(Pos, "payload exceeds value-count limit");
    return true;
  }

  bool parseValue(Json &Out, unsigned Depth) {
    if (Depth > kJsonMaxDepth)
      return fail(Pos, "nesting exceeds depth limit");
    if (!countNode())
      return false;
    if (eof())
      return fail(Pos, "unexpected end of input (expected a value)");
    switch (peek()) {
    case 'n':
      Out = Json::null();
      return literal("null");
    case 't':
      Out = Json::boolean(true);
      return literal("true");
    case 'f':
      Out = Json::boolean(false);
      return literal("false");
    case '"':
      return parseString(Out);
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseHex4(uint32_t &V) {
    if (Pos + 4 > Text.size())
      return fail(Pos, "truncated \\u escape");
    V = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      V <<= 4;
      if (C >= '0' && C <= '9')
        V |= static_cast<uint32_t>(C - '0');
      else if (C >= 'a' && C <= 'f')
        V |= static_cast<uint32_t>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        V |= static_cast<uint32_t>(C - 'A' + 10);
      else
        return fail(Pos - 1, "invalid hex digit in \\u escape");
    }
    return true;
  }

  static void appendUtf8(std::string &S, uint32_t CP) {
    if (CP < 0x80) {
      S += static_cast<char>(CP);
    } else if (CP < 0x800) {
      S += static_cast<char>(0xC0 | (CP >> 6));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      S += static_cast<char>(0xE0 | (CP >> 12));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (CP >> 18));
      S += static_cast<char>(0x80 | ((CP >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((CP >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (CP & 0x3F));
    }
  }

  bool parseString(Json &Out) {
    ++Pos; // opening quote
    std::string S;
    while (true) {
      if (eof())
        return fail(Pos, "unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        break;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail(Pos - 1, "unescaped control character in string");
      if (C != '\\') {
        S += C;
        continue;
      }
      if (eof())
        return fail(Pos, "truncated escape sequence");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        S += '"';
        break;
      case '\\':
        S += '\\';
        break;
      case '/':
        S += '/';
        break;
      case 'b':
        S += '\b';
        break;
      case 'f':
        S += '\f';
        break;
      case 'n':
        S += '\n';
        break;
      case 'r':
        S += '\r';
        break;
      case 't':
        S += '\t';
        break;
      case 'u': {
        uint32_t CP = 0;
        if (!parseHex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // High surrogate: a low surrogate must follow.
          if (Pos + 1 >= Text.size() || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail(Pos, "high surrogate without low surrogate");
          Pos += 2;
          uint32_t Lo = 0;
          if (!parseHex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail(Pos - 4, "invalid low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail(Pos - 4, "lone low surrogate");
        }
        appendUtf8(S, CP);
        break;
      }
      default:
        return fail(Pos - 1, "invalid escape character");
      }
    }
    Out = Json::str(std::move(S));
    return true;
  }

  bool parseNumber(Json &Out) {
    size_t Start = Pos;
    if (!eof() && peek() == '-')
      ++Pos;
    bool Digits = false;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      ++Pos;
      Digits = true;
    }
    bool Integral = true;
    if (!eof() && peek() == '.') {
      Integral = false;
      ++Pos;
      bool Frac = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++Pos;
        Frac = true;
      }
      if (!Frac)
        return fail(Pos, "digit expected after decimal point");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      Integral = false;
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      bool Exp = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++Pos;
        Exp = true;
      }
      if (!Exp)
        return fail(Pos, "digit expected in exponent");
    }
    if (!Digits)
      return fail(Start, "invalid character (expected a value)");
    std::string Tok = Text.substr(Start, Pos - Start);
    if (Integral) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (errno == 0 && End && *End == '\0') {
        Out = Json::integer(static_cast<int64_t>(V));
        return true;
      }
      // Out-of-range integers fall through to double.
    }
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    if (!End || *End != '\0')
      return fail(Start, "malformed number");
    if (!std::isfinite(D))
      return fail(Start, "number out of range");
    Out = Json::number(D);
    return true;
  }

  bool parseArray(Json &Out, unsigned Depth) {
    ++Pos; // '['
    Out = Json::array();
    skipWs();
    if (!eof() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Json V;
      skipWs();
      if (!parseValue(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWs();
      if (eof())
        return fail(Pos, "unterminated array");
      char C = Text[Pos++];
      if (C == ']')
        return true;
      if (C != ',')
        return fail(Pos - 1, "expected ',' or ']' in array");
    }
  }

  bool parseObject(Json &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = Json::object();
    skipWs();
    if (!eof() && peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"')
        return fail(Pos, "expected string key in object");
      Json Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (eof() || Text[Pos] != ':')
        return fail(Pos, "expected ':' after object key");
      ++Pos;
      skipWs();
      Json V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.set(Key.stringValue(), std::move(V));
      skipWs();
      if (eof())
        return fail(Pos, "unterminated object");
      char C = Text[Pos++];
      if (C == '}')
        return true;
      if (C != ',')
        return fail(Pos - 1, "expected ',' or '}' in object");
    }
  }

  const std::string &Text;
  JsonError &Err;
  size_t Pos = 0;
  size_t Nodes = 0;
};

/// Shortest decimal form of \p V that strtod parses back to the same
/// bits. %.17g always round-trips; try shorter forms first so golden
/// files stay readable.
std::string doubleText(double V) {
  char Buf[40];
  for (int Prec = 15; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof Buf, "%.*g", Prec, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  // JSON has no inf/nan; clamp to the largest finite literal (the
  // composite layer never emits non-finite values, this is a backstop).
  if (!std::isfinite(V))
    std::snprintf(Buf, sizeof Buf, "%s1e308", V < 0 ? "-" : "");
  std::string S = Buf;
  // Ensure a double stays a double on re-parse.
  if (S.find_first_of(".eE") == std::string::npos)
    S += ".0";
  return S;
}

void escapeInto(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void dumpInto(std::string &Out, const Json &V, bool Pretty, unsigned Indent) {
  auto Newline = [&](unsigned Level) {
    if (!Pretty)
      return;
    Out += '\n';
    Out.append(2 * Level, ' ');
  };
  switch (V.kind()) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += V.boolValue() ? "true" : "false";
    break;
  case Json::Kind::Number:
    if (V.isInt()) {
      char Buf[24];
      std::snprintf(Buf, sizeof Buf, "%lld",
                    static_cast<long long>(V.intValue()));
      Out += Buf;
    } else {
      Out += doubleText(V.numberValue());
    }
    break;
  case Json::Kind::String:
    escapeInto(Out, V.stringValue());
    break;
  case Json::Kind::Array: {
    if (V.items().empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I < V.items().size(); ++I) {
      if (I)
        Out += Pretty ? "," : ",";
      Newline(Indent + 1);
      dumpInto(Out, V.items()[I], Pretty, Indent + 1);
    }
    Newline(Indent);
    Out += ']';
    break;
  }
  case Json::Kind::Object: {
    if (V.members().empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < V.members().size(); ++I) {
      if (I)
        Out += ",";
      Newline(Indent + 1);
      escapeInto(Out, V.members()[I].first);
      Out += Pretty ? ": " : ":";
      dumpInto(Out, V.members()[I].second, Pretty, Indent + 1);
    }
    Newline(Indent);
    Out += '}';
    break;
  }
  }
}

} // namespace

bool parseJson(const std::string &Text, Json &Out, JsonError &Err) {
  return JsonReader(Text, Err).run(Out);
}

std::string dumpJson(const Json &V, bool Pretty) {
  std::string Out;
  dumpInto(Out, V, Pretty, 0);
  return Out;
}

} // namespace composite
} // namespace akg
