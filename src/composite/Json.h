//===- composite/Json.h - Bounds-checked JSON for the frontend --*- C++ -*-===//
//
// A small, dependency-free JSON value + recursive-descent parser for the
// composite-subgraph ingress (DESIGN.md 4j). The parser is the first thing
// untrusted network payloads hit, so it is written to *reject*, never to
// crash: every read is bounds-checked, nesting depth and total node count
// are capped, and any malformed byte produces a JsonError with line/column
// instead of an exception or UB. The writer round-trips doubles exactly
// (shortest representation that parses back to the same bits), which the
// composite round-trip differential in src/verify depends on.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_COMPOSITE_JSON_H
#define AKG_COMPOSITE_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace akg {
namespace composite {

/// One JSON value. Arrays and objects own their children by value;
/// object member order is preserved (canonical serialization depends on
/// it). Numbers remember whether they were written as integers so shapes
/// and extents survive exactly.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, Json>;

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool V) {
    Json J;
    J.K = Kind::Bool;
    J.BoolVal = V;
    return J;
  }
  static Json number(double V) {
    Json J;
    J.K = Kind::Number;
    J.Num = V;
    return J;
  }
  static Json integer(int64_t V) {
    Json J;
    J.K = Kind::Number;
    J.Num = static_cast<double>(V);
    J.Int = V;
    J.IsInt = true;
    return J;
  }
  static Json str(std::string V) {
    Json J;
    J.K = Kind::String;
    J.Str = std::move(V);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  /// Written as an integer literal and representable in int64.
  bool isInt() const { return K == Kind::Number && IsInt; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return BoolVal; }
  double numberValue() const { return Num; }
  int64_t intValue() const { return Int; }
  const std::string &stringValue() const { return Str; }

  const std::vector<Json> &items() const { return Items; }
  const std::vector<Member> &members() const { return Members; }

  /// First member named \p Key, or null when absent / not an object.
  const Json *find(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    for (const Member &M : Members)
      if (M.first == Key)
        return &M.second;
    return nullptr;
  }

  Json &push(Json V) {
    Items.push_back(std::move(V));
    return Items.back();
  }
  Json &set(std::string Key, Json V) {
    Members.emplace_back(std::move(Key), std::move(V));
    return Members.back().second;
  }

private:
  friend class JsonParser;
  Kind K = Kind::Null;
  bool BoolVal = false;
  double Num = 0;
  int64_t Int = 0;
  bool IsInt = false;
  std::string Str;
  std::vector<Json> Items;
  std::vector<Member> Members;
};

/// Where and why a parse failed (1-based line/column of the offending
/// byte).
struct JsonError {
  size_t Line = 0;
  size_t Col = 0;
  std::string Message;
  std::string str() const;
};

/// Hard limits the parser enforces (a payload exceeding them is rejected,
/// not truncated): nesting depth, total value count, and input size.
constexpr unsigned kJsonMaxDepth = 64;
constexpr size_t kJsonMaxNodes = 1u << 20;
constexpr size_t kJsonMaxBytes = 64u << 20;

/// Parses \p Text into \p Out. Returns false and fills \p Err on any
/// malformed input; never throws, never reads out of bounds.
bool parseJson(const std::string &Text, Json &Out, JsonError &Err);

/// Serializes \p V. Pretty mode indents with two spaces (the golden-file
/// format); compact mode has no whitespace. Doubles print with the
/// shortest decimal form that parses back bit-identically.
std::string dumpJson(const Json &V, bool Pretty = false);

} // namespace composite
} // namespace akg

#endif // AKG_COMPOSITE_JSON_H
