//===- composite/Lower.cpp - CompositeGraph -> ir::Module lowering --------===//
//
// Lowers a validated composite graph onto the tensor-expression DSL. Every
// named op becomes one ComputeOp; accesses stay affine (PolyExtract asserts
// on anything else), which is why dimension-merging Reshapes that survive
// normalization are rejected with a clean Unsupported Diag instead of being
// lowered: only split-type reshapes (each input dim = a consecutive run of
// output dims) have linear read indices.
//
//===----------------------------------------------------------------------===//

#include "composite/Composite.h"
#include "composite/ElimTransform.h"

#include "ir/ModuleUtils.h"

#include <cctype>
#include <map>

namespace akg {
namespace composite {

namespace {

ir::Expr scalarLiteral(const InputRef &R) {
  if (R.Desc.Type == ir::DType::I32 || R.Desc.Type == ir::DType::Bool)
    return ir::intImm(static_cast<int64_t>(R.Scalar), R.Desc.Type);
  return ir::floatImm(R.Scalar, R.Desc.Type);
}

ir::Expr zeroOf(ir::DType T) {
  if (T == ir::DType::I32 || T == ir::DType::Bool)
    return ir::intImm(0, T);
  return ir::floatImm(0, T);
}

/// Builds the read of one op input at the consumer's axis vars \p Ix
/// (consumer output shape \p Out): scalar literal, folded-permutation
/// access, or right-aligned broadcast access.
ir::Expr readInput(const InputRef &R,
                   const std::map<std::string, ir::Tensor> &T,
                   const std::vector<ir::Expr> &Ix,
                   const std::vector<int64_t> &Out) {
  if (R.IsScalar)
    return scalarLiteral(R);
  const ir::Tensor &Ten = T.at(R.Desc.Name);
  std::vector<ir::Expr> Idx;
  if (!R.ReadPerm.empty()) {
    for (unsigned A : R.ReadPerm)
      Idx.push_back(Ix[A]);
    return ir::tensorRead(Ten, std::move(Idx));
  }
  size_t Off = Out.size() - Ten->Shape.size();
  for (size_t K = 0; K < Ten->Shape.size(); ++K) {
    if (Ten->Shape[K] == 1 && Out[Off + K] != 1)
      Idx.push_back(ir::intImm(0));
    else
      Idx.push_back(Ix[Off + K]);
  }
  return ir::tensorRead(Ten, std::move(Idx));
}

/// gelu(x) = 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
ir::Expr geluExpand(ir::Expr X, ir::DType T) {
  ir::Expr X3 = ir::mul(ir::mul(X, X), X);
  ir::Expr Inner =
      ir::add(X, ir::mul(ir::floatImm(0.044715, T), X3));
  ir::Expr Tanh = ir::call(
      "tanh", {ir::mul(ir::floatImm(0.7978845608028654, T), Inner)}, T);
  return ir::mul(ir::mul(ir::floatImm(0.5, T), X),
                 ir::add(ir::floatImm(1.0, T), Tanh));
}

/// Split-type reshape decomposition: maps each input dim onto a
/// consecutive run [RunBegin, RunEnd) of output dims whose extents
/// multiply to it. Returns false for merge-type reshapes (non-affine).
bool splitRuns(const std::vector<int64_t> &In, const std::vector<int64_t> &Out,
               std::vector<std::pair<size_t, size_t>> &Runs) {
  size_t Cursor = 0;
  for (int64_t E : In) {
    size_t Begin = Cursor;
    int64_t Prod = 1;
    while (Prod < E && Cursor < Out.size())
      Prod *= Out[Cursor++];
    if (Prod != E)
      return false;
    Runs.emplace_back(Begin, Cursor);
  }
  for (; Cursor < Out.size(); ++Cursor)
    if (Out[Cursor] != 1)
      return false;
  return true;
}

struct Lowerer {
  const CompositeGraph &G;
  std::shared_ptr<ir::Module> M;
  std::map<std::string, ir::Tensor> T;
  std::vector<Diag> &D;
  Status Err;

  Lowerer(const CompositeGraph &G, std::vector<Diag> &D)
      : G(G), M(std::make_shared<ir::Module>()), D(D) {}

  void fail(const std::string &Path, ErrCode C, const std::string &Msg) {
    D.push_back(Diag{Path, Msg});
    if (Err.isOk())
      Err = Status::error(C, Path + ": " + Msg);
  }

  void lowerOp(const CompositeOp &Op, const std::string &Path) {
    const std::string &Ty = Op.Type;
    const std::vector<int64_t> &OS = Op.Output.Shape;
    auto In = [&](size_t I, const std::vector<ir::Expr> &Ix) {
      return readInput(Op.Inputs[I], T, Ix, OS);
    };
    ir::Tensor Result;

    if (Ty == "Compute") {
      const Json *AxesJ = Op.attr("axes");
      const Json *ExprJ = Op.attr("expr");
      std::vector<ir::IterVar> Axes;
      for (const Json &A : AxesJ->items()) {
        bool IsRed = A.find("r") && A.find("r")->isBool() &&
                     A.find("r")->boolValue();
        Axes.push_back(ir::IterVar{A.find("n")->stringValue(),
                                   A.find("e")->intValue(), IsRed});
      }
      ir::Expr Body = exprFromJson(*ExprJ, T, D, Path + ".expr");
      if (!Body) {
        if (Err.isOk())
          Err = Status::error(ErrCode::InvalidArgument,
                              Path + ": invalid Compute expr");
        return;
      }
      Result = M->computeRaw(Op.Output.Name, std::move(Axes), Body,
                             Op.Output.Type);
    } else if (Ty == "Add" || Ty == "Sub" || Ty == "Mul" || Ty == "Div" ||
               Ty == "Maximum" || Ty == "Minimum" || Ty == "Less" ||
               Ty == "LessEqual" || Ty == "Equal") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            ir::Expr A = In(0, Ix), B = In(1, Ix);
            if (Ty == "Add")
              return ir::add(A, B);
            if (Ty == "Sub")
              return ir::sub(A, B);
            if (Ty == "Mul")
              return ir::mul(A, B);
            if (Ty == "Div")
              return ir::binary(ir::ExprKind::Div, A, B);
            if (Ty == "Maximum")
              return ir::maxE(A, B);
            if (Ty == "Minimum")
              return ir::minE(A, B);
            if (Ty == "Less")
              return ir::cmp(ir::ExprKind::CmpLT, A, B);
            if (Ty == "LessEqual")
              return ir::cmp(ir::ExprKind::CmpLE, A, B);
            return ir::cmp(ir::ExprKind::CmpEQ, A, B);
          },
          Op.Output.Type);
    } else if (Ty == "Select") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return ir::select(In(0, Ix), In(1, Ix), In(2, Ix));
          },
          Op.Output.Type);
    } else if (Ty == "Neg") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return ir::sub(zeroOf(Op.Output.Type), In(0, Ix));
          },
          Op.Output.Type);
    } else if (Ty == "Exp" || Ty == "Log" || Ty == "Sqrt" || Ty == "Rsqrt" ||
               Ty == "Abs" || Ty == "Relu" || Ty == "Sigmoid" ||
               Ty == "Tanh") {
      std::string Fn = Ty;
      for (char &C : Fn)
        C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return ir::call(Fn, {In(0, Ix)}, Op.Output.Type);
          },
          Op.Output.Type);
    } else if (Ty == "Gelu") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return geluExpand(In(0, Ix), Op.Output.Type);
          },
          Op.Output.Type);
    } else if (Ty == "Cast") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return ir::cast(Op.Output.Type, In(0, Ix));
          },
          Op.Output.Type);
    } else if (Ty == "Transpose") {
      std::vector<int64_t> Perm;
      for (const Json &V : Op.attr("perm")->items())
        Perm.push_back(V.intValue());
      // out[I] = in[J] with J[perm[d]] = I[d]: index k of the input uses
      // the output axis inv[k].
      std::vector<size_t> Inv(Perm.size());
      for (size_t Dd = 0; Dd < Perm.size(); ++Dd)
        Inv[Perm[Dd]] = Dd;
      const ir::Tensor &Src = T.at(Op.Inputs[0].Desc.Name);
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            std::vector<ir::Expr> Idx;
            for (size_t K = 0; K < Inv.size(); ++K)
              Idx.push_back(Ix[Inv[K]]);
            return ir::tensorRead(Src, std::move(Idx));
          },
          Op.Output.Type);
    } else if (Ty == "Reshape") {
      const std::vector<int64_t> &IS = Op.Inputs[0].Desc.Shape;
      std::vector<std::pair<size_t, size_t>> Runs;
      if (!splitRuns(IS, OS, Runs)) {
        fail(Path, ErrCode::Unsupported,
             "dimension-merging Reshape " + std::string("(") +
                 std::to_string(IS.size()) + "d -> " +
                 std::to_string(OS.size()) +
                 "d) has non-affine accesses; it must cancel during "
                 "normalization to be compilable");
        return;
      }
      const ir::Tensor &Src = T.at(Op.Inputs[0].Desc.Name);
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            std::vector<ir::Expr> Idx;
            for (size_t Dd = 0; Dd < Runs.size(); ++Dd) {
              auto [B, E] = Runs[Dd];
              if (B == E) {
                Idx.push_back(ir::intImm(0));
                continue;
              }
              ir::Expr Lin;
              int64_t Stride = 1;
              for (size_t J = E; J-- > B;) {
                ir::Expr Term =
                    Stride == 1 ? Ix[J]
                                : ir::mul(Ix[J], ir::intImm(Stride));
                Lin = Lin ? ir::add(Term, Lin) : Term;
                Stride *= OS[J];
              }
              Idx.push_back(Lin);
            }
            return ir::tensorRead(Src, std::move(Idx));
          },
          Op.Output.Type);
    } else if (Ty == "BroadcastTo") {
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) { return In(0, Ix); },
          Op.Output.Type);
    } else if (Ty == "BiasAdd") {
      const ir::Tensor &Bias = T.at(Op.Inputs[1].Desc.Name);
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            return ir::add(In(0, Ix), ir::tensorRead(Bias, {Ix.back()}));
          },
          Op.Output.Type);
    } else if (Ty == "MatMul") {
      bool TA = Op.attr("transpose_a") && Op.attr("transpose_a")->boolValue();
      bool TB = Op.attr("transpose_b") && Op.attr("transpose_b")->boolValue();
      const TensorDesc &AD = Op.Inputs[0].Desc;
      int64_t KExt = TA ? AD.Shape[0] : AD.Shape[1];
      ir::IterVar KV = M->reduceAxis(KExt, Op.Output.Name + "_k");
      const ir::Tensor &A = T.at(Op.Inputs[0].Desc.Name);
      const ir::Tensor &B = T.at(Op.Inputs[1].Desc.Name);
      bool Widen = Op.Output.Type == ir::DType::F32 &&
                   AD.Type == ir::DType::F16;
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            ir::Expr KX = ir::var(KV.Name);
            ir::Expr AR = TA ? ir::tensorRead(A, {KX, Ix[0]})
                             : ir::tensorRead(A, {Ix[0], KX});
            ir::Expr BR = TB ? ir::tensorRead(B, {Ix[1], KX})
                             : ir::tensorRead(B, {KX, Ix[1]});
            ir::Expr Prod = ir::mul(AR, BR);
            if (Widen)
              Prod = ir::cast(ir::DType::F32, Prod);
            return ir::reduce(ir::ReduceKind::Sum, Prod, {KV});
          },
          Op.Output.Type);
    } else if (Ty == "ReduceSum" || Ty == "ReduceMax" || Ty == "ReduceMin") {
      const std::vector<int64_t> &IS = Op.Inputs[0].Desc.Shape;
      const Json *AJ = Op.attr("axis");
      std::vector<int64_t> Axes;
      if (AJ->isInt())
        Axes.push_back(AJ->intValue());
      else
        for (const Json &V : AJ->items())
          Axes.push_back(V.intValue());
      bool KeepDims =
          Op.attr("keep_dims") && Op.attr("keep_dims")->boolValue();
      std::vector<bool> Red(IS.size(), false);
      for (int64_t A : Axes)
        Red[A < 0 ? A + static_cast<int64_t>(IS.size()) : A] = true;
      ir::ReduceKind RK = Ty == "ReduceSum"   ? ir::ReduceKind::Sum
                          : Ty == "ReduceMax" ? ir::ReduceKind::Max
                                              : ir::ReduceKind::Min;
      std::vector<ir::IterVar> RVs;
      for (size_t Dd = 0; Dd < IS.size(); ++Dd)
        if (Red[Dd])
          RVs.push_back(M->reduceAxis(
              IS[Dd], Op.Output.Name + "_r" + std::to_string(Dd)));
      const ir::Tensor &Src = T.at(Op.Inputs[0].Desc.Name);
      Result = M->compute(
          Op.Output.Name, OS,
          [&](const std::vector<ir::Expr> &Ix) {
            std::vector<ir::Expr> Idx;
            size_t OutPos = 0, RPos = 0;
            for (size_t Dd = 0; Dd < IS.size(); ++Dd) {
              if (Red[Dd]) {
                Idx.push_back(ir::var(RVs[RPos++].Name));
                if (KeepDims)
                  ++OutPos; // skip the unit output axis
              } else {
                Idx.push_back(Ix[OutPos++]);
              }
            }
            return ir::reduce(RK, ir::tensorRead(Src, std::move(Idx)), RVs);
          },
          Op.Output.Type);
    } else {
      fail(Path, ErrCode::Unsupported, "no lowering for op '" + Ty + "'");
      return;
    }
    T[Result->Name] = Result;
  }
};

} // namespace

LowerResult lowerToModule(const CompositeGraph &GIn) {
  LowerResult R;
  CompositeGraph G = GIn; // validateGraph canonicalizes (topo sort) in place
  Status S = validateGraph(G, R.Diags);
  if (!S.isOk()) {
    R.Outcome = S;
    return R;
  }
  Lowerer L(G, R.Diags);
  for (const TensorDesc &TD : G.Inputs)
    L.T[TD.Name] = L.M->placeholder(TD.Name, TD.Shape, TD.Type);
  for (size_t I = 0; I < G.Ops.size(); ++I) {
    L.lowerOp(G.Ops[I], "$.op_desc[" + std::to_string(I) + "]");
    if (!L.Err.isOk()) {
      R.Outcome = L.Err;
      return R;
    }
  }
  // Post-lowering safety net: a frontend bug must never smuggle an
  // out-of-bounds access into the polyhedral core.
  std::string Bounds = ir::checkModuleBounds(*L.M);
  if (!Bounds.empty()) {
    R.Diags.push_back(Diag{"$", "lowering produced unsafe reads: " + Bounds});
    R.Outcome = Status::error(ErrCode::Internal, Bounds);
    return R;
  }
  R.Mod = L.M;
  R.KernelName = G.Name;
  R.Outcome = Status::ok();
  return R;
}

BatchSplit splitBatchPayload(const std::string &JsonText) {
  BatchSplit B;
  B.Outcome = Status::ok();
  Json Root;
  JsonError JE;
  if (!parseJson(JsonText, Root, JE)) {
    // Leave malformed text to the single-payload path so its diagnostics
    // stay in one place (parseComposite reports the same JsonError).
    return B;
  }
  if (!Root.isArray())
    return B;
  B.IsBatch = true;
  if (Root.items().size() > kMaxBatchEntries) {
    B.Diags.push_back(Diag{"$", "batch has " +
                                    std::to_string(Root.items().size()) +
                                    " entries (max " +
                                    std::to_string(kMaxBatchEntries) + ")"});
    B.Outcome =
        Status::error(ErrCode::InvalidArgument, B.Diags.front().str());
    return B;
  }
  B.Entries.reserve(Root.items().size());
  for (const Json &Item : Root.items())
    B.Entries.push_back(dumpJson(Item, /*Pretty=*/false));
  return B;
}

FrontendResult loadComposite(const std::string &JsonText) {
  FrontendResult F;
  ParseResult P = parseComposite(JsonText);
  F.Diags = std::move(P.Diags);
  if (!P.ok()) {
    F.Outcome = P.Outcome;
    return F;
  }
  F.Normalized = std::move(P.Graph);
  F.TransformOpsEliminated = eliminateTransformOps(F.Normalized);
  LowerResult L = lowerToModule(F.Normalized);
  F.Diags.insert(F.Diags.end(), L.Diags.begin(), L.Diags.end());
  F.Outcome = L.Outcome;
  F.Mod = L.Mod;
  F.KernelName = L.KernelName;
  return F;
}

} // namespace composite
} // namespace akg
