//===- graph/Graph.cpp - Graph engine (lite) ------------------------------===//

#include "graph/Graph.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace akg {
namespace graph {

using namespace ir;

unsigned CompGraph::addInput(std::string Name, std::vector<int64_t> Shape) {
  GraphNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  N.Kind = OpKind::Input;
  N.Name = Name.empty() ? "in" + std::to_string(N.Id) : std::move(Name);
  N.Shape = std::move(Shape);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

unsigned CompGraph::addElementwise(std::string Fn,
                                   std::vector<unsigned> Inputs,
                                   std::string Name) {
  assert(!Inputs.empty());
  GraphNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  N.Kind = OpKind::Elementwise;
  N.Fn = std::move(Fn);
  N.Inputs = std::move(Inputs);
  N.Shape = Nodes[N.Inputs[0]].Shape;
  N.Name = Name.empty() ? N.Fn + std::to_string(N.Id) : std::move(Name);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

unsigned CompGraph::addConv(unsigned Input, int64_t Co, int64_t KH,
                            int64_t KW, int64_t Stride, int64_t Pad,
                            std::string Name) {
  const GraphNode &In = Nodes[Input];
  assert(In.Shape.size() == 4 && "conv input must be NCHW");
  GraphNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  N.Kind = OpKind::Conv;
  N.Inputs = {Input};
  N.KH = KH;
  N.KW = KW;
  N.Stride = Stride;
  N.Pad = Pad;
  int64_t Ho = (In.Shape[2] + 2 * Pad - KH) / Stride + 1;
  int64_t Wo = (In.Shape[3] + 2 * Pad - KW) / Stride + 1;
  N.Shape = {In.Shape[0], Co, Ho, Wo};
  N.Name = Name.empty() ? "conv" + std::to_string(N.Id) : std::move(Name);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

unsigned CompGraph::addMatmul(unsigned A, unsigned B, std::string Name) {
  const GraphNode &NA = Nodes[A];
  const GraphNode &NB = Nodes[B];
  assert(NA.Shape.size() == 2 && NB.Shape.size() == 2 &&
         NA.Shape[1] == NB.Shape[0] && "matmul shape mismatch");
  GraphNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  N.Kind = OpKind::Matmul;
  N.Inputs = {A, B};
  N.K = NA.Shape[1];
  N.Shape = {NA.Shape[0], NB.Shape[1]};
  N.Name = Name.empty() ? "mm" + std::to_string(N.Id) : std::move(Name);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

unsigned CompGraph::addReduce(unsigned Input, std::string Name) {
  const GraphNode &In = Nodes[Input];
  GraphNode N;
  N.Id = static_cast<unsigned>(Nodes.size());
  N.Kind = OpKind::Reduce;
  N.Inputs = {Input};
  N.Shape = {In.Shape.size() >= 2 ? In.Shape[1] : In.Shape[0]};
  N.Name = Name.empty() ? "red" + std::to_string(N.Id) : std::move(Name);
  Nodes.push_back(std::move(N));
  return Nodes.back().Id;
}

unsigned CompGraph::consumersOf(unsigned Id) const {
  unsigned N = 0;
  for (const GraphNode &G : Nodes)
    for (unsigned I : G.Inputs)
      if (I == Id)
        ++N;
  return N;
}

std::vector<FusionGroup> CompGraph::partition() const {
  std::vector<FusionGroup> Groups;
  std::vector<bool> Assigned(Nodes.size(), false);
  for (const GraphNode &N : Nodes)
    if (N.Kind == OpKind::Input)
      Assigned[N.Id] = true;
  // Walk in topological (id) order; start a group at each unassigned node
  // and absorb single-consumer elementwise successors greedily.
  for (const GraphNode &N : Nodes) {
    if (Assigned[N.Id])
      continue;
    FusionGroup G;
    G.Nodes.push_back(N.Id);
    Assigned[N.Id] = true;
    G.HasAnchor = N.Kind == OpKind::Conv || N.Kind == OpKind::Matmul;
    // Absorb the elementwise chain rooted at this node.
    unsigned Frontier = N.Id;
    while (true) {
      int Next = -1;
      for (const GraphNode &C : Nodes) {
        if (Assigned[C.Id] || C.Kind != OpKind::Elementwise)
          continue;
        bool Consumes = false;
        for (unsigned I : C.Inputs)
          if (I == Frontier)
            Consumes = true;
        bool AllInputsReady = true;
        for (unsigned I : C.Inputs)
          if (!Assigned[I] &&
              std::find(G.Nodes.begin(), G.Nodes.end(), I) == G.Nodes.end())
            AllInputsReady = false;
        if (Consumes && AllInputsReady && consumersOf(Frontier) == 1) {
          Next = static_cast<int>(C.Id);
          break;
        }
      }
      if (Next < 0)
        break;
      G.Nodes.push_back(static_cast<unsigned>(Next));
      Assigned[Next] = true;
      Frontier = static_cast<unsigned>(Next);
    }
    Groups.push_back(std::move(G));
  }
  return Groups;
}

std::shared_ptr<Module> CompGraph::emitModule(const FusionGroup &G) const {
  auto M = std::make_shared<Module>();
  std::map<unsigned, Tensor> TensorOf;
  std::set<unsigned> InGroup(G.Nodes.begin(), G.Nodes.end());
  // Placeholders for everything the group reads from outside.
  auto Materialize = [&](unsigned Id) -> Tensor {
    auto It = TensorOf.find(Id);
    if (It != TensorOf.end())
      return It->second;
    const GraphNode &N = Nodes[Id];
    Tensor T = M->placeholder(N.Name, N.Shape,
                              N.Kind == OpKind::Matmul ||
                                      N.Kind == OpKind::Conv
                                  ? DType::F32
                                  : DType::F16);
    TensorOf[Id] = T;
    return T;
  };
  for (unsigned Id : G.Nodes) {
    const GraphNode &N = Nodes[Id];
    std::vector<Tensor> Ins;
    for (unsigned I : N.Inputs)
      Ins.push_back(Materialize(I));
    switch (N.Kind) {
    case OpKind::Elementwise: {
      Tensor Out = M->compute(N.Name, N.Shape,
                              [&](const std::vector<Expr> &I) -> Expr {
                                Expr A = tensorRead(Ins[0], I);
                                if (N.Fn == "add")
                                  return Ins.size() > 1
                                             ? add(A, tensorRead(Ins[1], I))
                                             : add(A, floatImm(1.0));
                                if (N.Fn == "mul")
                                  return Ins.size() > 1
                                             ? mul(A, tensorRead(Ins[1], I))
                                             : mul(A, floatImm(0.5));
                                return call(N.Fn, {A}, DType::F16);
                              });
      TensorOf[Id] = Out;
      break;
    }
    case OpKind::Conv: {
      const GraphNode &In = Nodes[N.Inputs[0]];
      Tensor Wt = M->placeholder(N.Name + "_w",
                                 {N.Shape[1], In.Shape[1], N.KH, N.KW});
      IterVar Rc = M->reduceAxis(In.Shape[1], N.Name + "_rc");
      IterVar Rh = M->reduceAxis(N.KH, N.Name + "_rh");
      IterVar Rw = M->reduceAxis(N.KW, N.Name + "_rw");
      int64_t H = In.Shape[2], W = In.Shape[3];
      int64_t Stride = N.Stride, Pad = N.Pad;
      Tensor Out = M->compute(
          N.Name, N.Shape, [&](const std::vector<Expr> &Ix) {
            Expr Hh = sub(add(mul(Ix[2], intImm(Stride)),
                              var(N.Name + "_rh")),
                          intImm(Pad));
            Expr Ww = sub(add(mul(Ix[3], intImm(Stride)),
                              var(N.Name + "_rw")),
                          intImm(Pad));
            Expr Read =
                tensorRead(Ins[0], {Ix[0], var(N.Name + "_rc"), Hh, Ww});
            if (Pad > 0) {
              Expr InB = binary(
                  ExprKind::And,
                  binary(ExprKind::And,
                         cmp(ExprKind::CmpLE, intImm(0), Hh),
                         cmp(ExprKind::CmpLT, Hh, intImm(H))),
                  binary(ExprKind::And,
                         cmp(ExprKind::CmpLE, intImm(0), Ww),
                         cmp(ExprKind::CmpLT, Ww, intImm(W))));
              Read = select(InB, Read, floatImm(0.0));
            }
            return reduce(ReduceKind::Sum,
                          mul(Read, tensorRead(Wt, {Ix[1],
                                                    var(N.Name + "_rc"),
                                                    var(N.Name + "_rh"),
                                                    var(N.Name + "_rw")})),
                          {Rc, Rh, Rw});
          },
          DType::F32);
      TensorOf[Id] = Out;
      break;
    }
    case OpKind::Matmul: {
      IterVar K = M->reduceAxis(N.K, N.Name + "_k");
      Tensor Out = M->compute(
          N.Name, N.Shape, [&](const std::vector<Expr> &I) {
            return reduce(ReduceKind::Sum,
                          mul(tensorRead(Ins[0], {I[0], var(N.Name + "_k")}),
                              tensorRead(Ins[1],
                                         {var(N.Name + "_k"), I[1]})),
                          {K});
          },
          DType::F32);
      TensorOf[Id] = Out;
      break;
    }
    case OpKind::Reduce: {
      const GraphNode &In = Nodes[N.Inputs[0]];
      std::vector<IterVar> Red;
      std::vector<std::string> RNames;
      for (unsigned D = 0; D < In.Shape.size(); ++D)
        if (D != 1) {
          RNames.push_back(N.Name + "_r" + std::to_string(D));
          Red.push_back(M->reduceAxis(In.Shape[D], RNames.back()));
        }
      Tensor Out = M->compute(
          N.Name, N.Shape, [&](const std::vector<Expr> &I) {
            std::vector<Expr> Idx;
            unsigned R = 0;
            for (unsigned D = 0; D < In.Shape.size(); ++D)
              Idx.push_back(D == 1 ? I[0] : var(RNames[R++]));
            return reduce(ReduceKind::Sum, tensorRead(Ins[0], Idx), Red);
          },
          DType::F32);
      TensorOf[Id] = Out;
      break;
    }
    case OpKind::Input:
    case OpKind::Transpose:
      assert(false && "unexpected node kind in group");
      break;
    }
  }
  return M;
}

} // namespace graph
} // namespace akg
