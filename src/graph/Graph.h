//===- graph/Graph.h - Graph engine (lite) ----------------------*- C++ -*-===//
//
// A small computation-graph layer standing in for the MindSpore/TVM graph
// engine AKG sits under (Sec 2/3): networks are DAGs of operator nodes;
// the engine partitions them into fused subgraphs (one kernel each) by
// greedily grouping elementwise/broadcast operators around compute
// anchors, then emits one DSL Module per group for the tensor compiler.
// This reproduces the paper's "ability to fuse any subgraphs into fewer
// operators" at the granularity the evaluation needs.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_GRAPH_GRAPH_H
#define AKG_GRAPH_GRAPH_H

#include "ir/Dsl.h"

#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace graph {

enum class OpKind {
  Input,
  Conv,      // anchor (Cube)
  Matmul,    // anchor (Cube)
  Elementwise, // relu/add/mul/... (fusable)
  Reduce,      // bn-reduce style (fusable tail)
  Transpose,   // layout op (own kernel)
};

struct GraphNode {
  unsigned Id = 0;
  OpKind Kind = OpKind::Elementwise;
  std::string Name;
  std::string Fn; // intrinsic for elementwise ("relu", "add", "mul", ...)
  std::vector<unsigned> Inputs;
  std::vector<int64_t> Shape; // output shape
  // Conv/Matmul parameters.
  int64_t KH = 1, KW = 1, Stride = 1, Pad = 0, K = 0;
};

/// One fused group: the node ids, in topological order.
struct FusionGroup {
  std::vector<unsigned> Nodes;
  bool HasAnchor = false;
};

class CompGraph {
public:
  unsigned addInput(std::string Name, std::vector<int64_t> Shape);
  unsigned addElementwise(std::string Fn, std::vector<unsigned> Inputs,
                          std::string Name = "");
  unsigned addConv(unsigned Input, int64_t Co, int64_t KH, int64_t KW,
                   int64_t Stride, int64_t Pad, std::string Name = "");
  unsigned addMatmul(unsigned A, unsigned B, std::string Name = "");
  unsigned addReduce(unsigned Input, std::string Name = "");

  const std::vector<GraphNode> &nodes() const { return Nodes; }

  /// Greedy anchor-based partitioning: each Cube anchor absorbs its
  /// elementwise consumers; remaining elementwise chains form vector
  /// groups.
  std::vector<FusionGroup> partition() const;

  /// Emits the DSL module of one group (placeholders for group inputs).
  std::shared_ptr<ir::Module> emitModule(const FusionGroup &G) const;

private:
  std::vector<GraphNode> Nodes;
  unsigned consumersOf(unsigned Id) const;
};

} // namespace graph
} // namespace akg

#endif // AKG_GRAPH_GRAPH_H
