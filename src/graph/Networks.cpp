//===- graph/Networks.cpp - End-to-end network models ---------------------===//

#include "graph/Networks.h"

namespace akg {
namespace graph {

namespace {

/// Elementwise block (BN-apply + activation + residual) on an NCHW shape.
ModulePtr vectorBlock(std::vector<int64_t> S) {
  auto M = std::make_shared<ir::Module>();
  using namespace ir;
  Tensor X = M->placeholder("X", S);
  Tensor R = M->placeholder("R", S);
  Tensor Sc = M->placeholder("sc", {S[1]});
  Tensor T1 = M->compute("bnap", S, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(X, I), tensorRead(Sc, {I[1]}));
  });
  Tensor T2 = M->compute("res", S, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T1, I), tensorRead(R, I));
  });
  M->compute("act", S, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(T2, I)}, DType::F16);
  });
  return M;
}

/// Softmax-style normalization over (Rows, Cols).
ModulePtr softmaxBlock(int64_t Rows, int64_t Cols) {
  auto M = std::make_shared<ir::Module>();
  using namespace ir;
  Tensor X = M->placeholder("X", {Rows, Cols}, DType::F32);
  IterVar Rd = M->reduceAxis(Cols, "rd");
  Tensor Mx = M->compute("mx", {Rows}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Max, tensorRead(X, {I[0], var("rd")}), {Rd});
  }, DType::F32);
  Tensor Ex = M->compute("ex", {Rows, Cols},
                         [&](const std::vector<Expr> &I) {
                           return call("exp",
                                       {sub(tensorRead(X, I),
                                            tensorRead(Mx, {I[0]}))},
                                       DType::F32);
                         }, DType::F32);
  IterVar Rd2 = M->reduceAxis(Cols, "rd2");
  Tensor Sm = M->compute("sm", {Rows}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(Ex, {I[0], var("rd2")}),
                  {Rd2});
  }, DType::F32);
  M->compute("pr", {Rows, Cols}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(Ex, I),
               call("recip", {tensorRead(Sm, {I[0]})}, DType::F32));
  }, DType::F32);
  return M;
}

} // namespace

NetworkModel buildResNet50() {
  NetworkModel N;
  N.Name = "ResNet-50";
  // Stem + the four stages (spatial extents halved; batch 16).
  N.Layers.push_back({"stem_conv7x7",
                      makeConv(16, 3, 112, 112, 64, 7, 7, 2, 3), 1});
  N.Layers.push_back({"stage1_conv1x1",
                      makeConv(16, 64, 28, 28, 64, 1, 1, 1, 0), 9});
  N.Layers.push_back({"stage1_conv3x3",
                      makeConv(16, 64, 28, 28, 64, 3, 3, 1, 1), 3});
  N.Layers.push_back({"stage2_conv3x3",
                      makeConv(16, 128, 14, 14, 128, 3, 3, 1, 1), 4});
  N.Layers.push_back({"stage2_conv1x1",
                      makeConv(16, 128, 14, 14, 256, 1, 1, 1, 0), 8});
  N.Layers.push_back({"stage3_conv3x3",
                      makeConv(16, 256, 7, 7, 256, 3, 3, 1, 1), 6});
  N.Layers.push_back({"stage4_conv3x3",
                      makeConv(16, 512, 4, 4, 512, 3, 3, 1, 1), 3});
  N.Layers.push_back({"bn_relu_block", vectorBlock({16, 64, 28, 28}), 16});
  N.Layers.push_back({"bn_relu_deep", vectorBlock({16, 256, 7, 7}), 16});
  N.Layers.push_back({"fc", makeMatmul(16, 1000, 2048), 1});
  return N;
}

NetworkModel buildMobileNetV2() {
  NetworkModel N;
  N.Name = "MobileNet-v2";
  N.Layers.push_back({"expand_1x1",
                      makeConv(16, 32, 28, 28, 96, 1, 1, 1, 0), 8});
  N.Layers.push_back({"project_1x1",
                      makeConv(16, 96, 28, 28, 32, 1, 1, 1, 0), 8});
  N.Layers.push_back({"dw_approx_3x3",
                      makeConv(16, 1, 56, 56, 16, 3, 3, 1, 1), 6});
  N.Layers.push_back({"relu6_block", vectorBlock({16, 96, 28, 28}), 17});
  N.Layers.push_back({"head_fc", makeMatmul(16, 1000, 1280), 1});
  return N;
}

NetworkModel buildAlexNet() {
  NetworkModel N;
  N.Name = "AlexNet";
  N.Layers.push_back({"conv1",
                      makeConv(16, 3, 56, 56, 64, 11, 11, 4, 2), 1});
  N.Layers.push_back({"conv2",
                      makeConv(16, 64, 13, 13, 192, 5, 5, 1, 2), 1});
  N.Layers.push_back({"conv3",
                      makeConv(16, 192, 6, 6, 384, 3, 3, 1, 1), 1});
  N.Layers.push_back({"conv4",
                      makeConv(16, 384, 6, 6, 256, 3, 3, 1, 1), 1});
  N.Layers.push_back({"conv5",
                      makeConv(16, 256, 6, 6, 256, 3, 3, 1, 1), 1});
  N.Layers.push_back({"relu_block", vectorBlock({16, 192, 6, 6}), 5});
  N.Layers.push_back({"fc6", makeMatmul(16, 4096, 4608), 1});
  N.Layers.push_back({"fc7", makeMatmul(16, 4096, 4096), 1});
  N.Layers.push_back({"fc8", makeMatmul(16, 1000, 4096), 1});
  return N;
}

NetworkModel buildBert(int64_t Vocab) {
  NetworkModel N;
  N.Name = "BERT-" + std::to_string(Vocab);
  int64_t Seq = 512, Hid = 1024; // batch*seq rows = 512 (scaled)
  // Per encoder layer (12 layers, scaled from 24):
  N.Layers.push_back({"qkv_proj", makeMatmul(Seq, Hid, Hid), 12 * 4});
  N.Layers.push_back({"attn_bmm", makeBatchMatmul(16, 64, 64, 64), 12 * 2});
  N.Layers.push_back({"attn_softmax", softmaxBlock(Seq, Seq), 12});
  N.Layers.push_back({"ffn_in", makeMatmul(Seq, 4 * Hid, Hid), 12});
  N.Layers.push_back({"ffn_out", makeMatmul(Seq, Hid, 4 * Hid), 12});
  N.Layers.push_back({"gelu_ln", makeSubgraph4(2), 12});
  // Vocabulary projection dominates the tail (and differs per version).
  N.Layers.push_back({"vocab_proj", makeMatmul(Seq, Vocab, Hid), 1});
  N.Layers.push_back({"vocab_softmax", softmaxBlock(Seq, Vocab), 1});
  return N;
}

NetworkModel buildSsd() {
  NetworkModel N;
  N.Name = "SSD";
  // Backbone (VGG-ish, scaled).
  N.Layers.push_back({"bb_conv3x3_a",
                      makeConv(16, 64, 38, 38, 64, 3, 3, 1, 1), 4});
  N.Layers.push_back({"bb_conv3x3_b",
                      makeConv(16, 128, 19, 19, 128, 3, 3, 1, 1), 4});
  N.Layers.push_back({"bb_conv1x1",
                      makeConv(16, 256, 10, 10, 256, 1, 1, 1, 0), 4});
  // Detection heads: many small divergent vector subgraphs.
  N.Layers.push_back({"head_decode", makeSubgraph5(), 24});
  N.Layers.push_back({"head_clip", vectorBlock({16, 24, 19, 19}), 12});
  N.Layers.push_back({"head_softmax", softmaxBlock(1536, 81), 6});
  return N;
}

} // namespace graph
} // namespace akg
