//===- graph/Networks.h - End-to-end network models -------------*- C++ -*-===//
//
// The five end-to-end workloads of Fig 13 as layer-workload tables: each
// network is the list of distinct fused subgraphs the graph engine
// produces, with its occurrence count per training step. Spatial extents
// are scaled down 2x from the real models to keep the simulator fast on a
// single host core (documented in DESIGN.md); the mix of cube vs vector
// work and the fusion structure - which is what the evaluation compares -
// is preserved. Batch size is 16 throughout, as in the paper.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_GRAPH_NETWORKS_H
#define AKG_GRAPH_NETWORKS_H

#include "graph/Ops.h"

namespace akg {
namespace graph {

struct LayerWorkload {
  std::string Name;
  ModulePtr Mod;
  unsigned Count = 1; // occurrences per training step
};

struct NetworkModel {
  std::string Name;
  std::vector<LayerWorkload> Layers;
};

NetworkModel buildResNet50();
NetworkModel buildMobileNetV2();
NetworkModel buildAlexNet();
/// BERT with the given vocabulary size (the paper evaluates 21128 and
/// 30522).
NetworkModel buildBert(int64_t Vocab);
NetworkModel buildSsd();

} // namespace graph
} // namespace akg

#endif // AKG_GRAPH_NETWORKS_H
