//===- graph/Ops.cpp - Operator and subgraph builders ---------------------===//

#include "graph/Ops.h"

#include <cassert>

namespace akg {
namespace graph {

using namespace ir;

ModulePtr makeConv(int64_t N, int64_t Ci, int64_t H, int64_t W, int64_t Co,
                   int64_t KH, int64_t KW, int64_t Stride, int64_t Pad) {
  auto M = std::make_shared<Module>();
  int64_t Ho = (H + 2 * Pad - KH) / Stride + 1;
  int64_t Wo = (W + 2 * Pad - KW) / Stride + 1;
  Tensor I = M->placeholder("I", {N, Ci, H, W});
  Tensor Wt = M->placeholder("Wt", {Co, Ci, KH, KW});
  IterVar Rc = M->reduceAxis(Ci, "rc");
  IterVar Rh = M->reduceAxis(KH, "rh");
  IterVar Rw = M->reduceAxis(KW, "rw");
  M->compute("O", {N, Co, Ho, Wo}, [&](const std::vector<Expr> &Ix) {
    Expr Hh = sub(add(mul(Ix[2], intImm(Stride)), var("rh")), intImm(Pad));
    Expr Ww = sub(add(mul(Ix[3], intImm(Stride)), var("rw")), intImm(Pad));
    Expr Read = tensorRead(I, {Ix[0], var("rc"), Hh, Ww});
    if (Pad > 0) {
      Expr InB = binary(
          ExprKind::And,
          binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Hh),
                 cmp(ExprKind::CmpLT, Hh, intImm(H))),
          binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Ww),
                 cmp(ExprKind::CmpLT, Ww, intImm(W))));
      Read = select(InB, Read, floatImm(0.0));
    }
    return reduce(ReduceKind::Sum,
                  mul(Read, tensorRead(Wt, {Ix[1], var("rc"), var("rh"),
                                            var("rw")})),
                  {Rc, Rh, Rw});
  }, DType::F32);
  return M;
}

ModulePtr makeMatmul(int64_t Mm, int64_t N, int64_t K, DType Out) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", {Mm, K});
  Tensor B = M->placeholder("B", {K, N});
  IterVar Rk = M->reduceAxis(K, "k");
  M->compute("C", {Mm, N}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], var("k")}),
                      tensorRead(B, {var("k"), I[1]})),
                  {Rk});
  }, Out);
  return M;
}

ModulePtr makeRelu(std::vector<int64_t> Shape) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", Shape);
  M->compute("B", Shape, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(A, I)}, DType::F16);
  });
  return M;
}

ModulePtr makeBatchMatmul(int64_t B, int64_t Mm, int64_t N, int64_t K) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", {B, Mm, K});
  Tensor Bt = M->placeholder("B", {B, K, N});
  IterVar Rk = M->reduceAxis(K, "k");
  M->compute("C", {B, Mm, N}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], I[1], var("k")}),
                      tensorRead(Bt, {I[0], var("k"), I[2]})),
                  {Rk});
  }, DType::F32);
  return M;
}

ModulePtr makeCast(std::vector<int64_t> Shape) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", Shape, DType::F16);
  M->compute("B", Shape, [&](const std::vector<Expr> &I) {
    return cast(DType::F32, tensorRead(A, I));
  }, DType::F32);
  return M;
}

ModulePtr makeTranspose(int64_t N, int64_t Mm) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", {N, Mm});
  M->compute("B", {Mm, N}, [&](const std::vector<Expr> &I) {
    return tensorRead(A, {I[1], I[0]});
  });
  return M;
}

ModulePtr makeOneHot(int64_t N, int64_t Depth) {
  auto M = std::make_shared<Module>();
  Tensor Idx = M->placeholder("idx", {N}, DType::I32);
  M->compute("OH", {N, Depth}, [&](const std::vector<Expr> &I) {
    return select(cmp(ExprKind::CmpEQ, tensorRead(Idx, {I[0]}),
                      cast(DType::F32, I[1])),
                  floatImm(1.0), floatImm(0.0));
  });
  return M;
}

ModulePtr makeTensorAdd(std::vector<int64_t> Shape) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", Shape);
  Tensor B = M->placeholder("B", Shape);
  M->compute("C", Shape, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, I), tensorRead(B, I));
  });
  return M;
}

ModulePtr makeBnReduce(int64_t N, int64_t C, int64_t H, int64_t W) {
  auto M = std::make_shared<Module>();
  Tensor X = M->placeholder("X", {N, C, H, W});
  IterVar Rn = M->reduceAxis(N, "rn");
  IterVar Rh = M->reduceAxis(H, "rh");
  IterVar Rw = M->reduceAxis(W, "rw");
  M->compute("Sum", {C}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  tensorRead(X, {var("rn"), I[0], var("rh"), var("rw")}),
                  {Rn, Rh, Rw});
  }, DType::F32);
  IterVar Rn2 = M->reduceAxis(N, "rn2");
  IterVar Rh2 = M->reduceAxis(H, "rh2");
  IterVar Rw2 = M->reduceAxis(W, "rw2");
  M->compute("SqSum", {C}, [&](const std::vector<Expr> &I) {
    Expr V = tensorRead(X, {var("rn2"), I[0], var("rh2"), var("rw2")});
    return reduce(ReduceKind::Sum, mul(V, V), {Rn2, Rh2, Rw2});
  }, DType::F32);
  return M;
}

ModulePtr makeBnUpdate(int64_t N, int64_t C, int64_t H, int64_t W) {
  auto M = std::make_shared<Module>();
  Tensor X = M->placeholder("X", {N, C, H, W});
  Tensor Mean = M->placeholder("mean", {C}, DType::F32);
  Tensor Var = M->placeholder("var", {C}, DType::F32);
  Tensor Gamma = M->placeholder("gamma", {C}, DType::F32);
  Tensor Beta = M->placeholder("beta", {C}, DType::F32);
  Tensor Rstd = M->compute("rstd", {C}, [&](const std::vector<Expr> &I) {
    return call("rsqrt",
                {add(tensorRead(Var, {I[0]}), floatImm(1e-5, DType::F32))},
                DType::F32);
  }, DType::F32);
  M->compute("Y", {N, C, H, W}, [&](const std::vector<Expr> &I) {
    Expr Norm = mul(sub(tensorRead(X, I), tensorRead(Mean, {I[1]})),
                    tensorRead(Rstd, {I[1]}));
    return add(mul(Norm, tensorRead(Gamma, {I[1]})),
               tensorRead(Beta, {I[1]}));
  });
  return M;
}

//===----------------------------------------------------------------------===//
// Table 1 subgraphs
//===----------------------------------------------------------------------===//

ModulePtr makeSubgraph1(int64_t Scale) {
  // 6 elementwise ops on (16,16,512,512) FP16 (ResNet-style BN-apply +
  // residual + activation fusion).
  std::vector<int64_t> S = {16, 16, 512 / Scale, 512 / Scale};
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", S);
  Tensor B = M->placeholder("B", S);
  Tensor T1 = M->compute("t1", S, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(A, I), floatImm(0.5));
  });
  Tensor T2 = M->compute("t2", S, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T1, I), tensorRead(B, I));
  });
  Tensor T3 = M->compute("t3", S, [&](const std::vector<Expr> &I) {
    return call("abs", {tensorRead(T2, I)}, DType::F16);
  });
  Tensor T4 = M->compute("t4", S, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T3, I), tensorRead(T1, I));
  });
  Tensor T5 = M->compute("t5", S, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(T4, I), floatImm(6.0));
  });
  M->compute("out", S, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(T5, I)}, DType::F16);
  });
  return M;
}

ModulePtr makeSubgraph2(int64_t Scale) {
  // 21 ops, FP16, (256,512,16,16): a BN-folded residual block tail - a
  // long fused chain of elementwise ops with broadcast scale/shift.
  std::vector<int64_t> S = {256 / Scale, 512 / Scale, 16, 16};
  auto M = std::make_shared<Module>();
  Tensor X = M->placeholder("X", S);
  Tensor R = M->placeholder("Res", S);
  Tensor Sc = M->placeholder("scale", {S[1]});
  Tensor Sh = M->placeholder("shift", {S[1]});
  Tensor Cur = X;
  // 18 alternating elementwise steps.
  for (int I2 = 0; I2 < 6; ++I2) {
    Tensor A = M->compute("sc" + std::to_string(I2), S,
                          [&](const std::vector<Expr> &I) {
                            return mul(tensorRead(Cur, I),
                                       tensorRead(Sc, {I[1]}));
                          });
    Tensor B = M->compute("sh" + std::to_string(I2), S,
                          [&](const std::vector<Expr> &I) {
                            return add(tensorRead(A, I),
                                       tensorRead(Sh, {I[1]}));
                          });
    Cur = M->compute("act" + std::to_string(I2), S,
                     [&](const std::vector<Expr> &I) {
                       return call("relu", {tensorRead(B, I)}, DType::F16);
                     });
  }
  Tensor Sum = M->compute("residual", S, [&](const std::vector<Expr> &I) {
    return add(tensorRead(Cur, I), tensorRead(R, I));
  });
  Tensor Clip = M->compute("clip", S, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(Sum, I), floatImm(65504.0));
  });
  M->compute("out", S, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(Clip, I)}, DType::F16);
  });
  return M;
}

ModulePtr makeSubgraph3(int64_t Scale) {
  // 15 ops, FP32, (30522,1024): BERT vocab-side normalization (softmax
  // cross-entropy style): row max, shifted exp, row sum, normalize, log.
  int64_t V = 30522 / Scale, D = 1024 / Scale;
  auto M = std::make_shared<Module>();
  Tensor X0 = M->placeholder("X", {V, D}, DType::F32);
  Tensor G = M->placeholder("gain", {D}, DType::F32);
  Tensor Xs = M->compute("prescale", {V, D}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(X0, I), tensorRead(G, {I[1]}));
  }, DType::F32);
  Tensor Xb = M->compute("preshift", {V, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(Xs, I), floatImm(0.01, DType::F32));
  }, DType::F32);
  Tensor X = M->compute("clipin", {V, D}, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(Xb, I), floatImm(30.0, DType::F32));
  }, DType::F32);
  IterVar Rd = M->reduceAxis(D, "rd");
  Tensor Mx = M->compute("rowmax", {V}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Max, tensorRead(X, {I[0], var("rd")}), {Rd});
  }, DType::F32);
  Tensor Sh = M->compute("shift", {V, D}, [&](const std::vector<Expr> &I) {
    return sub(tensorRead(X, I), tensorRead(Mx, {I[0]}));
  }, DType::F32);
  Tensor Ex = M->compute("expv", {V, D}, [&](const std::vector<Expr> &I) {
    return call("exp", {tensorRead(Sh, I)}, DType::F32);
  }, DType::F32);
  IterVar Rd2 = M->reduceAxis(D, "rd2");
  Tensor Sm = M->compute("rowsum", {V}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(Ex, {I[0], var("rd2")}),
                  {Rd2});
  }, DType::F32);
  Tensor Rc = M->compute("recip", {V}, [&](const std::vector<Expr> &I) {
    return call("recip", {tensorRead(Sm, {I[0]})}, DType::F32);
  }, DType::F32);
  Tensor Pr = M->compute("prob", {V, D}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(Ex, I), tensorRead(Rc, {I[0]}));
  }, DType::F32);
  Tensor Lg = M->compute("logp", {V, D}, [&](const std::vector<Expr> &I) {
    return call("log", {add(tensorRead(Pr, I), floatImm(1e-9, DType::F32))},
                DType::F32);
  }, DType::F32);
  Tensor Nl = M->compute("nll", {V, D}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(Lg, I), floatImm(-1.0, DType::F32));
  }, DType::F32);
  Tensor Cl = M->compute("clipout", {V, D}, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(Nl, I), floatImm(100.0, DType::F32));
  }, DType::F32);
  Tensor Ab = M->compute("absout", {V, D}, [&](const std::vector<Expr> &I) {
    return call("abs", {tensorRead(Cl, I)}, DType::F32);
  }, DType::F32);
  Tensor Scl = M->compute("scaled", {V, D}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(Ab, I), floatImm(1.0 / 1024.0, DType::F32));
  }, DType::F32);
  M->compute("outcast", {V, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(Scl, I), floatImm(0.0, DType::F32));
  }, DType::F32);
  return M;
}

ModulePtr makeSubgraph4(int64_t Scale) {
  // 11 ops, FP32, (1024,1024): dense layer epilogue - matmul + bias + GELU
  // approximation chain.
  int64_t D = 1024 / Scale;
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", {D, D});
  Tensor B = M->placeholder("B", {D, D});
  Tensor Bias = M->placeholder("bias", {D}, DType::F32);
  IterVar K = M->reduceAxis(D, "k");
  Tensor C = M->compute("mm", {D, D}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], var("k")}),
                      tensorRead(B, {var("k"), I[1]})),
                  {K});
  }, DType::F32);
  Tensor T1 = M->compute("biased", {D, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(C, I), tensorRead(Bias, {I[1]}));
  }, DType::F32);
  Tensor T2 = M->compute("x3", {D, D}, [&](const std::vector<Expr> &I) {
    Expr X = tensorRead(T1, I);
    return mul(mul(X, X), X);
  }, DType::F32);
  Tensor T3 = M->compute("inner", {D, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T1, I),
               mul(tensorRead(T2, I), floatImm(0.044715, DType::F32)));
  }, DType::F32);
  Tensor T4 = M->compute("tanhv", {D, D}, [&](const std::vector<Expr> &I) {
    return call("tanh",
                {mul(tensorRead(T3, I), floatImm(0.7978845, DType::F32))},
                DType::F32);
  }, DType::F32);
  Tensor T5 = M->compute("half", {D, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T4, I), floatImm(1.0, DType::F32));
  }, DType::F32);
  Tensor T6 = M->compute("gelu", {D, D}, [&](const std::vector<Expr> &I) {
    return mul(mul(tensorRead(T1, I), floatImm(0.5, DType::F32)),
               tensorRead(T5, I));
  }, DType::F32);
  Tensor Res = M->placeholder("residual", {D, D}, DType::F32);
  Tensor T7 = M->compute("drop", {D, D}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(T6, I), floatImm(0.9, DType::F32));
  }, DType::F32);
  Tensor T8 = M->compute("addres", {D, D}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T7, I), tensorRead(Res, I));
  }, DType::F32);
  Tensor T9 = M->compute("clip", {D, D}, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(T8, I), floatImm(1e4, DType::F32));
  }, DType::F32);
  M->compute("outact", {D, D}, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(T9, I)}, DType::F32);
  }, DType::F32);
  return M;
}

ModulePtr makeSubgraph5(int64_t Scale) {
  // 9 ops, FP16, (64,1,16,16): SSD prediction-head style small vector ops.
  (void)Scale;
  std::vector<int64_t> S = {64, 1, 16, 16};
  auto M = std::make_shared<Module>();
  Tensor X = M->placeholder("X", S);
  Tensor P = M->placeholder("prior", S);
  Tensor T0 = M->compute("v0", S, [&](const std::vector<Expr> &I) {
    return sub(tensorRead(X, I), floatImm(0.5));
  });
  Tensor T1 = M->compute("v1", S, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(T0, I), floatImm(0.1));
  });
  Tensor T2 = M->compute("v2", S, [&](const std::vector<Expr> &I) {
    return call("exp", {tensorRead(T1, I)}, DType::F16);
  });
  Tensor T3 = M->compute("v3", S, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(T2, I), tensorRead(P, I));
  });
  Tensor T4 = M->compute("v4", S, [&](const std::vector<Expr> &I) {
    return add(tensorRead(T3, I), tensorRead(P, I));
  });
  Tensor T5 = M->compute("v5", S, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(T4, I), floatImm(0.5));
  });
  Tensor T6 = M->compute("v6", S, [&](const std::vector<Expr> &I) {
    return maxE(tensorRead(T5, I), floatImm(0.0));
  });
  Tensor T7 = M->compute("v7", S, [&](const std::vector<Expr> &I) {
    return minE(tensorRead(T6, I), floatImm(1.0));
  });
  M->compute("out", S, [&](const std::vector<Expr> &I) {
    return call("sigmoid", {tensorRead(T7, I)}, DType::F16);
  });
  return M;
}

unsigned opCount(const ir::Module &M) {
  return static_cast<unsigned>(M.ops().size());
}

} // namespace graph
} // namespace akg
