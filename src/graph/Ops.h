//===- graph/Ops.h - Operator and subgraph builders -------------*- C++ -*-===//
//
// DSL builders for every workload of the evaluation: the ten single
// operators of Fig 9, the GEMM family of Fig 11, and the five fused
// subgraphs of Table 1 / Fig 12. The graph engine and the network models
// (Fig 13) compose these.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_GRAPH_OPS_H
#define AKG_GRAPH_OPS_H

#include "ir/Dsl.h"

#include <memory>
#include <string>

namespace akg {
namespace graph {

using ModulePtr = std::shared_ptr<ir::Module>;

/// --- Fig 9 single operators ---------------------------------------------
/// op1: 2D convolution, NCHW.
ModulePtr makeConv(int64_t N, int64_t Ci, int64_t H, int64_t W, int64_t Co,
                   int64_t KH, int64_t KW, int64_t Stride = 1,
                   int64_t Pad = 0);
/// op2: matrix multiplication.
ModulePtr makeMatmul(int64_t M, int64_t N, int64_t K,
                     ir::DType Out = ir::DType::F32);
/// op3: ReLU.
ModulePtr makeRelu(std::vector<int64_t> Shape);
/// op4: batched matrix multiplication.
ModulePtr makeBatchMatmul(int64_t B, int64_t M, int64_t N, int64_t K);
/// op5: cast FP16 -> FP32.
ModulePtr makeCast(std::vector<int64_t> Shape);
/// op6: 2D transpose.
ModulePtr makeTranspose(int64_t N, int64_t M);
/// op7: one-hot.
ModulePtr makeOneHot(int64_t N, int64_t Depth);
/// op8: tensor addition.
ModulePtr makeTensorAdd(std::vector<int64_t> Shape);
/// op9: BatchNorm training reduction (per-channel sum + square-sum).
ModulePtr makeBnReduce(int64_t N, int64_t C, int64_t H, int64_t W);
/// op10: BatchNorm training update (normalize + scale + shift).
ModulePtr makeBnUpdate(int64_t N, int64_t C, int64_t H, int64_t W);

/// --- Table 1 subgraphs ----------------------------------------------------
/// subgraph1: 6 elementwise ops, FP16, (16,16,512,512).
ModulePtr makeSubgraph1(int64_t Scale = 1);
/// subgraph2: 21 ops (conv + BN-style chain), FP16, (256,512,16,16).
ModulePtr makeSubgraph2(int64_t Scale = 1);
/// subgraph3: 15 ops (softmax-style normalization), FP32, (30522,1024).
ModulePtr makeSubgraph3(int64_t Scale = 1);
/// subgraph4: 11 ops (matmul + bias + layernorm-style), FP32, (1024,1024).
ModulePtr makeSubgraph4(int64_t Scale = 1);
/// subgraph5: 9 small vector ops, FP16, (64,1,16,16).
ModulePtr makeSubgraph5(int64_t Scale = 1);

/// Number of DSL operators in a module (Table 1's "# of ops").
unsigned opCount(const ir::Module &M);

} // namespace graph
} // namespace akg

#endif // AKG_GRAPH_OPS_H
