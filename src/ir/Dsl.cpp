//===- ir/Dsl.cpp - Tensor expression DSL ---------------------------------===//

#include "ir/Dsl.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace akg {
namespace ir {

Tensor Module::placeholder(const std::string &Name,
                           std::vector<int64_t> Shape, DType Type) {
  auto T = std::make_shared<TensorDecl>();
  T->Name = Name;
  T->Shape = std::move(Shape);
  T->Type = Type;
  Inputs.push_back(T);
  return T;
}

IterVar Module::reduceAxis(int64_t Extent, const std::string &Name) {
  assert(Extent > 0 && "reduce axis extent must be positive");
  return IterVar{Name, Extent, /*IsReduce=*/true};
}

Tensor Module::compute(
    const std::string &Name, std::vector<int64_t> Shape,
    const std::function<Expr(const std::vector<Expr> &)> &Fn, DType Type) {
  auto Op = std::make_unique<ComputeOp>();
  Op->Name = Name;
  std::vector<Expr> AxisVars;
  for (unsigned I = 0; I < Shape.size(); ++I) {
    assert(Shape[I] > 0 && "axis extent must be positive");
    std::string AxName = Name + "_ax" + std::to_string(I);
    Op->Axis.push_back(IterVar{AxName, Shape[I], /*IsReduce=*/false});
    AxisVars.push_back(var(AxName));
  }
  Op->Body = Fn(AxisVars);
  assert(Op->Body && "compute body is null");
  auto T = std::make_shared<TensorDecl>();
  T->Name = Name;
  T->Shape = std::move(Shape);
  T->Type = Type;
  T->Source = Op.get();
  Op->Output = T;
  Ops.push_back(std::move(Op));
  return T;
}

Tensor Module::computeRaw(const std::string &Name, std::vector<IterVar> Axis,
                          Expr Body, DType Type) {
  auto Op = std::make_unique<ComputeOp>();
  Op->Name = Name;
  Op->Axis = std::move(Axis);
  Op->Body = std::move(Body);
  assert(Op->Body && "compute body is null");
  auto T = std::make_shared<TensorDecl>();
  T->Name = Name;
  for (const IterVar &IV : Op->Axis)
    T->Shape.push_back(IV.Extent);
  T->Type = Type;
  T->Source = Op.get();
  Op->Output = T;
  Ops.push_back(std::move(Op));
  return T;
}

std::vector<Tensor> Module::outputs() const {
  std::vector<Tensor> Outs;
  for (const auto &Op : Ops) {
    bool Consumed = false;
    for (const auto &Other : Ops) {
      if (Other.get() == Op.get())
        continue;
      for (const Tensor &R : collectReads(Other->Body))
        if (R == Op->Output)
          Consumed = true;
    }
    if (!Consumed)
      Outs.push_back(Op->Output);
  }
  return Outs;
}

std::vector<Tensor> Module::allTensors() const {
  std::vector<Tensor> All = Inputs;
  for (const auto &Op : Ops)
    All.push_back(Op->Output);
  return All;
}

void Module::declareShapeSymbol(const std::string &Name, int64_t Min,
                                int64_t Max) {
  assert(!Name.empty() && Min >= 1 && Max >= Min &&
         "shape symbol needs a name and a sane range");
  ShapeSyms[Name] = SymRange{Min, Max};
}

void Module::markDynamicDim(const Tensor &T, unsigned Dim,
                            const std::string &Sym, int64_t Min, int64_t Max) {
  assert(T && Dim < T->Shape.size() && "dynamic dim out of range");
  assert(!Sym.empty() && "dynamic dim needs a symbol name");
  if (!ShapeSyms.count(Sym))
    declareShapeSymbol(Sym, Min, Max);
  if (T->SymShape.size() != T->Shape.size())
    T->SymShape.assign(T->Shape.size(), "");
  T->SymShape[Dim] = Sym;
}

bool hasDynamicDims(const Module &M) {
  for (const Tensor &In : M.inputs())
    for (const std::string &S : In->SymShape)
      if (!S.empty())
        return true;
  return false;
}

std::string Module::str() const {
  std::ostringstream OS;
  for (const Tensor &T : Inputs) {
    OS << T->Name << " = placeholder((";
    for (unsigned I = 0; I < T->Shape.size(); ++I)
      OS << (I ? "," : "") << T->Shape[I];
    OS << "), " << dtypeName(T->Type) << ")\n";
  }
  for (const auto &Op : Ops) {
    OS << Op->Output->Name << "[";
    for (unsigned I = 0; I < Op->Axis.size(); ++I)
      OS << (I ? "," : "") << Op->Axis[I].Name;
    OS << "] = " << exprToString(Op->Body) << "\n";
  }
  return OS.str();
}

double evalIntrinsic(const std::string &Name,
                     const std::vector<double> &Args) {
  assert(!Args.empty() && "intrinsic with no arguments");
  double X = Args[0];
  if (Name == "relu")
    return X > 0 ? X : 0;
  if (Name == "abs")
    return std::fabs(X);
  if (Name == "exp")
    return std::exp(X);
  if (Name == "log")
    return std::log(X);
  if (Name == "sqrt")
    return std::sqrt(X);
  if (Name == "rsqrt")
    return 1.0 / std::sqrt(X);
  if (Name == "sigmoid")
    return 1.0 / (1.0 + std::exp(-X));
  if (Name == "tanh")
    return std::tanh(X);
  if (Name == "recip")
    return 1.0 / X;
  assert(false && "unknown intrinsic");
  return 0;
}

static int64_t evalIndex(const Expr &E,
                         const std::map<std::string, int64_t> &Env) {
  switch (E->Kind) {
  case ExprKind::IntImm:
    return E->IntVal;
  case ExprKind::Var: {
    auto It = Env.find(E->Name);
    assert(It != Env.end() && "unbound index variable");
    return It->second;
  }
  case ExprKind::Add:
    return evalIndex(E->Operands[0], Env) + evalIndex(E->Operands[1], Env);
  case ExprKind::Sub:
    return evalIndex(E->Operands[0], Env) - evalIndex(E->Operands[1], Env);
  case ExprKind::Mul:
    return evalIndex(E->Operands[0], Env) * evalIndex(E->Operands[1], Env);
  case ExprKind::FloorDiv: {
    int64_t A = evalIndex(E->Operands[0], Env);
    int64_t B = evalIndex(E->Operands[1], Env);
    int64_t Q = A / B;
    if (A % B != 0 && ((A < 0) != (B < 0)))
      --Q;
    return Q;
  }
  case ExprKind::Mod: {
    int64_t A = evalIndex(E->Operands[0], Env);
    int64_t B = evalIndex(E->Operands[1], Env);
    int64_t R = A % B;
    if (R != 0 && ((R < 0) != (B < 0)))
      R += B;
    return R;
  }
  case ExprKind::Min:
    return std::min(evalIndex(E->Operands[0], Env),
                    evalIndex(E->Operands[1], Env));
  case ExprKind::Max:
    return std::max(evalIndex(E->Operands[0], Env),
                    evalIndex(E->Operands[1], Env));
  default:
    assert(false && "non-affine index expression");
    return 0;
  }
}

double evalExpr(const Expr &E, const std::map<std::string, int64_t> &Env,
                const BufferMap &Buffers) {
  switch (E->Kind) {
  case ExprKind::IntImm:
    return static_cast<double>(E->IntVal);
  case ExprKind::FloatImm:
    return E->FloatVal;
  case ExprKind::Var: {
    auto It = Env.find(E->Name);
    assert(It != Env.end() && "unbound variable");
    return static_cast<double>(It->second);
  }
  case ExprKind::Add:
    return evalExpr(E->Operands[0], Env, Buffers) +
           evalExpr(E->Operands[1], Env, Buffers);
  case ExprKind::Sub:
    return evalExpr(E->Operands[0], Env, Buffers) -
           evalExpr(E->Operands[1], Env, Buffers);
  case ExprKind::Mul:
    return evalExpr(E->Operands[0], Env, Buffers) *
           evalExpr(E->Operands[1], Env, Buffers);
  case ExprKind::Div:
    return evalExpr(E->Operands[0], Env, Buffers) /
           evalExpr(E->Operands[1], Env, Buffers);
  case ExprKind::FloorDiv:
  case ExprKind::Mod:
    return static_cast<double>(evalIndex(E, Env));
  case ExprKind::Min:
    return std::min(evalExpr(E->Operands[0], Env, Buffers),
                    evalExpr(E->Operands[1], Env, Buffers));
  case ExprKind::Max:
    return std::max(evalExpr(E->Operands[0], Env, Buffers),
                    evalExpr(E->Operands[1], Env, Buffers));
  case ExprKind::Cast:
    return evalExpr(E->Operands[0], Env, Buffers);
  case ExprKind::Select:
    return evalExpr(E->Operands[0], Env, Buffers) != 0
               ? evalExpr(E->Operands[1], Env, Buffers)
               : evalExpr(E->Operands[2], Env, Buffers);
  case ExprKind::CmpLT:
    return evalExpr(E->Operands[0], Env, Buffers) <
                   evalExpr(E->Operands[1], Env, Buffers)
               ? 1
               : 0;
  case ExprKind::CmpLE:
    return evalExpr(E->Operands[0], Env, Buffers) <=
                   evalExpr(E->Operands[1], Env, Buffers)
               ? 1
               : 0;
  case ExprKind::CmpEQ:
    return evalExpr(E->Operands[0], Env, Buffers) ==
                   evalExpr(E->Operands[1], Env, Buffers)
               ? 1
               : 0;
  case ExprKind::CmpNE:
    return evalExpr(E->Operands[0], Env, Buffers) !=
                   evalExpr(E->Operands[1], Env, Buffers)
               ? 1
               : 0;
  case ExprKind::And:
    return (evalExpr(E->Operands[0], Env, Buffers) != 0 &&
            evalExpr(E->Operands[1], Env, Buffers) != 0)
               ? 1
               : 0;
  case ExprKind::Or:
    return (evalExpr(E->Operands[0], Env, Buffers) != 0 ||
            evalExpr(E->Operands[1], Env, Buffers) != 0)
               ? 1
               : 0;
  case ExprKind::Not:
    return evalExpr(E->Operands[0], Env, Buffers) == 0 ? 1 : 0;
  case ExprKind::TensorRead: {
    auto It = Buffers.find(E->Ref->Name);
    if (It == Buffers.end()) {
      std::fprintf(stderr, "read of unmaterialized tensor '%s'\n",
                   E->Ref->Name.c_str());
      assert(false && "read of unmaterialized tensor");
    }
    int64_t Flat = 0;
    for (unsigned I = 0; I < E->Operands.size(); ++I) {
      int64_t Idx = evalIndex(E->Operands[I], Env);
      if (Idx < 0 || Idx >= E->Ref->Shape[I]) {
        std::fprintf(stderr,
                     "read out of bounds: %s dim %u idx %lld (shape %lld), "
                     "expr %s\n",
                     E->Ref->Name.c_str(), I, (long long)Idx,
                     (long long)E->Ref->Shape[I],
                     exprToString(E->Operands[I]).c_str());
        for (const auto &[K, V] : Env)
          std::fprintf(stderr, "  %s = %lld\n", K.c_str(), (long long)V);
        assert(false && "read index out of bounds");
      }
      Flat = Flat * E->Ref->Shape[I] + Idx;
    }
    return It->second[Flat];
  }
  case ExprKind::Call: {
    std::vector<double> Args;
    for (const Expr &Op : E->Operands)
      Args.push_back(evalExpr(Op, Env, Buffers));
    return evalIntrinsic(E->Name, Args);
  }
  case ExprKind::Reduce:
    assert(false && "reduce must be handled by the op evaluator");
    return 0;
  }
  return 0;
}

/// Recursively iterates the cartesian product of the axis extents.
static void forEachPoint(const std::vector<IterVar> &Axes, unsigned Level,
                         std::map<std::string, int64_t> &Env,
                         const std::function<void()> &Fn) {
  if (Level == Axes.size()) {
    Fn();
    return;
  }
  for (int64_t V = 0; V < Axes[Level].Extent; ++V) {
    Env[Axes[Level].Name] = V;
    forEachPoint(Axes, Level + 1, Env, Fn);
  }
}

BufferMap evaluateModule(const Module &M, const BufferMap &Inputs) {
  BufferMap Buffers = Inputs;
  for (const Tensor &In : M.inputs())
    assert(Buffers.count(In->Name) && "missing input buffer");
  for (const auto &Op : M.ops()) {
    std::vector<float> Out(Op->Output->numElements(), 0.0f);
    std::map<std::string, int64_t> Env;
    auto FlatIndex = [&]() {
      int64_t Flat = 0;
      for (unsigned I = 0; I < Op->Axis.size(); ++I)
        Flat = Flat * Op->Axis[I].Extent + Env[Op->Axis[I].Name];
      return Flat;
    };
    if (!Op->isReduction()) {
      forEachPoint(Op->Axis, 0, Env, [&]() {
        Out[FlatIndex()] =
            static_cast<float>(evalExpr(Op->Body, Env, Buffers));
      });
    } else {
      const ExprNode &Red = *Op->Body;
      forEachPoint(Op->Axis, 0, Env, [&]() {
        double Acc =
            evalExpr(reduceInit(Red.RKind, Red.Type), Env, Buffers);
        forEachPoint(Red.ReduceAxes, 0, Env, [&]() {
          double V = evalExpr(Red.Operands[0], Env, Buffers);
          switch (Red.RKind) {
          case ReduceKind::Sum:
            Acc += V;
            break;
          case ReduceKind::Max:
            Acc = std::max(Acc, V);
            break;
          case ReduceKind::Min:
            Acc = std::min(Acc, V);
            break;
          }
        });
        Out[FlatIndex()] = static_cast<float>(Acc);
      });
    }
    Buffers[Op->Output->Name] = std::move(Out);
  }
  return Buffers;
}

std::vector<float> makeTestData(int64_t N, uint32_t Seed) {
  std::vector<float> V(N);
  uint32_t State = Seed * 2654435761u + 12345u;
  for (int64_t I = 0; I < N; ++I) {
    State = State * 1664525u + 1013904223u;
    // Map to [-1, 1) with a coarse grid so FP16-ish rounding is harmless.
    V[I] = static_cast<float>((State >> 20) & 0xFF) / 128.0f - 1.0f;
  }
  return V;
}

} // namespace ir
} // namespace akg
