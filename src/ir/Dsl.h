//===- ir/Dsl.h - Tensor expression DSL -------------------------*- C++ -*-===//
//
// The TVM-te-like tensor expression language AKG takes as input (Sec 3).
// A Module is a list of compute operations in creation (textual) order; the
// graph engine hands AKG one fused subgraph per Module. The reference
// evaluator executes a module directly and serves as the correctness oracle
// for every compiler path in the test suite.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_DSL_H
#define AKG_IR_DSL_H

#include "ir/Expr.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace ir {

struct ComputeOp;

/// A tensor: either a placeholder (input) or the output of a ComputeOp.
struct TensorDecl {
  std::string Name;
  std::vector<int64_t> Shape;
  DType Type = DType::F32;
  /// Symbolic-extent markers, parallel to Shape (empty = fully static;
  /// "" entries = static dim). A non-empty entry names a shape symbol in
  /// the owning Module's registry: Shape[d] then holds the extent this
  /// symbol is *currently bound to* (the concrete request extent, or a
  /// bucket representative in a canonicalized skeleton module). The
  /// compile pipeline itself never reads these marks - it always
  /// compiles the bound extents - so marked and unmarked modules with
  /// equal shapes compile to identical kernels by construction.
  std::vector<std::string> SymShape;
  /// Producing operation; null for placeholders. Non-owning (the Module
  /// owns all operations).
  ComputeOp *Source = nullptr;

  /// Symbol of dim \p D ("" when static or unmarked).
  const std::string &symOf(unsigned D) const {
    static const std::string Empty;
    return D < SymShape.size() ? SymShape[D] : Empty;
  }

  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t S : Shape)
      N *= S;
    return N;
  }
  int64_t sizeBytes() const { return numElements() * dtypeBytes(Type); }
};

/// One DSL statement: out[axis...] = body. When the body is a Reduce node,
/// the op is a reduction with the given reduce axes (lowered later into an
/// initialization statement and an update statement, as in Fig 3).
struct ComputeOp {
  std::string Name;
  std::vector<IterVar> Axis;
  Expr Body;
  Tensor Output;

  bool isReduction() const {
    return Body && Body->Kind == ExprKind::Reduce;
  }
};

/// Declared range of one shape symbol: the extents a dynamic dimension
/// may take at runtime. Buckets subdivide this range; requests outside it
/// fall back to per-shape compilation.
struct SymRange {
  int64_t Min = 1;
  int64_t Max = 4096;
};

/// A fused operator: the unit AKG compiles to one NPU kernel.
class Module {
public:
  /// Declares an input tensor.
  Tensor placeholder(const std::string &Name, std::vector<int64_t> Shape,
                     DType Type = DType::F16);

  /// Creates a reduction axis for use inside a compute body.
  IterVar reduceAxis(int64_t Extent, const std::string &Name);

  /// Defines out[axes...] = Fn(axes). Fn receives one Var per output axis.
  Tensor compute(const std::string &Name, std::vector<int64_t> Shape,
                 const std::function<Expr(const std::vector<Expr> &)> &Fn,
                 DType Type = DType::F16);

  /// Low-level variant with explicit axes and a prebuilt body; used by
  /// module-rebuilding passes (inlining) and by operator libraries.
  Tensor computeRaw(const std::string &Name, std::vector<IterVar> Axis,
                    Expr Body, DType Type = DType::F16);

  const std::vector<std::unique_ptr<ComputeOp>> &ops() const { return Ops; }
  const std::vector<Tensor> &inputs() const { return Inputs; }
  /// Tensors that escape the module (not consumed by any later op).
  std::vector<Tensor> outputs() const;

  /// All tensors (inputs + op outputs) in creation order.
  std::vector<Tensor> allTensors() const;

  /// Registers (or re-ranges) shape symbol \p Name. Symbols are the
  /// dynamic-shape handles of DESIGN.md 4k: a request module marks tensor
  /// dims with a symbol while Shape holds the concrete extent.
  void declareShapeSymbol(const std::string &Name, int64_t Min, int64_t Max);

  /// Marks dim \p Dim of \p T as dynamic under symbol \p Sym (declares the
  /// symbol with \p Min/\p Max if it is new). T->Shape[Dim] keeps the
  /// currently bound extent.
  void markDynamicDim(const Tensor &T, unsigned Dim, const std::string &Sym,
                      int64_t Min = 1, int64_t Max = 4096);

  const std::map<std::string, SymRange> &shapeSymbols() const {
    return ShapeSyms;
  }

  std::string str() const;

private:
  std::vector<std::unique_ptr<ComputeOp>> Ops;
  std::vector<Tensor> Inputs;
  std::map<std::string, SymRange> ShapeSyms;
  unsigned NextAxisId = 0;
};

/// True when any input tensor carries a symbolic-extent marker (the
/// dynamic-shape entry condition; op outputs derive their marks from the
/// inputs via ir::propagateShapeSymbols).
bool hasDynamicDims(const Module &M);

/// Named buffers of float values (all dtypes are evaluated in float; this is
/// the shared semantics of the oracle and the functional simulator).
using BufferMap = std::map<std::string, std::vector<float>>;

/// Evaluates an intrinsic by name (relu, abs, exp, sqrt, rsqrt, sigmoid,
/// tanh, log).
double evalIntrinsic(const std::string &Name, const std::vector<double> &Args);

/// Evaluates a scalar expression under the given integer bindings, reading
/// tensors from \p Buffers.
double evalExpr(const Expr &E, const std::map<std::string, int64_t> &Env,
                const BufferMap &Buffers);

/// Executes the module op by op; returns all computed buffers (inputs are
/// passed through).
BufferMap evaluateModule(const Module &M, const BufferMap &Inputs);

/// Fills a buffer with a deterministic pseudo-random pattern.
std::vector<float> makeTestData(int64_t N, uint32_t Seed);

} // namespace ir
} // namespace akg

#endif // AKG_IR_DSL_H
