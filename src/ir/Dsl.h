//===- ir/Dsl.h - Tensor expression DSL -------------------------*- C++ -*-===//
//
// The TVM-te-like tensor expression language AKG takes as input (Sec 3).
// A Module is a list of compute operations in creation (textual) order; the
// graph engine hands AKG one fused subgraph per Module. The reference
// evaluator executes a module directly and serves as the correctness oracle
// for every compiler path in the test suite.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_DSL_H
#define AKG_IR_DSL_H

#include "ir/Expr.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace ir {

struct ComputeOp;

/// A tensor: either a placeholder (input) or the output of a ComputeOp.
struct TensorDecl {
  std::string Name;
  std::vector<int64_t> Shape;
  DType Type = DType::F32;
  /// Producing operation; null for placeholders. Non-owning (the Module
  /// owns all operations).
  ComputeOp *Source = nullptr;

  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t S : Shape)
      N *= S;
    return N;
  }
  int64_t sizeBytes() const { return numElements() * dtypeBytes(Type); }
};

/// One DSL statement: out[axis...] = body. When the body is a Reduce node,
/// the op is a reduction with the given reduce axes (lowered later into an
/// initialization statement and an update statement, as in Fig 3).
struct ComputeOp {
  std::string Name;
  std::vector<IterVar> Axis;
  Expr Body;
  Tensor Output;

  bool isReduction() const {
    return Body && Body->Kind == ExprKind::Reduce;
  }
};

/// A fused operator: the unit AKG compiles to one NPU kernel.
class Module {
public:
  /// Declares an input tensor.
  Tensor placeholder(const std::string &Name, std::vector<int64_t> Shape,
                     DType Type = DType::F16);

  /// Creates a reduction axis for use inside a compute body.
  IterVar reduceAxis(int64_t Extent, const std::string &Name);

  /// Defines out[axes...] = Fn(axes). Fn receives one Var per output axis.
  Tensor compute(const std::string &Name, std::vector<int64_t> Shape,
                 const std::function<Expr(const std::vector<Expr> &)> &Fn,
                 DType Type = DType::F16);

  /// Low-level variant with explicit axes and a prebuilt body; used by
  /// module-rebuilding passes (inlining) and by operator libraries.
  Tensor computeRaw(const std::string &Name, std::vector<IterVar> Axis,
                    Expr Body, DType Type = DType::F16);

  const std::vector<std::unique_ptr<ComputeOp>> &ops() const { return Ops; }
  const std::vector<Tensor> &inputs() const { return Inputs; }
  /// Tensors that escape the module (not consumed by any later op).
  std::vector<Tensor> outputs() const;

  /// All tensors (inputs + op outputs) in creation order.
  std::vector<Tensor> allTensors() const;

  std::string str() const;

private:
  std::vector<std::unique_ptr<ComputeOp>> Ops;
  std::vector<Tensor> Inputs;
  unsigned NextAxisId = 0;
};

/// Named buffers of float values (all dtypes are evaluated in float; this is
/// the shared semantics of the oracle and the functional simulator).
using BufferMap = std::map<std::string, std::vector<float>>;

/// Evaluates an intrinsic by name (relu, abs, exp, sqrt, rsqrt, sigmoid,
/// tanh, log).
double evalIntrinsic(const std::string &Name, const std::vector<double> &Args);

/// Evaluates a scalar expression under the given integer bindings, reading
/// tensors from \p Buffers.
double evalExpr(const Expr &E, const std::map<std::string, int64_t> &Env,
                const BufferMap &Buffers);

/// Executes the module op by op; returns all computed buffers (inputs are
/// passed through).
BufferMap evaluateModule(const Module &M, const BufferMap &Inputs);

/// Fills a buffer with a deterministic pseudo-random pattern.
std::vector<float> makeTestData(int64_t N, uint32_t Seed);

} // namespace ir
} // namespace akg

#endif // AKG_IR_DSL_H
