//===- ir/Expr.cpp - Tensor expression IR ---------------------------------===//

#include "ir/Expr.h"
#include "ir/Dsl.h"

#include <cassert>
#include <limits>
#include <sstream>

namespace akg {
namespace ir {

const char *dtypeName(DType T) {
  switch (T) {
  case DType::F16:
    return "half";
  case DType::F32:
    return "float";
  case DType::I32:
    return "int32_t";
  case DType::Bool:
    return "bool";
  }
  return "?";
}

unsigned dtypeBytes(DType T) {
  switch (T) {
  case DType::F16:
    return 2;
  case DType::F32:
    return 4;
  case DType::I32:
    return 4;
  case DType::Bool:
    return 1;
  }
  return 4;
}

static Expr makeNode(ExprKind K, DType T) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = K;
  N->Type = T;
  return N;
}

Expr intImm(int64_t V, DType T) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::IntImm;
  N->Type = T;
  N->IntVal = V;
  return N;
}

Expr floatImm(double V, DType T) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::FloatImm;
  N->Type = T;
  N->FloatVal = V;
  return N;
}

Expr var(const std::string &Name, DType T) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Var;
  N->Type = T;
  N->Name = Name;
  return N;
}

Expr binary(ExprKind K, Expr A, Expr B) {
  assert(A && B && "null operand");
  auto N = std::make_shared<ExprNode>();
  N->Kind = K;
  N->Type = A->Type;
  if (K == ExprKind::CmpLT || K == ExprKind::CmpLE || K == ExprKind::CmpEQ ||
      K == ExprKind::CmpNE || K == ExprKind::And || K == ExprKind::Or)
    N->Type = DType::Bool;
  N->Operands = {std::move(A), std::move(B)};
  return N;
}

Expr add(Expr A, Expr B) { return binary(ExprKind::Add, A, B); }
Expr sub(Expr A, Expr B) { return binary(ExprKind::Sub, A, B); }
Expr mul(Expr A, Expr B) { return binary(ExprKind::Mul, A, B); }
Expr floorDiv(Expr A, Expr B) { return binary(ExprKind::FloorDiv, A, B); }
Expr mod(Expr A, Expr B) { return binary(ExprKind::Mod, A, B); }
Expr minE(Expr A, Expr B) { return binary(ExprKind::Min, A, B); }
Expr maxE(Expr A, Expr B) { return binary(ExprKind::Max, A, B); }

Expr cast(DType T, Expr A) {
  auto N = makeNode(ExprKind::Cast, T);
  const_cast<ExprNode *>(N.get())->Operands = {std::move(A)};
  return N;
}

Expr select(Expr C, Expr T, Expr F) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Select;
  N->Type = T->Type;
  N->Operands = {std::move(C), std::move(T), std::move(F)};
  return N;
}

Expr cmp(ExprKind K, Expr A, Expr B) { return binary(K, A, B); }

Expr tensorRead(Tensor T, std::vector<Expr> Indices) {
  assert(T && "null tensor in read");
  assert(Indices.size() == T->Shape.size() && "index arity mismatch");
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::TensorRead;
  N->Type = T->Type;
  N->Ref = std::move(T);
  N->Operands = std::move(Indices);
  return N;
}

Expr call(const std::string &Fn, std::vector<Expr> Args, DType T) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Call;
  N->Type = T;
  N->Name = Fn;
  N->Operands = std::move(Args);
  return N;
}

Expr reduce(ReduceKind K, Expr Body, std::vector<IterVar> Axes) {
  auto N = std::make_shared<ExprNode>();
  N->Kind = ExprKind::Reduce;
  N->Type = Body->Type;
  N->RKind = K;
  N->Operands = {std::move(Body)};
  N->ReduceAxes = std::move(Axes);
  return N;
}

Expr reduceInit(ReduceKind K, DType T) {
  switch (K) {
  case ReduceKind::Sum:
    return floatImm(0.0, T);
  case ReduceKind::Max:
    return floatImm(-std::numeric_limits<double>::infinity(), T);
  case ReduceKind::Min:
    return floatImm(std::numeric_limits<double>::infinity(), T);
  }
  return floatImm(0.0, T);
}

bool isConstInt(const Expr &E, int64_t *Val) {
  if (!E || E->Kind != ExprKind::IntImm)
    return false;
  if (Val)
    *Val = E->IntVal;
  return true;
}

bool exprEquals(const Expr &A, const Expr &B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind || A->Type != B->Type)
    return false;
  if (A->IntVal != B->IntVal || A->FloatVal != B->FloatVal ||
      A->Name != B->Name || A->Ref != B->Ref)
    return false;
  if (A->Operands.size() != B->Operands.size())
    return false;
  for (unsigned I = 0; I < A->Operands.size(); ++I)
    if (!exprEquals(A->Operands[I], B->Operands[I]))
      return false;
  return true;
}

static void collectReadsImpl(const Expr &E, std::vector<Tensor> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::TensorRead) {
    bool Seen = false;
    for (const Tensor &T : Out)
      if (T == E->Ref)
        Seen = true;
    if (!Seen)
      Out.push_back(E->Ref);
  }
  for (const Expr &Op : E->Operands)
    collectReadsImpl(Op, Out);
}

std::vector<Tensor> collectReads(const Expr &E) {
  std::vector<Tensor> Out;
  collectReadsImpl(E, Out);
  return Out;
}

Expr substitute(const Expr &E,
                const std::vector<std::pair<std::string, Expr>> &Bindings) {
  if (!E)
    return E;
  if (E->Kind == ExprKind::Var) {
    for (const auto &[Name, Repl] : Bindings)
      if (Name == E->Name)
        return Repl;
    return E;
  }
  bool Changed = false;
  std::vector<Expr> NewOps;
  NewOps.reserve(E->Operands.size());
  for (const Expr &Op : E->Operands) {
    Expr N = substitute(Op, Bindings);
    Changed |= (N != Op);
    NewOps.push_back(std::move(N));
  }
  if (!Changed)
    return E;
  auto N = std::make_shared<ExprNode>(*E);
  N->Operands = std::move(NewOps);
  return N;
}

static const char *binOpName(ExprKind K) {
  switch (K) {
  case ExprKind::Add:
    return " + ";
  case ExprKind::Sub:
    return " - ";
  case ExprKind::Mul:
    return " * ";
  case ExprKind::Div:
    return " / ";
  case ExprKind::Mod:
    return " % ";
  case ExprKind::CmpLT:
    return " < ";
  case ExprKind::CmpLE:
    return " <= ";
  case ExprKind::CmpEQ:
    return " == ";
  case ExprKind::CmpNE:
    return " != ";
  case ExprKind::And:
    return " && ";
  case ExprKind::Or:
    return " || ";
  default:
    return " ? ";
  }
}

std::string exprToString(const Expr &E) {
  if (!E)
    return "<null>";
  std::ostringstream OS;
  switch (E->Kind) {
  case ExprKind::IntImm:
    OS << E->IntVal;
    break;
  case ExprKind::FloatImm:
    OS << E->FloatVal;
    break;
  case ExprKind::Var:
    OS << E->Name;
    break;
  case ExprKind::Cast:
    OS << "(" << dtypeName(E->Type) << ")" << exprToString(E->Operands[0]);
    break;
  case ExprKind::Min:
    OS << "min(" << exprToString(E->Operands[0]) << ", "
       << exprToString(E->Operands[1]) << ")";
    break;
  case ExprKind::Max:
    OS << "max(" << exprToString(E->Operands[0]) << ", "
       << exprToString(E->Operands[1]) << ")";
    break;
  case ExprKind::FloorDiv:
    OS << "floordiv(" << exprToString(E->Operands[0]) << ", "
       << exprToString(E->Operands[1]) << ")";
    break;
  case ExprKind::Select:
    OS << "select(" << exprToString(E->Operands[0]) << ", "
       << exprToString(E->Operands[1]) << ", " << exprToString(E->Operands[2])
       << ")";
    break;
  case ExprKind::Not:
    OS << "!" << exprToString(E->Operands[0]);
    break;
  case ExprKind::TensorRead: {
    OS << E->Ref->Name << "[";
    for (unsigned I = 0; I < E->Operands.size(); ++I)
      OS << (I ? ", " : "") << exprToString(E->Operands[I]);
    OS << "]";
    break;
  }
  case ExprKind::Call: {
    OS << E->Name << "(";
    for (unsigned I = 0; I < E->Operands.size(); ++I)
      OS << (I ? ", " : "") << exprToString(E->Operands[I]);
    OS << ")";
    break;
  }
  case ExprKind::Reduce: {
    OS << (E->RKind == ReduceKind::Sum
               ? "sum"
               : E->RKind == ReduceKind::Max ? "max" : "min")
       << "(" << exprToString(E->Operands[0]) << ", axes={";
    for (unsigned I = 0; I < E->ReduceAxes.size(); ++I)
      OS << (I ? "," : "") << E->ReduceAxes[I].Name;
    OS << "})";
    break;
  }
  default:
    OS << "(" << exprToString(E->Operands[0]) << binOpName(E->Kind)
       << exprToString(E->Operands[1]) << ")";
    break;
  }
  return OS.str();
}

} // namespace ir
} // namespace akg
