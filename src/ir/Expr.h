//===- ir/Expr.h - Tensor expression IR -------------------------*- C++ -*-===//
//
// The expression IR shared by the DSL front end (the role TVM's te plays for
// AKG), the Halide-like statement IR, and the CCE code generator. Nodes are
// immutable and shared; a single tagged node type keeps the implementation
// compact while still covering every operator the paper's workloads need.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_EXPR_H
#define AKG_IR_EXPR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace ir {

/// Element types of the DaVinci target. F16 feeds the Cube unit; F32
/// accumulation happens in L0C.
enum class DType { F16, F32, I32, Bool };

const char *dtypeName(DType T);
/// Size of one element in bytes.
unsigned dtypeBytes(DType T);

struct ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

struct TensorDecl;
using Tensor = std::shared_ptr<TensorDecl>;

/// Expression node kinds.
enum class ExprKind {
  IntImm,
  FloatImm,
  Var,
  Add,
  Sub,
  Mul,
  Div,      // exact / truncating integer division of non-negative values
  FloorDiv,
  Mod,
  Min,
  Max,
  Cast,
  Select,   // Operands: cond, then, else
  CmpLT,
  CmpLE,
  CmpEQ,
  CmpNE,
  And,
  Or,
  Not,
  TensorRead, // Ref + index operands
  Call,       // named intrinsic (exp, relu, abs, sqrt, rsqrt, ...)
  Reduce,     // reduction marker used only at the top of a compute body
};

/// Kinds of reduction combiners supported by the DSL.
enum class ReduceKind { Sum, Max, Min };

struct IterVar {
  std::string Name;
  int64_t Extent = 0;
  bool IsReduce = false;
};

/// A single immutable expression node.
struct ExprNode {
  ExprKind Kind;
  DType Type = DType::F32;
  int64_t IntVal = 0;    // IntImm
  double FloatVal = 0;   // FloatImm
  std::string Name;      // Var name or Call intrinsic name
  Tensor Ref;            // TensorRead target
  std::vector<Expr> Operands;
  // Reduce payload:
  ReduceKind RKind = ReduceKind::Sum;
  std::vector<IterVar> ReduceAxes;
};

/// --- Builders -----------------------------------------------------------
Expr intImm(int64_t V, DType T = DType::I32);
Expr floatImm(double V, DType T = DType::F32);
Expr var(const std::string &Name, DType T = DType::I32);
Expr binary(ExprKind K, Expr A, Expr B);
Expr add(Expr A, Expr B);
Expr sub(Expr A, Expr B);
Expr mul(Expr A, Expr B);
Expr floorDiv(Expr A, Expr B);
Expr mod(Expr A, Expr B);
Expr minE(Expr A, Expr B);
Expr maxE(Expr A, Expr B);
Expr cast(DType T, Expr A);
Expr select(Expr C, Expr T, Expr F);
Expr cmp(ExprKind K, Expr A, Expr B);
Expr tensorRead(Tensor T, std::vector<Expr> Indices);
Expr call(const std::string &Fn, std::vector<Expr> Args, DType T);
Expr reduce(ReduceKind K, Expr Body, std::vector<IterVar> Axes);

/// Identity element of a reduction at the given type.
Expr reduceInit(ReduceKind K, DType T);

/// --- Queries ------------------------------------------------------------
bool isConstInt(const Expr &E, int64_t *Val = nullptr);

/// Structural equality (deep).
bool exprEquals(const Expr &A, const Expr &B);

/// Collects the tensors read anywhere inside \p E (deduplicated, in first
/// occurrence order).
std::vector<Tensor> collectReads(const Expr &E);

/// Substitutes variables by name.
Expr substitute(const Expr &E,
                const std::vector<std::pair<std::string, Expr>> &Bindings);

/// Pretty printer (C-like).
std::string exprToString(const Expr &E);

} // namespace ir
} // namespace akg

#endif // AKG_IR_EXPR_H
