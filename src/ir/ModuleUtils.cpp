//===- ir/ModuleUtils.cpp - Module cloning, bounds, C++ emission ----------===//

#include "ir/ModuleUtils.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace akg {
namespace ir {

Expr mapExpr(const Expr &E, const std::map<const TensorDecl *, Tensor> &Remap,
             const std::function<int64_t(int64_t)> &ExtentMap) {
  if (!E)
    return E;
  auto N = std::make_shared<ExprNode>(*E);
  if (E->Ref) {
    auto It = Remap.find(E->Ref.get());
    if (It != Remap.end())
      N->Ref = It->second;
  }
  for (Expr &Op : N->Operands)
    Op = mapExpr(Op, Remap, ExtentMap);
  if (ExtentMap)
    for (IterVar &IV : N->ReduceAxes)
      IV.Extent = ExtentMap(IV.Extent);
  return N;
}

Module cloneModule(const Module &M) {
  Module C;
  for (const auto &[Sym, R] : M.shapeSymbols())
    C.declareShapeSymbol(Sym, R.Min, R.Max);
  std::map<const TensorDecl *, Tensor> Remap;
  for (const Tensor &In : M.inputs()) {
    Tensor P = C.placeholder(In->Name, In->Shape, In->Type);
    P->SymShape = In->SymShape;
    Remap[In.get()] = P;
  }
  for (const auto &Op : M.ops()) {
    Tensor T = C.computeRaw(Op->Name, Op->Axis, mapExpr(Op->Body, Remap),
                            Op->Output->Type);
    T->SymShape = Op->Output->SymShape;
    Remap[Op->Output.get()] = T;
  }
  return C;
}

namespace {

/// A (possibly unknown) closed integer interval.
struct Ival {
  int64_t Lo = 0, Hi = 0;
  bool Known = false;
  static Ival of(int64_t L, int64_t H) { return {L, H, true}; }
  static Ival unknown() { return {}; }
};

int64_t floorDivI(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if (A % B != 0 && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// A refinement gathered from an enclosing Select guard: when the index
/// expression being bounded is structurally equal to \p Sub, its interval
/// may be intersected with [Lo, Hi].
struct Guard {
  Expr Sub;
  int64_t Lo, Hi;
};

Ival evalIval(const Expr &E, const std::map<std::string, Ival> &Env,
              const std::vector<Guard> &Guards);

/// Collects range facts from a conjunction of comparisons against integer
/// constants (the padding-guard idiom: 0 <= h && h < H && ...).
void collectGuards(const Expr &Cond, const std::map<std::string, Ival> &Env,
                   std::vector<Guard> &Out) {
  if (!Cond)
    return;
  if (Cond->Kind == ExprKind::And) {
    collectGuards(Cond->Operands[0], Env, Out);
    collectGuards(Cond->Operands[1], Env, Out);
    return;
  }
  if (Cond->Kind != ExprKind::CmpLE && Cond->Kind != ExprKind::CmpLT)
    return;
  const Expr &A = Cond->Operands[0], &B = Cond->Operands[1];
  int64_t C;
  // c <= e / c < e: lower bound on e.
  if (isConstInt(A, &C))
    Out.push_back({B, Cond->Kind == ExprKind::CmpLE ? C : C + 1,
                   INT64_MAX});
  // e <= c / e < c: upper bound on e.
  else if (isConstInt(B, &C))
    Out.push_back({A, INT64_MIN,
                   Cond->Kind == ExprKind::CmpLE ? C : C - 1});
}

Ival refine(Ival V, const Expr &E, const std::vector<Guard> &Guards) {
  if (!V.Known)
    return V;
  for (const Guard &G : Guards)
    if (exprEquals(G.Sub, E)) {
      V.Lo = std::max(V.Lo, G.Lo);
      V.Hi = std::min(V.Hi, G.Hi);
    }
  return V;
}

Ival evalIval(const Expr &E, const std::map<std::string, Ival> &Env,
              const std::vector<Guard> &Guards) {
  if (!E)
    return Ival::unknown();
  auto Bin = [&](const Expr &X) { return evalIval(X, Env, Guards); };
  Ival R = Ival::unknown();
  switch (E->Kind) {
  case ExprKind::IntImm:
    R = Ival::of(E->IntVal, E->IntVal);
    break;
  case ExprKind::FloatImm:
    break; // not an index
  case ExprKind::Var: {
    auto It = Env.find(E->Name);
    if (It != Env.end())
      R = It->second;
    break;
  }
  case ExprKind::Add: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known)
      R = Ival::of(A.Lo + B.Lo, A.Hi + B.Hi);
    break;
  }
  case ExprKind::Sub: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known)
      R = Ival::of(A.Lo - B.Hi, A.Hi - B.Lo);
    break;
  }
  case ExprKind::Mul: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known) {
      int64_t P[4] = {A.Lo * B.Lo, A.Lo * B.Hi, A.Hi * B.Lo, A.Hi * B.Hi};
      R = Ival::of(*std::min_element(P, P + 4), *std::max_element(P, P + 4));
    }
    break;
  }
  case ExprKind::Div:
  case ExprKind::FloorDiv: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known && B.Lo > 0)
      R = Ival::of(floorDivI(A.Lo, B.Hi), floorDivI(A.Hi, B.Lo));
    break;
  }
  case ExprKind::Mod: {
    Ival B = Bin(E->Operands[1]);
    Ival A = Bin(E->Operands[0]);
    if (B.Known && B.Lo > 0) {
      if (A.Known && A.Lo >= 0 && A.Hi < B.Lo)
        R = A; // already reduced
      else
        R = Ival::of(0, B.Hi - 1);
    }
    break;
  }
  case ExprKind::Min: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known)
      R = Ival::of(std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
    break;
  }
  case ExprKind::Max: {
    Ival A = Bin(E->Operands[0]), B = Bin(E->Operands[1]);
    if (A.Known && B.Known)
      R = Ival::of(std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
    break;
  }
  case ExprKind::Cast:
    R = Bin(E->Operands[0]);
    break;
  case ExprKind::Select: {
    Ival T = Bin(E->Operands[1]), F = Bin(E->Operands[2]);
    if (T.Known && F.Known)
      R = Ival::of(std::min(T.Lo, F.Lo), std::max(T.Hi, F.Hi));
    break;
  }
  default:
    break; // comparisons / calls / reads are not index expressions
  }
  return refine(R, E, Guards);
}

/// Walks \p E checking every TensorRead; guard refinements accumulate
/// through Select conditions (the taken branch is only evaluated when the
/// condition holds, matching evalExpr's short-circuit semantics).
void checkReads(const Expr &E, const std::map<std::string, Ival> &Env,
                std::vector<Guard> Guards, const std::string &OpName,
                std::string &Err) {
  if (!E || !Err.empty())
    return;
  if (E->Kind == ExprKind::Select) {
    checkReads(E->Operands[0], Env, Guards, OpName, Err);
    std::vector<Guard> ThenGuards = Guards;
    collectGuards(E->Operands[0], Env, ThenGuards);
    checkReads(E->Operands[1], Env, ThenGuards, OpName, Err);
    checkReads(E->Operands[2], Env, Guards, OpName, Err);
    return;
  }
  if (E->Kind == ExprKind::TensorRead) {
    if (E->Operands.size() != E->Ref->Shape.size()) {
      Err = "op '" + OpName + "': read of '" + E->Ref->Name + "' has " +
            std::to_string(E->Operands.size()) + " indices for rank " +
            std::to_string(E->Ref->Shape.size());
      return;
    }
    for (unsigned I = 0; I < E->Operands.size(); ++I) {
      Ival V = evalIval(E->Operands[I], Env, Guards);
      if (!V.Known || V.Lo < 0 || V.Hi >= E->Ref->Shape[I]) {
        Err = "op '" + OpName + "': read of '" + E->Ref->Name + "' dim " +
              std::to_string(I) + " (" + exprToString(E->Operands[I]) +
              ") " +
              (V.Known ? "ranges [" + std::to_string(V.Lo) + ", " +
                             std::to_string(V.Hi) + "] outside [0, " +
                             std::to_string(E->Ref->Shape[I] - 1) + "]"
                       : "cannot be bounded");
        return;
      }
    }
  }
  for (const Expr &Op : E->Operands)
    checkReads(Op, Env, Guards, OpName, Err);
}

void collectReduceAxes(const Expr &E, std::vector<IterVar> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Reduce)
    for (const IterVar &IV : E->ReduceAxes)
      Out.push_back(IV);
  for (const Expr &Op : E->Operands)
    collectReduceAxes(Op, Out);
}

} // namespace

std::string checkModuleBounds(const Module &M) {
  for (const auto &Op : M.ops()) {
    std::map<std::string, Ival> Env;
    for (const IterVar &IV : Op->Axis) {
      if (IV.Extent <= 0)
        return "op '" + Op->Name + "': axis '" + IV.Name +
               "' has non-positive extent";
      Env[IV.Name] = Ival::of(0, IV.Extent - 1);
    }
    std::vector<IterVar> RAxes;
    collectReduceAxes(Op->Body, RAxes);
    for (const IterVar &IV : RAxes) {
      if (IV.Extent <= 0)
        return "op '" + Op->Name + "': reduce axis '" + IV.Name +
               "' has non-positive extent";
      Env[IV.Name] = Ival::of(0, IV.Extent - 1);
    }
    std::string Err;
    checkReads(Op->Body, Env, {}, Op->Name, Err);
    if (!Err.empty())
      return Err;
  }
  return "";
}

namespace {

std::string cppFloat(double V) {
  char Buf[48];
  std::snprintf(Buf, sizeof Buf, "%.17g", V);
  std::string S = Buf;
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  return S;
}

const char *dtypeCpp(DType T) {
  switch (T) {
  case DType::F16:
    return "ir::DType::F16";
  case DType::F32:
    return "ir::DType::F32";
  case DType::I32:
    return "ir::DType::I32";
  case DType::Bool:
    return "ir::DType::Bool";
  }
  return "ir::DType::F32";
}

const char *reduceKindCpp(ReduceKind K) {
  switch (K) {
  case ReduceKind::Sum:
    return "ir::ReduceKind::Sum";
  case ReduceKind::Max:
    return "ir::ReduceKind::Max";
  case ReduceKind::Min:
    return "ir::ReduceKind::Min";
  }
  return "ir::ReduceKind::Sum";
}

std::string shapeList(const std::vector<int64_t> &Shape) {
  std::string S = "{";
  for (unsigned I = 0; I < Shape.size(); ++I)
    S += (I ? ", " : "") + std::to_string(Shape[I]);
  return S + "}";
}

struct Emitter {
  const std::map<const TensorDecl *, std::string> &TensorVars;
  const std::map<std::string, unsigned> &AxisIndex; // op axis name -> Ix[i]
  const std::map<std::string, std::string> &ReduceVars; // axis name -> var

  std::string expr(const Expr &E) const {
    switch (E->Kind) {
    case ExprKind::IntImm:
      return E->Type == DType::I32
                 ? "ir::intImm(" + std::to_string(E->IntVal) + ")"
                 : "ir::intImm(" + std::to_string(E->IntVal) + ", " +
                       dtypeCpp(E->Type) + ")";
    case ExprKind::FloatImm:
      return E->Type == DType::F32
                 ? "ir::floatImm(" + cppFloat(E->FloatVal) + ")"
                 : "ir::floatImm(" + cppFloat(E->FloatVal) + ", " +
                       dtypeCpp(E->Type) + ")";
    case ExprKind::Var: {
      auto AI = AxisIndex.find(E->Name);
      if (AI != AxisIndex.end())
        return "Ix[" + std::to_string(AI->second) + "]";
      return "ir::var(\"" + E->Name + "\")";
    }
    case ExprKind::Add:
      return "ir::add(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Sub:
      return "ir::sub(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Mul:
      return "ir::mul(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::FloorDiv:
      return "ir::floorDiv(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Mod:
      return "ir::mod(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Min:
      return "ir::minE(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Max:
      return "ir::maxE(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ")";
    case ExprKind::Div:
    case ExprKind::And:
    case ExprKind::Or:
    case ExprKind::Not:
      return "ir::binary(ir::ExprKind::" + kindName(E->Kind) + ", " +
             expr(E->Operands[0]) + ", " +
             expr(E->Operands[E->Operands.size() > 1 ? 1 : 0]) + ")";
    case ExprKind::CmpLT:
    case ExprKind::CmpLE:
    case ExprKind::CmpEQ:
    case ExprKind::CmpNE:
      return "ir::cmp(ir::ExprKind::" + kindName(E->Kind) + ", " +
             expr(E->Operands[0]) + ", " + expr(E->Operands[1]) + ")";
    case ExprKind::Cast:
      return "ir::cast(" + std::string(dtypeCpp(E->Type)) + ", " +
             expr(E->Operands[0]) + ")";
    case ExprKind::Select:
      return "ir::select(" + expr(E->Operands[0]) + ", " +
             expr(E->Operands[1]) + ", " + expr(E->Operands[2]) + ")";
    case ExprKind::TensorRead: {
      std::string S =
          "ir::tensorRead(" + TensorVars.at(E->Ref.get()) + ", {";
      for (unsigned I = 0; I < E->Operands.size(); ++I)
        S += (I ? ", " : "") + expr(E->Operands[I]);
      return S + "})";
    }
    case ExprKind::Call: {
      std::string S = "ir::call(\"" + E->Name + "\", {";
      for (unsigned I = 0; I < E->Operands.size(); ++I)
        S += (I ? ", " : "") + expr(E->Operands[I]);
      return S + "}, " + dtypeCpp(E->Type) + ")";
    }
    case ExprKind::Reduce: {
      std::string S = "ir::reduce(" +
                      std::string(reduceKindCpp(E->RKind)) + ", " +
                      expr(E->Operands[0]) + ", {";
      for (unsigned I = 0; I < E->ReduceAxes.size(); ++I)
        S += (I ? ", " : "") + ReduceVars.at(E->ReduceAxes[I].Name);
      return S + "})";
    }
    }
    return "/*?*/";
  }

  static std::string kindName(ExprKind K) {
    switch (K) {
    case ExprKind::Div:
      return "Div";
    case ExprKind::And:
      return "And";
    case ExprKind::Or:
      return "Or";
    case ExprKind::Not:
      return "Not";
    case ExprKind::CmpLT:
      return "CmpLT";
    case ExprKind::CmpLE:
      return "CmpLE";
    case ExprKind::CmpEQ:
      return "CmpEQ";
    case ExprKind::CmpNE:
      return "CmpNE";
    default:
      return "?";
    }
  }
};

} // namespace

std::string emitModuleBuilder(const Module &M, const std::string &ModuleVar) {
  std::ostringstream OS;
  std::map<const TensorDecl *, std::string> TensorVars;
  unsigned NextT = 0, NextR = 0;
  OS << "ir::Module " << ModuleVar << ";\n";
  for (const Tensor &In : M.inputs()) {
    std::string V = "t" + std::to_string(NextT++);
    TensorVars[In.get()] = V;
    OS << "ir::Tensor " << V << " = " << ModuleVar << ".placeholder(\""
       << In->Name << "\", " << shapeList(In->Shape) << ", "
       << dtypeCpp(In->Type) << ");\n";
  }
  for (const auto &Op : M.ops()) {
    std::vector<IterVar> RAxes;
    collectReduceAxes(Op->Body, RAxes);
    std::map<std::string, std::string> ReduceVars;
    for (const IterVar &IV : RAxes) {
      if (ReduceVars.count(IV.Name))
        continue;
      std::string V = "rv" + std::to_string(NextR++);
      ReduceVars[IV.Name] = V;
      OS << "ir::IterVar " << V << " = " << ModuleVar << ".reduceAxis("
         << IV.Extent << ", \"" << IV.Name << "\");\n";
    }
    std::map<std::string, unsigned> AxisIndex;
    std::vector<int64_t> Shape;
    for (unsigned I = 0; I < Op->Axis.size(); ++I) {
      AxisIndex[Op->Axis[I].Name] = I;
      Shape.push_back(Op->Axis[I].Extent);
    }
    Emitter Em{TensorVars, AxisIndex, ReduceVars};
    std::string V = "t" + std::to_string(NextT++);
    TensorVars[Op->Output.get()] = V;
    OS << "ir::Tensor " << V << " = " << ModuleVar << ".compute(\""
       << Op->Name << "\", " << shapeList(Shape)
       << ", [&](const std::vector<ir::Expr> &Ix) {\n  (void)Ix;\n  return "
       << Em.expr(Op->Body) << ";\n}, " << dtypeCpp(Op->Output->Type)
       << ");\n";
  }
  return OS.str();
}

} // namespace ir
} // namespace akg
