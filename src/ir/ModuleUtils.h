//===- ir/ModuleUtils.h - Module cloning, bounds, C++ emission --*- C++ -*-===//
//
// Helpers for code that manipulates whole modules as data: the differential
// verification subsystem (src/verify) clones modules, mutates the clones
// while shrinking failing cases, proves every tensor read stays in bounds
// without tripping the evaluator's asserts, and renders a module back into
// ready-to-paste C++ builder code for minimal repro test cases.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_MODULEUTILS_H
#define AKG_IR_MODULEUTILS_H

#include "ir/Dsl.h"

#include <functional>
#include <map>

namespace akg {
namespace ir {

/// Maps tensor references inside \p E through \p Remap (identity for
/// tensors not in the map) and axis extents inside Reduce nodes through
/// \p ExtentMap (identity when null). Non-tensor leaves are shared.
Expr mapExpr(const Expr &E,
             const std::map<const TensorDecl *, Tensor> &Remap,
             const std::function<int64_t(int64_t)> &ExtentMap = nullptr);

/// Deep-copies a module: fresh placeholders, fresh ops, fresh tensors.
/// The clone is structurally identical (same names, shapes, bodies), so
/// fingerprintModule and the evaluator agree between original and clone.
Module cloneModule(const Module &M);

/// Statically proves every TensorRead in every op body stays within its
/// tensor's shape, using interval arithmetic over the op's axis and
/// reduce-axis ranges. Returns "" when all reads are provably in bounds,
/// else a diagnostic naming the op, tensor, and offending dimension.
/// Conservative: an index it cannot bound is reported as a violation.
/// The verify reducer uses this to discard shrink candidates that would
/// abort inside evalExpr, and free (unbound) variables are reported too.
std::string checkModuleBounds(const Module &M);

/// Renders \p M as compilable C++ builder code against the ir:: API, the
/// body of a test that reconstructs the module:
///   ir::Module M;
///   ir::Tensor t0 = M.placeholder("in0", {4, 8}, ir::DType::F16);
///   ...
/// Axis variables print as Ix[i]; reduce axes are declared with
/// M.reduceAxis before the compute that uses them. \p ModuleVar names the
/// Module variable in the emitted code.
std::string emitModuleBuilder(const Module &M,
                              const std::string &ModuleVar = "M");

} // namespace ir
} // namespace akg

#endif // AKG_IR_MODULEUTILS_H
