//===- ir/Passes.cpp - Preparation passes ---------------------------------===//

#include "ir/Passes.h"

#include <cassert>
#include <map>
#include <set>
#include <sstream>

namespace akg {
namespace ir {

static bool isZero(const Expr &E) {
  return (E->Kind == ExprKind::IntImm && E->IntVal == 0) ||
         (E->Kind == ExprKind::FloatImm && E->FloatVal == 0);
}

static bool isOne(const Expr &E) {
  return (E->Kind == ExprKind::IntImm && E->IntVal == 1) ||
         (E->Kind == ExprKind::FloatImm && E->FloatVal == 1);
}

static bool isImm(const Expr &E) {
  return E->Kind == ExprKind::IntImm || E->Kind == ExprKind::FloatImm;
}

static double immValue(const Expr &E) {
  return E->Kind == ExprKind::IntImm ? static_cast<double>(E->IntVal)
                                     : E->FloatVal;
}

static Expr makeImmLike(const Expr &Proto, double V) {
  if (Proto->Type == DType::I32 || Proto->Type == DType::Bool)
    return intImm(static_cast<int64_t>(V), Proto->Type);
  return floatImm(V, Proto->Type);
}

namespace {

/// Flattens an Add/Sub/Mul-by-constant chain into (constant, coeff * leaf)
/// terms and rebuilds a canonical sum. Leaves are keyed structurally.
Expr linearNormalize(const Expr &E) {
  std::map<std::string, std::pair<Expr, int64_t>> Terms;
  double FloatConst = 0;
  int64_t IntConst = 0;
  bool HasFloat = false;
  std::function<bool(const Expr &, int64_t)> Go = [&](const Expr &N,
                                                      int64_t S) -> bool {
    switch (N->Kind) {
    case ExprKind::IntImm:
      IntConst += S * N->IntVal;
      return true;
    case ExprKind::FloatImm:
      FloatConst += S * N->FloatVal;
      HasFloat = true;
      return true;
    case ExprKind::Add:
      return Go(N->Operands[0], S) && Go(N->Operands[1], S);
    case ExprKind::Sub:
      return Go(N->Operands[0], S) && Go(N->Operands[1], -S);
    case ExprKind::Mul: {
      int64_t C;
      if (isConstInt(N->Operands[0], &C))
        return Go(N->Operands[1], S * C);
      if (isConstInt(N->Operands[1], &C))
        return Go(N->Operands[0], S * C);
      Terms[exprToString(N)].first = N;
      Terms[exprToString(N)].second += S;
      return true;
    }
    default:
      Terms[exprToString(N)].first = N;
      Terms[exprToString(N)].second += S;
      return true;
    }
  };
  if (!Go(E, 1) || HasFloat)
    return E;
  Expr R;
  for (const auto &[Key, TC] : Terms) {
    (void)Key;
    if (TC.second == 0)
      continue;
    Expr T = TC.second == 1 ? TC.first
                            : mul(intImm(TC.second), TC.first);
    R = R ? add(R, T) : T;
  }
  if (!R)
    return intImm(IntConst, E->Type);
  if (IntConst != 0)
    R = add(R, intImm(IntConst, E->Type));
  return R;
}

} // namespace

Expr simplifyExpr(const Expr &E) {
  if (!E)
    return E;
  if (E->Operands.empty())
    return E;
  std::vector<Expr> Ops;
  Ops.reserve(E->Operands.size());
  bool Changed = false;
  for (const Expr &Op : E->Operands) {
    Expr S = simplifyExpr(Op);
    Changed |= (S != Op);
    Ops.push_back(std::move(S));
  }
  auto Rebuilt = [&]() -> Expr {
    if (!Changed)
      return E;
    auto N = std::make_shared<ExprNode>(*E);
    N->Operands = Ops;
    return N;
  };
  switch (E->Kind) {
  case ExprKind::Add:
    if (isZero(Ops[0]))
      return Ops[1];
    if (isZero(Ops[1]))
      return Ops[0];
    if (isImm(Ops[0]) && isImm(Ops[1]))
      return makeImmLike(E, immValue(Ops[0]) + immValue(Ops[1]));
    break;
  case ExprKind::Sub: {
    if (isZero(Ops[1]))
      return Ops[0];
    if (isImm(Ops[0]) && isImm(Ops[1]))
      return makeImmLike(E, immValue(Ops[0]) - immValue(Ops[1]));
    if (exprEquals(Ops[0], Ops[1]))
      return makeImmLike(E, 0);
    // Distribute over min/max so tile-relative bounds cancel:
    // min(a,b) - c -> min(a-c, b-c).
    if (Ops[0]->Kind == ExprKind::Min || Ops[0]->Kind == ExprKind::Max) {
      Expr L = simplifyExpr(sub(Ops[0]->Operands[0], Ops[1]));
      Expr R = simplifyExpr(sub(Ops[0]->Operands[1], Ops[1]));
      return simplifyExpr(binary(Ops[0]->Kind, L, R));
    }
    Expr Lin = linearNormalize(sub(Ops[0], Ops[1]));
    if (Lin->Kind == ExprKind::IntImm ||
        exprDagSize(Lin) < exprDagSize(E))
      return Lin;
    break;
  }
  case ExprKind::Mul:
    if (isZero(Ops[0]) || isZero(Ops[1]))
      return makeImmLike(E, 0);
    if (isOne(Ops[0]))
      return Ops[1];
    if (isOne(Ops[1]))
      return Ops[0];
    if (isImm(Ops[0]) && isImm(Ops[1]))
      return makeImmLike(E, immValue(Ops[0]) * immValue(Ops[1]));
    break;
  case ExprKind::FloorDiv:
    if (isOne(Ops[1]))
      return Ops[0];
    if (isImm(Ops[0]) && isImm(Ops[1])) {
      int64_t A = static_cast<int64_t>(immValue(Ops[0]));
      int64_t B = static_cast<int64_t>(immValue(Ops[1]));
      int64_t Q = A / B;
      if (A % B != 0 && ((A < 0) != (B < 0)))
        --Q;
      return intImm(Q, E->Type);
    }
    break;
  case ExprKind::Mod:
    if (isOne(Ops[1]))
      return makeImmLike(E, 0);
    break;
  case ExprKind::Min:
  case ExprKind::Max:
    if (exprEquals(Ops[0], Ops[1]))
      return Ops[0];
    if (isImm(Ops[0]) && isImm(Ops[1])) {
      double A = immValue(Ops[0]), B = immValue(Ops[1]);
      return makeImmLike(E, E->Kind == ExprKind::Min ? std::min(A, B)
                                                     : std::max(A, B));
    }
    // min/max with a provably constant difference collapses.
    {
      Expr Diff = simplifyExpr(sub(Ops[0], Ops[1]));
      int64_t D;
      if (isConstInt(Diff, &D)) {
        bool PickFirst = (E->Kind == ExprKind::Min) == (D <= 0);
        return PickFirst ? Ops[0] : Ops[1];
      }
    }
    // Canonical operand order so structurally-equal bounds compare equal.
    if (exprToString(Ops[0]) > exprToString(Ops[1])) {
      auto N = std::make_shared<ExprNode>(*E);
      N->Operands = {Ops[1], Ops[0]};
      return N;
    }
    break;
  case ExprKind::Select:
    if (isImm(Ops[0]))
      return immValue(Ops[0]) != 0 ? Ops[1] : Ops[2];
    break;
  case ExprKind::CmpEQ:
  case ExprKind::CmpNE:
  case ExprKind::CmpLT:
  case ExprKind::CmpLE: {
    if (!isImm(Ops[0]) || !isImm(Ops[1])) {
      if (exprEquals(Ops[0], Ops[1]))
        return intImm((E->Kind == ExprKind::CmpEQ ||
                       E->Kind == ExprKind::CmpLE)
                          ? 1
                          : 0,
                      DType::Bool);
      break;
    }
    double A = immValue(Ops[0]), B = immValue(Ops[1]);
    bool V = E->Kind == ExprKind::CmpEQ   ? A == B
             : E->Kind == ExprKind::CmpNE ? A != B
             : E->Kind == ExprKind::CmpLT ? A < B
                                          : A <= B;
    return intImm(V ? 1 : 0, DType::Bool);
  }
  case ExprKind::And:
    if (isImm(Ops[0]))
      return immValue(Ops[0]) != 0 ? Ops[1] : intImm(0, DType::Bool);
    if (isImm(Ops[1]))
      return immValue(Ops[1]) != 0 ? Ops[0] : intImm(0, DType::Bool);
    break;
  case ExprKind::Or:
    if (isImm(Ops[0]))
      return immValue(Ops[0]) != 0 ? intImm(1, DType::Bool) : Ops[1];
    if (isImm(Ops[1]))
      return immValue(Ops[1]) != 0 ? intImm(1, DType::Bool) : Ops[0];
    break;
  case ExprKind::Cast:
    if (Ops[0]->Type == E->Type)
      return Ops[0];
    if (Ops[0]->Kind == ExprKind::Cast) {
      // Collapse cast(cast(x)) when the inner cast does not narrow.
      const Expr &Inner = Ops[0]->Operands[0];
      if (dtypeBytes(Ops[0]->Type) >= dtypeBytes(Inner->Type))
        return simplifyExpr(cast(E->Type, Inner));
    }
    break;
  default:
    break;
  }
  return Rebuilt();
}

Stmt simplifyStmt(const Stmt &S) {
  if (!S)
    return S;
  auto N = std::make_shared<StmtNode>(*S);
  for (Stmt &C : N->Children)
    C = simplifyStmt(C);
  if (N->Min)
    N->Min = simplifyExpr(N->Min);
  if (N->Extent)
    N->Extent = simplifyExpr(N->Extent);
  if (N->Value)
    N->Value = simplifyExpr(N->Value);
  if (N->Cond)
    N->Cond = simplifyExpr(N->Cond);
  for (Expr &I : N->Indices)
    I = simplifyExpr(I);
  if (N->Kind == StmtKind::IfThenElse && isImm(N->Cond)) {
    if (immValue(N->Cond) != 0)
      return N->Children[0];
    return N->Children.size() > 1 ? N->Children[1] : makeBlock({});
  }
  if (N->Kind == StmtKind::For) {
    int64_t Ext;
    if (isConstInt(N->Extent, &Ext) && Ext == 1) {
      // Single-iteration loop: substitute the loop variable.
      return simplifyStmt(substituteInStmt(
          N->Children[0], {{N->Var, N->Min}}));
    }
  }
  return N;
}

Stmt substituteInStmt(const Stmt &S,
                      const std::vector<std::pair<std::string, Expr>> &B) {
  if (!S)
    return S;
  auto N = std::make_shared<StmtNode>(*S);
  for (Stmt &C : N->Children)
    C = substituteInStmt(C, B);
  if (N->Min)
    N->Min = substitute(N->Min, B);
  if (N->Extent)
    N->Extent = substitute(N->Extent, B);
  if (N->Value)
    N->Value = substitute(N->Value, B);
  if (N->Cond)
    N->Cond = substitute(N->Cond, B);
  for (Expr &I : N->Indices)
    I = substitute(I, B);
  return N;
}

namespace {

/// Structural key for hash-consing. No pointer-keyed memoization: rejected
/// temporary nodes free their addresses for reuse, which would alias keys.
std::string exprKey(const Expr &E) {
  std::ostringstream OS;
  OS << static_cast<int>(E->Kind) << "|" << static_cast<int>(E->Type) << "|"
     << E->IntVal << "|" << E->FloatVal << "|" << E->Name << "|"
     << (E->Ref ? E->Ref->Name : "") << "(";
  for (const Expr &Op : E->Operands)
    OS << exprKey(Op) << ",";
  OS << ")";
  return OS.str();
}

} // namespace

Expr cseExpr(const Expr &E, unsigned *MergedCount) {
  std::map<std::string, Expr> Canonical;
  unsigned Merged = 0;
  std::function<Expr(const Expr &)> Go = [&](const Expr &N) -> Expr {
    if (!N)
      return N;
    std::vector<Expr> Ops;
    for (const Expr &Op : N->Operands)
      Ops.push_back(Go(Op));
    auto Copy = std::make_shared<ExprNode>(*N);
    Copy->Operands = std::move(Ops);
    Expr C = Copy;
    std::string K = exprKey(C);
    auto [It, Inserted] = Canonical.emplace(K, C);
    if (!Inserted)
      ++Merged;
    return It->second;
  };
  Expr R = Go(E);
  if (MergedCount)
    *MergedCount = Merged;
  return R;
}

unsigned exprDagSize(const Expr &E) {
  std::set<const ExprNode *> Seen;
  std::function<void(const Expr &)> Go = [&](const Expr &N) {
    if (!N || !Seen.insert(N.get()).second)
      return;
    for (const Expr &Op : N->Operands)
      Go(Op);
  };
  Go(E);
  return static_cast<unsigned>(Seen.size());
}

Module inlineElementwiseOps(const Module &M) {
  // Count consumers of each tensor.
  std::map<const TensorDecl *, unsigned> Uses;
  for (const auto &Op : M.ops())
    for (const Tensor &R : collectReads(Op->Body))
      ++Uses[R.get()];
  std::vector<Tensor> Outs = M.outputs();
  auto IsOut = [&](const Tensor &T) {
    for (const Tensor &O : Outs)
      if (O == T)
        return true;
    return false;
  };

  Module New;
  // Old tensor -> replacement read target in the new module.
  std::map<const TensorDecl *, Tensor> Remap;
  // Old tensor -> inlined body template (indices substituted per use).
  struct InlineDef {
    std::vector<IterVar> Axis;
    Expr Body;
  };
  std::map<const TensorDecl *, InlineDef> Inlined;

  for (const Tensor &In : M.inputs())
    Remap[In.get()] = New.placeholder(In->Name, In->Shape, In->Type);

  // Rewrites reads in a body: remapped tensors become reads of the new
  // tensor; inlined tensors become their body with axes substituted.
  std::function<Expr(const Expr &)> Rewrite = [&](const Expr &E) -> Expr {
    if (!E)
      return E;
    if (E->Kind == ExprKind::TensorRead) {
      std::vector<Expr> Idx;
      for (const Expr &Op : E->Operands)
        Idx.push_back(Rewrite(Op));
      auto InlIt = Inlined.find(E->Ref.get());
      if (InlIt != Inlined.end()) {
        std::vector<std::pair<std::string, Expr>> B;
        for (unsigned I = 0; I < InlIt->second.Axis.size(); ++I)
          B.emplace_back(InlIt->second.Axis[I].Name, Idx[I]);
        return substitute(InlIt->second.Body, B);
      }
      auto It = Remap.find(E->Ref.get());
      assert(It != Remap.end() && "read of unknown tensor");
      return tensorRead(It->second, std::move(Idx));
    }
    std::vector<Expr> Ops;
    bool Changed = false;
    for (const Expr &Op : E->Operands) {
      Expr R = Rewrite(Op);
      Changed |= (R != Op);
      Ops.push_back(std::move(R));
    }
    if (!Changed)
      return E;
    auto N = std::make_shared<ExprNode>(*E);
    N->Operands = std::move(Ops);
    return N;
  };

  for (const auto &Op : M.ops()) {
    Expr Body = Rewrite(Op->Body);
    bool CanInline = !Op->isReduction() && !IsOut(Op->Output) &&
                     Uses[Op->Output.get()] == 1 &&
                     exprDagSize(Body) <= 24;
    if (CanInline) {
      Inlined[Op->Output.get()] = {Op->Axis, Body};
      continue;
    }
    Tensor NT = New.computeRaw(Op->Name, Op->Axis, Body, Op->Output->Type);
    Remap[Op->Output.get()] = NT;
  }
  return New;
}

} // namespace ir
} // namespace akg
