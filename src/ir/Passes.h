//===- ir/Passes.h - Preparation passes -------------------------*- C++ -*-===//
//
// The automatic preparation steps AKG runs before lowering to the polyhedral
// IR (Sec 3): function inlining, common subexpression elimination and
// algebraic simplification. They establish the static-affine-control form
// the polyhedral model requires and moderate compilation overhead.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_PASSES_H
#define AKG_IR_PASSES_H

#include "ir/Dsl.h"
#include "ir/Stmt.h"

namespace akg {
namespace ir {

/// Constant folding and algebraic identities (x+0, x*1, x*0, folding of
/// min/max/select over constants, nested cast collapsing).
Expr simplifyExpr(const Expr &E);

/// Applies simplifyExpr to every expression in a statement tree and prunes
/// trivially-dead structures (empty blocks, if(true)).
Stmt simplifyStmt(const Stmt &S);

/// Substitutes variables by name throughout a statement tree.
Stmt substituteInStmt(const Stmt &S,
                      const std::vector<std::pair<std::string, Expr>> &B);

/// Structural hash-consing: returns an equivalent expression where equal
/// subtrees are shared, and reports how many duplicates were merged.
Expr cseExpr(const Expr &E, unsigned *MergedCount = nullptr);

/// Counts nodes of an expression tree (shared nodes counted once).
unsigned exprDagSize(const Expr &E);

/// Rebuilds \p M with elementwise single-consumer producers inlined into
/// their consumer's body. Reductions and multi-consumer tensors are kept.
/// This is the "function inlining" preparation step.
Module inlineElementwiseOps(const Module &M);

} // namespace ir
} // namespace akg

#endif // AKG_IR_PASSES_H
