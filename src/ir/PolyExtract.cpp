//===- ir/PolyExtract.cpp - DSL -> polyhedral statements ------------------===//

#include "ir/PolyExtract.h"

#include <cassert>

namespace akg {
namespace ir {

using poly::BasicMap;
using poly::BasicSet;
using poly::Space;

bool exprToAffine(const Expr &E, const std::vector<IterVar> &Iters,
                  std::vector<int64_t> &Coeffs, int64_t &Const) {
  Coeffs.assign(Iters.size(), 0);
  Const = 0;
  // Recursive accumulation with a scale factor.
  std::function<bool(const Expr &, int64_t)> Go = [&](const Expr &N,
                                                      int64_t Scale) -> bool {
    switch (N->Kind) {
    case ExprKind::IntImm:
      Const += Scale * N->IntVal;
      return true;
    case ExprKind::Var: {
      for (unsigned I = 0; I < Iters.size(); ++I)
        if (Iters[I].Name == N->Name) {
          Coeffs[I] += Scale;
          return true;
        }
      return false; // unknown variable
    }
    case ExprKind::Add:
      return Go(N->Operands[0], Scale) && Go(N->Operands[1], Scale);
    case ExprKind::Sub:
      return Go(N->Operands[0], Scale) && Go(N->Operands[1], -Scale);
    case ExprKind::Mul: {
      int64_t C;
      if (isConstInt(N->Operands[0], &C))
        return Go(N->Operands[1], Scale * C);
      if (isConstInt(N->Operands[1], &C))
        return Go(N->Operands[0], Scale * C);
      return false;
    }
    default:
      return false;
    }
  };
  return Go(E, 1);
}

/// Builds the access relation {Iters -> TensorDims : out_d == Idx_d(Iters)}.
/// \p Params (possibly empty) are shared shape parameters; accesses carry
/// zero parameter coefficients, the params exist only for space alignment.
static BasicMap buildAccessMap(const std::vector<IterVar> &Iters,
                               const Tensor &T,
                               const std::vector<Expr> &Indices,
                               const std::string &StmtName,
                               const std::vector<std::string> &Params) {
  std::vector<std::string> InNames, OutNames;
  for (const IterVar &IV : Iters)
    InNames.push_back(IV.Name);
  for (unsigned I = 0; I < T->Shape.size(); ++I)
    OutNames.push_back("d" + std::to_string(I));
  BasicMap M(Space::forMap(InNames, OutNames, StmtName, T->Name, Params));
  for (unsigned D = 0; D < Indices.size(); ++D) {
    std::vector<int64_t> Coeffs;
    int64_t Const;
    bool Ok = exprToAffine(Indices[D], Iters, Coeffs, Const);
    assert(Ok && "non-affine tensor access after preparation passes");
    (void)Ok;
    std::vector<int64_t> Row(M.numCols(), 0);
    for (unsigned I = 0; I < Iters.size(); ++I)
      Row[M.inCol(I)] = Coeffs[I];
    Row[M.outCol(D)] = -1;
    M.addEq(Row, Const);
  }
  return M;
}

/// Collects every TensorRead subexpression with its index list.
static void collectReadAccesses(const Expr &E,
                                std::vector<const ExprNode *> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::TensorRead)
    Out.push_back(E.get());
  for (const Expr &Op : E->Operands)
    collectReadAccesses(Op, Out);
}

/// Builds the iteration domain 0 <= i < extent per iterator. When an
/// iterator's position appears in \p ParamOfIter (>= 0), its upper bound
/// uses the parameter column (i <= p - 1) instead of the concrete extent,
/// and the bucket context Lo <= p <= Hi from \p SymRanges is added for
/// every parameter.
static BasicSet buildDomain(const std::vector<IterVar> &Iters,
                            const std::string &Name,
                            const std::vector<std::string> &Params,
                            const std::vector<int> &ParamOfIter,
                            const std::vector<SymExtentRange> &ParamRanges) {
  std::vector<std::string> Names;
  for (const IterVar &IV : Iters)
    Names.push_back(IV.Name);
  BasicSet D(Space::forSet(Names, Name, Params));
  unsigned NC = D.numCols();
  for (unsigned I = 0; I < Iters.size(); ++I) {
    std::vector<int64_t> Lo(NC, 0);
    Lo[D.inCol(I)] = 1;
    D.addIneq(Lo, 0);
    std::vector<int64_t> Hi(NC, 0);
    Hi[D.inCol(I)] = -1;
    int Par = I < ParamOfIter.size() ? ParamOfIter[I] : -1;
    if (Par >= 0) {
      Hi[D.paramCol(Par)] = 1; // p - 1 - i >= 0
      D.addIneq(Hi, -1);
    } else {
      D.addIneq(Hi, Iters[I].Extent - 1);
    }
  }
  for (unsigned P = 0; P < Params.size(); ++P) {
    std::vector<int64_t> Lo(NC, 0);
    Lo[D.paramCol(P)] = 1;
    D.addIneq(Lo, -ParamRanges[P].Lo); // p >= Lo
    std::vector<int64_t> Hi(NC, 0);
    Hi[D.paramCol(P)] = -1;
    D.addIneq(Hi, ParamRanges[P].Hi); // p <= Hi
  }
  return D;
}

/// Shared worker behind the concrete and parametric extractions. With a
/// null \p SymRanges the program is fully concrete (no parameters).
static PolyProgram
extractImpl(const Module &M,
            const std::map<std::string, SymExtentRange> *SymRanges) {
  PolyProgram P;
  P.Mod = &M;
  std::vector<std::string> Params;
  std::vector<SymExtentRange> ParamRanges;
  std::map<std::string, int> ParamIdx;
  if (SymRanges)
    for (const auto &[Sym, R] : *SymRanges) {
      ParamIdx[Sym] = static_cast<int>(Params.size());
      Params.push_back(Sym);
      ParamRanges.push_back(R);
    }
  unsigned Id = 0;
  auto AddStmt = [&](const ComputeOp *Op, PolyStmt::Role Role,
                     std::vector<IterVar> Iters, Expr Rhs,
                     std::vector<Expr> WriteIdx) {
    PolyStmt S;
    S.Id = Id;
    S.Name = "S" + std::to_string(Id);
    ++Id;
    S.Op = Op;
    S.StmtRole = Role;
    S.Iters = std::move(Iters);
    // Output axes (positions < Op->Axis.size()) are dynamic when the
    // op-output dim carries a registered symbol; reduce axes never are
    // (the supported class rejects dynamic reduce extents).
    std::vector<int> ParamOfIter(S.Iters.size(), -1);
    if (SymRanges)
      for (unsigned I = 0; I < S.Iters.size() && I < Op->Axis.size(); ++I) {
        auto It = ParamIdx.find(Op->Output->symOf(I));
        if (It != ParamIdx.end())
          ParamOfIter[I] = It->second;
      }
    S.Domain = buildDomain(S.Iters, S.Name, Params, ParamOfIter, ParamRanges);
    S.Rhs = std::move(Rhs);
    S.Write.Ref = Op->Output;
    S.Write.Indices = WriteIdx;
    S.Write.Rel = buildAccessMap(S.Iters, Op->Output, WriteIdx, S.Name,
                                 Params);
    std::vector<const ExprNode *> ReadNodes;
    collectReadAccesses(S.Rhs, ReadNodes);
    for (const ExprNode *R : ReadNodes) {
      PolyAccess A;
      A.Ref = R->Ref;
      A.Indices = R->Operands;
      A.Rel = buildAccessMap(S.Iters, R->Ref, R->Operands, S.Name, Params);
      S.Reads.push_back(std::move(A));
    }
    P.Stmts.push_back(std::move(S));
  };

  for (const auto &Op : M.ops()) {
    std::vector<Expr> OutIdx;
    for (const IterVar &IV : Op->Axis)
      OutIdx.push_back(var(IV.Name));
    if (!Op->isReduction()) {
      AddStmt(Op.get(), PolyStmt::Role::Simple, Op->Axis, Op->Body, OutIdx);
      continue;
    }
    const ExprNode &Red = *Op->Body;
    // Init statement over the output axes.
    AddStmt(Op.get(), PolyStmt::Role::Init, Op->Axis,
            reduceInit(Red.RKind, Red.Type), OutIdx);
    // Update statement over output + reduce axes.
    std::vector<IterVar> UpdIters = Op->Axis;
    for (const IterVar &RV : Red.ReduceAxes)
      UpdIters.push_back(RV);
    Expr Prev = tensorRead(Op->Output, OutIdx);
    Expr Combined;
    switch (Red.RKind) {
    case ReduceKind::Sum:
      Combined = add(Prev, Red.Operands[0]);
      break;
    case ReduceKind::Max:
      Combined = maxE(Prev, Red.Operands[0]);
      break;
    case ReduceKind::Min:
      Combined = minE(Prev, Red.Operands[0]);
      break;
    }
    AddStmt(Op.get(), PolyStmt::Role::Update, UpdIters, Combined, OutIdx);
  }
  return P;
}

PolyProgram extractPolyProgram(const Module &M) {
  return extractImpl(M, nullptr);
}

PolyProgram extractPolyProgramParametric(
    const Module &M, const std::map<std::string, SymExtentRange> &SymRanges) {
  return extractImpl(M, &SymRanges);
}

} // namespace ir
} // namespace akg
