//===- ir/PolyExtract.h - DSL -> polyhedral statements ----------*- C++ -*-===//
//
// Extraction of the polyhedral representation from a DSL module: one
// statement per elementwise op, and an initialization + update statement
// pair per reduction op (matching the S1/S2 decomposition of the paper's
// running example, Fig 3/Fig 5). Each statement carries its iteration
// domain, write access relation, read access relations and the stored
// value expression.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_POLYEXTRACT_H
#define AKG_IR_POLYEXTRACT_H

#include "ir/Dsl.h"
#include "poly/Affine.h"

namespace akg {
namespace ir {

/// An affine tensor access: statement iterations -> tensor elements.
struct PolyAccess {
  Tensor Ref;
  /// In dims = statement iterators, out dims = tensor dims.
  poly::BasicMap Rel;
  /// The index expressions (in terms of the statement's iterator names).
  std::vector<Expr> Indices;
};

/// One polyhedral statement.
struct PolyStmt {
  enum class Role { Simple, Init, Update };

  unsigned Id = 0;       // textual order; defines the initial schedule
  std::string Name;      // "S0", "S1", ...
  const ComputeOp *Op = nullptr;
  Role StmtRole = Role::Simple;
  std::vector<IterVar> Iters; // axis (+ reduce axes for updates)
  poly::BasicSet Domain;      // over Iters
  PolyAccess Write;
  std::vector<PolyAccess> Reads;
  /// Full right-hand side (for updates this includes the recurrence read of
  /// the output tensor).
  Expr Rhs;

  unsigned numIters() const { return static_cast<unsigned>(Iters.size()); }
  bool isReduction() const { return StmtRole == Role::Update; }
};

/// A module lowered to polyhedral form.
struct PolyProgram {
  const Module *Mod = nullptr;
  std::vector<PolyStmt> Stmts;

  const PolyStmt &stmt(unsigned Id) const { return Stmts.at(Id); }
};

/// Converts affine index expressions over \p Iters into (coeffs, constant);
/// returns false for non-affine indices.
bool exprToAffine(const Expr &E, const std::vector<IterVar> &Iters,
                  std::vector<int64_t> &Coeffs, int64_t &Const);

/// Builds the polyhedral program for a module. Asserts on non-affine
/// accesses (the preparation passes must have established affine form).
PolyProgram extractPolyProgram(const Module &M);

/// Closed extent range one shape symbol may take within a bucket.
struct SymExtentRange {
  int64_t Lo = 1;
  int64_t Hi = 1;
};

/// Parametric variant for dynamic-shape modules (DESIGN.md 4k): every
/// shape symbol in \p SymRanges becomes a set parameter shared by all
/// statement domains and access relations. A dynamic output axis (one
/// whose op-output dim carries the symbol, per ir::propagateShapeSymbols /
/// analyzeDynamicShapes) is bounded by 0 <= i < p instead of its concrete
/// extent, and every domain carries the bucket context Lo <= p <= Hi.
/// Access relations keep zero parameter coefficients (identity indexing in
/// the supported class). The shape-dependence probe specializes this one
/// program at both bucket boundaries via BasicSet::fixParam.
PolyProgram extractPolyProgramParametric(
    const Module &M, const std::map<std::string, SymExtentRange> &SymRanges);

} // namespace ir
} // namespace akg

#endif // AKG_IR_POLYEXTRACT_H
