//===- ir/Stmt.cpp - Halide-like statement IR -----------------------------===//

#include "ir/Stmt.h"
#include "ir/Dsl.h"

#include <cassert>
#include <sstream>

namespace akg {
namespace ir {

Stmt makeFor(std::string Var, Expr Min, Expr Extent, Stmt Body,
             ForType FType) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::For;
  N->Var = std::move(Var);
  N->Min = std::move(Min);
  N->Extent = std::move(Extent);
  N->FType = FType;
  N->Children = {std::move(Body)};
  return N;
}

Stmt makeProvide(Tensor Target, std::vector<Expr> Indices, Expr Value) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::Provide;
  N->Target = std::move(Target);
  N->Indices = std::move(Indices);
  N->Value = std::move(Value);
  return N;
}

Stmt makeBlock(std::vector<Stmt> Stmts) {
  if (Stmts.size() == 1)
    return Stmts[0];
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::Block;
  N->Children = std::move(Stmts);
  return N;
}

Stmt makeIf(Expr Cond, Stmt Then, Stmt Else) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::IfThenElse;
  N->Cond = std::move(Cond);
  N->Children = {std::move(Then)};
  if (Else)
    N->Children.push_back(std::move(Else));
  return N;
}

Stmt makeAttr(std::string Key, std::string Value, Stmt Body) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::Attr;
  N->Key = std::move(Key);
  N->StrValue = std::move(Value);
  N->Children = {std::move(Body)};
  return N;
}

Stmt makeAllocate(Tensor Buffer, std::string MemScope, Stmt Body) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::Allocate;
  N->Buffer = std::move(Buffer);
  N->MemScope = std::move(MemScope);
  N->Children = {std::move(Body)};
  return N;
}

Stmt makeEvaluate(Expr Value) {
  auto N = std::make_shared<StmtNode>();
  N->Kind = StmtKind::Evaluate;
  N->Value = std::move(Value);
  return N;
}

std::string stmtToString(const Stmt &S, unsigned Indent) {
  if (!S)
    return "";
  std::string Pad(Indent * 2, ' ');
  std::ostringstream OS;
  switch (S->Kind) {
  case StmtKind::For:
    OS << Pad << "for (" << S->Var << " = " << exprToString(S->Min) << "; "
       << S->Var << " < " << exprToString(S->Min) << " + "
       << exprToString(S->Extent) << "; ++" << S->Var << ")"
       << (S->FType == ForType::Vectorized
               ? " /*vectorized*/"
               : S->FType == ForType::Unrolled ? " /*unrolled*/" : "")
       << " {\n"
       << stmtToString(S->Children[0], Indent + 1) << Pad << "}\n";
    break;
  case StmtKind::Provide: {
    OS << Pad << S->Target->Name << "[";
    for (unsigned I = 0; I < S->Indices.size(); ++I)
      OS << (I ? ", " : "") << exprToString(S->Indices[I]);
    OS << "] = " << exprToString(S->Value) << ";\n";
    break;
  }
  case StmtKind::Block:
    for (const Stmt &C : S->Children)
      OS << stmtToString(C, Indent);
    break;
  case StmtKind::IfThenElse:
    OS << Pad << "if (" << exprToString(S->Cond) << ") {\n"
       << stmtToString(S->Children[0], Indent + 1) << Pad << "}\n";
    if (S->Children.size() > 1)
      OS << Pad << "else {\n"
         << stmtToString(S->Children[1], Indent + 1) << Pad << "}\n";
    break;
  case StmtKind::Attr:
    OS << Pad << "// attr " << S->Key << " = " << S->StrValue << "\n"
       << stmtToString(S->Children[0], Indent);
    break;
  case StmtKind::Allocate:
    OS << Pad << "allocate " << S->Buffer->Name << " in " << S->MemScope
       << "\n"
       << stmtToString(S->Children[0], Indent);
    break;
  case StmtKind::Evaluate:
    OS << Pad << exprToString(S->Value) << ";\n";
    break;
  }
  return OS.str();
}

unsigned countStmtNodes(const Stmt &S, StmtKind K) {
  if (!S)
    return 0;
  unsigned N = S->Kind == K ? 1 : 0;
  for (const Stmt &C : S->Children)
    N += countStmtNodes(C, K);
  return N;
}

Stmt lowerToLoops(const Module &M) {
  std::vector<Stmt> Nests;
  for (const auto &Op : M.ops()) {
    std::vector<Expr> Idx;
    for (const IterVar &IV : Op->Axis)
      Idx.push_back(var(IV.Name));
    std::vector<Stmt> Body;
    if (!Op->isReduction()) {
      Body.push_back(makeProvide(Op->Output, Idx, Op->Body));
    } else {
      const ExprNode &Red = *Op->Body;
      Body.push_back(
          makeProvide(Op->Output, Idx, reduceInit(Red.RKind, Red.Type)));
      // Update statement nested under the reduce loops.
      Expr Prev = tensorRead(Op->Output, Idx);
      Expr Combined;
      switch (Red.RKind) {
      case ReduceKind::Sum:
        Combined = add(Prev, Red.Operands[0]);
        break;
      case ReduceKind::Max:
        Combined = maxE(Prev, Red.Operands[0]);
        break;
      case ReduceKind::Min:
        Combined = minE(Prev, Red.Operands[0]);
        break;
      }
      Stmt Update = makeProvide(Op->Output, Idx, Combined);
      for (unsigned I = Red.ReduceAxes.size(); I-- > 0;)
        Update = makeFor(Red.ReduceAxes[I].Name, intImm(0),
                         intImm(Red.ReduceAxes[I].Extent), Update);
      Body.push_back(Update);
    }
    Stmt Nest = makeBlock(std::move(Body));
    for (unsigned I = Op->Axis.size(); I-- > 0;)
      Nest = makeFor(Op->Axis[I].Name, intImm(0),
                     intImm(Op->Axis[I].Extent), Nest);
    Nests.push_back(std::move(Nest));
  }
  return makeBlock(std::move(Nests));
}

namespace {

void execStmtImpl(const Stmt &S, BufferMap &Bufs,
                  std::map<std::string, int64_t> &Env) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::For: {
    int64_t Min = static_cast<int64_t>(evalExpr(S->Min, Env, Bufs));
    int64_t Extent = static_cast<int64_t>(evalExpr(S->Extent, Env, Bufs));
    for (int64_t V = Min; V < Min + Extent; ++V) {
      Env[S->Var] = V;
      execStmtImpl(S->Children[0], Bufs, Env);
    }
    Env.erase(S->Var);
    break;
  }
  case StmtKind::Provide: {
    auto &Buf = Bufs[S->Target->Name];
    if (Buf.empty())
      Buf.assign(S->Target->numElements(), 0.0f);
    int64_t Flat = 0;
    for (unsigned I = 0; I < S->Indices.size(); ++I) {
      int64_t Idx = static_cast<int64_t>(evalExpr(S->Indices[I], Env, Bufs));
      assert(Idx >= 0 && Idx < S->Target->Shape[I] &&
             "store index out of bounds");
      Flat = Flat * S->Target->Shape[I] + Idx;
    }
    Buf[Flat] = static_cast<float>(evalExpr(S->Value, Env, Bufs));
    break;
  }
  case StmtKind::Block:
    for (const Stmt &C : S->Children)
      execStmtImpl(C, Bufs, Env);
    break;
  case StmtKind::IfThenElse:
    if (evalExpr(S->Cond, Env, Bufs) != 0)
      execStmtImpl(S->Children[0], Bufs, Env);
    else if (S->Children.size() > 1)
      execStmtImpl(S->Children[1], Bufs, Env);
    break;
  case StmtKind::Attr:
  case StmtKind::Allocate:
    execStmtImpl(S->Children[0], Bufs, Env);
    break;
  case StmtKind::Evaluate:
    break;
  }
}

} // namespace

void execStmt(const Stmt &S, std::map<std::string, std::vector<float>> &Bufs) {
  std::map<std::string, int64_t> Env;
  execStmtImpl(S, Bufs, Env);
}

void execStmtWithEnv(const Stmt &S,
                     std::map<std::string, std::vector<float>> &Bufs,
                     std::map<std::string, int64_t> Env) {
  execStmtImpl(S, Bufs, Env);
}

} // namespace ir
} // namespace akg
