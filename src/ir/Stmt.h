//===- ir/Stmt.h - Halide-like statement IR ---------------------*- C++ -*-===//
//
// The loop-nest statement IR AKG lowers the DSL into (the HalideIR role in
// the paper's Fig 2) and the form the schedule-tree AST generator produces
// before CCE lowering. Immutable shared nodes, one tagged node type.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_STMT_H
#define AKG_IR_STMT_H

#include "ir/Expr.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace ir {

enum class StmtKind {
  For,
  Provide, // Target[Indices...] = Value
  Block,   // sequence of children
  IfThenElse,
  Attr,     // string key/value annotation wrapping a body
  Allocate, // local buffer in a memory scope wrapping a body
  Evaluate, // expression for side effect (intrinsic calls)
};

enum class ForType { Serial, Vectorized, Unrolled };

struct StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

struct StmtNode {
  StmtKind Kind;
  // For.
  std::string Var;
  Expr Min, Extent;
  ForType FType = ForType::Serial;
  // Provide.
  Tensor Target;
  std::vector<Expr> Indices;
  Expr Value;
  // IfThenElse condition.
  Expr Cond;
  // Attr / Allocate.
  std::string Key, StrValue;
  Tensor Buffer;
  std::string MemScope;
  // Children: For/Attr/Allocate body = [0]; IfThenElse = [then, else?];
  // Block = all.
  std::vector<Stmt> Children;
};

Stmt makeFor(std::string Var, Expr Min, Expr Extent, Stmt Body,
             ForType FType = ForType::Serial);
Stmt makeProvide(Tensor Target, std::vector<Expr> Indices, Expr Value);
Stmt makeBlock(std::vector<Stmt> Stmts);
Stmt makeIf(Expr Cond, Stmt Then, Stmt Else = nullptr);
Stmt makeAttr(std::string Key, std::string Value, Stmt Body);
Stmt makeAllocate(Tensor Buffer, std::string MemScope, Stmt Body);
Stmt makeEvaluate(Expr Value);

/// Pretty printer with indentation; used for golden tests and debugging.
std::string stmtToString(const Stmt &S, unsigned Indent = 0);

/// Counts statement nodes of each kind (used by the LoC experiment and
/// tests).
unsigned countStmtNodes(const Stmt &S, StmtKind K);

/// Lowers a module to a naive loop nest (one nest per op, textual order).
/// This is the initial "HalideIR" the polyhedral flow starts from.
class Module;
Stmt lowerToLoops(const Module &M);

/// Interprets a statement tree against named float buffers (allocating
/// Provide targets on first store). Used as the correctness oracle between
/// compilation stages.
void execStmt(const Stmt &S, std::map<std::string, std::vector<float>> &Bufs);

/// As execStmt, but with pre-bound variables (e.g. enclosing loop
/// variables when a fragment is executed by the simulator).
void execStmtWithEnv(const Stmt &S,
                     std::map<std::string, std::vector<float>> &Bufs,
                     std::map<std::string, int64_t> Env);

} // namespace ir
} // namespace akg

#endif // AKG_IR_STMT_H
