//===- ir/SymbolicShape.cpp - Dynamic-shape analysis and rebinding --------===//

#include "ir/SymbolicShape.h"

#include "ir/ModuleUtils.h"

#include <sstream>

namespace akg {
namespace ir {

namespace {

/// Formats "op 'X': reason" fallback diagnostics.
std::string diag(const ComputeOp &Op, const std::string &What) {
  return "op '" + Op.Name + "': " + What;
}

} // namespace

DynShapeAnalysis analyzeDynamicShapes(Module &M) {
  DynShapeAnalysis A;
  const auto &Syms = M.shapeSymbols();

  // Bind each symbol to the concrete extent the request carries, checking
  // declaration, declared range, and cross-dim consistency.
  for (const Tensor &In : M.inputs()) {
    for (unsigned D = 0; D < In->Shape.size(); ++D) {
      const std::string &Sym = In->symOf(D);
      if (Sym.empty())
        continue;
      auto SIt = Syms.find(Sym);
      if (SIt == Syms.end()) {
        A.Reason = "input '" + In->Name + "' marks dim " + std::to_string(D) +
                   " with undeclared symbol '" + Sym + "'";
        return A;
      }
      int64_t Ext = In->Shape[D];
      if (Ext < SIt->second.Min || Ext > SIt->second.Max) {
        std::ostringstream OS;
        OS << "symbol '" << Sym << "' bound to " << Ext
           << " outside its declared range [" << SIt->second.Min << ", "
           << SIt->second.Max << "]";
        A.Reason = OS.str();
        return A;
      }
      auto [BIt, New] = A.Bound.emplace(Sym, Ext);
      if (!New && BIt->second != Ext) {
        std::ostringstream OS;
        OS << "symbol '" << Sym << "' bound inconsistently (" << BIt->second
           << " vs " << Ext << " at input '" << In->Name << "')";
        A.Reason = OS.str();
        return A;
      }
    }
  }
  if (A.Bound.empty()) {
    A.Reason = "module has no dynamic dims";
    return A;
  }

  // Propagate marks op by op. For each op: pass 1 discovers which output
  // axes carry a symbol (an axis var used as the identity index of a
  // dynamic tensor dim); pass 2 rejects every other appearance of those
  // axis vars (arithmetic indices of static dims, value positions, reduce
  // axes were already rejected in pass 1 as non-output-axis indices).
  for (const auto &Op : M.ops()) {
    Tensor Out = Op->Output;
    Out->SymShape.assign(Out->Shape.size(), "");
    std::map<std::string, unsigned> AxisDim;
    for (unsigned I = 0; I < Op->Axis.size(); ++I)
      AxisDim[Op->Axis[I].Name] = I;

    std::map<std::string, std::string> AxisSym; // axis var -> symbol
    std::string Fail;

    // Pass 1: every read's dynamic dims must be identity-indexed by an
    // output axis; bind that axis to the dim's symbol.
    std::function<void(const Expr &)> Walk1 = [&](const Expr &E) {
      if (!E || !Fail.empty())
        return;
      if (E->Kind == ExprKind::TensorRead) {
        for (unsigned D = 0; D < E->Operands.size(); ++D) {
          const std::string &Sym = E->Ref->symOf(D);
          if (Sym.empty())
            continue;
          const Expr &Idx = E->Operands[D];
          if (Idx->Kind != ExprKind::Var) {
            Fail = diag(*Op, "dynamic dim " + std::to_string(D) + " of '" +
                                 E->Ref->Name +
                                 "' indexed by non-identity expression '" +
                                 exprToString(Idx) + "'");
            return;
          }
          auto AIt = AxisDim.find(Idx->Name);
          if (AIt == AxisDim.end()) {
            Fail = diag(*Op, "dynamic dim of '" + E->Ref->Name +
                                 "' indexed by non-output axis '" + Idx->Name +
                                 "' (reduce axis or free var)");
            return;
          }
          if (Op->Axis[AIt->second].Extent != E->Ref->Shape[D] ||
              E->Ref->Shape[D] != A.Bound[Sym]) {
            Fail = diag(*Op, "axis '" + Idx->Name +
                                 "' extent disagrees with dynamic dim of '" +
                                 E->Ref->Name + "'");
            return;
          }
          auto [It, New] = AxisSym.emplace(Idx->Name, Sym);
          if (!New && It->second != Sym) {
            Fail = diag(*Op, "axis '" + Idx->Name +
                                 "' indexes two different symbols ('" +
                                 It->second + "' and '" + Sym + "')");
            return;
          }
        }
      }
      for (const Expr &Child : E->Operands)
        Walk1(Child);
    };
    Walk1(Op->Body);
    if (!Fail.empty()) {
      A.Reason = Fail;
      return A;
    }

    // Pass 2: dynamic axis vars appear nowhere else. Skip the (already
    // validated) identity index at each dynamic dim; any other Var node
    // naming a dynamic axis is a violation.
    std::function<void(const Expr &)> Walk2 = [&](const Expr &E) {
      if (!E || !Fail.empty())
        return;
      if (E->Kind == ExprKind::Var) {
        if (AxisSym.count(E->Name))
          Fail = diag(*Op, "dynamic axis '" + E->Name +
                               "' used outside identity indexing");
        return;
      }
      if (E->Kind == ExprKind::TensorRead) {
        for (unsigned D = 0; D < E->Operands.size(); ++D) {
          if (!E->Ref->symOf(D).empty())
            continue; // identity Var, validated in pass 1
          Walk2(E->Operands[D]);
        }
        return;
      }
      for (const Expr &Child : E->Operands)
        Walk2(Child);
    };
    Walk2(Op->Body);
    if (!Fail.empty()) {
      A.Reason = Fail;
      return A;
    }

    // Derive output marks from the bound axes.
    for (unsigned I = 0; I < Op->Axis.size(); ++I) {
      auto It = AxisSym.find(Op->Axis[I].Name);
      if (It != AxisSym.end())
        Out->SymShape[I] = It->second;
    }
  }

  A.Supported = true;
  return A;
}

Module rebindShapes(const Module &M,
                    const std::map<std::string, int64_t> &NewExtents) {
  auto ExtOf = [&](const std::string &Sym, int64_t Cur) {
    auto It = NewExtents.find(Sym);
    return It == NewExtents.end() ? Cur : It->second;
  };
  Module C;
  for (const auto &[Sym, R] : M.shapeSymbols())
    C.declareShapeSymbol(Sym, R.Min, R.Max);
  std::map<const TensorDecl *, Tensor> Remap;
  for (const Tensor &In : M.inputs()) {
    std::vector<int64_t> Shape = In->Shape;
    for (unsigned D = 0; D < Shape.size(); ++D)
      if (!In->symOf(D).empty())
        Shape[D] = ExtOf(In->symOf(D), Shape[D]);
    Tensor P = C.placeholder(In->Name, Shape, In->Type);
    P->SymShape = In->SymShape;
    Remap[In.get()] = P;
  }
  for (const auto &Op : M.ops()) {
    std::vector<IterVar> Axis = Op->Axis;
    for (unsigned I = 0; I < Axis.size(); ++I)
      if (!Op->Output->symOf(I).empty())
        Axis[I].Extent = ExtOf(Op->Output->symOf(I), Axis[I].Extent);
    Tensor T = C.computeRaw(Op->Name, std::move(Axis),
                            mapExpr(Op->Body, Remap), Op->Output->Type);
    T->SymShape = Op->Output->SymShape;
    Remap[Op->Output.get()] = T;
  }
  return C;
}

} // namespace ir
} // namespace akg
