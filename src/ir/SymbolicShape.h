//===- ir/SymbolicShape.h - Dynamic-shape analysis and rebinding *- C++ -*-===//
//
// Dynamic-shape support (DESIGN.md 4k). A request module marks input tensor
// dims with named shape symbols while Shape holds the concrete extent. This
// file provides the structural analysis that decides whether the module is
// in the *pointwise-in-dynamic-axes* class -- the class for which one tiled
// skeleton compiled at a bucket-representative extent is provably reusable
// for every extent in the bucket (execute at the representative, slice the
// result) -- and the rebinder that produces the skeleton module.
//
// Supported class: every dynamic dimension is a non-reduce output axis with
// identity indexing. Concretely, after propagating symbols from inputs to
// op outputs, (a) a read's index at a dynamic tensor dim must be exactly
// the Var of an output axis carrying the same symbol, (b) dynamic axis vars
// appear nowhere else (not in arithmetic indices of static dims, not in
// value-position expressions such as select conditions, not as reduce
// axes). Zero-padding the inputs up to the representative extent then
// leaves every in-range output element bit-identical, because each output
// element at an in-range point depends only on in-range input elements.
// Anything outside this class falls back to per-shape compilation --
// correctness never depends on bucketing.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_IR_SYMBOLICSHAPE_H
#define AKG_IR_SYMBOLICSHAPE_H

#include "ir/Dsl.h"

#include <map>
#include <string>

namespace akg {
namespace ir {

/// Outcome of the dynamic-shape structural analysis.
struct DynShapeAnalysis {
  /// True when the module is in the pointwise-in-dynamic-axes class and
  /// the skeleton/bind path is sound for it.
  bool Supported = false;
  /// Human-readable fallback reason when !Supported (trace + stats).
  std::string Reason;
  /// Concrete extent currently bound to each shape symbol. Filled even on
  /// some unsupported outcomes; complete when Supported.
  std::map<std::string, int64_t> Bound;
};

/// Propagates input SymShape marks to op outputs and classifies the module.
/// On success op-output tensors carry derived marks (mutates \p M's tensors
/// in place); on failure marks may be partially written but the module's
/// compiled semantics are unchanged (the pipeline never reads marks).
DynShapeAnalysis analyzeDynamicShapes(Module &M);

/// Rebuilds \p M with every shape symbol rebound to NewExtents[sym]: marked
/// tensor dims, marked op axes, and the symbol registry binding all move to
/// the new extents. Symbols absent from \p NewExtents keep their current
/// binding. Call only after analyzeDynamicShapes reported Supported (the
/// rebind assumes identity indexing); callers should still run
/// checkModuleBounds on the result as a safety net and fall back when it
/// reports a violation.
Module rebindShapes(const Module &M,
                    const std::map<std::string, int64_t> &NewExtents);

} // namespace ir
} // namespace akg

#endif // AKG_IR_SYMBOLICSHAPE_H
