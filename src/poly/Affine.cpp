//===- poly/Affine.cpp - Integer sets and affine maps ---------------------===//

#include "poly/Affine.h"

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>

namespace akg {
namespace poly {

Space Space::forSet(std::vector<std::string> Dims, std::string Tuple,
                    std::vector<std::string> Params) {
  Space S;
  S.In = std::move(Dims);
  S.InTuple = std::move(Tuple);
  S.Params = std::move(Params);
  return S;
}

Space Space::forMap(std::vector<std::string> In, std::vector<std::string> Out,
                    std::string InTuple, std::string OutTuple,
                    std::vector<std::string> Params) {
  Space S;
  S.In = std::move(In);
  S.Out = std::move(Out);
  S.InTuple = std::move(InTuple);
  S.OutTuple = std::move(OutTuple);
  S.Params = std::move(Params);
  return S;
}

//===----------------------------------------------------------------------===//
// BasicSet
//===----------------------------------------------------------------------===//

/// Divides a constraint by the gcd of its coefficients, tightening the
/// constant of inequalities (valid over integers).
static void normalizeConstraint(Constraint &C) {
  int64_t G = 0;
  for (int64_t V : C.Coeffs)
    G = std::gcd(G, std::abs(V));
  if (G <= 1)
    return;
  // An equality with non-divisible constant is unsatisfiable; keep it
  // fully as-is (coefficients included) so emptiness detection sees the
  // contradiction rather than a rescaled, satisfiable equality.
  if (C.IsEq && C.Const % G != 0)
    return;
  for (int64_t &V : C.Coeffs)
    V /= G;
  if (C.IsEq) {
    C.Const /= G;
  } else {
    // floor division tightens a >= constraint over the integers.
    int64_t Q = C.Const / G;
    if (C.Const % G != 0 && C.Const < 0)
      --Q;
    C.Const = Q;
  }
}

static uint64_t hashMix(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2));
}

/// Hash over the nonzero (column, coefficient) pairs plus constant and
/// kind. Ignoring zero coefficients keeps hashes stable when zero columns
/// are appended (addDiv / addFreeExistential).
static uint64_t hashConstraint(const Constraint &C) {
  uint64_t H = C.IsEq ? 0x9e37u : 0x79b9u;
  H = hashMix(H, static_cast<uint64_t>(C.Const));
  for (unsigned I = 0; I < C.Coeffs.size(); ++I)
    if (C.Coeffs[I] != 0) {
      H = hashMix(H, I);
      H = hashMix(H, static_cast<uint64_t>(C.Coeffs[I]));
    }
  return H;
}

/// Hash over the nonzero coefficient pairs and kind only (no constant):
/// the grouping key for syntactic-dominance prefiltering.
static uint64_t hashCoeffs(const Constraint &C) {
  uint64_t H = C.IsEq ? 0x517cu : 0xc2b2u;
  for (unsigned I = 0; I < C.Coeffs.size(); ++I)
    if (C.Coeffs[I] != 0) {
      H = hashMix(H, I);
      H = hashMix(H, static_cast<uint64_t>(C.Coeffs[I]));
    }
  return H;
}

void BasicSet::rebuildConHashes() {
  ConHashes.resize(Cons.size());
  for (unsigned I = 0; I < Cons.size(); ++I)
    ConHashes[I] = hashConstraint(Cons[I]);
}

void BasicSet::addConstraint(Constraint C) {
  assert(C.Coeffs.size() == numCols() && "constraint arity mismatch");
  normalizeConstraint(C);
  // Exact-duplicate dedup: hash scan first, deep compare on hits. Dropping
  // a duplicate leaves the set unchanged.
  uint64_t H = hashConstraint(C);
  assert(ConHashes.size() == Cons.size() && "constraint hash index stale");
  for (unsigned I = 0; I < Cons.size(); ++I) {
    if (ConHashes[I] != H)
      continue;
    const Constraint &D = Cons[I];
    if (D.IsEq == C.IsEq && D.Const == C.Const && D.Coeffs == C.Coeffs) {
      Stats::get().add("affine.dup_constraint");
      return;
    }
  }
  Cons.push_back(std::move(C));
  ConHashes.push_back(H);
}

void BasicSet::addIneq(std::vector<int64_t> Coeffs, int64_t Const) {
  Coeffs.resize(numCols(), 0);
  addConstraint({std::move(Coeffs), Const, /*IsEq=*/false});
}

void BasicSet::addEq(std::vector<int64_t> Coeffs, int64_t Const) {
  Coeffs.resize(numCols(), 0);
  addConstraint({std::move(Coeffs), Const, /*IsEq=*/true});
}

void BasicSet::fixParam(unsigned P, int64_t V) {
  assert(P < Sp.numParams() && "fixParam: no such parameter");
  std::vector<int64_t> Eq(numCols(), 0);
  Eq[paramCol(P)] = 1;
  addConstraint({std::move(Eq), -V, /*IsEq=*/true});
}

unsigned BasicSet::appendInDim(const std::string &Name) {
  unsigned Pos = Sp.numParams() + Sp.numIn();
  Sp.In.push_back(Name);
  for (Constraint &C : Cons)
    C.Coeffs.insert(C.Coeffs.begin() + Pos, 0);
  for (DivDef &D : Divs)
    D.Coeffs.insert(D.Coeffs.begin() + Pos, 0);
  rebuildConHashes(); // column indices shifted
  return Pos;
}

unsigned BasicSet::addDiv(std::vector<int64_t> Coeffs, int64_t Const,
                          int64_t Denom) {
  assert(Denom > 0 && "div denominator must be positive");
  unsigned OldCols = numCols();
  Coeffs.resize(OldCols, 0);
  DivDef D{Coeffs, Const, Denom};
  Divs.push_back(D);
  for (Constraint &C : Cons)
    C.Coeffs.push_back(0);
  for (DivDef &DD : Divs)
    DD.Coeffs.resize(numCols() - 1, 0); // defs never reference themselves
  unsigned Col = numCols() - 1;
  // Defining constraints: 0 <= e - Denom*q <= Denom - 1.
  std::vector<int64_t> Lower(numCols(), 0);
  for (unsigned I = 0; I < OldCols; ++I)
    Lower[I] = D.Coeffs[I];
  Lower[Col] = -Denom;
  addIneq(Lower, D.Const);
  std::vector<int64_t> Upper(numCols(), 0);
  for (unsigned I = 0; I < OldCols; ++I)
    Upper[I] = -D.Coeffs[I];
  Upper[Col] = Denom;
  addIneq(Upper, Denom - 1 - D.Const);
  return Col;
}

unsigned BasicSet::addFreeExistential() {
  Divs.push_back(DivDef{std::vector<int64_t>(numCols(), 0), 0, 0});
  for (Constraint &C : Cons)
    C.Coeffs.push_back(0);
  for (DivDef &DD : Divs)
    DD.Coeffs.resize(numCols() - 1, 0);
  return numCols() - 1;
}

BasicSet BasicSet::intersect(const BasicSet &O) const {
  assert(Sp.numParams() == O.Sp.numParams() && Sp.numIn() == O.Sp.numIn() &&
         Sp.numOut() == O.Sp.numOut() && "space mismatch in intersect");
  BasicSet R = *this;
  // Append O's divs as new columns of R.
  unsigned Base = R.numCols();
  unsigned Shared = Sp.numParams() + Sp.numIn() + Sp.numOut();
  for (const DivDef &D : O.Divs) {
    R.Divs.push_back(DivDef{{}, D.Const, D.Denom});
    for (Constraint &C : R.Cons)
      C.Coeffs.push_back(0);
  }
  // Remap a column index of O into R.
  auto RemapCol = [&](unsigned Col) {
    return Col < Shared ? Col : Base + (Col - Shared);
  };
  for (unsigned I = 0; I < O.Divs.size(); ++I) {
    DivDef &D = R.Divs[Base - Shared + I];
    D.Coeffs.assign(R.numCols(), 0);
    for (unsigned C = 0; C < O.Divs[I].Coeffs.size(); ++C)
      if (O.Divs[I].Coeffs[C] != 0)
        D.Coeffs[RemapCol(C)] = O.Divs[I].Coeffs[C];
  }
  for (DivDef &D : R.Divs)
    D.Coeffs.resize(R.numCols(), 0);
  for (const Constraint &C : O.Cons) {
    Constraint NC;
    NC.Coeffs.assign(R.numCols(), 0);
    NC.Const = C.Const;
    NC.IsEq = C.IsEq;
    for (unsigned I = 0; I < C.Coeffs.size(); ++I)
      if (C.Coeffs[I] != 0)
        NC.Coeffs[RemapCol(I)] = C.Coeffs[I];
    // Imported raw (no re-normalization, matching the historical
    // behaviour); keep the hash index in sync by hand.
    R.ConHashes.push_back(hashConstraint(NC));
    R.Cons.push_back(std::move(NC));
  }
  return R;
}

LpProblem BasicSet::toLp() const {
  LpProblem P;
  P.NumVars = numCols();
  for (const Constraint &C : Cons) {
    std::vector<Rational> Coeffs(P.NumVars);
    for (unsigned I = 0; I < P.NumVars; ++I)
      Coeffs[I] = Rational(C.Coeffs[I]);
    if (C.IsEq)
      P.addEq(std::move(Coeffs), Rational(C.Const));
    else
      P.addIneq(std::move(Coeffs), Rational(C.Const));
  }
  return P;
}

bool BasicSet::sampleStillValid(bool NeedInteger) const {
  if (Sample.size() != numCols())
    return false;
  try {
    if (NeedInteger)
      for (const Rational &V : Sample)
        if (!V.isInteger())
          return false;
    for (const Constraint &C : Cons) {
      Rational Acc(C.Const);
      for (unsigned I = 0; I < C.Coeffs.size(); ++I)
        if (C.Coeffs[I] != 0)
          Acc += Rational(C.Coeffs[I]) * Sample[I];
      if (C.IsEq ? !Acc.isZero() : Acc.isNegative())
        return false;
    }
  } catch (const RationalOverflow &) {
    return false; // cannot evaluate: fall back to the LP
  }
  return true;
}

bool BasicSet::isEmpty(bool CheckInteger) const {
  ScopedTimer TT("affine.isEmpty");
  // Fast path: a constraint 0 >= c with c < 0 or 0 == c with c != 0.
  for (const Constraint &C : Cons) {
    bool AllZero = std::all_of(C.Coeffs.begin(), C.Coeffs.end(),
                               [](int64_t V) { return V == 0; });
    if (AllZero && ((C.IsEq && C.Const != 0) || (!C.IsEq && C.Const < 0)))
      return true;
  }
  // Sample-point cache (isl-style): a remembered point that satisfies the
  // current constraints proves non-emptiness without any solve.
  if (sampleStillValid(CheckInteger)) {
    Stats::get().add("lp.solves_avoided_sample");
    return false;
  }
  // Origin membership: evaluated at zero every constraint reduces to its
  // constant, so boxes and access relations (lower bounds with constant 0,
  // upper bounds with positive constant, homogeneous equalities) prove
  // non-emptiness for free. The origin is integral, so this settles the
  // CheckInteger case too.
  {
    bool OriginOk = true;
    for (const Constraint &C : Cons)
      if (C.IsEq ? C.Const != 0 : C.Const < 0) {
        OriginOk = false;
        break;
      }
    if (OriginOk) {
      Sample.assign(numCols(), Rational());
      Stats::get().add("lp.solves_avoided_sample");
      return false;
    }
  }
  // Single-column interval contradiction: constraints touching exactly
  // one column carve rational intervals out of that column; a crossed
  // pair (tightest lower bound above tightest upper bound) proves the
  // LP below would report Infeasible without building it. The check is
  // exact - it fires only on rational infeasibility, the same verdict
  // the simplex reaches, so the answer (and every kernel downstream) is
  // unchanged. Rational emptiness implies integer emptiness, settling
  // the CheckInteger case too.
  {
    unsigned D = numCols();
    std::vector<int64_t> LbN(D), LbD(D, 0), UbN(D), UbD(D, 0); // Den 0: unset
    // N1/D1 > N2/D2 with positive denominators, overflow-free.
    auto Gt = [](int64_t N1, int64_t D1, int64_t N2, int64_t D2) {
      return static_cast<__int128>(N1) * D2 > static_cast<__int128>(N2) * D1;
    };
    for (const Constraint &C : Cons) {
      int Col = -1;
      bool Single = true;
      for (unsigned K = 0; K < C.Coeffs.size(); ++K)
        if (C.Coeffs[K] != 0) {
          if (Col >= 0) {
            Single = false;
            break;
          }
          Col = static_cast<int>(K);
        }
      if (!Single || Col < 0)
        continue;
      int64_t A = C.Coeffs[Col];
      // A*x + c >= 0 (or == 0) bounds x by -c/A; express the bound with a
      // positive denominator. An equality pins both sides.
      int64_t Dn = A > 0 ? A : -A;
      int64_t N = A > 0 ? -C.Const : C.Const;
      if (C.IsEq || A > 0)
        if (!LbD[Col] || Gt(N, Dn, LbN[Col], LbD[Col])) {
          LbN[Col] = N;
          LbD[Col] = Dn;
        }
      if (C.IsEq || A < 0)
        if (!UbD[Col] || Gt(UbN[Col], UbD[Col], N, Dn)) {
          UbN[Col] = N;
          UbD[Col] = Dn;
        }
      if (LbD[Col] && UbD[Col] &&
          Gt(LbN[Col], LbD[Col], UbN[Col], UbD[Col])) {
        Stats::get().add("affine.empty_syntactic");
        return true;
      }
    }
  }
  LpProblem P = toLp();
  bool HaveRationalPoint = false;
  if (CheckInteger && sampleStillValid(/*NeedInteger=*/false)) {
    // A valid rational (but fractional) sample: the rational LP cannot
    // prove emptiness, skip straight to the integer search.
    Stats::get().add("lp.solves_avoided_sample");
    HaveRationalPoint = true;
  }
  if (!HaveRationalPoint) {
    std::vector<Rational> Zero(P.NumVars);
    LpResult R = lpMinimize(P, Zero);
    if (R.Status == LpStatus::Infeasible)
      return true;
    if (R.Status == LpStatus::Optimal)
      Sample = R.Point;
  }
  if (!CheckInteger)
    return false;
  // The rational vertex is frequently already integral; it is then an
  // integer point of the set and the branch-and-bound is unnecessary.
  if (sampleStillValid(/*NeedInteger=*/true)) {
    Stats::get().add("lp.solves_avoided_sample");
    return false;
  }
  LpResult R = ilpSample(P);
  if (R.Status == LpStatus::Infeasible)
    return true;
  if (R.Status == LpStatus::Optimal)
    Sample = R.Point;
  return false; // found a point, or too hard: assume non-empty
}

void BasicSet::eliminateCol(unsigned Col) {
  assert(Col < numCols() && "column out of range");
  // If an equality defines the column with unit coefficient, substitute.
  int SubstIdx = -1;
  for (unsigned I = 0; I < Cons.size(); ++I) {
    if (Cons[I].IsEq && std::abs(Cons[I].Coeffs[Col]) == 1) {
      SubstIdx = static_cast<int>(I);
      break;
    }
  }
  std::vector<Constraint> NewCons;
  if (SubstIdx >= 0) {
    Constraint Def = Cons[SubstIdx];
    int64_t S = Def.Coeffs[Col]; // +1 or -1 ; col = -S * (rest + const)
    for (unsigned I = 0; I < Cons.size(); ++I) {
      if (static_cast<int>(I) == SubstIdx)
        continue;
      Constraint C = Cons[I];
      int64_t F = C.Coeffs[Col];
      if (F != 0) {
        // col = -S * rest ; C + F*col = C - F*S*rest.
        for (unsigned K = 0; K < C.Coeffs.size(); ++K)
          if (K != Col)
            C.Coeffs[K] -= F * S * Def.Coeffs[K];
        C.Const -= F * S * Def.Const;
        C.Coeffs[Col] = 0;
      }
      NewCons.push_back(std::move(C));
    }
  } else {
    // Split any equality with a nonzero coefficient into two inequalities.
    std::vector<Constraint> Work;
    for (const Constraint &C : Cons) {
      if (C.IsEq && C.Coeffs[Col] != 0) {
        Constraint A = C, B = C;
        A.IsEq = false;
        B.IsEq = false;
        for (int64_t &V : B.Coeffs)
          V = -V;
        B.Const = -B.Const;
        Work.push_back(A);
        Work.push_back(B);
      } else {
        Work.push_back(C);
      }
    }
    std::vector<const Constraint *> Pos, Neg;
    for (const Constraint &C : Work) {
      if (C.Coeffs[Col] > 0)
        Pos.push_back(&C);
      else if (C.Coeffs[Col] < 0)
        Neg.push_back(&C);
      else
        NewCons.push_back(C);
    }
    for (const Constraint *P : Pos) {
      for (const Constraint *N : Neg) {
        int64_t A = P->Coeffs[Col];  // > 0
        int64_t B = -N->Coeffs[Col]; // > 0
        int64_t G = std::gcd(A, B);
        int64_t FA = B / G, FB = A / G;
        Constraint C;
        C.Coeffs.assign(numCols(), 0);
        for (unsigned K = 0; K < numCols(); ++K)
          C.Coeffs[K] = FA * P->Coeffs[K] + FB * N->Coeffs[K];
        C.Const = FA * P->Const + FB * N->Const;
        C.IsEq = false;
        assert(C.Coeffs[Col] == 0 && "FM combination failed");
        NewCons.push_back(std::move(C));
      }
    }
  }
  Cons = std::move(NewCons);
  // Physically remove the column.
  for (Constraint &C : Cons)
    C.Coeffs.erase(C.Coeffs.begin() + Col);
  unsigned NP = Sp.numParams(), NI = Sp.numIn(), NO = Sp.numOut();
  if (Col < NP) {
    Sp.Params.erase(Sp.Params.begin() + Col);
  } else if (Col < NP + NI) {
    Sp.In.erase(Sp.In.begin() + (Col - NP));
  } else if (Col < NP + NI + NO) {
    Sp.Out.erase(Sp.Out.begin() + (Col - NP - NI));
  } else {
    Divs.erase(Divs.begin() + (Col - NP - NI - NO));
  }
  for (DivDef &D : Divs) {
    if (D.Coeffs.size() > Col) {
      if (D.Coeffs[Col] != 0) {
        // Definition now unknown: demote to a free existential.
        D.Coeffs.assign(numCols(), 0);
        D.Const = 0;
        D.Denom = 0;
      } else {
        D.Coeffs.erase(D.Coeffs.begin() + Col);
      }
    }
    D.Coeffs.resize(numCols(), 0);
  }
  // Normalize and drop trivial/duplicate constraints.
  for (Constraint &C : Cons)
    normalizeConstraint(C);
  std::vector<Constraint> Dedup;
  for (Constraint &C : Cons) {
    bool AllZero = std::all_of(C.Coeffs.begin(), C.Coeffs.end(),
                               [](int64_t V) { return V == 0; });
    if (AllZero && !C.IsEq && C.Const >= 0)
      continue; // trivially true
    bool Dup = false;
    for (const Constraint &D : Dedup)
      if (D.IsEq == C.IsEq && D.Const == C.Const && D.Coeffs == C.Coeffs) {
        Dup = true;
        break;
      }
    if (!Dup)
      Dedup.push_back(std::move(C));
  }
  Cons = std::move(Dedup);
  rebuildConHashes();
  if (Cons.size() > 48)
    removeRedundant();
}

void BasicSet::eliminateAllDivs() {
  while (numDivs() > 0)
    eliminateCol(divCol(numDivs() - 1));
}

BasicSet BasicSet::projectOntoPrefix(unsigned K) const {
  assert(Sp.isSet() && "projectOntoPrefix expects a set");
  assert(K <= Sp.numIn() && "prefix longer than dimensionality");
  BasicSet R = *this;
  while (R.numDivs() > 0)
    R.eliminateCol(R.divCol(R.numDivs() - 1));
  while (R.space().numIn() > K)
    R.eliminateCol(R.inCol(R.space().numIn() - 1));
  return R;
}

void BasicSet::removeRedundant(bool Prefilter) {
  ScopedTimer T("affine.removeRedundant");
  // Every syntactic shortcut below is gated on a validated member point.
  // That gate is what makes the prefiltered result provably identical to
  // the pure-LP loop: with a member point the set is non-empty, so an LP
  // over "all constraints but I" is feasible, and whenever a shortcut
  // bounds constraint I from below by 0 the LP is also bounded and must
  // reach the same "redundant" verdict. On an empty set the pure-LP loop
  // keeps everything (every probe is infeasible) - the gate makes the
  // prefiltered loop keep everything too.
  bool HaveMember = false;
  if (Prefilter) {
    HaveMember = sampleStillValid(/*NeedInteger=*/false);
    if (!HaveMember) {
      bool OriginOk = true;
      for (const Constraint &C : Cons)
        if (C.IsEq ? C.Const != 0 : C.Const < 0) {
          OriginOk = false;
          break;
        }
      if (OriginOk) {
        Sample.assign(numCols(), Rational());
        HaveMember = true;
      }
    }
  }
  if (Prefilter && HaveMember && Cons.size() > 1) {
    // Syntactic dominance: among inequalities sharing a coefficient
    // vector, only the tightest (smallest constant) can survive the LP
    // loop; every weaker one is provably implied by it. Dropping them
    // here skips one LP solve each. The pure-LP loop keeps the *last*
    // copy attaining the minimum (an earlier equal copy is implied by the
    // later one and removed first), so dominance resolves in favour of
    // the later constraint on ties. Equalities are left alone - the LP
    // loop below never removes them either.
    std::unordered_map<uint64_t, std::vector<unsigned>> Groups;
    std::vector<bool> Drop(Cons.size(), false);
    int64_t Dropped = 0;
    for (unsigned I = 0; I < Cons.size(); ++I) {
      if (Cons[I].IsEq)
        continue;
      uint64_t H = hashCoeffs(Cons[I]);
      auto &Bucket = Groups[H];
      for (unsigned J : Bucket) {
        if (Drop[J] || Cons[J].Coeffs != Cons[I].Coeffs)
          continue;
        if (Cons[I].Const <= Cons[J].Const) {
          Drop[J] = true; // later, at-least-as-tight copy wins
          ++Dropped;
        } else {
          Drop[I] = true;
          ++Dropped;
          break;
        }
      }
      if (!Drop[I])
        Bucket.push_back(I);
    }
    if (Dropped > 0) {
      std::vector<Constraint> Kept;
      Kept.reserve(Cons.size() - Dropped);
      for (unsigned I = 0; I < Cons.size(); ++I)
        if (!Drop[I])
          Kept.push_back(std::move(Cons[I]));
      Cons = std::move(Kept);
      Stats::get().add("affine.redundant_prefiltered", Dropped);
    }
  }
  // Interval implication: bound constraint I from below over the box
  // spanned by the single-column constraints among the others. The box is
  // a relaxation of the LP's feasible region, so a non-negative minimum
  // over the box proves the LP would report "redundant"; combined with
  // the member-point gate above this can only short-circuit solves whose
  // outcome is already determined, never change the surviving set.
  auto BoxImplied = [&](unsigned I) -> bool {
    const Constraint &CI = Cons[I];
    unsigned D = numCols();
    std::vector<Rational> Lb(D), Ub(D);
    std::vector<char> HasLb(D, 0), HasUb(D, 0);
    try {
      for (unsigned J = 0; J < Cons.size(); ++J) {
        if (J == I)
          continue;
        const Constraint &CJ = Cons[J];
        int Col = -1;
        bool Single = true;
        for (unsigned L = 0; L < CJ.Coeffs.size(); ++L)
          if (CJ.Coeffs[L] != 0) {
            if (Col >= 0) {
              Single = false;
              break;
            }
            Col = static_cast<int>(L);
          }
        if (!Single || Col < 0)
          continue;
        int64_t B = CJ.Coeffs[Col];
        // B*x + c >= 0 (or == 0): x >= -c/B when B > 0, x <= -c/B when
        // B < 0; an equality pins both sides.
        Rational V = -(Rational(CJ.Const) / Rational(B));
        if (CJ.IsEq || B > 0)
          if (!HasLb[Col] || V > Lb[Col]) {
            Lb[Col] = V;
            HasLb[Col] = 1;
          }
        if (CJ.IsEq || B < 0)
          if (!HasUb[Col] || V < Ub[Col]) {
            Ub[Col] = V;
            HasUb[Col] = 1;
          }
      }
      Rational Min(CI.Const);
      for (unsigned K = 0; K < CI.Coeffs.size(); ++K) {
        int64_t A = CI.Coeffs[K];
        if (A == 0)
          continue;
        if (A > 0) {
          if (!HasLb[K])
            return false;
          Min += Rational(A) * Lb[K];
        } else {
          if (!HasUb[K])
            return false;
          Min += Rational(A) * Ub[K];
        }
      }
      return !Min.isNegative();
    } catch (const RationalOverflow &) {
      return false; // cannot evaluate cheaply: let the LP decide
    }
  };
  // Implied-by-equality: an inequality whose coefficient vector equals an
  // equality's (up to sign) evaluates to the *constant* C.Const -/+
  // E.Const everywhere on the set, so the LP's objective is constant over
  // the feasible region and its verdict is determined syntactically - in
  // both directions. With the member point the region is non-empty, so
  // the LP would be Optimal at exactly that constant: value >= 0 means it
  // would remove the constraint, value < 0 means it would keep it. Either
  // way one solve is skipped without changing the surviving set.
  auto EqDecided = [&](unsigned I) -> std::optional<bool> {
    const Constraint &CI = Cons[I];
    bool AllZero = std::all_of(CI.Coeffs.begin(), CI.Coeffs.end(),
                               [](int64_t V) { return V == 0; });
    if (AllZero)
      return std::nullopt; // degenerate; let the LP decide
    for (unsigned J = 0; J < Cons.size(); ++J) {
      if (J == I || !Cons[J].IsEq)
        continue;
      const Constraint &E = Cons[J];
      if (E.Coeffs.size() != CI.Coeffs.size())
        continue;
      bool Same = true, Neg = true;
      for (unsigned K = 0; K < CI.Coeffs.size() && (Same || Neg); ++K) {
        Same = Same && CI.Coeffs[K] == E.Coeffs[K];
        Neg = Neg && CI.Coeffs[K] == -E.Coeffs[K];
      }
      if (!Same && !Neg)
        continue;
      // e.x = -E.Const on the set, so CI's value is CI.Const - E.Const
      // (same sign) or CI.Const + E.Const (opposite sign).
      __int128 V = Same
                       ? static_cast<__int128>(CI.Const) - E.Const
                       : static_cast<__int128>(CI.Const) + E.Const;
      return V >= 0;
    }
    return std::nullopt;
  };
  for (unsigned I = 0; I < Cons.size();) {
    if (Cons[I].IsEq) {
      ++I;
      continue;
    }
    if (Prefilter && HaveMember) {
      if (std::optional<bool> Red = EqDecided(I)) {
        Stats::get().add("affine.implied_eq");
        if (*Red) {
          Stats::get().add("affine.redundant_prefiltered");
          Cons.erase(Cons.begin() + I);
        } else {
          ++I;
        }
        continue;
      }
      if (BoxImplied(I)) {
        Stats::get().add("affine.redundant_prefiltered");
        Cons.erase(Cons.begin() + I);
        continue;
      }
    }
    // Test whether constraint I is implied by the others.
    LpProblem P;
    P.NumVars = numCols();
    for (unsigned J = 0; J < Cons.size(); ++J) {
      if (J == I)
        continue;
      std::vector<Rational> Coeffs(P.NumVars);
      for (unsigned C = 0; C < P.NumVars; ++C)
        Coeffs[C] = Rational(Cons[J].Coeffs[C]);
      if (Cons[J].IsEq)
        P.addEq(std::move(Coeffs), Rational(Cons[J].Const));
      else
        P.addIneq(std::move(Coeffs), Rational(Cons[J].Const));
    }
    std::vector<Rational> Obj(P.NumVars);
    for (unsigned C = 0; C < P.NumVars; ++C)
      Obj[C] = Rational(Cons[I].Coeffs[C]);
    LpResult R = lpMinimize(P, Obj);
    bool Redundant = R.Status == LpStatus::Optimal &&
                     R.Value + Rational(Cons[I].Const) >= Rational(0);
    if (Redundant) {
      Stats::get().add("affine.redundant_lp_removed");
      Cons.erase(Cons.begin() + I);
    } else {
      ++I;
    }
  }
  rebuildConHashes();
}

std::optional<int64_t> BasicSet::minOfCol(unsigned Col) const {
  LpProblem P = toLp();
  std::vector<Rational> Obj(P.NumVars);
  Obj[Col] = Rational(1);
  LpResult R = lpMinimize(P, Obj);
  if (R.Status != LpStatus::Optimal)
    return std::nullopt;
  Sample = R.Point; // the optimum is a point of the set: seed the cache
  return R.Value.ceil().getInt64();
}

std::optional<int64_t> BasicSet::maxOfCol(unsigned Col) const {
  LpProblem P = toLp();
  std::vector<Rational> Obj(P.NumVars);
  Obj[Col] = Rational(1);
  LpResult R = lpMaximize(P, Obj);
  if (R.Status != LpStatus::Optimal)
    return std::nullopt;
  Sample = R.Point;
  return R.Value.floor().getInt64();
}

std::optional<int64_t> BasicSet::fixedValue(unsigned Col) const {
  std::optional<int64_t> Lo = minOfCol(Col);
  if (!Lo)
    return std::nullopt;
  std::optional<int64_t> Hi = maxOfCol(Col);
  if (!Hi || *Lo != *Hi)
    return std::nullopt;
  return Lo;
}

void BasicSet::recastSpace(Space NewSp) {
  unsigned OldDims = Sp.numParams() + Sp.numIn() + Sp.numOut();
  unsigned NewDims = NewSp.numParams() + NewSp.numIn() + NewSp.numOut();
  assert(OldDims == NewDims && "recast must preserve column count");
  Sp = std::move(NewSp);
}

std::string BasicSet::str() const {
  std::ostringstream OS;
  auto ColName = [&](unsigned C) -> std::string {
    unsigned NP = Sp.numParams(), NI = Sp.numIn(), NO = Sp.numOut();
    if (C < NP)
      return Sp.Params[C];
    if (C < NP + NI)
      return Sp.In[C - NP].empty() ? "i" + std::to_string(C - NP)
                                   : Sp.In[C - NP];
    if (C < NP + NI + NO)
      return Sp.Out[C - NP - NI].empty() ? "o" + std::to_string(C - NP - NI)
                                         : Sp.Out[C - NP - NI];
    return "e" + std::to_string(C - NP - NI - NO);
  };
  OS << "{ ";
  if (!Sp.InTuple.empty())
    OS << Sp.InTuple;
  OS << "[";
  for (unsigned I = 0; I < Sp.numIn(); ++I)
    OS << (I ? "," : "") << ColName(Sp.numParams() + I);
  OS << "]";
  if (!Sp.isSet()) {
    OS << " -> " << Sp.OutTuple << "[";
    for (unsigned I = 0; I < Sp.numOut(); ++I)
      OS << (I ? "," : "") << ColName(Sp.numParams() + Sp.numIn() + I);
    OS << "]";
  }
  OS << " : ";
  for (unsigned I = 0; I < Cons.size(); ++I) {
    if (I)
      OS << " and ";
    const Constraint &C = Cons[I];
    bool First = true;
    for (unsigned K = 0; K < C.Coeffs.size(); ++K) {
      if (C.Coeffs[K] == 0)
        continue;
      if (!First)
        OS << " + ";
      OS << C.Coeffs[K] << "*" << ColName(K);
      First = false;
    }
    if (C.Const != 0 || First)
      OS << (First ? "" : " + ") << C.Const;
    OS << (C.IsEq ? " = 0" : " >= 0");
  }
  OS << " }";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Set (union)
//===----------------------------------------------------------------------===//

bool Set::isEmpty(bool CheckInteger) const {
  for (const BasicSet &BS : Pieces)
    if (!BS.isEmpty(CheckInteger))
      return false;
  return true;
}

Set Set::intersect(const Set &O) const {
  Set R(Sp);
  for (const BasicSet &A : Pieces)
    for (const BasicSet &B : O.Pieces) {
      BasicSet C = A.intersect(B);
      if (!C.isEmpty())
        R.addPiece(std::move(C));
    }
  return R;
}

Set Set::unionWith(const Set &O) const {
  Set R = *this;
  for (const BasicSet &B : O.Pieces)
    R.addPiece(B);
  return R;
}

std::string Set::str() const {
  std::string S;
  for (unsigned I = 0; I < Pieces.size(); ++I) {
    if (I)
      S += " u ";
    S += Pieces[I].str();
  }
  if (Pieces.empty())
    S = "{ }";
  return S;
}

//===----------------------------------------------------------------------===//
// Free functions
//===----------------------------------------------------------------------===//

/// Copies constraints and divs of \p Src into \p Dst given a mapping from
/// Src's [param,in,out] columns to Dst columns; Src's divs are appended as
/// fresh divs of Dst.
static void importInto(BasicSet &Dst, const BasicSet &Src,
                       const std::vector<unsigned> &MainColMap) {
  unsigned SrcMain = Src.space().numParams() + Src.space().numIn() +
                     Src.space().numOut();
  assert(MainColMap.size() == SrcMain && "column map arity mismatch");
  // Append Src's div columns.
  std::vector<unsigned> DivMap;
  for (const DivDef &D : Src.divs()) {
    (void)D;
    DivMap.push_back(Dst.addFreeExistential());
  }
  auto Remap = [&](unsigned C) {
    return C < SrcMain ? MainColMap[C] : DivMap[C - SrcMain];
  };
  // Re-attach div definitions where representable.
  // (Definitions are redundant with the constraints added below; skipped.)
  for (const Constraint &C : Src.constraints()) {
    Constraint NC;
    NC.Coeffs.assign(Dst.numCols(), 0);
    NC.Const = C.Const;
    NC.IsEq = C.IsEq;
    for (unsigned I = 0; I < C.Coeffs.size(); ++I)
      if (C.Coeffs[I] != 0)
        NC.Coeffs[Remap(I)] = C.Coeffs[I];
    Dst.addConstraint(std::move(NC));
  }
}

BasicSet applyMap(const BasicSet &S, const BasicMap &M) {
  assert(S.space().isSet() && "applyMap expects a set");
  assert(S.space().numIn() == M.space().numIn() &&
         "set dims do not match map input dims");
  // Work over the map's full space, with the set constraints imported on the
  // in dims, then project out the in dims.
  BasicSet R = M;
  unsigned NP = M.space().numParams();
  std::vector<unsigned> ColMap;
  for (unsigned P = 0; P < S.space().numParams(); ++P) {
    assert(P < NP && "parameter spaces must be aligned");
    ColMap.push_back(P);
  }
  for (unsigned D = 0; D < S.space().numIn(); ++D)
    ColMap.push_back(NP + D);
  importInto(R, S, ColMap);
  // Eliminate all in dims and divs.
  while (R.numDivs() > 0)
    R.eliminateCol(R.divCol(R.numDivs() - 1));
  while (R.space().numIn() > 0)
    R.eliminateCol(R.inCol(R.space().numIn() - 1));
  // Result: a set over the out dims.
  Space OutSp = Space::forSet(R.space().Out, M.space().OutTuple,
                              R.space().Params);
  BasicSet Result(OutSp);
  for (const Constraint &C : R.constraints())
    Result.addConstraint(C);
  return Result;
}

BasicMap composeMaps(const BasicMap &A, const BasicMap &B) {
  assert(A.space().numOut() == B.space().numIn() &&
         "composition arity mismatch");
  unsigned NP = std::max(A.space().numParams(), B.space().numParams());
  std::vector<std::string> Params =
      A.space().numParams() >= B.space().numParams() ? A.space().Params
                                                     : B.space().Params;
  Space Sp = Space::forMap(A.space().In, B.space().Out, A.space().InTuple,
                           B.space().OutTuple, Params);
  BasicMap R = BasicSet::universe(Sp);
  // Mid dims y become free existentials.
  std::vector<unsigned> MidCols;
  for (unsigned I = 0; I < A.space().numOut(); ++I)
    MidCols.push_back(R.addFreeExistential());
  // Import A over (params, x, y).
  std::vector<unsigned> AMap;
  for (unsigned P = 0; P < A.space().numParams(); ++P)
    AMap.push_back(P);
  for (unsigned D = 0; D < A.space().numIn(); ++D)
    AMap.push_back(R.inCol(D));
  for (unsigned D = 0; D < A.space().numOut(); ++D)
    AMap.push_back(MidCols[D]);
  importInto(R, A, AMap);
  // Import B over (params, y, z).
  std::vector<unsigned> BMap;
  for (unsigned P = 0; P < B.space().numParams(); ++P)
    BMap.push_back(P);
  for (unsigned D = 0; D < B.space().numIn(); ++D)
    BMap.push_back(MidCols[D]);
  for (unsigned D = 0; D < B.space().numOut(); ++D)
    BMap.push_back(R.outCol(D));
  importInto(R, B, BMap);
  (void)NP;
  // Project out the mid dims (they are div columns; eliminate highest-first
  // so recorded indices stay valid).
  std::sort(MidCols.begin(), MidCols.end(), std::greater<unsigned>());
  for (unsigned C : MidCols)
    R.eliminateCol(C);
  return R;
}

BasicMap reverseMap(const BasicMap &M) {
  Space Sp = Space::forMap(M.space().Out, M.space().In, M.space().OutTuple,
                           M.space().InTuple, M.space().Params);
  BasicMap R(Sp);
  unsigned NP = M.space().numParams();
  unsigned NI = M.space().numIn(), NO = M.space().numOut();
  for (unsigned I = 0; I < M.numDivs(); ++I)
    R.addFreeExistential();
  auto Remap = [&](unsigned C) -> unsigned {
    if (C < NP)
      return C;
    if (C < NP + NI)
      return NP + NO + (C - NP); // old in -> new out
    if (C < NP + NI + NO)
      return NP + (C - NP - NI); // old out -> new in
    return C;                    // divs keep their tail position
  };
  for (const Constraint &C : M.constraints()) {
    Constraint NC;
    NC.Coeffs.assign(R.numCols(), 0);
    NC.Const = C.Const;
    NC.IsEq = C.IsEq;
    for (unsigned I = 0; I < C.Coeffs.size(); ++I)
      if (C.Coeffs[I] != 0)
        NC.Coeffs[Remap(I)] = C.Coeffs[I];
    R.addConstraint(std::move(NC));
  }
  return R;
}

BasicSet domainOfMap(const BasicMap &M) {
  BasicSet R = M;
  while (R.numDivs() > 0)
    R.eliminateCol(R.divCol(R.numDivs() - 1));
  while (R.space().numOut() > 0)
    R.eliminateCol(R.outCol(R.space().numOut() - 1));
  Space Sp = Space::forSet(R.space().In, M.space().InTuple, R.space().Params);
  BasicSet Result(Sp);
  for (const Constraint &C : R.constraints())
    Result.addConstraint(C);
  return Result;
}

BasicSet rangeOfMap(const BasicMap &M) {
  return applyMap(domainOfMap(M), M);
}

BasicMap intersectDomain(const BasicMap &M, const BasicSet &Dom) {
  assert(Dom.space().numIn() == M.space().numIn() &&
         "domain dims mismatch");
  BasicMap R = M;
  std::vector<unsigned> ColMap;
  for (unsigned P = 0; P < Dom.space().numParams(); ++P)
    ColMap.push_back(P);
  for (unsigned D = 0; D < Dom.space().numIn(); ++D)
    ColMap.push_back(R.inCol(D));
  importInto(R, Dom, ColMap);
  return R;
}

BasicMap intersectRange(const BasicMap &M, const BasicSet &Rng) {
  return reverseMap(intersectDomain(reverseMap(M), Rng));
}

BasicMap crossProduct(const BasicSet &S, const BasicSet &T) {
  Space Sp = Space::forMap(S.space().In, T.space().In, S.space().InTuple,
                           T.space().InTuple, S.space().Params);
  BasicMap R(Sp);
  std::vector<unsigned> SMap;
  for (unsigned P = 0; P < S.space().numParams(); ++P)
    SMap.push_back(P);
  for (unsigned D = 0; D < S.space().numIn(); ++D)
    SMap.push_back(R.inCol(D));
  importInto(R, S, SMap);
  std::vector<unsigned> TMap;
  for (unsigned P = 0; P < T.space().numParams(); ++P)
    TMap.push_back(P);
  for (unsigned D = 0; D < T.space().numIn(); ++D)
    TMap.push_back(R.outCol(D));
  importInto(R, T, TMap);
  return R;
}

BasicMap identityMapOn(const BasicSet &S) {
  BasicMap R = crossProduct(S, S);
  unsigned N = S.space().numIn();
  for (unsigned D = 0; D < N; ++D) {
    std::vector<int64_t> Coeffs(R.numCols(), 0);
    Coeffs[R.inCol(D)] = 1;
    Coeffs[R.outCol(D)] = -1;
    R.addEq(Coeffs, 0);
  }
  return R;
}

} // namespace poly
} // namespace akg
