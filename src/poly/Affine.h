//===- poly/Affine.h - Integer sets and affine maps -------------*- C++ -*-===//
//
// The polyhedral substrate: integer sets and affine relations represented as
// unions of basic (convex) pieces, with the operations AKG's schedule-tree
// transformations need. This re-implements the subset of isl semantics used
// by the paper:
//
//   * constraints over [params | dims | divs | 1] with int64 coefficients,
//   * existentially quantified "div" columns modelling floor(e/d),
//   * intersection, application of affine relations, reversal,
//   * projection via exact rational Fourier-Motzkin elimination (an integer
//     over-approximation only when eliminated coefficients exceed 1; the
//     sets AKG builds keep those cases behind explicit div columns),
//   * emptiness via the exact LP/ILP solver, redundancy elimination,
//   * per-dimension bound extraction for AST generation and box hulls for
//     storage footprints (Sec 4.4 of the paper).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_POLY_AFFINE_H
#define AKG_POLY_AFFINE_H

#include "poly/Lp.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace akg {
namespace poly {

/// Identifies the dimensions of a set or map. Sets use only In dims; maps
/// relate In dims to Out dims. Params are shared symbolic constants.
struct Space {
  std::vector<std::string> Params;
  std::vector<std::string> In;
  std::vector<std::string> Out;
  /// Tuple names (e.g. statement or tensor ids); informational.
  std::string InTuple;
  std::string OutTuple;

  unsigned numParams() const { return static_cast<unsigned>(Params.size()); }
  unsigned numIn() const { return static_cast<unsigned>(In.size()); }
  unsigned numOut() const { return static_cast<unsigned>(Out.size()); }
  bool isSet() const { return Out.empty(); }

  static Space forSet(std::vector<std::string> Dims, std::string Tuple = "",
                      std::vector<std::string> Params = {});
  static Space forMap(std::vector<std::string> In, std::vector<std::string> Out,
                      std::string InTuple = "", std::string OutTuple = "",
                      std::vector<std::string> Params = {});
};

/// A single affine constraint: Coeffs . [params, in, out, divs] + Const,
/// interpreted as >= 0 (inequality) or == 0 (equality).
struct Constraint {
  std::vector<int64_t> Coeffs;
  int64_t Const = 0;
  bool IsEq = false;
};

/// Definition of an existential div column q = floor(Expr / Denom), where
/// Expr ranges over [params, in, out, earlier divs, 1]. A div may also be a
/// plain unconstrained existential (Denom == 0).
struct DivDef {
  std::vector<int64_t> Coeffs; // over params+in+out+divs (earlier only)
  int64_t Const = 0;
  int64_t Denom = 0; // 0 => free existential
};

/// A convex piece: conjunction of affine constraints over
/// [params | in dims | out dims | divs].
///
/// Caching: a BasicSet remembers the last sample point a feasibility test
/// produced (isl-style) and re-validates it against the current constraints
/// before paying for an LP solve, and addConstraint hash-dedups exact
/// duplicate constraints. Both caches are semantically invisible - they only
/// change *whether* an LP runs, never its answer. The sample cache lives in
/// mutable members, so const methods are NOT safe to call concurrently on
/// the same object; the parallel dependence analysis only ever queries
/// thread-local copies.
class BasicSet {
public:
  BasicSet() = default;
  explicit BasicSet(Space S) : Sp(std::move(S)) {}

  static BasicSet universe(Space S) { return BasicSet(std::move(S)); }

  const Space &space() const { return Sp; }
  Space &space() { return Sp; }

  unsigned numDivs() const { return static_cast<unsigned>(Divs.size()); }
  /// Total number of coefficient columns (excluding the constant).
  unsigned numCols() const {
    return Sp.numParams() + Sp.numIn() + Sp.numOut() + numDivs();
  }
  unsigned paramCol(unsigned P) const { return P; }
  unsigned inCol(unsigned D) const { return Sp.numParams() + D; }
  unsigned outCol(unsigned D) const { return Sp.numParams() + Sp.numIn() + D; }
  unsigned divCol(unsigned D) const {
    return Sp.numParams() + Sp.numIn() + Sp.numOut() + D;
  }

  const std::vector<Constraint> &constraints() const { return Cons; }
  const std::vector<DivDef> &divs() const { return Divs; }

  /// Appends a raw constraint (arity must match numCols()).
  void addConstraint(Constraint C);
  /// Convenience: adds Coeffs.x + Const >= 0 / == 0 with zero div coeffs.
  void addIneq(std::vector<int64_t> Coeffs, int64_t Const);
  void addEq(std::vector<int64_t> Coeffs, int64_t Const);

  /// Appends a new set ("in") dimension after the existing in dims; returns
  /// its column index. Existing constraints and divs get a zero
  /// coefficient.
  unsigned appendInDim(const std::string &Name);

  /// Pins parameter \p P to the constant \p V (adds the equality p == V).
  /// The dynamic-shape probe uses this to specialize a parametric domain
  /// at a bucket boundary without rebuilding the space.
  void fixParam(unsigned P, int64_t V);

  /// Adds a div column q = floor((Coeffs . x + Const) / Denom) together with
  /// its defining constraints; returns the new column index.
  unsigned addDiv(std::vector<int64_t> Coeffs, int64_t Const, int64_t Denom);
  /// Adds an unconstrained existential column.
  unsigned addFreeExistential();

  /// Intersection with another basic set over the same space.
  BasicSet intersect(const BasicSet &O) const;

  /// True if no rational point satisfies the constraints (or, with
  /// CheckInteger, no integer point does).
  bool isEmpty(bool CheckInteger = false) const;

  /// Projects out column \p Col via Fourier-Motzkin (rational-exact).
  void eliminateCol(unsigned Col);

  /// Removes all div columns via FM elimination.
  void eliminateAllDivs();

  /// Projects onto the first \p K "in" dims: eliminates out dims, divs and
  /// in dims >= K.
  BasicSet projectOntoPrefix(unsigned K) const;

  /// Removes constraints implied by the others (rational test via LP).
  /// With \p Prefilter (the default), two syntactic shortcuts skip LP
  /// solves whose verdict is already determined: dominated inequalities
  /// (same coefficient vector, weaker constant) are dropped up front, and
  /// inequalities provably bounded below by 0 over the box spanned by the
  /// single-column constraints are dropped in-loop. Both shortcuts are
  /// gated on a validated member point (cached sample or the origin), so
  /// the surviving constraint set is always identical to what the pure-LP
  /// pass computes - including on empty sets, where the LP loop keeps
  /// everything. Prefilter=false exists for differential testing.
  void removeRedundant(bool Prefilter = true);

  /// Per-column constant value if the constraints force one.
  std::optional<int64_t> fixedValue(unsigned Col) const;

  /// Minimum / maximum of a column over the (integer) points; nullopt when
  /// unbounded or empty.
  std::optional<int64_t> minOfCol(unsigned Col) const;
  std::optional<int64_t> maxOfCol(unsigned Col) const;

  /// Builds the LP relaxation over all columns.
  LpProblem toLp() const;

  /// Renames/reshapes the space without touching columns; the new space must
  /// have the same total dim count split differently (e.g. set<->map views).
  void recastSpace(Space NewSp);

  std::string str() const;

private:
  Space Sp;
  std::vector<Constraint> Cons;
  std::vector<DivDef> Divs;

  /// Hash per constraint, parallel to Cons; used by addConstraint to skip
  /// exact duplicates without a full scan. Rebuilt after wholesale
  /// rewrites (eliminateCol).
  std::vector<uint64_t> ConHashes;

  /// Last known point satisfying the constraints (over the current column
  /// layout), produced by a prior isEmpty. Re-validated against the full
  /// constraint list before use, so it can never produce a wrong answer:
  /// adding constraints simply makes the validation fail, and column-layout
  /// changes are caught by the size check. It only ever avoids the LP solve
  /// that would prove "non-empty" again.
  mutable std::vector<Rational> Sample;

  void rebuildConHashes();
  /// True when the cached sample exists and satisfies all constraints (and
  /// is integral, if \p NeedInteger).
  bool sampleStillValid(bool NeedInteger) const;
};

/// A basic affine relation; same representation as BasicSet but with in and
/// out dimensions both populated.
using BasicMap = BasicSet;

/// A finite union of basic sets over a common space.
class Set {
public:
  Set() = default;
  explicit Set(Space S) : Sp(std::move(S)) {}
  explicit Set(BasicSet BS) : Sp(BS.space()) { Pieces.push_back(std::move(BS)); }

  static Set empty(Space S) { return Set(std::move(S)); }
  static Set universe(Space S) {
    Set R(S);
    R.Pieces.push_back(BasicSet::universe(std::move(S)));
    return R;
  }

  const Space &space() const { return Sp; }
  const std::vector<BasicSet> &pieces() const { return Pieces; }
  std::vector<BasicSet> &pieces() { return Pieces; }
  void addPiece(BasicSet BS) { Pieces.push_back(std::move(BS)); }

  bool isEmpty(bool CheckInteger = false) const;
  Set intersect(const Set &O) const;
  Set unionWith(const Set &O) const;

  std::string str() const;

private:
  Space Sp;
  std::vector<BasicSet> Pieces;
};

using Map = Set; // unions of BasicMaps share the representation

/// --- Free functions on basic sets/maps ---------------------------------

/// Applies map \p M (in->out) to set \p S (over M's in dims): returns the
/// image as a set over M's out dims. Params are concatenated by position and
/// must match.
BasicSet applyMap(const BasicSet &S, const BasicMap &M);

/// Composition: (A then B), i.e. {x -> z : exists y. A(x,y) and B(y,z)}.
BasicMap composeMaps(const BasicMap &A, const BasicMap &B);

/// Swaps in and out dims.
BasicMap reverseMap(const BasicMap &M);

/// The domain (projection onto in dims) of a basic map.
BasicSet domainOfMap(const BasicMap &M);

/// The range (projection onto out dims) of a basic map.
BasicSet rangeOfMap(const BasicMap &M);

/// Restricts a map's domain by a set over its in dims.
BasicMap intersectDomain(const BasicMap &M, const BasicSet &Dom);

/// Restricts a map's range by a set over its out dims.
BasicMap intersectRange(const BasicMap &M, const BasicSet &Rng);

/// Builds {x -> y : x in S, y in T} (unconstrained product relation).
BasicMap crossProduct(const BasicSet &S, const BasicSet &T);

/// Builds the identity-embedding of a set as a map {x -> x : x in S}.
BasicMap identityMapOn(const BasicSet &S);

} // namespace poly
} // namespace akg

#endif // AKG_POLY_AFFINE_H
