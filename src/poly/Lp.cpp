//===- poly/Lp.cpp - Exact LP/ILP solver ----------------------------------===//

#include "poly/Lp.h"

#include "support/Stats.h"

#include <algorithm>
#include <cassert>

namespace akg {

void LpProblem::addIneq(std::vector<Rational> Coeffs, Rational Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back({std::move(Coeffs), Const, /*IsEq=*/false});
}

void LpProblem::addEq(std::vector<Rational> Coeffs, Rational Const) {
  assert(Coeffs.size() == NumVars && "constraint arity mismatch");
  Constraints.push_back({std::move(Coeffs), Const, /*IsEq=*/true});
}

namespace {

/// Thrown when an int64 tableau entry would overflow; recoverable, the
/// solver re-runs the problem on the Rational (__int128) tableau.
struct Int64Overflow {};

inline int64_t chkNeg(int64_t A) {
  if (A == INT64_MIN)
    throw Int64Overflow();
  return -A;
}
inline int64_t chkAdd(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_add_overflow(A, B, &R))
    throw Int64Overflow();
  return R;
}
inline int64_t chkSub(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_sub_overflow(A, B, &R))
    throw Int64Overflow();
  return R;
}
inline int64_t chkMul(int64_t A, int64_t B) {
  int64_t R;
  if (__builtin_mul_overflow(A, B, &R))
    throw Int64Overflow();
  return R;
}

inline uint64_t ugcd(uint64_t A, uint64_t B) {
  while (B != 0) {
    uint64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// Exact rational over machine int64 with overflow-checked arithmetic.
/// Same invariants as Rational (Den > 0, lowest terms), so a simplex run
/// over Rat64 follows the exact same pivot trajectory as one over Rational
/// and produces bit-identical results - unless an intermediate overflows,
/// which throws Int64Overflow and triggers the Rational re-run.
struct Rat64 {
  int64_t Num = 0;
  int64_t Den = 1;

  Rat64() = default;
  Rat64(int64_t V) : Num(V) {}
  Rat64(int64_t N, int64_t D) : Num(N), Den(D) { normalize(); }

  /// Builds from already-normalized parts (Den > 0, coprime).
  static Rat64 raw(int64_t N, int64_t D) {
    Rat64 R;
    R.Num = N;
    R.Den = D;
    return R;
  }

  bool isZero() const { return Num == 0; }

  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den < 0) {
      Num = chkNeg(Num);
      Den = chkNeg(Den);
    }
    if (Num == 0) {
      Den = 1;
      return;
    }
    if (Den == 1)
      return;
    uint64_t A = Num < 0 ? 0 - static_cast<uint64_t>(Num)
                         : static_cast<uint64_t>(Num);
    uint64_t G = ugcd(A, static_cast<uint64_t>(Den));
    if (G > 1) {
      Num /= static_cast<int64_t>(G);
      Den /= static_cast<int64_t>(G);
    }
  }

  Rat64 operator-() const { return raw(chkNeg(Num), Den); }
  Rat64 operator+(const Rat64 &O) const {
    if (Den == 1 && O.Den == 1)
      return Rat64(chkAdd(Num, O.Num));
    return Rat64(chkAdd(chkMul(Num, O.Den), chkMul(O.Num, Den)),
                 chkMul(Den, O.Den));
  }
  Rat64 operator-(const Rat64 &O) const {
    if (Den == 1 && O.Den == 1)
      return Rat64(chkSub(Num, O.Num));
    return Rat64(chkSub(chkMul(Num, O.Den), chkMul(O.Num, Den)),
                 chkMul(Den, O.Den));
  }
  Rat64 operator*(const Rat64 &O) const {
    if (Den == 1 && O.Den == 1)
      return Rat64(chkMul(Num, O.Num));
    return Rat64(chkMul(Num, O.Num), chkMul(Den, O.Den));
  }
  Rat64 operator/(const Rat64 &O) const {
    assert(O.Num != 0 && "division by zero rational");
    return Rat64(chkMul(Num, O.Den), chkMul(Den, O.Num));
  }
  Rat64 &operator+=(const Rat64 &O) { return *this = *this + O; }
  Rat64 &operator-=(const Rat64 &O) { return *this = *this - O; }
  Rat64 &operator/=(const Rat64 &O) { return *this = *this / O; }

  bool operator==(const Rat64 &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rat64 &O) const { return !(*this == O); }
  bool operator<(const Rat64 &O) const {
    if (Den == 1 && O.Den == 1)
      return Num < O.Num;
    return chkMul(Num, O.Den) < chkMul(O.Num, Den);
  }
  bool operator<=(const Rat64 &O) const {
    if (Den == 1 && O.Den == 1)
      return Num <= O.Num;
    return chkMul(Num, O.Den) <= chkMul(O.Num, Den);
  }
  bool operator>(const Rat64 &O) const { return O < *this; }
  bool operator>=(const Rat64 &O) const { return O <= *this; }
};

/// Conversion between a tableau scalar type and the public Rational API.
template <typename T> struct LpScalar;
template <> struct LpScalar<Rational> {
  static const Rational &from(const Rational &R) { return R; }
  static const Rational &to(const Rational &R) { return R; }
};
template <> struct LpScalar<Rat64> {
  static Rat64 from(const Rational &R) {
    Int128 N = R.num(), D = R.den();
    if (N > INT64_MAX || N < INT64_MIN || D > INT64_MAX)
      throw Int64Overflow();
    return Rat64::raw(static_cast<int64_t>(N), static_cast<int64_t>(D));
  }
  static Rational to(const Rat64 &R) { return Rational(R.Num, R.Den); }
};

/// Full-tableau primal simplex over an exact scalar type T with a maintained
/// reduced-cost row (Bland's rule, so termination is guaranteed).
///
/// Internal standard form: minimize Cost . y subject to Tab y = Rhs, y >= 0.
/// Free user variables are split as x = y+ - y-; inequalities get slacks.
template <typename T> class Simplex {
public:
  LpStatus solve(const LpProblem &P, const std::vector<Rational> &Obj,
                 Rational &OptValue, std::vector<Rational> &Point);

private:
  unsigned NumStd = 0;    // structural + slack columns
  unsigned NumCols = 0;   // + artificials during phase 1
  std::vector<std::vector<T>> Tab; // m x NumCols
  std::vector<T> Rhs;              // m
  std::vector<int> Basis;          // basic column per row
  std::vector<T> CostRow;          // maintained reduced costs

  void pivot(unsigned Row, unsigned Col);
  /// Runs simplex iterations until optimal or unbounded.
  bool iterate(bool &Unbounded);
  /// Recomputes the reduced-cost row for objective \p C over columns
  /// [0, NumCols).
  void resetCostRow(const std::vector<T> &C);
};

template <typename T> void Simplex<T>::pivot(unsigned Row, unsigned Col) {
  T Piv = Tab[Row][Col];
  assert(!Piv.isZero() && "pivot on zero element");
  if (Piv != T(1)) {
    for (unsigned J = 0; J < NumCols; ++J)
      if (!Tab[Row][J].isZero())
        Tab[Row][J] /= Piv;
    Rhs[Row] /= Piv;
  }
  for (unsigned I = 0; I < Tab.size(); ++I) {
    if (I == Row || Tab[I][Col].isZero())
      continue;
    T F = Tab[I][Col];
    for (unsigned J = 0; J < NumCols; ++J)
      if (!Tab[Row][J].isZero())
        Tab[I][J] -= F * Tab[Row][J];
    Rhs[I] -= F * Rhs[Row];
  }
  if (!CostRow[Col].isZero()) {
    T F = CostRow[Col];
    for (unsigned J = 0; J < NumCols; ++J)
      if (!Tab[Row][J].isZero())
        CostRow[J] -= F * Tab[Row][J];
  }
  Basis[Row] = static_cast<int>(Col);
}

template <typename T> bool Simplex<T>::iterate(bool &Unbounded) {
  unsigned M = static_cast<unsigned>(Tab.size());
  while (true) {
    // Bland: first column with negative reduced cost.
    int Enter = -1;
    for (unsigned J = 0; J < NumCols; ++J)
      if (CostRow[J] < T(0)) {
        Enter = static_cast<int>(J);
        break;
      }
    if (Enter < 0)
      return true; // optimal
    int LeaveRow = -1;
    T BestRatio;
    for (unsigned I = 0; I < M; ++I) {
      if (Tab[I][Enter] > T(0)) {
        T Ratio = Rhs[I] / Tab[I][Enter];
        if (LeaveRow < 0 || Ratio < BestRatio ||
            (Ratio == BestRatio && Basis[I] < Basis[LeaveRow])) {
          LeaveRow = static_cast<int>(I);
          BestRatio = Ratio;
        }
      }
    }
    if (LeaveRow < 0) {
      Unbounded = true;
      return false;
    }
    pivot(static_cast<unsigned>(LeaveRow), static_cast<unsigned>(Enter));
  }
}

template <typename T> void Simplex<T>::resetCostRow(const std::vector<T> &C) {
  CostRow.assign(NumCols, T(0));
  for (unsigned J = 0; J < NumCols; ++J)
    CostRow[J] = J < C.size() ? C[J] : T(0);
  for (unsigned I = 0; I < Tab.size(); ++I) {
    unsigned B = static_cast<unsigned>(Basis[I]);
    T CB = B < C.size() ? C[B] : T(0);
    if (CB.isZero())
      continue;
    for (unsigned J = 0; J < NumCols; ++J)
      if (!Tab[I][J].isZero())
        CostRow[J] -= CB * Tab[I][J];
  }
}

template <typename T>
LpStatus Simplex<T>::solve(const LpProblem &P,
                           const std::vector<Rational> &Obj,
                           Rational &OptValue, std::vector<Rational> &Point) {
  unsigned N = P.NumVars;
  unsigned NumIneq = 0;
  for (const LpConstraint &C : P.Constraints)
    if (!C.IsEq)
      ++NumIneq;
  unsigned M = static_cast<unsigned>(P.Constraints.size());
  // Column layout: one column for known-nonnegative vars, a +/- pair for
  // free vars, then slacks, then artificials.
  std::vector<unsigned> PosCol(N);
  std::vector<int> NegCol(N, -1);
  unsigned Next = 0;
  for (unsigned K = 0; K < N; ++K) {
    PosCol[K] = Next++;
    if (P.NonNeg.empty() || !P.NonNeg[K])
      NegCol[K] = static_cast<int>(Next++);
  }
  NumStd = Next + NumIneq;
  NumCols = NumStd + M; // artificials at the end
  Tab.assign(M, std::vector<T>(NumCols));
  Rhs.assign(M, T(0));
  Basis.assign(M, 0);

  unsigned SlackIdx = Next;
  for (unsigned I = 0; I < M; ++I) {
    const LpConstraint &C = P.Constraints[I];
    // a . x + b >= 0  ->  a.x - s = -b ;  a . x + b == 0 -> a.x = -b.
    for (unsigned K = 0; K < N; ++K) {
      Tab[I][PosCol[K]] = LpScalar<T>::from(C.Coeffs[K]);
      if (NegCol[K] >= 0)
        Tab[I][NegCol[K]] = -Tab[I][PosCol[K]];
    }
    if (!C.IsEq)
      Tab[I][SlackIdx++] = T(-1);
    Rhs[I] = -LpScalar<T>::from(C.Const);
    if (Rhs[I] < T(0)) {
      for (unsigned J = 0; J < NumStd; ++J)
        Tab[I][J] = -Tab[I][J];
      Rhs[I] = -Rhs[I];
    }
    Tab[I][NumStd + I] = T(1);
    Basis[I] = static_cast<int>(NumStd + I);
  }

  // Phase 1: minimize the sum of artificials.
  std::vector<T> Phase1Cost(NumCols);
  for (unsigned I = 0; I < M; ++I)
    Phase1Cost[NumStd + I] = T(1);
  resetCostRow(Phase1Cost);
  bool Unbounded = false;
  iterate(Unbounded);
  assert(!Unbounded && "phase 1 cannot be unbounded");
  T Phase1Val;
  for (unsigned I = 0; I < M; ++I)
    if (static_cast<unsigned>(Basis[I]) >= NumStd)
      Phase1Val += Rhs[I];
  if (!Phase1Val.isZero())
    return LpStatus::Infeasible;

  // Drive any remaining artificials out of the basis (they are at zero).
  for (unsigned I = 0; I < M; ++I) {
    if (static_cast<unsigned>(Basis[I]) < NumStd)
      continue;
    int PivCol = -1;
    for (unsigned J = 0; J < NumStd; ++J)
      if (!Tab[I][J].isZero()) {
        PivCol = static_cast<int>(J);
        break;
      }
    if (PivCol >= 0)
      pivot(I, static_cast<unsigned>(PivCol));
  }
  // Drop rows whose basic variable is still artificial (redundant 0 = 0).
  for (unsigned I = 0; I < Tab.size();) {
    if (static_cast<unsigned>(Basis[I]) >= NumStd) {
      assert(Rhs[I].isZero() && "non-zero artificial after phase 1");
      Tab.erase(Tab.begin() + I);
      Rhs.erase(Rhs.begin() + I);
      Basis.erase(Basis.begin() + I);
    } else {
      ++I;
    }
  }

  // Phase 2: truncate artificial columns so they can never re-enter.
  NumCols = NumStd;
  for (auto &Row : Tab)
    Row.resize(NumCols);
  std::vector<T> Cost(NumCols);
  for (unsigned K = 0; K < N; ++K) {
    Cost[PosCol[K]] = LpScalar<T>::from(Obj[K]);
    if (NegCol[K] >= 0)
      Cost[NegCol[K]] = -Cost[PosCol[K]];
  }
  resetCostRow(Cost);
  Unbounded = false;
  iterate(Unbounded);
  if (Unbounded)
    return LpStatus::Unbounded;

  std::vector<T> Y(NumStd);
  for (unsigned I = 0; I < Tab.size(); ++I)
    Y[Basis[I]] = Rhs[I];
  std::vector<T> Pt(N, T(0));
  T Val(0);
  for (unsigned K = 0; K < N; ++K) {
    Pt[K] = Y[PosCol[K]];
    if (NegCol[K] >= 0)
      Pt[K] -= Y[NegCol[K]];
    Val += LpScalar<T>::from(Obj[K]) * Pt[K];
  }
  Point.assign(N, Rational(0));
  for (unsigned K = 0; K < N; ++K)
    Point[K] = LpScalar<T>::to(Pt[K]);
  OptValue = LpScalar<T>::to(Val);
  return LpStatus::Optimal;
}

} // namespace

LpResult lpMinimizeEngine(const LpProblem &P, const std::vector<Rational> &Obj,
                          LpEngine Engine) {
  ScopedTimer T("lp.minimize");
  assert(Obj.size() == P.NumVars && "objective arity mismatch");
  LpResult R;
  if (Engine != LpEngine::Rational) {
    try {
      Simplex<Rat64> S;
      R.Status = S.solve(P, Obj, R.Value, R.Point);
      Stats::get().add("lp.int64_fastpath");
      return R;
    } catch (const Int64Overflow &) {
      // Tableau left the machine-word range; redo on the wide tableau.
      Stats::get().add("lp.rational_fallback");
      if (Engine == LpEngine::Int64) {
        R = LpResult();
        R.Status = LpStatus::TooHard;
        return R;
      }
    }
  }
  try {
    Simplex<Rational> S;
    R = LpResult();
    R.Status = S.solve(P, Obj, R.Value, R.Point);
  } catch (const RationalOverflow &) {
    // Coefficients grew past the exact-arithmetic range: give up on this
    // problem rather than aborting the compiler.
    Stats::get().add("lp.overflow");
    R = LpResult();
    R.Status = LpStatus::TooHard;
  }
  return R;
}

LpResult lpMinimize(const LpProblem &P, const std::vector<Rational> &Obj) {
  return lpMinimizeEngine(P, Obj, LpEngine::Auto);
}

LpResult lpMaximize(const LpProblem &P, const std::vector<Rational> &Obj) {
  std::vector<Rational> Neg(Obj.size());
  for (unsigned I = 0; I < Obj.size(); ++I)
    Neg[I] = -Obj[I];
  LpResult R = lpMinimize(P, Neg);
  if (R.Status == LpStatus::Optimal)
    R.Value = -R.Value;
  return R;
}

bool lpIsFeasible(const LpProblem &P) {
  std::vector<Rational> Zero(P.NumVars);
  // TooHard counts as feasible: "cannot prove empty" is the conservative
  // answer for every caller (dependence tests, redundancy elimination).
  return lpMinimize(P, Zero).Status != LpStatus::Infeasible;
}

namespace {

/// Depth-first branch-and-bound over the LP relaxation.
struct BranchState {
  const std::vector<Rational> &Obj;
  unsigned NodeLimit = IlpOptions().NodeLimit;
  unsigned Nodes = 0;
  bool HitLimit = false;
  bool HasBest = false;
  bool StopAtFirst = false;
  bool HasRootBound = false;
  Rational RootBound; // ceil of the root relaxation: a proven lower bound
  Rational BestValue;
  std::vector<Rational> BestPoint;

  explicit BranchState(const std::vector<Rational> &Obj) : Obj(Obj) {}

  bool provenOptimal() const {
    return HasBest && HasRootBound && BestValue <= RootBound;
  }

  void search(LpProblem Root);
};

void BranchState::search(LpProblem Root) {
  // Explicit DFS worklist: deep branch-and-bound trees must not recurse on
  // the call stack.
  std::vector<LpProblem> Work;
  Work.push_back(std::move(Root));
  while (!Work.empty()) {
    if (HitLimit || (StopAtFirst && HasBest) || provenOptimal())
      return;
    LpProblem P = std::move(Work.back());
    Work.pop_back();
    if (++Nodes > NodeLimit) {
      HitLimit = true;
      return;
    }
    LpResult Relax = lpMinimize(P, Obj);
    if (Relax.Status == LpStatus::Infeasible)
      continue;
    if (Relax.Status == LpStatus::Unbounded ||
        Relax.Status == LpStatus::TooHard) {
      HitLimit = true;
      return;
    }
    if (!HasRootBound) {
      // With an all-integer objective the optimum over integer points is
      // at least the ceiling of the root relaxation.
      bool IntObj = true;
      for (const Rational &C : Obj)
        if (!C.isInteger())
          IntObj = false;
      if (IntObj) {
        HasRootBound = true;
        RootBound = Relax.Value.ceil();
      }
    }
    if (HasBest && !StopAtFirst && Relax.Value >= BestValue)
      continue; // bound
    // Find a fractional coordinate (most fractional first) among the
    // variables that must be integral.
    int FracVar = -1;
    Rational BestDist;
    for (unsigned K = 0; K < P.NumVars; ++K) {
      if (!P.Integer.empty() && !P.Integer[K])
        continue;
      const Rational &V = Relax.Point[K];
      if (V.isInteger())
        continue;
      Rational Dist = V - V.floor();
      if (Dist > Rational(1, 2))
        Dist = Rational(1) - Dist;
      if (FracVar < 0 || Dist > BestDist) {
        FracVar = static_cast<int>(K);
        BestDist = Dist;
      }
    }
    if (FracVar < 0) {
      if (!HasBest || Relax.Value < BestValue) {
        HasBest = true;
        BestValue = Relax.Value;
        BestPoint = Relax.Point;
      }
      continue;
    }
    Rational Floor = Relax.Point[FracVar].floor();
    // Push "up" first so "down" (x <= floor) is explored first (LIFO).
    {
      LpProblem Up = P;
      std::vector<Rational> C(P.NumVars);
      C[FracVar] = Rational(1);
      Up.addIneq(C, -(Floor + Rational(1))); // x >= floor(v) + 1
      Work.push_back(std::move(Up));
    }
    {
      LpProblem Down = std::move(P);
      std::vector<Rational> C(Down.NumVars);
      C[FracVar] = Rational(-1);
      Down.addIneq(C, Floor); // x <= floor(v)
      Work.push_back(std::move(Down));
    }
  }
}

} // namespace

LpResult ilpMinimize(const LpProblem &P, const std::vector<Rational> &Obj,
                     const IlpOptions &Opts) {
  ScopedTimer T("ilp.minimize");
  LpResult R;
  BranchState BS(Obj);
  BS.NodeLimit = Opts.NodeLimit;
  BS.search(P);
  if (!BS.HasBest) {
    R.Status = BS.HitLimit ? LpStatus::TooHard : LpStatus::Infeasible;
    if (R.Status == LpStatus::TooHard)
      Stats::get().add("ilp.too_hard");
    return R;
  }
  // With a solution in hand we report it even if the node limit was hit
  // (callers use it heuristically).
  R.Status = LpStatus::Optimal;
  R.Value = BS.BestValue;
  R.Point = BS.BestPoint;
  return R;
}

LpResult ilpSample(const LpProblem &P, const IlpOptions &Opts) {
  std::vector<Rational> Zero(P.NumVars);
  LpResult R;
  BranchState BS(Zero);
  BS.NodeLimit = Opts.NodeLimit;
  BS.StopAtFirst = true;
  BS.search(P);
  if (BS.HasBest) {
    R.Status = LpStatus::Optimal;
    R.Point = BS.BestPoint;
    return R;
  }
  R.Status = BS.HitLimit ? LpStatus::TooHard : LpStatus::Infeasible;
  if (R.Status == LpStatus::TooHard)
    Stats::get().add("ilp.too_hard");
  return R;
}

LpResult ilpLexMin(const LpProblem &P, const std::vector<unsigned> &Order,
                   const IlpOptions &Opts) {
  LpProblem Work = P;
  LpResult Last;
  for (unsigned Var : Order) {
    std::vector<Rational> Obj(Work.NumVars);
    Obj[Var] = Rational(1);
    Last = ilpMinimize(Work, Obj, Opts);
    if (Last.Status != LpStatus::Optimal)
      return Last;
    std::vector<Rational> C(Work.NumVars);
    C[Var] = Rational(1);
    Work.addEq(C, -Last.Value); // pin and continue
  }
  if (Last.Status == LpStatus::Optimal && !Order.empty()) {
    LpResult Full = ilpSample(Work, Opts);
    if (Full.Status == LpStatus::Optimal)
      Last.Point = Full.Point;
  }
  return Last;
}

} // namespace akg
