//===- poly/Lp.h - Exact LP/ILP solver --------------------------*- C++ -*-===//
//
// A small exact linear-programming solver (primal simplex over rationals,
// Bland's rule) with branch-and-bound for integer solutions. This is the
// workhorse behind polyhedron emptiness tests, redundancy elimination,
// dependence-satisfaction checks and the Pluto-style scheduling ILPs, i.e.
// the role isl's ILP core plays in the original AKG.
//
// Problems are stated over free (unbounded-sign) rational variables with
// constraints of the form  coeffs . x + const >= 0  or  == 0.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_POLY_LP_H
#define AKG_POLY_LP_H

#include "support/Rational.h"

#include <vector>

namespace akg {

/// One linear constraint: Coeffs . x + Const  (>= 0 | == 0).
struct LpConstraint {
  std::vector<Rational> Coeffs;
  Rational Const;
  bool IsEq = false;
};

/// A conjunction of linear constraints over NumVars free variables.
struct LpProblem {
  unsigned NumVars = 0;
  std::vector<LpConstraint> Constraints;
  /// Optional per-variable sign knowledge: variables flagged true are known
  /// non-negative, which halves their simplex columns. Empty means all
  /// variables are free.
  std::vector<bool> NonNeg;
  /// Optional integrality mask for the ilp* entry points: only flagged
  /// variables are branched on (mixed-integer). Empty means all variables
  /// are integer.
  std::vector<bool> Integer;

  /// Appends an inequality Coeffs . x + Const >= 0.
  void addIneq(std::vector<Rational> Coeffs, Rational Const);
  /// Appends an equality Coeffs . x + Const == 0.
  void addEq(std::vector<Rational> Coeffs, Rational Const);
};

enum class LpStatus { Optimal, Infeasible, Unbounded, TooHard };

/// Budgets for the integer solver. TooHard results (node limit exhausted,
/// rational overflow) are recoverable: callers fall back to conservative
/// answers, and the scheduler degrades to its identity fallback.
struct IlpOptions {
  /// Maximum branch-and-bound nodes explored per ilp* call.
  unsigned NodeLimit = 20000;
};

struct LpResult {
  LpStatus Status = LpStatus::Infeasible;
  /// Optimal objective value (valid when Status == Optimal).
  Rational Value;
  /// A point attaining the optimum (valid when Status == Optimal).
  std::vector<Rational> Point;
};

/// Minimizes Obj . x over the rational points of \p P.
///
/// Internally runs an int64-tableau simplex first (identical pivot rule over
/// exact machine-word fractions, so the result is bit-identical) and falls
/// back to the __int128 Rational tableau when any intermediate value would
/// overflow. Stats counters: "lp.int64_fastpath" counts solves completed on
/// the fast tableau, "lp.rational_fallback" counts overflow fallbacks.
LpResult lpMinimize(const LpProblem &P, const std::vector<Rational> &Obj);

/// Which simplex tableau lpMinimize runs on. Auto (the default) tries the
/// int64 tableau and falls back to Rational on overflow; the forced modes
/// exist for differential testing. A forced Int64 solve that overflows
/// reports TooHard.
enum class LpEngine { Auto, Int64, Rational };

/// lpMinimize with an explicit engine choice (testing hook).
LpResult lpMinimizeEngine(const LpProblem &P, const std::vector<Rational> &Obj,
                          LpEngine Engine);

/// Maximizes Obj . x over the rational points of \p P.
LpResult lpMaximize(const LpProblem &P, const std::vector<Rational> &Obj);

/// True if \p P has a rational solution.
bool lpIsFeasible(const LpProblem &P);

/// Minimizes Obj . x over the *integer* points of \p P via branch-and-bound.
/// Returns TooHard if the node limit is exceeded (callers treat this
/// conservatively).
LpResult ilpMinimize(const LpProblem &P, const std::vector<Rational> &Obj,
                     const IlpOptions &Opts = IlpOptions());

/// Finds any integer point of \p P; Status is Optimal with Point set when one
/// exists, Infeasible when provably none exists.
LpResult ilpSample(const LpProblem &P, const IlpOptions &Opts = IlpOptions());

/// Lexicographic integer minimum of (x[Order[0]], x[Order[1]], ...) over the
/// integer points of \p P. Each coordinate must be bounded below on the
/// feasible set; callers guarantee this by construction.
LpResult ilpLexMin(const LpProblem &P, const std::vector<unsigned> &Order,
                   const IlpOptions &Opts = IlpOptions());

} // namespace akg

#endif // AKG_POLY_LP_H
