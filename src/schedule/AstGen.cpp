//===- schedule/AstGen.cpp - Schedule tree -> AST generation --------------===//
//
// AST generation is the compile pipeline's dominant cold-path cost (the
// per-statement Fourier-Motzkin projections and the removeRedundant /
// impliedByEmitted LP storms), so the generator layers three exact
// fast paths over the naive recursion (DESIGN.md 4i):
//
//   * a process-wide content-addressed memo for the per-statement
//     "project context onto loop vars + removeRedundant" subproblem and
//     for the impliedByEmitted separation checks. Keys serialize the
//     full numeric content (constraints, divs, dimension split, emitted
//     set), so a hit replays a pure function of the key and the emitted
//     AST is bit-identical with the memo on or off (AKG_ASTGEN_MEMO=0
//     disables it for differential testing);
//   * syntactic implication shortcuts (trivial constants, per-constraint
//     dominance by an emitted bound) that fire only when a member point
//     of the emitted set is known, which makes their verdict provably
//     equal to the LP's;
//   * an arena/interning pool for leaf expression nodes (integer
//     constants, loop variables), which collapses the allocation storm
//     of bound/guard expression construction.
//
// Effectiveness is observable through the astgen.* Stats counters
// (astgen.proj_memo_hit, astgen.implied_syntactic, astgen.lp_avoided,
// astgen.incremental_refinements, ...), surfaced per-pass in compile
// traces and in bench/compile_time's JSON totals.
//
//===----------------------------------------------------------------------===//

#include "schedule/AstGen.h"

#include "ir/Passes.h"
#include "support/Arena.h"
#include "support/Cancel.h"
#include "support/Env.h"
#include "support/Matrix.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace akg {
namespace sched {

using namespace poly;
using ir::Expr;
using ir::Stmt;

namespace {

/// Per-statement code-generation context.
struct ActiveStmt {
  unsigned Id = 0;
  unsigned NumIters = 0;
  /// Dims: [iters of the statement..., every loop var on the path...].
  BasicSet Ctx;
  /// Affine (denominator-1) band rows applied so far, for inversion at the
  /// leaf: Coeffs over iters, the constant, and the bound loop variable.
  std::vector<std::vector<int64_t>> AffRows;
  std::vector<int64_t> AffConsts;
  std::vector<std::string> AffVars;
};

/// One affine bound: Value >= / <= (Coeffs . loopvars + Const) / Div.
struct BoundExpr {
  std::vector<int64_t> Coeffs; // over loop vars (path order)
  int64_t Const = 0;
  int64_t Div = 1; // divide (ceil for lower, floor for upper)
};

//===----------------------------------------------------------------------===//
// Content-addressed memoization (DESIGN.md 4i)
//===----------------------------------------------------------------------===//

void putI64(std::string &S, int64_t V) {
  char B[sizeof V];
  std::memcpy(B, &V, sizeof V);
  S.append(B, sizeof V);
}

void putConstraints(std::string &S, const std::vector<Constraint> &Cons) {
  putI64(S, static_cast<int64_t>(Cons.size()));
  for (const Constraint &C : Cons) {
    putI64(S, C.IsEq ? 1 : 0);
    putI64(S, C.Const);
    putI64(S, static_cast<int64_t>(C.Coeffs.size()));
    for (int64_t V : C.Coeffs)
      putI64(S, V);
  }
}

/// Serialized numeric content of the emitted loop-bound set: the shared
/// suffix of every projection key at a node, and the first component of
/// every impliedByEmitted key. Changing the emitted set changes these
/// bytes, which is what invalidates the memo entries built under the old
/// emitted set (KernelStoreTest exercises this).
std::string serializeEmitted(const BasicSet &E) {
  std::string S;
  putI64(S, E.space().numIn());
  putConstraints(S, E.constraints());
  return S;
}

/// Process-wide memo shared by every compile (the compile service runs
/// many concurrently). Values are pure functions of their keys, so the
/// table never changes an answer - only whether the LPs re-run. Bounded
/// by wholesale reset: the workloads that refill it are exactly the ones
/// that benefit, and a reset only costs the saved time once.
struct AstGenMemo {
  struct ProjEntry {
    bool Empty = false;
    std::vector<Constraint> Cons; // surviving set after removeRedundant
    uint32_t LpEstimate = 0;      // LP solves the original run performed
  };
  static constexpr size_t kMaxEntries = 1u << 15;

  std::mutex Lock;
  std::unordered_map<std::string, ProjEntry> Proj;
  std::unordered_map<std::string, bool> Implied;

  static AstGenMemo &get() {
    // Leaked: outlives every static-destructor-ordered consumer.
    static AstGenMemo *M = new AstGenMemo();
    return *M;
  }

  static bool enabled() {
    std::optional<std::string> V = env::get("AKG_ASTGEN_MEMO");
    return !V || *V != "0";
  }

  template <class MapT, class ValT>
  void insertBounded(MapT &Map, const std::string &Key, ValT &&Val) {
    std::lock_guard<std::mutex> G(Lock);
    if (Map.size() >= kMaxEntries) {
      Map.clear();
      Stats::get().add("astgen.memo_reset");
    }
    Map.emplace(Key, std::forward<ValT>(Val));
  }
};

/// True when the origin satisfies every constraint - the cheap member
/// point that gates the syntactic implication shortcuts (same discipline
/// as the removeRedundant prefilter in poly/Affine.cpp).
bool originSatisfies(const BasicSet &S) {
  for (const Constraint &C : S.constraints())
    if (C.IsEq ? C.Const != 0 : C.Const < 0)
      return false;
  return true;
}

/// Per-leaf view of the emitted set: the set itself plus the serialized
/// memo key component and the member-point gate, computed once instead of
/// per guard constraint.
struct EmittedCtx {
  const BasicSet &Set;
  std::string Key;  // empty when the memo is disabled
  bool HasMember = false;
};

class AstGenerator {
public:
  AstGenerator(const ir::PolyProgram &P, const AstGenOptions &Opts)
      : P(P), Opts(Opts), Arena(std::make_shared<NodeArena>()) {}

  Stmt run(const TreeNode *Root) {
    std::vector<ActiveStmt> Active;
    for (const ir::PolyStmt &S : P.Stmts) {
      ActiveStmt A;
      A.Id = S.Id;
      A.NumIters = S.numIters();
      A.Ctx = S.Domain;
      Active.push_back(std::move(A));
    }
    std::vector<std::string> LoopVars;
    BasicSet Emitted(Space::forSet({}, "emitted"));
    Stmt Out = ir::simplifyStmt(gen(Root, Active, LoopVars, Emitted));
    Stats::get().add("astgen.arena_nodes",
                     static_cast<int64_t>(Arena->numAllocations()));
    return Out;
  }

private:
  const ir::PolyProgram &P;
  AstGenOptions Opts;
  unsigned NextVar = 0;
  /// Leaf-node pool: integer immediates and loop-variable reads recur in
  /// every bound, guard and iterator expression; they are interned here
  /// and bump-allocated from a refcounted arena that stays alive as long
  /// as any node built from it.
  std::shared_ptr<NodeArena> Arena;
  std::unordered_map<int64_t, Expr> IntPool;
  std::unordered_map<std::string, Expr> VarPool;

  Expr cInt(int64_t V) {
    auto It = IntPool.find(V);
    if (It != IntPool.end())
      return It->second;
    auto N = std::allocate_shared<ir::ExprNode>(
        ArenaAllocator<ir::ExprNode>(Arena));
    N->Kind = ir::ExprKind::IntImm;
    N->Type = ir::DType::I32;
    N->IntVal = V;
    Expr E = N;
    IntPool.emplace(V, E);
    return E;
  }

  Expr cVar(const std::string &Name) {
    auto It = VarPool.find(Name);
    if (It != VarPool.end())
      return It->second;
    auto N = std::allocate_shared<ir::ExprNode>(
        ArenaAllocator<ir::ExprNode>(Arena));
    N->Kind = ir::ExprKind::Var;
    N->Type = ir::DType::I32;
    N->Name = Name;
    Expr E = N;
    VarPool.emplace(Name, E);
    return E;
  }

  Expr boundToExpr(const BoundExpr &B, const std::vector<std::string> &Vars,
                   bool IsLower) {
    Expr E = cInt(B.Const);
    for (unsigned I = 0; I < B.Coeffs.size(); ++I) {
      if (B.Coeffs[I] == 0)
        continue;
      Expr Term = ir::mul(cInt(B.Coeffs[I]), cVar(Vars[I]));
      E = ir::add(E, Term);
    }
    if (B.Div != 1) {
      if (IsLower) // ceil(a/d) = floor((a + d - 1)/d)
        E = ir::floorDiv(ir::add(E, cInt(B.Div - 1)), cInt(B.Div));
      else
        E = ir::floorDiv(E, cInt(B.Div));
    }
    return ir::simplifyExpr(E);
  }

  Stmt genChildren(const TreeNode *N, const std::vector<ActiveStmt> &Active,
                   const std::vector<std::string> &LoopVars,
                   const BasicSet &Emitted) {
    if (N->Children.empty())
      return emitLeaf(Active, LoopVars, Emitted);
    std::vector<Stmt> Parts;
    for (const auto &C : N->Children) {
      Stmt S = gen(C.get(), Active, LoopVars, Emitted);
      if (S)
        Parts.push_back(std::move(S));
    }
    return ir::makeBlock(std::move(Parts));
  }

  /// Contexts flow down the tree by reference; only the nodes that
  /// actually refine them (filters, extensions, band rows) materialize a
  /// copy. The refinement itself happens in place on that copy.
  Stmt gen(const TreeNode *N, const std::vector<ActiveStmt> &Active,
           const std::vector<std::string> &LoopVars, const BasicSet &Emitted) {
    switch (N->Kind) {
    case NodeKind::Domain:
    case NodeKind::Context:
      return genChildren(N, Active, LoopVars, Emitted);
    case NodeKind::Filter: {
      std::vector<ActiveStmt> Kept;
      for (const ActiveStmt &A : Active)
        for (unsigned Id : N->FilterStmts)
          if (A.Id == Id)
            Kept.push_back(A);
      if (Kept.empty())
        return nullptr;
      return genChildren(N, Kept, LoopVars, Emitted);
    }
    case NodeKind::Sequence:
    case NodeKind::SetNode:
      return genChildren(N, Active, LoopVars, Emitted);
    case NodeKind::Mark: {
      if (N->MarkTag == "skipped")
        return nullptr; // suppressed producer subtree (Fig 3e)
      Stmt Body = genChildren(N, Active, LoopVars, Emitted);
      if (!Body)
        return nullptr;
      return ir::makeAttr("mark", N->MarkTag, std::move(Body));
    }
    case NodeKind::Extension: {
      std::vector<ActiveStmt> Ext = Active;
      for (const ExtensionDecl &E : N->Extensions) {
        const ir::PolyStmt &St = P.Stmts[E.StmtId];
        assert(E.Rel.space().numIn() == LoopVars.size() &&
               "extension relation arity must match the loop prefix");
        assert(E.Rel.space().numOut() == St.numIters() &&
               "extension relation must target the statement iterators");
        ActiveStmt A;
        A.Id = E.StmtId;
        A.NumIters = St.numIters();
        A.Ctx = St.Domain;
        // Append all existing loop vars and bind them via the relation.
        for (const std::string &V : LoopVars)
          A.Ctx.appendInDim(V);
        unsigned NIter = St.numIters();
        for (const Constraint &C : E.Rel.constraints()) {
          std::vector<int64_t> Row(A.Ctx.numCols(), 0);
          for (unsigned K = 0; K < E.Rel.space().numIn(); ++K)
            Row[A.Ctx.inCol(NIter + K)] = C.Coeffs[E.Rel.inCol(K)];
          for (unsigned K = 0; K < NIter; ++K)
            Row[A.Ctx.inCol(K)] = C.Coeffs[E.Rel.outCol(K)];
          if (C.IsEq)
            A.Ctx.addEq(Row, C.Const);
          else
            A.Ctx.addIneq(Row, C.Const);
        }
        Ext.push_back(std::move(A));
      }
      return genChildren(N, Ext, LoopVars, Emitted);
    }
    case NodeKind::Band:
      return genBandRow(N, 0, Active, LoopVars, Emitted);
    }
    return nullptr;
  }

  /// Projects a statement context onto its loop-variable columns (iters
  /// and divs eliminated), intersected with what the enclosing loops
  /// already enforce, then runs removeRedundant on the survivors. The
  /// whole subproblem is a pure function of the numeric content of
  /// (context, emitted set, iterator count), so it is served from the
  /// process-wide memo when AKG_ASTGEN_MEMO allows; the miss path below
  /// is byte-for-byte the historical computation.
  struct ProjResult {
    bool Empty = false;
    BasicSet Proj;
  };

  ProjResult reducedProjection(const ActiveStmt &A, const BasicSet &Emitted,
                               const std::string &EmittedKey) const {
    const bool UseMemo = !EmittedKey.empty();
    std::string Key;
    if (UseMemo) {
      const BasicSet &Ctx = A.Ctx;
      Key.reserve(64 + EmittedKey.size() +
                  Ctx.constraints().size() * (Ctx.numCols() + 3) * 8);
      Key += 'P';
      putI64(Key, A.NumIters);
      putI64(Key, Ctx.space().numParams());
      putI64(Key, Ctx.space().numIn());
      putI64(Key, Ctx.space().numOut());
      putI64(Key, static_cast<int64_t>(Ctx.divs().size()));
      for (const DivDef &D : Ctx.divs()) {
        putI64(Key, D.Denom);
        putI64(Key, D.Const);
        putI64(Key, static_cast<int64_t>(D.Coeffs.size()));
        for (int64_t V : D.Coeffs)
          putI64(Key, V);
      }
      putConstraints(Key, Ctx.constraints());
      Key += EmittedKey;
      AstGenMemo &M = AstGenMemo::get();
      std::lock_guard<std::mutex> G(M.Lock);
      auto It = M.Proj.find(Key);
      if (It != M.Proj.end()) {
        Stats::get().add("astgen.proj_memo_hit");
        Stats::get().add("astgen.lp_avoided", It->second.LpEstimate);
        return rebuildProjection(A, It->second);
      }
    }
    Stats::get().add("astgen.proj_memo_miss");

    BasicSet C = A.Ctx;
    // Import the emitted loop-bound constraints on the loop-var columns
    // (they sit after the statement's iterators).
    for (const Constraint &EC : Emitted.constraints()) {
      std::vector<int64_t> Row(C.numCols(), 0);
      for (unsigned K = 0; K < Emitted.space().numIn(); ++K)
        Row[C.inCol(A.NumIters + K)] = EC.Coeffs[K];
      if (EC.IsEq)
        C.addEq(Row, EC.Const);
      else
        C.addIneq(Row, EC.Const);
    }
    while (C.numDivs() > 0)
      C.eliminateCol(C.divCol(C.numDivs() - 1));
    for (unsigned I = A.NumIters; I-- > 0;)
      C.eliminateCol(C.inCol(I));

    bool Empty = C.isEmpty();
    uint32_t LpEstimate = 1; // the emptiness probe
    if (!Empty) {
      // On an empty set removeRedundant keeps every constraint (each LP
      // probe is infeasible), so skipping it preserves the historical
      // result of both call sites - including the leaf path, which used
      // to run removeRedundant unconditionally.
      for (const Constraint &Cn : C.constraints())
        if (!Cn.IsEq)
          ++LpEstimate;
      C.removeRedundant();
    }
    if (UseMemo) {
      AstGenMemo::ProjEntry E;
      E.Empty = Empty;
      E.Cons = C.constraints();
      E.LpEstimate = LpEstimate;
      AstGenMemo &M = AstGenMemo::get();
      M.insertBounded(M.Proj, Key, std::move(E));
    }
    return ProjResult{Empty, std::move(C)};
  }

  /// Rebuilds the projected set from a memo entry: the space is the
  /// context's loop-var suffix (exactly what column elimination leaves
  /// behind); the constraints are the cached survivors, re-added through
  /// addConstraint (idempotent on an already-normalized, deduped list).
  static ProjResult rebuildProjection(const ActiveStmt &A,
                                      const AstGenMemo::ProjEntry &E) {
    Space Sp;
    Sp.Params = A.Ctx.space().Params;
    Sp.In.assign(A.Ctx.space().In.begin() + A.NumIters,
                 A.Ctx.space().In.end());
    Sp.InTuple = A.Ctx.space().InTuple;
    BasicSet R{std::move(Sp)};
    for (const Constraint &C : E.Cons)
      R.addConstraint(C);
    return ProjResult{E.Empty, std::move(R)};
  }

  Stmt genBandRow(const TreeNode *Band, unsigned Row,
                  std::vector<ActiveStmt> Active,
                  std::vector<std::string> LoopVars, BasicSet Emitted) {
    // Band-row recursion multiplies per separated subtree; one of the
    // three instrumented long-running loops (support/Cancel.h). The pass
    // wrapper attributes a tripped checkpoint to "ast_gen".
    cancel::checkPoint();
    if (Row == Band->bandWidth())
      return genChildren(Band, Active, LoopVars, Emitted);
    std::string VarName = "c" + std::to_string(NextVar++);

    // Bind the new loop variable in every active statement: the contexts
    // are refined in place down the schedule tree (one equality or
    // floor-pair per band row) rather than rebuilt per node.
    Stats::get().add("astgen.incremental_refinements",
                     static_cast<int64_t>(Active.size()));
    for (ActiveStmt &A : Active) {
      unsigned Col = A.Ctx.appendInDim(VarName);
      auto It = Band->Partial.find(A.Id);
      assert(It != Band->Partial.end() &&
             "band does not schedule an active statement");
      const ScheduleRow &SR = It->second.Rows[Row];
      assert(SR.Coeffs.size() == A.NumIters && "schedule row arity");
      if (SR.Denom == 1) {
        std::vector<int64_t> Eq(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Eq[A.Ctx.inCol(K)] = SR.Coeffs[K];
        Eq[Col] = -1;
        A.Ctx.addEq(Eq, SR.Const);
        A.AffRows.push_back(SR.Coeffs);
        A.AffConsts.push_back(SR.Const);
        A.AffVars.push_back(VarName);
      } else {
        // v = floor((coeffs.i + const)/T):  0 <= e - T v <= T - 1.
        std::vector<int64_t> Lo(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Lo[A.Ctx.inCol(K)] = SR.Coeffs[K];
        Lo[Col] = -SR.Denom;
        A.Ctx.addIneq(Lo, SR.Const);
        std::vector<int64_t> Hi(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Hi[A.Ctx.inCol(K)] = -SR.Coeffs[K];
        Hi[Col] = SR.Denom;
        A.Ctx.addIneq(Hi, SR.Denom - 1 - SR.Const);
      }
    }
    LoopVars.push_back(VarName);
    unsigned VIdx = static_cast<unsigned>(LoopVars.size()) - 1;

    // Compute per-statement bounds on the new variable.
    struct StmtBounds {
      std::vector<BoundExpr> Lower, Upper;
    };
    std::string EmittedKey =
        AstGenMemo::enabled() ? serializeEmitted(Emitted) : std::string();
    std::vector<StmtBounds> AllBounds;
    std::vector<ActiveStmt> Kept;
    for (ActiveStmt &A : Active) {
      ProjResult PR = reducedProjection(A, Emitted, EmittedKey);
      if (PR.Empty)
        continue; // statement has no instances in this subtree
      const BasicSet &Proj = PR.Proj;
      StmtBounds SB;
      for (const Constraint &C : Proj.constraints()) {
        // Columns of Proj: loop vars in path order.
        int64_t VC = C.Coeffs[VIdx];
        auto MakeBound = [&](int64_t Sign) {
          BoundExpr B;
          B.Coeffs.assign(LoopVars.size(), 0);
          for (unsigned K = 0; K < LoopVars.size(); ++K)
            if (K != VIdx)
              B.Coeffs[K] = Sign * C.Coeffs[K];
          B.Const = Sign * C.Const;
          return B;
        };
        if (VC > 0) { // VC*v + rest >= 0 -> v >= ceil(-rest / VC)
          BoundExpr B = MakeBound(-1);
          B.Div = VC;
          SB.Lower.push_back(B);
          if (C.IsEq) { // v == -rest/VC: also an upper bound
            B.Div = VC;
            SB.Upper.push_back(std::move(B));
          }
        } else if (VC < 0) { // v <= floor(rest / -VC)
          BoundExpr B = MakeBound(1);
          B.Div = -VC;
          SB.Upper.push_back(B);
          if (C.IsEq) { // v == rest/(-VC): also a lower bound
            B.Div = -VC;
            SB.Lower.push_back(std::move(B));
          }
        }
      }
      assert(!SB.Lower.empty() && !SB.Upper.empty() &&
             "loop variable must be bounded");
      AllBounds.push_back(std::move(SB));
      Kept.push_back(std::move(A));
    }
    if (Kept.empty())
      return nullptr;

    // Union bounds across statements: max of lowers within a statement,
    // min of lowers across statements (loop covers the union).
    auto FoldStmt = [&](const std::vector<BoundExpr> &Bs, bool IsLower) {
      Expr E = boundToExpr(Bs[0], LoopVars, IsLower);
      for (unsigned I = 1; I < Bs.size(); ++I) {
        Expr N = boundToExpr(Bs[I], LoopVars, IsLower);
        E = IsLower ? ir::maxE(E, N) : ir::minE(E, N);
      }
      return E;
    };
    Expr Lb = FoldStmt(AllBounds[0].Lower, true);
    Expr Ub = FoldStmt(AllBounds[0].Upper, false);
    bool SameBounds = true;
    for (unsigned I = 1; I < AllBounds.size(); ++I) {
      Expr L2 = FoldStmt(AllBounds[I].Lower, true);
      Expr U2 = FoldStmt(AllBounds[I].Upper, false);
      if (!ir::exprEquals(L2, Lb)) {
        Lb = ir::minE(Lb, L2);
        SameBounds = false;
      }
      if (!ir::exprEquals(U2, Ub)) {
        Ub = ir::maxE(Ub, U2);
        SameBounds = false;
      }
    }
    Lb = ir::simplifyExpr(Lb);
    Ub = ir::simplifyExpr(Ub);

    // Track what the emitted loop enforces (affine constraints only, and
    // only when shared by every statement).
    Emitted.appendInDim(VarName);
    {
      // Constant-folded bounds carry integer tightening (ceil/floor of the
      // rational bound) that the raw constraints lose.
      int64_t CB;
      if (ir::isConstInt(Lb, &CB)) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        Row[Emitted.inCol(VIdx)] = 1;
        Emitted.addIneq(Row, -CB);
      }
      if (ir::isConstInt(Ub, &CB)) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        Row[Emitted.inCol(VIdx)] = -1;
        Emitted.addIneq(Row, CB);
      }
    }
    if (SameBounds) {
      for (const BoundExpr &B : AllBounds[0].Lower) {
        // v >= ceil((c.x + k)/d)  <=>  d*v - c.x - k >= 0.
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        for (unsigned K = 0; K < LoopVars.size(); ++K)
          Row[Emitted.inCol(K)] = -B.Coeffs[K];
        Row[Emitted.inCol(VIdx)] += B.Div;
        Emitted.addIneq(Row, -B.Const);
      }
      for (const BoundExpr &B : AllBounds[0].Upper) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        for (unsigned K = 0; K < LoopVars.size(); ++K)
          Row[Emitted.inCol(K)] = B.Coeffs[K];
        Row[Emitted.inCol(VIdx)] -= B.Div;
        Emitted.addIneq(Row, B.Const);
      }
    }

    Stmt Body = genBandRow(Band, Row + 1, std::move(Kept),
                           LoopVars, Emitted);
    if (!Body)
      return nullptr;
    Expr Extent = ir::simplifyExpr(
        ir::add(ir::sub(Ub, Lb), cInt(1)));
    Stmt Loop = ir::makeFor(VarName, Lb, Extent, std::move(Body));
    if (Opts.AnnotateVectorLoops && Row < Band->Coincident.size() &&
        Band->Coincident[Row])
      return ir::makeAttr("coincident", VarName, std::move(Loop));
    return Loop;
  }

  Stmt emitLeaf(const std::vector<ActiveStmt> &Active,
                const std::vector<std::string> &LoopVars,
                const BasicSet &Emitted) {
    std::vector<const ActiveStmt *> Ordered;
    for (const ActiveStmt &A : Active)
      Ordered.push_back(&A);
    std::sort(Ordered.begin(), Ordered.end(),
              [](const ActiveStmt *A, const ActiveStmt *B) {
                return A->Id < B->Id;
              });
    EmittedCtx EC{Emitted,
                  AstGenMemo::enabled() ? serializeEmitted(Emitted)
                                        : std::string(),
                  originSatisfies(Emitted)};
    std::vector<Stmt> Out;
    for (const ActiveStmt *A : Ordered) {
      Stmt S = emitStatement(*A, LoopVars, EC);
      if (S)
        Out.push_back(std::move(S));
    }
    if (Out.empty())
      return nullptr;
    return ir::makeBlock(std::move(Out));
  }

  Stmt emitStatement(const ActiveStmt &A,
                     const std::vector<std::string> &LoopVars,
                     const EmittedCtx &EC) {
    const ir::PolyStmt &St = P.Stmts[A.Id];
    // Solve the iterators from the affine band rows.
    unsigned N = A.NumIters;
    // Select N linearly independent rows in application order.
    std::vector<unsigned> Chosen;
    {
      Matrix M(0, N);
      for (unsigned R = 0; R < A.AffRows.size() && Chosen.size() < N; ++R) {
        Matrix Try = M;
        std::vector<Rational> Row(N);
        for (unsigned C = 0; C < N; ++C)
          Row[C] = Rational(A.AffRows[R][C]);
        Try.addRow(Row);
        if (Try.rank() > M.rank()) {
          M = Try;
          Chosen.push_back(R);
        }
      }
      assert(Chosen.size() == N &&
             "statement iterators not fully determined at leaf");
    }
    Matrix Sq(N, N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned C = 0; C < N; ++C)
        Sq.at(I, C) = Rational(A.AffRows[Chosen[I]][C]);
    Matrix Inv = Sq.inverse();
    // Iterator expressions: i = Inv * (v - const).
    std::vector<std::pair<std::string, Expr>> Bind;
    for (unsigned K = 0; K < N; ++K) {
      Expr E = cInt(0);
      for (unsigned J = 0; J < N; ++J) {
        Rational C = Inv.at(K, J);
        if (C.isZero())
          continue;
        assert(C.isInteger() &&
               "non-unimodular schedule at leaf (unsupported stride)");
        Expr Term = ir::mul(
            cInt(C.getInt64()),
            ir::sub(cVar(A.AffVars[Chosen[J]]),
                    cInt(A.AffConsts[Chosen[J]])));
        E = ir::add(E, Term);
      }
      Bind.emplace_back(St.Iters[K].Name, ir::simplifyExpr(E));
    }
    // Statement body.
    std::vector<Expr> Idx;
    for (const Expr &I : St.Write.Indices)
      Idx.push_back(ir::simplifyExpr(ir::substitute(I, Bind)));
    Expr Rhs = ir::simplifyExpr(ir::substitute(St.Rhs, Bind));
    Stmt Body = ir::makeProvide(St.Write.Ref, std::move(Idx), std::move(Rhs));

    // Guards: context constraints over loop vars not implied by the
    // emitted loop bounds.
    ProjResult PR = reducedProjection(A, EC.Set, EC.Key);
    const BasicSet &Proj = PR.Proj;
    std::vector<Expr> Guards;
    for (const Constraint &C : Proj.constraints()) {
      if (impliedByEmitted(C, EC))
        continue;
      // Build  coeffs . v + const  (>= 0 or == 0).
      Expr E = cInt(C.Const);
      for (unsigned K = 0; K < LoopVars.size() && K < C.Coeffs.size(); ++K) {
        if (C.Coeffs[K] == 0)
          continue;
        E = ir::add(E, ir::mul(cInt(C.Coeffs[K]),
                               cVar(LoopVars[K])));
      }
      E = ir::simplifyExpr(E);
      Guards.push_back(C.IsEq ? ir::cmp(ir::ExprKind::CmpEQ, E, cInt(0))
                              : ir::cmp(ir::ExprKind::CmpLE, cInt(0),
                                        E));
    }
    for (unsigned G = Guards.size(); G-- > 0;)
      Body = ir::makeIf(Guards[G], std::move(Body));
    return Body;
  }

  /// Separation check: is constraint \p C implied by the emitted loop
  /// bounds? Decided, in order, by the memo, by syntactic shortcuts
  /// (exact only because a member point of the emitted set is known),
  /// and finally by the historical LP. All three produce the same
  /// verdict; only the cost differs.
  bool impliedByEmitted(const Constraint &C, const EmittedCtx &EC) const {
    if (C.IsEq)
      return false;
    const BasicSet &Emitted = EC.Set;
    const std::vector<Constraint> &ECons = Emitted.constraints();
    // Min of C over Emitted >= 0 => implied.
    if (ECons.empty())
      return false;
    // The LP truncates/pads C to the emitted set's columns; every check
    // below must see exactly the coefficients the LP would.
    unsigned W = std::min<size_t>(Emitted.numCols(), C.Coeffs.size());
    std::string Key;
    const bool UseMemo = !EC.Key.empty();
    if (UseMemo) {
      Key.reserve(EC.Key.size() + (W + 3) * 8);
      Key += 'I';
      putI64(Key, C.Const);
      putI64(Key, W);
      for (unsigned K = 0; K < W; ++K)
        putI64(Key, C.Coeffs[K]);
      Key += EC.Key;
      AstGenMemo &M = AstGenMemo::get();
      std::lock_guard<std::mutex> G(M.Lock);
      auto It = M.Implied.find(Key);
      if (It != M.Implied.end()) {
        Stats::get().add("astgen.implied_memo_hit");
        Stats::get().add("astgen.lp_avoided");
        return It->second;
      }
    }

    bool Result = false;
    bool Decided = false;
    if (EC.HasMember) {
      // Trivial constant: min over a non-empty set of a constant
      // objective is that constant.
      bool AllZero = true;
      for (unsigned K = 0; K < W; ++K)
        if (C.Coeffs[K] != 0) {
          AllZero = false;
          break;
        }
      if (AllZero) {
        Result = C.Const >= 0;
        Decided = true;
      }
      // Dominance by one emitted constraint with the same coefficient
      // vector: E.x + E.c >= 0 pointwise bounds C.x + C.c from below by
      // C.c - E.c; an equality pins the objective's value exactly.
      for (unsigned I = 0; !Decided && I < ECons.size(); ++I) {
        const Constraint &E = ECons[I];
        bool SameCoeffs = true;
        for (unsigned K = 0; K < E.Coeffs.size(); ++K) {
          int64_t CK = K < W ? C.Coeffs[K] : 0;
          if (E.Coeffs[K] != CK) {
            SameCoeffs = false;
            break;
          }
        }
        if (!SameCoeffs)
          continue;
        if (E.IsEq) {
          // C.x is the constant -E.c over the whole set.
          Result = C.Const - E.Const >= 0;
          Decided = true;
        } else if (C.Const >= E.Const) {
          Result = true;
          Decided = true;
        }
      }
      if (Decided) {
        Stats::get().add("astgen.implied_syntactic");
        Stats::get().add("astgen.lp_avoided");
      }
    }
    if (!Decided) {
      Stats::get().add("astgen.implied_lp");
      LpProblem Lp = Emitted.toLp();
      std::vector<Rational> Obj(Lp.NumVars, Rational(0));
      for (unsigned K = 0; K < Emitted.numCols() && K < C.Coeffs.size(); ++K)
        Obj[K] = Rational(C.Coeffs[K]);
      LpResult R = lpMinimize(Lp, Obj);
      Result = R.Status == LpStatus::Optimal &&
               R.Value + Rational(C.Const) >= Rational(0);
    }
    if (UseMemo) {
      AstGenMemo &M = AstGenMemo::get();
      M.insertBounded(M.Implied, Key, Result);
    }
    return Result;
  }
};

} // namespace

Stmt generateAst(const ScheduleTree &T, const ir::PolyProgram &P,
                 const AstGenOptions &Opts) {
  AstGenerator G(P, Opts);
  // Unconditional counter for the compile trace's per-pass deltas.
  Stats::get().add("astgen.runs");
  return G.run(T.root());
}

} // namespace sched
} // namespace akg
