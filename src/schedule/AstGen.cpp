//===- schedule/AstGen.cpp - Schedule tree -> AST generation --------------===//

#include "schedule/AstGen.h"

#include "ir/Passes.h"
#include "support/Cancel.h"
#include "support/Matrix.h"
#include "support/Stats.h"

#include <algorithm>
#include <cassert>

namespace akg {
namespace sched {

using namespace poly;
using ir::Expr;
using ir::Stmt;

namespace {

/// Per-statement code-generation context.
struct ActiveStmt {
  unsigned Id = 0;
  unsigned NumIters = 0;
  /// Dims: [iters of the statement..., every loop var on the path...].
  BasicSet Ctx;
  /// Affine (denominator-1) band rows applied so far, for inversion at the
  /// leaf: Coeffs over iters, the constant, and the bound loop variable.
  std::vector<std::vector<int64_t>> AffRows;
  std::vector<int64_t> AffConsts;
  std::vector<std::string> AffVars;
};

/// One affine bound: Value >= / <= (Coeffs . loopvars + Const) / Div.
struct BoundExpr {
  std::vector<int64_t> Coeffs; // over loop vars (path order)
  int64_t Const = 0;
  int64_t Div = 1; // divide (ceil for lower, floor for upper)
};

Expr boundToExpr(const BoundExpr &B, const std::vector<std::string> &Vars,
                 bool IsLower) {
  Expr E = ir::intImm(B.Const);
  for (unsigned I = 0; I < B.Coeffs.size(); ++I) {
    if (B.Coeffs[I] == 0)
      continue;
    Expr Term = ir::mul(ir::intImm(B.Coeffs[I]), ir::var(Vars[I]));
    E = ir::add(E, Term);
  }
  if (B.Div != 1) {
    if (IsLower) // ceil(a/d) = floor((a + d - 1)/d)
      E = ir::floorDiv(ir::add(E, ir::intImm(B.Div - 1)), ir::intImm(B.Div));
    else
      E = ir::floorDiv(E, ir::intImm(B.Div));
  }
  return ir::simplifyExpr(E);
}

class AstGenerator {
public:
  AstGenerator(const ir::PolyProgram &P, const AstGenOptions &Opts)
      : P(P), Opts(Opts) {}

  Stmt run(const TreeNode *Root) {
    std::vector<ActiveStmt> Active;
    for (const ir::PolyStmt &S : P.Stmts) {
      ActiveStmt A;
      A.Id = S.Id;
      A.NumIters = S.numIters();
      A.Ctx = S.Domain;
      Active.push_back(std::move(A));
    }
    std::vector<std::string> LoopVars;
    BasicSet Emitted(Space::forSet({}, "emitted"));
    return ir::simplifyStmt(gen(Root, Active, LoopVars, Emitted));
  }

private:
  const ir::PolyProgram &P;
  AstGenOptions Opts;
  unsigned NextVar = 0;

  Stmt genChildren(const TreeNode *N, const std::vector<ActiveStmt> &Active,
                   const std::vector<std::string> &LoopVars,
                   const BasicSet &Emitted) {
    if (N->Children.empty())
      return emitLeaf(Active, LoopVars, Emitted);
    std::vector<Stmt> Parts;
    for (const auto &C : N->Children) {
      Stmt S = gen(C.get(), Active, LoopVars, Emitted);
      if (S)
        Parts.push_back(std::move(S));
    }
    return ir::makeBlock(std::move(Parts));
  }

  Stmt gen(const TreeNode *N, std::vector<ActiveStmt> Active,
           std::vector<std::string> LoopVars, BasicSet Emitted) {
    switch (N->Kind) {
    case NodeKind::Domain:
    case NodeKind::Context:
      return genChildren(N, Active, LoopVars, Emitted);
    case NodeKind::Filter: {
      std::vector<ActiveStmt> Kept;
      for (ActiveStmt &A : Active)
        for (unsigned Id : N->FilterStmts)
          if (A.Id == Id)
            Kept.push_back(std::move(A));
      if (Kept.empty())
        return nullptr;
      return genChildren(N, Kept, LoopVars, Emitted);
    }
    case NodeKind::Sequence:
    case NodeKind::SetNode:
      return genChildren(N, Active, LoopVars, Emitted);
    case NodeKind::Mark: {
      if (N->MarkTag == "skipped")
        return nullptr; // suppressed producer subtree (Fig 3e)
      Stmt Body = genChildren(N, Active, LoopVars, Emitted);
      if (!Body)
        return nullptr;
      return ir::makeAttr("mark", N->MarkTag, std::move(Body));
    }
    case NodeKind::Extension: {
      for (const ExtensionDecl &E : N->Extensions) {
        const ir::PolyStmt &St = P.Stmts[E.StmtId];
        assert(E.Rel.space().numIn() == LoopVars.size() &&
               "extension relation arity must match the loop prefix");
        assert(E.Rel.space().numOut() == St.numIters() &&
               "extension relation must target the statement iterators");
        ActiveStmt A;
        A.Id = E.StmtId;
        A.NumIters = St.numIters();
        A.Ctx = St.Domain;
        // Append all existing loop vars and bind them via the relation.
        for (const std::string &V : LoopVars)
          A.Ctx.appendInDim(V);
        unsigned NIter = St.numIters();
        for (const Constraint &C : E.Rel.constraints()) {
          std::vector<int64_t> Row(A.Ctx.numCols(), 0);
          for (unsigned K = 0; K < E.Rel.space().numIn(); ++K)
            Row[A.Ctx.inCol(NIter + K)] = C.Coeffs[E.Rel.inCol(K)];
          for (unsigned K = 0; K < NIter; ++K)
            Row[A.Ctx.inCol(K)] = C.Coeffs[E.Rel.outCol(K)];
          if (C.IsEq)
            A.Ctx.addEq(Row, C.Const);
          else
            A.Ctx.addIneq(Row, C.Const);
        }
        Active.push_back(std::move(A));
      }
      return genChildren(N, Active, LoopVars, Emitted);
    }
    case NodeKind::Band:
      return genBandRow(N, 0, std::move(Active), std::move(LoopVars),
                        std::move(Emitted));
    }
    return nullptr;
  }

  /// Projects a statement context onto its loop-variable columns (iters and
  /// divs eliminated), intersected with what the enclosing loops already
  /// enforce (so integer-tightened loop bounds shake out max(.,0) terms).
  BasicSet projectToLoopVars(const ActiveStmt &A,
                             const BasicSet &Emitted) const {
    BasicSet C = A.Ctx;
    // Import the emitted loop-bound constraints on the loop-var columns
    // (they sit after the statement's iterators).
    for (const Constraint &EC : Emitted.constraints()) {
      std::vector<int64_t> Row(C.numCols(), 0);
      for (unsigned K = 0; K < Emitted.space().numIn(); ++K)
        Row[C.inCol(A.NumIters + K)] = EC.Coeffs[K];
      if (EC.IsEq)
        C.addEq(Row, EC.Const);
      else
        C.addIneq(Row, EC.Const);
    }
    while (C.numDivs() > 0)
      C.eliminateCol(C.divCol(C.numDivs() - 1));
    for (unsigned I = A.NumIters; I-- > 0;)
      C.eliminateCol(C.inCol(I));
    return C;
  }

  Stmt genBandRow(const TreeNode *Band, unsigned Row,
                  std::vector<ActiveStmt> Active,
                  std::vector<std::string> LoopVars, BasicSet Emitted) {
    // Band-row recursion multiplies per separated subtree; one of the
    // three instrumented long-running loops (support/Cancel.h). The pass
    // wrapper attributes a tripped checkpoint to "ast_gen".
    cancel::checkPoint();
    if (Row == Band->bandWidth())
      return genChildren(Band, Active, LoopVars, Emitted);
    std::string VarName = "c" + std::to_string(NextVar++);

    // Bind the new loop variable in every active statement.
    for (ActiveStmt &A : Active) {
      unsigned Col = A.Ctx.appendInDim(VarName);
      auto It = Band->Partial.find(A.Id);
      assert(It != Band->Partial.end() &&
             "band does not schedule an active statement");
      const ScheduleRow &SR = It->second.Rows[Row];
      assert(SR.Coeffs.size() == A.NumIters && "schedule row arity");
      if (SR.Denom == 1) {
        std::vector<int64_t> Eq(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Eq[A.Ctx.inCol(K)] = SR.Coeffs[K];
        Eq[Col] = -1;
        A.Ctx.addEq(Eq, SR.Const);
        A.AffRows.push_back(SR.Coeffs);
        A.AffConsts.push_back(SR.Const);
        A.AffVars.push_back(VarName);
      } else {
        // v = floor((coeffs.i + const)/T):  0 <= e - T v <= T - 1.
        std::vector<int64_t> Lo(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Lo[A.Ctx.inCol(K)] = SR.Coeffs[K];
        Lo[Col] = -SR.Denom;
        A.Ctx.addIneq(Lo, SR.Const);
        std::vector<int64_t> Hi(A.Ctx.numCols(), 0);
        for (unsigned K = 0; K < A.NumIters; ++K)
          Hi[A.Ctx.inCol(K)] = -SR.Coeffs[K];
        Hi[Col] = SR.Denom;
        A.Ctx.addIneq(Hi, SR.Denom - 1 - SR.Const);
      }
    }
    LoopVars.push_back(VarName);
    unsigned VIdx = static_cast<unsigned>(LoopVars.size()) - 1;

    // Compute per-statement bounds on the new variable.
    struct StmtBounds {
      std::vector<BoundExpr> Lower, Upper;
    };
    std::vector<StmtBounds> AllBounds;
    std::vector<ActiveStmt> Kept;
    for (ActiveStmt &A : Active) {
      BasicSet Proj = projectToLoopVars(A, Emitted);
      if (Proj.isEmpty())
        continue; // statement has no instances in this subtree
      Proj.removeRedundant();
      StmtBounds SB;
      for (const Constraint &C : Proj.constraints()) {
        // Columns of Proj: loop vars in path order.
        int64_t VC = C.Coeffs[VIdx];
        auto MakeBound = [&](int64_t Sign) {
          BoundExpr B;
          B.Coeffs.assign(LoopVars.size(), 0);
          for (unsigned K = 0; K < LoopVars.size(); ++K)
            if (K != VIdx)
              B.Coeffs[K] = Sign * C.Coeffs[K];
          B.Const = Sign * C.Const;
          return B;
        };
        if (VC > 0) { // VC*v + rest >= 0 -> v >= ceil(-rest / VC)
          BoundExpr B = MakeBound(-1);
          B.Div = VC;
          SB.Lower.push_back(B);
          if (C.IsEq) { // v == -rest/VC: also an upper bound
            B.Div = VC;
            SB.Upper.push_back(std::move(B));
          }
        } else if (VC < 0) { // v <= floor(rest / -VC)
          BoundExpr B = MakeBound(1);
          B.Div = -VC;
          SB.Upper.push_back(B);
          if (C.IsEq) { // v == rest/(-VC): also a lower bound
            B.Div = -VC;
            SB.Lower.push_back(std::move(B));
          }
        }
      }
      assert(!SB.Lower.empty() && !SB.Upper.empty() &&
             "loop variable must be bounded");
      AllBounds.push_back(std::move(SB));
      Kept.push_back(std::move(A));
    }
    if (Kept.empty())
      return nullptr;

    // Union bounds across statements: max of lowers within a statement,
    // min of lowers across statements (loop covers the union).
    auto FoldStmt = [&](const std::vector<BoundExpr> &Bs, bool IsLower) {
      Expr E = boundToExpr(Bs[0], LoopVars, IsLower);
      for (unsigned I = 1; I < Bs.size(); ++I) {
        Expr N = boundToExpr(Bs[I], LoopVars, IsLower);
        E = IsLower ? ir::maxE(E, N) : ir::minE(E, N);
      }
      return E;
    };
    Expr Lb = FoldStmt(AllBounds[0].Lower, true);
    Expr Ub = FoldStmt(AllBounds[0].Upper, false);
    bool SameBounds = true;
    for (unsigned I = 1; I < AllBounds.size(); ++I) {
      Expr L2 = FoldStmt(AllBounds[I].Lower, true);
      Expr U2 = FoldStmt(AllBounds[I].Upper, false);
      if (!ir::exprEquals(L2, Lb)) {
        Lb = ir::minE(Lb, L2);
        SameBounds = false;
      }
      if (!ir::exprEquals(U2, Ub)) {
        Ub = ir::maxE(Ub, U2);
        SameBounds = false;
      }
    }
    Lb = ir::simplifyExpr(Lb);
    Ub = ir::simplifyExpr(Ub);

    // Track what the emitted loop enforces (affine constraints only, and
    // only when shared by every statement).
    Emitted.appendInDim(VarName);
    {
      // Constant-folded bounds carry integer tightening (ceil/floor of the
      // rational bound) that the raw constraints lose.
      int64_t CB;
      if (ir::isConstInt(Lb, &CB)) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        Row[Emitted.inCol(VIdx)] = 1;
        Emitted.addIneq(Row, -CB);
      }
      if (ir::isConstInt(Ub, &CB)) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        Row[Emitted.inCol(VIdx)] = -1;
        Emitted.addIneq(Row, CB);
      }
    }
    if (SameBounds) {
      for (const BoundExpr &B : AllBounds[0].Lower) {
        // v >= ceil((c.x + k)/d)  <=>  d*v - c.x - k >= 0.
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        for (unsigned K = 0; K < LoopVars.size(); ++K)
          Row[Emitted.inCol(K)] = -B.Coeffs[K];
        Row[Emitted.inCol(VIdx)] += B.Div;
        Emitted.addIneq(Row, -B.Const);
      }
      for (const BoundExpr &B : AllBounds[0].Upper) {
        std::vector<int64_t> Row(Emitted.numCols(), 0);
        for (unsigned K = 0; K < LoopVars.size(); ++K)
          Row[Emitted.inCol(K)] = B.Coeffs[K];
        Row[Emitted.inCol(VIdx)] -= B.Div;
        Emitted.addIneq(Row, B.Const);
      }
    }

    Stmt Body = genBandRow(Band, Row + 1, std::move(Kept),
                           LoopVars, Emitted);
    if (!Body)
      return nullptr;
    Expr Extent = ir::simplifyExpr(
        ir::add(ir::sub(Ub, Lb), ir::intImm(1)));
    Stmt Loop = ir::makeFor(VarName, Lb, Extent, std::move(Body));
    if (Opts.AnnotateVectorLoops && Row < Band->Coincident.size() &&
        Band->Coincident[Row])
      return ir::makeAttr("coincident", VarName, std::move(Loop));
    return Loop;
  }

  Stmt emitLeaf(const std::vector<ActiveStmt> &Active,
                const std::vector<std::string> &LoopVars,
                const BasicSet &Emitted) {
    std::vector<const ActiveStmt *> Ordered;
    for (const ActiveStmt &A : Active)
      Ordered.push_back(&A);
    std::sort(Ordered.begin(), Ordered.end(),
              [](const ActiveStmt *A, const ActiveStmt *B) {
                return A->Id < B->Id;
              });
    std::vector<Stmt> Out;
    for (const ActiveStmt *A : Ordered) {
      Stmt S = emitStatement(*A, LoopVars, Emitted);
      if (S)
        Out.push_back(std::move(S));
    }
    if (Out.empty())
      return nullptr;
    return ir::makeBlock(std::move(Out));
  }

  Stmt emitStatement(const ActiveStmt &A,
                     const std::vector<std::string> &LoopVars,
                     const BasicSet &Emitted) {
    const ir::PolyStmt &St = P.Stmts[A.Id];
    // Solve the iterators from the affine band rows.
    unsigned N = A.NumIters;
    // Select N linearly independent rows in application order.
    std::vector<unsigned> Chosen;
    {
      Matrix M(0, N);
      for (unsigned R = 0; R < A.AffRows.size() && Chosen.size() < N; ++R) {
        Matrix Try = M;
        std::vector<Rational> Row(N);
        for (unsigned C = 0; C < N; ++C)
          Row[C] = Rational(A.AffRows[R][C]);
        Try.addRow(Row);
        if (Try.rank() > M.rank()) {
          M = Try;
          Chosen.push_back(R);
        }
      }
      assert(Chosen.size() == N &&
             "statement iterators not fully determined at leaf");
    }
    Matrix Sq(N, N);
    for (unsigned I = 0; I < N; ++I)
      for (unsigned C = 0; C < N; ++C)
        Sq.at(I, C) = Rational(A.AffRows[Chosen[I]][C]);
    Matrix Inv = Sq.inverse();
    // Iterator expressions: i = Inv * (v - const).
    std::vector<std::pair<std::string, Expr>> Bind;
    for (unsigned K = 0; K < N; ++K) {
      Expr E = ir::intImm(0);
      for (unsigned J = 0; J < N; ++J) {
        Rational C = Inv.at(K, J);
        if (C.isZero())
          continue;
        assert(C.isInteger() &&
               "non-unimodular schedule at leaf (unsupported stride)");
        Expr Term = ir::mul(
            ir::intImm(C.getInt64()),
            ir::sub(ir::var(A.AffVars[Chosen[J]]),
                    ir::intImm(A.AffConsts[Chosen[J]])));
        E = ir::add(E, Term);
      }
      Bind.emplace_back(St.Iters[K].Name, ir::simplifyExpr(E));
    }
    // Statement body.
    std::vector<Expr> Idx;
    for (const Expr &I : St.Write.Indices)
      Idx.push_back(ir::simplifyExpr(ir::substitute(I, Bind)));
    Expr Rhs = ir::simplifyExpr(ir::substitute(St.Rhs, Bind));
    Stmt Body = ir::makeProvide(St.Write.Ref, std::move(Idx), std::move(Rhs));

    // Guards: context constraints over loop vars not implied by the
    // emitted loop bounds.
    BasicSet Proj = projectToLoopVars(A, Emitted);
    Proj.removeRedundant();
    std::vector<Expr> Guards;
    for (const Constraint &C : Proj.constraints()) {
      if (impliedByEmitted(C, Emitted))
        continue;
      // Build  coeffs . v + const  (>= 0 or == 0).
      Expr E = ir::intImm(C.Const);
      for (unsigned K = 0; K < LoopVars.size() && K < C.Coeffs.size(); ++K) {
        if (C.Coeffs[K] == 0)
          continue;
        E = ir::add(E, ir::mul(ir::intImm(C.Coeffs[K]),
                               ir::var(LoopVars[K])));
      }
      E = ir::simplifyExpr(E);
      Guards.push_back(C.IsEq ? ir::cmp(ir::ExprKind::CmpEQ, E, ir::intImm(0))
                              : ir::cmp(ir::ExprKind::CmpLE, ir::intImm(0),
                                        E));
    }
    for (unsigned G = Guards.size(); G-- > 0;)
      Body = ir::makeIf(Guards[G], std::move(Body));
    return Body;
  }

  bool impliedByEmitted(const Constraint &C, const BasicSet &Emitted) const {
    if (C.IsEq)
      return false;
    // Min of C over Emitted >= 0 => implied.
    if (Emitted.constraints().empty())
      return false;
    LpProblem Lp = Emitted.toLp();
    std::vector<Rational> Obj(Lp.NumVars, Rational(0));
    for (unsigned K = 0; K < Emitted.numCols() && K < C.Coeffs.size(); ++K)
      Obj[K] = Rational(C.Coeffs[K]);
    LpResult R = lpMinimize(Lp, Obj);
    return R.Status == LpStatus::Optimal &&
           R.Value + Rational(C.Const) >= Rational(0);
  }
};

} // namespace

Stmt generateAst(const ScheduleTree &T, const ir::PolyProgram &P,
                 const AstGenOptions &Opts) {
  AstGenerator G(P, Opts);
  // Unconditional counter for the compile trace's per-pass deltas.
  Stats::get().add("astgen.runs");
  return G.run(T.root());
}

} // namespace sched
} // namespace akg
