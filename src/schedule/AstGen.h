//===- schedule/AstGen.h - Schedule tree -> AST generation ------*- C++ -*-===//
//
// Generates an imperative loop-nest AST (ir::Stmt) from a schedule tree, in
// the spirit of isl's AST generator (Sec 5): band rows become loops whose
// bounds are derived by Fourier-Motzkin projection of each statement's
// scheduling context; filters and sequences order statements; extension
// nodes introduce foreign statement instances whose domains are defined by
// the outer loop variables (post-tiling fusion, Sec 4.3); mark nodes become
// attribute annotations (a "skipped" mark suppresses code generation of the
// original producer subtree, per Fig 3e).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULE_ASTGEN_H
#define AKG_SCHEDULE_ASTGEN_H

#include "ir/PolyExtract.h"
#include "ir/Stmt.h"
#include "schedule/ScheduleTree.h"

namespace akg {
namespace sched {

struct AstGenOptions {
  /// Label the innermost coincident loop of each statement as vectorizable
  /// (an attribute the CCE code generator consumes).
  bool AnnotateVectorLoops = true;
};

/// Generates the AST for the whole tree. The paper's mark tag "skipped"
/// suppresses the marked subtree.
ir::Stmt generateAst(const ScheduleTree &T, const ir::PolyProgram &P,
                     const AstGenOptions &Opts = AstGenOptions());

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULE_ASTGEN_H
