//===- schedule/ScheduleTree.cpp - Schedule tree IR -----------------------===//

#include "schedule/ScheduleTree.h"

#include <cassert>
#include <sstream>

namespace akg {
namespace sched {

TreeNode *TreeNode::addChild(std::unique_ptr<TreeNode> C) {
  C->Parent = this;
  Children.push_back(std::move(C));
  return Children.back().get();
}

std::unique_ptr<TreeNode> makeDomain() {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Domain;
  return N;
}

std::unique_ptr<TreeNode> makeBand(std::map<unsigned, StmtSchedule> Partial,
                                   bool Permutable,
                                   std::vector<bool> Coincident) {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Band;
  N->Partial = std::move(Partial);
  N->Permutable = Permutable;
  if (!N->Partial.empty()) {
    unsigned W = static_cast<unsigned>(N->Partial.begin()->second.Rows.size());
    for ([[maybe_unused]] const auto &[Id, SS] : N->Partial)
      assert(SS.Rows.size() == W && "band rows must agree across statements");
    Coincident.resize(W, false);
  }
  N->Coincident = std::move(Coincident);
  return N;
}

std::unique_ptr<TreeNode> makeFilter(std::vector<unsigned> Stmts) {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Filter;
  N->FilterStmts = std::move(Stmts);
  return N;
}

std::unique_ptr<TreeNode> makeSequence() {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Sequence;
  return N;
}

std::unique_ptr<TreeNode> makeMark(std::string Tag) {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Mark;
  N->MarkTag = std::move(Tag);
  return N;
}

std::unique_ptr<TreeNode> makeExtension(std::vector<ExtensionDecl> Exts) {
  auto N = std::make_unique<TreeNode>();
  N->Kind = NodeKind::Extension;
  N->Extensions = std::move(Exts);
  return N;
}

std::unique_ptr<TreeNode> cloneSubtree(const TreeNode *N) {
  auto C = std::make_unique<TreeNode>();
  C->Kind = N->Kind;
  C->FilterStmts = N->FilterStmts;
  C->Partial = N->Partial;
  C->Permutable = N->Permutable;
  C->Coincident = N->Coincident;
  C->MarkTag = N->MarkTag;
  C->Extensions = N->Extensions;
  C->ParamConstraints = N->ParamConstraints;
  for (const auto &Child : N->Children)
    C->addChild(cloneSubtree(Child.get()));
  return C;
}

ScheduleTree ScheduleTree::clone() const {
  ScheduleTree T;
  if (Root)
    T.setRoot(cloneSubtree(Root.get()));
  return T;
}

StmtSchedule identitySchedule(unsigned NumIters) {
  StmtSchedule S;
  for (unsigned R = 0; R < NumIters; ++R) {
    ScheduleRow Row;
    Row.Coeffs.assign(NumIters, 0);
    Row.Coeffs[R] = 1;
    S.Rows.push_back(std::move(Row));
  }
  return S;
}

void walkTree(TreeNode *N, const std::function<bool(TreeNode *)> &Fn) {
  if (!N || !Fn(N))
    return;
  for (auto &C : N->Children)
    walkTree(C.get(), Fn);
}

void walkTree(const TreeNode *N,
              const std::function<bool(const TreeNode *)> &Fn) {
  if (!N || !Fn(N))
    return;
  for (const auto &C : N->Children)
    walkTree(C.get(), Fn);
}

TreeNode *findNode(TreeNode *Root,
                   const std::function<bool(TreeNode *)> &Pred) {
  TreeNode *Found = nullptr;
  walkTree(Root, [&](TreeNode *N) {
    if (Found)
      return false;
    if (Pred(N)) {
      Found = N;
      return false;
    }
    return true;
  });
  return Found;
}

std::vector<unsigned> activeStatements(const TreeNode *N) {
  // Walk up collecting filters (innermost wins) and extensions.
  std::vector<const TreeNode *> Path;
  for (const TreeNode *P = N; P; P = P->Parent)
    Path.push_back(P);
  // From the root down: start with "all" (unknown), refine by filters, add
  // extensions.
  bool HaveSet = false;
  std::vector<unsigned> Active;
  for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
    const TreeNode *P = *It;
    if (P->Kind == NodeKind::Filter) {
      if (!HaveSet) {
        Active = P->FilterStmts;
        HaveSet = true;
      } else {
        std::vector<unsigned> Keep;
        for (unsigned S : P->FilterStmts)
          for (unsigned A : Active)
            if (A == S)
              Keep.push_back(S);
        Active = Keep;
      }
    } else if (P->Kind == NodeKind::Extension) {
      for (const ExtensionDecl &E : P->Extensions) {
        bool Seen = false;
        for (unsigned A : Active)
          if (A == E.StmtId)
            Seen = true;
        if (!Seen)
          Active.push_back(E.StmtId);
        HaveSet = true;
      }
    }
  }
  return Active;
}

static void printNode(const TreeNode *N, std::ostringstream &OS,
                      unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (N->Kind) {
  case NodeKind::Domain:
    OS << Pad << "Domain\n";
    break;
  case NodeKind::Band: {
    OS << Pad << "Band{";
    bool FirstStmt = true;
    for (const auto &[Id, SS] : N->Partial) {
      if (!FirstStmt)
        OS << "; ";
      FirstStmt = false;
      OS << "S" << Id << " -> (";
      for (unsigned R = 0; R < SS.Rows.size(); ++R) {
        if (R)
          OS << ", ";
        const ScheduleRow &Row = SS.Rows[R];
        bool First = true;
        std::ostringstream Term;
        for (unsigned C = 0; C < Row.Coeffs.size(); ++C) {
          if (Row.Coeffs[C] == 0)
            continue;
          if (!First)
            Term << "+";
          if (Row.Coeffs[C] != 1)
            Term << Row.Coeffs[C] << "*";
          Term << "i" << C;
          First = false;
        }
        if (Row.Const != 0 || First)
          Term << (First ? "" : "+") << Row.Const;
        if (Row.Denom > 1)
          OS << "floor((" << Term.str() << ")/" << Row.Denom << ")";
        else
          OS << Term.str();
      }
      OS << ")";
    }
    OS << "}" << (N->Permutable ? " permutable" : "") << "\n";
    break;
  }
  case NodeKind::Filter: {
    OS << Pad << "Filter{";
    for (unsigned I = 0; I < N->FilterStmts.size(); ++I)
      OS << (I ? "," : "") << "S" << N->FilterStmts[I];
    OS << "}\n";
    break;
  }
  case NodeKind::Sequence:
    OS << Pad << "Sequence\n";
    break;
  case NodeKind::SetNode:
    OS << Pad << "Set\n";
    break;
  case NodeKind::Mark:
    OS << Pad << "Mark{\"" << N->MarkTag << "\"}\n";
    break;
  case NodeKind::Extension: {
    OS << Pad << "Extension{";
    for (unsigned I = 0; I < N->Extensions.size(); ++I)
      OS << (I ? "," : "") << "S" << N->Extensions[I].StmtId;
    OS << "}\n";
    break;
  }
  case NodeKind::Context:
    OS << Pad << "Context\n";
    break;
  }
  for (const auto &C : N->Children)
    printNode(C.get(), OS, Indent + 1);
}

std::string ScheduleTree::str() const {
  std::ostringstream OS;
  if (Root)
    printNode(Root.get(), OS, 0);
  return OS.str();
}

} // namespace sched
} // namespace akg
