//===- schedule/ScheduleTree.h - Schedule tree IR ---------------*- C++ -*-===//
//
// The schedule-tree polyhedral IR (Grosser et al.) that AKG performs all of
// its loop transformations on (Sec 4). Node kinds follow the paper:
//
//   Domain    - root; the statement instances being scheduled
//   Band      - per-statement partial schedules (multi-dimensional,
//               permutable flag, per-row coincidence); rows may be
//               quasi-affine (floor divisions) to express tile loops
//   Filter    - restricts the subtree to a subset of statement instances
//   Sequence  - ordered children (each a Filter)
//   SetNode   - unordered children
//   Mark      - attaches a string tag ("local_UB", "skipped", ...)
//   Extension - introduces foreign statement instances below this point,
//               related to the outer schedule dims (the paper's post-tiling
//               fusion device, Sec 4.3)
//   Context   - parameter constraints (kept for completeness)
//   Leaf      - implicit; a node without children
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULE_SCHEDULETREE_H
#define AKG_SCHEDULE_SCHEDULETREE_H

#include "poly/Affine.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace sched {

enum class NodeKind {
  Domain,
  Band,
  Filter,
  Sequence,
  SetNode,
  Mark,
  Extension,
  Context,
};

/// One row of a per-statement partial schedule: value = (Coeffs . iters +
/// Const), divided by Denom with floor when Denom > 1 (tile loops).
struct ScheduleRow {
  std::vector<int64_t> Coeffs;
  int64_t Const = 0;
  int64_t Denom = 1;

  bool isTileRow() const { return Denom > 1; }
};

/// The partial schedule of one statement inside a band.
struct StmtSchedule {
  std::vector<ScheduleRow> Rows;
};

/// An extension declaration: instances of statement StmtId are introduced,
/// related to the outer schedule dimensions by Rel (outer dims -> stmt
/// iters).
struct ExtensionDecl {
  unsigned StmtId = 0;
  poly::BasicMap Rel;
};

struct TreeNode {
  NodeKind Kind = NodeKind::Domain;

  /// Filter: the statement ids admitted into the subtree.
  std::vector<unsigned> FilterStmts;

  /// Band payload.
  std::map<unsigned, StmtSchedule> Partial; // stmt id -> rows
  bool Permutable = false;
  std::vector<bool> Coincident; // per band row

  /// Mark payload.
  std::string MarkTag;

  /// Extension payload.
  std::vector<ExtensionDecl> Extensions;

  /// Context payload: constraints over parameters.
  std::vector<poly::Constraint> ParamConstraints;

  std::vector<std::unique_ptr<TreeNode>> Children;
  TreeNode *Parent = nullptr;

  unsigned bandWidth() const {
    if (Partial.empty())
      return 0;
    return static_cast<unsigned>(Partial.begin()->second.Rows.size());
  }

  TreeNode *child(unsigned I) { return Children.at(I).get(); }
  const TreeNode *child(unsigned I) const { return Children.at(I).get(); }

  /// Appends a child and wires its parent pointer.
  TreeNode *addChild(std::unique_ptr<TreeNode> C);
};

/// The schedule tree of one fused operator.
class ScheduleTree {
public:
  ScheduleTree() = default;

  TreeNode *root() { return Root.get(); }
  const TreeNode *root() const { return Root.get(); }
  void setRoot(std::unique_ptr<TreeNode> R) { Root = std::move(R); }

  /// Deep copy.
  ScheduleTree clone() const;

  std::string str() const;

private:
  std::unique_ptr<TreeNode> Root;
};

/// --- Node constructors --------------------------------------------------
std::unique_ptr<TreeNode> makeDomain();
std::unique_ptr<TreeNode> makeBand(std::map<unsigned, StmtSchedule> Partial,
                                   bool Permutable,
                                   std::vector<bool> Coincident = {});
std::unique_ptr<TreeNode> makeFilter(std::vector<unsigned> Stmts);
std::unique_ptr<TreeNode> makeSequence();
std::unique_ptr<TreeNode> makeMark(std::string Tag);
std::unique_ptr<TreeNode> makeExtension(std::vector<ExtensionDecl> Exts);

/// Deep-copies a subtree.
std::unique_ptr<TreeNode> cloneSubtree(const TreeNode *N);

/// Builds the identity ScheduleRow set for a statement with \p NumIters
/// iterators (row k selects iterator k).
StmtSchedule identitySchedule(unsigned NumIters);

/// Visits nodes pre-order; the callback may return false to prune descent.
void walkTree(TreeNode *N, const std::function<bool(TreeNode *)> &Fn);
void walkTree(const TreeNode *N,
              const std::function<bool(const TreeNode *)> &Fn);

/// Finds the first node matching a predicate (pre-order), or null.
TreeNode *findNode(TreeNode *Root,
                   const std::function<bool(TreeNode *)> &Pred);

/// Statement ids active at node \p N (respecting Filters and Extensions on
/// the path from the root).
std::vector<unsigned> activeStatements(const TreeNode *N);

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULE_SCHEDULETREE_H
