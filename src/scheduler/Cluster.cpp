//===- scheduler/Cluster.cpp - Affine clustering heuristics ---------------===//

#include "scheduler/Cluster.h"

namespace akg {
namespace sched {

bool isZeroDistance(const Dependence &D, unsigned SharedDims) {
  for (unsigned K = 0; K < SharedDims; ++K) {
    std::optional<int64_t> Lo = depDistanceMin(D, K, K);
    std::optional<int64_t> Hi = depDistanceMax(D, K, K);
    if (!Lo || !Hi || *Lo != 0 || *Hi != 0)
      return false;
  }
  return true;
}

Clustering clusterStatements(const ir::PolyProgram &P,
                             const std::vector<Dependence> &Deps,
                             FusionStrategy Strategy) {
  Clustering C;
  if (Strategy == FusionStrategy::None) {
    for (unsigned I = 0; I < P.Stmts.size(); ++I)
      C.Groups.push_back({I});
    return C;
  }

  // Scan in units: an init/update pair of one reduction op is always kept
  // together (it is a single compound operator in the DSL).
  std::vector<std::vector<unsigned>> Units;
  for (unsigned S = 0; S < P.Stmts.size(); ++S) {
    if (P.Stmts[S].StmtRole == ir::PolyStmt::Role::Init) {
      Units.push_back({S, S + 1});
      ++S;
    } else {
      Units.push_back({S});
    }
  }

  std::vector<unsigned> Current;
  auto Flush = [&]() {
    if (!Current.empty())
      C.Groups.push_back(Current);
    Current.clear();
  };

  for (const std::vector<unsigned> &Unit : Units) {
    if (Current.empty()) {
      Current = Unit;
      continue;
    }
    unsigned SharedDims = UINT32_MAX;
    for (unsigned M : Current)
      SharedDims = std::min(SharedDims, P.Stmts[M].numIters());
    for (unsigned U : Unit)
      SharedDims = std::min(SharedDims, P.Stmts[U].numIters());
    bool Connected = false;
    bool AllFusable = true;
    for (const Dependence &D : Deps) {
      bool FromGroup = false, IntoUnit = false;
      for (unsigned M : Current)
        if (D.Src == M)
          FromGroup = true;
      for (unsigned U : Unit)
        if (D.Dst == U && D.Src != U)
          IntoUnit = true;
      if (!FromGroup || !IntoUnit)
        continue;
      Connected = true;
      if (Strategy == FusionStrategy::Conservative) {
        if (!isZeroDistance(D, SharedDims))
          AllFusable = false;
      } else { // Aggressive: forbid only unbounded distances.
        for (unsigned K = 0; K < SharedDims && AllFusable; ++K)
          if (!depDistanceMin(D, K, K))
            AllFusable = false;
      }
    }
    // Conservative fusion additionally requires matching extents on the
    // shared outer dimensions, so the fused band has uniform bounds.
    if (Connected && AllFusable &&
        Strategy == FusionStrategy::Conservative) {
      for (unsigned M : Current)
        for (unsigned K = 0; K < SharedDims; ++K)
          if (P.Stmts[M].Iters[K].Extent !=
              P.Stmts[Unit[0]].Iters[K].Extent)
            AllFusable = false;
    }
    if (Connected && AllFusable) {
      for (unsigned U : Unit)
        Current.push_back(U);
    } else {
      Flush();
      Current = Unit;
    }
  }
  Flush();
  return C;
}

} // namespace sched
} // namespace akg
