//===- scheduler/Cluster.h - Affine clustering heuristics -------*- C++ -*-===//
//
// The affine clustering step of the isl scheduler (Sec 4.1): groups
// statements into fusion clusters before per-cluster scheduling. AKG
// switches between heuristics per compute unit:
//
//  * None         - no fusion (pure loop distribution),
//  * Conservative - fuse only pointwise (zero-distance) producer/consumer
//                   chains with matching extents; this maximizes tiling
//                   opportunities and is the pre-tiling strategy the paper
//                   uses (it produces the {S0}, {S1..S4} split of Fig 3c),
//  * Aggressive   - fuse any forward-connected statements and let the
//                   scheduler legalize with shifts/skews.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULER_CLUSTER_H
#define AKG_SCHEDULER_CLUSTER_H

#include "scheduler/Dependence.h"

namespace akg {
namespace sched {

enum class FusionStrategy { None, Conservative, Aggressive };

struct Clustering {
  /// Ordered clusters of statement ids (order respects all dependences
  /// because dependences only point from lower to higher ids).
  std::vector<std::vector<unsigned>> Groups;
};

Clustering clusterStatements(const ir::PolyProgram &P,
                             const std::vector<Dependence> &Deps,
                             FusionStrategy Strategy);

/// True if every dependence between the two statements is pointwise
/// (distance exactly 0 on each shared dimension).
bool isZeroDistance(const Dependence &D, unsigned SharedDims);

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULER_CLUSTER_H
