//===- scheduler/Dependence.cpp - Data dependence analysis ----------------===//

#include "scheduler/Dependence.h"

#include "support/Cancel.h"
#include "support/Env.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

namespace akg {
namespace sched {

using namespace poly;

/// Builds {i -> j : SrcAcc(i) = DstAcc(j)}, both restricted to their
/// domains.
static BasicMap accessPairRelation(const ir::PolyStmt &Src,
                                   const BasicMap &SrcAcc,
                                   const ir::PolyStmt &Dst,
                                   const BasicMap &DstAcc) {
  BasicMap Rel = composeMaps(SrcAcc, reverseMap(DstAcc));
  Rel = intersectDomain(Rel, Src.Domain);
  Rel = intersectRange(Rel, Dst.Domain);
  return Rel;
}

/// Splits a self-relation into the lexicographically-forward pieces
/// (i <lex j) and appends the non-empty ones.
static void addSelfPieces(std::vector<Dependence> &Out, unsigned Id,
                          DepKind Kind, const BasicMap &Rel,
                          unsigned NumDims) {
  for (unsigned K = 0; K < NumDims; ++K) {
    BasicMap Piece = Rel;
    for (unsigned D = 0; D < K; ++D) {
      std::vector<int64_t> Eq(Piece.numCols(), 0);
      Eq[Piece.inCol(D)] = 1;
      Eq[Piece.outCol(D)] = -1;
      Piece.addEq(Eq, 0);
    }
    std::vector<int64_t> Lt(Piece.numCols(), 0);
    Lt[Piece.outCol(K)] = 1;
    Lt[Piece.inCol(K)] = -1;
    Piece.addIneq(Lt, -1); // j_k - i_k - 1 >= 0
    if (Piece.isEmpty())
      continue;
    Dependence D;
    D.Src = Id;
    D.Dst = Id;
    D.Kind = Kind;
    D.Rel = std::move(Piece);
    D.IsSelf = true;
    Out.push_back(std::move(D));
  }
}

/// Dependences of one (A, B) statement pair, in the canonical intra-pair
/// order (RAW per read, then WAW, then WAR). Pure function of the pair:
/// touches only its own copies of the relations, so pairs can run on
/// worker threads concurrently.
static std::vector<Dependence> pairDependences(const ir::PolyProgram &P,
                                               unsigned A, unsigned B) {
  std::vector<Dependence> Deps;
  const ir::PolyStmt &SA = P.Stmts[A];
  const ir::PolyStmt &SB = P.Stmts[B];
  auto AddCross = [&](DepKind Kind, const BasicMap &AccA,
                      const BasicMap &AccB) {
    BasicMap Rel = accessPairRelation(SA, AccA, SB, AccB);
    if (A == B) {
      addSelfPieces(Deps, A, Kind, Rel, SA.numIters());
      return;
    }
    if (Rel.isEmpty())
      return;
    Dependence D;
    D.Src = A;
    D.Dst = B;
    D.Kind = Kind;
    D.Rel = std::move(Rel);
    Deps.push_back(std::move(D));
  };
  // RAW: A writes, B reads the same tensor.
  for (const ir::PolyAccess &R : SB.Reads)
    if (R.Ref == SA.Write.Ref)
      AddCross(DepKind::RAW, SA.Write.Rel, R.Rel);
  // WAW: both write the same tensor.
  if (SA.Write.Ref == SB.Write.Ref && (A != B))
    AddCross(DepKind::WAW, SA.Write.Rel, SB.Write.Rel);
  // WAR: A reads, B writes.
  for (const ir::PolyAccess &R : SA.Reads)
    if (R.Ref == SB.Write.Ref && A != B)
      AddCross(DepKind::WAR, R.Rel, SB.Write.Rel);
  return Deps;
}

std::vector<Dependence> computeDependences(const ir::PolyProgram &P,
                                           unsigned Threads) {
  const auto &Stmts = P.Stmts;
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned A = 0; A < Stmts.size(); ++A)
    for (unsigned B = A; B < Stmts.size(); ++B)
      Pairs.emplace_back(A, B);

  if (Threads == 0) {
    int64_t N = env::getInt("AKG_THREADS", 1);
    Threads = static_cast<unsigned>(std::min<int64_t>(std::max<int64_t>(N, 1),
                                                      256));
  }
  if (Pairs.size() < 2)
    Threads = 1; // not worth spinning up workers

  // Pair-indexed result slots keep the output order identical at any
  // thread count: the flattening below follows the sequential pair order.
  // The request's cancel context is thread-local, so it is re-installed
  // explicitly on each pool worker; a tripped checkpoint rethrows out of
  // parallelFor after every worker finishes (one of the three
  // instrumented long-running loops, support/Cancel.h).
  const cancel::Context *Req = cancel::current();
  std::vector<std::vector<Dependence>> PerPair(Pairs.size());
  parallelFor(Threads, Pairs.size(), [&](size_t I) {
    cancel::Scope Propagated(Req);
    cancel::checkPoint();
    PerPair[I] = pairDependences(P, Pairs[I].first, Pairs[I].second);
  });

  std::vector<Dependence> Deps;
  for (std::vector<Dependence> &PP : PerPair)
    for (Dependence &D : PP)
      Deps.push_back(std::move(D));
  return Deps;
}

static std::optional<int64_t> distanceBound(const Dependence &D,
                                            unsigned InDim, unsigned OutDim,
                                            bool WantMax) {
  LpProblem P = D.Rel.toLp();
  std::vector<Rational> Obj(P.NumVars);
  Obj[D.Rel.outCol(OutDim)] = Rational(1);
  Obj[D.Rel.inCol(InDim)] += Rational(-1);
  LpResult R = WantMax ? lpMaximize(P, Obj) : lpMinimize(P, Obj);
  if (R.Status != LpStatus::Optimal)
    return std::nullopt;
  return WantMax ? R.Value.floor().getInt64() : R.Value.ceil().getInt64();
}

std::optional<int64_t> depDistanceMin(const Dependence &D, unsigned InDim,
                                      unsigned OutDim) {
  return distanceBound(D, InDim, OutDim, /*WantMax=*/false);
}

std::optional<int64_t> depDistanceMax(const Dependence &D, unsigned InDim,
                                      unsigned OutDim) {
  return distanceBound(D, InDim, OutDim, /*WantMax=*/true);
}

} // namespace sched
} // namespace akg
