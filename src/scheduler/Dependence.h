//===- scheduler/Dependence.h - Data dependence analysis --------*- C++ -*-===//
//
// Memory-based dependence analysis over the extracted polyhedral program.
// Each dependence is a convex relation from source iterations to target
// iterations, restricted by both domains and by the original (textual)
// execution order. These relations feed the Pluto-style scheduler's Farkas
// legality constraints and the fusion heuristics.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULER_DEPENDENCE_H
#define AKG_SCHEDULER_DEPENDENCE_H

#include "ir/PolyExtract.h"

namespace akg {
namespace sched {

enum class DepKind { RAW, WAR, WAW };

struct Dependence {
  unsigned Src = 0;
  unsigned Dst = 0;
  DepKind Kind = DepKind::RAW;
  /// Source iterations -> destination iterations (one convex piece; lex
  /// order on self-dependences yields several pieces, hence several
  /// Dependence entries).
  poly::BasicMap Rel;
  bool IsSelf = false;

  const char *kindName() const {
    switch (Kind) {
    case DepKind::RAW:
      return "RAW";
    case DepKind::WAR:
      return "WAR";
    case DepKind::WAW:
      return "WAW";
    }
    return "?";
  }
};

/// Computes all pairwise dependences of the program.
///
/// Statement pairs are analysed independently, fanned out over a thread
/// pool (\p Threads workers; 0 resolves the AKG_THREADS environment
/// variable, unset meaning sequential). The result is deterministic and
/// identical at any thread count: per-pair results are collected into
/// pair-indexed slots and concatenated in the sequential pair order.
std::vector<Dependence> computeDependences(const ir::PolyProgram &P,
                                           unsigned Threads = 0);

/// Minimum / maximum of (dst iterator \p OutDim - src iterator \p InDim)
/// over the dependence relation; nullopt when unbounded.
std::optional<int64_t> depDistanceMin(const Dependence &D, unsigned InDim,
                                      unsigned OutDim);
std::optional<int64_t> depDistanceMax(const Dependence &D, unsigned InDim,
                                      unsigned OutDim);

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULER_DEPENDENCE_H
