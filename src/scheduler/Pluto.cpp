//===- scheduler/Pluto.cpp - Pluto-style affine scheduler -----------------===//

#include "scheduler/Pluto.h"

#include "support/Cancel.h"
#include "support/Matrix.h"
#include "support/Stats.h"
#include "support/Status.h"

#include <cassert>
#include <map>
#include <numeric>
#include <set>

namespace akg {
namespace sched {

using namespace poly;

namespace {

/// Variable layout of the per-cluster scheduling ILP:
///   [ w | c_{s0,0..} c_{s1,0..} ... | d_{s0} d_{s1} ... ]
struct VarLayout {
  std::vector<unsigned> Stmts;             // cluster members
  std::map<unsigned, unsigned> CoeffBase;  // stmt -> first coeff var
  std::map<unsigned, unsigned> ShiftVar;   // stmt -> shift var
  std::map<unsigned, unsigned> Dims;       // stmt -> iterator count
  unsigned NumVars = 0;

  static constexpr unsigned W = 0;

  VarLayout(const ir::PolyProgram &P, const std::vector<unsigned> &Members) {
    Stmts = Members;
    unsigned Next = 1;
    for (unsigned S : Stmts) {
      Dims[S] = P.Stmts[S].numIters();
      CoeffBase[S] = Next;
      Next += Dims[S];
    }
    for (unsigned S : Stmts) {
      ShiftVar[S] = Next;
      ++Next;
    }
    NumVars = Next;
  }

  bool contains(unsigned S) const { return Dims.count(S) != 0; }
};

/// The Farkas constraints of one dependence: either the legality form
/// (Theta_T(j) - Theta_S(i) >= 0 over Rel) or the bounding form
/// (w - (Theta_T(j) - Theta_S(i)) >= 0 over Rel). The multipliers are NOT
/// eliminated; they stay as continuous variables of the mixed-integer
/// master problem (dims: [master vars | lambda0 | lambda_r...]), which
/// avoids the Fourier-Motzkin blowup entirely.
struct FarkasBlock {
  BasicSet F;
  /// Sign knowledge per lambda (lambda0 first): multipliers of equality
  /// rows are free, all others non-negative.
  std::vector<bool> LambdaNonNeg;
};

FarkasBlock farkasConstraints(const Dependence &Dep, const VarLayout &L,
                              bool Bounding) {
  ScopedTimer T("pluto.farkas");
  const BasicMap &Rel = Dep.Rel;
  unsigned NumX = Rel.numCols(); // in + out + divs of the dependence body
  unsigned NumCons = static_cast<unsigned>(Rel.constraints().size());
  // Dims: master vars, then lambda0, then one lambda per constraint.
  std::vector<std::string> DimNames;
  for (unsigned I = 0; I < L.NumVars + 1 + NumCons; ++I)
    DimNames.push_back("v" + std::to_string(I));
  BasicSet F(Space::forSet(DimNames, "farkas"));
  unsigned Lambda0 = L.NumVars;
  auto LambdaVar = [&](unsigned R) { return L.NumVars + 1 + R; };

  // Coefficient of the delta form on dependence column X, as a linear form
  // over master variables: fills Row (master section) in place.
  unsigned SrcCoeff = L.CoeffBase.at(Dep.Src);
  unsigned DstCoeff = L.CoeffBase.at(Dep.Dst);
  unsigned NIn = Rel.space().numIn();
  unsigned NOut = Rel.space().numOut();
  int64_t Sign = Bounding ? -1 : 1;

  // One equality per dependence column: sum_r lambda_r * A_r[x] == coeff of
  // delta on x.
  for (unsigned X = 0; X < NumX; ++X) {
    std::vector<int64_t> Row(F.numCols(), 0);
    for (unsigned R = 0; R < NumCons; ++R)
      Row[LambdaVar(R)] = Rel.constraints()[R].Coeffs[X];
    // Subtract delta coefficient (move to LHS).
    if (X >= Rel.inCol(0) && X < Rel.inCol(0) + NIn)
      Row[SrcCoeff + (X - Rel.inCol(0))] += Sign; // delta has -c_S on i
    else if (NOut > 0 && X >= Rel.outCol(0) && X < Rel.outCol(0) + NOut)
      Row[DstCoeff + (X - Rel.outCol(0))] -= Sign; // delta has +c_T on j
    // div columns carry no delta coefficient.
    F.addEq(Row, 0);
  }
  // Constant: lambda0 + sum_r lambda_r * b_r == delta constant.
  {
    std::vector<int64_t> Row(F.numCols(), 0);
    Row[Lambda0] = 1;
    for (unsigned R = 0; R < NumCons; ++R)
      Row[LambdaVar(R)] = Rel.constraints()[R].Const;
    // delta constant = d_T - d_S (legality) or w - d_T + d_S (bounding).
    Row[L.ShiftVar.at(Dep.Dst)] -= Sign;
    Row[L.ShiftVar.at(Dep.Src)] += Sign;
    if (Bounding)
      Row[VarLayout::W] -= 1;
    F.addEq(Row, 0);
  }
  // lambda0 >= 0 and lambda_r >= 0 for inequality rows (free for
  // equalities).
  {
    std::vector<int64_t> Row(F.numCols(), 0);
    Row[Lambda0] = 1;
    F.addIneq(Row, 0);
  }
  for (unsigned R = 0; R < NumCons; ++R) {
    if (Rel.constraints()[R].IsEq)
      continue;
    std::vector<int64_t> Row(F.numCols(), 0);
    Row[LambdaVar(R)] = 1;
    F.addIneq(Row, 0);
  }
  FarkasBlock Block;
  Block.F = std::move(F);
  Block.LambdaNonNeg.push_back(true); // lambda0
  for (unsigned R = 0; R < NumCons; ++R)
    Block.LambdaNonNeg.push_back(!Rel.constraints()[R].IsEq);
  return Block;
}

/// Evaluates the schedule delta of a dependence for fixed rows:
/// delta(i,j) = RowT(j) - RowS(i); returns (min, max) over the relation.
std::pair<std::optional<int64_t>, std::optional<int64_t>>
deltaRange(const Dependence &Dep, const ScheduleRow &RowS,
           const ScheduleRow &RowT) {
  LpProblem P = Dep.Rel.toLp();
  std::vector<Rational> Obj(P.NumVars);
  unsigned NIn = Dep.Rel.space().numIn();
  unsigned NOut = Dep.Rel.space().numOut();
  for (unsigned K = 0; K < NIn; ++K)
    Obj[Dep.Rel.inCol(K)] -= Rational(RowS.Coeffs[K]);
  for (unsigned K = 0; K < NOut; ++K)
    Obj[Dep.Rel.outCol(K)] += Rational(RowT.Coeffs[K]);
  Rational ConstTerm = Rational(RowT.Const - RowS.Const);
  LpResult Mn = lpMinimize(P, Obj);
  LpResult Mx = lpMaximize(P, Obj);
  std::optional<int64_t> Lo, Hi;
  if (Mn.Status == LpStatus::Optimal)
    Lo = (Mn.Value + ConstTerm).ceil().getInt64();
  if (Mx.Status == LpStatus::Optimal)
    Hi = (Mx.Value + ConstTerm).floor().getInt64();
  return {Lo, Hi};
}

/// Returns integer-scaled rows of the orthogonal complement of the row
/// space of Prev (a RowCount x N matrix of int64 rows).
std::vector<std::vector<int64_t>>
orthoComplement(const std::vector<std::vector<int64_t>> &Prev, unsigned N) {
  if (Prev.empty()) {
    // Full space: identity basis.
    std::vector<std::vector<int64_t>> Id;
    for (unsigned I = 0; I < N; ++I) {
      std::vector<int64_t> Row(N, 0);
      Row[I] = 1;
      Id.push_back(Row);
    }
    return Id;
  }
  Matrix M(static_cast<unsigned>(Prev.size()), N);
  for (unsigned R = 0; R < Prev.size(); ++R)
    for (unsigned C = 0; C < N; ++C)
      M.at(R, C) = Rational(Prev[R][C]);
  Matrix H = M.orthogonalComplement();
  std::vector<std::vector<int64_t>> Rows;
  for (unsigned R = 0; R < H.rows(); ++R) {
    // Scale to integers.
    Int128 Lcm = 1;
    for (unsigned C = 0; C < N; ++C) {
      Int128 D = H.at(R, C).den();
      Lcm = Lcm / gcd128(Lcm, D) * D;
    }
    std::vector<int64_t> Row(N);
    for (unsigned C = 0; C < N; ++C) {
      Rational V = H.at(R, C) * Rational(Lcm, 1);
      Row[C] = V.getInt64();
    }
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

/// Completes a statement's outer rows to full rank with identity rows.
std::vector<ScheduleRow>
identityCompletion(const std::vector<std::vector<int64_t>> &OuterRows,
                   unsigned N) {
  std::vector<std::vector<int64_t>> Have = OuterRows;
  std::vector<ScheduleRow> Extra;
  auto RankOf = [&](const std::vector<std::vector<int64_t>> &Rows) {
    if (Rows.empty())
      return 0u;
    Matrix M(static_cast<unsigned>(Rows.size()), N);
    for (unsigned R = 0; R < Rows.size(); ++R)
      for (unsigned C = 0; C < N; ++C)
        M.at(R, C) = Rational(Rows[R][C]);
    return M.rank();
  };
  unsigned Rank = RankOf(Have);
  for (unsigned D = 0; D < N && Rank < N; ++D) {
    std::vector<int64_t> Unit(N, 0);
    Unit[D] = 1;
    Have.push_back(Unit);
    unsigned NewRank = RankOf(Have);
    if (NewRank > Rank) {
      Rank = NewRank;
      ScheduleRow Row;
      Row.Coeffs = Unit;
      Extra.push_back(std::move(Row));
    } else {
      Have.pop_back();
    }
  }
  return Extra;
}

/// Schedules one cluster with the Pluto ILP. Returns false when the ILP is
/// infeasible (caller falls back).
bool scheduleCluster(const ir::PolyProgram &P,
                     const std::vector<Dependence> &Deps,
                     const SchedulerOptions &Opts, ClusterSchedule &CS) {
  VarLayout L(P, CS.Stmts);
  // Dependences internal to the cluster.
  std::vector<const Dependence *> Internal;
  for (const Dependence &D : Deps)
    if (L.contains(D.Src) && L.contains(D.Dst))
      Internal.push_back(&D);

  // Farkas constraint cache per dependence (legality + bounding).
  std::vector<FarkasBlock> LegalSets, BoundSets;
  for (const Dependence *D : Internal) {
    LegalSets.push_back(farkasConstraints(*D, L, /*Bounding=*/false));
    if (Opts.UseBoundingFunction)
      BoundSets.push_back(farkasConstraints(*D, L, /*Bounding=*/true));
  }

  unsigned OuterWidth = P.Stmts[CS.Stmts[0]].numIters();
  for (unsigned S : CS.Stmts)
    OuterWidth = std::min(OuterWidth, P.Stmts[S].numIters());

  std::vector<bool> Satisfied(Internal.size(), false);
  std::map<unsigned, std::vector<std::vector<int64_t>>> PrevRows;
  for (unsigned S : CS.Stmts) {
    CS.Outer[S] = StmtSchedule{};
    PrevRows[S] = {};
  }

  for (unsigned RowIdx = 0; RowIdx < OuterWidth; ++RowIdx) {
    // One master-LP row per iteration can run for seconds on adversarial
    // clusters; this is one of the three instrumented long-running loops
    // (support/Cancel.h). The pass wrapper attributes the throw to
    // "schedule".
    cancel::checkPoint();
    // Fast path: the identity hyperplane (row = iterator RowIdx, no
    // shift) is what the lexmin ILP returns for pointwise clusters; try
    // it first and only fall back to the ILP when it is illegal or
    // linearly dependent. This keeps large fused elementwise chains out
    // of the solver entirely.
    {
      std::map<unsigned, ScheduleRow> Cand;
      bool Ok = true;
      for (unsigned S : CS.Stmts) {
        ScheduleRow Row;
        Row.Coeffs.assign(L.Dims[S], 0);
        Row.Coeffs[RowIdx] = 1;
        Cand[S] = Row;
        // Linear independence with previous rows.
        auto Have = PrevRows[S];
        Matrix Mx(0, L.Dims[S]);
        for (const auto &R2 : Have) {
          std::vector<Rational> RR(L.Dims[S]);
          for (unsigned C = 0; C < L.Dims[S]; ++C)
            RR[C] = Rational(R2[C]);
          Mx.addRow(RR);
        }
        unsigned OldRank = Mx.rows() ? Mx.rank() : 0;
        std::vector<Rational> RR(L.Dims[S]);
        RR[RowIdx] = Rational(1);
        Mx.addRow(RR);
        if (Mx.rank() == OldRank)
          Ok = false;
      }
      for (unsigned DI = 0; DI < Internal.size() && Ok; ++DI) {
        if (Satisfied[DI])
          continue;
        auto [Lo, Hi] = deltaRange(*Internal[DI],
                                   Cand[Internal[DI]->Src],
                                   Cand[Internal[DI]->Dst]);
        (void)Hi;
        if (!Lo || *Lo < 0)
          Ok = false;
      }
      if (Ok) {
        bool Coincident = true;
        for (unsigned DI = 0; DI < Internal.size(); ++DI) {
          if (Satisfied[DI])
            continue;
          auto [Lo, Hi] = deltaRange(*Internal[DI],
                                     Cand[Internal[DI]->Src],
                                     Cand[Internal[DI]->Dst]);
          if (!Lo || !Hi || *Lo != 0 || *Hi != 0)
            Coincident = false;
          if (Lo && *Lo >= 1)
            Satisfied[DI] = true;
        }
        for (unsigned S : CS.Stmts) {
          PrevRows[S].push_back(Cand[S].Coeffs);
          CS.Outer[S].Rows.push_back(Cand[S]);
        }
        CS.Coincident.push_back(Coincident);
        continue;
      }
    }
    // Assemble the mixed-integer master problem for this row: integer
    // schedule variables followed by one continuous lambda block per
    // active dependence form.
    struct BlockRef {
      const FarkasBlock *B;
      unsigned Offset;
    };
    std::vector<BlockRef> Blocks;
    unsigned NumVars = L.NumVars;
    for (unsigned DI = 0; DI < Internal.size(); ++DI) {
      if (Satisfied[DI])
        continue;
      Blocks.push_back({&LegalSets[DI], NumVars});
      NumVars += static_cast<unsigned>(LegalSets[DI].LambdaNonNeg.size());
      if (Opts.UseBoundingFunction) {
        Blocks.push_back({&BoundSets[DI], NumVars});
        NumVars += static_cast<unsigned>(BoundSets[DI].LambdaNonNeg.size());
      }
    }
    LpProblem MasterLp;
    MasterLp.NumVars = NumVars;
    MasterLp.NonNeg.assign(NumVars, true);
    MasterLp.Integer.assign(NumVars, false);
    for (unsigned I = 0; I < L.NumVars; ++I)
      MasterLp.Integer[I] = true;
    for (const BlockRef &BR : Blocks)
      for (unsigned J = 0; J < BR.B->LambdaNonNeg.size(); ++J)
        MasterLp.NonNeg[BR.Offset + J] = BR.B->LambdaNonNeg[J];

    // Farkas elimination emits many textually identical rows (one per
    // dependence form sharing a face); dedup them before they reach the
    // master ILP. Key: canonical (merged, zero-free) terms + Const + kind.
    std::set<std::vector<int64_t>> SeenCons;
    auto AddCon = [&](const std::vector<std::pair<unsigned, int64_t>> &Terms,
                      int64_t Const, bool IsEq) {
      std::map<unsigned, int64_t> Merged;
      for (const auto &[V, C] : Terms)
        Merged[V] += C;
      std::vector<int64_t> Key;
      Key.reserve(2 * Merged.size() + 2);
      Key.push_back(IsEq ? 1 : 0);
      Key.push_back(Const);
      for (const auto &[V, C] : Merged)
        if (C != 0) {
          Key.push_back(static_cast<int64_t>(V));
          Key.push_back(C);
        }
      if (!SeenCons.insert(std::move(Key)).second) {
        Stats::get().add("pluto.master_dedup");
        return;
      }
      std::vector<Rational> Row(NumVars);
      for (const auto &[V, C] : Terms)
        Row[V] += Rational(C);
      if (IsEq)
        MasterLp.addEq(std::move(Row), Rational(Const));
      else
        MasterLp.addIneq(std::move(Row), Rational(Const));
    };
    for (unsigned S : CS.Stmts) {
      unsigned N = L.Dims[S];
      for (unsigned K = 0; K < N; ++K)
        AddCon({{L.CoeffBase[S] + K, -1}},
               Opts.AllowSkew ? Opts.CoeffBound : 1, false); // c <= bound
      AddCon({{L.ShiftVar[S], -1}},
             Opts.AllowShift ? Opts.ShiftBound : 0, false);
      // Non-triviality: sum of coeffs >= 1 (== 1 when skewing is off).
      std::vector<std::pair<unsigned, int64_t>> Sum;
      for (unsigned K = 0; K < N; ++K)
        Sum.emplace_back(L.CoeffBase[S] + K, 1);
      AddCon(Sum, -1, !Opts.AllowSkew);
      // Linear independence from previous rows.
      auto H = orthoComplement(PrevRows[S], N);
      assert(!H.empty() && "statement rank exhausted before band end");
      std::vector<std::pair<unsigned, int64_t>> HSum;
      for (const auto &HRow : H) {
        std::vector<std::pair<unsigned, int64_t>> Con;
        for (unsigned K = 0; K < N; ++K)
          if (HRow[K] != 0) {
            Con.emplace_back(L.CoeffBase[S] + K, HRow[K]);
            HSum.emplace_back(L.CoeffBase[S] + K, HRow[K]);
          }
        AddCon(Con, 0, false); // H_q . c >= 0
      }
      AddCon(HSum, -1, false); // sum_q H_q . c >= 1
    }
    // Dependence (Farkas) constraints, lambda columns relocated per block.
    for (const BlockRef &BR : Blocks) {
      for (const Constraint &C : BR.B->F.constraints()) {
        std::vector<std::pair<unsigned, int64_t>> Terms;
        for (unsigned I = 0; I < C.Coeffs.size(); ++I) {
          if (C.Coeffs[I] == 0)
            continue;
          unsigned V = I < L.NumVars ? I : BR.Offset + (I - L.NumVars);
          Terms.emplace_back(V, C.Coeffs[I]);
        }
        AddCon(Terms, C.Const, C.IsEq);
      }
    }
    // Lexicographic objective: w first, then per-statement coefficients
    // biased towards the identity (later dims minimized first), then
    // shifts.
    std::vector<unsigned> Order;
    Order.push_back(VarLayout::W);
    for (unsigned S : CS.Stmts)
      for (unsigned K = L.Dims[S]; K-- > 0;)
        Order.push_back(L.CoeffBase[S] + K);
    for (unsigned S : CS.Stmts)
      Order.push_back(L.ShiftVar[S]);
    IlpOptions IO;
    if (Opts.IlpNodeBudget > 0)
      IO.NodeLimit = static_cast<unsigned>(Opts.IlpNodeBudget);
    LpResult R = [&]{ ScopedTimer T("pluto.lexmin"); return ilpLexMin(MasterLp, Order, IO); }();
    if (R.Status != LpStatus::Optimal)
      return false;

    // Extract the row per statement.
    std::map<unsigned, ScheduleRow> RowOf;
    for (unsigned S : CS.Stmts) {
      ScheduleRow Row;
      Row.Coeffs.resize(L.Dims[S]);
      for (unsigned K = 0; K < L.Dims[S]; ++K)
        Row.Coeffs[K] = R.Point[L.CoeffBase[S] + K].getInt64();
      Row.Const = R.Point[L.ShiftVar[S]].getInt64();
      RowOf[S] = Row;
      PrevRows[S].push_back(Row.Coeffs);
      CS.Outer[S].Rows.push_back(Row);
    }
    // Coincidence: every dependence unsatisfied at row start has delta == 0.
    bool Coincident = true;
    for (unsigned DI = 0; DI < Internal.size(); ++DI) {
      if (Satisfied[DI])
        continue;
      auto [Lo, Hi] = deltaRange(*Internal[DI], RowOf[Internal[DI]->Src],
                                 RowOf[Internal[DI]->Dst]);
      if (!Lo || !Hi || *Lo != 0 || *Hi != 0)
        Coincident = false;
      // Strong satisfaction: delta >= 1 everywhere.
      if (Lo && *Lo >= 1)
        Satisfied[DI] = true;
    }
    CS.Coincident.push_back(Coincident);
  }

  // Per-statement completion below the shared band.
  for (unsigned S : CS.Stmts) {
    unsigned N = L.Dims[S];
    std::vector<ScheduleRow> Extra = identityCompletion(PrevRows[S], N);
    if (!Extra.empty())
      CS.Inner[S] = StmtSchedule{Extra};
  }
  return true;
}

} // namespace

bool verifyClusterLegality(const ir::PolyProgram &P,
                           const std::vector<Dependence> &Deps,
                           const ClusterSchedule &CS) {
  std::map<unsigned, std::vector<ScheduleRow>> Full;
  for (unsigned S : CS.Stmts) {
    Full[S] = CS.Outer.at(S).Rows;
    auto It = CS.Inner.find(S);
    if (It != CS.Inner.end())
      for (const ScheduleRow &R : It->second.Rows)
        Full[S].push_back(R);
  }
  for (const Dependence &D : Deps) {
    if (!Full.count(D.Src) || !Full.count(D.Dst))
      continue;
    // Walk rows lexicographically; a dependence must not become negative
    // before it is strictly satisfied.
    BasicMap Rel = D.Rel;
    unsigned Rows = std::min(Full[D.Src].size(), Full[D.Dst].size());
    bool Done = false;
    for (unsigned R = 0; R < Rows && !Done; ++R) {
      Dependence Tmp = D;
      Tmp.Rel = Rel;
      auto [Lo, Hi] = deltaRange(Tmp, Full[D.Src][R], Full[D.Dst][R]);
      (void)Hi;
      if (!Lo || *Lo < 0)
        return false;
      if (*Lo >= 1) {
        Done = true;
        break;
      }
      // Restrict to delta == 0 and continue to the next row.
      const ScheduleRow &RS = Full[D.Src][R];
      const ScheduleRow &RT = Full[D.Dst][R];
      std::vector<int64_t> Eq(Rel.numCols(), 0);
      for (unsigned K = 0; K < Rel.space().numIn(); ++K)
        Eq[Rel.inCol(K)] -= RS.Coeffs[K];
      for (unsigned K = 0; K < Rel.space().numOut(); ++K)
        Eq[Rel.outCol(K)] += RT.Coeffs[K];
      Rel.addEq(Eq, RT.Const - RS.Const);
      if (Rel.isEmpty()) {
        Done = true;
        break;
      }
    }
    if (!Done && D.Src == D.Dst && !Rel.isEmpty())
      return false; // self dependence never separated
  }
  return true;
}

ScheduleResult computeSchedule(const ir::PolyProgram &P,
                               const std::vector<Dependence> &Deps,
                               const SchedulerOptions &Opts) {
  Clustering C = clusterStatements(P, Deps, Opts.Fusion);
  Deadline DL(Opts.DeadlineSeconds);
  ScheduleResult R;
  for (const auto &Group : C.Groups) {
    ClusterSchedule CS;
    CS.Stmts = Group;
    bool TryIlp = !Opts.ForceFallback && !DL.expired();
    if (!TryIlp)
      Stats::get().add("pluto.skipped_cluster");
    if (TryIlp && scheduleCluster(P, Deps, Opts, CS)) {
      R.Clusters.push_back(std::move(CS));
      continue;
    }
    // Fall back: split the cluster into singleton identity schedules (the
    // role of the Feautrier fall-back in isl: always-legal sequential
    // schedules).
    for (unsigned S : Group) {
      ClusterSchedule Single;
      Single.Stmts = {S};
      Single.UsedFallback = true;
      unsigned N = P.Stmts[S].numIters();
      Single.Outer[S] = identitySchedule(N);
      Single.Coincident.assign(N, false);
      R.Clusters.push_back(std::move(Single));
    }
  }
  return R;
}

ScheduleTree buildInitialTree(const ir::PolyProgram &P) {
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Seq = Root->addChild(makeSequence());
  for (unsigned S = 0; S < P.Stmts.size(); ++S) {
    const ir::PolyStmt &St = P.Stmts[S];
    if (St.StmtRole == ir::PolyStmt::Role::Init) {
      // Pair init with the following update: shared outer band on the
      // output axes, then a sequence splitting init from the reduction
      // loops (Fig 3b).
      assert(S + 1 < P.Stmts.size() &&
             P.Stmts[S + 1].StmtRole == ir::PolyStmt::Role::Update &&
             "init statement without update");
      const ir::PolyStmt &Upd = P.Stmts[S + 1];
      unsigned NOut = St.numIters();
      TreeNode *F = Seq->addChild(makeFilter({S, S + 1}));
      std::map<unsigned, StmtSchedule> Part;
      Part[S] = identitySchedule(NOut);
      StmtSchedule UpdOuter;
      for (unsigned K = 0; K < NOut; ++K) {
        ScheduleRow Row;
        Row.Coeffs.assign(Upd.numIters(), 0);
        Row.Coeffs[K] = 1;
        UpdOuter.Rows.push_back(Row);
      }
      Part[S + 1] = UpdOuter;
      TreeNode *B = F->addChild(makeBand(std::move(Part), true));
      TreeNode *Inner = B->addChild(makeSequence());
      Inner->addChild(makeFilter({S}));
      TreeNode *FU = Inner->addChild(makeFilter({S + 1}));
      std::map<unsigned, StmtSchedule> RedPart;
      StmtSchedule Red;
      for (unsigned K = NOut; K < Upd.numIters(); ++K) {
        ScheduleRow Row;
        Row.Coeffs.assign(Upd.numIters(), 0);
        Row.Coeffs[K] = 1;
        Red.Rows.push_back(Row);
      }
      RedPart[S + 1] = Red;
      FU->addChild(makeBand(std::move(RedPart), true));
      ++S; // consume the update
      continue;
    }
    TreeNode *F = Seq->addChild(makeFilter({S}));
    std::map<unsigned, StmtSchedule> Part;
    Part[S] = identitySchedule(St.numIters());
    F->addChild(makeBand(std::move(Part), true));
  }
  T.setRoot(std::move(Root));
  return T;
}

ScheduleTree buildScheduledTree(const ir::PolyProgram &P,
                                const ScheduleResult &R) {
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Parent = Root.get();
  TreeNode *Seq = nullptr;
  if (R.Clusters.size() > 1)
    Seq = Parent->addChild(makeSequence());
  for (const ClusterSchedule &CS : R.Clusters) {
    TreeNode *Attach = Seq ? Seq->addChild(makeFilter(CS.Stmts)) : Parent;
    if (Seq == nullptr && R.Clusters.size() == 1 && CS.Stmts.size() > 1)
      Attach = Parent->addChild(makeFilter(CS.Stmts));
    TreeNode *Band =
        Attach->addChild(makeBand(CS.Outer, true, CS.Coincident));
    // Intra-cluster order and per-statement completions.
    bool AnyInner = !CS.Inner.empty();
    if (CS.Stmts.size() > 1) {
      TreeNode *InnerSeq = Band->addChild(makeSequence());
      for (unsigned S : CS.Stmts) {
        TreeNode *F = InnerSeq->addChild(makeFilter({S}));
        auto It = CS.Inner.find(S);
        if (It != CS.Inner.end()) {
          std::map<unsigned, StmtSchedule> Part;
          Part[S] = It->second;
          F->addChild(makeBand(std::move(Part), true));
        }
      }
    } else if (AnyInner) {
      unsigned S = CS.Stmts[0];
      auto It = CS.Inner.find(S);
      if (It != CS.Inner.end()) {
        std::map<unsigned, StmtSchedule> Part;
        Part[S] = It->second;
        Band->addChild(makeBand(std::move(Part), true));
      }
    }
  }
  T.setRoot(std::move(Root));
  return T;
}

} // namespace sched
} // namespace akg
