//===- scheduler/Pluto.h - Pluto-style affine scheduler ---------*- C++ -*-===//
//
// The versatile polyhedral scheduler of Sec 4.1: computes per-statement
// affine schedules by solving ILP problems built from Farkas-lemma legality
// and bounding constraints, exactly in the style of the Pluto algorithm that
// isl's scheduler (and therefore AKG) uses as its primary strategy. A
// bounded fallback handles infeasible clusters by splitting them (the role
// Feautrier's algorithm plays as isl's fall-back).
//
// Scheduling options (enable/disable skewing and shifting, coefficient
// bounds, fusion heuristic) mirror the paper's tunable scheduling process.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULER_PLUTO_H
#define AKG_SCHEDULER_PLUTO_H

#include "schedule/ScheduleTree.h"
#include "scheduler/Cluster.h"

namespace akg {
namespace sched {

struct SchedulerOptions {
  FusionStrategy Fusion = FusionStrategy::Conservative;
  bool AllowSkew = true;
  bool AllowShift = true;
  int64_t CoeffBound = 3;   // bound on hyperplane coefficients
  int64_t ShiftBound = 1024; // bound on constant shifts
  /// Adds the Pluto bounding-function constraints (minimize the dependence
  /// distance bound w). With bounded coefficients and lexmin-minimized
  /// shifts the bound is usually redundant, so it defaults to off; this is
  /// one of the "fine-tuned scheduling options" the paper uses to keep ILP
  /// time down (Sec 8).
  bool UseBoundingFunction = false;
  /// Branch-and-bound node budget per scheduling ILP; 0 = solver default.
  /// Exhausting it degrades the cluster to its identity fallback instead
  /// of failing the compile.
  int64_t IlpNodeBudget = 0;
  /// Wall-clock budget for the whole scheduling pass; 0 = unlimited. Once
  /// expired, remaining clusters take the identity fallback.
  double DeadlineSeconds = 0;
  /// Fault injection / ablation: skip the ILP entirely and use the identity
  /// fallback for every cluster.
  bool ForceFallback = false;
};

/// The computed schedule of one fusion cluster.
struct ClusterSchedule {
  std::vector<unsigned> Stmts;
  /// Shared outer band rows (same count for every member).
  std::map<unsigned, StmtSchedule> Outer;
  /// Per-statement completion rows below the shared band (reduction dims
  /// etc.); empty when the statement's rank is already complete.
  std::map<unsigned, StmtSchedule> Inner;
  std::vector<bool> Coincident; // per outer row
  bool Permutable = true;
  /// True when the ILP path failed and identity schedules were used.
  bool UsedFallback = false;
};

struct ScheduleResult {
  std::vector<ClusterSchedule> Clusters;
};

/// Runs clustering + per-cluster Pluto scheduling.
ScheduleResult computeSchedule(const ir::PolyProgram &P,
                               const std::vector<Dependence> &Deps,
                               const SchedulerOptions &Opts);

/// Builds the initial schedule tree in textual order (the paper's Fig 3b).
ScheduleTree buildInitialTree(const ir::PolyProgram &P);

/// Builds the scheduled tree (the paper's Fig 3c): Domain -> Sequence of
/// cluster Filters, each with its shared Band and per-statement inner
/// bands.
ScheduleTree buildScheduledTree(const ir::PolyProgram &P,
                                const ScheduleResult &R);

/// Checks that a cluster's schedule respects every dependence between its
/// members (min delta >= 0 per dependence at the first distinguishing row).
/// Used by tests and by the fallback verifier.
bool verifyClusterLegality(const ir::PolyProgram &P,
                           const std::vector<Dependence> &Deps,
                           const ClusterSchedule &CS);

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULER_PLUTO_H
