//===- scheduler/ShapeDep.cpp - Shape-dependence probe --------------------===//

#include "scheduler/ShapeDep.h"

#include "scheduler/Dependence.h"
#include "support/Stats.h"

#include <sstream>

namespace akg {
namespace sched {

namespace {

/// One entry of the structural dependence signature.
struct SigEntry {
  unsigned Src = 0;
  unsigned Dst = 0;
  DepKind Kind = DepKind::RAW;
  bool IsSelf = false;

  bool operator==(const SigEntry &O) const {
    return Src == O.Src && Dst == O.Dst && Kind == O.Kind &&
           IsSelf == O.IsSelf;
  }
};

std::string entryStr(const SigEntry &E) {
  std::ostringstream OS;
  OS << "S" << E.Src << "->S" << E.Dst << " "
     << Dependence{E.Src, E.Dst, E.Kind}.kindName()
     << (E.IsSelf ? " (self)" : "");
  return OS.str();
}

/// Dependence signature of the parametric program with every parameter
/// fixed at either its bucket Lo (\p AtLo) or its bucket Hi. Specializes
/// copies of the statement domains; access relations carry zero parameter
/// coefficients, so only the domains need pinning.
std::vector<SigEntry> signatureAt(const ir::PolyProgram &P,
                                  const std::vector<ir::SymExtentRange> &R,
                                  bool AtLo) {
  ir::PolyProgram Spec = P;
  for (ir::PolyStmt &S : Spec.Stmts)
    for (unsigned I = 0; I < R.size(); ++I)
      S.Domain.fixParam(I, AtLo ? R[I].Lo : R[I].Hi);
  std::vector<Dependence> Deps = computeDependences(Spec, /*Threads=*/1);
  std::vector<SigEntry> Sig;
  for (const Dependence &D : Deps)
    Sig.push_back({D.Src, D.Dst, D.Kind, D.IsSelf});
  return Sig;
}

} // namespace

std::string probeShapeDependence(
    const ir::Module &M,
    const std::map<std::string, ir::SymExtentRange> &SymRanges) {
  ir::PolyProgram P = ir::extractPolyProgramParametric(M, SymRanges);
  // Param order matches extractPolyProgramParametric (sorted map order).
  std::vector<ir::SymExtentRange> Ranges;
  std::vector<std::string> Names;
  for (const auto &[Sym, R] : SymRanges) {
    Names.push_back(Sym);
    Ranges.push_back(R);
  }
  std::vector<SigEntry> AtLo = signatureAt(P, Ranges, /*AtLo=*/true);
  std::vector<SigEntry> AtHi = signatureAt(P, Ranges, /*AtLo=*/false);
  if (AtLo == AtHi) {
    Stats::get().add("dynshape.probe_invariant");
    return "";
  }
  Stats::get().add("dynshape.probe_divergent");
  // Name the first divergence for the fallback trace.
  unsigned N = std::min(AtLo.size(), AtHi.size());
  for (unsigned I = 0; I < N; ++I)
    if (!(AtLo[I] == AtHi[I]))
      return "dependence structure diverges across bucket: " +
             entryStr(AtLo[I]) + " at min vs " + entryStr(AtHi[I]) +
             " at max";
  std::ostringstream OS;
  OS << "dependence count diverges across bucket: " << AtLo.size()
     << " at min vs " << AtHi.size() << " at max";
  return OS.str();
}

} // namespace sched
} // namespace akg
