//===- scheduler/ShapeDep.h - Shape-dependence probe ------------*- C++ -*-===//
//
// Decides whether a dynamic-shaped module's dependence structure is
// invariant across a shape bucket (DESIGN.md 4k). The probe extracts ONE
// parametric polyhedral program (shape symbols as parameter columns in
// every domain), specializes it at both bucket boundaries with
// BasicSet::fixParam, and compares the dependence signatures. If the
// structure differs anywhere in the bucket's corner extents, the skeleton
// compiled at the bucket representative may have a schedule that is only
// legal for some extents -- the caller must fall back to per-shape
// compilation. Invariance at both corners is what makes the one-skeleton-
// per-bucket reuse sound for the pointwise-in-dynamic-axes class, whose
// dependence existence is monotone in each extent.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SCHEDULER_SHAPEDEP_H
#define AKG_SCHEDULER_SHAPEDEP_H

#include "ir/PolyExtract.h"

#include <map>
#include <string>

namespace akg {
namespace sched {

/// Probes dependence-structure invariance of \p M over the per-symbol
/// extent ranges \p SymRanges (the bucket each bound symbol landed in).
/// Returns "" when the dependence signature -- the ordered list of
/// (Src, Dst, Kind, IsSelf) entries -- is identical with every symbol
/// fixed at its bucket minimum and at its bucket maximum; otherwise a
/// diagnostic naming the first divergence. Runs single-threaded (the
/// probe is a warm-path admission check, not a compile).
std::string
probeShapeDependence(const ir::Module &M,
                     const std::map<std::string, ir::SymExtentRange> &SymRanges);

} // namespace sched
} // namespace akg

#endif // AKG_SCHEDULER_SHAPEDEP_H
