//===- sim/Compare.cpp - Functional comparison plumbing -------------------===//

#include "sim/Compare.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace akg {
namespace sim {

std::string FunctionalDiff::str() const {
  if (MissingOutput)
    return "output '" + Missing + "' missing or short";
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "max abs err %.3g", MaxAbsErr);
  std::string S = Buf;
  if (!WorstTensor.empty())
    S += " at " + WorstTensor + "[" + std::to_string(WorstIndex) + "]";
  return S;
}

ir::BufferMap makeModuleInputs(const ir::Module &M, uint32_t Seed) {
  ir::BufferMap In;
  for (const ir::Tensor &T : M.inputs())
    In[T->Name] = ir::makeTestData(
        T->numElements(), Seed + static_cast<uint32_t>(T->numElements()));
  return In;
}

FunctionalDiff compareOutputs(const ir::Module &M, const ir::BufferMap &Got,
                              const ir::BufferMap &Ref) {
  FunctionalDiff D;
  for (const ir::Tensor &O : M.outputs()) {
    auto GIt = Got.find(O->Name);
    auto RIt = Ref.find(O->Name);
    if (GIt == Got.end() || RIt == Ref.end() ||
        GIt->second.size() < RIt->second.size()) {
      D.MissingOutput = true;
      D.Missing = O->Name;
      D.MaxAbsErr = std::numeric_limits<double>::infinity();
      return D;
    }
    if (D.WorstTensor.empty() && !RIt->second.empty()) {
      D.WorstTensor = O->Name;
      D.WorstIndex = 0;
    }
    for (size_t I = 0; I < RIt->second.size(); ++I) {
      double E = std::fabs(double(GIt->second[I]) - double(RIt->second[I]));
      if (E > D.MaxAbsErr) {
        D.MaxAbsErr = E;
        D.WorstTensor = O->Name;
        D.WorstIndex = static_cast<int64_t>(I);
      }
    }
  }
  return D;
}

uint64_t hashOutputBits(const ir::Module &M, const ir::BufferMap &Got) {
  uint64_t H = 1469598103934665603ull; // FNV offset basis
  auto Mix = [&H](const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 1099511628211ull;
    }
  };
  for (const ir::Tensor &O : M.outputs()) {
    auto It = Got.find(O->Name);
    if (It == Got.end()) {
      Mix(O->Name.data(), O->Name.size()); // deterministic "missing" mark
      continue;
    }
    for (float V : It->second) {
      uint32_t Bits;
      std::memcpy(&Bits, &V, sizeof Bits);
      Mix(&Bits, sizeof Bits);
    }
  }
  return H;
}

FunctionalDiff diffKernelAgainstReference(const cce::Kernel &K,
                                          const ir::Module &M,
                                          const MachineSpec &Spec,
                                          uint32_t Seed, SimResult *SimOut,
                                          uint64_t *BitsOut) {
  ir::BufferMap In = makeModuleInputs(M, Seed);
  ir::BufferMap Ref = ir::evaluateModule(M, In);
  ir::BufferMap Got = In;
  SimOptions SO;
  SO.Functional = true;
  SimResult SR = simulate(K, Spec, &Got, SO);
  if (SimOut)
    *SimOut = SR;
  if (BitsOut)
    *BitsOut = hashOutputBits(M, Got);
  if (SR.Truncated) {
    FunctionalDiff D;
    D.MissingOutput = true;
    D.Missing = "<truncated at " + std::to_string(SR.DynamicInstrs) +
                " dynamic instrs>";
    D.MaxAbsErr = std::numeric_limits<double>::infinity();
    return D;
  }
  return compareOutputs(M, Got, Ref);
}

} // namespace sim
} // namespace akg
