//===- sim/Compare.h - Functional comparison plumbing -----------*- C++ -*-===//
//
// Shared helpers for differential checks between a kernel's functional
// simulation and the DSL reference evaluator: deterministic input
// generation, structured output diffing (worst tensor/element, missing
// outputs reported instead of crashing), and bit-exact output hashing so
// determinism sweeps (1 vs N compile threads, cold vs warm cache) can
// require bit-for-bit identical results. Used by akg::verifyKernel, the
// verify oracle, and the akg-fuzz driver.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_COMPARE_H
#define AKG_SIM_COMPARE_H

#include "sim/Simulator.h"

namespace akg {
namespace sim {

/// Structured result of comparing simulated outputs against the reference.
struct FunctionalDiff {
  double MaxAbsErr = 0;
  std::string WorstTensor; // output with the largest error
  int64_t WorstIndex = -1; // flat element index of the largest error
  /// An output tensor the kernel never materialized (e.g. a dropped store);
  /// MaxAbsErr is then infinity and Missing names the tensor.
  bool MissingOutput = false;
  std::string Missing;

  bool within(double Tol) const { return !MissingOutput && MaxAbsErr <= Tol; }
  std::string str() const;
};

/// Deterministic pseudo-random input buffers for every placeholder of \p M
/// (the same scheme verifyKernel has always used: seed + element count).
ir::BufferMap makeModuleInputs(const ir::Module &M, uint32_t Seed = 1);

/// Compares \p Got against \p Ref over the outputs of \p M. Missing or
/// short buffers are reported via MissingOutput rather than asserting, so
/// the oracle can flag a miscompiled kernel that dropped a store.
FunctionalDiff compareOutputs(const ir::Module &M, const ir::BufferMap &Got,
                              const ir::BufferMap &Ref);

/// FNV-1a over the raw bit patterns of every output buffer of \p M in
/// output order. Two runs that produce bit-identical outputs hash equal;
/// a missing output perturbs the hash deterministically.
uint64_t hashOutputBits(const ir::Module &M, const ir::BufferMap &Got);

/// Runs \p K functionally on inputs seeded with \p Seed and diffs against
/// ir::evaluateModule. \p SimOut, when non-null, receives the simulation
/// result (cycles, Truncated, ...); a truncated run is reported as a diff
/// with MissingOutput set since its outputs are not trustworthy.
FunctionalDiff diffKernelAgainstReference(const cce::Kernel &K,
                                          const ir::Module &M,
                                          const MachineSpec &Spec,
                                          uint32_t Seed = 1,
                                          SimResult *SimOut = nullptr,
                                          uint64_t *BitsOut = nullptr);

} // namespace sim
} // namespace akg

#endif // AKG_SIM_COMPARE_H
