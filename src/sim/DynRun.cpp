//===- sim/DynRun.cpp - Late-bound execution of bucketed kernels ----------===//

#include "sim/DynRun.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace akg {
namespace sim {

namespace {

/// Copies the box min(SrcShape, DstShape) from \p Src (laid out per
/// SrcShape) into a DstShape-sized buffer; elements outside the box are
/// zero. Handles both padding (Dst >= Src) and slicing (Dst <= Src).
std::vector<float> copyBox(const std::vector<float> &Src,
                           const std::vector<int64_t> &SrcShape,
                           const std::vector<int64_t> &DstShape) {
  assert(SrcShape.size() == DstShape.size() && "rank mismatch");
  int64_t DstN = 1;
  for (int64_t S : DstShape)
    DstN *= S;
  std::vector<float> Dst(static_cast<size_t>(DstN), 0.0f);
  unsigned Rank = static_cast<unsigned>(SrcShape.size());
  if (Rank == 0) {
    if (!Src.empty() && !Dst.empty())
      Dst[0] = Src[0];
    return Dst;
  }
  std::vector<int64_t> Box(Rank), SrcStride(Rank), DstStride(Rank);
  for (unsigned D = 0; D < Rank; ++D)
    Box[D] = std::min(SrcShape[D], DstShape[D]);
  SrcStride[Rank - 1] = DstStride[Rank - 1] = 1;
  for (unsigned D = Rank - 1; D > 0; --D) {
    SrcStride[D - 1] = SrcStride[D] * SrcShape[D];
    DstStride[D - 1] = DstStride[D] * DstShape[D];
  }
  std::vector<int64_t> Co(Rank, 0);
  for (;;) {
    int64_t SI = 0, DI = 0;
    for (unsigned D = 0; D + 1 < Rank; ++D) {
      SI += Co[D] * SrcStride[D];
      DI += Co[D] * DstStride[D];
    }
    // Innermost dim is contiguous in both layouts.
    int64_t Run = Box[Rank - 1];
    for (int64_t I = 0; I < Run; ++I)
      Dst[static_cast<size_t>(DI + I)] = Src[static_cast<size_t>(SI + I)];
    // Advance the outer coordinates odometer-style.
    int D = static_cast<int>(Rank) - 2;
    while (D >= 0 && ++Co[D] == Box[D])
      Co[D--] = 0;
    if (D < 0)
      break;
  }
  return Dst;
}

/// The representative-padded shape of \p T under \p B (request shape with
/// every marked dim replaced by its bucket representative).
std::vector<int64_t> repShape(const ir::Tensor &T, const ShapeBinding &B) {
  std::vector<int64_t> Shape = T->Shape;
  auto It = B.TensorSyms.find(T->Name);
  if (It == B.TensorSyms.end())
    return Shape;
  for (const auto &[Dim, Sym] : It->second) {
    auto RIt = B.Representative.find(Sym);
    assert(RIt != B.Representative.end() && "unbound shape symbol");
    if (Dim < Shape.size())
      Shape[Dim] = RIt->second;
  }
  return Shape;
}

} // namespace

SimResult runBound(const CompileResult &R, const ir::Module &RequestM,
                   const MachineSpec &Spec, ir::BufferMap *Gm,
                   const SimOptions &Opts) {
  if (!R.DynShape || !Gm)
    return simulate(R.Kernel, Spec, Gm, Opts);
  const ShapeBinding &B = *R.DynShape;
  // Pad every dynamic input up to the representative extents; static
  // buffers pass through by reference into the padded map.
  ir::BufferMap Padded = *Gm;
  for (const ir::Tensor &In : RequestM.inputs()) {
    auto It = Padded.find(In->Name);
    if (It == Padded.end() || !B.TensorSyms.count(In->Name))
      continue;
    It->second = copyBox(It->second, In->Shape, repShape(In, B));
  }
  SimResult S = simulate(R.Kernel, Spec, &Padded, Opts);
  // Slice every materialized dynamic tensor back to the request extents;
  // everything else (including static outputs) merges through unchanged.
  for (const ir::Tensor &T : RequestM.allTensors()) {
    auto It = Padded.find(T->Name);
    if (It == Padded.end())
      continue;
    if (B.TensorSyms.count(T->Name) &&
        It->second.size() != static_cast<size_t>(T->numElements()))
      (*Gm)[T->Name] = copyBox(It->second, repShape(T, B), T->Shape);
    else
      (*Gm)[T->Name] = std::move(It->second);
  }
  return S;
}

FunctionalDiff diffBoundAgainstReference(const CompileResult &R,
                                         const ir::Module &RequestM,
                                         const MachineSpec &Spec,
                                         uint32_t Seed, SimResult *SimOut,
                                         uint64_t *BitsOut) {
  ir::BufferMap Gm = makeModuleInputs(RequestM, Seed);
  SimResult S = runBound(R, RequestM, Spec, &Gm);
  if (SimOut)
    *SimOut = S;
  if (S.Truncated) {
    FunctionalDiff D;
    D.MissingOutput = true;
    D.Missing = "(simulation truncated)";
    D.MaxAbsErr = std::numeric_limits<double>::infinity();
    if (BitsOut)
      *BitsOut = 0;
    return D;
  }
  ir::BufferMap Ref = ir::evaluateModule(RequestM, makeModuleInputs(RequestM, Seed));
  if (BitsOut)
    *BitsOut = hashOutputBits(RequestM, Gm);
  return compareOutputs(RequestM, Gm, Ref);
}

} // namespace sim
} // namespace akg
