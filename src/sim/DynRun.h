//===- sim/DynRun.h - Late-bound execution of bucketed kernels --*- C++ -*-===//
//
// Executes a dynamic-shape CompileResult on a concrete request
// (DESIGN.md 4k). A bucketed kernel computes at the bucket-representative
// extents; binding a concrete request means zero-padding every dynamic
// input dimension up to the representative, running the skeleton kernel,
// and slicing every output back to the request extents. The admission
// analysis guarantees each in-range output element depends only on
// in-range input elements (pointwise-in-dynamic-axes class), so the
// sliced results are exactly what a per-shape compile would produce
// functionally - the hard correctness gate of bench/shape_stream and the
// dynshape fuzz oracle check precisely this.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_DYNRUN_H
#define AKG_SIM_DYNRUN_H

#include "akg/Compiler.h"
#include "sim/Compare.h"

namespace akg {
namespace sim {

/// Runs \p R on machine \p Spec against \p Gm, whose buffers hold the
/// CONCRETE request shapes of \p RequestM. When R.DynShape is set, pads
/// dynamic inputs to the representative extents, simulates the skeleton,
/// and slices outputs back; otherwise plain simulate(). Outputs are
/// written into \p Gm at the request shapes either way.
SimResult runBound(const CompileResult &R, const ir::Module &RequestM,
                   const MachineSpec &Spec, ir::BufferMap *Gm,
                   const SimOptions &Opts = SimOptions());

/// diffKernelAgainstReference for (possibly) bucketed results: seeds
/// inputs from \p RequestM, executes via runBound, and diffs against the
/// reference evaluator on the concrete shapes. \p BitsOut receives the
/// bit-exact output hash when non-null (determinism sweeps).
FunctionalDiff diffBoundAgainstReference(const CompileResult &R,
                                         const ir::Module &RequestM,
                                         const MachineSpec &Spec,
                                         uint32_t Seed = 1,
                                         SimResult *SimOut = nullptr,
                                         uint64_t *BitsOut = nullptr);

} // namespace sim
} // namespace akg

#endif // AKG_SIM_DYNRUN_H
