//===- sim/Machine.cpp - DaVinci machine model ----------------------------===//

#include "sim/Machine.h"

namespace akg {
namespace sim {

const char *bufferName(Buffer B) {
  switch (B) {
  case Buffer::GM:
    return "GM";
  case Buffer::L1:
    return "L1";
  case Buffer::UB:
    return "UB";
  case Buffer::L0A:
    return "L0A";
  case Buffer::L0B:
    return "L0B";
  case Buffer::L0C:
    return "L0C";
  case Buffer::Shared:
    return "SHARED";
  case Buffer::Reg:
    return "REG";
  }
  return "?";
}

const char *pipeName(Pipe P) {
  switch (P) {
  case Pipe::S:
    return "PIPE_S";
  case Pipe::V:
    return "PIPE_V";
  case Pipe::M:
    return "PIPE_M";
  case Pipe::MTE1:
    return "PIPE_MTE1";
  case Pipe::MTE2:
    return "PIPE_MTE2";
  case Pipe::MTE3:
    return "PIPE_MTE3";
  }
  return "?";
}

const CceSpec &CceSpec::ascend910() {
  static CceSpec S;
  return S;
}

} // namespace sim
} // namespace akg
