//===- sim/Machine.h - DaVinci machine model --------------------*- C++ -*-===//
//
// The machine model of the Ascend 910 DaVinci architecture (paper Fig 1),
// used by the simulator's cost model, by Auto Tiling's footprint/data-
// movement model, and by storage management's capacity checks. We do not
// have the real chip (repro substitution, see DESIGN.md): parameters are
// set to the publicly described DaVinci configuration — a 16x16x16 Cube
// unit, a 128-lane FP16 vector unit, explicit L1/UB/L0A/L0B/L0C buffers and
// decoupled instruction pipelines synchronized by set/wait flags.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_MACHINE_H
#define AKG_SIM_MACHINE_H

#include <cstdint>
#include <string>

namespace akg {
namespace sim {

/// On-chip memories (plus GM = off-chip global memory). L1..L0C are the
/// CCE/DaVinci buffers; Shared and Reg are the per-block memories of the
/// SIMT target (sim/Target.h). Each backend's capacity check sweeps only
/// the memories its machine actually has.
enum class Buffer { GM, L1, UB, L0A, L0B, L0C, Shared, Reg };

const char *bufferName(Buffer B);

/// Instruction pipelines of the decoupled access-execute core.
///   S    - scalar unit
///   V    - vector unit
///   M    - cube (matrix) unit
///   MTE1 - L1 -> L0A/L0B transfers (incl. img2col + fractal layout)
///   MTE2 - GM -> L1/UB transfers
///   MTE3 - UB/L0C -> GM transfers
enum class Pipe { S, V, M, MTE1, MTE2, MTE3 };

constexpr unsigned NumPipes = 6;

const char *pipeName(Pipe P);

/// The CCE/DaVinci machine model. The historical name MachineSpec is
/// kept as an alias: this is one of two machines behind sim::TargetSpec
/// (sim/Target.h), which is what target-agnostic layers should consume.
struct CceSpec {
  // Buffer capacities (bytes).
  int64_t L1Bytes = 1 << 20;        // 1 MiB
  int64_t UBBytes = 256 << 10;      // 256 KiB
  int64_t L0ABytes = 64 << 10;      // 64 KiB
  int64_t L0BBytes = 64 << 10;      // 64 KiB
  int64_t L0CBytes = 256 << 10;     // 256 KiB

  // DMA model: cycles = Latency + ceil(bytes/Bandwidth) (+ one extra
  // latency per non-contiguous burst beyond the first).
  int64_t GmBandwidth = 64;         // bytes/cycle per MTE2/MTE3 queue
  int64_t GmLatency = 250;          // warm-up cycles per transfer
  int64_t OnChipBandwidth = 256;    // bytes/cycle for L1 <-> L0 (MTE1)
  int64_t OnChipLatency = 32;
  int64_t BurstLatency = 4;         // extra cost per discontiguous burst

  // Cube unit: one M x K x N fractal MAC block per cycle.
  int64_t CubeM = 16, CubeN = 16, CubeK = 16;
  int64_t CubeStartup = 16;         // per MMAD instruction issue cost

  // Vector unit: lanes per cycle (FP16; FP32 halves it), issue cost per
  // intrinsic.
  int64_t VectorLanes = 128;
  int64_t VectorIssue = 8;

  // Scalar unit.
  int64_t ScalarCost = 2;           // cycles per scalar operation

  // Pipeline synchronization (set_flag/wait_flag pair overhead).
  int64_t SyncCost = 12;

  int64_t bufferBytes(Buffer B) const {
    switch (B) {
    case Buffer::GM:
      return INT64_MAX;
    case Buffer::L1:
      return L1Bytes;
    case Buffer::UB:
      return UBBytes;
    case Buffer::L0A:
      return L0ABytes;
    case Buffer::L0B:
      return L0BBytes;
    case Buffer::L0C:
      return L0CBytes;
    default:
      return 0; // SIMT-only memories do not exist on a CCE machine
    }
  }

  /// The configuration used throughout the evaluation.
  static const CceSpec &ascend910();
};

using MachineSpec = CceSpec;

} // namespace sim
} // namespace akg

#endif // AKG_SIM_MACHINE_H
