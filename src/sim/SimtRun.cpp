//===- sim/SimtRun.cpp - SIMT machine simulator ---------------------------===//

#include "sim/SimtRun.h"

#include <limits>
#include <map>

namespace akg {
namespace sim {

namespace {

int64_t ceilDiv(int64_t A, int64_t B) { return B ? (A + B - 1) / B : 0; }

class SimtEngine {
public:
  SimtEngine(const cce::Kernel &K, const SimtSpec &S, ir::BufferMap *Gm,
             const SimOptions &Opts)
      : K(K), S(S), Gm(Gm), Opts(Opts) {}

  SimtResult run() {
    if (Gm && Opts.Functional) {
      for (const cce::BufferAlloc &B : K.Buffers)
        (*Gm)[B.Name].assign(B.Decl->numElements(), 0.0f);
      for (const ir::Tensor &T : K.GmTensors)
        if (!Gm->count(T->Name))
          (*Gm)[T->Name].assign(T->numElements(), 0.0f);
    }
    for (const cce::BufferAlloc &B : K.Buffers)
      if (B.Location == Buffer::Shared)
        R.SharedBytesPeak += B.bytes() * (B.DoubleBuffered ? 2 : 1);

    std::map<std::string, int64_t> Env;
    execList(K.Body, Env);

    // Wave model: SerialCycles is the whole grid's work run back to back;
    // ConcurrentBlocks of it proceed at once, so the grid completes in
    // ceil(SerialCycles / ConcurrentBlocks) plus the launch overhead.
    R.Blocks = std::max<int64_t>(K.GridBlocks, 1);
    R.ThreadsPerBlock = std::max<int64_t>(K.BlockThreads, 1);
    int64_t Occupancy = S.MaxBlocksPerSM;
    if (R.SharedBytesPeak > 0)
      Occupancy = std::min<int64_t>(
          Occupancy,
          std::max<int64_t>(1, S.SharedMemBytes / R.SharedBytesPeak));
    int64_t Concurrent =
        std::min(R.Blocks, std::max<int64_t>(1, S.NumSMs * Occupancy));
    R.Waves = ceilDiv(R.Blocks, Concurrent);
    R.Cycles = S.LaunchLatency + ceilDiv(SerialCycles, Concurrent);
    return R;
  }

private:
  const cce::Kernel &K;
  const SimtSpec &S;
  ir::BufferMap *Gm;
  SimOptions Opts;
  SimtResult R;
  int64_t SerialCycles = 0;
  ir::BufferMap EmptyBufs;

  ir::BufferMap &bufs() { return Gm ? *Gm : EmptyBufs; }

  int64_t evalInt(const ir::Expr &E, std::map<std::string, int64_t> &Env) {
    return static_cast<int64_t>(ir::evalExpr(E, Env, bufs()));
  }

  /// Cycle cost of one execution of a non-loop instruction on one block.
  int64_t cost(const cce::Instr &I) {
    switch (I.Kind) {
    case cce::InstrKind::Dma: {
      // Coalescing model: a transfer issues one transaction per
      // CoalesceBytes segment, but discontiguous bursts can never merge,
      // so the transaction count is at least the burst count.
      int64_t Tx = std::max(I.Bursts, ceilDiv(I.Bytes, S.CoalesceBytes));
      Tx = std::max<int64_t>(Tx, 1);
      R.Transactions += Tx;
      return S.GlobalLatency + Tx * S.TransactionCost +
             ceilDiv(I.Bytes, S.GlobalBandwidth);
    }
    case cce::InstrKind::Img2Col:
    case cce::InstrKind::LoadFractal:
      // No MTE pipes on SIMT; treat as a shared-memory shuffle.
      return S.SharedLatency + ceilDiv(I.Bytes, S.SharedBandwidth);
    case cce::InstrKind::Mmad:
      // No cube unit: the lowering thread-maps these, but cost any that
      // slip through as thread-parallel FMA work.
      return S.IssueCost +
             ceilDiv(I.FractalOps, std::max<int64_t>(K.BlockThreads, 1));
    case cce::InstrKind::VectorOp: {
      // Thread-parallel: the block sweeps the unit in element steps of
      // BlockThreads lanes; f32 costs double issue like the CCE model.
      int64_t Threads = std::max<int64_t>(K.BlockThreads, 1);
      return S.IssueCost + ceilDiv(I.Elems, Threads) * (I.Fp32 ? 2 : 1);
    }
    case cce::InstrKind::ScalarOp:
      return S.ScalarCost * std::max<int64_t>(I.Elems, 1);
    case cce::InstrKind::Barrier:
      ++R.Barriers;
      return S.BarrierCost;
    default:
      // set/wait flags never appear in SIMT kernels; cost nothing.
      return 0;
    }
  }

  void execList(const std::vector<cce::InstrPtr> &L,
                std::map<std::string, int64_t> &Env) {
    for (const cce::InstrPtr &I : L) {
      if (R.Truncated)
        return;
      exec(*I, Env);
    }
  }

  void exec(const cce::Instr &I, std::map<std::string, int64_t> &Env) {
    if (++R.DynamicInstrs >= Opts.MaxDynamicInstrs) {
      R.Truncated = true;
      return;
    }
    if (I.Kind == cce::InstrKind::Loop) {
      int64_t Min = evalInt(I.Min, Env);
      int64_t Ext = evalInt(I.Extent, Env);
      // Grid-mapped loops still execute every iteration serially here
      // (functional order is the program order); the wave division at
      // the end of run() is what models their block-parallel execution,
      // keeping results independent of the launch shape.
      int64_t Pipelined = I.DoubleBuffered ? 1 : 0;
      for (int64_t V = Min; V < Min + Ext && !R.Truncated; ++V) {
        Env[I.Var] = V;
        PipelineDepth += Pipelined;
        execList(I.Body, Env);
        PipelineDepth -= Pipelined;
      }
      Env.erase(I.Var);
      return;
    }
    int64_t C = cost(I);
    // cp.async staging inside a pipelined loop overlaps with compute of
    // the previous iteration: charge half the transfer, mirroring how
    // double buffering halves exposed DMA time on the CCE model.
    if (PipelineDepth > 0 && I.Kind == cce::InstrKind::Dma &&
        I.Pipe == Pipe::MTE2)
      C /= 2;
    SerialCycles += C;
    if (I.Kind == cce::InstrKind::Dma)
      R.GmTrafficBytes += I.Bytes;
    if (Gm && Opts.Functional && I.Sem)
      ir::execStmtWithEnv(I.Sem, *Gm, Env);
  }

  int64_t PipelineDepth = 0;
};

} // namespace

SimtResult simulateSimt(const cce::Kernel &K, const SimtSpec &S,
                        ir::BufferMap *Gm, const SimOptions &Opts) {
  SimtEngine E(K, S, Gm, Opts);
  return E.run();
}

FunctionalDiff diffSimtAgainstReference(const cce::Kernel &K,
                                        const ir::Module &M,
                                        const SimtSpec &Spec, uint32_t Seed,
                                        SimtResult *SimOut,
                                        uint64_t *BitsOut) {
  ir::BufferMap In = makeModuleInputs(M, Seed);
  ir::BufferMap Ref = ir::evaluateModule(M, In);
  ir::BufferMap Got = In;
  SimOptions SO;
  SO.Functional = true;
  SimtResult SR = simulateSimt(K, Spec, &Got, SO);
  if (SimOut)
    *SimOut = SR;
  if (BitsOut)
    *BitsOut = hashOutputBits(M, Got);
  if (SR.Truncated) {
    FunctionalDiff D;
    D.MissingOutput = true;
    D.Missing = "<truncated at " + std::to_string(SR.DynamicInstrs) +
                " dynamic instrs>";
    D.MaxAbsErr = std::numeric_limits<double>::infinity();
    return D;
  }
  return compareOutputs(M, Got, Ref);
}

} // namespace sim
} // namespace akg
