//===- sim/SimtRun.h - SIMT machine simulator -------------------*- C++ -*-===//
//
// Executes SIMT kernels (target/SimtLower.h) on the grid-of-thread-blocks
// machine model (sim::SimtSpec). Mirrors sim/Simulator.h's split:
//
//  * Functional execution: semantic payloads run in program order against
//    global buffers — grid mapping and barriers never reorder the
//    functional walk, so outputs are deterministic and directly
//    comparable with ir::evaluateModule regardless of the launch shape.
//
//  * Cycle accounting: one block's serial work is costed instruction by
//    instruction under a coalescing global-memory model (transactions =
//    max(bursts, bytes / CoalesceBytes)) and thread-parallel compute
//    (elems / BlockThreads per step); the grid then executes in waves of
//    ConcurrentBlocks = NumSMs * min(MaxBlocksPerSM, shared-memory
//    occupancy) blocks, so total cycles = launch latency + serial work
//    divided across the concurrently-resident blocks.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_SIMTRUN_H
#define AKG_SIM_SIMTRUN_H

#include "sim/Compare.h"
#include "sim/Simulator.h"
#include "sim/Target.h"

namespace akg {
namespace sim {

struct SimtResult {
  int64_t Cycles = 0;
  /// True when the run stopped at MaxDynamicInstrs; Cycles is then a lower
  /// bound (same contract as SimResult::Truncated).
  bool Truncated = false;
  int64_t DynamicInstrs = 0;
  int64_t GmTrafficBytes = 0;   // global-memory DMA bytes
  int64_t Transactions = 0;     // coalesced memory transactions issued
  int64_t Barriers = 0;         // dynamic __syncthreads count
  int64_t Blocks = 0;           // launch grid size
  int64_t ThreadsPerBlock = 0;
  int64_t Waves = 0;            // ceil(Blocks / ConcurrentBlocks)
  int64_t SharedBytesPeak = 0;  // per-block shared allocation footprint
};

/// Runs SIMT kernel \p K on machine \p S. When \p Gm is non-null it must
/// contain every input tensor buffer; outputs are written into it.
SimtResult simulateSimt(const cce::Kernel &K, const SimtSpec &S,
                        ir::BufferMap *Gm,
                        const SimOptions &Opts = SimOptions());

/// Runs \p K functionally on inputs seeded with \p Seed and diffs against
/// ir::evaluateModule — the SIMT analogue of diffKernelAgainstReference.
/// A truncated run is reported as a diff with MissingOutput set.
FunctionalDiff diffSimtAgainstReference(const cce::Kernel &K,
                                        const ir::Module &M,
                                        const SimtSpec &Spec,
                                        uint32_t Seed = 1,
                                        SimtResult *SimOut = nullptr,
                                        uint64_t *BitsOut = nullptr);

} // namespace sim
} // namespace akg

#endif // AKG_SIM_SIMTRUN_H
