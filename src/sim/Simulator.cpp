//===- sim/Simulator.cpp - DaVinci cycle-approximate simulator ------------===//

#include "sim/Simulator.h"

#include <cassert>
#include <map>
#include <set>

namespace akg {
namespace sim {

namespace {

class SimEngine {
public:
  SimEngine(const cce::Kernel &K, const MachineSpec &M, ir::BufferMap *Gm,
            const SimOptions &Opts)
      : K(K), M(M), Gm(Gm), Opts(Opts) {}

  SimResult run() {
    // Allocate local buffers.
    if (Gm && Opts.Functional) {
      for (const cce::BufferAlloc &B : K.Buffers)
        (*Gm)[B.Name].assign(B.Decl->numElements(), 0.0f);
      for (const ir::Tensor &T : K.GmTensors)
        if (!Gm->count(T->Name))
          (*Gm)[T->Name].assign(T->numElements(), 0.0f);
    }
    std::map<std::string, int64_t> Env;
    execList(K.Body, Env);
    for (unsigned P = 0; P < NumPipes; ++P)
      R.Cycles = std::max(R.Cycles, PipeTime[P]);
    return R;
  }

private:
  const cce::Kernel &K;
  const MachineSpec &M;
  ir::BufferMap *Gm;
  SimOptions Opts;
  SimResult R;
  std::array<int64_t, NumPipes> PipeTime{};
  // Event completion times keyed by (source pipe, event id); the last two
  // set times are kept so Depth-2 waits can model ping-pong buffering.
  std::map<std::pair<unsigned, unsigned>, std::pair<int64_t, int64_t>>
      Events; // (previous, latest); -1 = never set
  ir::BufferMap EmptyBufs;

  ir::BufferMap &bufs() { return Gm ? *Gm : EmptyBufs; }

  int64_t evalInt(const ir::Expr &E, std::map<std::string, int64_t> &Env) {
    return static_cast<int64_t>(ir::evalExpr(E, Env, bufs()));
  }

  /// Cycle cost of one execution of a non-loop instruction.
  int64_t cost(const cce::Instr &I) const {
    switch (I.Kind) {
    case cce::InstrKind::Dma: {
      int64_t Bw = (I.Pipe == Pipe::MTE1) ? M.OnChipBandwidth : M.GmBandwidth;
      int64_t Lat = (I.Pipe == Pipe::MTE1) ? M.OnChipLatency : M.GmLatency;
      if (K.HandPrefetched && I.Pipe == Pipe::MTE2)
        Lat /= 2; // manual prefetching hides part of the warm-up
      return Lat + (I.Bytes + Bw - 1) / Bw + (I.Bursts - 1) * M.BurstLatency;
    }
    case cce::InstrKind::Img2Col:
    case cce::InstrKind::LoadFractal: {
      // MTE1 transfer with fractal/patch reorganization.
      return M.OnChipLatency + (I.Bytes + M.OnChipBandwidth - 1) /
                                   M.OnChipBandwidth +
             (I.Bursts - 1) * (M.BurstLatency / 4);
    }
    case cce::InstrKind::Mmad:
      return M.CubeStartup + I.FractalOps;
    case cce::InstrKind::VectorOp: {
      int64_t Lanes = I.Fp32 ? M.VectorLanes / 2 : M.VectorLanes;
      return M.VectorIssue + (I.Elems + Lanes - 1) / Lanes;
    }
    case cce::InstrKind::ScalarOp:
      return M.ScalarCost * std::max<int64_t>(I.Elems, 1);
    default:
      return 0;
    }
  }

  void execList(const std::vector<cce::InstrPtr> &L,
                std::map<std::string, int64_t> &Env) {
    for (const cce::InstrPtr &I : L) {
      if (R.Truncated)
        return;
      exec(*I, Env);
    }
  }

  void exec(const cce::Instr &I, std::map<std::string, int64_t> &Env) {
    if (++R.DynamicInstrs >= Opts.MaxDynamicInstrs) {
      // Degenerate configurations (tiny tiles on huge problems) are cut
      // off; the cycles so far are a lower bound, which is all a tuner
      // needs to reject them.
      R.Truncated = true;
      return;
    }
    switch (I.Kind) {
    case cce::InstrKind::Loop: {
      int64_t Min = evalInt(I.Min, Env);
      int64_t Ext = evalInt(I.Extent, Env);
      for (int64_t V = Min; V < Min + Ext && !R.Truncated; ++V) {
        Env[I.Var] = V;
        execList(I.Body, Env);
      }
      Env.erase(I.Var);
      break;
    }
    case cce::InstrKind::SetFlag: {
      // The flag is raised when the source pipe reaches this point.
      auto Key = std::make_pair(unsigned(I.Pipe), I.EventId);
      auto It = Events.find(Key);
      if (It == Events.end())
        Events[Key] = {-1, PipeTime[size_t(I.Pipe)]};
      else
        It->second = {It->second.second, PipeTime[size_t(I.Pipe)]};
      break;
    }
    case cce::InstrKind::WaitFlag: {
      auto It = Events.find({unsigned(I.WaitSrc), I.EventId});
      ++R.FlagPairs;
      int64_t &T = PipeTime[size_t(I.Pipe)];
      if (It != Events.end()) {
        int64_t When = I.Depth >= 2 ? It->second.first : It->second.second;
        if (When > T) {
          R.SyncStallCycles += When - T;
          T = When;
        }
      }
      T += M.SyncCost;
      break;
    }
    case cce::InstrKind::Barrier: {
      int64_t Mx = 0;
      for (unsigned P = 0; P < NumPipes; ++P)
        Mx = std::max(Mx, PipeTime[P]);
      for (unsigned P = 0; P < NumPipes; ++P)
        PipeTime[P] = Mx;
      break;
    }
    default: {
      int64_t C = cost(I);
      PipeTime[size_t(I.Pipe)] += C;
      R.BusyCycles[size_t(I.Pipe)] += C;
      if (I.Kind == cce::InstrKind::Dma &&
          (I.Pipe == Pipe::MTE2 || I.Pipe == Pipe::MTE3))
        R.GmTrafficBytes += I.Bytes;
      if (Gm && Opts.Functional && I.Sem)
        ir::execStmtWithEnv(I.Sem, *Gm, Env);
      break;
    }
    }
  }
};

} // namespace

SimResult simulate(const cce::Kernel &K, const MachineSpec &M,
                   ir::BufferMap *Gm, const SimOptions &Opts) {
  SimEngine E(K, M, Gm, Opts);
  return E.run();
}

} // namespace sim
} // namespace akg
