//===- sim/Simulator.h - DaVinci cycle-approximate simulator ----*- C++ -*-===//
//
// Executes CCE kernels on the machine model. Two concerns are handled in
// one walk:
//
//  * Functional execution (optional): every instruction's semantic payload
//    runs against named float buffers, so kernel outputs can be compared
//    bit-for-bit (FP tolerance) with the DSL reference evaluator.
//
//  * Cycle accounting: the six decoupled pipelines (Fig 1) each have their
//    own timeline; instructions are dispatched in program order to their
//    pipe and execute in order within it; set_flag/wait_flag pairs transfer
//    completion times across pipes (the DAE synchronization of Sec 5.2).
//    Double buffering and latency hiding therefore emerge from the flag
//    structure the compiler emits, not from simulator special cases.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_SIMULATOR_H
#define AKG_SIM_SIMULATOR_H

#include "ir/Dsl.h"
#include "sim/Machine.h"
#include "target/CceIr.h"

#include <array>

namespace akg {
namespace sim {

struct SimOptions {
  /// Execute functional payloads (requires GM buffers). Disable for large
  /// performance-mode runs.
  bool Functional = true;
  /// Abort guard against runaway instruction streams.
  int64_t MaxDynamicInstrs = 200000000;
};

struct SimResult {
  int64_t Cycles = 0;
  /// True when the run stopped at MaxDynamicInstrs; Cycles is then a lower
  /// bound (tuners treat such configurations as hopeless).
  bool Truncated = false;
  int64_t DynamicInstrs = 0;
  int64_t GmTrafficBytes = 0;   // DMA bytes to/from global memory
  int64_t SyncStallCycles = 0;  // cycles pipes spent blocked on flags
  int64_t FlagPairs = 0;        // dynamic wait_flag count
  std::array<int64_t, NumPipes> BusyCycles{};

  double utilization(Pipe P) const {
    return Cycles ? double(BusyCycles[size_t(P)]) / double(Cycles) : 0.0;
  }
};

/// Runs \p K on machine \p M. When \p Gm is non-null it must contain every
/// input tensor buffer; outputs are written into it.
SimResult simulate(const cce::Kernel &K, const MachineSpec &M,
                   ir::BufferMap *Gm, const SimOptions &Opts = SimOptions());

} // namespace sim
} // namespace akg

#endif // AKG_SIM_SIMULATOR_H
