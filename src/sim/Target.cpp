//===- sim/Target.cpp - Target abstraction over machine models ------------===//

#include "sim/Target.h"

namespace akg {
namespace sim {

const char *targetName(TargetKind K) {
  switch (K) {
  case TargetKind::Cce:
    return "cce";
  case TargetKind::Simt:
    return "simt";
  }
  return "?";
}

bool parseTargetName(const std::string &Name, TargetKind &Out) {
  if (Name == "cce") {
    Out = TargetKind::Cce;
    return true;
  }
  if (Name == "simt") {
    Out = TargetKind::Simt;
    return true;
  }
  return false;
}

const SimtSpec &SimtSpec::sm80() {
  static SimtSpec S;
  return S;
}

} // namespace sim
} // namespace akg
