//===- sim/Target.h - Target abstraction over machine models ----*- C++ -*-===//
//
// The target layer: every hardware-specific decision in the pipeline
// (auto-tiling capacities, lowering, storage checks, synchronization,
// simulation cost model) routes through a TargetSpec instead of reaching
// for the CCE MachineSpec directly. Two simulated machines are modeled:
//
//   - Cce: the Ascend 910 DaVinci NPU of the paper (sim/Machine.h) —
//     explicit L1/UB/L0 buffers, decoupled pipes, set/wait flags.
//   - Simt: a GPU-like SIMT machine — a grid of thread blocks scheduled
//     across streaming multiprocessors, per-block shared memory and
//     registers, a global memory whose cost model charges per coalesced
//     transaction segment, and __syncthreads-style block barriers in
//     place of flag pairs.
//
// The target is selected per compile via AkgOptions::Target, overridden
// by AKG_TARGET=cce|simt (akg/Compiler.h resolveTarget), and is part of
// the kernel-cache fingerprint so the two backends never alias.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SIM_TARGET_H
#define AKG_SIM_TARGET_H

#include "sim/Machine.h"

namespace akg {
namespace sim {

/// The simulated machines a module can be compiled for.
enum class TargetKind { Cce, Simt };

constexpr unsigned NumTargetKinds = 2;

/// "cce" / "simt" — the names accepted by AKG_TARGET, --target and the
/// composite JSON "target" field.
const char *targetName(TargetKind K);

/// Parses a target name; false (and \p Out untouched) on an unknown
/// name, so callers can emit a structured Diag instead of crashing.
bool parseTargetName(const std::string &Name, TargetKind &Out);

/// SIMT/GPU-like machine model. Parameters follow the publicly described
/// shape of a Volta-class part: 80 SMs, 1024 threads and 48 KiB of
/// shared memory per block, 128 B coalescing segments, ~400-cycle global
/// memory latency. Like the CCE MachineSpec this drives a deterministic
/// cycle-approximate model, not a real chip.
struct SimtSpec {
  // Grid scheduling.
  int64_t NumSMs = 80;              // streaming multiprocessors
  int64_t MaxBlocksPerSM = 16;      // resident-block cap per SM
  int64_t MaxThreadsPerBlock = 1024;
  int64_t WarpSize = 32;            // block sizes are rounded to warps

  // Per-block memories (bytes).
  int64_t SharedMemBytes = 48 << 10; // shared memory per block
  int64_t RegisterBytes = 64 << 10;  // register file slice per block

  // Global memory: cycles = Latency + ceil(bytes/Bandwidth) + one
  // TransactionCost per coalesced segment beyond the first. Strided
  // accesses split into more segments (sim/SimtRun.cpp).
  int64_t GlobalBandwidth = 32;     // bytes/cycle per block
  int64_t GlobalLatency = 400;      // warm-up cycles per transfer
  int64_t CoalesceBytes = 128;      // transaction segment size
  int64_t TransactionCost = 4;      // extra cycles per extra segment

  // Shared memory (bank-conflict-free model).
  int64_t SharedLatency = 24;
  int64_t SharedBandwidth = 128;    // bytes/cycle

  // Execution.
  int64_t IssueCost = 4;            // per-instruction issue overhead
  int64_t ScalarCost = 2;           // cycles per element within one thread
  int64_t BarrierCost = 20;         // __syncthreads
  int64_t LaunchLatency = 600;      // kernel launch overhead

  int64_t bufferBytes(Buffer B) const {
    switch (B) {
    case Buffer::GM:
      return INT64_MAX;
    case Buffer::Shared:
      return SharedMemBytes;
    case Buffer::Reg:
      return RegisterBytes;
    default:
      return 0; // CCE-only memories do not exist on a SIMT machine
    }
  }

  /// The configuration used throughout the evaluation (Volta-class).
  static const SimtSpec &sm80();
};

/// The machine description every hardware-specific pipeline decision is
/// routed through: a target kind plus the spec of each simulated
/// machine. Value semantics (cheap to copy, fingerprintable); the
/// behavioral side of a target (lowering, capacity checks, sync) lives
/// behind target/TargetBackend.h.
struct TargetSpec {
  TargetKind Kind = TargetKind::Cce;
  CceSpec Cce = CceSpec::ascend910();
  SimtSpec Simt = SimtSpec::sm80();

  const char *name() const { return targetName(Kind); }

  /// Capacity of memory \p B on the active machine.
  int64_t bufferBytes(Buffer B) const {
    return Kind == TargetKind::Cce ? Cce.bufferBytes(B) : Simt.bufferBytes(B);
  }

  static TargetSpec cce(const CceSpec &C) {
    TargetSpec T;
    T.Kind = TargetKind::Cce;
    T.Cce = C;
    return T;
  }
  static TargetSpec simt(const SimtSpec &S) {
    TargetSpec T;
    T.Kind = TargetKind::Simt;
    T.Simt = S;
    return T;
  }
};

} // namespace sim
} // namespace akg

#endif // AKG_SIM_TARGET_H
