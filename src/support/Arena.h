//===- support/Arena.h - Bump-pointer node arena ----------------*- C++ -*-===//
//
// A refcounted bump-pointer arena for allocating many small immutable
// nodes (AST expression/statement nodes) without one malloc per node.
// Pair it with ArenaAllocator and std::allocate_shared: every shared_ptr
// control block + node pair is carved out of the arena's blocks, and the
// allocator keeps a shared_ptr to the arena, so the arena's memory stays
// alive exactly as long as any node allocated from it - handing an AST
// built in an arena to a caller (or another thread) is safe.
//
// Deallocation is a no-op (bump pointers only move forward); destructors
// still run normally when the last shared_ptr drops. The arena itself is
// not thread-safe for concurrent allocation - each compile uses its own.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_ARENA_H
#define AKG_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace akg {

class NodeArena {
public:
  static constexpr size_t kBlockBytes = 1 << 16;

  void *allocate(size_t Bytes, size_t Align) {
    size_t Cur = reinterpret_cast<uintptr_t>(Next);
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (!Next || Aligned + Bytes > reinterpret_cast<uintptr_t>(End)) {
      size_t BlockSize = Bytes + Align > kBlockBytes ? Bytes + Align
                                                     : kBlockBytes;
      Blocks.emplace_back(new char[BlockSize]);
      Next = Blocks.back().get();
      End = Next + BlockSize;
      Cur = reinterpret_cast<uintptr_t>(Next);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Next = reinterpret_cast<char *>(Aligned + Bytes);
    ++Allocs;
    return reinterpret_cast<void *>(Aligned);
  }

  size_t numAllocations() const { return Allocs; }
  size_t numBlocks() const { return Blocks.size(); }

private:
  std::vector<std::unique_ptr<char[]>> Blocks;
  char *Next = nullptr;
  char *End = nullptr;
  size_t Allocs = 0;
};

/// Standard-allocator adapter over a refcounted NodeArena. deallocate is
/// a no-op; the arena lives until the last object allocated through any
/// copy of this allocator is destroyed.
template <class T> class ArenaAllocator {
public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<NodeArena> A) : Arena(std::move(A)) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U> &O) : Arena(O.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(Arena->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *, size_t) noexcept {} // bulk-freed with the arena

  const std::shared_ptr<NodeArena> &arena() const { return Arena; }

  template <class U> bool operator==(const ArenaAllocator<U> &O) const {
    return Arena == O.arena();
  }
  template <class U> bool operator!=(const ArenaAllocator<U> &O) const {
    return Arena != O.arena();
  }

private:
  std::shared_ptr<NodeArena> Arena;
};

} // namespace akg

#endif // AKG_SUPPORT_ARENA_H
