//===- support/Cancel.cpp - Deadlines + cooperative cancellation ----------===//

#include "support/Cancel.h"

#include <chrono>
#include <thread>

namespace akg {
namespace cancel {

namespace {
thread_local const Context *Active = nullptr;
} // namespace

const Context *current() { return Active; }

Scope::Scope(Context *Ctx) : Saved(Active) {
  if (Ctx) {
    Ctx->Parent = Active;
    Active = Ctx;
  }
}

Scope::Scope(const Context *Existing) : Saved(Active) {
  // Re-installing a context from another thread: its Parent chain was
  // fixed when it was first installed, so no re-chaining here.
  if (Existing)
    Active = Existing;
}

Scope::~Scope() { Active = Saved; }

ErrCode interrupted() {
  ErrCode Hit = ErrCode::Ok;
  for (const Context *C = Active; C; C = C->Parent) {
    if (C->Token && C->Token->cancelled())
      return ErrCode::Cancelled; // explicit cancel wins
    if (Hit == ErrCode::Ok && C->DL.expired())
      Hit = ErrCode::DeadlineExceeded;
  }
  return Hit;
}

void checkPoint(const char *Where) {
  ErrCode C = interrupted();
  if (C != ErrCode::Ok)
    throw CancelledError(C, Where);
}

bool sleepFor(double Ms) {
  using namespace std::chrono;
  auto End = steady_clock::now() + duration_cast<steady_clock::duration>(
                                       duration<double, std::milli>(Ms));
  while (steady_clock::now() < End) {
    if (interrupted() != ErrCode::Ok)
      return false;
    auto Left = End - steady_clock::now();
    std::this_thread::sleep_for(std::min<steady_clock::duration>(
        Left, milliseconds(1)));
  }
  return interrupted() == ErrCode::Ok;
}

} // namespace cancel
} // namespace akg
