//===- support/Cancel.h - Deadlines + cooperative cancellation --*- C++ -*-===//
//
// The request-termination substrate of the compile service: a CancelToken
// a requester can flip from any thread, a per-compile cancel::Context
// pairing that token with a hard wall-clock Deadline, and checkpoints the
// pipeline calls at pass boundaries and inside its long-running loops
// (Pluto's master-LP rows, dependence pair analysis, AST generation).
//
// A tripped checkpoint throws CancelledError, which unwinds the compile
// cleanly: the pipeline driver catches it, emits a terminal TraceEvent
// naming the pass it stopped in, and returns a CompileResult whose
// Outcome is DeadlineExceeded or Cancelled (with a scalar fallback kernel
// so downstream consumers still hold a valid, if slow, kernel).
//
// The active Context is installed per thread with cancel::Scope (RAII).
// Contexts chain: a nested scope - the kernel-cache leader compiling
// under a service worker's request context - honors every deadline and
// token up the chain, so the tightest constraint always wins. Worker
// threads spawned mid-compile (parallel dependence analysis) re-install
// the parent context explicitly, since thread_local state does not cross
// pool threads.
//
// Unarmed checkpoints (no scope, or a scope with no deadline and no
// token) cost one thread-local read - compiles outside the service are
// unaffected.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_CANCEL_H
#define AKG_SUPPORT_CANCEL_H

#include "support/Status.h"

#include <atomic>
#include <stdexcept>
#include <string>

namespace akg {

/// One-way cooperative cancellation flag. Share via shared_ptr between
/// the requester (any thread) and the compile that should observe it.
class CancelToken {
public:
  void requestCancel() { Flag.store(true, std::memory_order_release); }
  bool cancelled() const { return Flag.load(std::memory_order_acquire); }

private:
  std::atomic<bool> Flag{false};
};

/// Thrown by a tripped checkpoint. `code()` is DeadlineExceeded or
/// Cancelled; `where()` names the pass the compile stopped in (filled by
/// the pipeline's pass wrapper when the throw came from deeper inside).
class CancelledError : public std::runtime_error {
public:
  CancelledError(ErrCode C, std::string Where)
      : std::runtime_error(C == ErrCode::DeadlineExceeded
                               ? "compile deadline exceeded"
                               : "compile cancelled"),
        Code(C), WherePass(std::move(Where)) {}

  ErrCode code() const { return Code; }
  const std::string &where() const { return WherePass; }
  void setWhere(std::string W) { WherePass = std::move(W); }

private:
  ErrCode Code;
  std::string WherePass;
};

namespace cancel {

/// The termination constraints of one compile request. Immutable while
/// installed; checkpoints walk the Parent chain so nested scopes only
/// ever tighten the constraint.
struct Context {
  Deadline DL;
  const CancelToken *Token = nullptr;
  const Context *Parent = nullptr;
};

/// The context active on this thread (null outside any Scope).
const Context *current();

/// Installs \p Ctx as this thread's active context for the lifetime of
/// the scope, chaining to the previously active one. Passing null
/// re-installs the given parent explicitly (used to propagate a request
/// context onto pool worker threads).
class Scope {
public:
  explicit Scope(Context *Ctx);
  /// Re-installs an already-chained context (e.g. the parent thread's
  /// current()) on this thread. Null is a no-op scope.
  explicit Scope(const Context *Existing);
  ~Scope();
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

private:
  const Context *Saved;
};

/// Ok, or the reason this thread's compile should stop: Cancelled wins
/// over DeadlineExceeded when both hold (the requester explicitly asked).
ErrCode interrupted();

/// Throws CancelledError when interrupted. \p Where names the calling
/// pass or loop for the terminal trace event; deep loops pass "" and the
/// pipeline's pass wrapper fills in the pass name on the way out.
void checkPoint(const char *Where = "");

/// Sleeps ~\p Ms milliseconds in small slices, returning early with
/// false when a checkpoint would trip (true = slept the full duration).
/// The chaos layer uses this for injected delays and hangs so a deadline
/// or cancellation always rescues a "hung" request.
bool sleepFor(double Ms);

} // namespace cancel
} // namespace akg

#endif // AKG_SUPPORT_CANCEL_H
