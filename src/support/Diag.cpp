//===- support/Diag.cpp - Pipeline diagnostics --------------------------- ===//

#include "support/Diag.h"

#include <algorithm>
#include <cctype>

namespace akg {

const char *stageName(Stage S) {
  switch (S) {
  case Stage::None:
    return "none";
  case Stage::Scheduler:
    return "scheduler";
  case Stage::Tiling:
    return "tiling";
  case Stage::Fusion:
    return "fusion";
  case Stage::IntraTile:
    return "intra_tile";
  case Stage::Storage:
    return "storage";
  case Stage::Vectorize:
    return "vectorize";
  case Stage::DoubleBuffer:
    return "double_buffer";
  case Stage::Sync:
    return "sync";
  }
  return "?";
}

Stage parseStage(const std::string &Name) {
  std::string N = Name;
  std::transform(N.begin(), N.end(), N.begin(),
                 [](unsigned char C) { return char(std::tolower(C)); });
  std::replace(N.begin(), N.end(), '-', '_');
  static const Stage All[] = {Stage::Scheduler,   Stage::Tiling,
                              Stage::Fusion,      Stage::IntraTile,
                              Stage::Storage,     Stage::Vectorize,
                              Stage::DoubleBuffer, Stage::Sync};
  for (Stage S : All)
    if (N == stageName(S))
      return S;
  return Stage::None;
}

std::string DegradationReport::str() const {
  std::string Out;
  for (const DegradationStep &St : Steps) {
    Out += stageName(St.Where);
    Out += ": ";
    Out += St.Reason;
    Out += " -> ";
    Out += St.Action;
    Out += "\n";
  }
  return Out;
}

} // namespace akg
