//===- support/Diag.h - Pipeline diagnostics + degradation trail ----------===//
//
// Every stage of the compile pipeline can degrade gracefully: scheduler
// TooHard -> identity schedule, tiling overflow -> halved -> minimal tiles,
// fusion failure -> distribution, vectorize failure -> scalar loops,
// double-buffer failure -> single buffering, sync failure -> full-serial
// barriers. Each step taken down that ladder is recorded here so callers
// can see exactly what quality was traded for robustness.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_DIAG_H
#define AKG_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace akg {

/// Pipeline stages that can fail (and be fault-injected via
/// AkgOptions::FailStage or the AKG_FAIL_STAGE environment variable).
enum class Stage {
  None,
  Scheduler,
  Tiling,
  Fusion,
  IntraTile,
  Storage,
  Vectorize,
  DoubleBuffer,
  Sync,
};

const char *stageName(Stage S);

/// Parse a stage name as accepted by AKG_FAIL_STAGE ("scheduler",
/// "tiling", "fusion", "intra_tile", "storage", "vectorize",
/// "double_buffer", "sync"). Unknown names map to Stage::None.
Stage parseStage(const std::string &Name);

/// One rung taken down the degradation ladder.
struct DegradationStep {
  Stage Where = Stage::None;
  std::string Reason; // why the preferred path failed
  std::string Action; // what the compiler did instead
};

/// The full trail of degradations for one compile. Empty means the
/// preferred path succeeded at every stage.
struct DegradationReport {
  std::vector<DegradationStep> Steps;

  bool degraded() const { return !Steps.empty(); }
  bool hasStage(Stage S) const {
    for (const DegradationStep &St : Steps)
      if (St.Where == S)
        return true;
    return false;
  }
  void record(Stage Where, std::string Reason, std::string Action) {
    Steps.push_back(
        DegradationStep{Where, std::move(Reason), std::move(Action)});
  }
  /// Human-readable rendering, one "stage: reason -> action" line per step.
  std::string str() const;
};

} // namespace akg

#endif // AKG_SUPPORT_DIAG_H
