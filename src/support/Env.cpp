//===- support/Env.cpp - Race-free environment access ---------------------===//

#include "support/Env.h"

#include <cstdlib>
#include <mutex>

namespace akg {
namespace env {

namespace {
std::mutex &lock() {
  static std::mutex M;
  return M;
}
} // namespace

std::optional<std::string> get(const char *Name) {
  std::lock_guard<std::mutex> G(lock());
  const char *V = std::getenv(Name);
  if (!V)
    return std::nullopt;
  return std::string(V);
}

bool isSet(const char *Name) { return get(Name).has_value(); }

int64_t getInt(const char *Name, int64_t Default) {
  std::optional<std::string> V = get(Name);
  if (!V || V->empty())
    return Default;
  char *End = nullptr;
  long long N = std::strtoll(V->c_str(), &End, 10);
  if (End == V->c_str() || (End && *End != '\0'))
    return Default;
  return static_cast<int64_t>(N);
}

void set(const char *Name, const std::string &Value) {
  std::lock_guard<std::mutex> G(lock());
  ::setenv(Name, Value.c_str(), /*overwrite=*/1);
}

void unset(const char *Name) {
  std::lock_guard<std::mutex> G(lock());
  ::unsetenv(Name);
}

} // namespace env
} // namespace akg
