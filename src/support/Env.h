//===- support/Env.h - Race-free environment access -------------*- C++ -*-===//
//
// The compile pipeline consults a handful of environment knobs
// (AKG_STATS, AKG_FAIL_STAGE, AKG_THREADS). POSIX getenv/setenv are not
// safe against each other across threads, and the compile service runs
// many compiles concurrently while tests flip fault-injection variables
// between compiles. All reads and writes therefore go through this
// mutex-guarded accessor; nothing in the library calls ::getenv or
// ::setenv directly.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_ENV_H
#define AKG_SUPPORT_ENV_H

#include <optional>
#include <string>

namespace akg {
namespace env {

/// Value of \p Name, or nullopt when unset. Copies the value out under
/// the lock so the caller never holds a pointer into the environment.
std::optional<std::string> get(const char *Name);

/// True when \p Name is set (to anything, including "").
bool isSet(const char *Name);

/// Integer value of \p Name, or \p Default when unset/unparsable.
int64_t getInt(const char *Name, int64_t Default);

/// Mutators for tests and tools. They take the same lock as get(), so a
/// concurrent reader sees either the old or the new value, never a torn
/// one. Production code should treat the environment as read-only.
void set(const char *Name, const std::string &Value);
void unset(const char *Name);

} // namespace env
} // namespace akg

#endif // AKG_SUPPORT_ENV_H
