//===- support/Matrix.cpp -------------------------------------------------===//

#include "support/Matrix.h"

#include <sstream>

namespace akg {

void Matrix::addRow(const std::vector<Rational> &Row) {
  if (Rows == 0 && Cols == 0)
    Cols = static_cast<unsigned>(Row.size());
  assert(Row.size() == Cols && "row length mismatch");
  Data.insert(Data.end(), Row.begin(), Row.end());
  ++Rows;
}

Matrix Matrix::identity(unsigned N) {
  Matrix M(N, N);
  for (unsigned I = 0; I < N; ++I)
    M.at(I, I) = Rational(1);
  return M;
}

/// Row-reduces \p M in place and returns the pivot column of each pivot row.
static std::vector<unsigned> rowReduce(Matrix &M) {
  std::vector<unsigned> PivotCols;
  unsigned PivotRow = 0;
  for (unsigned C = 0; C < M.cols() && PivotRow < M.rows(); ++C) {
    // Find a pivot in column C at or below PivotRow.
    unsigned Sel = PivotRow;
    while (Sel < M.rows() && M.at(Sel, C).isZero())
      ++Sel;
    if (Sel == M.rows())
      continue;
    // Swap rows Sel and PivotRow.
    if (Sel != PivotRow)
      for (unsigned K = 0; K < M.cols(); ++K)
        std::swap(M.at(Sel, K), M.at(PivotRow, K));
    // Normalize pivot row.
    Rational Piv = M.at(PivotRow, C);
    for (unsigned K = 0; K < M.cols(); ++K)
      M.at(PivotRow, K) /= Piv;
    // Eliminate everywhere else.
    for (unsigned R = 0; R < M.rows(); ++R) {
      if (R == PivotRow || M.at(R, C).isZero())
        continue;
      Rational F = M.at(R, C);
      for (unsigned K = 0; K < M.cols(); ++K)
        M.at(R, K) -= F * M.at(PivotRow, K);
    }
    PivotCols.push_back(C);
    ++PivotRow;
  }
  return PivotCols;
}

unsigned Matrix::rank() const {
  Matrix Copy = *this;
  return static_cast<unsigned>(rowReduce(Copy).size());
}

Matrix Matrix::inverse() const {
  assert(Rows == Cols && "inverse of non-square matrix");
  // Augment with the identity and row-reduce.
  Matrix Aug(Rows, 2 * Cols);
  for (unsigned R = 0; R < Rows; ++R) {
    for (unsigned C = 0; C < Cols; ++C)
      Aug.at(R, C) = at(R, C);
    Aug.at(R, Cols + R) = Rational(1);
  }
  std::vector<unsigned> Pivots = rowReduce(Aug);
  assert(Pivots.size() == Rows && "matrix is singular");
  for (unsigned I = 0; I < Pivots.size(); ++I)
    assert(Pivots[I] == I && "matrix is singular");
  Matrix Inv(Rows, Cols);
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C)
      Inv.at(R, C) = Aug.at(R, Cols + C);
  return Inv;
}

Matrix Matrix::multiply(const Matrix &O) const {
  assert(Cols == O.Rows && "dimension mismatch in matrix product");
  Matrix P(Rows, O.Cols);
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned K = 0; K < Cols; ++K) {
      if (at(R, K).isZero())
        continue;
      for (unsigned C = 0; C < O.Cols; ++C)
        P.at(R, C) += at(R, K) * O.at(K, C);
    }
  return P;
}

std::vector<Rational> Matrix::apply(const std::vector<Rational> &V) const {
  assert(V.size() == Cols && "dimension mismatch in matrix apply");
  std::vector<Rational> R(Rows);
  for (unsigned I = 0; I < Rows; ++I)
    for (unsigned C = 0; C < Cols; ++C)
      R[I] += at(I, C) * V[C];
  return R;
}

Matrix Matrix::nullSpace() const {
  Matrix Copy = *this;
  std::vector<unsigned> Pivots = rowReduce(Copy);
  std::vector<bool> IsPivot(Cols, false);
  for (unsigned P : Pivots)
    IsPivot[P] = true;
  Matrix Basis;
  for (unsigned Free = 0; Free < Cols; ++Free) {
    if (IsPivot[Free])
      continue;
    std::vector<Rational> Vec(Cols);
    Vec[Free] = Rational(1);
    for (unsigned I = 0; I < Pivots.size(); ++I)
      Vec[Pivots[I]] = -Copy.at(I, Free);
    Basis.addRow(Vec);
  }
  if (Basis.rows() == 0)
    Basis = Matrix(0, Cols);
  return Basis;
}

Matrix Matrix::orthogonalComplement() const {
  // h is orthogonal to the row space iff M h^T = 0, i.e. h is in the null
  // space of M.
  return nullSpace();
}

std::string Matrix::str() const {
  std::ostringstream OS;
  for (unsigned R = 0; R < Rows; ++R) {
    OS << "[";
    for (unsigned C = 0; C < Cols; ++C)
      OS << (C ? ", " : "") << at(R, C).str();
    OS << "]\n";
  }
  return OS.str();
}

} // namespace akg
