//===- support/Matrix.h - Exact rational matrices ---------------*- C++ -*-===//
//
// Dense rational matrices with the linear-algebra kernels the scheduler
// needs: Gaussian elimination, rank, inverse, null space and the orthogonal
// complement used by Pluto's linear-independence constraints.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_MATRIX_H
#define AKG_SUPPORT_MATRIX_H

#include "support/Rational.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace akg {

/// A dense matrix of exact rationals.
class Matrix {
public:
  Matrix() : Rows(0), Cols(0) {}
  Matrix(unsigned Rows, unsigned Cols)
      : Rows(Rows), Cols(Cols), Data(size_t(Rows) * Cols) {}

  unsigned rows() const { return Rows; }
  unsigned cols() const { return Cols; }

  Rational &at(unsigned R, unsigned C) {
    assert(R < Rows && C < Cols && "matrix index out of range");
    return Data[size_t(R) * Cols + C];
  }
  const Rational &at(unsigned R, unsigned C) const {
    assert(R < Rows && C < Cols && "matrix index out of range");
    return Data[size_t(R) * Cols + C];
  }

  /// Appends a row; its length must match the column count (or define it for
  /// an empty matrix).
  void addRow(const std::vector<Rational> &Row);

  static Matrix identity(unsigned N);

  /// Rank via Gaussian elimination on a copy.
  unsigned rank() const;

  /// Inverse of a square full-rank matrix; asserts otherwise.
  Matrix inverse() const;

  /// Matrix product.
  Matrix multiply(const Matrix &O) const;

  /// Applies the matrix to a vector.
  std::vector<Rational> apply(const std::vector<Rational> &V) const;

  /// Returns a basis (as rows) of the space orthogonal to the row space of
  /// this matrix, i.e. all h with M h^T = 0. Used for Pluto's
  /// linear-independence constraints: any vector with a nonzero component in
  /// this subspace is independent of the rows found so far.
  Matrix orthogonalComplement() const;

  /// Returns a basis (as rows) of the null space {x : M x = 0}.
  Matrix nullSpace() const;

  std::string str() const;

private:
  unsigned Rows;
  unsigned Cols;
  std::vector<Rational> Data;
};

} // namespace akg

#endif // AKG_SUPPORT_MATRIX_H
