//===- support/Rational.cpp -----------------------------------------------===//

#include "support/Rational.h"

#include <algorithm>

namespace akg {

std::string int128ToString(Int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  // Careful with INT128_MIN: negate digit by digit instead.
  std::string Digits;
  while (V != 0) {
    int D = static_cast<int>(V % 10);
    if (D < 0)
      D = -D;
    Digits.push_back(static_cast<char>('0' + D));
    V /= 10;
  }
  if (Neg)
    Digits.push_back('-');
  std::reverse(Digits.begin(), Digits.end());
  return Digits;
}

std::string Rational::str() const {
  if (Den == 1)
    return int128ToString(Num);
  return int128ToString(Num) + "/" + int128ToString(Den);
}

} // namespace akg
