//===- support/Rational.h - Exact rational arithmetic -----------*- C++ -*-===//
//
// Part of the AKG-repro project. Exact rationals backed by __int128 used by
// the LP/ILP solver and all polyhedral computations. Magnitude overflow
// throws RationalOverflow; LP entry points catch it and report the problem
// as too hard instead of aborting the compiler (the polyhedral problems AKG
// generates are small, but adversarial or degenerate inputs are not).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_RATIONAL_H
#define AKG_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <exception>
#include <string>

namespace akg {

using Int128 = __int128;

/// Thrown when a rational's magnitude leaves the range where subsequent
/// 128-bit multiplies are guaranteed exact. Recoverable: callers treat the
/// enclosing LP/ILP problem as infeasible-to-solve ("too hard").
class RationalOverflow : public std::exception {
public:
  const char *what() const noexcept override {
    return "rational magnitude overflow";
  }
};

/// Greatest common divisor of two non-negative 128-bit integers.
inline Int128 gcd128(Int128 A, Int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    Int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// An exact rational number with 128-bit numerator and denominator.
///
/// The denominator is kept strictly positive and the fraction is always in
/// lowest terms, so equality is structural.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t V) : Num(V), Den(1) {}
  Rational(Int128 N, Int128 D) : Num(N), Den(D) { normalize(); }

  Int128 num() const { return Num; }
  Int128 den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }

  /// Returns the value as int64; the value must be an integer in range.
  int64_t getInt64() const {
    assert(isInteger() && "rational is not an integer");
    assert(Num <= INT64_MAX && Num >= INT64_MIN && "int64 overflow");
    return static_cast<int64_t>(Num);
  }

  /// Largest integer <= this.
  Rational floor() const {
    Int128 Q = Num / Den;
    if (Num % Den != 0 && Num < 0)
      --Q;
    return Rational(Q, 1);
  }

  /// Smallest integer >= this.
  Rational ceil() const {
    Int128 Q = Num / Den;
    if (Num % Den != 0 && Num > 0)
      ++Q;
    return Rational(Q, 1);
  }

  Rational operator-() const { return Rational(-Num, Den); }
  Rational operator+(const Rational &O) const {
    return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
  }
  Rational operator-(const Rational &O) const {
    return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
  }
  Rational operator*(const Rational &O) const {
    return Rational(Num * O.Num, Den * O.Den);
  }
  Rational operator/(const Rational &O) const {
    assert(O.Num != 0 && "division by zero rational");
    return Rational(Num * O.Den, Den * O.Num);
  }
  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return Num < O.Num;
    return Num * O.Den < O.Num * Den;
  }
  bool operator<=(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return Num <= O.Num;
    return Num * O.Den <= O.Num * Den;
  }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return O <= *this; }

  double toDouble() const {
    return static_cast<double>(Num) / static_cast<double>(Den);
  }

  std::string str() const;

private:
  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    // Guard against silent overflow on subsequent multiplies; recoverable
    // (the solver abandons the problem rather than computing garbage).
    const Int128 Limit = Int128(1) << 100;
    if (Num == 0) {
      Den = 1;
      return;
    }
    // Integers need no gcd pass; every arithmetic op funnels through here,
    // and integer-by-integer is by far the most common case.
    if (Den != 1) {
      Int128 G = gcd128(Num, Den);
      if (G > 1) {
        Num /= G;
        Den /= G;
      }
    }
    if (!(Num < Limit && Num > -Limit && Den < Limit))
      throw RationalOverflow();
  }

  Int128 Num;
  Int128 Den;
};

/// Renders a (possibly 128-bit) integer in decimal.
std::string int128ToString(Int128 V);

} // namespace akg

#endif // AKG_SUPPORT_RATIONAL_H
