//===- support/Serialize.h - Bounds-checked byte (de)serialization -*- C++ -*-//
//
// Little-endian fixed-width byte streams for the on-disk kernel store
// (akg/KernelStore). The writer appends to a std::string; the reader is
// strictly bounds-checked and never throws: any out-of-range read flips
// a sticky failure bit and returns zero values, so a truncated or
// corrupted entry degrades to "deserialization failed" instead of UB.
// Check ok() once at the end rather than after every field.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_SERIALIZE_H
#define AKG_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>

namespace akg {

class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void f64(double V) {
    uint64_t U;
    std::memcpy(&U, &V, sizeof U);
    u64(U);
  }
  void b(bool V) { u8(V ? 1 : 0); }
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S);
  }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  void raw(const void *P, size_t N) {
    Buf.append(reinterpret_cast<const char *>(P), N);
  }
  std::string Buf;
};

class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(const std::string &S) : ByteReader(S.data(), S.size()) {}

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64() {
    uint64_t U = u64();
    double V = 0;
    std::memcpy(&V, &U, sizeof V);
    return V;
  }
  bool b() { return u8() != 0; }
  std::string str() {
    uint64_t N = u64();
    if (!Good || N > static_cast<size_t>(End - P)) {
      Good = false;
      return std::string();
    }
    std::string S(P, N);
    P += N;
    return S;
  }

  /// An enum read with range validation: values past \p MaxInclusive
  /// poison the stream (a corrupted entry must not materialize an
  /// out-of-range enum).
  template <class E> E enumOf(uint8_t MaxInclusive) {
    uint8_t V = u8();
    if (V > MaxInclusive) {
      Good = false;
      V = 0;
    }
    return static_cast<E>(V);
  }

  /// Guard for loop counts read from the stream: a hostile or torn
  /// length must not drive a multi-gigabyte allocation. Every element
  /// costs at least \p MinBytesPer bytes of remaining payload.
  bool fits(uint64_t Count, size_t MinBytesPer) {
    if (!Good || Count > static_cast<size_t>(End - P) / MinBytesPer) {
      Good = false;
      return false;
    }
    return true;
  }

  bool ok() const { return Good; }
  bool atEnd() const { return P == End; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

private:
  void raw(void *V, size_t N) {
    if (!Good || N > static_cast<size_t>(End - P)) {
      Good = false;
      return;
    }
    std::memcpy(V, P, N);
    P += N;
  }
  const char *P;
  const char *End;
  bool Good = true;
};

} // namespace akg

#endif // AKG_SUPPORT_SERIALIZE_H
