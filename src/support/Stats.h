//===- support/Stats.h - Lightweight internal statistics --------*- C++ -*-===//
//
// Counters and accumulated timers for compiler-internal diagnostics,
// printed when AKG_STATS=1 is set in the environment. Used to keep the
// ILP-heavy scheduling paths honest about where compile time goes (the
// paper discusses compilation-time budgets in Sec 8).
//
// The singleton is shared by every compile in the process, including the
// concurrent compiles of the compile service, so all mutation happens
// under a mutex. ScopedTimer measures unconditionally cheap (two clock
// reads) and only takes the lock when stats are enabled.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_STATS_H
#define AKG_SUPPORT_STATS_H

#include "support/Env.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace akg {

class Stats {
public:
  static Stats &get() {
    // Intentionally leaked: the constructor registers an atexit printer,
    // which would otherwise run after this object's own static
    // destructor (atexit handlers run in reverse registration order) and
    // iterate destructed maps.
    static Stats *S = new Stats();
    return *S;
  }

  void add(const std::string &Key, int64_t N = 1) {
    std::lock_guard<std::mutex> G(Lock);
    Counters[Key] += N;
  }
  void addTime(const std::string &Key, double Seconds) {
    std::lock_guard<std::mutex> G(Lock);
    Timers[Key] += Seconds;
  }

  /// Current value of a counter (0 when never touched).
  int64_t counter(const std::string &Key) const {
    std::lock_guard<std::mutex> G(Lock);
    auto It = Counters.find(Key);
    return It == Counters.end() ? 0 : It->second;
  }
  /// Accumulated seconds of a timer (0 when never touched).
  double timer(const std::string &Key) const {
    std::lock_guard<std::mutex> G(Lock);
    auto It = Timers.find(Key);
    return It == Timers.end() ? 0 : It->second;
  }

  /// Point-in-time copy of every counter, for before/after diffing around
  /// a pipeline pass (the compile trace records the deltas). Counters are
  /// process-global, so deltas taken while other compiles run concurrently
  /// include their activity too - best-effort attribution by design.
  std::map<std::string, int64_t> snapshotCounters() const {
    std::lock_guard<std::mutex> G(Lock);
    return Counters;
  }

  /// The counters that moved between two snapshots, sorted by name:
  /// (key, after - before) pairs, omitting unchanged keys.
  static std::vector<std::pair<std::string, int64_t>>
  diffCounters(const std::map<std::string, int64_t> &Before,
               const std::map<std::string, int64_t> &After) {
    std::vector<std::pair<std::string, int64_t>> Delta;
    for (const auto &[K, V] : After) {
      auto It = Before.find(K);
      int64_t D = V - (It == Before.end() ? 0 : It->second);
      if (D != 0)
        Delta.emplace_back(K, D);
    }
    return Delta;
  }

  /// Counters print sorted by name; timers print sorted by descending
  /// accumulated time so the profile reads as a flame-summary.
  void print() const {
    std::map<std::string, int64_t> C;
    std::vector<std::pair<std::string, double>> T;
    {
      std::lock_guard<std::mutex> G(Lock);
      C = Counters;
      T.assign(Timers.begin(), Timers.end());
    }
    std::stable_sort(T.begin(), T.end(),
                     [](const auto &A, const auto &B) {
                       return A.second > B.second;
                     });
    std::fprintf(stderr, "--- akg stats ---\n");
    for (const auto &[K, V] : C)
      std::fprintf(stderr, "%-40s %" PRId64 "\n", K.c_str(), V);
    for (const auto &[K, V] : T)
      std::fprintf(stderr, "%-40s %10.3fs\n", K.c_str(), V);
  }

  static bool enabled() {
    static bool E = env::isSet("AKG_STATS");
    return E;
  }

private:
  Stats() {
    if (enabled())
      std::atexit([] { Stats::get().print(); });
  }
  mutable std::mutex Lock;
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Timers;
};

/// RAII timer accumulating into a named Stats timer.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Key)
      : Key(Key), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (!Stats::enabled())
      return;
    auto End = std::chrono::steady_clock::now();
    Stats::get().addTime(
        Key, std::chrono::duration<double>(End - Start).count());
    Stats::get().add(std::string(Key) + ".calls");
  }

private:
  const char *Key;
  std::chrono::steady_clock::time_point Start;
};

} // namespace akg

#endif // AKG_SUPPORT_STATS_H
