//===- support/Stats.h - Lightweight internal statistics --------*- C++ -*-===//
//
// Counters and accumulated timers for compiler-internal diagnostics,
// printed when AKG_STATS=1 is set in the environment. Used to keep the
// ILP-heavy scheduling paths honest about where compile time goes (the
// paper discusses compilation-time budgets in Sec 8).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_STATS_H
#define AKG_SUPPORT_STATS_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace akg {

class Stats {
public:
  static Stats &get() {
    static Stats S;
    return S;
  }

  void add(const std::string &Key, int64_t N = 1) { Counters[Key] += N; }
  void addTime(const std::string &Key, double Seconds) {
    Timers[Key] += Seconds;
  }

  void print() const {
    std::fprintf(stderr, "--- akg stats ---\n");
    for (const auto &[K, V] : Counters)
      std::fprintf(stderr, "%-32s %lld\n", K.c_str(),
                   static_cast<long long>(V));
    for (const auto &[K, V] : Timers)
      std::fprintf(stderr, "%-32s %.3fs\n", K.c_str(), V);
  }

  static bool enabled() {
    static bool E = std::getenv("AKG_STATS") != nullptr;
    return E;
  }

private:
  Stats() {
    if (enabled())
      std::atexit([] { Stats::get().print(); });
  }
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Timers;
};

/// RAII timer accumulating into a named Stats timer.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Key)
      : Key(Key), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (!Stats::enabled())
      return;
    auto End = std::chrono::steady_clock::now();
    Stats::get().addTime(
        Key, std::chrono::duration<double>(End - Start).count());
    Stats::get().add(std::string(Key) + ".calls");
  }

private:
  const char *Key;
  std::chrono::steady_clock::time_point Start;
};

} // namespace akg

#endif // AKG_SUPPORT_STATS_H
