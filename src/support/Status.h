//===- support/Status.h - Recoverable-error plumbing ----------------------===//
//
// Structured error codes and budget tracking for the compile pipeline.
// Recoverable failures travel as Status values (or the narrow exception
// types below) instead of assert/abort, so the driver can degrade through
// the fallback ladder and still emit a kernel.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_STATUS_H
#define AKG_SUPPORT_STATUS_H

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace akg {

enum class ErrCode {
  Ok,
  TooHard,           // solver gave up (node budget, branching explosion)
  Timeout,           // wall-clock budget exhausted
  Overflow,          // arithmetic magnitude overflow (see Rational)
  CapacityExceeded,  // on-chip buffers cannot hold the working set
  Unsupported,       // pattern outside the lowering's vocabulary
  FaultInjected,     // testing hook forced this stage to fail
  Internal,          // anything else; still recoverable at the driver
  DeadlineExceeded,  // hard request deadline expired mid-compile
  Cancelled,         // requester cancelled the compile cooperatively
  Overloaded,        // admission control shed the request (queue full)
  Quarantined,       // poison-pill fingerprint failing fast (negative cache)
  Unavailable,       // transient service fault; safe to retry with backoff
  InvalidArgument,   // malformed request payload (composite JSON ingress)
};

inline const char *errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::Ok:
    return "ok";
  case ErrCode::TooHard:
    return "too_hard";
  case ErrCode::Timeout:
    return "timeout";
  case ErrCode::Overflow:
    return "overflow";
  case ErrCode::CapacityExceeded:
    return "capacity_exceeded";
  case ErrCode::Unsupported:
    return "unsupported";
  case ErrCode::FaultInjected:
    return "fault_injected";
  case ErrCode::Internal:
    return "internal";
  case ErrCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrCode::Cancelled:
    return "cancelled";
  case ErrCode::Overloaded:
    return "overloaded";
  case ErrCode::Quarantined:
    return "quarantined";
  case ErrCode::Unavailable:
    return "unavailable";
  case ErrCode::InvalidArgument:
    return "invalid_argument";
  }
  return "?";
}

class Status {
public:
  Status() = default;
  static Status ok() { return Status(); }
  static Status error(ErrCode C, std::string Msg) {
    Status S;
    S.Code = C;
    S.Msg = std::move(Msg);
    return S;
  }
  bool isOk() const { return Code == ErrCode::Ok; }
  explicit operator bool() const { return isOk(); }
  ErrCode code() const { return Code; }
  const std::string &message() const { return Msg; }
  std::string str() const {
    return isOk() ? std::string("ok")
                  : std::string(errCodeName(Code)) + ": " + Msg;
  }

private:
  ErrCode Code = ErrCode::Ok;
  std::string Msg;
};

/// Per-compile resource budgets. Zero means "unlimited / solver default".
struct CompileBudget {
  /// Wall-clock deadline for the whole compile; stages that notice the
  /// deadline expired degrade instead of continuing.
  double DeadlineSeconds = 0;
  /// Branch-and-bound node budget threaded into the ILP solver.
  int64_t IlpNodeBudget = 0;
};

/// Steady-clock deadline; default-constructed (or zero-second) deadlines
/// never expire.
class Deadline {
public:
  Deadline() = default;
  explicit Deadline(double Seconds) {
    if (Seconds > 0) {
      Armed = true;
      End = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(Seconds));
    }
  }
  bool expired() const {
    return Armed && std::chrono::steady_clock::now() >= End;
  }

private:
  bool Armed = false;
  std::chrono::steady_clock::time_point End;
};

} // namespace akg

#endif // AKG_SUPPORT_STATUS_H
