//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// A minimal fixed-size thread pool for the compile service: a bounded
// set of workers draining one FIFO queue of tasks. No work stealing, no
// dynamic resizing - compile jobs are coarse (whole-module compiles or
// tuner measurements), so a single locked queue is never the bottleneck
// and keeps the dispatch order deterministic.
//
// A pool of size <= 1 degenerates to inline execution on the calling
// thread: submit() runs the task immediately. This keeps the sequential
// configuration byte-for-byte identical to the pre-service code path and
// makes "1 thread vs N threads" comparisons honest.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_THREADPOOL_H
#define AKG_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace akg {

class ThreadPool {
public:
  explicit ThreadPool(unsigned Threads) {
    if (Threads <= 1)
      return; // inline mode
    Workers.reserve(Threads);
    for (unsigned I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  ~ThreadPool() { shutdown(/*Drain=*/true); }

  /// Stops the pool and joins the workers. Drain=true runs every queued
  /// job first (the destructor's behavior); Drain=false abandons queued
  /// jobs - the futures of abandoned submit()s report broken_promise.
  /// Idempotent, and safe against concurrent submit()/post(): work
  /// arriving after shutdown started runs inline on the caller.
  void shutdown(bool Drain = true) {
    {
      std::lock_guard<std::mutex> G(Lock);
      Stopping = true;
      if (!Drain)
        Queue.clear();
    }
    Wake.notify_all();
    std::lock_guard<std::mutex> J(JoinLock);
    for (std::thread &W : Workers)
      if (W.joinable())
        W.join();
  }

  /// Number of worker threads (0 = inline execution).
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn and returns a future for its result. Exceptions
  /// propagate through the future. In inline mode (and after shutdown)
  /// the task runs before submit() returns.
  template <typename Fn>
  std::future<std::invoke_result_t<Fn>> submit(Fn &&F) {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    bool Inline = Workers.empty();
    if (!Inline) {
      std::lock_guard<std::mutex> G(Lock);
      if (Stopping)
        Inline = true; // shut down: run on the caller instead of dropping
      else
        Queue.emplace_back([Task] { (*Task)(); });
    }
    if (Inline) {
      (*Task)();
      return Fut;
    }
    Wake.notify_one();
    return Fut;
  }

  /// Fire-and-forget: enqueues \p Fn with no future. A throw from a
  /// posted job is swallowed by the worker loop (there is no future to
  /// carry it), never killing the worker. Inline mode (and a shut-down
  /// pool) runs the job on the caller.
  void post(std::function<void()> Fn) {
    bool Inline = Workers.empty();
    if (!Inline) {
      std::lock_guard<std::mutex> G(Lock);
      if (Stopping)
        Inline = true;
      else
        Queue.emplace_back(std::move(Fn));
    }
    if (Inline) {
      try {
        Fn();
      } catch (...) {
      }
      return;
    }
    Wake.notify_one();
  }

private:
  void workerLoop() {
    for (;;) {
      std::function<void()> Task;
      {
        std::unique_lock<std::mutex> G(Lock);
        Wake.wait(G, [this] { return Stopping || !Queue.empty(); });
        if (Queue.empty())
          return; // Stopping and drained
        Task = std::move(Queue.front());
        Queue.pop_front();
      }
      // Exception-safe worker: submit() jobs trap exceptions in their
      // packaged_task, but a throwing post() job must not terminate the
      // process (an escaped exception on a thread calls std::terminate)
      // or kill this worker.
      try {
        Task();
      } catch (...) {
      }
    }
  }

  std::vector<std::thread> Workers;
  std::mutex Lock;
  std::mutex JoinLock; // serializes concurrent shutdown() calls
  std::condition_variable Wake;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
};

/// Runs Fn(0..N-1) across \p Threads workers and waits for all of them.
/// With Threads <= 1 the calls run inline, in index order. Exceptions
/// from any index are rethrown (first index wins) after all complete.
template <typename Fn>
inline void parallelFor(unsigned Threads, size_t N, Fn &&F) {
  if (Threads <= 1 || N <= 1) {
    for (size_t I = 0; I < N; ++I)
      F(I);
    return;
  }
  ThreadPool Pool(Threads);
  std::vector<std::future<void>> Futs;
  Futs.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Futs.push_back(Pool.submit([&F, I] { F(I); }));
  std::exception_ptr First;
  for (std::future<void> &Fu : Futs) {
    try {
      Fu.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

} // namespace akg

#endif // AKG_SUPPORT_THREADPOOL_H
