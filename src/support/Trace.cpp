//===- support/Trace.cpp - Structured per-compile traces ------------------===//

#include "support/Trace.h"

#include "support/Env.h"
#include "support/Stats.h"

#include <cmath>
#include <cstdio>
#include <mutex>

namespace akg {

double CompileTrace::passSeconds(const std::string &Pass) const {
  double S = 0;
  for (const TraceEvent &E : Events)
    if (E.Pass == Pass)
      S += E.WallSeconds;
  return S;
}

const TraceEvent *CompileTrace::find(const std::string &Pass) const {
  for (const TraceEvent &E : Events)
    if (E.Pass == Pass)
      return &E;
  return nullptr;
}

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
}

std::string quoted(const std::string &S) {
  std::string Out = "\"";
  appendEscaped(Out, S);
  Out += '"';
  return Out;
}

std::string numText(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof Buf, "%.9g", V);
  return Buf;
}

} // namespace

std::string CompileTrace::json() const {
  std::string Out = "{\"kernel\": " + quoted(Kernel) +
                    ", \"total_seconds\": " + numText(TotalSeconds) +
                    ", \"cache_hit\": " + (CacheHit ? "true" : "false");
  if (!Target.empty())
    Out += ", \"target\": " + quoted(Target);
  if (!Outcome.empty())
    Out += ", \"outcome\": " + quoted(Outcome);
  Out += ", \"events\": [";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    if (I)
      Out += ", ";
    Out += "{\"pass\": " + quoted(E.Pass) +
           ", \"stage\": " + quoted(stageName(E.Id)) +
           ", \"attempt\": " + std::to_string(E.Attempt) +
           ", \"retry\": " + std::to_string(E.Retry) +
           ", \"wall_seconds\": " + numText(E.WallSeconds) + ", \"counters\": {";
    for (size_t J = 0; J < E.Counters.size(); ++J)
      Out += (J ? ", " : "") + quoted(E.Counters[J].first) + ": " +
             std::to_string(E.Counters[J].second);
    Out += "}, \"degradations\": [";
    for (size_t J = 0; J < E.Degradations.size(); ++J) {
      const DegradationStep &D = E.Degradations[J];
      Out += (J ? ", " : "");
      Out += "{\"stage\": " + quoted(stageName(D.Where)) +
             ", \"reason\": " + quoted(D.Reason) +
             ", \"action\": " + quoted(D.Action) + "}";
    }
    Out += "]";
    if (!E.Note.empty())
      Out += ", \"note\": " + quoted(E.Note);
    if (!E.Snapshot.empty())
      Out += ", \"snapshot\": " + quoted(E.Snapshot);
    Out += "}";
  }
  Out += "]}";
  return Out;
}

std::string CompileTrace::str() const {
  char Buf[192];
  std::snprintf(Buf, sizeof Buf,
                "compile trace: kernel=%s%s%s total=%.3fms events=%zu%s%s%s\n",
                Kernel.c_str(), Target.empty() ? "" : " target=",
                Target.empty() ? "" : Target.c_str(), TotalSeconds * 1e3,
                Events.size(), CacheHit ? " (cache hit)" : "",
                Outcome.empty() ? "" : " outcome=",
                Outcome.empty() ? "" : Outcome.c_str());
  std::string Out = Buf;
  for (const TraceEvent &E : Events) {
    std::snprintf(Buf, sizeof Buf, "  a%u r%-2u %-16s %9.3fms", E.Attempt,
                  E.Retry, E.Pass.c_str(), E.WallSeconds * 1e3);
    Out += Buf;
    if (!E.Counters.empty()) {
      Out += "  [";
      for (size_t J = 0; J < E.Counters.size(); ++J)
        Out += (J ? ", " : "") + E.Counters[J].first +
               (E.Counters[J].second >= 0 ? "+" : "") +
               std::to_string(E.Counters[J].second);
      Out += "]";
    }
    if (!E.Note.empty())
      Out += "  note: " + E.Note;
    Out += "\n";
    for (const DegradationStep &D : E.Degradations)
      Out += std::string("         ! ") + stageName(D.Where) + ": " +
             D.Reason + " -> " + D.Action + "\n";
  }
  return Out;
}

namespace trace {

bool snapshotsEnabled() { return env::isSet("AKG_TRACE_SNAPSHOTS"); }

namespace {
// One mutex for every diagnostic sink - trace dumps and debugEcho lines -
// so chaos-run logs interleave as whole lines, never torn ones.
std::mutex &dumpLock() {
  static std::mutex M;
  return M;
}
} // namespace

void maybeDump(const CompileTrace &T) {
  std::optional<std::string> Dest = env::get("AKG_TRACE");
  if (!Dest || Dest->empty())
    return;
  std::lock_guard<std::mutex> G(dumpLock());
  if (*Dest == "-") {
    std::string S = T.str();
    std::fwrite(S.data(), 1, S.size(), stderr);
    return;
  }
  std::FILE *F = std::fopen(Dest->c_str(), "a");
  if (!F) {
    std::fprintf(stderr, "AKG_TRACE: cannot open %s\n", Dest->c_str());
    return;
  }
  std::string Line = T.json() + "\n";
  std::fwrite(Line.data(), 1, Line.size(), F);
  std::fclose(F);
}

void debugEcho(const std::string &Line) {
  if (!Stats::enabled())
    return;
  std::lock_guard<std::mutex> G(dumpLock());
  std::fprintf(stderr, "%s\n", Line.c_str());
}

} // namespace trace

} // namespace akg
