//===- support/Trace.h - Structured per-compile traces ----------*- C++ -*-===//
//
// Every compile records what the pass pipeline actually did: one
// TraceEvent per executed pass (wall time, Stats counter deltas,
// degradation steps recorded during the pass, an optional IR /
// schedule-tree snapshot) plus synthetic events from the pipeline
// controllers (retile decisions of the tile-halving ladder, fusion
// rejection, fault injection) and the kernel cache (hit / coalesced).
// The trace rides on CompileResult, so callers - the compile service,
// the tuner, the fuzzer - get it for free with every kernel.
//
// AKG_TRACE=<path> appends each compile's trace to <path> as one JSON
// object per line (JSONL; schema in DESIGN.md 4g, validated by
// tools/check_trace.py); AKG_TRACE=- prints the human-readable rendering
// to stderr instead. AKG_TRACE_SNAPSHOTS=1 additionally embeds module /
// schedule-tree snapshots in the events that declare one.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_SUPPORT_TRACE_H
#define AKG_SUPPORT_TRACE_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace akg {

/// One pass (or controller decision) of one compile.
struct TraceEvent {
  std::string Pass;        // pass / event name ("schedule", "retile", ...)
  Stage Id = Stage::None;  // the fault-injection stage this pass owns
  unsigned Attempt = 0;    // fusion-rejection attempt index
  unsigned Retry = 0;      // tile-halving retry index
  double WallSeconds = 0;
  /// Stats counters that moved while the pass ran (best-effort under
  /// concurrent compiles: the counters are process-global).
  std::vector<std::pair<std::string, int64_t>> Counters;
  /// Degradation steps recorded during this pass.
  std::vector<DegradationStep> Degradations;
  /// Free-form detail: the capacity error, the retile decision, ...
  std::string Note;
  /// Optional IR / schedule-tree snapshot (AKG_TRACE_SNAPSHOTS=1).
  std::string Snapshot;
};

/// The full trace of one compile request.
struct CompileTrace {
  std::string Kernel;  // kernel name the compile ran under
  /// Target the compile lowered for ("cce", "simt"); emitted as the
  /// "target" key of the JSONL line. Empty on traces predating the
  /// target layer (readers treat that as "cce").
  std::string Target;
  double TotalSeconds = 0;
  bool CacheHit = false;  // served from the kernel cache
  /// Terminal outcome code ("ok" implied when empty): "deadline_exceeded",
  /// "cancelled", "overloaded", "quarantined", "unavailable". Emitted
  /// into the JSONL line so chaos-run logs can be audited offline.
  std::string Outcome;
  std::vector<TraceEvent> Events;

  /// Sum of WallSeconds over events named \p Pass.
  double passSeconds(const std::string &Pass) const;
  /// First event named \p Pass, or null.
  const TraceEvent *find(const std::string &Pass) const;

  /// One-line JSON object (the AKG_TRACE=<path> format).
  std::string json() const;
  /// Human-readable multi-line rendering (the AKG_TRACE=- format).
  std::string str() const;
};

namespace trace {

/// True when AKG_TRACE_SNAPSHOTS is set (sampled per compile).
bool snapshotsEnabled();

/// Honors AKG_TRACE: "-" prints \p T human-readably to stderr, any other
/// value appends T.json() as one line to that file (serialized under a
/// process-wide mutex so concurrent compiles interleave whole lines).
/// No-op when AKG_TRACE is unset.
void maybeDump(const CompileTrace &T);

/// Debug echo to stderr, gated on AKG_STATS like the legacy inline
/// fprintf diagnostics this layer replaces (e.g. the retile messages).
void debugEcho(const std::string &Line);

} // namespace trace

} // namespace akg

#endif // AKG_SUPPORT_TRACE_H
