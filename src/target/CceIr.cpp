//===- target/CceIr.cpp - CCE instruction-level IR ------------------------===//

#include "target/CceIr.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

namespace akg {
namespace cce {

InstrPtr makeLoop(std::string Var, ir::Expr Min, ir::Expr Extent) {
  auto I = std::make_shared<Instr>();
  I->Kind = InstrKind::Loop;
  I->Var = std::move(Var);
  I->Min = std::move(Min);
  I->Extent = std::move(Extent);
  return I;
}

InstrPtr makeDma(sim::Pipe P, ir::Stmt Sem, int64_t Bytes, int64_t Bursts,
                 std::string Label) {
  auto I = std::make_shared<Instr>();
  I->Kind = InstrKind::Dma;
  I->Pipe = P;
  I->Sem = std::move(Sem);
  I->Bytes = Bytes;
  I->Bursts = std::max<int64_t>(Bursts, 1);
  I->Label = std::move(Label);
  return I;
}

InstrPtr makeCompute(InstrKind Kind, sim::Pipe P, ir::Stmt Sem,
                     int64_t Elems, std::string Label) {
  auto I = std::make_shared<Instr>();
  I->Kind = Kind;
  I->Pipe = P;
  I->Sem = std::move(Sem);
  I->Elems = Elems;
  I->Label = std::move(Label);
  return I;
}

InstrPtr makeSetFlag(sim::Pipe Src, unsigned EventId) {
  auto I = std::make_shared<Instr>();
  I->Kind = InstrKind::SetFlag;
  I->Pipe = Src;
  I->EventId = EventId;
  return I;
}

InstrPtr makeWaitFlag(sim::Pipe Self, sim::Pipe Src, unsigned EventId,
                      unsigned Depth) {
  auto I = std::make_shared<Instr>();
  I->Kind = InstrKind::WaitFlag;
  I->Pipe = Self;
  I->WaitSrc = Src;
  I->EventId = EventId;
  I->Depth = Depth;
  return I;
}

InstrPtr makeBarrier() {
  auto I = std::make_shared<Instr>();
  I->Kind = InstrKind::Barrier;
  return I;
}

static void countInList(const std::vector<InstrPtr> &L, InstrKind Kind,
                        unsigned &N) {
  for (const InstrPtr &I : L) {
    if (I->Kind == Kind)
      ++N;
    countInList(I->Body, Kind, N);
  }
}

unsigned countInstrs(const Kernel &K, InstrKind Kind) {
  unsigned N = 0;
  countInList(K.Body, Kind, N);
  return N;
}

namespace {

void joinNames(std::ostringstream &OS, const std::vector<std::string> &V) {
  for (unsigned I = 0; I < V.size(); ++I)
    OS << (I ? "," : "") << V[I];
}

void printInstr(std::ostringstream &OS, const Instr &I, unsigned Ind,
                bool Simt = false) {
  std::string Pad(Ind * 2, ' ');
  OS << Pad;
  switch (I.Kind) {
  case InstrKind::Loop:
    OS << "for " << I.Var << " in [" << ir::exprToString(I.Min) << ", +"
       << ir::exprToString(I.Extent) << ")";
    if (!I.MapDim.empty())
      OS << " @" << I.MapDim;
    OS << (I.DoubleBuffered ? (Simt ? " /*cp.async*/" : " /*double_buffer*/")
                            : "")
       << " {\n";
    for (const InstrPtr &C : I.Body)
      printInstr(OS, *C, Ind + 1, Simt);
    OS << Pad << "}\n";
    return;
  case InstrKind::Dma:
    if (Simt)
      OS << (I.Pipe == sim::Pipe::MTE3 ? "cp.shared.global "
                                       : "cp.global.shared ");
    else
      OS << "copy<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::Img2Col:
    OS << "img2col<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::LoadFractal:
    OS << "load2d<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::Mmad:
    OS << "mmad<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::VectorOp:
    if (Simt)
      OS << "simt.threads ";
    else
      OS << "vintr<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::ScalarOp:
    if (Simt)
      OS << "thread.scalar ";
    else
      OS << "scalar<" << sim::pipeName(I.Pipe) << "> ";
    break;
  case InstrKind::SetFlag:
    OS << "set_flag(" << sim::pipeName(I.Pipe) << ", ev" << I.EventId
       << ")\n";
    return;
  case InstrKind::WaitFlag:
    OS << "wait_flag(" << sim::pipeName(I.Pipe) << " <- "
       << sim::pipeName(I.WaitSrc) << ", ev" << I.EventId
       << (I.Depth >= 2 ? ", depth=2" : "") << ")\n";
    return;
  case InstrKind::Barrier:
    OS << (Simt ? "__syncthreads()\n" : "pipe_barrier()\n");
    return;
  }
  if (!I.Label.empty())
    OS << "\"" << I.Label << "\" ";
  if (I.Bytes)
    OS << I.Bytes << "B/" << I.Bursts << (Simt ? "tx " : "bursts ");
  if (I.Elems)
    OS << I.Elems << (I.Fp32 ? " f32" : "") << " elems ";
  if (I.FractalOps)
    OS << I.FractalOps << " fractals ";
  OS << "[";
  joinNames(OS, I.ReadBufs);
  OS << "] -> [";
  joinNames(OS, I.WriteBufs);
  OS << "]\n";
}

} // namespace

void stampExtentRegs(Kernel &K, const ir::Module &SkeletonM) {
  std::map<std::string, ExtentReg> Regs;
  for (const ir::Tensor &T : SkeletonM.allTensors())
    for (unsigned D = 0; D < T->Shape.size(); ++D) {
      const std::string &Sym = T->symOf(D);
      if (Sym.empty())
        continue;
      ExtentReg &R = Regs[Sym];
      R.Symbol = Sym;
      R.Value = T->Shape[D];
      R.Dims.emplace_back(T->Name, D);
    }
  K.ExtentRegs.clear();
  for (auto &[Sym, R] : Regs)
    K.ExtentRegs.push_back(std::move(R));
}

std::string printKernel(const Kernel &K) {
  bool Simt = K.Target == sim::TargetKind::Simt;
  std::ostringstream OS;
  if (Simt) {
    OS << "__simt__ " << K.Name << "<<<" << K.GridBlocks << ", "
       << K.BlockThreads << ">>>(";
    for (unsigned I = 0; I < K.GmTensors.size(); ++I)
      OS << (I ? ", " : "") << "__global__ " << K.GmTensors[I]->Name;
  } else {
    OS << "__aicore__ " << K.Name << "(";
    for (unsigned I = 0; I < K.GmTensors.size(); ++I)
      OS << (I ? ", " : "") << "__gm__ " << K.GmTensors[I]->Name;
  }
  OS << ") {\n";
  for (const ExtentReg &R : K.ExtentRegs) {
    OS << "  .extent_reg " << R.Symbol << " = " << R.Value << " /*";
    for (const auto &[T, D] : R.Dims)
      OS << " " << T << "[" << D << "]";
    OS << " */\n";
  }
  for (const BufferAlloc &B : K.Buffers)
    OS << "  alloc " << B.Name << " : " << sim::bufferName(B.Location)
       << " " << B.bytes() << "B" << (B.DoubleBuffered ? " x2 /*db*/" : "")
       << "\n";
  for (const InstrPtr &I : K.Body)
    printInstr(OS, *I, 1, Simt);
  OS << "}\n";
  return OS.str();
}

namespace {

/// Peak simultaneously-live bytes for memory \p Mem, over program order
/// with loop bodies inlined once (shared by the CCE and SIMT capacity
/// checks below).
int64_t peakLiveBytes(const Kernel &K, sim::Buffer Mem) {
  std::map<std::string, const BufferAlloc *> ByName;
  for (const BufferAlloc &B : K.Buffers)
    ByName[B.Name] = &B;

  // Program order with loop bodies inlined once: a buffer's live interval
  // is [first reference, last reference] over that order. A buffer that is
  // live across a loop's back edge is referenced both before/inside and
  // inside/after the loop, so the interval covers the loop either way.
  std::vector<const Instr *> Flat;
  std::function<void(const std::vector<InstrPtr> &)> Walk =
      [&](const std::vector<InstrPtr> &L) {
        for (const InstrPtr &I : L) {
          if (I->Kind == InstrKind::Loop) {
            Walk(I->Body);
            continue;
          }
          Flat.push_back(I.get());
        }
      };
  Walk(K.Body);

  struct Interval {
    size_t First = 0, Last = 0;
    bool Seen = false;
  };
  std::map<const BufferAlloc *, Interval> Live;
  for (size_t Idx = 0; Idx < Flat.size(); ++Idx) {
    auto Touch = [&](const std::vector<std::string> &Names) {
      for (const std::string &N : Names) {
        auto It = ByName.find(N);
        if (It == ByName.end())
          continue; // GM tensor, not an on-chip allocation
        Interval &Iv = Live[It->second];
        if (!Iv.Seen) {
          Iv.First = Iv.Last = Idx;
          Iv.Seen = true;
        } else {
          Iv.Last = Idx;
        }
      }
    };
    Touch(Flat[Idx]->ReadBufs);
    Touch(Flat[Idx]->WriteBufs);
  }

  std::vector<int64_t> Delta(Flat.size() + 1, 0);
  for (const auto &[B, Iv] : Live) {
    if (B->Location != Mem)
      continue;
    int64_t W = B->bytes() * (B->DoubleBuffered ? 2 : 1);
    Delta[Iv.First] += W;
    Delta[Iv.Last + 1] -= W;
  }
  int64_t Cur = 0, Peak = 0;
  for (int64_t D : Delta) {
    Cur += D;
    Peak = std::max(Peak, Cur);
  }
  return Peak;
}

/// Sweeps each memory in \p Mems; "" when everything fits.
template <size_t N>
std::string checkCapacities(const Kernel &K, const sim::Buffer (&Mems)[N],
                            int64_t (*Capacity)(const void *, sim::Buffer),
                            const void *Spec) {
  for (sim::Buffer Mem : Mems) {
    int64_t Peak = peakLiveBytes(K, Mem);
    if (Peak > Capacity(Spec, Mem)) {
      std::ostringstream OS;
      OS << sim::bufferName(Mem) << " capacity exceeded: peak live "
         << Peak << " bytes > " << Capacity(Spec, Mem);
      return OS.str();
    }
  }
  return "";
}

} // namespace

std::string checkBufferCapacities(const Kernel &K,
                                  const sim::MachineSpec &M) {
  static const sim::Buffer Mems[] = {sim::Buffer::L1, sim::Buffer::UB,
                                     sim::Buffer::L0A, sim::Buffer::L0B,
                                     sim::Buffer::L0C};
  return checkCapacities(
      K, Mems,
      [](const void *S, sim::Buffer B) {
        return static_cast<const sim::MachineSpec *>(S)->bufferBytes(B);
      },
      &M);
}

std::string checkSimtCapacities(const Kernel &K, const sim::SimtSpec &S) {
  static const sim::Buffer Mems[] = {sim::Buffer::Shared, sim::Buffer::Reg};
  return checkCapacities(
      K, Mems,
      [](const void *Sp, sim::Buffer B) {
        return static_cast<const sim::SimtSpec *>(Sp)->bufferBytes(B);
      },
      &S);
}

} // namespace cce
} // namespace akg
