//===- target/CceIr.h - CCE instruction-level IR ----------------*- C++ -*-===//
//
// The lowest IR level: a kernel is a list of instructions bound to the six
// DaVinci pipelines (Fig 1), referencing named on-chip buffer allocations
// in L1/UB/L0A/L0B/L0C. Each instruction optionally carries a functional
// semantic payload (ir::Stmt over the ORIGINAL global tensor names) so the
// simulator can execute the kernel bit-for-bit against the DSL evaluator,
// while ReadBufs/WriteBufs name the LOCAL buffers for synchronization,
// liveness, and capacity accounting.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_CCEIR_H
#define AKG_TARGET_CCEIR_H

#include "ir/Dsl.h"
#include "ir/Stmt.h"
#include "sim/Target.h"

#include <memory>
#include <string>
#include <vector>

namespace akg {
namespace cce {

enum class InstrKind {
  Dma,         // GM <-> L1/UB transfer (MTE2 inbound, MTE3 outbound) or
               // on-chip move on MTE1
  Img2Col,     // implicit convolution patch materialization (MTE1)
  LoadFractal, // fractal-layout load into L0A/L0B (MTE1)
  Mmad,        // cube-unit matrix multiply-accumulate (M pipe)
  VectorOp,    // SIMD intrinsic on UB data (V pipe)
  ScalarOp,    // scalar loop fallback (S pipe)
  Loop,        // structured loop around a sub-list of instructions
  SetFlag,     // raise event <Pipe, EventId>
  WaitFlag,    // block Pipe until event <WaitSrc, EventId> (Depth 2 waits
               // on the previous set: ping-pong double buffering)
  Barrier,     // full pipeline barrier
};

struct Instr;
using InstrPtr = std::shared_ptr<Instr>;

struct Instr {
  InstrKind Kind = InstrKind::ScalarOp;
  sim::Pipe Pipe = sim::Pipe::S;
  std::string Label;

  // Transfer payload.
  int64_t Bytes = 0;
  int64_t Bursts = 1;

  // Compute payload.
  int64_t Elems = 0;
  int64_t FractalOps = 0;
  bool Fp32 = false;

  // Functional payload (may be null for pure transfers).
  ir::Stmt Sem;

  // Buffer names touched, for sync/liveness/capacity. Local allocation
  // names for on-chip endpoints, global tensor names for GM endpoints.
  std::vector<std::string> ReadBufs;
  std::vector<std::string> WriteBufs;

  // Loop payload.
  std::string Var;
  ir::Expr Min, Extent;
  std::vector<InstrPtr> Body;
  bool DoubleBuffered = false;
  /// SIMT grid binding of a loop ("blockIdx.x", "blockIdx.y", ...);
  /// empty for serial loops and for every CCE instruction. Mapped loops
  /// run one iteration per thread block (sim/SimtRun.cpp divides their
  /// trip count across SMs).
  std::string MapDim;

  // Flag payload.
  unsigned EventId = 0;
  sim::Pipe WaitSrc = sim::Pipe::S;
  unsigned Depth = 1;
};

/// One on-chip buffer allocation.
struct BufferAlloc {
  std::string Name;
  sim::Buffer Location = sim::Buffer::UB;
  ir::Tensor Decl;
  bool DoubleBuffered = false;

  int64_t bytes() const { return Decl ? Decl->sizeBytes() : 0; }
};

/// A late-bound extent register of a dynamic-shape skeleton kernel: one
/// per shape symbol, loaded with the bucket-representative extent the
/// skeleton was compiled at. The launcher (sim::runBound) binds concrete
/// request extents against these registers by padding inputs to Value and
/// slicing outputs back; the register records which GM tensor dims the
/// extent governs so the binding is self-describing.
struct ExtentReg {
  std::string Symbol;    // shape symbol name ("n", "m", ...)
  int64_t Value = 0;     // representative extent baked into the skeleton
  /// GM tensor dims governed by this register: (tensor name, dim).
  std::vector<std::pair<std::string, unsigned>> Dims;
};

struct Kernel {
  std::string Name;
  std::vector<BufferAlloc> Buffers;
  std::vector<ir::Tensor> GmTensors;
  std::vector<InstrPtr> Body;
  /// Which backend lowered this kernel. CCE kernels render and simulate
  /// exactly as before; SIMT kernels reuse the same instruction list with
  /// Shared-memory allocations, grid-mapped loops and block barriers.
  sim::TargetKind Target = sim::TargetKind::Cce;
  /// SIMT launch shape (first-tile estimate; 0 on CCE kernels).
  int64_t BlockThreads = 0;
  int64_t GridBlocks = 0;
  /// Library kernels hand-tune prefetching; halves MTE2 warm-up latency.
  bool HandPrefetched = false;
  /// Non-empty exactly for dynamic-shape skeleton kernels (DESIGN.md 4k);
  /// printKernel renders them as a .extent_reg header.
  std::vector<ExtentReg> ExtentRegs;
};

/// Stamps the extent registers of a skeleton kernel from the symbol marks
/// of the (skeleton) module it was compiled from; no-op for modules
/// without dynamic marks.
void stampExtentRegs(Kernel &K, const ir::Module &SkeletonM);

InstrPtr makeLoop(std::string Var, ir::Expr Min, ir::Expr Extent);
InstrPtr makeDma(sim::Pipe P, ir::Stmt Sem, int64_t Bytes, int64_t Bursts,
                 std::string Label);
InstrPtr makeCompute(InstrKind Kind, sim::Pipe P, ir::Stmt Sem,
                     int64_t Elems, std::string Label);
InstrPtr makeSetFlag(sim::Pipe Src, unsigned EventId);
InstrPtr makeWaitFlag(sim::Pipe Self, sim::Pipe Src, unsigned EventId,
                      unsigned Depth = 1);
InstrPtr makeBarrier();

/// Counts instructions of \p Kind, recursing into loop bodies (static
/// count, not dynamic).
unsigned countInstrs(const Kernel &K, InstrKind Kind);

/// Pretty-prints the kernel in pseudo-CCE form (e.g. "copy<PIPE_MTE2>").
std::string printKernel(const Kernel &K);

/// Liveness-aware capacity check: for each on-chip memory, the peak of
/// simultaneously-live allocations (double-buffered ones count twice) must
/// fit the capacity. Buffers never referenced by any instruction cost
/// nothing (they are dead storage the compiler may have over-declared).
/// Returns "" when everything fits, else a diagnostic naming the memory.
std::string checkBufferCapacities(const Kernel &K,
                                  const sim::MachineSpec &M);

/// The same liveness-aware check for a SIMT kernel's per-block memories
/// (shared memory, registers) against the SIMT machine model.
std::string checkSimtCapacities(const Kernel &K, const sim::SimtSpec &S);

} // namespace cce
} // namespace akg

#endif // AKG_TARGET_CCEIR_H
