//===- target/Codegen.cpp - AST -> CCE instruction lowering ---------------===//

#include "target/Codegen.h"

#include "support/Stats.h"
#include "target/Vectorize.h"
#include "transforms/Conv.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace akg {
namespace cce {

using namespace ir;

namespace {

int64_t ceilDiv(int64_t A, int64_t B) { return B ? (A + B - 1) / B : 0; }
int64_t roundUpTo(int64_t A, int64_t B) { return ceilDiv(A, B) * B; }

//===----------------------------------------------------------------------===//
// First-tile static evaluation
//===----------------------------------------------------------------------===//

/// Evaluates an expression with every variable bound to 0. On the bound
/// expressions the AST generator produces (min(T, N - T*c) and friends)
/// this yields the extent of the *first* tile, which is the largest one;
/// boxes sized from it cover every instance.
int64_t evalFirstTile(const Expr &E) {
  if (!E)
    return 0;
  switch (E->Kind) {
  case ExprKind::IntImm:
    return E->IntVal;
  case ExprKind::FloatImm:
    return static_cast<int64_t>(E->FloatVal);
  case ExprKind::Var:
    return 0;
  case ExprKind::Add:
    return evalFirstTile(E->Operands[0]) + evalFirstTile(E->Operands[1]);
  case ExprKind::Sub:
    return evalFirstTile(E->Operands[0]) - evalFirstTile(E->Operands[1]);
  case ExprKind::Mul:
    return evalFirstTile(E->Operands[0]) * evalFirstTile(E->Operands[1]);
  case ExprKind::Div:
  case ExprKind::FloorDiv: {
    int64_t A = evalFirstTile(E->Operands[0]);
    int64_t B = evalFirstTile(E->Operands[1]);
    if (!B)
      return 0;
    int64_t Q = A / B;
    if ((A % B) && ((A < 0) != (B < 0)) && E->Kind == ExprKind::FloorDiv)
      --Q;
    return Q;
  }
  case ExprKind::Mod: {
    int64_t A = evalFirstTile(E->Operands[0]);
    int64_t B = evalFirstTile(E->Operands[1]);
    return B ? ((A % B) + B) % B : 0;
  }
  case ExprKind::Min:
    return std::min(evalFirstTile(E->Operands[0]),
                    evalFirstTile(E->Operands[1]));
  case ExprKind::Max:
    return std::max(evalFirstTile(E->Operands[0]),
                    evalFirstTile(E->Operands[1]));
  case ExprKind::Select:
    return std::max(evalFirstTile(E->Operands[1]),
                    evalFirstTile(E->Operands[2]));
  case ExprKind::Cast:
    return evalFirstTile(E->Operands[0]);
  default:
    return 0;
  }
}

//===----------------------------------------------------------------------===//
// Loop and affine analysis
//===----------------------------------------------------------------------===//

struct LoopInfo {
  Expr MinE;
  int64_t Ext = 0;
};
using LoopMap = std::map<std::string, LoopInfo>;

void collectLoops(const Stmt &S, LoopMap &L) {
  if (!S)
    return;
  if (S->Kind == StmtKind::For) {
    LoopInfo &LI = L[S->Var];
    if (!LI.MinE)
      LI.MinE = S->Min;
    LI.Ext = std::max<int64_t>(
        {LI.Ext, 1, evalFirstTile(S->Extent)});
  }
  for (const Stmt &C : S->Children)
    collectLoops(C, L);
}

bool containsLoopVar(const Expr &E, const LoopMap &L) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Var)
    return L.count(E->Name) != 0;
  for (const Expr &O : E->Operands)
    if (containsLoopVar(O, L))
      return true;
  return false;
}

bool containsVarNamed(const Expr &E, const std::string &V) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Var)
    return E->Name == V;
  for (const Expr &O : E->Operands)
    if (containsVarNamed(O, V))
      return true;
  return false;
}

using CoeffMap = std::map<std::string, int64_t>;

/// Coefficients of region/unit loop variables in \p E when \p E is affine
/// in them; variables not in \p L count as symbolic offsets. nullopt when
/// a loop variable occurs under a non-affine operator.
std::optional<CoeffMap> affineCoeffs(const Expr &E, const LoopMap &L) {
  if (!E)
    return CoeffMap{};
  switch (E->Kind) {
  case ExprKind::IntImm:
  case ExprKind::FloatImm:
    return CoeffMap{};
  case ExprKind::Var: {
    CoeffMap C;
    if (L.count(E->Name))
      C[E->Name] = 1;
    return C;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    auto A = affineCoeffs(E->Operands[0], L);
    auto B = affineCoeffs(E->Operands[1], L);
    if (!A || !B)
      return std::nullopt;
    int64_t Sign = E->Kind == ExprKind::Sub ? -1 : 1;
    for (const auto &[V, C] : *B)
      (*A)[V] += Sign * C;
    return A;
  }
  case ExprKind::Mul: {
    int64_t C;
    if (isConstInt(E->Operands[0], &C)) {
      auto B = affineCoeffs(E->Operands[1], L);
      if (!B)
        return std::nullopt;
      for (auto &[V, X] : *B)
        X *= C;
      return B;
    }
    if (isConstInt(E->Operands[1], &C)) {
      auto A = affineCoeffs(E->Operands[0], L);
      if (!A)
        return std::nullopt;
      for (auto &[V, X] : *A)
        X *= C;
      return A;
    }
    return containsLoopVar(E, L) ? std::nullopt
                                 : std::optional<CoeffMap>(CoeffMap{});
  }
  case ExprKind::Cast:
    return affineCoeffs(E->Operands[0], L);
  default:
    return containsLoopVar(E, L) ? std::nullopt
                                 : std::optional<CoeffMap>(CoeffMap{});
  }
}

/// Width of the data box one index expression sweeps over the region's
/// loops, clamped to the tensor dimension.
int64_t boxWidth(const Expr &Idx, const LoopMap &L, int64_t Full) {
  auto C = affineCoeffs(Idx, L);
  if (!C)
    return Full;
  int64_t W = 1;
  for (const auto &[V, X] : *C) {
    auto It = L.find(V);
    if (It != L.end())
      W += std::abs(X) * (It->second.Ext - 1);
  }
  return std::max<int64_t>(1, std::min(W, Full));
}

/// Number of discontiguous bursts a box transfer needs against the full
/// row-major tensor layout: the fully-covered suffix of dimensions is
/// contiguous with the next partial dimension.
int64_t burstsFor(const std::vector<int64_t> &Box,
                  const std::vector<int64_t> &Full) {
  size_t T = Box.size();
  while (T > 0 && T <= Full.size() && Box[T - 1] >= Full[T - 1])
    --T;
  int64_t B = 1;
  for (size_t I = 0; I + 1 < T; ++I)
    B *= Box[I];
  return std::max<int64_t>(B, 1);
}

//===----------------------------------------------------------------------===//
// Statement walking helpers
//===----------------------------------------------------------------------===//

void collectReadNodes(const Expr &E, std::vector<const ExprNode *> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::TensorRead)
    Out.push_back(E.get());
  for (const Expr &O : E->Operands)
    collectReadNodes(O, Out);
}

void collectUnitAccesses(const Stmt &S, std::vector<const ExprNode *> &Reads,
                         std::vector<const StmtNode *> &Writes) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::For:
    collectReadNodes(S->Min, Reads);
    collectReadNodes(S->Extent, Reads);
    break;
  case StmtKind::IfThenElse:
    collectReadNodes(S->Cond, Reads);
    break;
  case StmtKind::Provide:
    collectReadNodes(S->Value, Reads);
    for (const Expr &I : S->Indices)
      collectReadNodes(I, Reads);
    Writes.push_back(S.get());
    break;
  case StmtKind::Evaluate:
    collectReadNodes(S->Value, Reads);
    break;
  default:
    break;
  }
  for (const Stmt &C : S->Children)
    collectUnitAccesses(C, Reads, Writes);
}

void collectProvides(const Stmt &S, std::vector<const StmtNode *> &Out) {
  if (!S)
    return;
  if (S->Kind == StmtKind::Provide)
    Out.push_back(S.get());
  for (const Stmt &C : S->Children)
    collectProvides(C, Out);
}

bool isMark(const Stmt &S, const char *Tag) {
  return S && S->Kind == StmtKind::Attr && S->Key == "mark" &&
         S->StrValue == Tag;
}

bool hasUnitMark(const Stmt &S) {
  if (!S)
    return false;
  if (isMark(S, "local_UB") || isMark(S, "cube_unit"))
    return true;
  for (const Stmt &C : S->Children)
    if (hasUnitMark(C))
      return true;
  return false;
}

bool containsForStmt(const Stmt &S) {
  if (!S)
    return false;
  if (S->Kind == StmtKind::For)
    return true;
  for (const Stmt &C : S->Children)
    if (containsForStmt(C))
      return true;
  return false;
}

int64_t pointsIn(const Stmt &S) {
  if (!S)
    return 0;
  switch (S->Kind) {
  case StmtKind::For:
    return std::max<int64_t>(1, evalFirstTile(S->Extent)) *
           pointsIn(S->Children.empty() ? nullptr : S->Children[0]);
  case StmtKind::Block:
  case StmtKind::IfThenElse: {
    int64_t N = 0;
    for (const Stmt &C : S->Children)
      N += pointsIn(C);
    return N;
  }
  case StmtKind::Attr:
  case StmtKind::Allocate:
    return pointsIn(S->Children.empty() ? nullptr : S->Children[0]);
  case StmtKind::Provide:
  case StmtKind::Evaluate:
    return 1;
  }
  return 0;
}

/// Every leaf loop of the unit maps to a vector intrinsic (and there is at
/// least one loop to vectorize).
bool leavesVectorizable(const Stmt &S, bool &Any) {
  if (!S)
    return true;
  switch (S->Kind) {
  case StmtKind::For: {
    const Stmt &Body = S->Children.empty() ? nullptr : S->Children[0];
    if (containsForStmt(Body))
      return leavesVectorizable(Body, Any);
    if (!isVectorizableLoop(S))
      return false;
    Any = true;
    return true;
  }
  case StmtKind::Block:
  case StmtKind::IfThenElse:
    for (const Stmt &C : S->Children)
      if (!leavesVectorizable(C, Any))
        return false;
    return true;
  case StmtKind::Attr:
  case StmtKind::Allocate:
    return leavesVectorizable(S->Children.empty() ? nullptr : S->Children[0],
                              Any);
  default:
    return true;
  }
}

Tensor makeLocal(std::string Name, std::vector<int64_t> Shape, DType T) {
  auto D = std::make_shared<TensorDecl>();
  D->Name = std::move(Name);
  D->Shape = std::move(Shape);
  D->Type = T;
  return D;
}

//===----------------------------------------------------------------------===//
// The lowering driver
//===----------------------------------------------------------------------===//

class Lowering {
public:
  Lowering(const Module &M, const PolyProgram &P, const CodegenOptions &O)
      : Mod(M), Prog(P), Opts(O) {}

  Kernel run(const Stmt &Ast, const std::string &Name) {
    K.Name = Name;
    K.GmTensors = Mod.allTensors();
    for (const Tensor &T : Mod.outputs())
      OutputNames.insert(T->Name);
    int ScanRegion = 0;
    scanUses(Ast, /*Region=*/0, ScanRegion);
    lowerTop(Ast, K.Body);
    return K;
  }

private:
  const Module &Mod;
  const PolyProgram &Prog;
  CodegenOptions Opts;
  Kernel K;

  std::set<std::string> OutputNames;
  std::set<std::string> UsedBufNames;
  std::set<std::string> DbBoxes; // double-buffered on-chip buffers
  int RegionCounter = 0;
  int UnitCounter = 0;

  // -- escape analysis ----------------------------------------------------

  struct UseInfo {
    std::set<int> ReadRegions;
    bool ReadOutside = false;
  };
  std::map<std::string, UseInfo> Uses;

  void noteRead(const std::string &Name, int Region) {
    UseInfo &U = Uses[Name];
    if (Region == 0)
      U.ReadOutside = true;
    else
      U.ReadRegions.insert(Region);
  }

  void scanExpr(const Expr &E, int Region) {
    if (!E)
      return;
    if (E->Kind == ExprKind::TensorRead && E->Ref)
      noteRead(E->Ref->Name, Region);
    for (const Expr &O : E->Operands)
      scanExpr(O, Region);
  }

  // Mirrors lowerTop's traversal so region numbering matches exactly.
  void scanUses(const Stmt &S, int Region, int &Counter) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Attr:
      if (isMark(S, "skipped"))
        return;
      if (isMark(S, "on_chip")) {
        ++Counter;
        scanUses(S->Children.empty() ? nullptr : S->Children[0], Counter,
                 Counter);
        return;
      }
      break;
    case StmtKind::For:
      scanExpr(S->Min, Region);
      scanExpr(S->Extent, Region);
      break;
    case StmtKind::IfThenElse:
      scanExpr(S->Cond, Region);
      break;
    case StmtKind::Provide:
      scanExpr(S->Value, Region);
      for (const Expr &I : S->Indices)
        scanExpr(I, Region);
      break;
    case StmtKind::Evaluate:
      scanExpr(S->Value, Region);
      break;
    default:
      break;
    }
    for (const Stmt &C : S->Children)
      scanUses(C, Region, Counter);
  }

  bool escapes(const std::string &Name, int Region) const {
    if (OutputNames.count(Name))
      return true;
    auto It = Uses.find(Name);
    if (It == Uses.end())
      return false;
    if (It->second.ReadOutside)
      return true;
    for (int R : It->second.ReadRegions)
      if (R != Region)
        return true;
    return false;
  }

  // -- region state -------------------------------------------------------

  struct Box {
    std::string BufName;
    Tensor Global;
    std::vector<int64_t> Shape;
    bool Loaded = false;
    bool LoadedMte2 = false;
    std::vector<Instr *> SizedInstrs; // loads/stores sized at finalize
  };

  struct RegionCtx {
    int Id = 0;
    LoopMap Loops;
    std::map<std::string, Box> Boxes;
    std::vector<std::string> BoxOrder;
    std::set<std::string> WrittenHere;
    std::vector<std::string> WriteOrder;
  };

  std::string uniqueBufName(const std::string &Base) {
    std::string N = Base;
    unsigned I = 0;
    while (!UsedBufNames.insert(N).second)
      N = Base + "_" + std::to_string(++I);
    return N;
  }

  Box &ensureBoxShaped(RegionCtx &RS, const Tensor &T,
                       const std::vector<int64_t> &Widths) {
    auto It = RS.Boxes.find(T->Name);
    if (It == RS.Boxes.end()) {
      Box B;
      B.BufName =
          uniqueBufName(T->Name + "_ub_r" + std::to_string(RS.Id));
      B.Global = T;
      B.Shape.assign(T->Shape.size(), 1);
      It = RS.Boxes.emplace(T->Name, std::move(B)).first;
      RS.BoxOrder.push_back(T->Name);
    }
    Box &B = It->second;
    for (size_t D = 0; D < B.Shape.size() && D < Widths.size(); ++D)
      B.Shape[D] = std::min(T->Shape[D],
                            std::max(B.Shape[D], Widths[D]));
    return B;
  }

  Box &ensureBox(RegionCtx &RS, const Tensor &T,
                 const std::vector<Expr> &Idx) {
    std::vector<int64_t> W;
    for (size_t D = 0; D < T->Shape.size(); ++D)
      W.push_back(D < Idx.size()
                      ? boxWidth(Idx[D], RS.Loops, T->Shape[D])
                      : T->Shape[D]);
    return ensureBoxShaped(RS, T, W);
  }

  void markWritten(RegionCtx &RS, const Tensor &T) {
    if (RS.WrittenHere.insert(T->Name).second)
      RS.WriteOrder.push_back(T->Name);
    RS.Boxes[T->Name].Loaded = true; // produced on chip, never load
  }

  // -- top level ----------------------------------------------------------

  void scanMte2Dmas(const std::vector<InstrPtr> &L, bool &Any, bool &All) {
    for (const InstrPtr &I : L) {
      if (I->Kind == InstrKind::Loop) {
        scanMte2Dmas(I->Body, Any, All);
        continue;
      }
      if (I->Kind == InstrKind::Dma && I->Pipe == sim::Pipe::MTE2) {
        Any = true;
        if (I->WriteBufs.empty() || !DbBoxes.count(I->WriteBufs[0]))
          All = false;
      }
    }
  }

  void lowerTop(const Stmt &S, std::vector<InstrPtr> &Out) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block:
      for (const Stmt &C : S->Children)
        lowerTop(C, Out);
      return;
    case StmtKind::For: {
      InstrPtr L = makeLoop(S->Var, S->Min, S->Extent);
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], L->Body);
      if (L->Body.empty())
        return;
      if (Opts.EnableDoubleBuffer) {
        bool Any = false, All = true;
        scanMte2Dmas(L->Body, Any, All);
        L->DoubleBuffered = Any && All;
      }
      Out.push_back(std::move(L));
      return;
    }
    case StmtKind::Attr:
      if (isMark(S, "skipped"))
        return;
      if (isMark(S, "on_chip")) {
        ++RegionCounter;
        lowerRegion(S->Children.empty() ? nullptr : S->Children[0], Out);
        return;
      }
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], Out);
      return;
    case StmtKind::Allocate:
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], Out);
      return;
    default: {
      // A statement outside any on_chip region: run it on the scalar unit
      // against global memory (robust catch-all; no on-chip allocation).
      std::vector<const ExprNode *> Reads;
      std::vector<const StmtNode *> Writes;
      collectUnitAccesses(S, Reads, Writes);
      InstrPtr I = makeCompute(InstrKind::ScalarOp, sim::Pipe::S, S,
                               pointsIn(S), "gm_scalar");
      for (const ExprNode *R : Reads)
        if (R->Ref && std::find(I->ReadBufs.begin(), I->ReadBufs.end(),
                                R->Ref->Name) == I->ReadBufs.end())
          I->ReadBufs.push_back(R->Ref->Name);
      for (const StmtNode *W : Writes)
        if (W->Target && std::find(I->WriteBufs.begin(), I->WriteBufs.end(),
                                   W->Target->Name) == I->WriteBufs.end())
          I->WriteBufs.push_back(W->Target->Name);
      Out.push_back(std::move(I));
      return;
    }
    }
  }

  // -- regions ------------------------------------------------------------

  void lowerRegion(const Stmt &Body, std::vector<InstrPtr> &Out) {
    RegionCtx RS;
    RS.Id = RegionCounter;
    collectLoops(Body, RS.Loops);
    emitRegionBody(Body, RS, Out);

    // Store escaping results back to GM.
    for (const std::string &Name : RS.WriteOrder) {
      if (!escapes(Name, RS.Id))
        continue;
      Box &B = RS.Boxes[Name];
      InstrPtr D = makeDma(sim::Pipe::MTE3, nullptr, 0, 1, "store." + Name);
      D->ReadBufs = {B.BufName};
      D->WriteBufs = {Name};
      B.SizedInstrs.push_back(D.get());
      Out.push_back(std::move(D));
    }

    // Finalize UB boxes: allocations, double-buffer flags, DMA sizes.
    for (const std::string &Name : RS.BoxOrder) {
      Box &B = RS.Boxes[Name];
      Tensor Decl = makeLocal(B.BufName, B.Shape, B.Global->Type);
      bool Db = Opts.EnableDoubleBuffer && B.LoadedMte2 &&
                Decl->sizeBytes() <= Opts.Machine.UBBytes / 8;
      K.Buffers.push_back({B.BufName, sim::Buffer::UB, Decl, Db});
      if (Db)
        DbBoxes.insert(B.BufName);
      int64_t Bytes = Decl->sizeBytes();
      int64_t Bursts = burstsFor(B.Shape, B.Global->Shape);
      for (Instr *I : B.SizedInstrs) {
        I->Bytes = Bytes;
        I->Bursts = Bursts;
      }
    }
  }

  void emitRegionBody(const Stmt &S, RegionCtx &RS,
                      std::vector<InstrPtr> &Out) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block:
      for (const Stmt &C : S->Children)
        emitRegionBody(C, RS, Out);
      return;
    case StmtKind::Attr: {
      if (isMark(S, "skipped"))
        return;
      const Stmt &Child = S->Children.empty() ? nullptr : S->Children[0];
      if (isMark(S, "local_UB")) {
        ++UnitCounter;
        emitVectorUnit(Child, RS, Out);
        return;
      }
      if (isMark(S, "cube_unit")) {
        ++UnitCounter;
        if (!emitCubeUnit(Child, RS, Out))
          emitVectorUnit(Child, RS, Out);
        return;
      }
      emitRegionBody(Child, RS, Out);
      return;
    }
    case StmtKind::Allocate:
      emitRegionBody(S->Children.empty() ? nullptr : S->Children[0], RS,
                     Out);
      return;
    case StmtKind::For:
      if (hasUnitMark(S)) {
        InstrPtr L = makeLoop(S->Var, S->Min, S->Extent);
        emitRegionBody(S->Children.empty() ? nullptr : S->Children[0], RS,
                       L->Body);
        if (!L->Body.empty())
          Out.push_back(std::move(L));
        return;
      }
      ++UnitCounter;
      emitVectorUnit(S, RS, Out);
      return;
    default:
      ++UnitCounter;
      emitVectorUnit(S, RS, Out);
      return;
    }
  }

  // -- vector / scalar units ----------------------------------------------

  void emitVectorUnit(const Stmt &U, RegionCtx &RS,
                      std::vector<InstrPtr> &Out) {
    if (!U)
      return;
    std::vector<const ExprNode *> Reads;
    std::vector<const StmtNode *> Writes;
    collectUnitAccesses(U, Reads, Writes);
    if (Reads.empty() && Writes.empty())
      return;

    std::set<std::string> WrittenByUnit;
    for (const StmtNode *W : Writes)
      if (W->Target)
        WrittenByUnit.insert(W->Target->Name);

    auto PushName = [](std::vector<std::string> &V, const std::string &N) {
      if (std::find(V.begin(), V.end(), N) == V.end())
        V.push_back(N);
    };

    std::vector<std::string> RB, WB;
    for (const ExprNode *R : Reads) {
      if (!R->Ref)
        continue;
      std::vector<Expr> Idx(R->Operands.begin(), R->Operands.end());
      Box &B = ensureBox(RS, R->Ref, Idx);
      if (!RS.WrittenHere.count(R->Ref->Name) &&
          !WrittenByUnit.count(R->Ref->Name) && !B.Loaded) {
        InstrPtr L = makeDma(sim::Pipe::MTE2, nullptr, 0, 1,
                             "load." + R->Ref->Name);
        L->ReadBufs = {R->Ref->Name};
        L->WriteBufs = {B.BufName};
        B.SizedInstrs.push_back(L.get());
        B.Loaded = true;
        B.LoadedMte2 = true;
        Out.push_back(std::move(L));
      }
      PushName(RB, B.BufName);
    }

    bool AnyF32 = false;
    for (const StmtNode *W : Writes) {
      if (!W->Target)
        continue;
      Box &B = ensureBox(RS, W->Target, W->Indices);
      markWritten(RS, W->Target);
      PushName(WB, B.BufName);
      AnyF32 |= W->Target->Type == DType::F32;
    }

    bool Any = false;
    bool Vec = Opts.EnableVectorize && leavesVectorizable(U, Any) && Any;
    InstrPtr C = makeCompute(Vec ? InstrKind::VectorOp : InstrKind::ScalarOp,
                             Vec ? sim::Pipe::V : sim::Pipe::S, U,
                             pointsIn(U),
                             "unit" + std::to_string(UnitCounter));
    C->Fp32 = AnyF32;
    C->ReadBufs = std::move(RB);
    C->WriteBufs = std::move(WB);
    Out.push_back(std::move(C));
  }

  // -- cube units ---------------------------------------------------------

  struct TileDim {
    Expr Base;
    int64_t Ext = 1;
  };

  bool emitCubeUnit(const Stmt &U, RegionCtx &RS,
                    std::vector<InstrPtr> &Out) {
    if (!U)
      return false;
    std::vector<const StmtNode *> Provs;
    collectProvides(U, Provs);
    const StmtNode *Upd = nullptr;
    double InitVal = 0.0;
    for (const StmtNode *Pr : Provs) {
      std::vector<const ExprNode *> Reads;
      collectReadNodes(Pr->Value, Reads);
      bool SelfRead = false;
      for (const ExprNode *R : Reads)
        if (R->Ref == Pr->Target)
          SelfRead = true;
      if (SelfRead) {
        if (Upd)
          return false; // two updates in one unit: not a single cube op
        Upd = Pr;
      } else {
        // Only the reduction's initialization may ride along.
        if (!Pr->Value || Pr->Value->Kind != ExprKind::FloatImm)
          return false;
        if (Upd && Pr->Target != Upd->Target)
          return false;
        InitVal = Pr->Value->FloatVal;
      }
    }
    if (!Upd)
      return false;
    for (const StmtNode *Pr : Provs)
      if (Pr != Upd && Pr->Target != Upd->Target)
        return false;

    const PolyStmt *St = nullptr;
    for (const PolyStmt &PS : Prog.Stmts)
      if (PS.StmtRole == PolyStmt::Role::Update &&
          PS.Write.Ref == Upd->Target) {
        St = &PS;
        break;
      }
    if (!St)
      return false;
    auto DOpt = transforms::matchCubeOp(*St);
    if (!DOpt)
      return false;
    const transforms::CubeOpDesc &D = *DOpt;
    if (D.M <= 0 || D.N <= 0 || D.K <= 0)
      return false;

    LoopMap UL;
    collectLoops(U, UL);

    // Decompose each output index into tile base + extent.
    std::vector<TileDim> Dims;
    std::set<std::string> WriteVars;
    for (const Expr &Idx : Upd->Indices) {
      auto C = affineCoeffs(Idx, UL);
      if (!C)
        return false;
      std::string Var;
      int NonZero = 0;
      for (const auto &[V, X] : *C)
        if (X != 0) {
          ++NonZero;
          Var = V;
          if (X != 1)
            return false;
        }
      TileDim TD;
      if (NonZero == 0) {
        TD.Base = Idx;
        TD.Ext = 1;
      } else if (NonZero == 1) {
        TD.Base = substitute(Idx, {{Var, UL[Var].MinE}});
        TD.Ext = UL[Var].Ext;
        WriteVars.insert(Var);
      } else {
        return false;
      }
      Dims.push_back(TD);
    }

    // The reduction must be complete inside the unit (the compiler pins
    // reduction dimensions full for cube statements; if a configuration
    // tiled them anyway, degrade to the always-correct vector path).
    int64_t RedProd = 1;
    for (const auto &[V, LI] : UL)
      if (!WriteVars.count(V) && containsVarNamed(Upd->Value, V))
        RedProd *= LI.Ext;
    if (RedProd < D.K)
      return false;

    // Geometry.
    size_t Rank = Dims.size();
    Expr BatchVar = intImm(0), MBase, NBase = intImm(0);
    int64_t MT = 0, NT = 1, HoT = 0;
    if (D.IsConv) {
      if (Rank < 2 || Rank > 4)
        return false;
      const TileDim &Wo = Dims[Rank - 1];
      if (Wo.Ext != D.OutW || evalFirstTile(Wo.Base) != 0)
        return false;
      const TileDim &Ho = Dims[Rank - 2];
      HoT = Ho.Ext;
      MBase = mul(Ho.Base, intImm(D.OutW));
      MT = HoT * D.OutW;
      if (Rank >= 3) {
        NBase = Dims[Rank - 3].Base;
        NT = Dims[Rank - 3].Ext;
      }
      if (Rank == 4) {
        if (Dims[0].Ext != 1)
          return false;
        BatchVar = Dims[0].Base;
      }
    } else {
      if (Rank < 2 || Rank > 3)
        return false;
      if (Rank == 3) {
        if (Dims[0].Ext != 1)
          return false;
        BatchVar = Dims[0].Base;
      }
      MBase = Dims[Rank - 2].Base;
      MT = Dims[Rank - 2].Ext;
      NBase = Dims[Rank - 1].Base;
      NT = Dims[Rank - 1].Ext;
    }
    if (MT <= 0 || NT <= 0)
      return false;

    const sim::MachineSpec &MS = Opts.Machine;
    int64_t EA = dtypeBytes(D.A->Type), EB = dtypeBytes(D.B->Type);
    int64_t K16 = roundUpTo(D.K, 16);
    int64_t KByA = MS.L0ABytes / std::max<int64_t>(MT * EA, 1) / 16 * 16;
    int64_t KByB = MS.L0BBytes / std::max<int64_t>(NT * EB, 1) / 16 * 16;
    int64_t KC = std::min({K16, KByA, KByB});
    if (KC < 16)
      KC = 16; // may overflow L0; the capacity check triggers retiling
    int64_t Chunks = ceilDiv(K16, KC);

    std::string Pfx =
        "r" + std::to_string(RS.Id) + "_u" + std::to_string(UnitCounter);
    Tensor AL1 = makeLocal(uniqueBufName(D.A->Name + "_l1_" + Pfx),
                           {MT, KC}, D.A->Type);
    Tensor BL1 = makeLocal(uniqueBufName(D.B->Name + "_l1_" + Pfx),
                           {KC, NT}, D.B->Type);
    Tensor L0A = makeLocal(uniqueBufName("l0a_" + Pfx), {MT, KC}, D.A->Type);
    Tensor L0B = makeLocal(uniqueBufName("l0b_" + Pfx), {KC, NT}, D.B->Type);
    Tensor L0C =
        makeLocal(uniqueBufName("l0c_" + Pfx), {MT, NT}, DType::F32);

    bool CanDb = Opts.EnableDoubleBuffer && Chunks > 1 &&
                 (AL1->sizeBytes() + BL1->sizeBytes()) * 2 <= MS.L1Bytes &&
                 L0A->sizeBytes() * 2 <= MS.L0ABytes &&
                 L0B->sizeBytes() * 2 <= MS.L0BBytes;
    K.Buffers.push_back({AL1->Name, sim::Buffer::L1, AL1, CanDb});
    K.Buffers.push_back({BL1->Name, sim::Buffer::L1, BL1, CanDb});
    K.Buffers.push_back({L0A->Name, sim::Buffer::L0A, L0A, CanDb});
    K.Buffers.push_back({L0B->Name, sim::Buffer::L0B, L0B, CanDb});
    K.Buffers.push_back({L0C->Name, sim::Buffer::L0C, L0C, false});
    if (CanDb) {
      DbBoxes.insert(AL1->Name);
      DbBoxes.insert(BL1->Name);
    }

    // Zero (or reduction-init) the accumulator.
    {
      std::string ZM = "z_mi_" + Pfx, ZN = "z_ni_" + Pfx;
      Stmt P = makeProvide(L0C, {var(ZM), var(ZN)}, floatImm(InitVal));
      Stmt Sem = makeFor(ZM, intImm(0), intImm(MT),
                         makeFor(ZN, intImm(0), intImm(NT), P));
      InstrPtr Z = makeCompute(InstrKind::VectorOp, sim::Pipe::V, Sem,
                               MT * NT, "init.l0c");
      Z->Fp32 = true;
      Z->WriteBufs = {L0C->Name};
      Out.push_back(std::move(Z));
    }

    // Stream the reduction through L1 in K chunks.
    std::string KV = "kc_" + Pfx;
    InstrPtr Chunk = makeLoop(KV, intImm(0), intImm(Chunks));
    Chunk->DoubleBuffered = CanDb;
    Expr KBase = mul(intImm(KC), var(KV));

    auto EmitOperand = [&](const Tensor &Src, const Tensor &L1Box,
                           int64_t Bytes, int64_t Bursts) {
      bool FromUb = RS.WrittenHere.count(Src->Name) != 0;
      InstrPtr DmaI =
          makeDma(FromUb ? sim::Pipe::MTE1 : sim::Pipe::MTE2, nullptr,
                  Bytes, Bursts, "load." + Src->Name + ".l1");
      DmaI->ReadBufs = {FromUb ? RS.Boxes[Src->Name].BufName : Src->Name};
      DmaI->WriteBufs = {L1Box->Name};
      Chunk->Body.push_back(std::move(DmaI));
    };

    int64_t ABursts = (D.IsConv || KC < D.K) ? MT : 1;
    EmitOperand(D.A, AL1, MT * KC * EA, ABursts);
    if (D.IsConv) {
      auto I2C = std::make_shared<Instr>();
      I2C->Kind = InstrKind::Img2Col;
      I2C->Pipe = sim::Pipe::MTE1;
      I2C->Sem = transforms::buildImg2ColSem(D, D.A, L0A, BatchVar, MBase,
                                             MT, intImm(0), MT, KBase, KC);
      I2C->Bytes = MT * KC * EA;
      I2C->Bursts = ceilDiv(MT, 16) * ceilDiv(KC, 16);
      I2C->Label = "img2col";
      I2C->ReadBufs = {AL1->Name};
      I2C->WriteBufs = {L0A->Name};
      Chunk->Body.push_back(std::move(I2C));
    } else {
      auto LA = std::make_shared<Instr>();
      LA->Kind = InstrKind::LoadFractal;
      LA->Pipe = sim::Pipe::MTE1;
      LA->Sem = buildMatmulALoadSem(D, L0A, BatchVar, MBase, MT, KBase, KC,
                                    Pfx);
      LA->Bytes = MT * KC * EA;
      LA->Bursts = ceilDiv(MT, 16) * ceilDiv(KC, 16);
      LA->Label = "load2d.a";
      LA->ReadBufs = {AL1->Name};
      LA->WriteBufs = {L0A->Name};
      Chunk->Body.push_back(std::move(LA));
    }

    int64_t BBursts = D.IsConv ? NT : (NT < D.N ? KC : 1);
    EmitOperand(D.B, BL1, KC * NT * EB, BBursts);
    {
      auto LB = std::make_shared<Instr>();
      LB->Kind = InstrKind::LoadFractal;
      LB->Pipe = sim::Pipe::MTE1;
      LB->Sem = transforms::buildWeightLoadSem(D, D.B, L0B, BatchVar, KBase,
                                               KC, NBase, NT, intImm(0), NT);
      LB->Bytes = KC * NT * EB;
      LB->Bursts = ceilDiv(KC, 16) * ceilDiv(NT, 16);
      LB->Label = "load2d.b";
      LB->ReadBufs = {BL1->Name};
      LB->WriteBufs = {L0B->Name};
      Chunk->Body.push_back(std::move(LB));
    }

    {
      std::string MI = "mm_mi_" + Pfx, NI = "mm_ni_" + Pfx,
                  KI = "mm_ki_" + Pfx;
      Expr Acc = add(tensorRead(L0C, {var(MI), var(NI)}),
                     mul(tensorRead(L0A, {var(MI), var(KI)}),
                         tensorRead(L0B, {var(KI), var(NI)})));
      Stmt P = makeProvide(L0C, {var(MI), var(NI)}, Acc);
      Stmt Sem =
          makeFor(MI, intImm(0), intImm(MT),
                  makeFor(NI, intImm(0), intImm(NT),
                          makeFor(KI, intImm(0), intImm(KC), P)));
      auto MM = std::make_shared<Instr>();
      MM->Kind = InstrKind::Mmad;
      MM->Pipe = sim::Pipe::M;
      MM->Sem = Sem;
      MM->FractalOps = ceilDiv(MT, 16) * ceilDiv(NT, 16) * ceilDiv(KC, 16);
      MM->Label = "mmad";
      MM->ReadBufs = {L0A->Name, L0B->Name, L0C->Name};
      MM->WriteBufs = {L0C->Name};
      Chunk->Body.push_back(std::move(MM));
    }
    Out.push_back(std::move(Chunk));

    // Copy the accumulator to the output's UB box in original coordinates
    // (the region-end DMA then stores it to GM when it escapes).
    std::vector<int64_t> CW;
    if (D.IsConv) {
      if (Rank == 4)
        CW = {1, NT, HoT, D.OutW};
      else if (Rank == 3)
        CW = {NT, HoT, D.OutW};
      else
        CW = {HoT, D.OutW};
    } else {
      if (Rank == 3)
        CW = {1, MT, NT};
      else
        CW = {MT, NT};
    }
    Box &CB = ensureBoxShaped(RS, D.C, CW);
    {
      std::string SM = "st_mi_" + Pfx, SN = "st_ni_" + Pfx;
      Expr Mm = add(MBase, var(SM));
      Expr Nn = add(NBase, var(SN));
      Expr Guard = binary(ExprKind::And,
                          cmp(ExprKind::CmpLT, Mm, intImm(D.M)),
                          cmp(ExprKind::CmpLT, Nn, intImm(D.N)));
      std::vector<Expr> CIdx;
      if (D.IsConv) {
        Expr Ho = floorDiv(Mm, intImm(D.OutW));
        Expr Wo = mod(Mm, intImm(D.OutW));
        if (Rank == 4)
          CIdx = {BatchVar, Nn, Ho, Wo};
        else if (Rank == 3)
          CIdx = {Nn, Ho, Wo};
        else
          CIdx = {Ho, Wo};
      } else {
        if (Rank == 3)
          CIdx = {BatchVar, Mm, Nn};
        else
          CIdx = {Mm, Nn};
      }
      Expr Val = cast(D.C->Type, tensorRead(L0C, {var(SM), var(SN)}));
      Stmt P = makeIf(Guard, makeProvide(D.C, CIdx, Val));
      Stmt Sem = makeFor(SM, intImm(0), intImm(MT),
                         makeFor(SN, intImm(0), intImm(NT), P));
      InstrPtr CP = makeCompute(InstrKind::VectorOp, sim::Pipe::V, Sem,
                                MT * NT, "l0c.to.ub");
      CP->Fp32 = true;
      CP->ReadBufs = {L0C->Name};
      CP->WriteBufs = {CB.BufName};
      Out.push_back(std::move(CP));
    }
    markWritten(RS, D.C);
    return true;
  }

  /// L0A[mi, ki] = A[MBase+mi, KBase+ki] (transposed/batched as declared),
  /// zero outside the matrix — the fractal zero-padding of Fig 7.
  Stmt buildMatmulALoadSem(const transforms::CubeOpDesc &D, const Tensor &L0A,
                           Expr BatchVar, Expr MBase, int64_t MT, Expr KBase,
                           int64_t KC, const std::string &Pfx) {
    std::string MI = "la_mi_" + Pfx, KI = "la_ki_" + Pfx;
    Expr Mm = add(MBase, var(MI));
    Expr Kk = add(KBase, var(KI));
    Expr InRange = binary(ExprKind::And,
                          cmp(ExprKind::CmpLT, Mm, intImm(D.M)),
                          cmp(ExprKind::CmpLT, Kk, intImm(D.K)));
    std::vector<Expr> AIdx;
    if (D.A->Shape.size() == 3)
      AIdx.push_back(BatchVar);
    if (D.TransA) {
      AIdx.push_back(Kk);
      AIdx.push_back(Mm);
    } else {
      AIdx.push_back(Mm);
      AIdx.push_back(Kk);
    }
    Expr Val = select(InRange, tensorRead(D.A, AIdx), floatImm(0.0));
    Stmt P = makeProvide(L0A, {var(MI), var(KI)}, Val);
    return makeFor(MI, intImm(0), intImm(MT),
                   makeFor(KI, intImm(0), intImm(KC), P));
  }
};

} // namespace

Kernel lowerToCce(const Stmt &Ast, const Module &M, const PolyProgram &P,
                  const CodegenOptions &Opts, const std::string &Name) {
  Lowering L(M, P, Opts);
  Kernel K = L.run(Ast, Name);
  // Unconditional counters for the compile trace's per-pass deltas.
  Stats::get().add("cce.lowered_kernels");
  if (!K.Buffers.empty())
    Stats::get().add("cce.buffers", static_cast<int64_t>(K.Buffers.size()));
  return K;
}

Kernel lowerScalarFallback(const Module &M, const std::string &Name) {
  Kernel K;
  K.Name = Name;
  K.GmTensors = M.allTensors();
  Stmt Loops = lowerToLoops(M);
  InstrPtr I = makeCompute(InstrKind::ScalarOp, sim::Pipe::S, Loops,
                           pointsIn(Loops), "scalar_fallback");
  for (const Tensor &T : M.inputs())
    I->ReadBufs.push_back(T->Name);
  for (const Tensor &T : M.outputs())
    I->WriteBufs.push_back(T->Name);
  K.Body.push_back(std::move(I));
  return K;
}

} // namespace cce
} // namespace akg
