//===- target/Codegen.h - AST -> CCE instruction lowering -------*- C++ -*-===//
//
// Lowers the scheduled AST to the CCE instruction IR (Sec 6): "on_chip"
// regions become UB/L1-resident working sets with DMA in/out, "local_UB"
// units become vector (or scalar) intrinsics, and "cube_unit" reductions
// are decomposed into the img2col / fractal-load / MMAD sequence with the
// reduction streamed through L1 in K chunks. Storage management (box
// sizing, buffer reuse by liveness, double buffering) happens here; the
// result is checked against the machine model by checkBufferCapacities.
//
// Every instruction's functional semantics (Instr::Sem) is expressed over
// the *original global tensors*, so functional simulation is independent
// of how boxes were sized; ReadBufs/WriteBufs carry the on-chip buffer
// names used for synchronization, liveness, and capacity checking.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_CODEGEN_H
#define AKG_TARGET_CODEGEN_H

#include "ir/Dsl.h"
#include "ir/PolyExtract.h"
#include "sim/Target.h"
#include "target/CceIr.h"

#include <string>

namespace akg {
namespace cce {

struct CodegenOptions {
  sim::MachineSpec Machine = sim::MachineSpec::ascend910();
  /// SIMT machine model, consumed when the compile targets
  /// sim::TargetKind::Simt (target/SimtLower.h). Part of the kernel-cache
  /// option fingerprint alongside Machine.
  sim::SimtSpec Simt = sim::SimtSpec::sm80();
  /// Map vectorizable innermost loops to V-pipe intrinsics (off: scalar).
  /// On the SIMT target this gates thread-parallel unit mapping.
  bool EnableVectorize = true;
  /// Ping-pong buffers for DMA-fed boxes in tile/chunk loops. On the SIMT
  /// target this gates cp.async-style pipelined shared-memory staging.
  bool EnableDoubleBuffer = true;
};

/// Lowers the scheduled AST of module \p M to a CCE kernel. \p P is the
/// polyhedral program the AST was generated from (used to recognize Cube
/// statements). Never fails structurally: units the Cube path cannot
/// express degrade to vector/scalar code.
Kernel lowerToCce(const ir::Stmt &Ast, const ir::Module &M,
                  const ir::PolyProgram &P, const CodegenOptions &Opts,
                  const std::string &Name);

/// Last-resort kernel: the whole module as one scalar instruction running
/// the naive loop nest. Allocates nothing on-chip, so it can never exceed
/// a buffer capacity; used as the bottom of the degradation ladder.
Kernel lowerScalarFallback(const ir::Module &M, const std::string &Name);

} // namespace cce
} // namespace akg

#endif // AKG_TARGET_CODEGEN_H
