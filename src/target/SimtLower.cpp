//===- target/SimtLower.cpp - AST -> SIMT kernel lowering -----------------===//

#include "target/SimtLower.h"

#include "support/Stats.h"
#include "target/Vectorize.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace akg {
namespace simt {

using namespace ir;
using cce::Instr;
using cce::InstrKind;
using cce::InstrPtr;
using cce::Kernel;

namespace {

int64_t ceilDiv(int64_t A, int64_t B) { return B ? (A + B - 1) / B : 0; }
int64_t roundUpTo(int64_t A, int64_t B) { return ceilDiv(A, B) * B; }

//===----------------------------------------------------------------------===//
// First-tile static evaluation and affine analysis (mirrors Codegen.cpp:
// the lowering sizes boxes from the first = largest tile).
//===----------------------------------------------------------------------===//

int64_t evalFirstTile(const Expr &E) {
  if (!E)
    return 0;
  switch (E->Kind) {
  case ExprKind::IntImm:
    return E->IntVal;
  case ExprKind::FloatImm:
    return static_cast<int64_t>(E->FloatVal);
  case ExprKind::Var:
    return 0;
  case ExprKind::Add:
    return evalFirstTile(E->Operands[0]) + evalFirstTile(E->Operands[1]);
  case ExprKind::Sub:
    return evalFirstTile(E->Operands[0]) - evalFirstTile(E->Operands[1]);
  case ExprKind::Mul:
    return evalFirstTile(E->Operands[0]) * evalFirstTile(E->Operands[1]);
  case ExprKind::Div:
  case ExprKind::FloorDiv: {
    int64_t A = evalFirstTile(E->Operands[0]);
    int64_t B = evalFirstTile(E->Operands[1]);
    if (!B)
      return 0;
    int64_t Q = A / B;
    if ((A % B) && ((A < 0) != (B < 0)) && E->Kind == ExprKind::FloorDiv)
      --Q;
    return Q;
  }
  case ExprKind::Mod: {
    int64_t A = evalFirstTile(E->Operands[0]);
    int64_t B = evalFirstTile(E->Operands[1]);
    return B ? ((A % B) + B) % B : 0;
  }
  case ExprKind::Min:
    return std::min(evalFirstTile(E->Operands[0]),
                    evalFirstTile(E->Operands[1]));
  case ExprKind::Max:
    return std::max(evalFirstTile(E->Operands[0]),
                    evalFirstTile(E->Operands[1]));
  case ExprKind::Select:
    return std::max(evalFirstTile(E->Operands[1]),
                    evalFirstTile(E->Operands[2]));
  case ExprKind::Cast:
    return evalFirstTile(E->Operands[0]);
  default:
    return 0;
  }
}

struct LoopInfo {
  Expr MinE;
  int64_t Ext = 0;
};
using LoopMap = std::map<std::string, LoopInfo>;

void collectLoops(const Stmt &S, LoopMap &L) {
  if (!S)
    return;
  if (S->Kind == StmtKind::For) {
    LoopInfo &LI = L[S->Var];
    if (!LI.MinE)
      LI.MinE = S->Min;
    LI.Ext = std::max<int64_t>({LI.Ext, 1, evalFirstTile(S->Extent)});
  }
  for (const Stmt &C : S->Children)
    collectLoops(C, L);
}

bool containsLoopVar(const Expr &E, const LoopMap &L) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Var)
    return L.count(E->Name) != 0;
  for (const Expr &O : E->Operands)
    if (containsLoopVar(O, L))
      return true;
  return false;
}

using CoeffMap = std::map<std::string, int64_t>;

std::optional<CoeffMap> affineCoeffs(const Expr &E, const LoopMap &L) {
  if (!E)
    return CoeffMap{};
  switch (E->Kind) {
  case ExprKind::IntImm:
  case ExprKind::FloatImm:
    return CoeffMap{};
  case ExprKind::Var: {
    CoeffMap C;
    if (L.count(E->Name))
      C[E->Name] = 1;
    return C;
  }
  case ExprKind::Add:
  case ExprKind::Sub: {
    auto A = affineCoeffs(E->Operands[0], L);
    auto B = affineCoeffs(E->Operands[1], L);
    if (!A || !B)
      return std::nullopt;
    int64_t Sign = E->Kind == ExprKind::Sub ? -1 : 1;
    for (const auto &[V, C] : *B)
      (*A)[V] += Sign * C;
    return A;
  }
  case ExprKind::Mul: {
    int64_t C;
    if (isConstInt(E->Operands[0], &C)) {
      auto B = affineCoeffs(E->Operands[1], L);
      if (!B)
        return std::nullopt;
      for (auto &[V, X] : *B)
        X *= C;
      return B;
    }
    if (isConstInt(E->Operands[1], &C)) {
      auto A = affineCoeffs(E->Operands[0], L);
      if (!A)
        return std::nullopt;
      for (auto &[V, X] : *A)
        X *= C;
      return A;
    }
    return containsLoopVar(E, L) ? std::nullopt
                                 : std::optional<CoeffMap>(CoeffMap{});
  }
  case ExprKind::Cast:
    return affineCoeffs(E->Operands[0], L);
  default:
    return containsLoopVar(E, L) ? std::nullopt
                                 : std::optional<CoeffMap>(CoeffMap{});
  }
}

int64_t boxWidth(const Expr &Idx, const LoopMap &L, int64_t Full) {
  auto C = affineCoeffs(Idx, L);
  if (!C)
    return Full;
  int64_t W = 1;
  for (const auto &[V, X] : *C) {
    auto It = L.find(V);
    if (It != L.end())
      W += std::abs(X) * (It->second.Ext - 1);
  }
  return std::max<int64_t>(1, std::min(W, Full));
}

/// Coalesced global-memory transaction segments a box transfer needs: one
/// contiguous run per discontiguous burst, each split into CoalesceBytes
/// segments (sim/Target.h). Computed at finalize time from the box shape.
int64_t burstsFor(const std::vector<int64_t> &Box,
                  const std::vector<int64_t> &Full) {
  size_t T = Box.size();
  while (T > 0 && T <= Full.size() && Box[T - 1] >= Full[T - 1])
    --T;
  int64_t B = 1;
  for (size_t I = 0; I + 1 < T; ++I)
    B *= Box[I];
  return std::max<int64_t>(B, 1);
}

//===----------------------------------------------------------------------===//
// Statement walking helpers (mirrors Codegen.cpp)
//===----------------------------------------------------------------------===//

void collectReadNodes(const Expr &E, std::vector<const ExprNode *> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::TensorRead)
    Out.push_back(E.get());
  for (const Expr &O : E->Operands)
    collectReadNodes(O, Out);
}

void collectUnitAccesses(const Stmt &S, std::vector<const ExprNode *> &Reads,
                         std::vector<const StmtNode *> &Writes) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::For:
    collectReadNodes(S->Min, Reads);
    collectReadNodes(S->Extent, Reads);
    break;
  case StmtKind::IfThenElse:
    collectReadNodes(S->Cond, Reads);
    break;
  case StmtKind::Provide:
    collectReadNodes(S->Value, Reads);
    for (const Expr &I : S->Indices)
      collectReadNodes(I, Reads);
    Writes.push_back(S.get());
    break;
  case StmtKind::Evaluate:
    collectReadNodes(S->Value, Reads);
    break;
  default:
    break;
  }
  for (const Stmt &C : S->Children)
    collectUnitAccesses(C, Reads, Writes);
}

bool isMark(const Stmt &S, const char *Tag) {
  return S && S->Kind == StmtKind::Attr && S->Key == "mark" &&
         S->StrValue == Tag;
}

bool hasUnitMark(const Stmt &S) {
  if (!S)
    return false;
  if (isMark(S, "local_UB") || isMark(S, "cube_unit"))
    return true;
  for (const Stmt &C : S->Children)
    if (hasUnitMark(C))
      return true;
  return false;
}

int64_t pointsIn(const Stmt &S) {
  if (!S)
    return 0;
  switch (S->Kind) {
  case StmtKind::For:
    return std::max<int64_t>(1, evalFirstTile(S->Extent)) *
           pointsIn(S->Children.empty() ? nullptr : S->Children[0]);
  case StmtKind::Block:
  case StmtKind::IfThenElse: {
    int64_t N = 0;
    for (const Stmt &C : S->Children)
      N += pointsIn(C);
    return N;
  }
  case StmtKind::Attr:
  case StmtKind::Allocate:
    return pointsIn(S->Children.empty() ? nullptr : S->Children[0]);
  case StmtKind::Provide:
  case StmtKind::Evaluate:
    return 1;
  }
  return 0;
}

/// A unit is thread-mappable when every leaf loop is a plain parallel
/// point loop the vectorizer would accept: each thread then owns a
/// contiguous slice of the iteration space. Reductions and irregular
/// leaves run single-threaded (the scalar degrade), mirroring the CCE
/// vectorize gate.
bool containsForStmt(const Stmt &S) {
  if (!S)
    return false;
  if (S->Kind == StmtKind::For)
    return true;
  for (const Stmt &C : S->Children)
    if (containsForStmt(C))
      return true;
  return false;
}

bool leavesThreadMappable(const Stmt &S, bool &Any) {
  if (!S)
    return true;
  switch (S->Kind) {
  case StmtKind::For: {
    const Stmt &Body = S->Children.empty() ? nullptr : S->Children[0];
    if (containsForStmt(Body))
      return leavesThreadMappable(Body, Any);
    if (!cce::isVectorizableLoop(S))
      return false;
    Any = true;
    return true;
  }
  case StmtKind::Block:
  case StmtKind::IfThenElse:
    for (const Stmt &C : S->Children)
      if (!leavesThreadMappable(C, Any))
        return false;
    return true;
  case StmtKind::Attr:
  case StmtKind::Allocate:
    return leavesThreadMappable(
        S->Children.empty() ? nullptr : S->Children[0], Any);
  default:
    return true;
  }
}

Tensor makeLocal(std::string Name, std::vector<int64_t> Shape, DType T) {
  auto D = std::make_shared<TensorDecl>();
  D->Name = std::move(Name);
  D->Shape = std::move(Shape);
  D->Type = T;
  return D;
}

//===----------------------------------------------------------------------===//
// The SIMT lowering driver
//===----------------------------------------------------------------------===//

const char *const GridDims[] = {"blockIdx.x", "blockIdx.y", "blockIdx.z"};

class SimtLowering {
public:
  SimtLowering(const Module &M, const cce::CodegenOptions &O)
      : Mod(M), Opts(O) {}

  Kernel run(const Stmt &Ast, const std::string &Name) {
    K.Name = Name;
    K.Target = sim::TargetKind::Simt;
    K.GmTensors = Mod.allTensors();
    for (const Tensor &T : Mod.outputs())
      OutputNames.insert(T->Name);
    int ScanRegion = 0;
    scanUses(Ast, /*Region=*/0, ScanRegion);
    lowerTop(Ast, K.Body, /*GridDepth=*/0, /*BlocksOnPath=*/1);
    // Launch shape: warp-rounded block size covering the widest unit,
    // capped by the machine's per-block thread limit.
    int64_t Threads = std::max<int64_t>(MaxUnitElems, 1);
    Threads = roundUpTo(Threads, Opts.Simt.WarpSize);
    Threads = std::min(Threads, Opts.Simt.MaxThreadsPerBlock);
    K.BlockThreads = std::max(Threads, Opts.Simt.WarpSize);
    K.GridBlocks = std::max<int64_t>(GridEst, 1);
    return K;
  }

private:
  const Module &Mod;
  cce::CodegenOptions Opts;
  Kernel K;

  std::set<std::string> OutputNames;
  std::set<std::string> UsedBufNames;
  std::set<std::string> DbBoxes; // pipelined (cp.async) shared buffers
  int RegionCounter = 0;
  int UnitCounter = 0;
  int64_t MaxUnitElems = 0;
  int64_t GridEst = 1;

  // -- escape analysis (mirrors Codegen.cpp so region numbering and
  // -- store-back decisions match the CCE backend exactly) ---------------

  struct UseInfo {
    std::set<int> ReadRegions;
    bool ReadOutside = false;
  };
  std::map<std::string, UseInfo> Uses;

  void noteRead(const std::string &Name, int Region) {
    UseInfo &U = Uses[Name];
    if (Region == 0)
      U.ReadOutside = true;
    else
      U.ReadRegions.insert(Region);
  }

  void scanExpr(const Expr &E, int Region) {
    if (!E)
      return;
    if (E->Kind == ExprKind::TensorRead && E->Ref)
      noteRead(E->Ref->Name, Region);
    for (const Expr &O : E->Operands)
      scanExpr(O, Region);
  }

  void scanUses(const Stmt &S, int Region, int &Counter) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Attr:
      if (isMark(S, "skipped"))
        return;
      if (isMark(S, "on_chip")) {
        ++Counter;
        scanUses(S->Children.empty() ? nullptr : S->Children[0], Counter,
                 Counter);
        return;
      }
      break;
    case StmtKind::For:
      scanExpr(S->Min, Region);
      scanExpr(S->Extent, Region);
      break;
    case StmtKind::IfThenElse:
      scanExpr(S->Cond, Region);
      break;
    case StmtKind::Provide:
      scanExpr(S->Value, Region);
      for (const Expr &I : S->Indices)
        scanExpr(I, Region);
      break;
    case StmtKind::Evaluate:
      scanExpr(S->Value, Region);
      break;
    default:
      break;
    }
    for (const Stmt &C : S->Children)
      scanUses(C, Region, Counter);
  }

  bool escapes(const std::string &Name, int Region) const {
    if (OutputNames.count(Name))
      return true;
    auto It = Uses.find(Name);
    if (It == Uses.end())
      return false;
    if (It->second.ReadOutside)
      return true;
    for (int R : It->second.ReadRegions)
      if (R != Region)
        return true;
    return false;
  }

  // -- region state -------------------------------------------------------

  struct Box {
    std::string BufName;
    Tensor Global;
    std::vector<int64_t> Shape;
    bool Loaded = false;
    bool LoadedGlobal = false;
    std::vector<Instr *> SizedInstrs;
  };

  struct RegionCtx {
    int Id = 0;
    LoopMap Loops;
    std::map<std::string, Box> Boxes;
    std::vector<std::string> BoxOrder;
    std::set<std::string> WrittenHere;
    std::vector<std::string> WriteOrder;
  };

  std::string uniqueBufName(const std::string &Base) {
    std::string N = Base;
    unsigned I = 0;
    while (!UsedBufNames.insert(N).second)
      N = Base + "_" + std::to_string(++I);
    return N;
  }

  Box &ensureBox(RegionCtx &RS, const Tensor &T,
                 const std::vector<Expr> &Idx) {
    auto It = RS.Boxes.find(T->Name);
    if (It == RS.Boxes.end()) {
      Box B;
      B.BufName = uniqueBufName(T->Name + "_sm_r" + std::to_string(RS.Id));
      B.Global = T;
      B.Shape.assign(T->Shape.size(), 1);
      It = RS.Boxes.emplace(T->Name, std::move(B)).first;
      RS.BoxOrder.push_back(T->Name);
    }
    Box &B = It->second;
    for (size_t D = 0; D < B.Shape.size(); ++D) {
      int64_t W = D < Idx.size() ? boxWidth(Idx[D], RS.Loops, T->Shape[D])
                                 : T->Shape[D];
      B.Shape[D] = std::min(T->Shape[D], std::max(B.Shape[D], W));
    }
    return B;
  }

  void markWritten(RegionCtx &RS, const Tensor &T) {
    if (RS.WrittenHere.insert(T->Name).second)
      RS.WriteOrder.push_back(T->Name);
    RS.Boxes[T->Name].Loaded = true; // produced in shared, never load
  }

  // -- top level ----------------------------------------------------------

  void scanStageDmas(const std::vector<InstrPtr> &L, bool &Any, bool &All) {
    for (const InstrPtr &I : L) {
      if (I->Kind == InstrKind::Loop) {
        scanStageDmas(I->Body, Any, All);
        continue;
      }
      if (I->Kind == InstrKind::Dma && I->Pipe == sim::Pipe::MTE2) {
        Any = true;
        if (I->WriteBufs.empty() || !DbBoxes.count(I->WriteBufs[0]))
          All = false;
      }
    }
  }

  void lowerTop(const Stmt &S, std::vector<InstrPtr> &Out, int GridDepth,
                int64_t BlocksOnPath) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block:
      for (const Stmt &C : S->Children)
        lowerTop(C, Out, GridDepth, BlocksOnPath);
      return;
    case StmtKind::For: {
      InstrPtr L = cce::makeLoop(S->Var, S->Min, S->Extent);
      int ChildDepth = GridDepth;
      int64_t ChildBlocks = BlocksOnPath;
      // Grid mapping: the outermost tile loops (outside any staging
      // region) bind to blockIdx dims, one tile per thread block.
      if (GridDepth < 3) {
        L->MapDim = GridDims[GridDepth];
        ChildDepth = GridDepth + 1;
        ChildBlocks =
            BlocksOnPath * std::max<int64_t>(1, evalFirstTile(S->Extent));
        GridEst = std::max(GridEst, ChildBlocks);
      }
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], L->Body,
               ChildDepth, ChildBlocks);
      if (L->Body.empty())
        return;
      if (Opts.EnableDoubleBuffer) {
        bool Any = false, All = true;
        scanStageDmas(L->Body, Any, All);
        L->DoubleBuffered = Any && All;
      }
      Out.push_back(std::move(L));
      return;
    }
    case StmtKind::Attr:
      if (isMark(S, "skipped"))
        return;
      if (isMark(S, "on_chip")) {
        ++RegionCounter;
        lowerRegion(S->Children.empty() ? nullptr : S->Children[0], Out);
        return;
      }
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], Out,
               GridDepth, BlocksOnPath);
      return;
    case StmtKind::Allocate:
      lowerTop(S->Children.empty() ? nullptr : S->Children[0], Out,
               GridDepth, BlocksOnPath);
      return;
    default: {
      // A statement outside any staging region: one thread runs it
      // against global memory (robust catch-all; nothing promoted).
      std::vector<const ExprNode *> Reads;
      std::vector<const StmtNode *> Writes;
      collectUnitAccesses(S, Reads, Writes);
      InstrPtr I = cce::makeCompute(InstrKind::ScalarOp, sim::Pipe::S, S,
                                    pointsIn(S), "gm_scalar");
      for (const ExprNode *R : Reads)
        if (R->Ref && std::find(I->ReadBufs.begin(), I->ReadBufs.end(),
                                R->Ref->Name) == I->ReadBufs.end())
          I->ReadBufs.push_back(R->Ref->Name);
      for (const StmtNode *W : Writes)
        if (W->Target && std::find(I->WriteBufs.begin(), I->WriteBufs.end(),
                                   W->Target->Name) == I->WriteBufs.end())
          I->WriteBufs.push_back(W->Target->Name);
      Out.push_back(std::move(I));
      return;
    }
    }
  }

  // -- regions: shared-memory promotion -----------------------------------

  void lowerRegion(const Stmt &Body, std::vector<InstrPtr> &Out) {
    RegionCtx RS;
    RS.Id = RegionCounter;
    collectLoops(Body, RS.Loops);
    emitRegionBody(Body, RS, Out);

    // Store escaping results back to global memory.
    for (const std::string &Name : RS.WriteOrder) {
      if (!escapes(Name, RS.Id))
        continue;
      Box &B = RS.Boxes[Name];
      InstrPtr D =
          cce::makeDma(sim::Pipe::MTE3, nullptr, 0, 1, "store." + Name);
      D->ReadBufs = {B.BufName};
      D->WriteBufs = {Name};
      B.SizedInstrs.push_back(D.get());
      Out.push_back(std::move(D));
    }

    // Finalize shared boxes: allocations, pipelining, transfer sizes.
    for (const std::string &Name : RS.BoxOrder) {
      Box &B = RS.Boxes[Name];
      Tensor Decl = makeLocal(B.BufName, B.Shape, B.Global->Type);
      bool Db = Opts.EnableDoubleBuffer && B.LoadedGlobal &&
                Decl->sizeBytes() <= Opts.Simt.SharedMemBytes / 8;
      K.Buffers.push_back({B.BufName, sim::Buffer::Shared, Decl, Db});
      if (Db)
        DbBoxes.insert(B.BufName);
      int64_t Bytes = Decl->sizeBytes();
      int64_t Bursts = burstsFor(B.Shape, B.Global->Shape);
      for (Instr *I : B.SizedInstrs) {
        I->Bytes = Bytes;
        I->Bursts = Bursts;
      }
    }
  }

  void emitRegionBody(const Stmt &S, RegionCtx &RS,
                      std::vector<InstrPtr> &Out) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block:
      for (const Stmt &C : S->Children)
        emitRegionBody(C, RS, Out);
      return;
    case StmtKind::Attr: {
      if (isMark(S, "skipped"))
        return;
      const Stmt &Child = S->Children.empty() ? nullptr : S->Children[0];
      // SIMT has no cube unit: matmul/conv units thread-map like any
      // other compute (tensor-core mapping is future work).
      if (isMark(S, "local_UB") || isMark(S, "cube_unit")) {
        ++UnitCounter;
        emitThreadUnit(Child, RS, Out);
        return;
      }
      emitRegionBody(Child, RS, Out);
      return;
    }
    case StmtKind::Allocate:
      emitRegionBody(S->Children.empty() ? nullptr : S->Children[0], RS,
                     Out);
      return;
    case StmtKind::For:
      if (hasUnitMark(S)) {
        InstrPtr L = cce::makeLoop(S->Var, S->Min, S->Extent);
        emitRegionBody(S->Children.empty() ? nullptr : S->Children[0], RS,
                       L->Body);
        if (!L->Body.empty())
          Out.push_back(std::move(L));
        return;
      }
      ++UnitCounter;
      emitThreadUnit(S, RS, Out);
      return;
    default:
      ++UnitCounter;
      emitThreadUnit(S, RS, Out);
      return;
    }
  }

  // -- thread-parallel units ----------------------------------------------

  void emitThreadUnit(const Stmt &U, RegionCtx &RS,
                      std::vector<InstrPtr> &Out) {
    if (!U)
      return;
    std::vector<const ExprNode *> Reads;
    std::vector<const StmtNode *> Writes;
    collectUnitAccesses(U, Reads, Writes);
    if (Reads.empty() && Writes.empty())
      return;

    std::set<std::string> WrittenByUnit;
    for (const StmtNode *W : Writes)
      if (W->Target)
        WrittenByUnit.insert(W->Target->Name);

    auto PushName = [](std::vector<std::string> &V, const std::string &N) {
      if (std::find(V.begin(), V.end(), N) == V.end())
        V.push_back(N);
    };

    std::vector<std::string> RB, WB;
    for (const ExprNode *R : Reads) {
      if (!R->Ref)
        continue;
      std::vector<Expr> Idx(R->Operands.begin(), R->Operands.end());
      Box &B = ensureBox(RS, R->Ref, Idx);
      if (!RS.WrittenHere.count(R->Ref->Name) &&
          !WrittenByUnit.count(R->Ref->Name) && !B.Loaded) {
        // Cooperative block-wide staging load, global -> shared.
        InstrPtr L = cce::makeDma(sim::Pipe::MTE2, nullptr, 0, 1,
                                  "load." + R->Ref->Name);
        L->ReadBufs = {R->Ref->Name};
        L->WriteBufs = {B.BufName};
        B.SizedInstrs.push_back(L.get());
        B.Loaded = true;
        B.LoadedGlobal = true;
        Out.push_back(std::move(L));
      }
      PushName(RB, B.BufName);
    }

    bool AnyF32 = false;
    for (const StmtNode *W : Writes) {
      if (!W->Target)
        continue;
      Box &B = ensureBox(RS, W->Target, W->Indices);
      markWritten(RS, W->Target);
      PushName(WB, B.BufName);
      AnyF32 |= W->Target->Type == DType::F32;
    }

    bool Any = false;
    bool Threaded =
        Opts.EnableVectorize && leavesThreadMappable(U, Any) && Any;
    int64_t Elems = pointsIn(U);
    if (Threaded)
      MaxUnitElems = std::max(MaxUnitElems, Elems);
    InstrPtr C = cce::makeCompute(
        Threaded ? InstrKind::VectorOp : InstrKind::ScalarOp,
        Threaded ? sim::Pipe::V : sim::Pipe::S, U, Elems,
        "unit" + std::to_string(UnitCounter));
    C->Fp32 = AnyF32;
    C->ReadBufs = std::move(RB);
    C->WriteBufs = std::move(WB);
    Out.push_back(std::move(C));
  }
};

//===----------------------------------------------------------------------===//
// Barrier insertion
//===----------------------------------------------------------------------===//

struct BarrierState {
  std::set<std::string> SharedBufs;
  unsigned Inserted = 0;

  bool isShared(const std::string &N) const { return SharedBufs.count(N); }

  /// Rewrites \p L, inserting a barrier before any instruction whose
  /// shared reads conflict with writes since the last barrier (RAW) or
  /// whose shared writes conflict with prior reads/writes (WAR/WAW).
  /// \p Serial places a barrier after every instruction instead.
  void rewrite(std::vector<InstrPtr> &L, bool Serial) {
    std::set<std::string> WrittenSince, ReadSince;
    std::vector<InstrPtr> Out;
    auto Flush = [&]() {
      Out.push_back(cce::makeBarrier());
      ++Inserted;
      WrittenSince.clear();
      ReadSince.clear();
    };
    for (InstrPtr &I : L) {
      if (I->Kind == InstrKind::Loop) {
        // Conservative: synchronize around loops that touch shared
        // memory so loop-carried reuse of a staging buffer is ordered
        // across iterations.
        bool Touches = touchesShared(I->Body);
        if (Touches && (!WrittenSince.empty() || !ReadSince.empty()))
          Flush();
        rewrite(I->Body, Serial);
        if (Touches && !I->Body.empty() &&
            I->Body.back()->Kind != InstrKind::Barrier) {
          I->Body.push_back(cce::makeBarrier());
          ++Inserted;
        }
        Out.push_back(std::move(I));
        continue;
      }
      bool Conflict = false;
      for (const std::string &R : I->ReadBufs)
        if (isShared(R) && WrittenSince.count(R))
          Conflict = true;
      for (const std::string &W : I->WriteBufs)
        if (isShared(W) && (WrittenSince.count(W) || ReadSince.count(W)))
          Conflict = true;
      if (Conflict)
        Flush();
      for (const std::string &R : I->ReadBufs)
        if (isShared(R))
          ReadSince.insert(R);
      for (const std::string &W : I->WriteBufs)
        if (isShared(W))
          WrittenSince.insert(W);
      bool IsWork = I->Kind != InstrKind::Barrier;
      Out.push_back(std::move(I));
      if (Serial && IsWork)
        Flush();
    }
    L = std::move(Out);
  }

  bool touchesShared(const std::vector<InstrPtr> &L) const {
    for (const InstrPtr &I : L) {
      for (const std::string &R : I->ReadBufs)
        if (isShared(R))
          return true;
      for (const std::string &W : I->WriteBufs)
        if (isShared(W))
          return true;
      if (I->Kind == InstrKind::Loop && touchesShared(I->Body))
        return true;
    }
    return false;
  }
};

} // namespace

Kernel lowerToSimt(const Stmt &Ast, const Module &M,
                   const cce::CodegenOptions &Opts, const std::string &Name) {
  SimtLowering L(M, Opts);
  Kernel K = L.run(Ast, Name);
  // Unconditional counters for the compile trace's per-pass deltas.
  Stats::get().add("simt.lowered_kernels");
  if (!K.Buffers.empty())
    Stats::get().add("simt.buffers", static_cast<int64_t>(K.Buffers.size()));
  return K;
}

cce::SyncReport insertSimtBarriers(Kernel &K, cce::SyncStrategy Strategy) {
  BarrierState B;
  for (const cce::BufferAlloc &A : K.Buffers)
    if (A.Location == sim::Buffer::Shared)
      B.SharedBufs.insert(A.Name);
  B.rewrite(K.Body, Strategy == cce::SyncStrategy::FullSerial);
  cce::SyncReport R;
  R.BarriersInserted = B.Inserted;
  if (B.Inserted)
    Stats::get().add("simt.barriers", static_cast<int64_t>(B.Inserted));
  return R;
}

} // namespace simt
} // namespace akg
