//===- target/SimtLower.h - AST -> SIMT kernel lowering ---------*- C++ -*-===//
//
// The SIMT/GPU-like backend behind the target abstraction (sim/Target.h):
// lowers the same scheduled AST the CCE code generator consumes into a
// kernel for a grid-of-thread-blocks machine. The shared frontend (Pluto
// scheduling, auto-tiling, post-tiling fusion, AST generation) runs
// unchanged; only the lowering differs:
//
//   - outer tile loops are bound to the grid (blockIdx.x/y/z), one tile
//     per thread block, with block sizes warp-rounded and capped by
//     MaxThreadsPerBlock (occupancy-style cap);
//   - the "on_chip" staging regions the tiling pass marks become
//     shared-memory promotion: reused tile boxes are staged into
//     per-block shared memory (capacity-checked against SharedMemBytes
//     through the same retry ladder as the CCE UB check);
//   - compute units execute thread-parallel across the block; block-wide
//     __syncthreads barriers (insertSimtBarriers) order shared-memory
//     producers and consumers in place of CCE's set/wait flag pairs.
//
// The emitted kernel reuses the cce::Kernel instruction IR with
// Kernel::Target = Simt, Shared-memory allocations and grid-mapped
// loops; sim/SimtRun.h executes it deterministically under the
// coalescing cost model.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_SIMTLOWER_H
#define AKG_TARGET_SIMTLOWER_H

#include "target/Codegen.h"
#include "target/Sync.h"

namespace akg {
namespace simt {

/// Lowers the scheduled AST of module \p M to a SIMT kernel. Never fails
/// structurally: units the thread mapper cannot express degrade to
/// single-thread scalar code, exactly like the CCE scalar fallback.
/// Opts.EnableVectorize gates thread-parallel mapping (off: one thread
/// runs the unit serially); Opts.EnableDoubleBuffer gates cp.async-style
/// pipelined staging (double-counted in the capacity check).
cce::Kernel lowerToSimt(const ir::Stmt &Ast, const ir::Module &M,
                        const cce::CodegenOptions &Opts,
                        const std::string &Name);

/// Inserts block-wide __syncthreads barriers so shared-memory writers
/// complete before readers start (RAW) and readers finish before the
/// buffer is overwritten (WAR/WAW) — the SIMT replacement for CCE's
/// set/wait flag pairs. FullSerial places a barrier after every
/// instruction; the other strategies insert the minimal conflict cover.
cce::SyncReport insertSimtBarriers(cce::Kernel &K,
                                   cce::SyncStrategy Strategy);

} // namespace simt
} // namespace akg

#endif // AKG_TARGET_SIMTLOWER_H
