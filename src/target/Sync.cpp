//===- target/Sync.cpp - Pipeline synchronization insertion ---------------===//

#include "target/Sync.h"

#include "support/Stats.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>

namespace akg {
namespace cce {

namespace {

struct Footprint {
  std::set<std::string> R, W;
  std::set<sim::Pipe> Pipes;
  bool Compound = false; // Loop: internal ordering handled recursively
};

Footprint footprintOf(const Instr &I) {
  Footprint F;
  if (I.Kind == InstrKind::Loop) {
    F.Compound = true;
    for (const InstrPtr &C : I.Body) {
      Footprint CF = footprintOf(*C);
      F.R.insert(CF.R.begin(), CF.R.end());
      F.W.insert(CF.W.begin(), CF.W.end());
      F.Pipes.insert(CF.Pipes.begin(), CF.Pipes.end());
    }
    return F;
  }
  if (I.Kind == InstrKind::SetFlag || I.Kind == InstrKind::WaitFlag ||
      I.Kind == InstrKind::Barrier)
    return F;
  F.R.insert(I.ReadBufs.begin(), I.ReadBufs.end());
  F.W.insert(I.WriteBufs.begin(), I.WriteBufs.end());
  F.Pipes.insert(I.Pipe);
  return F;
}

bool intersects(const std::set<std::string> &A,
                const std::set<std::string> &B) {
  for (const std::string &X : A)
    if (B.count(X))
      return true;
  return false;
}

/// RAW/WAR/WAW conflict from instruction \p Src to later instruction \p Dst.
bool conflicts(const Footprint &Src, const Footprint &Dst) {
  return intersects(Src.W, Dst.R) || intersects(Src.W, Dst.W) ||
         intersects(Src.R, Dst.W);
}

struct FlagEdge {
  unsigned Src = 0, Dst = 0; // indices into the instruction list
  sim::Pipe SrcPipe = sim::Pipe::S, DstPipe = sim::Pipe::S;
  unsigned Depth = 1;
  bool Wrap = false; // loop back edge: set after Src, wait before Dst
};

class SyncInserter {
public:
  SyncInserter(SyncStrategy S) : Strategy(S) {}

  SyncReport Report;

  void process(std::vector<InstrPtr> &L, bool IsLoopBody, bool LoopDb) {
    // Inside-out: loop bodies first so their footprints are final.
    for (InstrPtr &I : L)
      if (I->Kind == InstrKind::Loop)
        process(I->Body, /*IsLoopBody=*/true, I->DoubleBuffered);

    if (Strategy == SyncStrategy::FullSerial) {
      serialize(L);
      return;
    }

    std::vector<Footprint> F;
    F.reserve(L.size());
    for (const InstrPtr &I : L)
      F.push_back(footprintOf(*I));

    std::vector<FlagEdge> Edges;
    std::vector<bool> BarrierBefore(L.size(), false);
    bool BarrierAtEnd = false;

    auto SinglePipe = [&](unsigned I) {
      return F[I].Pipes.size() == 1 ? *F[I].Pipes.begin() : sim::Pipe::S;
    };
    auto SamePipeOnly = [&](unsigned I, unsigned J) {
      return F[I].Pipes.size() == 1 && F[I].Pipes == F[J].Pipes;
    };

    // Forward edges.
    for (unsigned J = 0; J < L.size(); ++J) {
      for (unsigned I = 0; I < J; ++I) {
        if (!conflicts(F[I], F[J]))
          continue;
        if (SamePipeOnly(I, J))
          continue; // in-order within one pipe
        if (F[I].Compound || F[J].Compound) {
          BarrierBefore[J] = true;
          continue;
        }
        Edges.push_back(
            {I, J, SinglePipe(I), SinglePipe(J), /*Depth=*/1, false});
      }
    }

    // Loop-carried (wrap) edges: dependence from iteration t's instruction
    // J to iteration t+1's instruction I. Only pairs with J >= I need a
    // flag across the back edge; J < I is already implied by the forward
    // edge plus per-pipe ordering.
    if (IsLoopBody) {
      for (unsigned J = 0; J < L.size(); ++J) {
        for (unsigned I = 0; I <= J; ++I) {
          if (!conflicts(F[J], F[I]))
            continue;
          if (SamePipeOnly(I, J))
            continue;
          if (F[I].Compound || F[J].Compound) {
            BarrierAtEnd = true;
            continue;
          }
          Edges.push_back({J, I, SinglePipe(J), SinglePipe(I),
                           LoopDb ? 2u : 1u, true});
        }
      }
    }

    if (Strategy == SyncStrategy::AkgDp)
      Edges = minimalCover(Edges);
    else
      for (FlagEdge &E : Edges)
        E.Depth = 1; // TvmEmpirical: no ping-pong analysis

    materialize(L, Edges, BarrierBefore, BarrierAtEnd);
  }

private:
  SyncStrategy Strategy;
  std::array<unsigned, sim::NumPipes> NextEvent{};

  /// The DP grouping: per (src pipe, dst pipe), an edge is redundant when
  /// another kept edge with a later source and earlier destination already
  /// orders the pair (the wait happens no later, the set no earlier).
  std::vector<FlagEdge> minimalCover(const std::vector<FlagEdge> &Edges) {
    std::vector<FlagEdge> Kept;
    for (unsigned A = 0; A < Edges.size(); ++A) {
      bool Dominated = false;
      for (unsigned B = 0; B < Edges.size() && !Dominated; ++B) {
        if (A == B)
          continue;
        const FlagEdge &Ea = Edges[A], &Eb = Edges[B];
        if (Ea.SrcPipe != Eb.SrcPipe || Ea.DstPipe != Eb.DstPipe ||
            Ea.Wrap != Eb.Wrap || Ea.Depth != Eb.Depth)
          continue;
        bool Covers = Eb.Src >= Ea.Src && Eb.Dst <= Ea.Dst;
        bool Strict = Eb.Src > Ea.Src || Eb.Dst < Ea.Dst;
        // Ties broken by index so exactly one of two identical edges wins.
        if (Covers && (Strict || B < A))
          Dominated = true;
      }
      if (!Dominated)
        Kept.push_back(Edges[A]);
    }
    return Kept;
  }

  void materialize(std::vector<InstrPtr> &L,
                   const std::vector<FlagEdge> &Edges,
                   const std::vector<bool> &BarrierBefore,
                   bool BarrierAtEnd) {
    // Assign event ids round-robin per source pipe.
    std::vector<unsigned> Ids(Edges.size(), 0);
    for (unsigned E = 0; E < Edges.size(); ++E)
      Ids[E] = NextEvent[size_t(Edges[E].SrcPipe)]++ % 8;
    Report.FlagsInserted += unsigned(Edges.size());

    std::vector<InstrPtr> Out;
    for (unsigned Idx = 0; Idx < L.size(); ++Idx) {
      if (BarrierBefore[Idx]) {
        Out.push_back(makeBarrier());
        ++Report.BarriersInserted;
      }
      for (unsigned E = 0; E < Edges.size(); ++E)
        if (Edges[E].Dst == Idx)
          Out.push_back(makeWaitFlag(Edges[E].DstPipe, Edges[E].SrcPipe,
                                     Ids[E], Edges[E].Depth));
      Out.push_back(L[Idx]);
      for (unsigned E = 0; E < Edges.size(); ++E)
        if (Edges[E].Src == Idx)
          Out.push_back(makeSetFlag(Edges[E].SrcPipe, Ids[E]));
    }
    if (BarrierAtEnd) {
      Out.push_back(makeBarrier());
      ++Report.BarriersInserted;
    }
    L = std::move(Out);
  }

  void serialize(std::vector<InstrPtr> &L) {
    std::vector<InstrPtr> Out;
    for (InstrPtr &I : L) {
      bool NeedsBarrier = I->Kind != InstrKind::SetFlag &&
                          I->Kind != InstrKind::WaitFlag &&
                          I->Kind != InstrKind::Barrier;
      Out.push_back(std::move(I));
      if (NeedsBarrier) {
        Out.push_back(makeBarrier());
        ++Report.BarriersInserted;
      }
    }
    L = std::move(Out);
  }
};

} // namespace

SyncReport insertSynchronization(Kernel &K, SyncStrategy Strategy) {
  SyncInserter S(Strategy);
  S.process(K.Body, /*IsLoopBody=*/false, /*LoopDb=*/false);
  // Unconditional counters for the compile trace's per-pass deltas.
  if (S.Report.FlagsInserted)
    Stats::get().add("sync.flags", S.Report.FlagsInserted);
  if (S.Report.BarriersInserted)
    Stats::get().add("sync.barriers", S.Report.BarriersInserted);
  return S.Report;
}

} // namespace cce
} // namespace akg
