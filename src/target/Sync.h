//===- target/Sync.h - Pipeline synchronization insertion -------*- C++ -*-===//
//
// Inserts set_flag/wait_flag pairs (and barriers) so the six decoupled
// pipelines respect data dependences (paper Sec 7). The AkgDp strategy
// groups dependences per pipe pair and keeps only the non-dominated edges
// (the DP formulation of the paper); loop-carried edges in double-buffered
// loops wait at depth 2, which is exactly ping-pong buffering.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_SYNC_H
#define AKG_TARGET_SYNC_H

#include "target/CceIr.h"

namespace akg {
namespace cce {

enum class SyncStrategy {
  AkgDp,        // minimal flag cover + depth-2 ping-pong waits
  TvmEmpirical, // every conflicting pair gets its own depth-1 flag
  FullSerial,   // a pipe barrier after every instruction
};

struct SyncReport {
  unsigned FlagsInserted = 0;    // set/wait pairs
  unsigned BarriersInserted = 0; // full barriers
};

/// Rewrites \p K in place, inserting synchronization instructions.
SyncReport insertSynchronization(Kernel &K, SyncStrategy Strategy);

} // namespace cce
} // namespace akg

#endif // AKG_TARGET_SYNC_H
