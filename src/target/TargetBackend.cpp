//===- target/TargetBackend.cpp - Backend dispatch interface --------------===//

#include "target/TargetBackend.h"

#include "target/SimtLower.h"

namespace akg {

namespace {

class CceBackend final : public TargetBackend {
public:
  sim::TargetKind kind() const override { return sim::TargetKind::Cce; }
  const char *lowerPassName() const override { return "lower_cce"; }

  cce::Kernel lower(const ir::Stmt &Ast, const ir::Module &M,
                    const ir::PolyProgram &P, const cce::CodegenOptions &Opts,
                    const std::string &Name) const override {
    return cce::lowerToCce(Ast, M, P, Opts, Name);
  }

  std::string checkStorage(const cce::Kernel &K,
                           const cce::CodegenOptions &Opts) const override {
    return cce::checkBufferCapacities(K, Opts.Machine);
  }

  cce::SyncReport insertSync(cce::Kernel &K,
                             cce::SyncStrategy S) const override {
    return cce::insertSynchronization(K, S);
  }

  cce::Kernel scalarFallback(const ir::Module &M,
                             const std::string &Name) const override {
    return cce::lowerScalarFallback(M, Name);
  }
};

class SimtBackend final : public TargetBackend {
public:
  sim::TargetKind kind() const override { return sim::TargetKind::Simt; }
  const char *lowerPassName() const override { return "lower_simt"; }

  cce::Kernel lower(const ir::Stmt &Ast, const ir::Module &M,
                    const ir::PolyProgram &, const cce::CodegenOptions &Opts,
                    const std::string &Name) const override {
    return simt::lowerToSimt(Ast, M, Opts, Name);
  }

  std::string checkStorage(const cce::Kernel &K,
                           const cce::CodegenOptions &Opts) const override {
    return cce::checkSimtCapacities(K, Opts.Simt);
  }

  cce::SyncReport insertSync(cce::Kernel &K,
                             cce::SyncStrategy S) const override {
    return simt::insertSimtBarriers(K, S);
  }

  cce::Kernel scalarFallback(const ir::Module &M,
                             const std::string &Name) const override {
    cce::Kernel K = cce::lowerScalarFallback(M, Name);
    // Single-thread launch: the whole module evaluated by one thread of
    // one block; allocates nothing in shared memory, so it always fits.
    K.Target = sim::TargetKind::Simt;
    K.GridBlocks = 1;
    K.BlockThreads = 1;
    return K;
  }
};

} // namespace

const TargetBackend &targetBackend(sim::TargetKind K) {
  static const CceBackend Cce;
  static const SimtBackend Simt;
  return K == sim::TargetKind::Simt ? static_cast<const TargetBackend &>(Simt)
                                    : Cce;
}

} // namespace akg
