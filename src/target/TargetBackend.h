//===- target/TargetBackend.h - Backend dispatch interface ------*- C++ -*-===//
//
// The seam between the shared polyhedral frontend and the per-target
// backends. Everything above AST generation (preparation, Pluto
// scheduling, auto-tiling, post-tiling fusion, intra-tile dispatch) is
// target-independent; everything below — lowering the scheduled AST to
// the instruction IR, checking the lowered kernel against the machine's
// on-chip capacities, inserting synchronization, and the bottom-rung
// scalar fallback — routes through this interface.
//
// Backends are stateless singletons (all configuration travels in
// cce::CodegenOptions), so the pass pipeline can hold one pointer per
// compile and stay safe for concurrent compiles. The CCE backend
// preserves the pre-abstraction behavior bit for bit; the SIMT backend
// (target/SimtLower.h) lowers the same ASTs to a grid-of-thread-blocks
// machine.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_TARGETBACKEND_H
#define AKG_TARGET_TARGETBACKEND_H

#include "ir/PolyExtract.h"
#include "target/Codegen.h"
#include "target/Sync.h"

namespace akg {

class TargetBackend {
public:
  virtual ~TargetBackend() = default;

  virtual sim::TargetKind kind() const = 0;

  /// Trace/pass name of the lowering pass ("lower_cce", "lower_simt").
  virtual const char *lowerPassName() const = 0;

  /// Lowers the scheduled AST to this target's kernel. Never fails
  /// structurally (units the target cannot express degrade in place).
  virtual cce::Kernel lower(const ir::Stmt &Ast, const ir::Module &M,
                            const ir::PolyProgram &P,
                            const cce::CodegenOptions &Opts,
                            const std::string &Name) const = 0;

  /// Liveness-aware capacity check against this target's on-chip
  /// memories; "" when everything fits. A non-empty diagnostic drives the
  /// tile-retry halving ladder exactly as on CCE.
  virtual std::string checkStorage(const cce::Kernel &K,
                                   const cce::CodegenOptions &Opts) const = 0;

  /// Inserts this target's synchronization: set/wait flag pairs on CCE,
  /// block-wide __syncthreads barriers on SIMT.
  virtual cce::SyncReport insertSync(cce::Kernel &K,
                                     cce::SyncStrategy S) const = 0;

  /// Bottom of the degradation ladder: a kernel that always fits and is
  /// always correct on this target.
  virtual cce::Kernel scalarFallback(const ir::Module &M,
                                     const std::string &Name) const = 0;
};

/// The stateless backend singleton for \p K.
const TargetBackend &targetBackend(sim::TargetKind K);

} // namespace akg

#endif // AKG_TARGET_TARGETBACKEND_H
