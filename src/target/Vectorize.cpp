//===- target/Vectorize.cpp - SIMD legality analysis ----------------------===//

#include "target/Vectorize.h"

#include <optional>

namespace akg {
namespace cce {

using namespace ir;

namespace {

bool containsVar(const Expr &E, const std::string &Var) {
  if (!E)
    return false;
  if (E->Kind == ExprKind::Var)
    return E->Name == Var;
  for (const Expr &O : E->Operands)
    if (containsVar(O, Var))
      return true;
  return false;
}

/// Coefficient of Var in E when E is affine in Var; nullopt otherwise.
/// Expressions not mentioning Var are affine with coefficient 0 whatever
/// their shape.
std::optional<int64_t> varCoeff(const Expr &E, const std::string &Var) {
  if (!E)
    return 0;
  switch (E->Kind) {
  case ExprKind::IntImm:
  case ExprKind::FloatImm:
    return 0;
  case ExprKind::Var:
    return E->Name == Var ? 1 : 0;
  case ExprKind::Add: {
    auto A = varCoeff(E->Operands[0], Var), B = varCoeff(E->Operands[1], Var);
    if (A && B)
      return *A + *B;
    return std::nullopt;
  }
  case ExprKind::Sub: {
    auto A = varCoeff(E->Operands[0], Var), B = varCoeff(E->Operands[1], Var);
    if (A && B)
      return *A - *B;
    return std::nullopt;
  }
  case ExprKind::Mul: {
    int64_t C;
    if (isConstInt(E->Operands[0], &C)) {
      auto B = varCoeff(E->Operands[1], Var);
      return B ? std::optional<int64_t>(C * *B) : std::nullopt;
    }
    if (isConstInt(E->Operands[1], &C)) {
      auto A = varCoeff(E->Operands[0], Var);
      return A ? std::optional<int64_t>(C * *A) : std::nullopt;
    }
    return containsVar(E, Var) ? std::nullopt : std::optional<int64_t>(0);
  }
  case ExprKind::Cast:
    return varCoeff(E->Operands[0], Var);
  default:
    // FloorDiv/Mod/Min/Max/Select/Call/TensorRead/...: affine only if the
    // variable does not occur at all.
    return containsVar(E, Var) ? std::nullopt : std::optional<int64_t>(0);
  }
}

/// Collects every TensorRead in an expression tree.
void collectReadExprs(const Expr &E, std::vector<const ExprNode *> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::TensorRead)
    Out.push_back(E.get());
  for (const Expr &O : E->Operands)
    collectReadExprs(O, Out);
}

bool indicesOk(const std::vector<Expr> &Idx, const std::string &Var,
               bool IsWrite) {
  for (unsigned D = 0; D < Idx.size(); ++D) {
    bool Last = D + 1 == Idx.size();
    auto C = varCoeff(Idx[D], Var);
    if (!C)
      return false;
    if (!Last && *C != 0)
      return false; // strided or gathered across rows
    if (Last && IsWrite && *C != 1)
      return false; // write must sweep contiguously
    if (Last && !IsWrite && *C != 0 && *C != 1)
      return false; // reads: broadcast or contiguous only
  }
  return true;
}

bool bodyVectorizable(const Stmt &S, const std::string &Var) {
  if (!S)
    return true;
  switch (S->Kind) {
  case StmtKind::Block:
    for (const Stmt &C : S->Children)
      if (!bodyVectorizable(C, Var))
        return false;
    return true;
  case StmtKind::Provide: {
    if (!indicesOk(S->Indices, Var, /*IsWrite=*/true))
      return false;
    std::vector<const ExprNode *> Reads;
    collectReadExprs(S->Value, Reads);
    for (const ExprNode *R : Reads) {
      std::vector<Expr> Idx(R->Operands.begin(), R->Operands.end());
      if (!indicesOk(Idx, Var, /*IsWrite=*/false))
        return false;
    }
    return true;
  }
  case StmtKind::IfThenElse:
    // A guard whose condition is uniform across the lanes (it does not
    // mention the vector variable) predicates the whole intrinsic; guards
    // that vary per lane need the scalar pipe.
    if (containsVar(S->Cond, Var))
      return false;
    return bodyVectorizable(S->Children.empty() ? nullptr : S->Children[0],
                            Var) &&
           bodyVectorizable(S->Children.size() > 1 ? S->Children[1] : nullptr,
                            Var);
  case StmtKind::Attr:
    return bodyVectorizable(S->Children.empty() ? nullptr : S->Children[0],
                            Var);
  default:
    // Nested loops, allocates, evaluates: a single intrinsic cannot
    // express them; let the scalar pipe handle it.
    return false;
  }
}

} // namespace

bool isUnitStride(const Expr &E, const std::string &Var) {
  auto C = varCoeff(E, Var);
  return C && *C == 1;
}

bool isVectorizableLoop(const Stmt &S) {
  if (!S || S->Kind != StmtKind::For)
    return false;
  const Stmt &Body = S->Children.empty() ? nullptr : S->Children[0];
  return bodyVectorizable(Body, S->Var);
}

} // namespace cce
} // namespace akg
