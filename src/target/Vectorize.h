//===- target/Vectorize.h - SIMD legality analysis --------------*- C++ -*-===//
//
// Decides whether a loop can be mapped to a single vector intrinsic on
// the V pipe (Sec 6): the innermost dimension must be unit-stride in every
// access's last index and absent from the other indices, so the intrinsic
// reads/writes contiguous UB spans.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TARGET_VECTORIZE_H
#define AKG_TARGET_VECTORIZE_H

#include "ir/Stmt.h"

#include <string>

namespace akg {
namespace cce {

/// True when \p E is affine in \p Var with coefficient exactly 1 (other
/// variables may appear as symbolic offsets).
bool isUnitStride(const ir::Expr &E, const std::string &Var);

/// True when \p S is a For loop whose body is straight-line Provides with
/// unit-stride last-index accesses in the loop variable (invariant reads
/// allowed) and no occurrence of the variable in non-last indices, nested
/// loops, or control conditions.
bool isVectorizableLoop(const ir::Stmt &S);

} // namespace cce
} // namespace akg

#endif // AKG_TARGET_VECTORIZE_H
