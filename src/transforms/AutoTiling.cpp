//===- transforms/AutoTiling.cpp - Automatic tile-size selection ----------===//

#include "transforms/AutoTiling.h"

#include "support/Stats.h"
#include "transforms/Conv.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <map>
#include <set>

namespace akg {
namespace transforms {

namespace {

/// Span polynomial of one tensor dimension: constant part plus, per
/// live-out band dim, the |coefficient| scaling the tile size.
struct SpanPoly {
  int64_t Const = 1;     // 1 + contributions of non-band iters (full)
  int64_t CapConst = 1;  // as Const, but reduction spans chunk-capped
  std::vector<int64_t> BandCoeff; // per band dim

  int64_t eval(const std::vector<int64_t> &T, bool Capacity) const {
    int64_t S = Capacity ? CapConst : Const;
    for (unsigned I = 0; I < BandCoeff.size(); ++I)
      S += BandCoeff[I] * (T[I] - 1);
    return S;
  }
};

struct TensorFootprint {
  ir::Tensor T;
  std::vector<SpanPoly> Dims;
  bool CubeOperand = false;
  int64_t CapBytesNow = 0; // scratch: resident bytes at the current pick


};

/// The target-specific numbers the tile search consults: working-set
/// capacities and the per-tile data-movement cost coefficients. The CCE
/// values reproduce the original hard-coded expressions bit for bit; the
/// SIMT values gate against per-block shared memory and charge coalesced
/// transactions instead of DMA bursts.
struct TileCostModel {
  double VecCapBytes = 0;    // UB (CCE) / shared memory (SIMT) gate
  double CubeCapBytes = 0;   // L1 half-capacity gate; +inf when no cube path
  double StreamLatency = 0;  // warm-up cycles per tensor stream
  double BurstCost = 0;      // cycles per discontiguous burst / transaction
  double BytesPerCycle = 1;  // memory bandwidth
  bool CubeAware = true;     // model the fractal pipeline's L1 streaming
  const char *VecBufName = "UB";  // Fig 4 policy rendering
  const char *CubeBufName = "L1";
};

AutoTilingResult autoTileImpl(const ir::PolyProgram &P,
                              const sched::ScheduleResult &R,
                              const TileCostModel &M,
                              const AutoTilingOptions &Opts) {
  AutoTilingResult Res;
  assert(!R.Clusters.empty() && "nothing to tile");
  const sched::ClusterSchedule &Live = R.Clusters.back();
  // Band dims = the outer rows of the live-out cluster; extents from the
  // first statement's iterators selected by each row.
  unsigned LiveStmt = Live.Stmts.front();
  const auto &Rows = Live.Outer.at(LiveStmt).Rows;
  unsigned W = static_cast<unsigned>(Rows.size());
  std::vector<int64_t> Extents(W, 1);
  for (unsigned Rr = 0; Rr < W; ++Rr) {
    // Extent along the row: for unit rows, the selected iterator's extent.
    for (unsigned K = 0; K < Rows[Rr].Coeffs.size(); ++K)
      if (Rows[Rr].Coeffs[K] != 0)
        Extents[Rr] = std::max(Extents[Rr],
                               P.Stmts[LiveStmt].Iters[K].Extent);
  }

  // Identify which iterator of each statement each band dim selects (unit
  // rows assumed; non-unit rows contribute via their coefficients).
  // Footprints: every tensor accessed by any statement, with spans derived
  // from the access coefficients. Band dims map to the live statements'
  // first W iterators; producer statements' footprints are approximated by
  // the consumer-side accesses of the tensors they exchange.
  std::set<const ir::TensorDecl *> CubeOperands;
  if (M.CubeAware)
    for (const ir::PolyStmt &St : P.Stmts)
      if (auto D = matchCubeOp(St)) {
        CubeOperands.insert(D->A.get());
        CubeOperands.insert(D->B.get());
      }

  std::map<const ir::TensorDecl *, TensorFootprint> Foot;
  // Liveness over the statement chain (first/last statement touching each
  // tensor): non-overlapping UB intermediates reuse storage.
  std::map<const ir::TensorDecl *, std::pair<unsigned, unsigned>> LiveRange;
  auto NoteAccess = [&](const ir::PolyStmt &St, const ir::PolyAccess &A,
                        bool StmtIsLive) {
    auto &F = Foot[A.Ref.get()];
    if (!F.T) {
      F.T = A.Ref;
      F.Dims.assign(A.Ref->Shape.size(), SpanPoly{});
      for (SpanPoly &Sp : F.Dims)
        Sp.BandCoeff.assign(W, 0);
      F.CubeOperand = CubeOperands.count(A.Ref.get()) != 0;
    }
    for (unsigned D = 0; D < A.Indices.size(); ++D) {
      std::vector<int64_t> C;
      int64_t K;
      if (!ir::exprToAffine(A.Indices[D], St.Iters, C, K))
        continue;
      SpanPoly &Sp = F.Dims[D];
      for (unsigned I = 0; I < C.size(); ++I) {
        if (C[I] == 0)
          continue;
        if (StmtIsLive && I < W) {
          Sp.BandCoeff[I] =
              std::max(Sp.BandCoeff[I], std::abs(C[I]));
        } else {
          int64_t Span = St.Iters[I].Extent - 1;
          Sp.Const += std::abs(C[I]) * Span;
          // Capacity: matmul operands stream through L1 per 128-wide K
          // chunk, so only a chunk of the reduction dim is resident; the
          // TRAFFIC still covers the whole reduction (Const above).
          if (F.CubeOperand && St.Iters[I].IsReduce)
            Span = std::min<int64_t>(Span, 127);
          Sp.CapConst += std::abs(C[I]) * Span;
        }
      }
    }
  };
  std::set<unsigned> LiveSet(Live.Stmts.begin(), Live.Stmts.end());
  auto TouchLive = [&](const ir::PolyStmt &St, const ir::Tensor &T) {
    auto It = LiveRange.find(T.get());
    if (It == LiveRange.end())
      LiveRange[T.get()] = {St.Id, St.Id};
    else
      It->second.second = St.Id;
  };
  // Only the live-out cluster's accesses shape the footprint: fused
  // producers' outputs are captured by the consumer-side reads (their
  // boxes are the consumer footprints plus halos, absorbed by Slack), and
  // sibling clusters that cannot fuse run in their own regions. The
  // capacity-retry loop in the driver backstops any underestimate.
  for (const ir::PolyStmt &St : P.Stmts) {
    bool IsLive = LiveSet.count(St.Id) != 0;
    if (!IsLive)
      continue;
    NoteAccess(St, St.Write, IsLive);
    TouchLive(St, St.Write.Ref);
    for (const ir::PolyAccess &A : St.Reads) {
      NoteAccess(St, A, IsLive);
      TouchLive(St, A.Ref);
    }
  }

  // Candidate sizes per dim.
  std::vector<std::vector<int64_t>> Cands(W);
  for (unsigned D = 0; D < W; ++D) {
    bool Full = std::find(Opts.FullDims.begin(), Opts.FullDims.end(), D) !=
                Opts.FullDims.end();
    bool Unit = std::find(Opts.UnitDims.begin(), Opts.UnitDims.end(), D) !=
                Opts.UnitDims.end();
    if (Full) {
      Cands[D] = {Extents[D]};
      continue;
    }
    if (Unit) {
      Cands[D] = {1};
      continue;
    }
    std::vector<int64_t> C;
    for (int64_t S = 1; S < Extents[D]; S *= 2)
      C.push_back(S);
    C.push_back(Extents[D]);
    while (C.size() > Opts.MaxCandidatesPerDim)
      C.erase(C.begin()); // drop the smallest candidates first
    Cands[D] = std::move(C);
  }

  // Grid search: minimize modeled data movement per computed point under
  // the half-capacity constraint.
  double BestCost = -1;
  std::vector<int64_t> Pick(W, 1), Best;
  int64_t BestUb = 0, BestL1 = 0;
  std::function<void(unsigned)> Search = [&](unsigned D) {
    if (D == W) {
      int64_t UbBytes = 0, L1Bytes = 0;   // resident (capacity)
      int64_t TrafficBytes = 0;            // moved per tile (cost)
      int64_t Streams = 0, Bursts = 0;
      for (auto &[Ptr, F] : Foot) {
        (void)Ptr;
        int64_t CapElems = 1, Elems = 1;
        std::vector<int64_t> Span(F.Dims.size());
        for (unsigned DD = 0; DD < F.Dims.size(); ++DD) {
          Span[DD] =
              std::min(F.Dims[DD].eval(Pick, false), F.T->Shape[DD]);
          Elems *= Span[DD];
          CapElems *= std::min(F.Dims[DD].eval(Pick, true),
                               F.T->Shape[DD]);
        }
        F.CapBytesNow = CapElems * ir::dtypeBytes(F.T->Type);
        if (F.CubeOperand)
          L1Bytes += F.CapBytesNow;
        TrafficBytes += Elems * ir::dtypeBytes(F.T->Type);
        ++Streams;
        // Discontiguous burst estimate: rows before the contiguous suffix.
        unsigned KDim = Span.empty() ? 0 : unsigned(Span.size()) - 1;
        while (KDim > 0 && Span[KDim] >= F.T->Shape[KDim])
          --KDim;
        int64_t B = 1;
        for (unsigned DD = 0; DD < KDim; ++DD)
          B *= Span[DD];
        Bursts += B;
      }
      // UB capacity: peak of simultaneously-live non-cube tensors.
      for (const auto &[Ptr2, LR] : LiveRange) {
        auto FIt = Foot.find(Ptr2);
        if (FIt == Foot.end() || FIt->second.CubeOperand)
          continue;
        int64_t Here = 0;
        for (const auto &[Ptr3, LR2] : LiveRange) {
          auto FJt = Foot.find(Ptr3);
          if (FJt == Foot.end() || FJt->second.CubeOperand)
            continue;
          bool Overlap =
              !(LR2.second < LR.first || LR2.first > LR.second);
          if (Overlap || Ptr3 == Ptr2)
            Here += FJt->second.CapBytesNow;
        }
        UbBytes = std::max(UbBytes, Here);
      }
      // UB budget is the full capacity: the liveness-aware checker in the
      // driver is the real gate (and halves tiles on overflow), and double
      // buffering only duplicates small MTE2-loaded boxes, which the Slack
      // factor absorbs. L1 keeps the half-capacity margin for the cube
      // pipeline's ping-pong operand buffers.
      double Ub = UbBytes * Opts.Slack, L1 = L1Bytes * Opts.Slack;
      if (Ub > M.VecCapBytes || L1 > M.CubeCapBytes)
        return;
      int64_t Points = 1;
      for (unsigned DD = 0; DD < W; ++DD)
        Points *= Pick[DD];
      // Data movement per point: warm-up latency per stream amortized over
      // the tile plus bytes over bandwidth per point.
      double Cost =
          (double(Streams) * M.StreamLatency +
           double(Bursts) * M.BurstCost +
           double(TrafficBytes) / M.BytesPerCycle) /
          double(Points);
      if (BestCost < 0 || Cost < BestCost ||
          (Cost == BestCost && Points > 0)) {
        BestCost = Cost;
        Best = Pick;
        BestUb = UbBytes;
        BestL1 = L1Bytes;
      }
      return;
    }
    for (int64_t S : Cands[D]) {
      Pick[D] = S;
      Search(D + 1);
    }
  };
  Search(0);
  if (Best.empty()) {
    // Nothing fits with double buffering: fall back to minimal tiles.
    Best.assign(W, 1);
    for (unsigned D = 0; D < W; ++D)
      if (std::find(Opts.FullDims.begin(), Opts.FullDims.end(), D) !=
          Opts.FullDims.end())
        Best[D] = Extents[D];
  }
  Res.Sizes = Best;
  Res.EstimatedUbBytes = BestUb;
  Res.EstimatedL1Bytes = BestL1;
  Res.CostPerPoint = BestCost;
  // Fig 4 policy rendering: every live statement gets the chosen sizes on
  // its outer dims, placed in UB (or L1 for cube statements).
  for (unsigned S : Live.Stmts) {
    StmtTileSpec Spec;
    bool Cube = M.CubeAware && isCubeStatement(P.Stmts[S]);
    for (unsigned D = 0; D < W; ++D)
      Spec.Entries.push_back(
          TileSpecEntry{Best[D], Cube ? M.CubeBufName : M.VecBufName});
    Res.Policy.PerStmt[S] = std::move(Spec);
  }
  // Unconditional counter for the compile trace's per-pass deltas.
  Stats::get().add("autotile.runs");
  return Res;
}

} // namespace

AutoTilingResult autoTile(const ir::PolyProgram &P,
                          const sched::ScheduleResult &R,
                          const sim::MachineSpec &M,
                          const AutoTilingOptions &Opts) {
  TileCostModel C;
  C.VecCapBytes = double(M.UBBytes);
  C.CubeCapBytes = M.L1Bytes / 2.0;
  C.StreamLatency = double(M.GmLatency);
  C.BurstCost = double(M.BurstLatency);
  C.BytesPerCycle = double(M.GmBandwidth);
  return autoTileImpl(P, R, C, Opts);
}

AutoTilingResult autoTile(const ir::PolyProgram &P,
                          const sched::ScheduleResult &R,
                          const sim::TargetSpec &T,
                          const AutoTilingOptions &Opts) {
  if (T.Kind == sim::TargetKind::Cce)
    return autoTile(P, R, T.Cce, Opts);
  const sim::SimtSpec &S = T.Simt;
  TileCostModel C;
  // One tile = one thread block: the working set must fit the block's
  // shared memory; there is no cube/L1 path, so every tensor gates
  // against the same capacity and streams as coalesced transactions.
  C.VecCapBytes = double(S.SharedMemBytes);
  C.CubeCapBytes = std::numeric_limits<double>::infinity();
  C.StreamLatency = double(S.GlobalLatency);
  C.BurstCost = double(S.TransactionCost);
  C.BytesPerCycle = double(S.GlobalBandwidth);
  C.CubeAware = false;
  C.VecBufName = "shared";
  C.CubeBufName = "shared";
  return autoTileImpl(P, R, C, Opts);
}

} // namespace transforms
} // namespace akg
