//===- transforms/AutoTiling.h - Automatic tile-size selection --*- C++ -*-===//
//
// Auto Tiling (Sec 4.2): picks tile sizes for the live-out band that
// minimize data movement per unit of computation, subject to the buffer
// utilization fitting in HALF of each buffer's capacity (so double
// buffering / memory latency hiding remains possible, Sec 5.2). Buffer
// utilization is expressed as a polynomial in the symbolic tile sizes
// derived from the access relations; a greedy/grid search picks the best
// sizes. The result is also rendered in the Fig 4 specification language.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TRANSFORMS_AUTOTILING_H
#define AKG_TRANSFORMS_AUTOTILING_H

#include "ir/PolyExtract.h"
#include "scheduler/Pluto.h"
#include "sim/Target.h"
#include "transforms/Tiling.h"

namespace akg {
namespace transforms {

struct AutoTilingOptions {
  /// Dims forced to stay untiled (size = full extent); used to keep conv
  /// output rows contiguous for img2col (wo) and to pin batch tiles to 1.
  std::vector<unsigned> FullDims;
  std::vector<unsigned> UnitDims;
  /// Safety margin multiplier applied to the estimated footprint.
  double Slack = 1.15;
  /// When false (fusion disabled), only the live-out cluster's own
  /// accesses occupy the on-chip region; producer statements run in their
  /// own regions and do not contribute to this footprint.
  bool FusedFootprint = true;
  /// Candidate sizes per dimension cap (grid search width).
  unsigned MaxCandidatesPerDim = 8;
};

struct AutoTilingResult {
  std::vector<int64_t> Sizes; // per live-out band dim
  int64_t EstimatedUbBytes = 0;
  int64_t EstimatedL1Bytes = 0;
  double CostPerPoint = 0.0; // modeled data movement per computed point
  TilingPolicy Policy;       // Fig 4 rendering
};

/// Chooses tile sizes for the live-out cluster (the last one in \p R)
/// against the CCE machine model (UB/L1 capacities, burst DMA cost).
AutoTilingResult autoTile(const ir::PolyProgram &P,
                          const sched::ScheduleResult &R,
                          const sim::MachineSpec &M,
                          const AutoTilingOptions &Opts = AutoTilingOptions());

/// Target-routed tile selection: capacities and the data-movement cost
/// model come from the active machine of \p T. On the CCE target this is
/// exactly the MachineSpec overload; on SIMT the working set is gated by
/// per-block shared memory and the cost model charges coalesced-
/// transaction overheads instead of DMA bursts.
AutoTilingResult autoTile(const ir::PolyProgram &P,
                          const sched::ScheduleResult &R,
                          const sim::TargetSpec &T,
                          const AutoTilingOptions &Opts = AutoTilingOptions());

} // namespace transforms
} // namespace akg

#endif // AKG_TRANSFORMS_AUTOTILING_H
