//===- transforms/Conv.cpp - img2col + fractal GEMM -----------------------===//

#include "transforms/Conv.h"

#include <cassert>

namespace akg {
namespace transforms {

using namespace ir;

namespace {

/// Strips cast nodes.
const Expr &stripCasts(const Expr &E) {
  const Expr *P = &E;
  while (*P && (*P)->Kind == ExprKind::Cast)
    P = &(*P)->Operands[0];
  return *P;
}

/// Affine view of one access: per tensor dim, coefficients over the
/// statement iterators plus a constant.
struct AffAccess {
  const ExprNode *Read = nullptr;
  std::vector<std::vector<int64_t>> Coeffs;
  std::vector<int64_t> Consts;
};

bool analyzeAccess(const Expr &E, const std::vector<IterVar> &Iters,
                   AffAccess &Out) {
  Expr Stripped = stripCasts(E);
  // Padded operands appear as select(in_bounds, read, 0): analyze the
  // in-bounds branch; the padding offsets live in its index constants.
  if (Stripped && Stripped->Kind == ExprKind::Select)
    Stripped = stripCasts(Stripped->Operands[1]);
  const Expr &R = Stripped;
  if (!R || R->Kind != ExprKind::TensorRead)
    return false;
  Out.Read = R.get();
  Out.Coeffs.clear();
  Out.Consts.clear();
  for (const Expr &Idx : R->Operands) {
    std::vector<int64_t> C;
    int64_t K;
    if (!exprToAffine(Idx, Iters, C, K))
      return false;
    Out.Coeffs.push_back(std::move(C));
    Out.Consts.push_back(K);
  }
  return true;
}

/// Recovers the tensor of a (possibly cast- or padding-select-wrapped)
/// operand.
Tensor operandTensor(const Expr &E) {
  Expr S = stripCasts(E);
  if (S && S->Kind == ExprKind::Select)
    S = stripCasts(S->Operands[1]);
  return S && S->Kind == ExprKind::TensorRead ? S->Ref : nullptr;
}

/// True if dimension D of the access is exactly iterator I (coeff 1, no
/// other terms, zero constant).
bool dimIsIter(const AffAccess &A, unsigned D, unsigned I) {
  if (A.Consts[D] != 0)
    return false;
  for (unsigned K = 0; K < A.Coeffs[D].size(); ++K)
    if (A.Coeffs[D][K] != (K == I ? 1 : 0))
      return false;
  return true;
}

} // namespace

bool isCubeStatement(const ir::PolyStmt &St) {
  if (St.StmtRole != ir::PolyStmt::Role::Update)
    return false;
  return matchCubeOp(St).has_value();
}

std::optional<CubeOpDesc> matchCubeOp(const ir::PolyStmt &Upd) {
  if (Upd.StmtRole != ir::PolyStmt::Role::Update || !Upd.Op ||
      !Upd.Op->isReduction())
    return std::nullopt;
  if (Upd.Op->Body->RKind != ReduceKind::Sum)
    return std::nullopt;
  // Rhs = C[out] + X * Y.
  const Expr &Rhs = Upd.Rhs;
  if (Rhs->Kind != ExprKind::Add)
    return std::nullopt;
  const Expr &Prod = stripCasts(Rhs->Operands[1]);
  if (!Prod || Prod->Kind != ExprKind::Mul)
    return std::nullopt;
  AffAccess XA, YA;
  if (!analyzeAccess(Prod->Operands[0], Upd.Iters, XA) ||
      !analyzeAccess(Prod->Operands[1], Upd.Iters, YA))
    return std::nullopt;

  unsigned NOut = static_cast<unsigned>(Upd.Op->Axis.size());
  unsigned NRed = Upd.numIters() - NOut;

  CubeOpDesc D;
  D.C = Upd.Write.Ref;

  // --- Matmul / batched matmul: single reduction dimension. ---
  if (NRed == 1) {
    unsigned KIdx = NOut; // the reduce iterator
    unsigned MIdx, NIdx, BIdx = UINT32_MAX;
    if (NOut == 2) {
      MIdx = 0;
      NIdx = 1;
    } else if (NOut == 3) {
      BIdx = 0;
      MIdx = 1;
      NIdx = 2;
    } else {
      return std::nullopt;
    }
    // Which operand carries M?
    auto Uses = [&](const AffAccess &A, unsigned I) {
      for (unsigned Dd = 0; Dd < A.Coeffs.size(); ++Dd)
        for (unsigned C = 0; C < A.Coeffs[Dd].size(); ++C)
          if (C == I && A.Coeffs[Dd][C] != 0)
            return true;
      return false;
    };
    const AffAccess *AOp = &XA, *BOp = &YA;
    if (!Uses(XA, MIdx))
      std::swap(AOp, BOp);
    if (!Uses(*AOp, MIdx) || !Uses(*AOp, KIdx) || !Uses(*BOp, NIdx) ||
        !Uses(*BOp, KIdx))
      return std::nullopt;
    // Orientation: non-batch dims of A are (m, k) or (k, m).
    unsigned ABase = Uses(*AOp, BIdx == UINT32_MAX ? MIdx : BIdx) &&
                             BIdx != UINT32_MAX && Uses(*AOp, BIdx)
                         ? 1
                         : 0;
    unsigned BBase = BIdx != UINT32_MAX && Uses(*BOp, BIdx) ? 1 : 0;
    if (AOp->Coeffs.size() != ABase + 2 || BOp->Coeffs.size() != BBase + 2)
      return std::nullopt;
    if (dimIsIter(*AOp, ABase + 0, MIdx) && dimIsIter(*AOp, ABase + 1, KIdx))
      D.TransA = false;
    else if (dimIsIter(*AOp, ABase + 0, KIdx) &&
             dimIsIter(*AOp, ABase + 1, MIdx))
      D.TransA = true;
    else
      return std::nullopt;
    if (dimIsIter(*BOp, BBase + 0, KIdx) && dimIsIter(*BOp, BBase + 1, NIdx))
      D.TransB = false;
    else if (dimIsIter(*BOp, BBase + 0, NIdx) &&
             dimIsIter(*BOp, BBase + 1, KIdx))
      D.TransB = true;
    else
      return std::nullopt;
    D.IsConv = false;
    D.Batch = BIdx == UINT32_MAX ? 1 : Upd.Iters[BIdx].Extent;
    D.M = Upd.Iters[MIdx].Extent;
    D.N = Upd.Iters[NIdx].Extent;
    D.K = Upd.Iters[KIdx].Extent;
    // Recover the tensors in A/B order.
    Tensor LT = operandTensor(Prod->Operands[0]);
    Tensor RT = operandTensor(Prod->Operands[1]);
    if (!LT || !RT)
      return std::nullopt;
    D.A = (AOp == &XA) ? LT : RT;
    D.B = (AOp == &XA) ? RT : LT;
    return D;
  }

  // --- Convolution: 2 or 3 reduction dims (kh,kw or ci,kh,kw). ---
  if (NRed != 2 && NRed != 3)
    return std::nullopt;
  bool HasChannels = (NRed == 3);
  // Output axes: [n, co, ho, wo] (4) or [ho, wo] (2, depthless variant).
  unsigned HoIdx, WoIdx, CoIdx = UINT32_MAX, NbIdx = UINT32_MAX;
  if (NOut == 4 && HasChannels) {
    NbIdx = 0;
    CoIdx = 1;
    HoIdx = 2;
    WoIdx = 3;
  } else if (NOut == 2 && !HasChannels) {
    HoIdx = 0;
    WoIdx = 1;
  } else {
    return std::nullopt;
  }
  unsigned CiIdx = HasChannels ? NOut : UINT32_MAX;
  unsigned KhIdx = NOut + (HasChannels ? 1 : 0);
  unsigned KwIdx = KhIdx + 1;

  // The input operand is the one whose indices mix ho with kh.
  auto MixesSpatial = [&](const AffAccess &A) {
    for (unsigned Dd = 0; Dd < A.Coeffs.size(); ++Dd)
      if (A.Coeffs[Dd][HoIdx] != 0 && A.Coeffs[Dd][KhIdx] != 0)
        return true;
    return false;
  };
  const AffAccess *In = &XA, *Wt = &YA;
  ir::Tensor InT = operandTensor(Prod->Operands[0]);
  ir::Tensor WtT = operandTensor(Prod->Operands[1]);
  if (!InT || !WtT)
    return std::nullopt;
  if (!MixesSpatial(XA)) {
    std::swap(In, Wt);
    std::swap(InT, WtT);
  }
  if (!MixesSpatial(*In))
    return std::nullopt;
  // Locate the input's H and W dims: index = s*ho + kh - pad.
  unsigned HDim = UINT32_MAX, WDim = UINT32_MAX;
  for (unsigned Dd = 0; Dd < In->Coeffs.size(); ++Dd) {
    if (In->Coeffs[Dd][HoIdx] != 0 && In->Coeffs[Dd][KhIdx] == 1)
      HDim = Dd;
    if (In->Coeffs[Dd][WoIdx] != 0 && In->Coeffs[Dd][KwIdx] == 1)
      WDim = Dd;
  }
  if (HDim == UINT32_MAX || WDim == UINT32_MAX)
    return std::nullopt;
  D.IsConv = true;
  D.A = InT;
  D.B = WtT;
  D.StrideH = In->Coeffs[HDim][HoIdx];
  D.StrideW = In->Coeffs[WDim][WoIdx];
  D.PadH = -In->Consts[HDim];
  D.PadW = -In->Consts[WDim];
  D.KH = Upd.Iters[KhIdx].Extent;
  D.KW = Upd.Iters[KwIdx].Extent;
  D.OutH = Upd.Iters[HoIdx].Extent;
  D.OutW = Upd.Iters[WoIdx].Extent;
  D.OutC = CoIdx == UINT32_MAX ? 1 : Upd.Iters[CoIdx].Extent;
  D.InC = HasChannels ? Upd.Iters[CiIdx].Extent : 1;
  D.Batch = NbIdx == UINT32_MAX ? 1 : Upd.Iters[NbIdx].Extent;
  D.InH = InT->Shape[HDim];
  D.InW = InT->Shape[WDim];
  D.M = D.OutH * D.OutW;
  D.N = D.OutC;
  D.K = D.InC * D.KH * D.KW;
  return D;
}

ir::Stmt buildImg2ColSem(const CubeOpDesc &D, const ir::Tensor &Input,
                         const ir::Tensor &L0A, ir::Expr BatchVar,
                         ir::Expr MBase, int64_t MSize, ir::Expr MInTile,
                         int64_t MTileRows, ir::Expr KBase, int64_t KSize) {
  // Loop variables of the transfer.
  Expr Mi = var("i2c_mi"), Ki = var("i2c_ki");
  Expr Mm = add(MBase, Mi), Kk = add(KBase, Ki);
  // Relation (1): decode GEMM coordinates into conv coordinates.
  Expr KhKw = intImm(D.KH * D.KW);
  Expr Ci = floorDiv(Kk, KhKw);
  Expr Rem = mod(Kk, KhKw);
  Expr Kh = floorDiv(Rem, intImm(D.KW));
  Expr Kw = mod(Rem, intImm(D.KW));
  Expr Ho = floorDiv(Mm, intImm(D.OutW));
  Expr Wo = mod(Mm, intImm(D.OutW));
  Expr H = sub(add(mul(Ho, intImm(D.StrideH)), Kh), intImm(D.PadH));
  Expr W = sub(add(mul(Wo, intImm(D.StrideW)), Kw), intImm(D.PadW));
  // In-bounds guard (padding reads zero; partial tiles read zero).
  Expr InBounds = binary(
      ExprKind::And,
      binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), H),
             cmp(ExprKind::CmpLT, H, intImm(D.InH))),
      binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), W),
             cmp(ExprKind::CmpLT, W, intImm(D.InW))));
  InBounds = binary(ExprKind::And, InBounds,
                    binary(ExprKind::And, cmp(ExprKind::CmpLT, Mm,
                                              intImm(D.M)),
                           cmp(ExprKind::CmpLT, Kk, intImm(D.K))));
  // Stay inside the tile-local input box on partial chunks.
  InBounds = binary(ExprKind::And, InBounds,
                    cmp(ExprKind::CmpLT, add(MInTile, Mi),
                        intImm(MTileRows)));
  std::vector<Expr> InIdx;
  if (Input->Shape.size() == 4)
    InIdx = {BatchVar, Ci, H, W};
  else if (Input->Shape.size() == 3)
    InIdx = {Ci, H, W};
  else
    InIdx = {H, W};
  Expr Val = select(InBounds, tensorRead(Input, InIdx),
                    floatImm(0.0, Input->Type));
  Stmt Body = makeProvide(L0A, {Mi, Ki}, Val);
  Body = makeFor("i2c_ki", intImm(0), intImm(KSize), Body);
  Body = makeFor("i2c_mi", intImm(0), intImm(MSize), Body);
  return Body;
}

ir::Stmt buildWeightLoadSem(const CubeOpDesc &D, const ir::Tensor &Weights,
                            const ir::Tensor &L0B, ir::Expr BatchVar,
                            ir::Expr KBase, int64_t KSize, ir::Expr NBase,
                            int64_t NSize, ir::Expr NInTile,
                            int64_t NTileCols) {
  Expr Ki = var("wl_ki"), Ni = var("wl_ni");
  Expr Kk = add(KBase, Ki), Nn = add(NBase, Ni);
  Expr Guard = binary(ExprKind::And, cmp(ExprKind::CmpLT, Kk, intImm(D.K)),
                      cmp(ExprKind::CmpLT, Nn, intImm(D.N)));
  Guard = binary(ExprKind::And, Guard,
                 cmp(ExprKind::CmpLT, add(NInTile, Ni),
                     intImm(NTileCols)));
  std::vector<Expr> WIdx;
  if (D.IsConv) {
    Expr KhKw = intImm(D.KH * D.KW);
    Expr Ci = floorDiv(Kk, KhKw);
    Expr Rem = mod(Kk, KhKw);
    Expr Kh = floorDiv(Rem, intImm(D.KW));
    Expr Kw = mod(Rem, intImm(D.KW));
    if (Weights->Shape.size() == 4)
      WIdx = {Nn, Ci, Kh, Kw};
    else if (Weights->Shape.size() == 3)
      WIdx = {Ci, Kh, Kw}; // OutC == 1 variant
    else
      WIdx = {Kh, Kw}; // depthless 2D conv
  } else {
    WIdx = D.TransB ? std::vector<Expr>{Nn, Kk} : std::vector<Expr>{Kk, Nn};
    if (Weights->Shape.size() == 3)
      WIdx.insert(WIdx.begin(), BatchVar);
  }
  Expr Val = select(Guard, tensorRead(Weights, WIdx),
                    floatImm(0.0, Weights->Type));
  Stmt Body = makeProvide(L0B, {Ki, Ni}, Val);
  Body = makeFor("wl_ni", intImm(0), intImm(NSize), Body);
  Body = makeFor("wl_ki", intImm(0), intImm(KSize), Body);
  return Body;
}

} // namespace transforms
} // namespace akg
