//===- transforms/Conv.h - img2col + fractal GEMM ----------------*- C++ -*-=//
//
// Domain-specific optimization of convolution (Sec 4.5): a convolution is
// recognized from its polyhedral statement, converted to a GEMM via the
// img2col transformation (performed by the MTE on the real chip, Fig 6),
// and the GEMM is decomposed into fractal blocks matching the Cube unit's
// last-level 16x16x16 tile (Fig 7). The affine relation (1) of the paper
// maps GEMM coordinates back to the convolution's input coordinates; the
// builder below materializes exactly that relation as the functional
// semantics of the Img2Col instruction.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TRANSFORMS_CONV_H
#define AKG_TRANSFORMS_CONV_H

#include "ir/PolyExtract.h"
#include "ir/Stmt.h"

#include <optional>

namespace akg {
namespace transforms {

/// A recognized Cube-unit operation (matmul or convolution) in a reduction
/// update statement.
struct CubeOpDesc {
  bool IsConv = false;

  // Common GEMM view: C[M, N] += A'[M, K] * B'[K, N] (per batch).
  int64_t Batch = 1; // leading shared batch dimension (1 = none)
  int64_t M = 0, N = 0, K = 0;

  // The tensors involved (original layout).
  ir::Tensor A, B, C;

  // Matmul only: whether A is read transposed (A[k, m]).
  bool TransA = false;
  bool TransB = false;

  // Convolution geometry (IsConv): input I[N, C, H, W],
  // weights Wt[Co, C, KH, KW], output O[N, Co, Ho, Wo].
  int64_t InC = 0, InH = 0, InW = 0;
  int64_t KH = 0, KW = 0;
  int64_t OutC = 0, OutH = 0, OutW = 0;
  int64_t StrideH = 1, StrideW = 1;
  int64_t PadH = 0, PadW = 0;
};

/// Recognizes a matmul / batched-matmul / conv2d update statement. Returns
/// nullopt when the statement is not a dot-product reduction the Cube unit
/// can execute (such statements stream to UB per Sec 4.3).
std::optional<CubeOpDesc> matchCubeOp(const ir::PolyStmt &Upd);

/// True when the statement involves a dot-product reduction (the paper's
/// hypothesis for dispatch to the Cube unit).
bool isCubeStatement(const ir::PolyStmt &St);

/// Builds the functional semantics of the img2col transfer for one output
/// tile: writes L0A[mi][ki] = I[n, c(k), h(m,k), w(m,k)] per relation (1),
/// reading zero outside the padded input. \p MBase/\p KBase are the tile
/// origins in GEMM coordinates (expressions over tile loop variables),
/// \p MSize/\p KSize the tile extents, \p BatchVar the batch index
/// expression.
/// \p MInTile is the chunk's offset within the consumer tile (an expression
/// over the chunk loop variable) and \p MTileRows the tile's total valid
/// GEMM rows; together they guard accesses to the tile-local input box.
ir::Stmt buildImg2ColSem(const CubeOpDesc &D, const ir::Tensor &Input,
                         const ir::Tensor &L0A, ir::Expr BatchVar,
                         ir::Expr MBase, int64_t MSize, ir::Expr MInTile,
                         int64_t MTileRows, ir::Expr KBase, int64_t KSize);

/// Builds the fractal-layout weight load semantics:
/// L0B[ki][ni] = Wt[n(k..), ...] for conv, or B[k, n] for matmul.
ir::Stmt buildWeightLoadSem(const CubeOpDesc &D, const ir::Tensor &Weights,
                            const ir::Tensor &L0B, ir::Expr BatchVar,
                            ir::Expr KBase, int64_t KSize, ir::Expr NBase,
                            int64_t NSize, ir::Expr NInTile,
                            int64_t NTileCols);

} // namespace transforms
} // namespace akg

#endif // AKG_TRANSFORMS_CONV_H
