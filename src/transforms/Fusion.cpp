//===- transforms/Fusion.cpp - Post-tiling fusion (reverse strategy) ------===//

#include "transforms/Fusion.h"

#include "support/Stats.h"
#include "transforms/Tiling.h"

#include <algorithm>
#include <cassert>

namespace akg {
namespace transforms {

using namespace sched;
using namespace poly;

namespace {

/// Builds the per-unit point-loop subtree for a fused producer: either a
/// single statement band, or the init/update pair sharing their outer axes
/// with the reduction loops nested under the update filter.
std::unique_ptr<TreeNode> buildUnitSubtree(const ir::PolyProgram &P,
                                           const std::vector<unsigned> &Unit) {
  if (Unit.size() == 1) {
    unsigned S = Unit[0];
    auto F = makeFilter({S});
    std::map<unsigned, StmtSchedule> Part;
    Part[S] = identitySchedule(P.Stmts[S].numIters());
    F->addChild(makeBand(std::move(Part), true));
    return F;
  }
  assert(Unit.size() == 2 && "units are single statements or init/update");
  unsigned Init = Unit[0], Upd = Unit[1];
  unsigned NOut = P.Stmts[Init].numIters();
  unsigned NUpd = P.Stmts[Upd].numIters();
  auto F = makeFilter({Init, Upd});
  std::map<unsigned, StmtSchedule> Part;
  Part[Init] = identitySchedule(NOut);
  StmtSchedule UpdOuter;
  for (unsigned K = 0; K < NOut; ++K) {
    ScheduleRow Row;
    Row.Coeffs.assign(NUpd, 0);
    Row.Coeffs[K] = 1;
    UpdOuter.Rows.push_back(Row);
  }
  Part[Upd] = UpdOuter;
  TreeNode *B = F->addChild(makeBand(std::move(Part), true));
  TreeNode *Seq = B->addChild(makeSequence());
  Seq->addChild(makeFilter({Init}));
  TreeNode *FU = Seq->addChild(makeFilter({Upd}));
  StmtSchedule Red;
  for (unsigned K = NOut; K < NUpd; ++K) {
    ScheduleRow Row;
    Row.Coeffs.assign(NUpd, 0);
    Row.Coeffs[K] = 1;
    Red.Rows.push_back(Row);
  }
  std::map<unsigned, StmtSchedule> RedPart;
  RedPart[Upd] = Red;
  FU->addChild(makeBand(std::move(RedPart), true));
  return F;
}

/// Builds the map {tile dims o -> stmt iters i} for a consumer statement
/// whose outer band rows (Rows, width W) were tiled with Sizes:
///   Sizes[r]*o_r <= Row_r(i) <= Sizes[r]*o_r + Sizes[r] - 1, i in Domain.
BasicMap tileToStmtMap(const ir::PolyStmt &St,
                       const std::vector<ScheduleRow> &Rows,
                       const std::vector<int64_t> &Sizes) {
  unsigned W = static_cast<unsigned>(Sizes.size());
  unsigned N = St.numIters();
  std::vector<std::string> ONames, INames;
  for (unsigned R = 0; R < W; ++R)
    ONames.push_back("o" + std::to_string(R));
  for (unsigned K = 0; K < N; ++K)
    INames.push_back(St.Iters[K].Name);
  BasicMap M(Space::forMap(ONames, INames, "tile", St.Name));
  for (unsigned R = 0; R < W; ++R) {
    assert(Rows[R].Denom == 1 && "point rows must be affine");
    // Row(i) - Sizes[r]*o_r >= 0.
    std::vector<int64_t> Lo(M.numCols(), 0);
    for (unsigned K = 0; K < N; ++K)
      Lo[M.outCol(K)] = Rows[R].Coeffs[K];
    Lo[M.inCol(R)] = -Sizes[R];
    M.addIneq(Lo, Rows[R].Const);
    // Sizes[r]*o_r + Sizes[r]-1 - Row(i) >= 0.
    std::vector<int64_t> Hi(M.numCols(), 0);
    for (unsigned K = 0; K < N; ++K)
      Hi[M.outCol(K)] = -Rows[R].Coeffs[K];
    Hi[M.inCol(R)] = Sizes[R];
    M.addIneq(Hi, Sizes[R] - 1 - Rows[R].Const);
  }
  return intersectRange(M, St.Domain);
}

/// Extension pieces define statement instances to EXECUTE. Two pieces for
/// the same statement frequently overlap — a consumer reading a tensor
/// twice (mul(t,t)), or halo reads t[i] and t[i+k] sharing interior
/// points — and emitting both would run the overlapped instances twice,
/// which is fatal for reduction updates (they are not idempotent). isl
/// coalesces this for free because an extension holds a union map; our
/// BasicMap pieces must be made disjoint by explicit subtraction.
///
/// Returns the pieces of A \ B (mutually disjoint, disjoint from B). Exact
/// when B is div-free: A \ B = union over B's inequalities c_i of
/// A /\ c_1 /\ ... /\ c_{i-1} /\ !c_i (the standard polyhedral difference).
/// When B carries divs its constraints cannot be transplanted into A's
/// column space, so A is returned whole unless the two systems are
/// structurally identical (a safe over-approximation: worst case a
/// duplicate survives for schedules that tile with floor divs before
/// fusing, which the pipeline does not produce today).
std::vector<BasicMap> subtractPiece(const BasicMap &A, const BasicMap &B) {
  const Space &SA = A.space(), &SB = B.space();
  if (SA.numParams() != SB.numParams() || SA.numIn() != SB.numIn() ||
      SA.numOut() != SB.numOut())
    return {A};
  if (B.numDivs() != 0) {
    auto SameCons = [](const std::vector<Constraint> &X,
                       const std::vector<Constraint> &Y) {
      if (X.size() != Y.size())
        return false;
      for (size_t I = 0; I < X.size(); ++I)
        if (X[I].Coeffs != Y[I].Coeffs || X[I].Const != Y[I].Const ||
            X[I].IsEq != Y[I].IsEq)
          return false;
      return true;
    };
    bool Same = A.numDivs() == B.numDivs() &&
                SameCons(A.constraints(), B.constraints());
    for (unsigned D = 0; Same && D < A.numDivs(); ++D) {
      const DivDef &X = A.divs()[D], &Y = B.divs()[D];
      Same = X.Coeffs == Y.Coeffs && X.Const == Y.Const && X.Denom == Y.Denom;
    }
    return Same ? std::vector<BasicMap>{} : std::vector<BasicMap>{A};
  }
  unsigned Shared = SB.numParams() + SB.numIn() + SB.numOut();
  // Expand equalities into inequality pairs so !c is a single halfspace.
  std::vector<std::pair<std::vector<int64_t>, int64_t>> Ineqs;
  for (const Constraint &C : B.constraints()) {
    std::vector<int64_t> Pos(C.Coeffs.begin(), C.Coeffs.begin() + Shared);
    Ineqs.emplace_back(Pos, C.Const);
    if (C.IsEq) {
      std::vector<int64_t> NegC(Shared);
      for (unsigned K = 0; K < Shared; ++K)
        NegC[K] = -C.Coeffs[K];
      Ineqs.emplace_back(std::move(NegC), -C.Const);
    }
  }
  auto Pad = [&](const std::vector<int64_t> &Coeffs, unsigned Cols,
                 int64_t Sign) {
    std::vector<int64_t> Row(Cols, 0);
    for (unsigned K = 0; K < Shared; ++K)
      Row[K] = Sign * Coeffs[K];
    return Row;
  };
  std::vector<BasicMap> Out;
  BasicMap Cur = A; // A /\ (B's first i-1 inequalities)
  for (const auto &[Coeffs, Const] : Ineqs) {
    BasicMap Piece = Cur;
    // !(c.x + k >= 0)  <=>  -c.x - k - 1 >= 0 over the integers.
    Piece.addIneq(Pad(Coeffs, Piece.numCols(), -1), -Const - 1);
    if (!Piece.isEmpty(/*CheckInteger=*/true)) {
      Piece.removeRedundant();
      Out.push_back(std::move(Piece));
    }
    Cur.addIneq(Pad(Coeffs, Cur.numCols(), 1), Const);
    if (Cur.isEmpty(/*CheckInteger=*/true))
      break;
  }
  return Out;
}

} // namespace

namespace {

FusionReport applyPostTilingFusionImpl(ScheduleTree &T,
                                       const ir::PolyProgram &P,
                                       const std::vector<int64_t> &TileSizes) {
  FusionReport Rep;
  TreeNode *Root = T.root();
  assert(Root && Root->Kind == NodeKind::Domain && "malformed tree");

  // Locate the cluster filters (or the single top band).
  std::vector<TreeNode *> ClusterFilters;
  TreeNode *TopBand = nullptr;
  if (!Root->Children.empty()) {
    TreeNode *C = Root->child(0);
    if (C->Kind == NodeKind::Sequence) {
      for (auto &F : C->Children)
        ClusterFilters.push_back(F.get());
    } else if (C->Kind == NodeKind::Filter) {
      ClusterFilters.push_back(C);
    } else if (C->Kind == NodeKind::Band) {
      TopBand = C;
    }
  }

  // Find the band to tile: the last cluster's outer band (the live-out
  // iteration space), or the single top band.
  TreeNode *LiveFilter = nullptr;
  TreeNode *LiveBand = TopBand;
  if (!ClusterFilters.empty()) {
    LiveFilter = ClusterFilters.back();
    assert(!LiveFilter->Children.empty() &&
           LiveFilter->child(0)->Kind == NodeKind::Band &&
           "cluster filter must hold a band");
    LiveBand = LiveFilter->child(0);
  }
  if (!LiveBand)
    return Rep;

  unsigned W = LiveBand->bandWidth();
  std::vector<int64_t> Sizes = TileSizes;
  Sizes.resize(W, 1);

  // Keep the pre-tiling outer rows of every live-out statement for the
  // reverse strategy.
  std::map<unsigned, std::vector<ScheduleRow>> OuterRows;
  for (const auto &[Id, SS] : LiveBand->Partial)
    OuterRows[Id] = SS.Rows;

  TreeNode *PointBand = tileBand(LiveBand, Sizes);
  TreeNode *TileBandNode = LiveBand; // rows now carry floor denominators
  Rep.TileBand = TileBandNode;
  Rep.PointBand = PointBand;
  Rep.Applied = true;

  // Map from every already-on-chip statement to the tile dims.
  std::map<unsigned, std::vector<BasicMap>> OnChip; // stmt -> rel pieces
  std::vector<unsigned> LiveStmts;
  for (const auto &[Id, Rows] : OuterRows) {
    OnChip[Id].push_back(tileToStmtMap(P.Stmts[Id], Rows, Sizes));
    LiveStmts.push_back(Id);
  }

  // Greedy reverse-order fusion of intermediate clusters.
  std::vector<ExtensionDecl> Decls;
  std::vector<std::vector<unsigned>> FusedUnits;
  std::vector<TreeNode *> SkippedFilters;
  std::vector<ir::Tensor> Outputs = P.Mod ? P.Mod->outputs()
                                          : std::vector<ir::Tensor>();
  auto IsOutput = [&](const ir::Tensor &T2) {
    for (const ir::Tensor &O : Outputs)
      if (O == T2)
        return true;
    return false;
  };

  for (unsigned CI = ClusterFilters.size(); CI-- > 1;) {
    // Candidate producers: statements of cluster CI-1.
    TreeNode *F = ClusterFilters[CI - 1];
    const std::vector<unsigned> &Stmts = F->FilterStmts;
    // Split into units (init/update pairs stay together).
    std::vector<std::vector<unsigned>> Units;
    for (unsigned I = 0; I < Stmts.size(); ++I) {
      // A degraded schedule can split an init/update pair across cluster
      // filters, so an Init may be the last statement here.
      if (P.Stmts[Stmts[I]].StmtRole == ir::PolyStmt::Role::Init &&
          I + 1 < Stmts.size() &&
          P.Stmts[Stmts[I + 1]].StmtRole == ir::PolyStmt::Role::Update) {
        Units.push_back({Stmts[I], Stmts[I + 1]});
        ++I;
      } else {
        Units.push_back({Stmts[I]});
      }
    }
    // The whole cluster fuses or stays: all written tensors must be
    // consumed exclusively by on-chip statements and must not escape.
    bool CanFuse = true;
    for (unsigned S : Stmts) {
      const ir::Tensor &Out = P.Stmts[S].Write.Ref;
      if (IsOutput(Out)) {
        CanFuse = false;
        break;
      }
      for (const ir::PolyStmt &Other : P.Stmts) {
        if (Other.Id == S)
          continue;
        bool ReadsOut = false;
        for (const ir::PolyAccess &Rd : Other.Reads)
          if (Rd.Ref == Out)
            ReadsOut = true;
        if (ReadsOut && !OnChip.count(Other.Id) &&
            std::find(Stmts.begin(), Stmts.end(), Other.Id) == Stmts.end()) {
          CanFuse = false;
          break;
        }
      }
    }
    if (!CanFuse)
      continue;
    // Compute the reverse-strategy relation for each producer statement,
    // walking the cluster back to front so intra-cluster consumers are
    // already on chip when their producers are processed.
    std::map<unsigned, std::vector<BasicMap>> NewRels;
    for (unsigned SI = Stmts.size(); SI-- > 0;) {
      unsigned S = Stmts[SI];
      const ir::Tensor &Out = P.Stmts[S].Write.Ref;
      BasicMap WriteInv =
          reverseMap(intersectDomain(P.Stmts[S].Write.Rel, P.Stmts[S].Domain));
      for (const auto &[Cons, Pieces] : OnChip) {
        if (Cons == S)
          continue; // the recurrence read does not define new instances
        for (const ir::PolyAccess &Rd : P.Stmts[Cons].Reads) {
          if (Rd.Ref != Out)
            continue;
          BasicMap ReadRel =
              intersectDomain(Rd.Rel, P.Stmts[Cons].Domain);
          for (const BasicMap &TileToCons : Pieces) {
            BasicMap Rel =
                composeMaps(composeMaps(TileToCons, ReadRel), WriteInv);
            if (Rel.isEmpty())
              continue;
            Rel.removeRedundant();
            // Keep each statement's pieces disjoint: subtract everything
            // already defined before appending, so overlapping reads never
            // execute an instance twice.
            std::vector<BasicMap> Fresh{std::move(Rel)};
            auto Prior = NewRels.find(S);
            for (const BasicMap &Old :
                 Prior == NewRels.end() ? std::vector<BasicMap>{}
                                        : Prior->second) {
              std::vector<BasicMap> Next;
              for (const BasicMap &F : Fresh)
                for (BasicMap &Piece : subtractPiece(F, Old))
                  Next.push_back(std::move(Piece));
              Fresh = std::move(Next);
              if (Fresh.empty())
                break;
            }
            for (BasicMap &F : Fresh)
              NewRels[S].push_back(std::move(F));
          }
        }
      }
      auto It = NewRels.find(S);
      if (It != NewRels.end()) {
        auto &Dst = OnChip[S];
        Dst.insert(Dst.end(), It->second.begin(), It->second.end());
      }
    }
    if (NewRels.empty())
      continue;
    for (auto &[S, Pieces] : NewRels) {
      for (BasicMap &Rel : Pieces)
        Decls.push_back(ExtensionDecl{S, Rel});
      ++Rep.FusedProducers;
      Rep.LocalizedTensors.push_back(P.Stmts[S].Write.Ref);
    }
    for (auto &U : Units)
      FusedUnits.push_back(U);
    SkippedFilters.push_back(F);
  }

  // Deduplicate localized tensors (init/update write the same tensor).
  {
    std::vector<ir::Tensor> Uniq;
    for (const ir::Tensor &T2 : Rep.LocalizedTensors) {
      bool Seen = false;
      for (const ir::Tensor &U : Uniq)
        if (U == T2)
          Seen = true;
      if (!Seen)
        Uniq.push_back(T2);
    }
    Rep.LocalizedTensors = std::move(Uniq);
  }

  // Rewire the tree. Detach the point band from the tile band first.
  std::unique_ptr<TreeNode> PointOwned = std::move(TileBandNode->Children[0]);
  TileBandNode->Children.clear();
  TreeNode *OnChipMark = TileBandNode->addChild(makeMark("on_chip"));
  if (Decls.empty()) {
    OnChipMark->addChild(std::move(PointOwned));
    return Rep;
  }
  TreeNode *Ext = OnChipMark->addChild(makeExtension(std::move(Decls)));
  TreeNode *Seq2 = Ext->addChild(makeSequence());
  // Producers in original id order.
  std::sort(FusedUnits.begin(), FusedUnits.end());
  for (const auto &Unit : FusedUnits)
    Seq2->addChild(buildUnitSubtree(P, Unit));
  // Consumer point loops last.
  TreeNode *FCons = Seq2->addChild(makeFilter(LiveStmts));
  FCons->addChild(std::move(PointOwned));

  // Suppress the original producer subtrees.
  for (TreeNode *F : SkippedFilters) {
    std::unique_ptr<TreeNode> Old = std::move(F->Children[0]);
    F->Children.clear();
    TreeNode *Mark = F->addChild(makeMark("skipped"));
    Mark->addChild(std::move(Old));
  }
  return Rep;
}

} // namespace

FusionReport applyPostTilingFusion(ScheduleTree &T, const ir::PolyProgram &P,
                                   const std::vector<int64_t> &TileSizes) {
  FusionReport Rep = applyPostTilingFusionImpl(T, P, TileSizes);
  // Unconditional counters (not gated on AKG_STATS): the compile trace
  // diffs these around the fusion pass.
  Stats::get().add("fusion.runs");
  if (Rep.FusedProducers)
    Stats::get().add("fusion.fused_producers", Rep.FusedProducers);
  if (!Rep.LocalizedTensors.empty())
    Stats::get().add("fusion.localized_tensors",
                     static_cast<int64_t>(Rep.LocalizedTensors.size()));
  return Rep;
}

} // namespace transforms
} // namespace akg
