//===- transforms/Fusion.h - Post-tiling fusion (reverse strategy) *- C++ -*-=//
//
// The paper's key scheduling device (Sec 4.3, Fig 3d/3e): the live-out
// iteration space is tiled first; the reverse strategy then computes, for
// every intermediate (producer) statement, the exact iteration subregion a
// consumer tile needs - an arbitrary (overlapped / continuous / scattered)
// tile shape - as an affine relation from the tile loops to producer
// iterations. The relation instantiates an extension node beneath the tile
// band, and the producer's original subtree is marked "skipped" so the
// code generator does not replicate it.
//
// This is what classical polyhedral frameworks cannot express (fusion after
// tiling) and what enables promoting the producer's output to on-chip
// buffers, eliminating its global-memory round trip.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TRANSFORMS_FUSION_H
#define AKG_TRANSFORMS_FUSION_H

#include "ir/PolyExtract.h"
#include "schedule/ScheduleTree.h"

namespace akg {
namespace transforms {

struct FusionReport {
  bool Applied = false;
  /// Producer statements re-scheduled under the consumer tile.
  unsigned FusedProducers = 0;
  /// Tensors whose global round trip was eliminated (now tile-local).
  std::vector<ir::Tensor> LocalizedTensors;
  /// The consumer point band inside the tile (for later passes).
  sched::TreeNode *PointBand = nullptr;
  /// The tile band above the on-chip region.
  sched::TreeNode *TileBand = nullptr;
};

/// Tiles the live-out (last) cluster of the scheduled tree with
/// \p TileSizes and fuses every intermediate cluster whose consumers all
/// land inside the tile. Inserts the "on_chip" mark delimiting a tile's
/// work for storage management and code generation. When the tree has a
/// single cluster, only tiling and the mark are applied.
FusionReport applyPostTilingFusion(sched::ScheduleTree &T,
                                   const ir::PolyProgram &P,
                                   const std::vector<int64_t> &TileSizes);

} // namespace transforms
} // namespace akg

#endif // AKG_TRANSFORMS_FUSION_H
